package nde_test

import (
	"testing"

	"nde"
	"nde/internal/ml"
	"nde/internal/testutil"
)

// Satellite of the ANN PR: PredictBatch once LOST to row-by-row prediction
// (1.30ms/282KB vs 1.18ms/185KB per op) because it allocated quickselect
// arenas and vote buffers per query. With per-worker scratch the batched
// path must strictly win on both time and allocation — this test measures
// both paths with the benchmark harness and asserts the ordering, so the
// regression cannot silently return.
func TestPredictBatchBeatsRowwise(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven comparison skipped in -short mode")
	}
	s := nde.LoadRecommendationLetters(300, 7)
	train, valid, _, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	knn := ml.NewKNN(5)
	if err := knn.Fit(train); err != nil {
		t.Fatal(err)
	}
	batchOp := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := knn.PredictBatch(valid, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	rowwiseOp := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < valid.Len(); v++ {
				knn.Predict(valid.Row(v))
			}
		}
	}
	// interleaved min-of-2 to absorb scheduler noise
	minNs := func(op func(b *testing.B)) (ns float64, bytesPerOp, allocsPerOp int64) {
		r := testing.Benchmark(op)
		ns, bytesPerOp, allocsPerOp = float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp()
		for i := 1; i < 2; i++ {
			r = testing.Benchmark(op)
			if v := float64(r.NsPerOp()); v < ns {
				ns = v
			}
		}
		return ns, bytesPerOp, allocsPerOp
	}
	batchNs, batchBytes, batchAllocs := minNs(batchOp)
	rowNs, rowBytes, rowAllocs := minNs(rowwiseOp)
	t.Logf("batch:   %.0f ns/op, %d B/op, %d allocs/op", batchNs, batchBytes, batchAllocs)
	t.Logf("rowwise: %.0f ns/op, %d B/op, %d allocs/op", rowNs, rowBytes, rowAllocs)
	if batchNs > rowNs {
		// Race instrumentation multiplies memory-access cost unevenly
		// across the two paths, so the wall-clock ordering is only
		// meaningful (and only asserted) in uninstrumented builds; the
		// alloc assertions below hold either way and are what guard
		// against the per-query scratch regression returning.
		if testutil.RaceEnabled {
			t.Logf("timing ordering not asserted under -race: batch %.0f vs rowwise %.0f ns/op", batchNs, rowNs)
		} else {
			t.Errorf("batched prediction is slower than rowwise: %.0f vs %.0f ns/op", batchNs, rowNs)
		}
	}
	if batchAllocs >= rowAllocs {
		t.Errorf("batched prediction allocates %d times/op, rowwise %d — batch must be strictly lower", batchAllocs, rowAllocs)
	}
	if batchBytes >= rowBytes {
		t.Errorf("batched prediction allocates %d B/op, rowwise %d — batch must be strictly lower", batchBytes, rowBytes)
	}
	// and the answers agree, so the win is not bought with wrong results
	got, err := knn.PredictBatch(valid, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < valid.Len(); v++ {
		if want := knn.Predict(valid.Row(v)); got[v] != want {
			t.Fatalf("query %d: batch %d vs rowwise %d", v, got[v], want)
		}
	}
}
