module nde

go 1.22
