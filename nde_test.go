package nde

import (
	"strings"
	"testing"
)

func TestLoadRecommendationLetters(t *testing.T) {
	s := LoadRecommendationLetters(200, 1)
	if s.Train.NumRows() != 120 || s.Valid.NumRows() != 40 || s.Test.NumRows() != 40 {
		t.Fatalf("split sizes = %d/%d/%d", s.Train.NumRows(), s.Valid.NumRows(), s.Test.NumRows())
	}
	// deterministic
	s2 := LoadRecommendationLetters(200, 1)
	if !s.Train.Equal(s2.Train) {
		t.Error("scenario not deterministic")
	}
	// splits disjoint by person_id
	seen := make(map[int64]bool)
	for _, f := range []*Frame{s.Train, s.Valid, s.Test} {
		ids := f.MustColumn("person_id")
		for i := 0; i < ids.Len(); i++ {
			if seen[ids.Int(i)] {
				t.Fatal("splits overlap")
			}
			seen[ids.Int(i)] = true
		}
	}
}

func TestEvaluateModelLearnsSentiment(t *testing.T) {
	s := LoadRecommendationLetters(300, 2)
	acc, err := EvaluateModel(s.Train, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("clean accuracy = %v, want >= 0.8", acc)
	}
}

// The Figure-2 walkthrough: inject label errors, observe the accuracy drop,
// rank with kNN-Shapley, clean the bottom-k, observe recovery.
func TestFigure2Walkthrough(t *testing.T) {
	s := LoadRecommendationLetters(300, 3)
	accClean, err := EvaluateModel(s.Train, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	dirty, corrupted, err := InjectLabelErrors(s.Train, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	accDirty, err := EvaluateModel(dirty, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if accDirty >= accClean {
		t.Errorf("label errors did not hurt: clean %v, dirty %v", accClean, accDirty)
	}
	scores, err := KNNShapleyValues(dirty, s.Valid, 5)
	if err != nil {
		t.Fatal(err)
	}
	k := len(corrupted)
	if prec := scores.PrecisionAtK(corrupted, k); prec < 0.5 {
		t.Errorf("precision@%d = %v, want >= 0.5", k, prec)
	}
	// replace the bottom-k with clean ground truth
	lowest := scores.BottomK(k)
	repaired := dirty.Clone()
	for _, i := range lowest {
		orig, err := s.Train.Value(i, "sentiment")
		if err != nil {
			t.Fatal(err)
		}
		if err := repaired.MustColumn("sentiment").Set(i, orig); err != nil {
			t.Fatal(err)
		}
	}
	accCleaned, err := EvaluateModel(repaired, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if accCleaned <= accDirty {
		t.Errorf("prioritized cleaning did not help: dirty %v, cleaned %v", accDirty, accCleaned)
	}
}

func TestPrettyPrint(t *testing.T) {
	s := LoadRecommendationLetters(50, 5)
	out, err := PrettyPrint(s.Train, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "letter_text") || !strings.Contains(out, "[3 rows") {
		t.Errorf("pretty print:\n%s", out)
	}
}

func TestFeaturizeLetterSplits(t *testing.T) {
	s := LoadRecommendationLetters(100, 6)
	dTrain, dValid, dTest, err := FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if dTrain.Dim() != dValid.Dim() || dValid.Dim() != dTest.Dim() {
		t.Error("split dims differ")
	}
	if dTrain.Len() != 60 || dValid.Len() != 20 || dTest.Len() != 20 {
		t.Errorf("split sizes = %d/%d/%d", dTrain.Len(), dValid.Len(), dTest.Len())
	}
}

// The Figure-3 walkthrough: pipeline plan, provenance, Datascope scores,
// and removal impact.
func TestFigure3Walkthrough(t *testing.T) {
	s := LoadRecommendationLetters(400, 7)
	dirty, _, err := InjectLabelErrors(s.Train, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := BuildHiringPipeline(dirty, s.Data.Jobs, s.Data.Social)
	if err != nil {
		t.Fatal(err)
	}
	plan := hp.ShowQueryPlan()
	for _, want := range []string{"Join", "Filter", "MapCol(has_twitter)", "Project", "Source(train"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		t.Fatal(err)
	}
	if ft.Data.Len() == 0 {
		t.Fatal("pipeline output empty")
	}
	valid, err := hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := hp.DatascopeScores(ft, valid, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != dirty.NumRows() {
		t.Fatalf("scores len = %d, want %d", len(scores), dirty.NumRows())
	}
	// remove the outputs supported by the 25 lowest-importance source rows
	lowest := make(map[int]bool)
	for _, i := range scores.BottomK(25) {
		lowest[i] = true
	}
	var removeOutputs []int
	for o, rows := range ft.SourceRows("train") {
		for _, r := range rows {
			if lowest[r] {
				removeOutputs = append(removeOutputs, o)
				break
			}
		}
	}
	before, after, err := RemoveAndEvaluate(ft, removeOutputs, valid)
	if err != nil {
		t.Fatal(err)
	}
	if after < before-0.05 {
		t.Errorf("removing lowest-importance rows should not badly hurt: %v -> %v", before, after)
	}
}

// The Figure-4 walkthrough: the worst-case loss grows with the percentage
// of missing values.
func TestFigure4Walkthrough(t *testing.T) {
	s := LoadRecommendationLetters(200, 9)
	dTrain, _, dTest, err := FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	ratingFeature := dTrain.Dim() - 1 // employer_rating is the last block
	var losses []float64
	for _, pct := range []float64{0.05, 0.25} {
		sym, missing, err := EncodeSymbolic(dTrain, ratingFeature, pct, MNAR, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) == 0 {
			t.Fatal("no cells marked missing")
		}
		loss, err := EstimateWithZorro(sym, dTest, 10, 11)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	if losses[1] <= losses[0] {
		t.Errorf("worst-case loss should grow with missingness: %v", losses)
	}
}

func TestCertainPredictionFractionAndComparison(t *testing.T) {
	s := LoadRecommendationLetters(120, 12)
	dTrain, _, dTest, err := FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	feature := dTrain.Dim() - 1
	sym, _, err := EncodeSymbolic(dTrain, feature, 0.2, MCAR, 13)
	if err != nil {
		t.Fatal(err)
	}
	frac, flags, err := CertainPredictionFraction(sym, dTest, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(flags) != dTest.Len() || frac < 0 || frac > 1 {
		t.Errorf("certain fraction = %v over %d flags", frac, len(flags))
	}
	baseAcc, certainFrac, err := CompareWithImputation(sym, dTest, 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	if baseAcc <= 0 || certainFrac < 0 || certainFrac > 1 {
		t.Errorf("comparison = %v, %v", baseAcc, certainFrac)
	}
}

func TestPossibleWorldsFacade(t *testing.T) {
	s := LoadRecommendationLetters(120, 33)
	dTrain, _, dTest, err := FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	unc := []DiscreteUncertainty{
		{Row: 0, Col: -1, Candidates: []float64{0, 1}},
		{Row: 1, Col: -1, Candidates: []float64{0, 1}},
	}
	res, err := PossibleWorlds(dTrain, unc, dTest, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Worlds != 4 {
		t.Errorf("worlds = %d", res.Worlds)
	}
	consistent := 0
	for _, c := range res.Consistent {
		if c {
			consistent++
		}
	}
	// two uncertain labels out of 72 should barely move a 5-NN model
	if float64(consistent)/float64(len(res.Consistent)) < 0.8 {
		t.Errorf("only %d/%d predictions consistent", consistent, len(res.Consistent))
	}
}

func TestPrettyPrintWithScores(t *testing.T) {
	s := LoadRecommendationLetters(60, 41)
	scores, err := KNNShapleyValues(s.Train, s.Valid, 5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := PrettyPrintWithScores(s.Train, scores.BottomK(3), scores)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "importance") || !strings.Contains(out, "[3 rows") {
		t.Errorf("display:\n%s", out)
	}
	if _, err := PrettyPrintWithScores(s.Train, []int{0}, Scores{1}); err == nil {
		t.Error("expected score-length error")
	}
}

func TestGroupShapleyScoresFacade(t *testing.T) {
	s := LoadRecommendationLetters(200, 51)
	hp, err := BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		t.Fatal(err)
	}
	valid, err := hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := hp.GroupShapleyScores(ft, valid, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != s.Train.NumRows() {
		t.Fatalf("scores = %d", len(scores))
	}
	// group Shapley and additive Datascope should broadly agree on ranking
	additive, err := hp.DatascopeScores(ft, valid, 3)
	if err != nil {
		t.Fatal(err)
	}
	// compare bottom-10 overlap
	inBottom := make(map[int]bool)
	for _, i := range additive.BottomK(10) {
		inBottom[i] = true
	}
	overlap := 0
	for _, i := range scores.BottomK(10) {
		if inBottom[i] {
			overlap++
		}
	}
	if overlap < 3 {
		t.Errorf("group vs additive bottom-10 overlap = %d", overlap)
	}
}
