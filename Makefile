# Standard entry points; see README.md § Testing.

.PHONY: build test lint check bench bench-all bench-diff stress ops-smoke serve-smoke

build:
	go build ./...

# contract-enforcing static analysis: determinism, panicsite, errwrap,
# obsguard over the whole module (DESIGN.md §10). `-update` regenerates
# the scripts/lint/ allowlists after review.
lint:
	go run ./cmd/nde-lint

# tier-1: what CI must keep green
test:
	go build ./... && go test ./...

# full gate: vet + gofmt + build + race-detector tests
check:
	sh scripts/check.sh

# race-stress gate: heavy concurrent-facade hammering under -race across a
# GOMAXPROCS sweep (scripts/check.sh runs the quick variant)
stress:
	sh scripts/stress.sh

# live ops plane smoke test: run nde-pipeline with -ops, scrape /healthz,
# /metrics and /trace over HTTP, interrupt, assert a clean exit and ledger
ops-smoke:
	sh scripts/ops_smoke.sh

# nde-serve smoke test: race-built daemon, register/score/what-if over real
# HTTP, singleflight + load-shed assertions from /metrics, SIGTERM drain
serve-smoke:
	sh scripts/serve_smoke.sh

# tracked benchmark series -> BENCH_importance.json + BENCH_whatif.json +
# BENCH_neighbor.json
bench:
	sh scripts/bench.sh

# every benchmark in the repo, untracked
bench-all:
	go test -bench=. -benchmem ./...

# perf-regression gate: fresh run vs the checked-in BENCH_*.json baselines,
# fails on >15% ns/op regression (scripts/check.sh runs this when NDE_BENCH=1)
bench-diff:
	sh scripts/bench_diff.sh
