# Standard entry points; see README.md § Testing.

.PHONY: build test check bench bench-all stress

build:
	go build ./...

# tier-1: what CI must keep green
test:
	go build ./... && go test ./...

# full gate: vet + gofmt + build + race-detector tests
check:
	sh scripts/check.sh

# race-stress gate: heavy concurrent-facade hammering under -race across a
# GOMAXPROCS sweep (scripts/check.sh runs the quick variant)
stress:
	sh scripts/stress.sh

# tracked benchmark series -> BENCH_importance.json + BENCH_whatif.json

bench:
	sh scripts/bench.sh

# every benchmark in the repo, untracked
bench-all:
	go test -bench=. -benchmem ./...
