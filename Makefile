# Standard entry points; see README.md § Testing.

.PHONY: build test check bench bench-all

build:
	go build ./...

# tier-1: what CI must keep green
test:
	go build ./... && go test ./...

# full gate: vet + gofmt + build + race-detector tests
check:
	sh scripts/check.sh

# tracked hot-path benchmarks -> BENCH_importance.json (perf trajectory)
bench:
	sh scripts/bench.sh

# every benchmark in the repo, untracked
bench-all:
	go test -bench=. -benchmem ./...
