# Standard entry points; see README.md § Testing.

.PHONY: build test check bench

build:
	go build ./...

# tier-1: what CI must keep green
test:
	go build ./... && go test ./...

# full gate: vet + gofmt + build + race-detector tests
check:
	sh scripts/check.sh

bench:
	go test -bench=. -benchmem ./...
