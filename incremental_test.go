package nde_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"nde"
	"nde/internal/importance"
	"nde/internal/ml"
)

func sessionFixture(t *testing.T) (*nde.Dataset, *nde.Dataset) {
	t.Helper()
	s := nde.LoadRecommendationLetters(160, 17)
	dTrain, dValid, _, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	return dTrain, dValid
}

// A DebugSession's chained delta updates must stay Float64bits-identical to
// recomputing kNN-Shapley from scratch over the surviving subset, and its
// Accuracy must match a freshly rebuilt index.
func TestDebugSessionMatchesRecompute(t *testing.T) {
	nde.ResetNeighborIndexCache()
	defer nde.ResetNeighborIndexCache()
	dTrain, dValid := sessionFixture(t)
	const k = 5
	sess, err := nde.NewDebugSession(dTrain, dValid, k, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Len() != dTrain.Len() {
		t.Fatalf("session opened with %d rows, want %d", sess.Len(), dTrain.Len())
	}
	check := func(scores nde.Scores) {
		t.Helper()
		ids := sess.OriginalIDs()
		oracle, err := importance.KNNShapley(k, dTrain.Subset(ids), dValid)
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) != len(oracle) {
			t.Fatalf("%d scores for %d surviving rows", len(scores), len(oracle))
		}
		for i := range oracle {
			if math.Float64bits(scores[i]) != math.Float64bits(float64(oracle[i])) {
				t.Fatalf("score[%d] = %x, recompute %x", i, math.Float64bits(scores[i]), math.Float64bits(oracle[i]))
			}
		}
		fresh, err := ml.NewNeighborIndex(dTrain.Subset(ids), dValid, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantAcc := ml.Accuracy(dValid.Y, fresh.PredictBatch(k))
		acc, err := sess.Accuracy()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(acc) != math.Float64bits(wantAcc) {
			t.Fatalf("Accuracy = %v, rebuild %v", acc, wantAcc)
		}
	}
	check(sess.Scores())
	for _, rm := range [][]int{{0, 7, 7, 33}, {1, 2, 3}, {60, 61, 62, 63, 64}} {
		scores, err := sess.RemoveRows(rm)
		if err != nil {
			t.Fatal(err)
		}
		check(scores)
	}
}

func TestDebugSessionAtomicOnError(t *testing.T) {
	nde.ResetNeighborIndexCache()
	defer nde.ResetNeighborIndexCache()
	dTrain, dValid := sessionFixture(t)
	sess, err := nde.NewDebugSession(dTrain, dValid, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Scores()
	ids := sess.OriginalIDs()
	if _, err := sess.RemoveRows([]int{0, dTrain.Len()}); !errors.Is(err, nde.ErrDegenerateInput) {
		t.Fatalf("out-of-range removal err = %v, want ErrDegenerateInput", err)
	}
	if sess.Len() != dTrain.Len() {
		t.Fatalf("failed removal shrank session to %d rows", sess.Len())
	}
	after := sess.Scores()
	for i := range before {
		if math.Float64bits(after[i]) != math.Float64bits(before[i]) {
			t.Fatalf("failed removal changed score[%d]", i)
		}
	}
	for i := range ids {
		if sess.OriginalIDs()[i] != ids[i] {
			t.Fatalf("failed removal changed OriginalIDs[%d]", i)
		}
	}
	// a removal that leaves fewer rows than k is rejected, session unchanged
	nearlyAll := make([]int, dTrain.Len()-2)
	for i := range nearlyAll {
		nearlyAll[i] = i
	}
	if _, err := sess.RemoveRows(nearlyAll); !errors.Is(err, nde.ErrBadK) {
		t.Fatalf("removal below k err = %v, want ErrBadK", err)
	}
	if sess.Len() != dTrain.Len() {
		t.Fatalf("rejected removal shrank session to %d rows", sess.Len())
	}
	if scores, err := sess.RemoveRows(nil); err != nil || len(scores) != dTrain.Len() {
		t.Fatalf("empty removal = (%d scores, %v), want full-length no-op", len(scores), err)
	}
}

// Race-stress: concurrent WhatIfParallel callers share one base index while
// a DebugSession derives delta indexes from the same cache and a churn
// goroutine resets it. Run under -race; results must stay bit-identical to
// the serial baseline throughout.
func TestStressWhatIfUnderIndexMutation(t *testing.T) {
	nde.ResetNeighborIndexCache()
	defer nde.ResetNeighborIndexCache()
	s := nde.LoadRecommendationLetters(120, 23)
	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		t.Fatal(err)
	}
	validLike, err := hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder)
	if err != nil {
		t.Fatal(err)
	}
	var variants []nde.RemovalVariant
	for v := 0; v < 5; v++ {
		rows := make([]nde.TupleID, 0, 3)
		for r := v * 4; r < v*4+3 && r < hp.TrainRows; r++ {
			rows = append(rows, nde.TupleID{Table: "train", Row: r})
		}
		variants = append(variants, nde.RemovalVariant{Name: fmt.Sprintf("drop-%d", v), Remove: rows})
	}
	baseline, err := nde.WhatIfParallel(ft, variants, validLike, 1)
	if err != nil {
		t.Fatal(err)
	}
	dTrain, dValid, _, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}

	goroutines, iters := 4, 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines+2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				opts := nde.WhatIfOptions{Workers: 1 + (g+it)%4, ForceRebuild: g%2 == 1}
				got, err := nde.WhatIfWithOptions(ft, variants, validLike, opts)
				if err != nil {
					errc <- err
					return
				}
				for i := range baseline {
					if got[i].Surviving != baseline[i].Surviving ||
						math.Float64bits(got[i].Metric) != math.Float64bits(baseline[i].Metric) {
						errc <- fmt.Errorf("goroutine %d variant %q: %+v, baseline %+v", g, variants[i].Name, got[i], baseline[i])
						return
					}
				}
			}
		}(g)
	}
	// session goroutine: derives delta indexes from the shared cache while
	// the what-if callers run
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < iters; it++ {
			sess, err := nde.NewDebugSession(dTrain, dValid, 5, 2)
			if err != nil {
				errc <- err
				return
			}
			for _, rm := range [][]int{{it, it + 10}, {0, 1}} {
				if _, err := sess.RemoveRows(rm); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	// churn goroutine: the cache reset path must never corrupt in-flight work
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < iters*2; it++ {
			nde.ResetNeighborIndexCache()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
