package nde

import (
	"testing"

	"nde/internal/datagen"
	"nde/internal/frame"
)

func debugFixture(t *testing.T) (dirty, valid, test *Dataset, truth []int, corrupted map[int]bool) {
	t.Helper()
	s := LoadRecommendationLetters(250, 21)
	dTrain, dValid, dTest, err := FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	truth = append([]int(nil), dTrain.Y...)
	dirty, corrupted, err = datagen.FlipDatasetLabels(dTrain, 0.15, 22)
	if err != nil {
		t.Fatal(err)
	}
	return dirty, dValid, dTest, truth, corrupted
}

func TestFacadeScoreWrappers(t *testing.T) {
	dirty, valid, _, _, corrupted := debugFixture(t)
	k := len(corrupted)
	for name, run := range map[string]func() (Scores, error){
		"self-confidence": func() (Scores, error) { return SelfConfidenceScores(dirty, 1) },
		"margin":          func() (Scores, error) { return MarginScores(dirty, 2) },
		"influence":       func() (Scores, error) { return InfluenceScores(dirty, valid) },
	} {
		scores, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prec := scores.PrecisionAtK(corrupted, k); prec < 0.5 {
			t.Errorf("%s precision@%d = %v", name, k, prec)
		}
	}
}

func TestDataShapleyScores(t *testing.T) {
	dirty, valid, _, _, corrupted := debugFixture(t)
	// TMC on the full set with few permutations is still informative
	scores, err := DataShapleyScores(dirty, valid, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != dirty.Len() {
		t.Fatalf("scores = %d", len(scores))
	}
	k := len(corrupted)
	if prec := scores.PrecisionAtK(corrupted, k); prec <= 0.15 {
		t.Errorf("tmc precision@%d = %v at baseline", k, prec)
	}
}

func TestIterativeCleaningFacade(t *testing.T) {
	dirty, valid, test, truth, corrupted := debugFixture(t)
	res, err := IterativeCleaning(dirty, valid, test, truth, 10, len(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve[0].Accuracy
	last := res.Curve[len(res.Curve)-1].Accuracy
	if last < first {
		t.Errorf("cleaning decreased accuracy %v -> %v", first, last)
	}
}

func TestDebuggingChallengeFacade(t *testing.T) {
	dirty, valid, test, truth, corrupted := debugFixture(t)
	c, err := NewDebuggingChallenge(dirty, truth, valid, test, len(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.BaselineScore()
	if err != nil {
		t.Fatal(err)
	}
	scores, err := SelfConfidenceScores(c.Train(), 5)
	if err != nil {
		t.Fatal(err)
	}
	score, err := c.Submit(scores.BottomK(len(corrupted)))
	if err != nil {
		t.Fatal(err)
	}
	if score < base {
		t.Errorf("informed cleaning scored %v below baseline %v", score, base)
	}
}

func TestFairnessRangeFacade(t *testing.T) {
	dirty, valid, _, _, _ := debugFixture(t)
	// attach trivial groups to validation for the metric
	groups := make([]string, valid.Len())
	for i := range groups {
		groups[i] = []string{"a", "b"}[i%2]
	}
	gvalid, err := valid.WithGroups(groups)
	if err != nil {
		t.Fatal(err)
	}
	sym, _, err := EncodeSymbolic(dirty, dirty.Dim()-1, 0.2, MCAR, 7)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := EstimateFairnessRange(sym, gvalid, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Range.Contains(fr.Center) {
		t.Errorf("center %v outside range %v", fr.Center, fr.Range)
	}
}

func TestRAGCorpusFacade(t *testing.T) {
	corpus, err := NewRAGCorpus(
		[]string{"great work ethic", "poor performance issues", "excellent results delivered", "failed expectations badly"},
		[]int{1, 0, 1, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := corpus.Answer("was the work great and excellent", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("answer = %d", got)
	}
}

func TestScreenTrainTestLeakageFacade(t *testing.T) {
	s := LoadRecommendationLetters(100, 31)
	issues, err := ScreenTrainTestLeakage(s.Train, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("clean splits flagged: %v", issues)
	}
	// force a leak
	leaked := s.Test.Take(append([]int{}, 0, 1))
	merged, _, _, err := frame.Concat(s.Train, leaked)
	if err != nil {
		t.Fatal(err)
	}
	issues, err = ScreenTrainTestLeakage(merged, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) == 0 {
		t.Error("leak not detected")
	}
}
