// Command nde-pipeline builds the Figure-3 hiring pipeline over the
// synthetic scenario, prints its query plan (text and Graphviz dot),
// provenance statistics, and the screening report.
//
// Usage:
//
//	nde-pipeline [-n 300] [-seed 42] [-dot] [-data dir] [telemetry flags]
//
// With -data, the scenario tables are loaded from CSV files previously
// written by nde-datagen instead of being regenerated; malformed or
// corrupted CSVs are reported as errors, never panics.
//
// The shared telemetry flags (see internal/obs/ops) enable observability
// for the run: -metrics and -trace dump the registry and span tree on
// exit (Chrome trace JSON when the trace path ends in .json), -ledger
// appends one structured JSONL record per facade call, -slowspan warns
// about slow spans, and -ops serves /metrics, /healthz, /readyz and
// /trace live over HTTP while the run executes (-ops-pprof adds
// /debug/pprof/*; -ops-wait keeps the server up after the run until
// interrupted). Interrupting a run mid-flight still flushes every dump.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nde"
	"nde/internal/datagen"
	"nde/internal/obs/ops"
	"nde/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nde-pipeline:", err)
		os.Exit(1)
	}
}

// run is the whole program behind flag parsing; it returns errors instead
// of exiting so the smoke tests can drive it in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nde-pipeline", flag.ContinueOnError)
	n := fs.Int("n", 300, "scenario size")
	seed := fs.Int64("seed", 42, "random seed")
	dot := fs.Bool("dot", false, "also print the Graphviz dot form of the plan")
	data := fs.String("data", "", "load scenario tables from CSVs in this directory instead of generating them")
	tf := ops.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sess, err := tf.Start("nde-pipeline", os.Stderr)
	if err != nil {
		return err
	}
	err = pipelineReport(*n, *seed, *dot, *data, out)
	if cerr := sess.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// loadScenario builds the hiring scenario either synthetically or from a
// CSV directory. CSV data is external input: it goes through the facade's
// degenerate-input validation and can fail with a clean error.
func loadScenario(n int, seed int64, dataDir string) (*nde.HiringScenario, error) {
	if dataDir == "" {
		return nde.LoadRecommendationLetters(n, seed), nil
	}
	h, err := datagen.LoadHiringCSV(dataDir)
	if err != nil {
		return nil, err
	}
	return nde.ScenarioFromData(h, seed)
}

func pipelineReport(n int, seed int64, dot bool, dataDir string, out io.Writer) error {
	s, err := loadScenario(n, seed, dataDir)
	if err != nil {
		return err
	}
	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "pipeline query plan:")
	fmt.Fprintln(out, hp.ShowQueryPlan())
	if dot {
		fmt.Fprintln(out, "\ndot:")
		fmt.Fprintln(out, hp.Pipeline.Dot(hp.Output))
	}

	rows := pipeline.NewRowCountInspection()
	dist := pipeline.NewGroupDistributionInspection("sentiment")
	hp.Pipeline.AddInspection(rows)
	hp.Pipeline.AddInspection(dist)

	ft, err := hp.WithProvenance()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\noutput: %d rows x %d features (%d labels)\n",
		ft.Data.Len(), ft.Data.Dim(), len(ft.LabelNames))
	fmt.Fprintf(out, "output row count at sink operator: %d\n", rows.Counts[hp.Output.ID()])

	if rs := hp.Pipeline.LastRunStats(); rs != nil {
		fmt.Fprintf(out, "\nannotated query plan (last run: %s, %d memo hits / %d misses):\n",
			rs.Wall, rs.MemoHits, rs.MemoMisses)
		fmt.Fprintln(out, hp.Pipeline.RenderPlanWithCosts(hp.Output))
	}

	shift, node := dist.MaxShift(hp.Pipeline, hp.Output)
	if node != nil {
		fmt.Fprintf(out, "largest sentiment-distribution shift: %.3f at %s\n", shift, node.Label())
	}

	// provenance statistics
	perTuple := ft.OutputsOf("train", s.Train.NumRows())
	supported, maxFan := 0, 0
	for _, outs := range perTuple {
		if len(outs) > 0 {
			supported++
		}
		if len(outs) > maxFan {
			maxFan = len(outs)
		}
	}
	fmt.Fprintf(out, "provenance: %d/%d train tuples reach the output (max fan-out %d)\n",
		supported, s.Train.NumRows(), maxFan)

	issues, err := pipeline.ScreenLeakage(s.Train, s.Test, []string{"person_id"})
	if err != nil {
		return err
	}
	if len(issues) == 0 {
		fmt.Fprintln(out, "screening: no train/test leakage detected")
	}
	for _, is := range issues {
		fmt.Fprintln(out, "screening:", is)
	}
	return nil
}
