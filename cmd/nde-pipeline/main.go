// Command nde-pipeline builds the Figure-3 hiring pipeline over the
// synthetic scenario, prints its query plan (text and Graphviz dot),
// provenance statistics, and the screening report.
//
// Usage:
//
//	nde-pipeline [-n 300] [-seed 42] [-dot] [-metrics out.prom] [-trace out.txt]
//
// With -metrics and/or -trace, observability is enabled for the run: the
// metrics registry is dumped to the given file on exit (Prometheus text
// format, or JSON when the path ends in .json), the span tree — one span
// per pipeline operator with rows in/out and wall time — goes to the trace
// file, and the printed query plan is annotated with per-operator costs.
package main

import (
	"flag"
	"fmt"
	"os"

	"nde"
	"nde/internal/obs"
	"nde/internal/pipeline"
)

func main() {
	n := flag.Int("n", 300, "scenario size")
	seed := flag.Int64("seed", 42, "random seed")
	dot := flag.Bool("dot", false, "also print the Graphviz dot form of the plan")
	metrics := flag.String("metrics", "", "dump metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	trace := flag.String("trace", "", "dump the span trace tree to this file on exit")
	flag.Parse()

	if *metrics != "" || *trace != "" {
		obs.Enable()
	}
	err := run(*n, *seed, *dot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-pipeline:", err)
	}
	if derr := obs.DumpFiles(*metrics, *trace); derr != nil {
		fmt.Fprintln(os.Stderr, "nde-pipeline:", derr)
		if err == nil {
			err = derr
		}
	}
	if err != nil {
		os.Exit(1)
	}
}

func run(n int, seed int64, dot bool) error {
	s := nde.LoadRecommendationLetters(n, seed)
	hp := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)

	fmt.Println("pipeline query plan:")
	fmt.Println(hp.ShowQueryPlan())
	if dot {
		fmt.Println("\ndot:")
		fmt.Println(hp.Pipeline.Dot(hp.Output))
	}

	rows := pipeline.NewRowCountInspection()
	dist := pipeline.NewGroupDistributionInspection("sentiment")
	hp.Pipeline.AddInspection(rows)
	hp.Pipeline.AddInspection(dist)

	ft, err := hp.WithProvenance()
	if err != nil {
		return err
	}
	fmt.Printf("\noutput: %d rows x %d features (%d labels)\n",
		ft.Data.Len(), ft.Data.Dim(), len(ft.LabelNames))
	fmt.Printf("output row count at sink operator: %d\n", rows.Counts[hp.Output.ID()])

	if rs := hp.Pipeline.LastRunStats(); rs != nil {
		fmt.Printf("\nannotated query plan (last run: %s, %d memo hits / %d misses):\n",
			rs.Wall, rs.MemoHits, rs.MemoMisses)
		fmt.Println(hp.Pipeline.RenderPlanWithCosts(hp.Output))
	}

	shift, node := dist.MaxShift(hp.Pipeline, hp.Output)
	if node != nil {
		fmt.Printf("largest sentiment-distribution shift: %.3f at %s\n", shift, node.Label())
	}

	// provenance statistics
	perTuple := ft.OutputsOf("train", s.Train.NumRows())
	supported, maxFan := 0, 0
	for _, outs := range perTuple {
		if len(outs) > 0 {
			supported++
		}
		if len(outs) > maxFan {
			maxFan = len(outs)
		}
	}
	fmt.Printf("provenance: %d/%d train tuples reach the output (max fan-out %d)\n",
		supported, s.Train.NumRows(), maxFan)

	issues, err := pipeline.ScreenLeakage(s.Train, s.Test, []string{"person_id"})
	if err != nil {
		return err
	}
	if len(issues) == 0 {
		fmt.Println("screening: no train/test leakage detected")
	}
	for _, is := range issues {
		fmt.Println("screening:", is)
	}
	return nil
}
