// Command nde-pipeline builds the Figure-3 hiring pipeline over the
// synthetic scenario, prints its query plan (text and Graphviz dot),
// provenance statistics, and the screening report.
//
// Usage:
//
//	nde-pipeline [-n 300] [-seed 42] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"nde"
	"nde/internal/pipeline"
)

func main() {
	n := flag.Int("n", 300, "scenario size")
	seed := flag.Int64("seed", 42, "random seed")
	dot := flag.Bool("dot", false, "also print the Graphviz dot form of the plan")
	flag.Parse()

	s := nde.LoadRecommendationLetters(*n, *seed)
	hp := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)

	fmt.Println("pipeline query plan:")
	fmt.Println(hp.ShowQueryPlan())
	if *dot {
		fmt.Println("\ndot:")
		fmt.Println(hp.Pipeline.Dot(hp.Output))
	}

	rows := pipeline.NewRowCountInspection()
	dist := pipeline.NewGroupDistributionInspection("sentiment")
	hp.Pipeline.AddInspection(rows)
	hp.Pipeline.AddInspection(dist)

	ft, err := hp.WithProvenance()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-pipeline:", err)
		os.Exit(1)
	}
	fmt.Printf("\noutput: %d rows x %d features (%d labels)\n",
		ft.Data.Len(), ft.Data.Dim(), len(ft.LabelNames))
	fmt.Printf("output row count at sink operator: %d\n", rows.Counts[hp.Output.ID()])

	shift, node := dist.MaxShift(hp.Pipeline, hp.Output)
	if node != nil {
		fmt.Printf("largest sentiment-distribution shift: %.3f at %s\n", shift, node.Label())
	}

	// provenance statistics
	perTuple := ft.OutputsOf("train", s.Train.NumRows())
	supported, maxFan := 0, 0
	for _, outs := range perTuple {
		if len(outs) > 0 {
			supported++
		}
		if len(outs) > maxFan {
			maxFan = len(outs)
		}
	}
	fmt.Printf("provenance: %d/%d train tuples reach the output (max fan-out %d)\n",
		supported, s.Train.NumRows(), maxFan)

	issues, err := pipeline.ScreenLeakage(s.Train, s.Test, []string{"person_id"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-pipeline:", err)
		os.Exit(1)
	}
	if len(issues) == 0 {
		fmt.Println("screening: no train/test leakage detected")
	}
	for _, is := range issues {
		fmt.Println("screening:", is)
	}
}
