package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nde"
	"nde/internal/datagen"
	"nde/internal/frame"
	"nde/internal/obs"
)

func TestRunCleanSynthetic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "120", "-seed", "1"}, &out); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if !strings.Contains(out.String(), "pipeline query plan:") {
		t.Errorf("missing query plan in output:\n%s", out.String())
	}
}

func TestRunFromCSVDirectory(t *testing.T) {
	dir := t.TempDir()
	h := datagen.Hiring(datagen.Config{N: 120, Seed: 2})
	if err := datagen.SaveHiringCSV(h, dir); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-data", dir, "-seed", "2"}, &out); err != nil {
		t.Fatalf("CSV-backed run: %v", err)
	}
	if !strings.Contains(out.String(), "screening:") {
		t.Errorf("missing screening report in output:\n%s", out.String())
	}
}

func TestRunRejectsMalformedCSV(t *testing.T) {
	dir := t.TempDir()
	h := datagen.Hiring(datagen.Config{N: 60, Seed: 5})
	if err := datagen.SaveHiringCSV(h, dir); err != nil {
		t.Fatal(err)
	}
	garbage := "person_id,job_id\n\"unterminated quote,1\n"
	if err := os.WriteFile(filepath.Join(dir, "letters.csv"), []byte(garbage), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-data", dir}, &out)
	if err == nil {
		t.Fatal("expected error for malformed letters.csv")
	}
	if !strings.Contains(err.Error(), "letters.csv") {
		t.Errorf("error does not name the bad file: %v", err)
	}
}

// A CSV whose employer_rating column is all-NaN must be rejected by the
// facade's degenerate-input validation — the literal string "NaN" parses
// as a float and would otherwise poison the feature matrix silently.
func TestRunRejectsNaNRatingsCSV(t *testing.T) {
	dir := t.TempDir()
	h := datagen.Hiring(datagen.Config{N: 120, Seed: 2})
	nan := make([]float64, h.Letters.NumRows())
	for i := range nan {
		nan[i] = math.NaN()
	}
	poisoned, err := h.Letters.WithColumn(frame.NewFloatSeries("employer_rating", nan, nil))
	if err != nil {
		t.Fatal(err)
	}
	h.Letters = poisoned
	if err := datagen.SaveHiringCSV(h, dir); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-data", dir, "-seed", "2"}, &out)
	if err == nil {
		t.Fatal("expected error for NaN employer ratings")
	}
	if !errors.Is(err, nde.ErrDegenerateInput) {
		t.Errorf("error is not in the ErrDegenerateInput family: %v", err)
	}
}

// One full telemetry run: live ops server, ledger, and dump files all
// driven through the real flag surface.
func TestRunWithTelemetrySession(t *testing.T) {
	defer obs.Disable()
	dir := t.TempDir()
	ledger := filepath.Join(dir, "run.jsonl")
	metrics := filepath.Join(dir, "out.prom")
	trace := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	err := run([]string{
		"-n", "120", "-seed", "1",
		"-ops", "127.0.0.1:0",
		"-ledger", ledger,
		"-metrics", metrics,
		"-trace", trace,
	}, &out)
	if err != nil {
		t.Fatalf("telemetry run: %v", err)
	}

	lb, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(lb)), "\n")
	if len(lines) < 2 {
		t.Fatalf("ledger has %d lines, want header + ops:\n%s", len(lines), lb)
	}
	var header map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("bad header line: %v", err)
	}
	if header["t"] != "header" || header["cmd"] != "nde-pipeline" {
		t.Errorf("header = %v", header)
	}
	var ops []string
	for _, line := range lines[1:] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad ledger line %q: %v", line, err)
		}
		if op, _ := rec["op"].(string); op != "" {
			ops = append(ops, op)
		}
	}
	joined := strings.Join(ops, ",")
	for _, want := range []string{"BuildHiringPipeline", "WithProvenance"} {
		if !strings.Contains(joined, want) {
			t.Errorf("ledger ops %v missing %q", ops, want)
		}
	}

	if mb, err := os.ReadFile(metrics); err != nil || !strings.Contains(string(mb), "pipeline_memo_misses_total") {
		t.Errorf("metrics dump missing memo counter: %v", err)
	}
	if tb, err := os.ReadFile(trace); err != nil || !strings.Contains(string(tb), `"traceEvents"`) {
		t.Errorf("chrome trace dump missing: %v", err)
	}
}
