// Command nde-figures regenerates every figure and table of the tutorial
// (DESIGN.md §3, experiments E1–E12) as human-readable text.
//
// Usage:
//
//	nde-figures [-n 300] [-seed 42] [-only E3] [-replicates 5]
//	            [-neighbor-mode exact|ivf|auto] [-nprobe N] [telemetry flags]
//
// The shared telemetry flags (-metrics, -trace, -ledger, -slowspan, -ops,
// -ops-pprof, -ops-wait; see internal/obs/ops) enable observability for
// the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nde"
	"nde/internal/exp"
	"nde/internal/obs"
	"nde/internal/obs/ops"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nde-figures:", err)
		os.Exit(1)
	}
}

// run is the whole program behind flag parsing; it returns errors instead
// of exiting so the smoke tests can drive it in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nde-figures", flag.ContinueOnError)
	n := fs.Int("n", 300, "scenario size (number of recommendation letters)")
	seed := fs.Int64("seed", 42, "random seed")
	only := fs.String("only", "", "run a single experiment id (e.g. E3); empty = all")
	replicates := fs.Int("replicates", 1, "run each experiment with this many consecutive seeds (concurrently when >1)")
	neighborMode := fs.String("neighbor-mode", "exact", "neighbor search backend: exact, ivf, or auto")
	nprobe := fs.Int("nprobe", 0, "IVF partitions probed per query (0 = auto)")
	tf := ops.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, ok := nde.ParseSearchMode(*neighborMode)
	if !ok {
		return fmt.Errorf("unknown -neighbor-mode %q (want exact, ivf, or auto)", *neighborMode)
	}
	nde.SetNeighborSearch(nde.NeighborSearchConfig{Mode: mode, NProbe: *nprobe, Seed: *seed})

	sess, err := tf.Start("nde-figures", os.Stderr)
	if err != nil {
		return err
	}
	err = runExperiments(*n, *seed, *replicates, *only, out)
	if cerr := sess.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func runExperiments(nArg int, seedArg int64, replicates int, only string, out io.Writer) error {
	n := &nArg
	type experiment struct {
		id  string
		run func(seed int64) (*exp.Table, string, error)
	}
	experiments := []experiment{
		{"E1", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E1Figure2(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E2", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E2Figure3(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "pipeline query plan:\n" + r.Plan, nil
		}},
		{"E3", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E3Figure4(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, sparkline(r.Losses), nil
		}},
		{"E4", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E4Figure1(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E5", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E5MethodComparison(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E6", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E6Scalability(seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E7", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E7CleaningStrategies(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E8", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E8CertainPredictions(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E9", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E9Challenge(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "full leaderboard:\n" + r.Leaderboard.String(), nil
		}},
		{"E10", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E10PipelineScreening(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E11", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E11ZorroVsImputation(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E12", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E12GopherFairness(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E13", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E13Unlearning(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E14", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E14Amortization(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E15", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E15RAGImportance(seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E16", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E16WhatIfOptimization(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E17", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E17DatascopeAblation(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E18", func(seed int64) (*exp.Table, string, error) {
			r, err := exp.E18DetectionBenchmark(*n, seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
	}

	if replicates < 1 {
		return fmt.Errorf("replicates must be >= 1, got %d", replicates)
	}
	ran := 0
	for _, e := range experiments {
		if only != "" && !strings.EqualFold(only, e.id) {
			continue
		}
		sp := obs.StartSpan("figures.experiment")
		sp.SetStr("id", e.id)
		reps, err := exp.Replicates(e.id, exp.SeedSequence(seedArg, replicates), 0, e.run)
		sp.End()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		obs.Inc("figures_experiments_total")
		for _, rep := range reps {
			if replicates > 1 {
				fmt.Fprintf(out, "── %s, seed %d ──\n", e.id, rep.Seed)
			}
			fmt.Fprintln(out, rep.Table)
			if rep.Extra != "" {
				fmt.Fprintln(out, rep.Extra)
			}
			fmt.Fprintln(out)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", only)
	}
	return nil
}

// sparkline renders a coarse ASCII trend for a numeric series.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	b.WriteString("trend: ")
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(marks)-1))
		}
		b.WriteRune(marks[idx])
	}
	return b.String()
}
