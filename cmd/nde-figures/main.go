// Command nde-figures regenerates every figure and table of the tutorial
// (DESIGN.md §3, experiments E1–E12) as human-readable text.
//
// Usage:
//
//	nde-figures [-n 300] [-seed 42] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nde/internal/exp"
	"nde/internal/obs"
)

func main() {
	n := flag.Int("n", 300, "scenario size (number of recommendation letters)")
	seed := flag.Int64("seed", 42, "random seed")
	only := flag.String("only", "", "run a single experiment id (e.g. E3); empty = all")
	metrics := flag.String("metrics", "", "dump metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	trace := flag.String("trace", "", "dump the span trace tree to this file on exit")
	flag.Parse()

	if *metrics != "" || *trace != "" {
		obs.Enable()
	}
	defer func() {
		if err := obs.DumpFiles(*metrics, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "nde-figures:", err)
			os.Exit(1)
		}
	}()

	type experiment struct {
		id  string
		run func() (*exp.Table, string, error)
	}
	experiments := []experiment{
		{"E1", func() (*exp.Table, string, error) {
			r, err := exp.E1Figure2(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E2", func() (*exp.Table, string, error) {
			r, err := exp.E2Figure3(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "pipeline query plan:\n" + r.Plan, nil
		}},
		{"E3", func() (*exp.Table, string, error) {
			r, err := exp.E3Figure4(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, sparkline(r.Losses), nil
		}},
		{"E4", func() (*exp.Table, string, error) {
			r, err := exp.E4Figure1(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E5", func() (*exp.Table, string, error) {
			r, err := exp.E5MethodComparison(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E6", func() (*exp.Table, string, error) {
			r, err := exp.E6Scalability(*seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E7", func() (*exp.Table, string, error) {
			r, err := exp.E7CleaningStrategies(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E8", func() (*exp.Table, string, error) {
			r, err := exp.E8CertainPredictions(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E9", func() (*exp.Table, string, error) {
			r, err := exp.E9Challenge(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "full leaderboard:\n" + r.Leaderboard.String(), nil
		}},
		{"E10", func() (*exp.Table, string, error) {
			r, err := exp.E10PipelineScreening(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E11", func() (*exp.Table, string, error) {
			r, err := exp.E11ZorroVsImputation(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E12", func() (*exp.Table, string, error) {
			r, err := exp.E12GopherFairness(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E13", func() (*exp.Table, string, error) {
			r, err := exp.E13Unlearning(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E14", func() (*exp.Table, string, error) {
			r, err := exp.E14Amortization(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E15", func() (*exp.Table, string, error) {
			r, err := exp.E15RAGImportance(*seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E16", func() (*exp.Table, string, error) {
			r, err := exp.E16WhatIfOptimization(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E17", func() (*exp.Table, string, error) {
			r, err := exp.E17DatascopeAblation(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
		{"E18", func() (*exp.Table, string, error) {
			r, err := exp.E18DetectionBenchmark(*n, *seed)
			if err != nil {
				return nil, "", err
			}
			return r.Table, "", nil
		}},
	}

	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		sp := obs.StartSpan("figures.experiment")
		sp.SetStr("id", e.id)
		table, extra, err := e.run()
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nde-figures: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		obs.Inc("figures_experiments_total")
		fmt.Println(table)
		if extra != "" {
			fmt.Println(extra)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nde-figures: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

// sparkline renders a coarse ASCII trend for a numeric series.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	b.WriteString("trend: ")
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(marks)-1))
		}
		b.WriteRune(marks[idx])
	}
	return b.String()
}
