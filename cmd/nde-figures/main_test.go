package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E1", "-n", "80", "-seed", "2"}, &out); err != nil {
		t.Fatalf("-only E1: %v", err)
	}
	if out.Len() == 0 {
		t.Error("E1 produced no output")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-only", "E99"}, &out)
	if err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
	if !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("expected flag parse error")
	}
}
