package main

import (
	"bytes"
	"strings"
	"testing"

	"nde"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E1", "-n", "80", "-seed", "2"}, &out); err != nil {
		t.Fatalf("-only E1: %v", err)
	}
	if out.Len() == 0 {
		t.Error("E1 produced no output")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-only", "E99"}, &out)
	if err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
	if !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunReplicates(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E1", "-n", "80", "-seed", "7", "-replicates", "3"}, &out); err != nil {
		t.Fatalf("-replicates 3: %v", err)
	}
	for _, want := range []string{"E1, seed 7", "E1, seed 8", "E1, seed 9"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing replicate header %q", want)
		}
	}
	// replicate output is deterministic: seeds printed in order
	if strings.Index(out.String(), "seed 7") > strings.Index(out.String(), "seed 9") {
		t.Error("replicates printed out of seed order")
	}
}

func TestRunRejectsBadReplicates(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-only", "E1", "-replicates", "0"}, &out)
	if err == nil || !strings.Contains(err.Error(), "replicates") {
		t.Fatalf("expected replicates validation error, got %v", err)
	}
}

// The neighbor-mode flag selects the shared search backend; auto mode must
// reproduce the exact-mode figure (Shapley consumes the exact ranking in
// every mode), and unknown modes are rejected at flag time.
func TestRunNeighborModeFlag(t *testing.T) {
	defer nde.SetNeighborSearch(nde.NeighborSearchConfig{})
	var exact, auto bytes.Buffer
	if err := run([]string{"-only", "E1", "-n", "80", "-seed", "2"}, &exact); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "E1", "-n", "80", "-seed", "2", "-neighbor-mode", "auto", "-nprobe", "4"}, &auto); err != nil {
		t.Fatalf("-neighbor-mode auto: %v", err)
	}
	if exact.String() != auto.String() {
		t.Error("E1 output differs between exact and auto neighbor modes")
	}
	if err := run([]string{"-only", "E1", "-neighbor-mode", "fancy"}, &auto); err == nil || !strings.Contains(err.Error(), "neighbor-mode") {
		t.Fatalf("expected neighbor-mode validation error, got %v", err)
	}
}
