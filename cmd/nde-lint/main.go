// Command nde-lint runs the repo's contract-enforcing static analysis
// pass (internal/lint) over the whole module: determinism, panicsite,
// errwrap, and obsguard. `make lint` and scripts/check.sh run it between
// vet and build; see DESIGN.md §10 "Static analysis contract".
//
// Usage:
//
//	nde-lint [-json] [-update] [-allow dir] [-root dir] [analyzer ...]
//
// With no analyzer names, all analyzers run. Findings are keyed
// file:func and matched against scripts/lint/<analyzer>.txt; unmatched
// findings fail the run. -update rewrites the allowlists from the
// current tree (review the diff — every entry is a deliberate
// exception). -json emits the full finding list, allowlisted included,
// for CI annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nde/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run is the whole program behind flag parsing; it returns the exit code
// and errors instead of exiting so tests can drive it in-process.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("nde-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (allowlisted included)")
	update := fs.Bool("update", false, "rewrite the allowlists from the current tree")
	allowDir := fs.String("allow", "scripts/lint", "allowlist directory, relative to the module root")
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	analyzers, err := selectAnalyzers(fs.Args())
	if err != nil {
		return 2, err
	}
	if *root == "" {
		*root, err = lint.FindModuleRoot(".")
		if err != nil {
			return 2, err
		}
	}
	dir := *allowDir
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(*root, dir)
	}

	mod, err := lint.LoadModule(*root)
	if err != nil {
		return 2, err
	}
	if *update {
		diags := lint.Run(mod, analyzers, lint.Allowlists{})
		if err := lint.WriteAllowlists(dir, analyzers, diags); err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "nde-lint: rewrote allowlists in %s (%d findings)\n", dir, len(diags))
		return 0, nil
	}

	allow, err := lint.LoadAllowlists(dir, analyzers)
	if err != nil {
		return 2, err
	}
	diags := lint.Run(mod, analyzers, allow)
	violations := lint.Violations(diags)

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return 2, err
		}
	} else {
		for _, d := range violations {
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s (key %s)\n", d.File, d.Line, d.Col, d.Analyzer, d.Message, d.Key())
		}
		fmt.Fprintf(out, "nde-lint: %d findings, %d violations (%d allowlisted)\n",
			len(diags), len(violations), len(diags)-len(violations))
	}
	if len(violations) > 0 {
		return 1, nil
	}
	return 0, nil
}

// selectAnalyzers maps positional analyzer names to the registered set;
// no names selects everything.
func selectAnalyzers(names []string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: determinism, panicsite, errwrap, obsguard)", n)
		}
		out = append(out, a)
	}
	return out, nil
}
