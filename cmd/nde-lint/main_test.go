package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nde/internal/lint"
)

// TestRunJSONCleanTree runs the real driver over the repo: exit 0, and
// the JSON stream holds only allowlisted findings (the deliberate panic
// sites and telemetry clocks).
func TestRunJSONCleanTree(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-json"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, buf.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected allowlisted findings in JSON output, got none")
	}
	for _, d := range diags {
		if !d.Allowed {
			t.Errorf("unallowlisted finding escaped exit code: %+v", d)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete CI annotation fields: %+v", d)
		}
	}
}

// TestRunViolationAndUpdate drives the full violation -> -update ->
// clean cycle against a synthetic one-file module, so it stays cheap.
func TestRunViolationAndUpdate(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tinymod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "tiny.go"), `package tinymod

import "errors"

func Boom() error {
	return errors.New("bare")
}
`)

	var buf bytes.Buffer
	code, err := run([]string{"-root", dir, "errwrap"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 || !strings.Contains(buf.String(), "errors.New inside Boom") {
		t.Fatalf("exit %d, output:\n%s", code, buf.String())
	}

	buf.Reset()
	if code, err = run([]string{"-root", dir, "-update", "errwrap"}, &buf); err != nil || code != 0 {
		t.Fatalf("-update: exit %d, err %v", code, err)
	}
	allow, err := os.ReadFile(filepath.Join(dir, "scripts", "lint", "errwrap.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(allow)); got != "tiny.go:Boom" {
		t.Fatalf("allowlist = %q, want tiny.go:Boom", got)
	}

	buf.Reset()
	if code, err = run([]string{"-root", dir, "errwrap"}, &buf); err != nil || code != 0 {
		t.Fatalf("post-update run: exit %d, err %v, output:\n%s", code, err, buf.String())
	}
}

func writeFile(t *testing.T, path, body string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{"nosuch"}, &buf); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if code, _ := run([]string{"-definitely-not-a-flag"}, &buf); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}
