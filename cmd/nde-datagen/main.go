// Command nde-datagen emits the synthetic hiring scenario as CSV files —
// the offline stand-in for the tutorial's Colab dataset downloads. Error
// injection flags corrupt the letters table on the way out, so the CSVs can
// seed external debugging exercises.
//
// Usage:
//
//	nde-datagen -dir ./data [-n 300] [-seed 42] [-flip 0.1] [-missing 0.2] [telemetry flags]
//
// The shared telemetry flags (-metrics, -trace, -ledger, -slowspan, -ops,
// -ops-pprof, -ops-wait; see internal/obs/ops) enable observability for
// the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nde/internal/datagen"
	"nde/internal/obs"
	"nde/internal/obs/ops"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nde-datagen:", err)
		os.Exit(1)
	}
}

// run is the whole program behind flag parsing; it returns errors instead
// of exiting so the smoke tests can drive it in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nde-datagen", flag.ContinueOnError)
	dir := fs.String("dir", "data", "output directory")
	n := fs.Int("n", 300, "number of applicants")
	seed := fs.Int64("seed", 42, "random seed")
	flip := fs.Float64("flip", 0, "fraction of sentiment labels to flip")
	missing := fs.Float64("missing", 0, "fraction of employer_rating values to null out (MNAR)")
	tf := ops.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sess, err := tf.Start("nde-datagen", os.Stderr)
	if err != nil {
		return err
	}
	err = generate(*dir, *n, *seed, *flip, *missing, out)
	if cerr := sess.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func generate(dir string, n int, seed int64, flip, missing float64, out io.Writer) error {
	if flip < 0 || flip > 1 {
		return fmt.Errorf("-flip %v outside [0,1]", flip)
	}
	if missing < 0 || missing > 1 {
		return fmt.Errorf("-missing %v outside [0,1]", missing)
	}
	gsp := obs.StartSpan("datagen.hiring")
	gsp.SetInt("n", int64(n))
	h := datagen.Hiring(datagen.Config{N: n, Seed: seed})
	gsp.SetInt("letters", int64(h.Letters.NumRows())).End()
	letters := h.Letters
	if flip > 0 {
		dirty, corrupted, err := datagen.InjectLabelErrors(letters, "sentiment", flip, seed+1)
		if err != nil {
			return err
		}
		letters = dirty
		fmt.Fprintf(out, "flipped %d sentiment labels\n", len(corrupted))
	}
	if missing > 0 {
		dirty, affected, err := datagen.InjectMissing(letters, "employer_rating", missing, datagen.MissingMNAR, seed+2)
		if err != nil {
			return err
		}
		letters = dirty
		fmt.Fprintf(out, "nulled %d employer ratings (MNAR)\n", len(affected))
	}

	data := &datagen.HiringData{
		Letters:      letters,
		Jobs:         h.Jobs,
		Social:       h.Social,
		Demographics: h.Demographics,
	}
	if err := datagen.SaveHiringCSV(data, dir); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote letters(%d), jobs(%d), social(%d), demographics(%d) rows to %s\n",
		data.Letters.NumRows(), data.Jobs.NumRows(), data.Social.NumRows(), data.Demographics.NumRows(), dir)
	return nil
}
