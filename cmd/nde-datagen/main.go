// Command nde-datagen emits the synthetic hiring scenario as CSV files —
// the offline stand-in for the tutorial's Colab dataset downloads. Error
// injection flags corrupt the letters table on the way out, so the CSVs can
// seed external debugging exercises.
//
// Usage:
//
//	nde-datagen -dir ./data [-n 300] [-seed 42] [-flip 0.1] [-missing 0.2]
package main

import (
	"flag"
	"fmt"
	"os"

	"nde/internal/datagen"
	"nde/internal/obs"
)

func main() {
	dir := flag.String("dir", "data", "output directory")
	n := flag.Int("n", 300, "number of applicants")
	seed := flag.Int64("seed", 42, "random seed")
	flip := flag.Float64("flip", 0, "fraction of sentiment labels to flip")
	missing := flag.Float64("missing", 0, "fraction of employer_rating values to null out (MNAR)")
	metrics := flag.String("metrics", "", "dump metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	trace := flag.String("trace", "", "dump the span trace tree to this file on exit")
	flag.Parse()

	if *metrics != "" || *trace != "" {
		obs.Enable()
	}
	defer func() {
		if err := obs.DumpFiles(*metrics, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "nde-datagen:", err)
			os.Exit(1)
		}
	}()

	gsp := obs.StartSpan("datagen.hiring")
	gsp.SetInt("n", int64(*n))
	h := datagen.Hiring(datagen.Config{N: *n, Seed: *seed})
	gsp.SetInt("letters", int64(h.Letters.NumRows())).End()
	letters := h.Letters
	if *flip > 0 {
		dirty, corrupted, err := datagen.InjectLabelErrors(letters, "sentiment", *flip, *seed+1)
		if err != nil {
			fail(err)
		}
		letters = dirty
		fmt.Printf("flipped %d sentiment labels\n", len(corrupted))
	}
	if *missing > 0 {
		dirty, affected, err := datagen.InjectMissing(letters, "employer_rating", *missing, datagen.MissingMNAR, *seed+2)
		if err != nil {
			fail(err)
		}
		letters = dirty
		fmt.Printf("nulled %d employer ratings (MNAR)\n", len(affected))
	}

	out := &datagen.HiringData{
		Letters:      letters,
		Jobs:         h.Jobs,
		Social:       h.Social,
		Demographics: h.Demographics,
	}
	if err := datagen.SaveHiringCSV(out, *dir); err != nil {
		fail(err)
	}
	fmt.Printf("wrote letters(%d), jobs(%d), social(%d), demographics(%d) rows to %s\n",
		out.Letters.NumRows(), out.Jobs.NumRows(), out.Social.NumRows(), out.Demographics.NumRows(), *dir)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nde-datagen:", err)
	os.Exit(1)
}
