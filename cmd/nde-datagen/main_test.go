package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesScenarioCSVs(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-dir", dir, "-n", "30", "-seed", "7", "-flip", "0.1", "-missing", "0.1"}, &out)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	for _, f := range []string{"letters.csv", "jobs.csv", "social.csv", "demographics.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "wrote letters(30)") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunRejectsBadFractions(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dir", t.TempDir(), "-n", "20", "-flip", "2.0"}, &out); err == nil {
		t.Fatal("expected error for flip fraction > 1")
	}
	if err := run([]string{"-dir", t.TempDir(), "-n", "20", "-missing", "-0.5"}, &out); err == nil {
		t.Fatal("expected error for negative missing fraction")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("expected flag parse error")
	}
}
