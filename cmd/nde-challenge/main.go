// Command nde-challenge runs the §3.2 data-debugging challenge either with
// scripted contestants (the default) or interactively: the player reads the
// dirty training data, submits row ids to the cleaning oracle, and watches
// the hidden-test score move on the leaderboard.
//
// Usage:
//
//	nde-challenge [-n 300] [-seed 42] [-budget 30] [-interactive]
//
// Interactive commands (stdin):
//
//	hint           print the 10 most suspicious rows by kNN-Shapley
//	submit 3 17 42 clean the listed rows and score
//	board          print the leaderboard
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nde"
	"nde/internal/challenge"
	"nde/internal/datagen"
	"nde/internal/exp"
	"nde/internal/importance"
	"nde/internal/obs"
)

func main() {
	n := flag.Int("n", 300, "scenario size")
	seed := flag.Int64("seed", 42, "random seed")
	budget := flag.Int("budget", 30, "oracle repair budget")
	interactive := flag.Bool("interactive", false, "play on stdin instead of running scripted contestants")
	metrics := flag.String("metrics", "", "dump metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	trace := flag.String("trace", "", "dump the span trace tree to this file on exit")
	flag.Parse()

	if *metrics != "" || *trace != "" {
		obs.Enable()
	}
	defer func() {
		if err := obs.DumpFiles(*metrics, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "nde-challenge:", err)
			os.Exit(1)
		}
	}()

	if !*interactive {
		r, err := exp.E9Challenge(*n, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nde-challenge:", err)
			os.Exit(1)
		}
		fmt.Println(r.Table)
		fmt.Println(r.Leaderboard)
		return
	}

	s := nde.LoadRecommendationLetters(*n, *seed)
	dTrain, dValid, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-challenge:", err)
		os.Exit(1)
	}
	truth := append([]int(nil), dTrain.Y...)
	dirty, corrupted, err := datagen.FlipDatasetLabels(dTrain, 0.2, *seed+2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-challenge:", err)
		os.Exit(1)
	}
	c, err := challenge.New(dirty, truth, dValid, dTest, nil, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-challenge:", err)
		os.Exit(1)
	}
	base, err := c.BaselineScore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nde-challenge:", err)
		os.Exit(1)
	}
	var lb challenge.Leaderboard
	fmt.Printf("data-debugging challenge: %d training rows, %d hidden errors, budget %d\n",
		dirty.Len(), len(corrupted), *budget)
	fmt.Printf("baseline hidden-test accuracy: %.4f\n", base)
	fmt.Println("commands: hint | submit <ids...> | board | quit")

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "hint":
			scores, err := importance.KNNShapley(5, c.Train(), c.Valid())
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("most suspicious rows:", scores.BottomK(10))
		case "submit":
			var rows []int
			ok := true
			for _, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					fmt.Println("error: bad id", f)
					ok = false
					break
				}
				rows = append(rows, v)
			}
			if !ok || len(rows) == 0 {
				continue
			}
			score, err := c.Submit(rows)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("hidden-test accuracy: %.4f (budget left %d)\n", score, c.BudgetLeft())
			lb.Submit(challenge.Entry{Name: "you", Score: score, Repairs: len(rows), Baseline: base})
		case "board":
			fmt.Println(lb.String())
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}
