// Command nde-challenge runs the §3.2 data-debugging challenge either with
// scripted contestants (the default) or interactively: the player reads the
// dirty training data, submits row ids to the cleaning oracle, and watches
// the hidden-test score move on the leaderboard.
//
// Usage:
//
//	nde-challenge [-n 300] [-seed 42] [-budget 30] [-interactive]
//	              [-neighbor-mode exact|ivf|auto] [-nprobe N] [telemetry flags]
//
// The shared telemetry flags (-metrics, -trace, -ledger, -slowspan, -ops,
// -ops-pprof, -ops-wait; see internal/obs/ops) enable observability for
// the run.
//
// Interactive commands (stdin):
//
//	hint           print the 10 most suspicious rows by kNN-Shapley
//	submit 3 17 42 clean the listed rows and score
//	board          print the leaderboard
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nde"
	"nde/internal/challenge"
	"nde/internal/datagen"
	"nde/internal/exp"
	"nde/internal/importance"
	"nde/internal/obs/ops"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nde-challenge:", err)
		os.Exit(1)
	}
}

// run is the whole program behind flag parsing; it returns errors instead
// of exiting so the smoke tests can drive both modes in-process.
func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("nde-challenge", flag.ContinueOnError)
	n := fs.Int("n", 300, "scenario size")
	seed := fs.Int64("seed", 42, "random seed")
	budget := fs.Int("budget", 30, "oracle repair budget")
	interactive := fs.Bool("interactive", false, "play on stdin instead of running scripted contestants")
	neighborMode := fs.String("neighbor-mode", "exact", "neighbor search backend: exact, ivf, or auto")
	nprobe := fs.Int("nprobe", 0, "IVF partitions probed per query (0 = auto)")
	tf := ops.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, ok := nde.ParseSearchMode(*neighborMode)
	if !ok {
		return fmt.Errorf("unknown -neighbor-mode %q (want exact, ivf, or auto)", *neighborMode)
	}
	nde.SetNeighborSearch(nde.NeighborSearchConfig{Mode: mode, NProbe: *nprobe, Seed: *seed})

	sess, err := tf.Start("nde-challenge", os.Stderr)
	if err != nil {
		return err
	}
	if *interactive {
		err = playInteractive(*n, *seed, *budget, in, out)
	} else {
		err = runScripted(*n, *seed, out)
	}
	if cerr := sess.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func runScripted(n int, seed int64, out io.Writer) error {
	r, err := exp.E9Challenge(n, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, r.Table)
	fmt.Fprintln(out, r.Leaderboard)
	return nil
}

func playInteractive(n int, seed int64, budget int, in io.Reader, out io.Writer) error {
	s := nde.LoadRecommendationLetters(n, seed)
	dTrain, dValid, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		return err
	}
	truth := append([]int(nil), dTrain.Y...)
	dirty, corrupted, err := datagen.FlipDatasetLabels(dTrain, 0.2, seed+2)
	if err != nil {
		return err
	}
	c, err := challenge.New(dirty, truth, dValid, dTest, nil, budget)
	if err != nil {
		return err
	}
	base, err := c.BaselineScore()
	if err != nil {
		return err
	}
	var lb challenge.Leaderboard
	fmt.Fprintf(out, "data-debugging challenge: %d training rows, %d hidden errors, budget %d\n",
		dirty.Len(), len(corrupted), budget)
	fmt.Fprintf(out, "baseline hidden-test accuracy: %.4f\n", base)
	fmt.Fprintln(out, "commands: hint | submit <ids...> | board | quit")

	sc := bufio.NewScanner(in)
	for fmt.Fprint(out, "> "); sc.Scan(); fmt.Fprint(out, "> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "hint":
			scores, err := importance.KNNShapley(5, c.Train(), c.Valid())
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, "most suspicious rows:", scores.BottomK(10))
		case "submit":
			var rows []int
			ok := true
			for _, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					fmt.Fprintln(out, "error: bad id", f)
					ok = false
					break
				}
				rows = append(rows, v)
			}
			if !ok || len(rows) == 0 {
				continue
			}
			score, err := c.Submit(rows)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "hidden-test accuracy: %.4f (budget left %d)\n", score, c.BudgetLeft())
			lb.Submit(challenge.Entry{Name: "you", Score: score, Repairs: len(rows), Baseline: base})
		case "board":
			fmt.Fprintln(out, lb.String())
		case "quit", "exit":
			return nil
		default:
			fmt.Fprintln(out, "unknown command:", fields[0])
		}
	}
	return sc.Err()
}
