package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunScriptedContestants(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "80", "-seed", "3"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("scripted run: %v", err)
	}
	if !strings.Contains(out.String(), "rank") {
		t.Errorf("missing leaderboard in output:\n%s", out.String())
	}
}

// Drives the interactive loop over a scripted stdin. The duplicate ids in
// the first submit must consume exactly one budget unit (the Submit dedup
// fix), the out-of-range id must print an error instead of panicking, and
// the session must end cleanly on quit.
func TestRunInteractiveSession(t *testing.T) {
	script := strings.Join([]string{
		"submit 5 5",
		"submit 999999",
		"submit notanid",
		"flarb",
		"hint",
		"board",
		"quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	err := run([]string{"-n", "80", "-seed", "3", "-budget", "5", "-interactive"},
		strings.NewReader(script), &out)
	if err != nil {
		t.Fatalf("interactive run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "budget left 4") {
		t.Errorf("submit 5 5 should cost exactly one budget unit; output:\n%s", got)
	}
	if !strings.Contains(got, "error:") {
		t.Errorf("out-of-range submit should print an error; output:\n%s", got)
	}
	if !strings.Contains(got, "unknown command: flarb") {
		t.Errorf("unknown command should be reported; output:\n%s", got)
	}
	if !strings.Contains(got, "most suspicious rows:") {
		t.Errorf("hint should print suspicious rows; output:\n%s", got)
	}
}

func TestRunInteractiveEOF(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "80", "-seed", "3", "-interactive"},
		strings.NewReader(""), &out); err != nil {
		t.Fatalf("EOF on stdin should end the session cleanly: %v", err)
	}
}
