// Command nde-serve is the data-debugging daemon: the nde facade —
// kNN-Shapley importance, removal what-ifs, cleaning-strategy comparison
// — served as a JSON HTTP API with the ops telemetry plane mounted on
// the same listener.
//
// Usage:
//
//	nde-serve [-addr 127.0.0.1:8080] [-slots 4] [-queue 8]
//	          [-max-body 8388608] [-pprof] [-drain-timeout 30s]
//	          [-neighbor-mode exact|ivf|auto] [-nprobe N] [telemetry flags]
//
// Endpoints:
//
//	POST /v1/datasets    register train/valid[/test] CSVs or inline matrices
//	POST /v1/importance  kNN-Shapley scores for every training row
//	POST /v1/whatif      batch removal what-ifs (identity provenance)
//	POST /v1/cleaning    cleaning-strategy comparison (needs test+truth)
//	GET  /v1/runs/{id}   poll an async run
//	GET  /metrics /healthz /readyz /trace   ops plane
//
// Lifecycle: SIGTERM or SIGINT starts a graceful drain — /readyz flips
// to 503, new computations are shed with 503 class "draining", in-flight
// ones (async runs included) finish, then the listener shuts down and
// the telemetry session (ledger, metric/trace dumps) is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nde"
	"nde/internal/obs"
	"nde/internal/obs/ops"
	"nde/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nde-serve:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind flag parsing; it returns instead of
// exiting so tests can drive a full lifecycle in-process. It serves
// until the listener fails or a termination signal completes a drain.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("nde-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a free port)")
	slots := fs.Int("slots", 4, "concurrent computation budget")
	queue := fs.Int("queue", 8, "computations that may wait for a slot before 429s")
	maxBody := fs.Int64("max-body", 8<<20, "request body cap in bytes")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof on the listener")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight computations on shutdown")
	neighborMode := fs.String("neighbor-mode", "exact", "neighbor search backend: exact, ivf, or auto")
	nprobe := fs.Int("nprobe", 0, "IVF partitions probed per query (0 = auto)")
	seed := fs.Int64("seed", 42, "seed for seeded neighbor backends")
	tf := ops.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, ok := nde.ParseSearchMode(*neighborMode)
	if !ok {
		return fmt.Errorf("unknown -neighbor-mode %q (want exact, ivf, or auto)", *neighborMode)
	}
	nde.SetNeighborSearch(nde.NeighborSearchConfig{Mode: mode, NProbe: *nprobe, Seed: *seed})

	// A daemon's /metrics is only useful if counters move, so obs is on
	// regardless of the telemetry flags (which add the ledger and dumps).
	obs.Enable()
	sess, err := tf.StartDaemon("nde-serve", stderr)
	if err != nil {
		return err
	}

	core := serve.NewServer(serve.Config{
		Slots:        *slots,
		Queue:        *queue,
		MaxBodyBytes: *maxBody,
		Ops:          ops.Config{Pprof: *pprofFlag},
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		sess.Close()
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: core.Handler(), ReadHeaderTimeout: 5 * time.Second}

	// Register the signal handler before announcing the address so a
	// supervisor that kills us immediately is never missed.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	fmt.Fprintf(stderr, "nde-serve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener died on its own; there is nothing to drain.
		sess.Close()
		return err
	case sig := <-sigc:
		fmt.Fprintf(stderr, "nde-serve: %s received, draining\n", sig)
	}

	// Drain: stop admitting computations, wait (bounded) for in-flight
	// ones, then close the listener and flush the telemetry session.
	drained := make(chan struct{})
	go func() {
		core.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		fmt.Fprintln(stderr, "nde-serve: in-flight work finished")
	case <-time.After(*drainTimeout):
		fmt.Fprintf(stderr, "nde-serve: drain timeout after %s, shutting down anyway\n", *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "nde-serve: shutdown: %v\n", err)
	}
	if err := sess.Close(); err != nil {
		return fmt.Errorf("closing telemetry session: %w", err)
	}
	fmt.Fprintln(stderr, "nde-serve: drained, bye")
	return nil
}
