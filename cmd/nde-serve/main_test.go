package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nde/internal/obs"
)

// syncWriter is a concurrency-safe stderr sink for the daemon goroutine.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

var addrRE = regexp.MustCompile(`nde-serve: listening on (\S+)`)

func waitAddr(t *testing.T, w *syncWriter) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(w.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr:\n%s", w.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, v any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("non-JSON response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

// The full daemon lifecycle in-process: serve, register + score over
// real HTTP, then SIGTERM drains cleanly and flushes the run ledger.
func TestServeLifecycleSIGTERM(t *testing.T) {
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	dir := t.TempDir()
	ledger := dir + "/run.jsonl"
	var stderr syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-ledger", ledger}, &stderr)
	}()
	base := "http://" + waitAddr(t, &stderr)

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	var x [][]float64
	var y []int
	for i := 0; i < 24; i++ {
		c := i % 2
		x = append(x, []float64{float64(c)*4 + float64(i%5)*0.1, float64(c) * 4})
		y = append(y, c)
	}
	code, body := postJSON(t, base+"/v1/datasets", map[string]any{
		"train": map[string]any{"x": x, "y": y},
		"valid": map[string]any{"x": x[:8], "y": y[:8]},
	})
	if code != http.StatusOK {
		t.Fatalf("register = %d: %v", code, body)
	}
	id := body["id"].(string)

	code, body = postJSON(t, base+"/v1/importance", map[string]any{"dataset": id, "k": 3})
	if code != http.StatusOK {
		t.Fatalf("importance = %d: %v", code, body)
	}
	if scores, _ := body["scores"].([]any); len(scores) != 24 {
		t.Fatalf("scores = %d, want 24", len(scores))
	}

	// an async run started before the signal must finish during drain
	code, body = postJSON(t, base+"/v1/importance", map[string]any{"dataset": id, "k": 4, "async": true})
	if code != http.StatusAccepted {
		t.Fatalf("async importance = %d: %v", code, body)
	}
	runID := body["run"].(string)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "in-flight work finished") {
		t.Errorf("drain messages missing from stderr:\n%s", out)
	}

	// the ledger was flushed on drain: header first, then the op records
	// for the calls made above (the async run included)
	raw, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatalf("ledger not written: %v", err)
	}
	text := string(raw)
	if !strings.HasPrefix(text, `{"t":"header"`) {
		t.Errorf("ledger does not start with a header:\n%.200s", text)
	}
	for _, op := range []string{"ServeRegister", "ServeImportance"} {
		if !strings.Contains(text, op) {
			t.Errorf("ledger missing %s record:\n%s", op, text)
		}
	}
	_ = runID // the async run's op record is the second ServeImportance
}
