package nde

import "nde/internal/nderr"

// The ErrDegenerateInput family classifies bad inputs rejected at the
// library boundary. Every exported facade function returns an error —
// never panics — when handed the dirty data this library exists to debug:
// NaN/Inf features, empty frames or datasets, row-count mismatches,
// single-class label sets, or impossible neighborhood sizes.
//
// All sub-sentinels wrap ErrDegenerateInput, so
//
//	errors.Is(err, nde.ErrDegenerateInput)
//
// matches the whole family, while matching a specific sentinel narrows to
// one corruption class. Panics remain only in Must* helpers and in
// internal kernels whose preconditions are validated upstream; hitting one
// of those is a programmer bug, not a data error. See the "Error handling
// contract" sections of README.md and DESIGN.md.
var (
	// ErrDegenerateInput is the root sentinel of the family.
	ErrDegenerateInput = nderr.ErrDegenerateInput
	// ErrNonFinite marks NaN or ±Inf feature values.
	ErrNonFinite = nderr.ErrNonFinite
	// ErrEmptyInput marks empty frames, datasets, or validation sets.
	ErrEmptyInput = nderr.ErrEmptyInput
	// ErrShapeMismatch marks misaligned lengths or dimensions.
	ErrShapeMismatch = nderr.ErrShapeMismatch
	// ErrSingleClass marks label sets with fewer than two classes.
	ErrSingleClass = nderr.ErrSingleClass
	// ErrBadK marks neighborhood sizes outside [1, n].
	ErrBadK = nderr.ErrBadK
)
