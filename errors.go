package nde

import (
	"errors"

	"nde/internal/nderr"
)

// The ErrDegenerateInput family classifies bad inputs rejected at the
// library boundary. Every exported facade function returns an error —
// never panics — when handed the dirty data this library exists to debug:
// NaN/Inf features, empty frames or datasets, row-count mismatches,
// single-class label sets, or impossible neighborhood sizes.
//
// All sub-sentinels wrap ErrDegenerateInput, so
//
//	errors.Is(err, nde.ErrDegenerateInput)
//
// matches the whole family, while matching a specific sentinel narrows to
// one corruption class. Panics remain only in Must* helpers and in
// internal kernels whose preconditions are validated upstream; hitting one
// of those is a programmer bug, not a data error. See the "Error handling
// contract" sections of README.md and DESIGN.md.
var (
	// ErrDegenerateInput is the root sentinel of the family.
	ErrDegenerateInput = nderr.ErrDegenerateInput
	// ErrNonFinite marks NaN or ±Inf feature values.
	ErrNonFinite = nderr.ErrNonFinite
	// ErrEmptyInput marks empty frames, datasets, or validation sets.
	ErrEmptyInput = nderr.ErrEmptyInput
	// ErrShapeMismatch marks misaligned lengths or dimensions.
	ErrShapeMismatch = nderr.ErrShapeMismatch
	// ErrSingleClass marks label sets with fewer than two classes.
	ErrSingleClass = nderr.ErrSingleClass
	// ErrBadK marks neighborhood sizes outside [1, n].
	ErrBadK = nderr.ErrBadK
)

// ErrorClass maps an error to its stable machine-readable class name:
// the nderr sentinel class for family members, "" for nil, and "error"
// for anything else. It is the vocabulary shared by ledger "op" records
// and the nde-serve JSON error envelope, so a client can switch on the
// class without parsing message text. Specific sentinels take precedence
// over the family root.
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, nderr.ErrNonFinite):
		return "non_finite"
	case errors.Is(err, nderr.ErrEmptyInput):
		return "empty_input"
	case errors.Is(err, nderr.ErrShapeMismatch):
		return "shape_mismatch"
	case errors.Is(err, nderr.ErrSingleClass):
		return "single_class"
	case errors.Is(err, nderr.ErrBadK):
		return "bad_k"
	case errors.Is(err, nderr.ErrDegenerateInput):
		return "degenerate_input"
	default:
		return "error"
	}
}
