package nde

import (
	"fmt"
	"time"

	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/uncertain"
)

// MissingnessMechanism selects how injected missing values are distributed
// (re-export of uncertain.Missingness).
type MissingnessMechanism = uncertain.Missingness

// Missingness mechanisms for EncodeSymbolic.
const (
	MCAR = uncertain.MCAR
	MAR  = uncertain.MAR
	MNAR = uncertain.MNAR
)

// EncodeSymbolic marks a fraction of one feature's cells as missing under
// the chosen mechanism, bounded by the feature's observed range — the Go
// analogue of nde.encode_symbolic(train_df, uncertain_feature=...,
// missing_percentage=..., missingness="MNAR"). It returns the symbolic
// dataset and the affected row indices.
func EncodeSymbolic(d *Dataset, feature int, percentage float64, mech MissingnessMechanism, seed int64) (_ *SymbolicDataset, _ []int, err error) {
	defer recordOp("EncodeSymbolic", time.Now(), datasetRows(d), 0, &err)
	if err := checkDataset("train", d); err != nil {
		return nil, nil, err
	}
	return uncertain.EncodeSymbolic(d, feature, percentage, mech, seed)
}

// EstimateWithZorro propagates the symbolic training uncertainty through
// model training and returns the maximum worst-case test loss across the
// possible models — the Go analogue of nde.estimate_with_zorro(
// X_train_symb, test_df).
func EstimateWithZorro(train *SymbolicDataset, test *Dataset, worlds int, seed int64) (float64, error) {
	res, err := ZorroAnalysis(train, test, worlds, seed)
	if err != nil {
		return 0, err
	}
	return res.WorstCaseLoss, nil
}

// ZorroAnalysis runs the full Zorro analysis, returning prediction ranges,
// certainty flags and both the sampled and the sound worst-case estimates.
func ZorroAnalysis(train *SymbolicDataset, test *Dataset, worlds int, seed int64) (_ *uncertain.ZorroResult, err error) {
	defer recordOp("ZorroAnalysis", time.Now(), datasetRows(test), 0, &err)
	if train == nil {
		return nil, nderr.Empty("nde: symbolic training set is nil")
	}
	if err := checkDataset("test", test); err != nil {
		return nil, err
	}
	if worlds < 1 {
		return nil, fmt.Errorf("nde: Zorro needs at least one sampled world, got %d: %w", worlds, nderr.ErrDegenerateInput)
	}
	z := &uncertain.Zorro{Worlds: worlds, Seed: seed}
	return z.Analyze(train, test)
}

// CertainPredictionFraction reports the fraction of test points whose kNN
// prediction is provably identical in every completion of the symbolic
// training data (CPClean).
func CertainPredictionFraction(train *SymbolicDataset, test *Dataset, k int) (_ float64, _ []bool, err error) {
	defer recordOp("CertainPredictionFraction", time.Now(), datasetRows(test), 0, &err)
	if train == nil {
		return 0, nil, nderr.Empty("nde: symbolic training set is nil")
	}
	if err := checkDataset("test", test); err != nil {
		return 0, nil, err
	}
	if err := checkK("certain prediction", k, train.Len()); err != nil {
		return 0, nil, err
	}
	testX := make([][]float64, test.Len())
	for i := range testX {
		testX[i] = test.Row(i)
	}
	return uncertain.NewCPClean(k).CertainFraction(train, testX)
}

// DiscreteUncertainty re-exports the possible-worlds cell description.
type DiscreteUncertainty = uncertain.DiscreteUncertainty

// MultiplicityResult re-exports the possible-worlds analysis result.
type MultiplicityResult = uncertain.MultiplicityResult

// PossibleWorlds enumerates every completion of discretely uncertain cells
// (e.g. conflicting labels — the dataset-multiplicity problem), trains the
// default model per world, and reports which test predictions are
// consistent across all worlds.
func PossibleWorlds(base *Dataset, uncertainties []DiscreteUncertainty, test *Dataset, maxWorlds int) (_ *MultiplicityResult, err error) {
	defer recordOp("PossibleWorlds", time.Now(), datasetRows(base), 0, &err)
	if err := checkDataset("base", base); err != nil {
		return nil, err
	}
	if err := checkDataset("test", test); err != nil {
		return nil, err
	}
	return uncertain.EnumerateWorlds(base, uncertainties, test,
		func() ml.Classifier { return DefaultModel() }, maxWorlds)
}

// CompareWithImputation contrasts the uncertainty-aware analysis with the
// mean-imputation baseline: it returns the baseline model's test accuracy
// (trained on the box centers) and the fraction of test points whose
// prediction is stable across the sampled possible models.
func CompareWithImputation(train *SymbolicDataset, test *Dataset, worlds int, seed int64) (baselineAcc, certainFrac float64, err error) {
	res, err := ZorroAnalysis(train, test, worlds, seed)
	if err != nil {
		return 0, 0, err
	}
	baselineAcc = ml.Accuracy(test.Y, ml.PredictAll(res.Center, test))
	certain := 0
	for _, c := range res.Certain {
		if c {
			certain++
		}
	}
	certainFrac = float64(certain) / float64(len(res.Certain))
	return baselineAcc, certainFrac, nil
}
