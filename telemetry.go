package nde

import (
	"time"

	"nde/internal/frame"
	"nde/internal/ml"
	"nde/internal/obs"
)

// This file wires the facade into the run ledger (obs.Ledger): every
// facade entry point appends exactly one "op" record per call — op name,
// wall-clock duration, input row count, worker count, neighbor-index
// cache outcome, and the nderr sentinel class when the call failed.
// Delegating wrappers (WhatIf -> WhatIfParallel, EstimateWithZorro ->
// ZorroAnalysis, LoadRecommendationLetters -> ScenarioFromData) record in
// the inner function only, preserving the one-record-per-call invariant.
//
// With no ledger installed the hooks cost one atomic load and allocate
// nothing, matching the obs no-op contract.

// errClass is the ledger-record spelling of ErrorClass (errors.go); the
// exported function is the single source of truth for class names so the
// ledger and the nde-serve error envelope can never drift apart.
func errClass(err error) string { return ErrorClass(err) }

// recordOp appends the facade-call ledger record. It is designed for
//
//	defer recordOp("Op", time.Now(), rows, workers, &err)
//
// at the top of an entry point with a named error return: the arguments
// are evaluated at entry (start time, input sizes) while the error is
// read at return. No-op and allocation-free when no ledger is installed.
func recordOp(op string, start time.Time, rows, workers int, errp *error) {
	if obs.ActiveLedger() == nil {
		return
	}
	var class string
	if errp != nil {
		class = errClass(*errp)
	}
	obs.RecordOp(op, time.Since(start), rows, workers, "", class)
}

// recordOpCache is recordOp for entry points that can attribute a
// neighbor-index cache outcome ("hit", "miss", or "").
func recordOpCache(op string, start time.Time, rows int, cache *string, errp *error) {
	if obs.ActiveLedger() == nil {
		return
	}
	var class string
	if errp != nil {
		class = errClass(*errp)
	}
	obs.RecordOp(op, time.Since(start), rows, 0, *cache, class)
}

// indexCacheOutcome samples the neighbor-index cache counters and returns
// a closure classifying what one intervening computation did: "hit",
// "miss", or "" when observability is off (the counters only move while
// obs is enabled) or nothing happened. Best-effort under concurrency —
// overlapping calls can misattribute each other's outcome, which is
// acceptable for a telemetry annotation.
func indexCacheOutcome() func() string {
	if !obs.Enabled() {
		return func() string { return "" }
	}
	hits := obs.Default().Counter("importance_neighbor_index_hits_total").Value()
	misses := obs.Default().Counter("importance_neighbor_index_misses_total").Value()
	return func() string {
		switch {
		case obs.Default().Counter("importance_neighbor_index_misses_total").Value() > misses:
			return "miss"
		case obs.Default().Counter("importance_neighbor_index_hits_total").Value() > hits:
			return "hit"
		default:
			return ""
		}
	}
}

// frameRows is a nil-safe row count for ledger records.
func frameRows(f *frame.Frame) int {
	if f == nil {
		return 0
	}
	return f.NumRows()
}

// datasetRows is a nil-safe dataset length for ledger records.
func datasetRows(d *ml.Dataset) int {
	if d == nil {
		return 0
	}
	return d.Len()
}
