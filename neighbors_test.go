package nde

import (
	"testing"

	"nde/internal/importance"
)

func TestNearestLettersModes(t *testing.T) {
	s := LoadRecommendationLetters(300, 7)
	exact, err := NearestLetters(s.Train, s.Valid, 5, NeighborSearchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != s.Valid.NumRows() {
		t.Fatalf("%d answers for %d queries", len(exact), s.Valid.NumRows())
	}
	for q, nn := range exact {
		if len(nn) != 5 {
			t.Fatalf("query %d: %d neighbors, want 5", q, len(nn))
		}
	}
	// Auto mode on this small set must resolve to the exact path and match
	// the exact answers element-for-element.
	auto, err := NearestLetters(s.Train, s.Valid, 5, NeighborSearchConfig{Mode: SearchAuto})
	if err != nil {
		t.Fatal(err)
	}
	for q := range exact {
		for i := range exact[q] {
			if exact[q][i] != auto[q][i] {
				t.Fatalf("auto-mode answer diverges at query %d rank %d", q, i)
			}
		}
	}
	// explicit IVF still returns full answers (partial probes fall back)
	ivf, err := NearestLetters(s.Train, s.Valid, 5, NeighborSearchConfig{Mode: SearchIVF, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for q, nn := range ivf {
		if len(nn) != 5 {
			t.Fatalf("ivf query %d: %d neighbors, want 5", q, len(nn))
		}
	}
	// degenerate inputs error through the facade checks
	if _, err := NearestLetters(nil, s.Valid, 5, NeighborSearchConfig{}); err == nil {
		t.Error("nil train frame did not error")
	}
	if _, err := NearestLetters(s.Train, s.Valid, 10_000, NeighborSearchConfig{}); err == nil {
		t.Error("oversized k did not error")
	}
}

func TestFacadeNeighborSearchSettings(t *testing.T) {
	defer SetNeighborSearch(NeighborSearchConfig{})
	SetNeighborSearch(NeighborSearchConfig{Mode: SearchAuto, NProbe: 3})
	got := NeighborSearch()
	if got.Mode != SearchAuto || got.NProbe != 3 {
		t.Fatalf("NeighborSearch() = %+v, want auto/nprobe=3", got)
	}
	if got.Fingerprint() != importance.NeighborSearch().Fingerprint() {
		t.Error("facade and importance disagree on the active config")
	}

	prev, err := SetNeighborIndexCacheCapacity(2)
	if err != nil {
		t.Fatal(err)
	}
	defer SetNeighborIndexCacheCapacity(prev)
	if got := NeighborIndexCacheCapacity(); got != 2 {
		t.Fatalf("capacity = %d, want 2", got)
	}

	mode, ok := ParseSearchMode("ivf")
	if !ok || mode != SearchIVF {
		t.Errorf("ParseSearchMode(ivf) = (%v, %v)", mode, ok)
	}
}

// kNN-Shapley scores must be invariant to the shared search mode: the
// closed form consumes the exact full ranking in every mode.
func TestKNNShapleyInvariantUnderSearchMode(t *testing.T) {
	importance.ResetNeighborIndexCache()
	defer importance.ResetNeighborIndexCache()
	defer SetNeighborSearch(NeighborSearchConfig{})

	s := LoadRecommendationLetters(260, 9)
	base, err := KNNShapleyValues(s.Train, s.Valid, 5)
	if err != nil {
		t.Fatal(err)
	}
	SetNeighborSearch(NeighborSearchConfig{Mode: SearchAuto, ExactThreshold: 10, Seed: 2})
	approx, err := KNNShapleyValues(s.Train, s.Valid, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != approx[i] {
			t.Fatalf("score %d differs under auto search mode: %v vs %v", i, base[i], approx[i])
		}
	}
}
