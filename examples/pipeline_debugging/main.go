// Pipeline debugging: the Figure-3 walkthrough of the tutorial.
//
// We build the preprocessing pipeline over the hiring scenario — joining
// the letters with job details and social-media side data, filtering to the
// healthcare sector, deriving has_twitter, and encoding features — then run
// it with fine-grained provenance, inspect the annotated query plan to see
// where pipeline time is spent, compute Datascope importance of the
// *source* tuples, and measure the effect of removing the lowest-importance
// ones.
//
// Run with: go run ./examples/pipeline_debugging
package main

import (
	"fmt"
	"log"

	"nde"
	"nde/internal/obs"
)

func main() {
	// Turn on observability so pipeline runs collect per-operator stats
	// and spans (the cmd binaries do this via -metrics/-trace flags).
	obs.Enable()

	scenario := nde.LoadRecommendationLetters(400, 42)
	trainErr, _, err := nde.InjectLabelErrors(scenario.Train, 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}

	pipe, err := nde.BuildHiringPipeline(trainErr, scenario.Data.Jobs, scenario.Data.Social)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pipeline query plan:")
	fmt.Println(pipe.ShowQueryPlan())

	ft, err := pipe.WithProvenance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPipeline output: %d rows x %d features\n", ft.Data.Len(), ft.Data.Dim())

	// The annotated plan shows where the time went: each operator carries
	// rows in/out, self wall time, and memo reuse from the run above.
	if rs := pipe.Pipeline.LastRunStats(); rs != nil {
		fmt.Printf("\nAnnotated query plan (run took %s, %d operators executed):\n",
			rs.Wall, rs.MemoMisses)
		fmt.Println(pipe.Pipeline.RenderPlanWithCosts(pipe.Output))
	}

	valid, err := pipe.FeaturizeValidationLike(scenario.Valid, scenario.Data.Jobs, scenario.Data.Social, pipe.Encoder)
	if err != nil {
		log.Fatal(err)
	}

	importances, err := pipe.DatascopeScores(ft, valid, 3)
	if err != nil {
		log.Fatal(err)
	}
	lowest := importances.BottomK(25)
	fmt.Printf("\n25 lowest-importance source tuples: %v\n", lowest)

	// map low-importance source tuples to the pipeline outputs they support
	isLow := make(map[int]bool)
	for _, i := range lowest {
		isLow[i] = true
	}
	var remove []int
	for o, rows := range ft.SourceRows("train") {
		for _, r := range rows {
			if isLow[r] {
				remove = append(remove, o)
				break
			}
		}
	}
	before, after, err := nde.RemoveAndEvaluate(ft, remove, valid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRemoval changed accuracy by %+.4f (%.3f -> %.3f).\n", after-before, before, after)
}
