// Unlearning: debugging meets the right to be forgotten (§2.4).
//
// Data debugging repeatedly asks "what if these points were removed?" —
// the same primitive that GDPR-style deletion requests need at low latency.
// This example identifies the most harmful training points with
// kNN-Shapley, forgets them *without retraining* via influence-style
// unlearning, and verifies the unlearned model matches exact retraining.
// It also shows the bagging certified radius: how many training-set edits a
// random-forest prediction provably survives.
//
// Run with: go run ./examples/unlearning
package main

import (
	"fmt"
	"log"
	"time"

	"nde"
	"nde/internal/datagen"
	"nde/internal/importance"
	"nde/internal/ml"
)

func main() {
	scenario := nde.LoadRecommendationLetters(300, 42)
	train, valid, test, err := nde.FeaturizeLetterSplits(scenario.Train, scenario.Valid, scenario.Test)
	if err != nil {
		log.Fatal(err)
	}
	dirty, _, err := datagen.FlipDatasetLabels(train, 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 1. identify the most harmful points
	scores, err := importance.KNNShapley(5, dirty, valid)
	if err != nil {
		log.Fatal(err)
	}
	harmful := scores.BottomK(15)
	fmt.Printf("15 most harmful training points: %v\n\n", harmful)

	// 2. forget them via influence-style unlearning
	model := ml.NewUnlearnableLogReg()
	if err := model.Fit(dirty); err != nil {
		log.Fatal(err)
	}
	accBefore := ml.Accuracy(test.Y, ml.PredictAll(model, test))

	start := time.Now()
	if err := model.Unlearn(harmful); err != nil {
		log.Fatal(err)
	}
	unlearnTime := time.Since(start)
	accAfter := ml.Accuracy(test.Y, ml.PredictAll(model, test))
	fmt.Printf("unlearning %d points took %v (retrains triggered: %d)\n",
		len(harmful), unlearnTime.Round(time.Microsecond), model.Retrains())
	fmt.Printf("test accuracy: %.3f -> %.3f\n\n", accBefore, accAfter)

	// 3. verify against exact retraining
	rm := make(map[int]bool, len(harmful))
	for _, i := range harmful {
		rm[i] = true
	}
	rest, _ := dirty.Without(rm)
	fresh := ml.NewUnlearnableLogReg()
	start = time.Now()
	if err := fresh.Fit(rest); err != nil {
		log.Fatal(err)
	}
	retrainTime := time.Since(start)
	agree := 0
	for i := 0; i < test.Len(); i++ {
		if model.Predict(test.Row(i)) == fresh.Predict(test.Row(i)) {
			agree++
		}
	}
	fmt.Printf("exact retraining took %v; unlearned model agrees on %d/%d test predictions\n\n",
		retrainTime.Round(time.Microsecond), agree, test.Len())

	// 4. certified robustness via bagging
	forest := ml.NewRandomForest(21, 3)
	if err := forest.Fit(rest); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bagging certified radii for the first 5 test points")
	fmt.Println("(the prediction provably survives this many flipped trees):")
	for i := 0; i < 5 && i < test.Len(); i++ {
		fmt.Printf("  test %d: prediction %d, certified radius %d\n",
			i, forest.Predict(test.Row(i)), forest.CertifiedRadius(test.Row(i)))
	}
}
