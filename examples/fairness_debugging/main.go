// Fairness debugging: Gopher-style subgroup explanations.
//
// A poisoned data source flips labels for one protected group's positive
// examples, teaching the model to discriminate — an equalized-odds
// violation on clean validation data. The subgroup search finds the
// training slice whose removal best repairs the violation, pointing the
// practitioner at the root cause instead of at symptoms.
//
// Run with: go run ./examples/fairness_debugging
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nde/internal/frame"
	"nde/internal/importance"
	"nde/internal/linalg"
	"nde/internal/ml"
)

func main() {
	train, attrs, valid := makePoisonedHiring(240, 42)

	base, subgroups, err := importance.GopherExplanations(train, attrs, valid, importance.GopherConfig{
		TopK:       5,
		MinSupport: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Baseline equalized-odds violation: %.3f\n\n", base)
	fmt.Println("Top subgroup explanations (removal impact):")
	for i, sg := range subgroups {
		fmt.Printf("  %d. %s\n", i+1, sg)
	}

	if len(subgroups) > 0 {
		fmt.Printf("\nRemoving the top subgroup reduces the violation from %.3f to %.3f.\n",
			base, subgroups[0].Violation)
	}
}

// makePoisonedHiring builds the demo data: group membership is a model-
// visible feature; a "bad" ingestion source flipped most positive labels of
// protected group b.
func makePoisonedHiring(n int, seed int64) (*ml.Dataset, *frame.Frame, *ml.Dataset) {
	r := rand.New(rand.NewSource(seed))
	gen := func(m int, poison bool) (*linalg.Matrix, []int, []string, []string) {
		x := linalg.NewMatrix(m, 3)
		y := make([]int, m)
		grp := make([]string, m)
		src := make([]string, m)
		for i := 0; i < m; i++ {
			c := i % 2
			sign := float64(2*c - 1)
			x.Set(i, 0, sign*2+r.NormFloat64())
			x.Set(i, 1, sign*2+r.NormFloat64())
			y[i] = c
			grp[i], src[i] = "a", "good"
			if r.Float64() < 0.5 {
				grp[i] = "b"
				x.Set(i, 2, 1)
			}
			if poison && grp[i] == "b" && y[i] == 1 && r.Float64() < 0.8 {
				y[i] = 0
				src[i] = "bad"
			}
		}
		return x, y, grp, src
	}
	x, y, grp, src := gen(n, true)
	train, _ := ml.NewDataset(x, y)
	attrs := frame.MustNew(
		frame.NewStringSeries("grp", grp, nil),
		frame.NewStringSeries("src", src, nil),
	)
	vx, vy, vg, _ := gen(n/2, false)
	valid, _ := ml.NewDataset(vx, vy)
	valid, _ = valid.WithGroups(vg)
	return train, attrs, valid
}
