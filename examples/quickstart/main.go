// Quickstart: the Figure-2 walkthrough of the tutorial, end to end.
//
// We load the synthetic recommendation-letters scenario, inject 10% label
// errors, watch the sentiment classifier degrade, identify the most harmful
// tuples with exact kNN-Shapley importance, clean them with ground truth,
// and watch accuracy recover.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nde"
)

func main() {
	scenario := nde.LoadRecommendationLetters(300, 42)

	accClean, err := nde.EvaluateModel(scenario.Train, scenario.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Accuracy on clean data: %.3f\n", accClean)

	trainErr, corrupted, err := nde.InjectLabelErrors(scenario.Train, 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}
	accDirty, err := nde.EvaluateModel(trainErr, scenario.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Accuracy with data errors: %.3f\n", accDirty)

	importances, err := nde.KNNShapleyValues(trainErr, scenario.Valid, 5)
	if err != nil {
		log.Fatal(err)
	}
	lowest := importances.BottomK(25)

	fmt.Println("\nPotential data errors (lowest importance):")
	display, err := nde.PrettyPrintWithScores(trainErr, lowest[:5], importances)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(display)

	hits := 0
	for _, i := range lowest {
		if corrupted[i] {
			hits++
		}
	}
	fmt.Printf("\n%d of the bottom-25 tuples are genuinely corrupted\n", hits)

	// replace with clean ground truth
	repaired := trainErr.Clone()
	for _, i := range lowest {
		truth, err := scenario.Train.Value(i, "sentiment")
		if err != nil {
			log.Fatal(err)
		}
		if err := repaired.MustColumn("sentiment").Set(i, truth); err != nil {
			log.Fatal(err)
		}
	}
	accCleaned, err := nde.EvaluateModel(repaired, scenario.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cleaning some records improved accuracy from %.3f to %.3f.\n", accDirty, accCleaned)
}
