// Uncertainty: the Figure-4 walkthrough of the tutorial.
//
// We inject increasing percentages of MNAR missing values into the
// employer_rating feature, propagate the resulting uncertainty through
// model training with Zorro-style possible-worlds analysis, and watch the
// maximum worst-case loss rise. We then contrast the uncertainty-aware view
// with the mean-imputation baseline and check CPClean certain predictions.
//
// Run with: go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"

	"nde"
)

func main() {
	scenario := nde.LoadRecommendationLetters(250, 42)
	train, _, test, err := nde.FeaturizeLetterSplits(scenario.Train, scenario.Valid, scenario.Test)
	if err != nil {
		log.Fatal(err)
	}
	feature := train.Dim() - 1 // standardized employer_rating

	fmt.Println("Maximum worst-case loss vs. % missing values (MNAR):")
	for _, pct := range []float64{0.05, 0.10, 0.15, 0.20, 0.25} {
		symb, missing, err := nde.EncodeSymbolic(train, feature, pct, nde.MNAR, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Evaluating %.0f%% of missing values in employer_rating (%d cells)...\n",
			pct*100, len(missing))
		maxLoss, err := nde.EstimateWithZorro(symb, test, 16, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  max worst-case loss: %.4f\n", maxLoss)
	}

	// uncertainty-aware vs. imputation at 20% missing
	symb, _, err := nde.EncodeSymbolic(train, feature, 0.2, nde.MNAR, 7)
	if err != nil {
		log.Fatal(err)
	}
	baselineAcc, certainFrac, err := nde.CompareWithImputation(symb, test, 16, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt 20%% missing: imputation baseline accuracy %.3f, but only %.0f%%\n", baselineAcc, certainFrac*100)
	fmt.Println("of test predictions are stable across the possible models —")
	fmt.Println("the single imputed number hides that uncertainty.")

	zr, err := nde.ZorroAnalysis(symb, test, 16, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPrediction ranges for the first 5 test points (P(positive)):")
	for i := 0; i < 5 && i < len(zr.ProbaRanges); i++ {
		state := "certain"
		if !zr.Certain[i] {
			state = "UNCERTAIN"
		}
		fmt.Printf("  test %d: sampled %v  sound %v  %s\n", i, zr.ProbaRanges[i], zr.SoundProbaRanges[i], state)
	}

	frac, _, err := nde.CertainPredictionFraction(symb, test, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCPClean: %.0f%% of test points have certain kNN predictions.\n", frac*100)
}
