// Challenge: the §3.2 data-debugging challenge played by scripted
// contestants.
//
// A hidden 20% of training labels are flipped. Each contestant gets the
// same cleaning budget and submits row ids to the oracle, which repairs
// them, retrains the hidden classifier, and scores it on a hidden test set.
// The leaderboard shows how much importance-guided debugging beats blind
// cleaning.
//
// Run with: go run ./examples/challenge
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nde"
	"nde/internal/challenge"
	"nde/internal/cleaning"
	"nde/internal/datagen"
	"nde/internal/importance"
)

func main() {
	scenario := nde.LoadRecommendationLetters(300, 42)
	train, valid, hidden, err := nde.FeaturizeLetterSplits(scenario.Train, scenario.Valid, scenario.Test)
	if err != nil {
		log.Fatal(err)
	}
	truth := append([]int(nil), train.Y...)
	dirty, corrupted, err := datagen.FlipDatasetLabels(train, 0.2, 7)
	if err != nil {
		log.Fatal(err)
	}
	budget := len(corrupted)
	fmt.Printf("challenge: %d rows, %d hidden label errors, budget %d repairs\n\n",
		dirty.Len(), len(corrupted), budget)

	var board challenge.Leaderboard
	contestants := map[string]func(c *challenge.Challenge) ([]int, error){
		"random": func(c *challenge.Challenge) ([]int, error) {
			return rand.New(rand.NewSource(1)).Perm(dirty.Len())[:budget], nil
		},
		"noise-score": func(c *challenge.Challenge) ([]int, error) {
			scores, err := importance.SelfConfidence(c.Train(), importance.NoiseConfig{Seed: 2})
			if err != nil {
				return nil, err
			}
			return scores.BottomK(budget), nil
		},
		"knn-shapley": func(c *challenge.Challenge) ([]int, error) {
			scores, err := importance.KNNShapley(5, c.Train(), c.Valid())
			if err != nil {
				return nil, err
			}
			return scores.BottomK(budget), nil
		},
		"iterative-shapley": func(c *challenge.Challenge) ([]int, error) {
			// re-rank after each batch using the cleaning loop, then submit
			// everything it chose
			res, err := cleaning.IterativeClean(c.Train(), c.Valid(), c.Valid(),
				&cleaning.LabelOracle{Truth: truth}, // local simulation only
				&cleaning.KNNShapleyStrategy{K: 5},
				func() nde.Classifier { return nde.DefaultModel() },
				budget/4, budget)
			if err != nil {
				return nil, err
			}
			var rows []int
			for i := 0; i < dirty.Len() && len(rows) < budget; i++ {
				if res.Final.Y[i] != c.Train().Y[i] {
					rows = append(rows, i)
				}
			}
			// pad with the lowest Shapley scores if the loop repaired fewer
			if len(rows) < budget {
				scores, err := importance.KNNShapley(5, c.Train(), c.Valid())
				if err != nil {
					return nil, err
				}
				seen := make(map[int]bool)
				for _, r := range rows {
					seen[r] = true
				}
				for _, r := range scores.RankAscending() {
					if len(rows) == budget {
						break
					}
					if !seen[r] {
						rows = append(rows, r)
					}
				}
			}
			return rows, nil
		},
	}

	for _, name := range []string{"random", "noise-score", "knn-shapley", "iterative-shapley"} {
		c, err := challenge.New(dirty, truth, valid, hidden, nil, budget)
		if err != nil {
			log.Fatal(err)
		}
		base, err := c.BaselineScore()
		if err != nil {
			log.Fatal(err)
		}
		rows, err := contestants[name](c)
		if err != nil {
			log.Fatal(err)
		}
		score, err := c.Submit(rows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s cleaned %d rows -> hidden-test accuracy %.4f (baseline %.4f)\n",
			name, len(rows), score, base)
		board.Submit(challenge.Entry{Name: name, Score: score, Repairs: len(rows), Baseline: base})
	}

	fmt.Println("\nleaderboard:")
	fmt.Println(board.String())
}
