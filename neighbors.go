package nde

import (
	"time"

	"nde/internal/importance"
	"nde/internal/ml"
)

// Neighbor-search facade: selects the backend every neighbor-driven helper
// uses (kNN-Shapley's shared index cache, NearestLetters) and bounds the
// shared index cache. The exact backend is the default and the determinism
// oracle; SearchIVF/SearchAuto trade exactness for sub-linear queries via
// the internal IVF index (float32 kernels, k-means partitions).

// Re-exported search types, so callers can pick a mode without importing
// internal packages.
type (
	// SearchMode selects how neighbor top-k queries are answered.
	SearchMode = ml.SearchMode
	// NeighborSearchConfig tunes the neighbor-search backend (mode,
	// partition count, probes, recall floor). The zero value is exact.
	NeighborSearchConfig = ml.SearchConfig
	// NeighborIndex answers neighbor-ordering queries for a fixed
	// (train, queries) dataset pair.
	NeighborIndex = ml.NeighborIndex
)

// The three search modes; see ml.SearchMode.
const (
	// SearchExact always computes the full float64 distance matrix.
	SearchExact = ml.SearchExact
	// SearchIVF always serves top-k from the approximate IVF index.
	SearchIVF = ml.SearchIVF
	// SearchAuto stays exact for small training sets and switches to IVF
	// only after certifying the configured recall floor on a sample.
	SearchAuto = ml.SearchAuto
)

// ParseSearchMode maps a flag string ("exact", "ivf", "auto") to a
// SearchMode; unknown strings report false.
func ParseSearchMode(s string) (SearchMode, bool) { return ml.ParseSearchMode(s) }

// SetNeighborSearch selects the search configuration used by every
// subsequently built shared neighbor index (kNN-Shapley and the facade
// helpers). Indexes built under other configs stay cached under their own
// keys. Shapley scores are unaffected by the mode — the closed form always
// consumes the exact full ranking — but prediction-style consumers of the
// shared cache pick up the approximate path.
func SetNeighborSearch(cfg NeighborSearchConfig) { importance.SetNeighborSearch(cfg) }

// NeighborSearch returns the currently configured shared search config.
func NeighborSearch() NeighborSearchConfig { return importance.NeighborSearch() }

// SetNeighborIndexCacheCapacity bounds the shared neighbor-index LRU cache
// (default 4) and returns the previous capacity. Shrinking evicts the
// least recently used entries immediately. n < 1 is rejected with a
// wrapped ErrDegenerateInput, leaving the capacity unchanged (the current
// value is returned alongside the error).
func SetNeighborIndexCacheCapacity(n int) (int, error) { return importance.SetIndexCacheCapacity(n) }

// NeighborIndexCacheCapacity returns the current shared-cache capacity.
func NeighborIndexCacheCapacity() int { return importance.IndexCacheCapacity() }

// NewNeighborSearchIndex builds a NeighborIndex over featurized datasets
// with an explicit search configuration — the facade route to the ANN
// backend for callers that already hold Datasets.
func NewNeighborSearchIndex(train, queries *Dataset, workers int, cfg NeighborSearchConfig) (*NeighborIndex, error) {
	return ml.NewNeighborIndexSearch(train, queries, workers, cfg)
}

// NearestLetters featurizes the letters splits (fitting the encoder on
// train) and returns, for each query letter, the indices of its k nearest
// training letters under the configured search backend, nearest first.
// With SearchIVF/SearchAuto the per-query answers are approximate but the
// per-query exactness fallback still applies: a query whose probed
// partitions hold fewer than k rows is answered exactly.
func NearestLetters(train, queries *Frame, k int, cfg NeighborSearchConfig) (_ [][]int, err error) {
	defer recordOp("NearestLetters", time.Now(), frameRows(train), 0, &err)
	if err := checkFrame("train letters", train, "letter_text", "employer_rating", "sentiment"); err != nil {
		return nil, err
	}
	if err := checkFrame("query letters", queries, "letter_text", "employer_rating", "sentiment"); err != nil {
		return nil, err
	}
	ct := LetterFeaturizer()
	dTrain, err := featurizeWith(ct, train, true)
	if err != nil {
		return nil, err
	}
	dQueries, err := featurizeWith(ct, queries, false)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 5
	}
	if err := checkK("NearestLetters", k, dTrain.Len()); err != nil {
		return nil, err
	}
	ix, err := ml.NewNeighborIndexSearch(dTrain, dQueries, 0, cfg)
	if err != nil {
		return nil, err
	}
	out := make([][]int, dQueries.Len())
	for q := range out {
		out[q] = ix.TopK(q, k)
	}
	return out, nil
}
