package nde

import (
	"fmt"

	"nde/internal/nderr"
)

// checkFrame rejects nil or zero-row frames and missing required columns,
// so facade functions fail with a clear wrapped error instead of panicking
// deep inside join or encode code.
func checkFrame(what string, f *Frame, cols ...string) error {
	if f == nil {
		return nderr.Empty("nde: " + what + " frame is nil")
	}
	if f.NumRows() == 0 {
		return nderr.Empty("nde: " + what + " frame has no rows")
	}
	for _, c := range cols {
		if !f.HasColumn(c) {
			return fmt.Errorf("nde: %s frame is missing column %q (have %v): %w",
				what, c, f.ColumnNames(), nderr.ErrDegenerateInput)
		}
	}
	return nil
}

// checkDataset rejects nil/empty datasets and non-finite features.
func checkDataset(what string, d *Dataset) error {
	if d == nil || d.X == nil {
		return nderr.Empty("nde: " + what + " dataset is nil")
	}
	if d.Len() == 0 {
		return nderr.Empty("nde: " + what + " dataset has no rows")
	}
	if err := d.X.CheckFinite(what + " features"); err != nil {
		return fmt.Errorf("nde: %w", err)
	}
	return nil
}

// checkTrainable additionally requires at least two label classes: every
// importance and learning method is meaningless on single-class data.
func checkTrainable(what string, d *Dataset) error {
	if err := d.CheckTrainable(what); err != nil {
		return fmt.Errorf("nde: %w", err)
	}
	return nil
}

// checkPair requires two datasets to live in the same feature space.
func checkPair(whatA string, a *Dataset, whatB string, b *Dataset) error {
	if err := checkDataset(whatA, a); err != nil {
		return err
	}
	if err := checkDataset(whatB, b); err != nil {
		return err
	}
	if a.Dim() != b.Dim() {
		return nderr.Mismatch("nde: "+whatA+" vs "+whatB+" feature dims", a.Dim(), b.Dim())
	}
	return nil
}

// checkK bounds a neighborhood size by the candidate-set size.
func checkK(what string, k, n int) error {
	if k < 1 || k > n {
		return nderr.BadK("nde: "+what, k, n)
	}
	return nil
}

// checkRows validates row indices against a row count.
func checkRows(what string, rows []int, n int) error {
	for _, r := range rows {
		if r < 0 || r >= n {
			return fmt.Errorf("nde: %s row %d out of range [0,%d): %w", what, r, n, nderr.ErrDegenerateInput)
		}
	}
	return nil
}
