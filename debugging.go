package nde

import (
	"fmt"
	"time"

	"nde/internal/challenge"
	"nde/internal/cleaning"
	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/pipeline"
	"nde/internal/prov"
	"nde/internal/uncertain"
)

// Re-exported debugging types for the facade's consumers.
type (
	// CleaningStrategy ranks training rows for prioritized cleaning.
	CleaningStrategy = cleaning.Strategy
	// CleaningResult is the outcome of an iterative cleaning run.
	CleaningResult = cleaning.Result
	// Challenge is the §3.2 data-debugging game.
	Challenge = challenge.Challenge
	// Leaderboard ranks challenge submissions.
	Leaderboard = challenge.Leaderboard
	// Subgroup is a fairness-debugging explanation.
	Subgroup = importance.Subgroup
	// FairnessRange bounds a fairness metric over possible worlds.
	FairnessRange = uncertain.FairnessRange
	// RAGCorpus is a retrieval corpus with per-document importance.
	RAGCorpus = importance.RAGCorpus
	// RemovalVariant is one what-if intervention over pipeline source data.
	RemovalVariant = pipeline.RemovalVariant
	// WhatIfResult is the metric of one what-if variant.
	WhatIfResult = pipeline.WhatIfResult
	// WhatIfOptions tunes what-if evaluation: worker count and whether to
	// force the full-rebuild determinism oracle instead of the neighbor
	// delta fast path (results are bit-for-bit identical either way).
	WhatIfOptions = pipeline.WhatIfConfig
	// TupleID identifies one row of one pipeline source table.
	TupleID = prov.TupleID
)

// WhatIf evaluates removal variants over a featurized pipeline output via
// the provenance shortcut (no pipeline replays), retraining the default
// model per variant. Variants are evaluated concurrently on the shared
// worker pool; results come back in variant order and are bit-for-bit
// identical to a serial run. A variant that removes every surviving row
// reports Surviving: 0 with a NaN metric instead of failing the batch.
// Safe for concurrent callers. Use WhatIfParallel to pin the worker count.
func WhatIf(ft *Featurized, variants []RemovalVariant, valid *Dataset) ([]WhatIfResult, error) {
	return WhatIfParallel(ft, variants, valid, 0)
}

// WhatIfParallel is WhatIf with an explicit worker count (<= 0 = automatic,
// 1 = serial). Every worker count yields identical results; the knob only
// trades latency for CPU.
func WhatIfParallel(ft *Featurized, variants []RemovalVariant, valid *Dataset, workers int) ([]WhatIfResult, error) {
	return WhatIfWithOptions(ft, variants, valid, WhatIfOptions{Workers: workers})
}

// WhatIfWithOptions is WhatIf with full control. Since the default model
// is a kNN, variants are normally answered by deriving a delta index from
// one shared base over the featurized data — each variant costs an
// O(queries·k) repair instead of a fresh distance matrix — while
// ForceRebuild pins the per-variant full rebuild, the determinism oracle
// the delta path is tested bit-for-bit against.
func WhatIfWithOptions(ft *Featurized, variants []RemovalVariant, valid *Dataset, opts WhatIfOptions) (_ []WhatIfResult, err error) {
	defer recordOp("WhatIfParallel", time.Now(), len(variants), opts.Workers, &err)
	if ft == nil || ft.Data == nil {
		return nil, nderr.Empty("nde: featurized pipeline output is nil")
	}
	if err := checkPair("pipeline output", ft.Data, "valid", valid); err != nil {
		return nil, err
	}
	return pipeline.WhatIfRemovalsConfig(ft, variants, func() ml.Classifier { return DefaultModel() }, valid, opts)
}

// ResetNeighborIndexCache drops every cached kNN neighbor index. The cache
// holds the distance geometry of the last few (train, valid) pairs seen by
// kNN-Shapley scoring (at most 4 indexes); long-running processes that churn
// through many datasets can call this to release the memory eagerly. Safe
// for concurrent use; in-flight computations keep their own reference and
// finish unaffected.
func ResetNeighborIndexCache() {
	defer recordOp("ResetNeighborIndexCache", time.Now(), 0, 0, nil)
	importance.ResetNeighborIndexCache()
}

// SelfConfidenceScores ranks training examples by out-of-fold predicted
// probability of their own label (confident learning); low scores indicate
// likely label errors.
func SelfConfidenceScores(train *Dataset, seed int64) (_ Scores, err error) {
	defer recordOp("SelfConfidenceScores", time.Now(), datasetRows(train), 0, &err)
	if err := checkTrainable("train", train); err != nil {
		return nil, err
	}
	return importance.SelfConfidence(train, importance.NoiseConfig{Seed: seed})
}

// MarginScores ranks training examples by the out-of-fold margin between
// their label's probability and the best other class (AUM-style).
func MarginScores(train *Dataset, seed int64) (_ Scores, err error) {
	defer recordOp("MarginScores", time.Now(), datasetRows(train), 0, &err)
	if err := checkTrainable("train", train); err != nil {
		return nil, err
	}
	return importance.MarginScore(train, importance.NoiseConfig{Seed: seed})
}

// InfluenceScores computes influence-function importance for a logistic
// model: the approximate change in validation loss caused by removing each
// training point. Harmful points score negative.
func InfluenceScores(train, valid *Dataset) (_ Scores, err error) {
	defer recordOp("InfluenceScores", time.Now(), datasetRows(train), 0, &err)
	if err := checkTrainable("train", train); err != nil {
		return nil, err
	}
	if err := checkPair("train", train, "valid", valid); err != nil {
		return nil, err
	}
	return importance.Influence(train, valid, importance.InfluenceConfig{})
}

// DataShapleyScores estimates Monte-Carlo (TMC) Data Shapley values with
// the default kNN utility — the expensive general-purpose estimator, for
// when the model under debugging is not a kNN.
func DataShapleyScores(train, valid *Dataset, permutations int, seed int64) (_ Scores, err error) {
	defer recordOp("DataShapleyScores", time.Now(), datasetRows(train), 0, &err)
	if err := checkTrainable("train", train); err != nil {
		return nil, err
	}
	if err := checkPair("train", train, "valid", valid); err != nil {
		return nil, err
	}
	if permutations < 1 {
		return nil, fmt.Errorf("nde: Data Shapley needs at least one permutation, got %d: %w", permutations, nderr.ErrDegenerateInput)
	}
	u := importance.AccuracyUtility(func() ml.Classifier { return DefaultModel() }, train, valid)
	return importance.MCShapley(train.Len(), u, importance.MCShapleyConfig{
		Permutations: permutations,
		Seed:         seed,
		Truncation:   0.01,
	})
}

// IterativeCleaning runs the prioritized cleaning loop with ground-truth
// label repairs: rank with kNN-Shapley, clean batches, retrain, repeat
// until the budget is spent. truth supplies the hidden correct labels.
func IterativeCleaning(train, valid, test *Dataset, truth []int, batch, budget int) (_ *CleaningResult, err error) {
	defer recordOp("IterativeCleaning", time.Now(), datasetRows(train), 0, &err)
	if err := checkTrainable("train", train); err != nil {
		return nil, err
	}
	if err := checkPair("train", train, "valid", valid); err != nil {
		return nil, err
	}
	if err := checkPair("train", train, "test", test); err != nil {
		return nil, err
	}
	if len(truth) != train.Len() {
		return nil, fmt.Errorf("nde: %d truth labels for %d training rows: %w", len(truth), train.Len(), nderr.ErrShapeMismatch)
	}
	if batch < 1 || budget < 1 {
		return nil, fmt.Errorf("nde: cleaning batch %d and budget %d must be positive: %w", batch, budget, nderr.ErrDegenerateInput)
	}
	return cleaning.IterativeClean(train, valid, test,
		&cleaning.LabelOracle{Truth: truth},
		&cleaning.KNNShapleyStrategy{K: 5},
		func() ml.Classifier { return DefaultModel() },
		batch, budget)
}

// NewDebuggingChallenge builds a §3.2 challenge over featurized data: the
// contestant sees dirty training data and a validation set, and submits row
// ids to the oracle within the repair budget.
func NewDebuggingChallenge(dirty *Dataset, truth []int, valid, hiddenTest *Dataset, budget int) (_ *Challenge, err error) {
	defer recordOp("NewDebuggingChallenge", time.Now(), datasetRows(dirty), 0, &err)
	if err := checkDataset("dirty train", dirty); err != nil {
		return nil, err
	}
	if err := checkPair("dirty train", dirty, "valid", valid); err != nil {
		return nil, err
	}
	if err := checkPair("dirty train", dirty, "hidden test", hiddenTest); err != nil {
		return nil, err
	}
	return challenge.New(dirty, truth, valid, hiddenTest, func() ml.Classifier { return DefaultModel() }, budget)
}

// FairnessExplanations runs the Gopher-style subgroup search: training
// subgroups (conjunctions of attribute=value predicates over attrs) whose
// removal most reduces the equalized-odds violation on the grouped
// validation set. It returns the baseline violation and the top
// explanations.
func FairnessExplanations(train *Dataset, attrs *Frame, valid *Dataset, topK int) (_ float64, _ []Subgroup, err error) {
	defer recordOp("FairnessExplanations", time.Now(), datasetRows(train), 0, &err)
	if err := checkTrainable("train", train); err != nil {
		return 0, nil, err
	}
	if err := checkDataset("valid", valid); err != nil {
		return 0, nil, err
	}
	if attrs == nil {
		return 0, nil, nderr.Empty("nde: attribute frame is nil")
	}
	if attrs.NumRows() != train.Len() {
		return 0, nil, fmt.Errorf("nde: %d attribute rows for %d training rows: %w", attrs.NumRows(), train.Len(), nderr.ErrShapeMismatch)
	}
	return importance.GopherExplanations(train, attrs, valid, importance.GopherConfig{TopK: topK})
}

// EstimateFairnessRange bounds the equalized-odds violation across the
// possible worlds of symbolically uncertain training data (consistent range
// approximation).
func EstimateFairnessRange(train *SymbolicDataset, valid *Dataset, worlds int, seed int64) (_ *FairnessRange, err error) {
	defer recordOp("EstimateFairnessRange", time.Now(), datasetRows(valid), 0, &err)
	if train == nil {
		return nil, nderr.Empty("nde: symbolic training set is nil")
	}
	if err := checkDataset("valid", valid); err != nil {
		return nil, err
	}
	return uncertain.EstimateFairnessRange(train, valid, uncertain.FairnessRangeConfig{Worlds: worlds, Seed: seed})
}

// NewRAGCorpus embeds a document corpus for retrieval-augmented inference
// with per-document importance debugging.
func NewRAGCorpus(docs []string, labels []int) (_ *RAGCorpus, err error) {
	defer recordOp("NewRAGCorpus", time.Now(), len(docs), 0, &err)
	if len(docs) == 0 {
		return nil, nderr.Empty("nde: document corpus")
	}
	if len(docs) != len(labels) {
		return nil, fmt.Errorf("nde: %d documents for %d labels: %w", len(docs), len(labels), nderr.ErrShapeMismatch)
	}
	return importance.NewRAGCorpus(docs, labels)
}

// ScreenTrainTestLeakage checks two letter frames for overlapping person
// ids — the most common data-leakage bug in split construction. It returns
// human-readable issues (empty = clean).
func ScreenTrainTestLeakage(train, test *Frame) (_ []string, err error) {
	defer recordOp("ScreenTrainTestLeakage", time.Now(), frameRows(train), 0, &err)
	if err := checkFrame("train", train, "person_id"); err != nil {
		return nil, err
	}
	if err := checkFrame("test", test, "person_id"); err != nil {
		return nil, err
	}
	issues, err := pipeline.ScreenLeakage(train, test, []string{"person_id"})
	if err != nil {
		return nil, err
	}
	out := make([]string, len(issues))
	for i, is := range issues {
		out[i] = is.String()
	}
	return out, nil
}
