package nde

import (
	"fmt"
	"sync"
	"time"

	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/nderr"
)

// DebugSession is the interactive flag → unlearn → recompute loop as one
// stateful object: it holds the current surviving training set, its
// kNN-Shapley scores against a fixed validation set, and the neighbor
// index those scores came from. Each RemoveRows call DERIVES the next
// index from the current one (ml.NeighborIndex.RemoveRows: tombstones over
// the cached distance geometry, O(queries·k) top-k repair, no fresh
// distance kernel) and re-evaluates the Shapley closed form over the O(n)
// merged neighbor walk — so iterating "drop the worst row, look again" is
// interactive even at tens of thousands of rows, while staying
// Float64bits-identical to recomputing everything from scratch.
//
// Safe for concurrent use; mutations serialize on an internal mutex.
type DebugSession struct {
	mu      sync.Mutex
	k       int
	workers int
	train   *Dataset // current surviving rows, fresh labels
	valid   *Dataset
	orig    []int // current row -> row id in the original training set
	scores  Scores
	ix      *ml.NeighborIndex
}

// NewDebugSession scores the full training set and opens the session.
// k is the kNN-Shapley neighborhood size; workers bounds the pool
// (<= 0 = automatic).
func NewDebugSession(train, valid *Dataset, k, workers int) (_ *DebugSession, err error) {
	defer recordOp("NewDebugSession", time.Now(), datasetRows(train), workers, &err)
	if err := checkTrainable("train", train); err != nil {
		return nil, err
	}
	if err := checkPair("train", train, "valid", valid); err != nil {
		return nil, err
	}
	if err := checkK("DebugSession", k, train.Len()); err != nil {
		return nil, err
	}
	scores, keep, ix, err := importance.KNNShapleyDelta(k, train, valid, nil, workers)
	if err != nil {
		return nil, err
	}
	return &DebugSession{
		k: k, workers: workers,
		train: train, valid: valid,
		orig: keep, scores: scores, ix: ix,
	}, nil
}

// Len returns the number of surviving training rows.
func (s *DebugSession) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.train.Len()
}

// Scores returns a copy of the current kNN-Shapley scores, one per
// surviving row (aligned with OriginalIDs).
func (s *DebugSession) Scores() Scores {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(Scores(nil), s.scores...)
}

// OriginalIDs maps each surviving row to its id in the training set the
// session was opened with.
func (s *DebugSession) OriginalIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.orig...)
}

// RemoveRows drops the given rows — indices into the CURRENT surviving
// set, duplicates tolerated — and returns the freshly recomputed scores
// of the survivors. The update is the delta path end to end: the next
// index derives from the current one and is registered in the shared
// cache, so the chain never rebuilds distance geometry. The call is
// atomic: on error the session is unchanged.
func (s *DebugSession) RemoveRows(rows []int) (_ Scores, err error) {
	defer recordOp("DebugSessionRemoveRows", time.Now(), len(rows), s.workers, &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(rows) == 0 {
		return append(Scores(nil), s.scores...), nil
	}
	scores, keep, ix, err := importance.KNNShapleyDelta(s.k, s.train, s.valid, rows, s.workers)
	if err != nil {
		return nil, fmt.Errorf("nde: debug session removal: %w", err)
	}
	if s.k > len(keep) {
		// keep the session invariant k <= train.Len() for the NEXT round
		return nil, fmt.Errorf("nde: removal leaves %d rows for k=%d: %w", len(keep), s.k, nderr.ErrBadK)
	}
	orig := make([]int, len(keep))
	for o, i := range keep {
		orig[o] = s.orig[i]
	}
	s.train = s.train.Subset(keep)
	s.orig = orig
	s.scores = scores
	s.ix = ix
	return append(Scores(nil), scores...), nil
}

// Accuracy evaluates the default kNN vote of the surviving training set on
// the session's validation set, via the incrementally maintained index —
// bit-identical to rebuilding an index over the survivors.
func (s *DebugSession) Accuracy() (_ float64, err error) {
	defer recordOp("DebugSessionAccuracy", time.Now(), 0, s.workers, &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	preds, err := s.ix.PredictBatchLabels(s.k, s.train.Y)
	if err != nil {
		return 0, fmt.Errorf("nde: debug session accuracy: %w", err)
	}
	return ml.Accuracy(s.valid.Y, preds), nil
}
