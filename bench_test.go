package nde_test

// One benchmark per experiment of DESIGN.md §3. Each bench regenerates the
// corresponding figure/table of the tutorial at a bench-friendly scale; run
// `go test -bench=. -benchmem` to produce all series, or cmd/nde-figures
// for the full-size human-readable tables.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"nde"
	"nde/internal/exp"
	"nde/internal/importance"
	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/obs"
)

func BenchmarkE1Figure2KNNShapleyCleaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E1Figure2(200, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Figure3DatascopePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E2Figure3(300, 43); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3Figure4ZorroCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E3Figure4(120, 44); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4Figure1QualityMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E4Figure1(200, 45); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ImportanceMethodComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E5MethodComparison(100, 46); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6ShapleyScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E6Scalability(47); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7IterativeCleaningStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E7CleaningStrategies(150, 48); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8CertainPredictions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E8CertainPredictions(100, 49); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9ChallengeLeaderboard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E9Challenge(150, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10PipelineScreening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E10PipelineScreening(150, 51); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11ZorroVsImputation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E11ZorroVsImputation(100, 52); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12GopherFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E12GopherFairness(120, 53); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13Unlearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E13Unlearning(150, 61); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14Amortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E14Amortization(150, 62); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE15RAGImportance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E15RAGImportance(63); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE16WhatIfOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E16WhatIfOptimization(200, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17DatascopeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E17DatascopeAblation(200, 65); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18DetectionBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E18DetectionBenchmark(200, 66); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks and ablations on the core primitives ---

func benchDataset(b *testing.B, n int) (*ml.Dataset, *ml.Dataset) {
	b.Helper()
	s := nde.LoadRecommendationLetters(n, 7)
	dTrain, dValid, _, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		b.Fatal(err)
	}
	return dTrain, dValid
}

// Ablation: the kNN proxy's exact Shapley vs. Monte-Carlo retraining at the
// same training size — quantifies the cost of skipping the closed form.
func BenchmarkAblationKNNShapleyClosedForm(b *testing.B) {
	train, valid := benchDataset(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := importance.KNNShapley(5, train, valid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTMCShapley10Perms(b *testing.B) {
	train, valid := benchDataset(b, 200)
	u := importance.AccuracyUtility(func() ml.Classifier { return ml.NewKNN(5) }, train, valid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := importance.MCShapleyConfig{Permutations: 10, Seed: int64(i), Truncation: 0.01}
		if _, err := importance.MCShapley(train.Len(), u, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: TMC truncation threshold sweep — larger thresholds cut more
// utility evaluations at some accuracy cost.
func BenchmarkAblationTMCTruncation(b *testing.B) {
	train, valid := benchDataset(b, 120)
	u := importance.AccuracyUtility(func() ml.Classifier { return ml.NewKNN(5) }, train, valid)
	for _, tol := range []float64{0, 0.01, 0.05} {
		name := "tol0"
		switch tol {
		case 0.01:
			name = "tol0.01"
		case 0.05:
			name = "tol0.05"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := importance.MCShapleyConfig{Permutations: 5, Seed: int64(i), Truncation: tol}
				if _, err := importance.MCShapley(train.Len(), u, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSelfConfidenceScores(b *testing.B) {
	train, _ := benchDataset(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := importance.SelfConfidence(train, importance.NoiseConfig{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfluenceFunctions(b *testing.B) {
	train, valid := benchDataset(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := importance.Influence(train, valid, importance.InfluenceConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHiringPipelineRun(b *testing.B) {
	s := nde.LoadRecommendationLetters(500, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hp.WithProvenance(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- observability overhead on the hot paths ---
//
// The obs-off sub-benchmarks are the disabled-by-default contract: with
// observability off, the instrumented pipeline.Run and kNN-Shapley paths
// must show no measurable time regression and no extra allocations
// relative to the seed (compare allocs/op between off and on to see what
// instrumentation itself costs).

func BenchmarkPipelineRunObs(b *testing.B) {
	s := nde.LoadRecommendationLetters(500, 9)
	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			if mode == "on" {
				obs.Enable()
				obs.DefaultTracer().CaptureAllocs(false)
				defer func() {
					obs.Disable()
					obs.Reset()
					obs.DefaultTracer().CaptureAllocs(true)
				}()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hp.Pipeline.Run(hp.Output); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKNNShapleyObs(b *testing.B) {
	train, valid := benchDataset(b, 200)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			if mode == "on" {
				obs.Enable()
				obs.DefaultTracer().CaptureAllocs(false)
				defer func() {
					obs.Disable()
					obs.Reset()
					obs.DefaultTracer().CaptureAllocs(true)
				}()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := importance.KNNShapley(5, train, valid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKNNShapleyParallelObsOff(b *testing.B) {
	train, valid := benchDataset(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := importance.KNNShapleyParallel(5, train, valid, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// MCShapleyParallel worker-count scaling on the retraining utility: the
// per-permutation seeds make every worker count bit-identical, so this
// measures pure scheduling overhead vs. parallel speedup. Expect
// near-linear scaling from 1 to GOMAXPROCS on a multicore runner.
func BenchmarkMCShapleyParallel(b *testing.B) {
	train, valid := benchDataset(b, 200)
	u := importance.AccuracyUtility(func() ml.Classifier { return ml.NewKNN(5) }, train, valid)
	cfg := importance.MCShapleyConfig{Permutations: 10, Seed: 42, Truncation: 0.01}
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := importance.MCShapleyParallel(train.Len(), u, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// What-if removal batches: the parallel fan-out vs. the serial path on the
// same 8-variant batch. scripts/bench.sh records this series in
// BENCH_whatif.json; workers=1 is the pre-parallelization baseline.
func BenchmarkWhatIf(b *testing.B) {
	s := nde.LoadRecommendationLetters(300, 11)
	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		b.Fatal(err)
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		b.Fatal(err)
	}
	validLike, err := hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder)
	if err != nil {
		b.Fatal(err)
	}
	variants := make([]nde.RemovalVariant, 8)
	for v := range variants {
		rows := make([]nde.TupleID, 6)
		for r := range rows {
			rows[r] = nde.TupleID{Table: "train", Row: (v*6 + r) % hp.TrainRows}
		}
		variants[v] = nde.RemovalVariant{Name: fmt.Sprintf("drop-%d", v), Remove: rows}
	}
	counts := []int{1, 0} // 0 = automatic (GOMAXPROCS-bounded)
	for _, workers := range counts {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=auto"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nde.WhatIfParallel(ft, variants, validLike, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The recall-vs-speed gate of the ANN layer (scripts/bench.sh records this
// series in BENCH_neighbor.json): exact vs IVF top-k per query on a 20k-row
// index. The exact path is measured with its distance matrix already cached
// — the cheapest exact can possibly be — and the IVF path must still be at
// least 5x faster while keeping recall@10 >= 0.95 (reported as the
// recall@10 metric on the ivf sub-benchmark).
func BenchmarkNeighborTopK(b *testing.B) {
	const (
		n       = 20000
		dim     = 32
		centers = 64
		queries = 64
		k       = 10
	)
	r := rand.New(rand.NewSource(17))
	ctr := linalg.NewMatrix(centers, dim)
	for i := range ctr.Data {
		ctr.Data[i] = r.NormFloat64() * 10
	}
	mk := func(rows int) *ml.Dataset {
		x := linalg.NewMatrix(rows, dim)
		y := make([]int, rows)
		for i := 0; i < rows; i++ {
			c := r.Intn(centers)
			row := x.Row(i)
			for j := range row {
				row[j] = ctr.At(c, j) + r.NormFloat64()
			}
			y[i] = c % 2
		}
		d, err := ml.NewDataset(x, y)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	train, query := mk(n), mk(queries)
	exact, err := ml.NewNeighborIndexSearch(train, query, 0, ml.SearchConfig{Mode: ml.SearchExact})
	if err != nil {
		b.Fatal(err)
	}
	ivf, err := ml.NewNeighborIndexSearch(train, query, 0, ml.SearchConfig{Mode: ml.SearchIVF, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	// warm both indexes outside the timer (D2 matrix / IVF build), then
	// measure steady-state per-query cost
	exact.TopK(0, k)
	ivf.TopK(0, k)
	hits := 0
	for q := 0; q < queries; q++ {
		truth := map[int]bool{}
		for _, i := range exact.TopK(q, k) {
			truth[i] = true
		}
		for _, i := range ivf.TopK(q, k) {
			if truth[i] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(queries*k)
	for _, sub := range []struct {
		name string
		ix   *ml.NeighborIndex
	}{{"exact", exact}, {"ivf", ivf}} {
		b.Run(sub.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub.ix.TopK(i%queries, k)
			}
			if sub.name == "ivf" {
				b.ReportMetric(recall, "recall@10")
			}
		})
	}
}

// The batched prediction path vs. row-by-row prediction on the same kNN.
func BenchmarkKNNPredictBatch(b *testing.B) {
	train, valid := benchDataset(b, 300)
	knn := ml.NewKNN(5)
	if err := knn.Fit(train); err != nil {
		b.Fatal(err)
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := knn.PredictBatch(valid, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rowwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < valid.Len(); v++ {
				knn.Predict(valid.Row(v))
			}
		}
	})
}

// The incremental-maintenance gate (scripts/bench.sh records this series in
// BENCH_incremental.json): deleting one row from an n-row training set and
// recomputing kNN-Shapley via the delta path (derive the index with
// RemoveRows, re-run the closed form over the merged neighbor walk) vs. the
// full recompute (fresh distance kernel + argsort, cache cold). The delta
// path must be >= 10x faster at n = 20000; both paths are bit-identical,
// which internal/importance/delta_test.go asserts.
func BenchmarkIncremental(b *testing.B) {
	const (
		dim     = 32 // matches the BENCH_neighbor series
		centers = 32
		queries = 64
		k       = 5
	)
	r := rand.New(rand.NewSource(29))
	ctr := linalg.NewMatrix(centers, dim)
	for i := range ctr.Data {
		ctr.Data[i] = r.NormFloat64() * 8
	}
	mk := func(rows int) *ml.Dataset {
		x := linalg.NewMatrix(rows, dim)
		y := make([]int, rows)
		for i := 0; i < rows; i++ {
			c := r.Intn(centers)
			row := x.Row(i)
			for j := range row {
				row[j] = ctr.At(c, j) + r.NormFloat64()
			}
			y[i] = c % 2
		}
		d, err := ml.NewDataset(x, y)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	for _, n := range []int{2000, 20000} {
		train, valid := mk(n), mk(queries)
		b.Run(fmt.Sprintf("delta/n=%d", n), func(b *testing.B) {
			importance.ResetNeighborIndexCache()
			// warm the shared base index once; each iteration then pays only
			// the derivation + recurrence, the steady-state interactive cost
			if _, _, _, err := importance.KNNShapleyDelta(k, train, valid, nil, 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := importance.KNNShapleyDelta(k, train, valid, []int{i % n}, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			keep := make([]int, 0, n-1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				importance.ResetNeighborIndexCache() // force the full kernel
				keep = keep[:0]
				for row := 0; row < n; row++ {
					if row != i%n {
						keep = append(keep, row)
					}
				}
				reduced := train.Subset(keep)
				b.StartTimer()
				if _, err := importance.KNNShapleyParallel(k, reduced, valid, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
