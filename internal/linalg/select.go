package linalg

import "fmt"

// SelectColumns returns a new matrix holding the given columns of m, in
// order. Column indices may repeat; each must be in [0, m.Cols). The copy
// is element-exact (no arithmetic), so derived matrices are bit-identical
// to recomputing the same columns from scratch — the property the
// neighbor-index delta maintenance relies on when it narrows a cached
// distance matrix to the surviving training rows.
func (m *Matrix) SelectColumns(cols []int) *Matrix {
	for _, c := range cols {
		if c < 0 || c >= m.Cols {
			panic(fmt.Sprintf("linalg: SelectColumns index %d outside [0,%d)", c, m.Cols))
		}
	}
	out := NewMatrix(m.Rows, len(cols))
	for r := 0; r < m.Rows; r++ {
		src := m.Row(r)
		dst := out.Row(r)
		for o, c := range cols {
			dst[o] = src[c]
		}
	}
	return out
}

// HConcat returns [a | b]: a new matrix whose rows are a's rows followed by
// b's rows element-wise. Both inputs must have the same row count. Used to
// extend a cached query×extra distance block when more rows are appended to
// a derived neighbor index.
func HConcat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: HConcat rows %d vs %d", a.Rows, b.Rows))
	}
	out := NewMatrix(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		dst := out.Row(r)
		copy(dst[:a.Cols], a.Row(r))
		copy(dst[a.Cols:], b.Row(r))
	}
	return out
}
