package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: matrix is singular or not positive definite")

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite A. It returns an error wrapping ErrSingular
// when A is not SPD; the error names the failing pivot and whether the
// cause was a NaN (i.e. non-finite input, typically dirty data upstream)
// rather than indefiniteness, so data errors stay diagnosable.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky on %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: Cholesky pivot %d of %d is NaN — the input matrix carries NaN (dirty features?): %w", j, n, ErrSingular)
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: Cholesky pivot %d of %d is %g ≤ 0 — leading minor not positive definite: %w", j, n, d, ErrSingular)
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return l, nil
}

// CholeskySolve solves A x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// forward substitution: L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// back substitution: Lᵀ x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A x = b for symmetric positive-definite A via Cholesky.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// Solve solves the general square system A x = b by Gaussian elimination
// with partial pivoting. A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Solve on %dx%d matrix", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: Solve rhs length %d for %dx%d matrix", len(b), a.Rows, a.Cols)
	}
	n := a.Rows
	m := a.Clone()
	x := Clone(b)
	for col := 0; col < n; col++ {
		// pivot
		piv, best := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				piv, best = r, v
			}
		}
		if math.IsNaN(best) {
			return nil, fmt.Errorf("linalg: Solve pivot column %d is NaN — the input matrix carries NaN (dirty features?): %w", col, ErrSingular)
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("linalg: Solve pivot column %d has max |entry| %g: %w", col, best, ErrSingular)
		}
		if piv != col {
			for c := 0; c < n; c++ {
				m.Data[piv*n+c], m.Data[col*n+c] = m.Data[col*n+c], m.Data[piv*n+c]
			}
			x[piv], x[col] = x[col], x[piv]
		}
		// eliminate
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Data[r*n+c] -= f * m.Data[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= m.At(i, c) * x[c]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// RidgeSolve returns argmin_w ||X w - y||² + lambda ||w||², solved in closed
// form via the normal equations (Xᵀ X + lambda I) w = Xᵀ y.
func RidgeSolve(x *Matrix, y []float64, lambda float64) ([]float64, error) {
	if len(y) != x.Rows {
		return nil, fmt.Errorf("linalg: RidgeSolve y length %d for %d rows", len(y), x.Rows)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %v", lambda)
	}
	g := x.Gram()
	g.AddScaledIdentity(lambda)
	rhs := x.MulTransVec(y)
	w, err := SolveSPD(g, rhs)
	if err != nil {
		// Gram matrices are PSD; fall back to the pivoting solver for the
		// semi-definite edge (lambda = 0 with collinear columns).
		return Solve(g, rhs)
	}
	return w, nil
}

// ConjugateGradient solves A x = b for SPD A iteratively, starting from the
// zero vector, until the residual norm falls below tol or maxIter rounds.
func ConjugateGradient(a *Matrix, b []float64, tol float64, maxIter int) []float64 {
	n := len(b)
	x := make([]float64, n)
	r := Clone(b)
	p := Clone(b)
	rs := Dot(r, r)
	for it := 0; it < maxIter && math.Sqrt(rs) > tol; it++ {
		ap := a.MulVec(p)
		denom := Dot(p, ap)
		if denom <= 0 {
			break
		}
		alpha := rs / denom
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x
}

// HVPSolver solves H x = v for an implicitly defined SPD Hessian given only
// Hessian-vector products, via conjugate gradients. Used by influence
// functions where materializing H is wasteful.
func HVPSolver(hvp func([]float64) []float64, v []float64, tol float64, maxIter int) []float64 {
	n := len(v)
	x := make([]float64, n)
	r := Clone(v)
	p := Clone(v)
	rs := Dot(r, r)
	for it := 0; it < maxIter && math.Sqrt(rs) > tol; it++ {
		ap := hvp(p)
		denom := Dot(p, ap)
		if denom <= 0 {
			break
		}
		alpha := rs / denom
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x
}
