package linalg

import (
	"fmt"
	"math"

	"nde/internal/par"
)

// Matrix32 is a dense row-major float32 matrix — the reduced-precision
// mirror of Matrix used by the approximate-neighbor layer. Halving the
// element width halves the memory bandwidth of the distance kernels, which
// is what bounds them on modern cores; the ~7 decimal digits that remain
// are far more precision than approximate neighbor ranking needs.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix32 allocates a zero Rows x Cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// ToMatrix32 returns a float32 copy of m (values truncated to float32).
func (m *Matrix) ToMatrix32() *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// At returns element (r, c).
func (m *Matrix32) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at element (r, c).
func (m *Matrix32) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r (shared backing).
func (m *Matrix32) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// SquaredDistance32 returns the squared L2 distance between two
// equal-length float32 vectors. Four accumulators break the loop-carried
// add dependency (the ANN candidate scan calls this once per candidate);
// the summation order is fixed, so results are deterministic for a given
// input.
func SquaredDistance32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SquaredDistance32 dims %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	k := 0
	for ; k+3 < len(a); k += 4 {
		d0 := a[k] - b[k]
		d1 := a[k+1] - b[k+1]
		d2 := a[k+2] - b[k+2]
		d3 := a[k+3] - b[k+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := s0 + s1 + s2 + s3
	for ; k < len(a); k++ {
		d := a[k] - b[k]
		s += d * d
	}
	return s
}

// Dot32 returns the 4-way unrolled dot product of two equal-length float32
// vectors — the same summation order as the float64 kernel's inner loop,
// so the result is deterministic for a given input.
func Dot32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	k := 0
	for ; k+3 < len(a); k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	dot := s0 + s1 + s2 + s3
	for ; k < len(a); k++ {
		dot += a[k] * b[k]
	}
	return dot
}

// RowNorms232 returns the squared Euclidean norm of every row of m.
func RowNorms232(m *Matrix32) []float32 {
	out := make([]float32, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = Dot32(m.Row(r), m.Row(r))
	}
	return out
}

// PairwiseSquaredDistances32 is the float32 mirror of
// PairwiseSquaredDistances: the a.Rows × b.Rows matrix of ‖aᵢ − bⱼ‖² via
// the Gram identity over cached row norms, row-blocked and column-tiled so
// a tile of B rows stays cache-hot, with a 4-way unrolled dot product.
// Every element has a fixed summation order and is produced by exactly one
// worker, so the result is bit-for-bit deterministic for any worker count.
// Cancellation can leave tiny negative values; they are clamped to zero.
//
// float32 accuracy caveat: the Gram form loses relative precision when
// ‖a‖² + ‖b‖² greatly exceeds ‖a − b‖² (nearly coincident far-from-origin
// points). That can reorder near-ties, which is why this kernel backs the
// approximate search paths only — the exact float64 kernel remains the
// determinism oracle.
func PairwiseSquaredDistances32(a, b *Matrix32, workers int) *Matrix32 {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: PairwiseSquaredDistances32 dims %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix32(a.Rows, b.Rows)
	if a.Rows == 0 || b.Rows == 0 {
		return out
	}
	na := RowNorms232(a)
	nb := RowNorms232(b)
	const rowBlock = 16
	par.ForBlocks("linalg.pairwise_d2_f32", workers, a.Rows, rowBlock, func(_, lo, hi int) {
		pairwiseD2Block32(a, b, na, nb, out, lo, hi)
	})
	return out
}

// pairwiseD2Block32 fills output rows [lo, hi); B rows are walked in tiles
// of jTile so they stay in cache while the block of A rows streams over
// them. jTile is twice the float64 kernel's: float32 rows are half as wide,
// so twice as many fit in the same cache footprint.
func pairwiseD2Block32(a, b *Matrix32, na, nb []float32, out *Matrix32, lo, hi int) {
	const jTile = 128
	for j0 := 0; j0 < b.Rows; j0 += jTile {
		j1 := j0 + jTile
		if j1 > b.Rows {
			j1 = b.Rows
		}
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			orow := out.Row(i)
			for j := j0; j < j1; j++ {
				v := na[i] + nb[j] - 2*Dot32(ai, b.Row(j))
				if v < 0 {
					v = 0
				}
				orow[j] = v
			}
		}
	}
}

// Fingerprint returns a cheap content hash over the matrix shape and the
// raw bits of its elements, the float32 analogue of Matrix.Fingerprint
// (same word-at-a-time mix, same process-local-only contract).
func (m *Matrix32) Fingerprint() uint64 {
	h := fpSeed
	h = fpMix(h, uint64(m.Rows))
	h = fpMix(h, uint64(m.Cols))
	for _, v := range m.Data {
		h = fpMix(h, uint64(math.Float32bits(v)))
	}
	return h
}
