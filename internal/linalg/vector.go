// Package linalg provides the small dense linear-algebra kernel used by the
// nde models: vectors, row-major matrices, Cholesky and Gaussian solvers,
// and conjugate gradients. It is deliberately minimal — just enough to
// support logistic/linear/ridge regression, influence functions, and the
// interval models of the uncertain package — and uses no dependencies
// beyond the standard library.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b; the slices must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 { return append([]float64(nil), v...) }

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// MaxAbsDiff returns max_i |a[i]-b[i]|.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: MaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	m := 0.0
	for i := range a {
		m = math.Max(m, math.Abs(a[i]-b[i]))
	}
	return m
}
