package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Errorf("Norm2 = %v", Norm2([]float64{3, 4}))
	}
	y := Clone(b)
	AXPY(2, a, y)
	if y[0] != 6 || y[2] != 12 {
		t.Errorf("AXPY = %v", y)
	}
	s := Clone(a)
	Scale(-1, s)
	if s[1] != -2 {
		t.Errorf("Scale = %v", s)
	}
	if got := Add(a, b); got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if MaxAbsDiff(a, b) != 3 {
		t.Errorf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
	if len(Zeros(4)) != 4 {
		t.Error("Zeros wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("matrix wrong: %v", m)
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Error("Set failed")
	}
	tr := m.T()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(1, 2) != 6 {
		t.Errorf("transpose wrong: %v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 9 {
		t.Error("Clone shares storage")
	}
	id := Identity(3)
	if id.At(1, 1) != 1 || id.At(0, 1) != 0 {
		t.Error("Identity wrong")
	}
}

func TestMulVecAndTrans(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
	gt := m.MulTransVec([]float64{1, 1})
	if gt[0] != 4 || gt[1] != 6 {
		t.Errorf("MulTransVec = %v", gt)
	}
}

func TestMatMulAndGram(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	ab := a.MatMul(b)
	if ab.At(0, 0) != 2 || ab.At(0, 1) != 1 || ab.At(1, 0) != 4 || ab.At(1, 1) != 3 {
		t.Errorf("MatMul = %v", ab)
	}
	g := a.Gram()
	want := a.T().MatMul(a)
	if MaxAbsDiff(g.Data, want.Data) > 1e-12 {
		t.Errorf("Gram = %v want %v", g, want)
	}
}

func TestCholeskyAndSolve(t *testing.T) {
	// A = [[4,2],[2,3]] is SPD
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := l.MatMul(l.T())
	if MaxAbsDiff(recon.Data, a.Data) > 1e-12 {
		t.Errorf("L L^T = %v != A", recon)
	}
	x, err := SolveSPD(a, []float64{8, 7})
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(a.MulVec(x), []float64{8, 7}) > 1e-10 {
		t.Errorf("SolveSPD residual too big: x=%v", x)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	if _, err := Cholesky(a); err == nil {
		t.Error("expected ErrSingular")
	}
	rect := NewMatrix(2, 3)
	if _, err := Cholesky(rect); err == nil {
		t.Error("expected shape error")
	}
}

func TestSolveGeneral(t *testing.T) {
	// needs pivoting: zero on the diagonal
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("Solve = %v", x)
	}
	sing := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Solve(sing, []float64{1, 1}); err == nil {
		t.Error("expected ErrSingular")
	}
	if _, err := Solve(a, []float64{1}); err == nil {
		t.Error("expected rhs length error")
	}
}

func TestRidgeSolveRecoversWeights(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, d := 200, 4
	w := []float64{1.5, -2, 0.5, 3}
	x := NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		y[i] = Dot(x.Row(i), w) + 0.01*r.NormFloat64()
	}
	got, err := RidgeSolve(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(got, w) > 0.05 {
		t.Errorf("ridge weights = %v, want ~%v", got, w)
	}
}

func TestRidgeSolveCollinearFallsBack(t *testing.T) {
	// two identical columns with lambda>0 is solvable
	x := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	w, err := RidgeSolve(x, []float64{2, 4, 6}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// symmetric solution: both weights equal
	if math.Abs(w[0]-w[1]) > 1e-9 {
		t.Errorf("collinear ridge weights = %v", w)
	}
}

func TestConjugateGradientMatchesDirect(t *testing.T) {
	a := FromRows([][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 5}})
	b := []float64{1, 2, 3}
	want, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := ConjugateGradient(a, b, 1e-12, 100)
	if MaxAbsDiff(got, want) > 1e-8 {
		t.Errorf("CG = %v, direct = %v", got, want)
	}
}

func TestHVPSolver(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	v := []float64{5, 4}
	got := HVPSolver(func(p []float64) []float64 { return a.MulVec(p) }, v, 1e-12, 100)
	want, _ := SolveSPD(a, v)
	if MaxAbsDiff(got, want) > 1e-8 {
		t.Errorf("HVPSolver = %v, want %v", got, want)
	}
}

// Property: for random SPD systems, Solve, SolveSPD and CG agree and satisfy
// A x = b.
func TestQuickSolversAgree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		base := NewMatrix(n, n)
		for i := range base.Data {
			base.Data[i] = r.NormFloat64()
		}
		a := base.Gram() // B^T B is PSD
		a.AddScaledIdentity(0.5)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		x2, err := Solve(a, b)
		if err != nil {
			return false
		}
		x3 := ConjugateGradient(a, b, 1e-12, 500)
		if MaxAbsDiff(x1, x2) > 1e-6 || MaxAbsDiff(x1, x3) > 1e-6 {
			return false
		}
		return MaxAbsDiff(a.MulVec(x1), b) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Cholesky reconstruction L L^T = A for random SPD matrices.
func TestQuickCholeskyReconstruction(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		base := NewMatrix(n, n)
		for i := range base.Data {
			base.Data[i] = r.NormFloat64()
		}
		a := base.Gram()
		a.AddScaledIdentity(0.25)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return MaxAbsDiff(l.MatMul(l.T()).Data, a.Data) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
