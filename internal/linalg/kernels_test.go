package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func naiveSquaredDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Property: the Gram-trick kernel matches the naive ‖a−b‖² within 1e-9 on
// random matrices for any shape and worker count.
func TestQuickPairwiseSquaredDistancesMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, n, d := r.Intn(20)+1, r.Intn(30)+1, r.Intn(8)+1
		a := randomMatrix(r, q, d)
		b := randomMatrix(r, n, d)
		workers := r.Intn(5) // 0 = auto
		got := PairwiseSquaredDistances(a, b, workers)
		for i := 0; i < q; i++ {
			for j := 0; j < n; j++ {
				want := naiveSquaredDistance(a.Row(i), b.Row(j))
				if math.Abs(got.At(i, j)-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseSquaredDistancesEdgeShapes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ q, n, d int }{
		{0, 5, 3}, {5, 0, 3}, {0, 0, 3}, {1, 1, 0}, {4, 7, 0},
	} {
		a := randomMatrix(r, shape.q, shape.d)
		b := randomMatrix(r, shape.n, shape.d)
		got := PairwiseSquaredDistances(a, b, 0)
		if got.Rows != shape.q || got.Cols != shape.n {
			t.Errorf("shape %v: got %dx%d", shape, got.Rows, got.Cols)
		}
		// d=0: all distances are exactly zero
		if shape.d == 0 {
			for _, v := range got.Data {
				if v != 0 {
					t.Errorf("shape %v: nonzero distance %v in zero-dim space", shape, v)
				}
			}
		}
	}
}

// Identical rows must produce a non-negative (clamped) distance, and the
// diagonal of self-distances must be tiny.
func TestPairwiseSquaredDistancesSelfNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := randomMatrix(r, 25, 6)
	d2 := PairwiseSquaredDistances(a, a, 0)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Rows; j++ {
			if d2.At(i, j) < 0 {
				t.Fatalf("negative squared distance at (%d,%d): %v", i, j, d2.At(i, j))
			}
		}
		if d2.At(i, i) > 1e-9 {
			t.Errorf("self distance %d = %v, want ~0", i, d2.At(i, i))
		}
	}
}

// The kernel must be bit-for-bit identical across worker counts.
func TestPairwiseSquaredDistancesDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randomMatrix(r, 40, 9)
	b := randomMatrix(r, 33, 9)
	ref := PairwiseSquaredDistances(a, b, 1)
	for _, workers := range []int{2, 3, 8} {
		got := PairwiseSquaredDistances(a, b, workers)
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", workers, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

// MatMulPar must be bit-for-bit identical to the serial MatMul.
func TestQuickMatMulParMatchesSerial(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := r.Intn(12)+1, r.Intn(12)+1, r.Intn(12)+1
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		want := a.MatMul(b)
		got := MatMulPar(a, b, r.Intn(5))
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintDetectsMutation(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := randomMatrix(r, 10, 4)
	fp := a.Fingerprint()
	if a.Fingerprint() != fp {
		t.Fatal("fingerprint not stable")
	}
	a.Data[17] += 1e-12
	if a.Fingerprint() == fp {
		t.Error("fingerprint missed an in-place mutation")
	}
	b := a.Clone()
	if b.Fingerprint() != a.Fingerprint() {
		t.Error("clone fingerprint differs")
	}
	// shape participates: a 2x2 and 4x1 with the same data must differ
	m1 := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	m2 := &Matrix{Rows: 4, Cols: 1, Data: []float64{1, 2, 3, 4}}
	if m1.Fingerprint() == m2.Fingerprint() {
		t.Error("shape not part of the fingerprint")
	}
}

func BenchmarkPairwiseSquaredDistances(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	q := randomMatrix(r, 64, 16)
	tr := randomMatrix(r, 512, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairwiseSquaredDistances(q, tr, 0)
	}
}

func BenchmarkPairwiseNaive(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	q := randomMatrix(r, 64, 16)
	tr := randomMatrix(r, 512, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := NewMatrix(q.Rows, tr.Rows)
		for x := 0; x < q.Rows; x++ {
			for y := 0; y < tr.Rows; y++ {
				out.Set(x, y, naiveSquaredDistance(q.Row(x), tr.Row(y)))
			}
		}
	}
}
