package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix32(r *rand.Rand, rows, cols int) *Matrix32 {
	m := NewMatrix32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	return m
}

// Property: the float32 Gram-trick kernel agrees with the direct float32
// squared distance to within the cancellation error bound of the Gram form.
func TestPairwiseSquaredDistances32MatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := r.Intn(20), 1+r.Intn(8)
		a := randMatrix32(r, rows, cols)
		b := randMatrix32(r, r.Intn(20), cols)
		d2 := PairwiseSquaredDistances32(a, b, 1+r.Intn(4))
		if d2.Rows != a.Rows || d2.Cols != b.Rows {
			return false
		}
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < b.Rows; j++ {
				want := float64(SquaredDistance32(a.Row(i), b.Row(j)))
				got := float64(d2.At(i, j))
				// absolute tolerance scaled by the norms feeding the Gram form
				scale := 1.0
				for _, v := range a.Row(i) {
					scale += float64(v) * float64(v)
				}
				for _, v := range b.Row(j) {
					scale += float64(v) * float64(v)
				}
				if math.Abs(got-want) > 1e-5*scale {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The float32 kernel must be bit-for-bit deterministic across worker counts.
func TestPairwiseSquaredDistances32DeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randMatrix32(r, 70, 9)
	b := randMatrix32(r, 55, 9)
	base := PairwiseSquaredDistances32(a, b, 1)
	for _, w := range []int{2, 3, 8} {
		got := PairwiseSquaredDistances32(a, b, w)
		for i := range base.Data {
			if math.Float32bits(base.Data[i]) != math.Float32bits(got.Data[i]) {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", w, i, base.Data[i], got.Data[i])
			}
		}
	}
}

// ToMatrix32 truncates element-wise and preserves shape; empty shapes are
// handled by the kernel.
func TestMatrix32ConversionAndEmpty(t *testing.T) {
	m := FromRows([][]float64{{1.5, -2.25}, {0, 3.125}})
	m32 := m.ToMatrix32()
	if m32.Rows != 2 || m32.Cols != 2 {
		t.Fatalf("shape %dx%d", m32.Rows, m32.Cols)
	}
	for i, v := range m.Data {
		if m32.Data[i] != float32(v) {
			t.Fatalf("element %d: %v vs %v", i, m32.Data[i], v)
		}
	}
	empty := PairwiseSquaredDistances32(NewMatrix32(0, 3), NewMatrix32(4, 3), 2)
	if empty.Rows != 0 || empty.Cols != 4 {
		t.Fatalf("empty shape %dx%d", empty.Rows, empty.Cols)
	}
}

// Fingerprints must differ on content changes and be stable on clones.
func TestMatrix32Fingerprint(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := randMatrix32(r, 10, 4)
	clone := &Matrix32{Rows: a.Rows, Cols: a.Cols, Data: append([]float32(nil), a.Data...)}
	if a.Fingerprint() != clone.Fingerprint() {
		t.Fatal("identical content, different fingerprints")
	}
	clone.Set(3, 2, clone.At(3, 2)+1)
	if a.Fingerprint() == clone.Fingerprint() {
		t.Fatal("mutation did not change fingerprint")
	}
}
