package linalg

import "testing"

func TestSelectColumns(t *testing.T) {
	m := NewMatrix(2, 4)
	copy(m.Data, []float64{0, 1, 2, 3, 10, 11, 12, 13})
	got := m.SelectColumns([]int{3, 0, 0})
	if got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", got.Rows, got.Cols)
	}
	want := []float64{3, 0, 0, 13, 10, 10}
	for i, v := range got.Data {
		if v != want[i] {
			t.Fatalf("Data[%d] = %v, want %v", i, v, want[i])
		}
	}
	if empty := m.SelectColumns(nil); empty.Rows != 2 || empty.Cols != 0 {
		t.Fatalf("empty selection shape = %dx%d, want 2x0", empty.Rows, empty.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range column must panic")
		}
	}()
	m.SelectColumns([]int{4})
}

func TestHConcat(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 3)
	copy(b.Data, []float64{5, 6, 7, 8, 9, 10})
	got := HConcat(a, b)
	if got.Rows != 2 || got.Cols != 5 {
		t.Fatalf("shape = %dx%d, want 2x5", got.Rows, got.Cols)
	}
	want := []float64{1, 2, 5, 6, 7, 3, 4, 8, 9, 10}
	for i, v := range got.Data {
		if v != want[i] {
			t.Fatalf("Data[%d] = %v, want %v", i, v, want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("row mismatch must panic")
		}
	}()
	HConcat(a, NewMatrix(3, 1))
}
