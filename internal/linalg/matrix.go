package linalg

import (
	"fmt"
	"math"
	"strings"

	"nde/internal/nderr"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices of equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d vs %d", r, len(row), m.Cols))
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r (shared backing).
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			t.Data[c*t.Cols+r] = m.Data[r*m.Cols+c]
		}
	}
	return t
}

// MulVec returns m @ x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape %dx%d @ %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = Dot(m.Row(r), x)
	}
	return out
}

// MulTransVec returns mᵀ @ x without materializing the transpose.
func (m *Matrix) MulTransVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: MulTransVec shape %dx%d^T @ %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		AXPY(x[r], m.Row(r), out)
	}
	return out
}

// MatMul returns m @ o.
func (m *Matrix) MatMul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: MatMul shape %dx%d @ %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			orow := o.Data[k*o.Cols : (k+1)*o.Cols]
			AXPY(a, orow, out.Row(r))
		}
	}
	return out
}

// AddScaledIdentity adds alpha to the diagonal in place (m must be square).
func (m *Matrix) AddScaledIdentity(alpha float64) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: AddScaledIdentity on %dx%d", m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += alpha
	}
}

// Gram returns mᵀ @ m (the Gram matrix of the columns).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := 0; i < m.Cols; i++ {
			if row[i] == 0 {
				continue
			}
			AXPY(row[i], row, g.Row(i))
		}
	}
	return g
}

// FindNonFinite returns the position of the first NaN or ±Inf entry in
// row-major order, or ok=false when every entry is finite.
func (m *Matrix) FindNonFinite() (r, c int, ok bool) {
	for i, v := range m.Data {
		// v != v catches NaN; the range check catches ±Inf without a
		// math.IsInf call per element.
		if v != v || v > math.MaxFloat64 || v < -math.MaxFloat64 {
			return i / m.Cols, i % m.Cols, true
		}
	}
	return 0, 0, false
}

// CheckFinite returns a wrapped nderr.ErrNonFinite naming the first NaN or
// ±Inf entry, or nil when the matrix is entirely finite. what names the
// matrix in the error ("train features", ...).
func (m *Matrix) CheckFinite(what string) error {
	if r, c, bad := m.FindNonFinite(); bad {
		return nderr.NonFinite("linalg: "+what, r, c, m.At(r, c))
	}
	return nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		fmt.Fprintf(&b, "%v\n", m.Row(r))
	}
	return b.String()
}
