package linalg

import (
	"fmt"
	"math"

	"nde/internal/par"
)

// RowNorms2 returns the squared Euclidean norm of every row of m.
func RowNorms2(m *Matrix) []float64 {
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		out[r] = s
	}
	return out
}

// PairwiseSquaredDistances returns the a.Rows × b.Rows matrix D with
// D[i][j] = ‖a.Row(i) − b.Row(j)‖², computed with the Gram trick
// ‖a‖² + ‖b‖² − 2·a·b over cached row norms. The inner loops are blocked
// so a tile of B rows stays cache-hot across a block of A rows, and the
// dot product is 4-way unrolled. Rows of the output are computed
// independently on the shared pool (workers <= 0 = auto), and every
// element has a fixed summation order, so the result is bit-for-bit
// deterministic for any worker count. Tiny negative values produced by
// floating-point cancellation are clamped to zero.
func PairwiseSquaredDistances(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: PairwiseSquaredDistances dims %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	if a.Rows == 0 || b.Rows == 0 {
		return out
	}
	na := RowNorms2(a)
	nb := RowNorms2(b)
	// rowBlock rows of A per task: large enough to reuse each B tile,
	// small enough to load-balance across workers.
	const rowBlock = 16
	par.ForBlocks("linalg.pairwise_d2", workers, a.Rows, rowBlock, func(_, lo, hi int) {
		pairwiseD2Block(a, b, na, nb, out, lo, hi)
	})
	return out
}

// pairwiseD2Block fills output rows [lo, hi). B rows are walked in tiles of
// jTile so they stay in cache while the block of A rows streams over them.
func pairwiseD2Block(a, b *Matrix, na, nb []float64, out *Matrix, lo, hi int) {
	d := a.Cols
	const jTile = 64
	for j0 := 0; j0 < b.Rows; j0 += jTile {
		j1 := j0 + jTile
		if j1 > b.Rows {
			j1 = b.Rows
		}
		for i := lo; i < hi; i++ {
			ai := a.Row(i)[:d] // len==d ties the bounds checks to the loop condition
			orow := out.Row(i)
			for j := j0; j < j1; j++ {
				bj := b.Row(j)[:d]
				var s0, s1, s2, s3 float64
				k := 0
				for ; k+3 < d; k += 4 {
					s0 += ai[k] * bj[k]
					s1 += ai[k+1] * bj[k+1]
					s2 += ai[k+2] * bj[k+2]
					s3 += ai[k+3] * bj[k+3]
				}
				dot := s0 + s1 + s2 + s3
				for ; k < d; k++ {
					dot += ai[k] * bj[k]
				}
				v := na[i] + nb[j] - 2*dot
				if v < 0 {
					v = 0
				}
				orow[j] = v
			}
		}
	}
}

// MatMulPar returns m @ o with output rows computed in parallel on the
// shared pool (workers <= 0 = auto). Each output row is produced by exactly
// the same sequence of operations as the serial MatMul, so the result is
// bit-for-bit identical to it for any worker count.
func MatMulPar(m, o *Matrix, workers int) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: MatMulPar shape %dx%d @ %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	par.For("linalg.matmul", workers, m.Rows, func(_, r int) {
		row := out.Row(r)
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			AXPY(a, o.Data[k*o.Cols:(k+1)*o.Cols], row)
		}
	})
	return out
}

// Fingerprint returns a cheap content hash over the matrix shape and the
// raw bits of its elements. Used to key caches of derived quantities
// (e.g. pairwise-distance matrices) by content rather than pointer
// identity, so in-place mutations are detected. The hash mixes one 64-bit
// word per element (murmur-style multiply/xorshift) instead of hashing
// byte-at-a-time: fingerprinting sits on the hot path of every cache
// lookup and delta-index registration, and at 8x fewer multiplies it is
// no longer visible next to the O(n·d) work it keys. Values are
// process-local cache keys, never persisted.
func (m *Matrix) Fingerprint() uint64 {
	h := fpSeed
	h = fpMix(h, uint64(m.Rows))
	h = fpMix(h, uint64(m.Cols))
	for _, v := range m.Data {
		h = fpMix(h, math.Float64bits(v))
	}
	return h
}

const fpSeed uint64 = 14695981039346656037

// fpMix folds one 64-bit word into the running hash: the murmur3
// finalizer's multiply/xorshift applied to the word, combined into h with
// a second multiply. Order-sensitive, deterministic, two multiplies per
// element.
func fpMix(h, v uint64) uint64 {
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	h = (h ^ v) * 0xc4ceb9fe1a85ec53
	return h ^ h>>29
}
