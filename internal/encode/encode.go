// Package encode implements the feature encoders that ML pipelines apply to
// relational data before model training: imputation, scaling, one-hot and
// ordinal encoding, discretization, and text vectorization (hashing
// bag-of-words and TF-IDF — the stand-ins for the heavyweight neural text
// encoders used in the tutorial's pipelines).
//
// An Encoder maps one column to a block of numeric feature columns; a
// ColumnTransformer composes encoders over several columns into a single
// feature matrix, mirroring scikit-learn's ColumnTransformer abstraction
// that the tutorial's Figure 3 pipeline uses.
package encode

import (
	"fmt"
	"math"

	"nde/internal/frame"
	"nde/internal/linalg"
)

// Encoder turns one column into a fixed number of numeric feature columns.
// Fit learns the encoding from a column; Transform applies it to a column of
// the same kind (typically the same column of another split).
type Encoder interface {
	Fit(s *frame.Series) error
	Transform(s *frame.Series) (*linalg.Matrix, error)
	// Names returns one name per output feature column; valid after Fit.
	Names() []string
}

// StandardScaler standardizes a numeric column to zero mean and unit
// variance. Nulls are imputed with the fitted mean (i.e. transformed to 0).
type StandardScaler struct {
	name string
	mean float64
	std  float64
}

// NewStandardScaler returns an unfitted standard scaler.
func NewStandardScaler() *StandardScaler { return &StandardScaler{} }

// Fit learns the column mean and standard deviation.
func (e *StandardScaler) Fit(s *frame.Series) error {
	mean, ok := s.Mean()
	if !ok {
		return fmt.Errorf("encode: cannot scale column %q with no numeric values", s.Name())
	}
	std, _ := s.Std()
	if std == 0 {
		std = 1
	}
	e.name, e.mean, e.std = s.Name(), mean, std
	return nil
}

// Transform standardizes the column; nulls map to 0 (the scaled mean).
func (e *StandardScaler) Transform(s *frame.Series) (*linalg.Matrix, error) {
	if e.name == "" {
		return nil, fmt.Errorf("encode: StandardScaler used before Fit")
	}
	out := linalg.NewMatrix(s.Len(), 1)
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue // (mean - mean)/std = 0
		}
		out.Set(i, 0, (s.Float(i)-e.mean)/e.std)
	}
	return out, nil
}

// Names returns the single output feature name.
func (e *StandardScaler) Names() []string { return []string{e.name + "_scaled"} }

// Mean returns the fitted mean.
func (e *StandardScaler) Mean() float64 { return e.mean }

// Std returns the fitted standard deviation.
func (e *StandardScaler) Std() float64 { return e.std }

// MinMaxScaler rescales a numeric column to [0, 1]. Nulls map to the fitted
// midpoint 0.5.
type MinMaxScaler struct {
	name    string
	min, mx float64
}

// NewMinMaxScaler returns an unfitted min-max scaler.
func NewMinMaxScaler() *MinMaxScaler { return &MinMaxScaler{} }

// Fit learns the column range.
func (e *MinMaxScaler) Fit(s *frame.Series) error {
	lo, hi, ok := s.MinMax()
	if !ok {
		return fmt.Errorf("encode: cannot scale column %q with no numeric values", s.Name())
	}
	if hi == lo {
		hi = lo + 1
	}
	e.name, e.min, e.mx = s.Name(), lo, hi
	return nil
}

// Transform rescales to [0,1], clipping out-of-range values.
func (e *MinMaxScaler) Transform(s *frame.Series) (*linalg.Matrix, error) {
	if e.name == "" {
		return nil, fmt.Errorf("encode: MinMaxScaler used before Fit")
	}
	out := linalg.NewMatrix(s.Len(), 1)
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			out.Set(i, 0, 0.5)
			continue
		}
		v := (s.Float(i) - e.min) / (e.mx - e.min)
		out.Set(i, 0, math.Min(1, math.Max(0, v)))
	}
	return out, nil
}

// Names returns the single output feature name.
func (e *MinMaxScaler) Names() []string { return []string{e.name + "_minmax"} }

// OneHotEncoder maps a categorical column to indicator columns, one per
// category seen at fit time (in first-appearance order). Unknown categories
// and nulls encode as all zeros.
type OneHotEncoder struct {
	name       string
	categories []string
	index      map[string]int
}

// NewOneHotEncoder returns an unfitted one-hot encoder.
func NewOneHotEncoder() *OneHotEncoder { return &OneHotEncoder{} }

// Fit collects the distinct category strings.
func (e *OneHotEncoder) Fit(s *frame.Series) error {
	e.name = s.Name()
	e.index = make(map[string]int)
	e.categories = nil
	for _, v := range s.Unique() {
		key := v.String()
		if _, seen := e.index[key]; !seen {
			e.index[key] = len(e.categories)
			e.categories = append(e.categories, key)
		}
	}
	if len(e.categories) == 0 {
		return fmt.Errorf("encode: one-hot column %q has no non-null values", s.Name())
	}
	return nil
}

// Transform emits one indicator column per fitted category.
func (e *OneHotEncoder) Transform(s *frame.Series) (*linalg.Matrix, error) {
	if e.index == nil {
		return nil, fmt.Errorf("encode: OneHotEncoder used before Fit")
	}
	out := linalg.NewMatrix(s.Len(), len(e.categories))
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue
		}
		if j, ok := e.index[s.Value(i).String()]; ok {
			out.Set(i, j, 1)
		}
	}
	return out, nil
}

// Names returns "<col>=<category>" per output column.
func (e *OneHotEncoder) Names() []string {
	names := make([]string, len(e.categories))
	for i, c := range e.categories {
		names[i] = e.name + "=" + c
	}
	return names
}

// Categories returns the fitted category strings in encoding order.
func (e *OneHotEncoder) Categories() []string { return e.categories }

// OrdinalEncoder maps categories to their fit-order index (a single numeric
// column). Unknown categories and nulls map to -1.
type OrdinalEncoder struct {
	name  string
	index map[string]int
}

// NewOrdinalEncoder returns an unfitted ordinal encoder.
func NewOrdinalEncoder() *OrdinalEncoder { return &OrdinalEncoder{} }

// Fit collects the distinct category strings.
func (e *OrdinalEncoder) Fit(s *frame.Series) error {
	e.name = s.Name()
	e.index = make(map[string]int)
	for _, v := range s.Unique() {
		key := v.String()
		if _, seen := e.index[key]; !seen {
			e.index[key] = len(e.index)
		}
	}
	return nil
}

// Transform emits the ordinal code column.
func (e *OrdinalEncoder) Transform(s *frame.Series) (*linalg.Matrix, error) {
	if e.index == nil {
		return nil, fmt.Errorf("encode: OrdinalEncoder used before Fit")
	}
	out := linalg.NewMatrix(s.Len(), 1)
	for i := 0; i < s.Len(); i++ {
		code := -1.0
		if !s.IsNull(i) {
			if j, ok := e.index[s.Value(i).String()]; ok {
				code = float64(j)
			}
		}
		out.Set(i, 0, code)
	}
	return out, nil
}

// Names returns the single output feature name.
func (e *OrdinalEncoder) Names() []string { return []string{e.name + "_ord"} }

// KBinsDiscretizer buckets a numeric column into K equal-width bins encoded
// one-hot. Nulls encode as all zeros.
type KBinsDiscretizer struct {
	K    int // number of bins (default 5)
	name string
	lo   float64
	hi   float64
}

// NewKBinsDiscretizer returns a discretizer with k bins.
func NewKBinsDiscretizer(k int) *KBinsDiscretizer { return &KBinsDiscretizer{K: k} }

// Fit learns the column range.
func (e *KBinsDiscretizer) Fit(s *frame.Series) error {
	if e.K <= 0 {
		e.K = 5
	}
	lo, hi, ok := s.MinMax()
	if !ok {
		return fmt.Errorf("encode: cannot bin column %q with no numeric values", s.Name())
	}
	if hi == lo {
		hi = lo + 1
	}
	e.name, e.lo, e.hi = s.Name(), lo, hi
	return nil
}

// Transform emits K indicator columns; out-of-range values clip to the edge
// bins.
func (e *KBinsDiscretizer) Transform(s *frame.Series) (*linalg.Matrix, error) {
	if e.name == "" {
		return nil, fmt.Errorf("encode: KBinsDiscretizer used before Fit")
	}
	out := linalg.NewMatrix(s.Len(), e.K)
	width := (e.hi - e.lo) / float64(e.K)
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue
		}
		b := int((s.Float(i) - e.lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= e.K {
			b = e.K - 1
		}
		out.Set(i, b, 1)
	}
	return out, nil
}

// Names returns "<col>_bin<i>" per bin.
func (e *KBinsDiscretizer) Names() []string {
	names := make([]string, e.K)
	for i := range names {
		names[i] = fmt.Sprintf("%s_bin%d", e.name, i)
	}
	return names
}
