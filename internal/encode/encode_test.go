package encode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/frame"
)

func TestStandardScaler(t *testing.T) {
	s := frame.NewFloatSeries("x", []float64{2, 4, 6, 0}, []bool{true, true, true, false})
	e := NewStandardScaler()
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 4 {
		t.Errorf("mean = %v", e.Mean())
	}
	m, err := e.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 4 || m.Cols != 1 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 0 {
		t.Errorf("scaled mean value = %v", m.At(1, 0))
	}
	if m.At(3, 0) != 0 {
		t.Errorf("null should scale to 0, got %v", m.At(3, 0))
	}
	if math.Abs(m.At(0, 0)+m.At(2, 0)) > 1e-12 {
		t.Errorf("symmetric values should scale symmetrically: %v vs %v", m.At(0, 0), m.At(2, 0))
	}
	if e.Names()[0] != "x_scaled" {
		t.Errorf("names = %v", e.Names())
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	s := frame.NewFloatSeries("c", []float64{5, 5, 5}, nil)
	e := NewStandardScaler()
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	m, _ := e.Transform(s)
	for i := 0; i < 3; i++ {
		if m.At(i, 0) != 0 {
			t.Errorf("constant column should scale to 0, got %v", m.At(i, 0))
		}
	}
}

func TestScalerErrors(t *testing.T) {
	allNull := frame.NewFloatSeries("n", []float64{0}, []bool{false})
	if err := NewStandardScaler().Fit(allNull); err == nil {
		t.Error("expected error on all-null fit")
	}
	if _, err := NewStandardScaler().Transform(allNull); err == nil {
		t.Error("expected error on transform before fit")
	}
	if err := NewMinMaxScaler().Fit(allNull); err == nil {
		t.Error("expected error on all-null minmax fit")
	}
}

func TestMinMaxScaler(t *testing.T) {
	s := frame.NewFloatSeries("x", []float64{10, 20, 30}, nil)
	e := NewMinMaxScaler()
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	test := frame.NewFloatSeries("x", []float64{10, 30, 40, -5, 0}, []bool{true, true, true, true, false})
	m, err := e.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0 || m.At(1, 0) != 1 {
		t.Errorf("range endpoints wrong: %v %v", m.At(0, 0), m.At(1, 0))
	}
	if m.At(2, 0) != 1 || m.At(3, 0) != 0 {
		t.Error("out-of-range should clip")
	}
	if m.At(4, 0) != 0.5 {
		t.Errorf("null should map to 0.5, got %v", m.At(4, 0))
	}
}

func TestOneHotEncoder(t *testing.T) {
	s := frame.NewStringSeries("deg", []string{"bsc", "msc", "bsc", "phd"}, nil)
	e := NewOneHotEncoder()
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	if got := e.Categories(); len(got) != 3 || got[0] != "bsc" || got[2] != "phd" {
		t.Errorf("categories = %v", got)
	}
	test := frame.NewStringSeries("deg", []string{"msc", "unknown", ""}, []bool{true, true, false})
	m, err := e.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cols != 3 {
		t.Fatalf("cols = %d", m.Cols)
	}
	if m.At(0, 1) != 1 || m.At(0, 0) != 0 {
		t.Error("known category wrong")
	}
	for j := 0; j < 3; j++ {
		if m.At(1, j) != 0 || m.At(2, j) != 0 {
			t.Error("unknown/null should be all zeros")
		}
	}
	if e.Names()[1] != "deg=msc" {
		t.Errorf("names = %v", e.Names())
	}
}

func TestOneHotIntColumn(t *testing.T) {
	s := frame.NewIntSeries("k", []int64{1, 2, 1}, nil)
	e := NewOneHotEncoder()
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	m, _ := e.Transform(s)
	if m.Cols != 2 || m.At(1, 1) != 1 {
		t.Error("int one-hot wrong")
	}
}

func TestOrdinalEncoder(t *testing.T) {
	s := frame.NewStringSeries("c", []string{"lo", "hi", "lo"}, nil)
	e := NewOrdinalEncoder()
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	test := frame.NewStringSeries("c", []string{"hi", "nope", ""}, []bool{true, true, false})
	m, _ := e.Transform(test)
	if m.At(0, 0) != 1 {
		t.Errorf("hi code = %v", m.At(0, 0))
	}
	if m.At(1, 0) != -1 || m.At(2, 0) != -1 {
		t.Error("unknown/null should be -1")
	}
}

func TestKBinsDiscretizer(t *testing.T) {
	s := frame.NewFloatSeries("v", []float64{0, 10}, nil)
	e := NewKBinsDiscretizer(5)
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	test := frame.NewFloatSeries("v", []float64{1, 9.9, -3, 42, 0}, []bool{true, true, true, true, false})
	m, _ := e.Transform(test)
	if m.Cols != 5 {
		t.Fatalf("cols = %d", m.Cols)
	}
	if m.At(0, 0) != 1 {
		t.Error("1 should land in bin 0")
	}
	if m.At(1, 4) != 1 {
		t.Error("9.9 should land in bin 4")
	}
	if m.At(2, 0) != 1 || m.At(3, 4) != 1 {
		t.Error("out-of-range should clip to edge bins")
	}
	sum := 0.0
	for j := 0; j < 5; j++ {
		sum += m.At(4, j)
	}
	if sum != 0 {
		t.Error("null row should be all zeros")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, world! 2nd TIME")
	want := []string{"hello", "world", "2nd", "time"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestHashingVectorizer(t *testing.T) {
	s := frame.NewStringSeries("txt", []string{"good good work", "bad work", ""}, []bool{true, true, false})
	e := NewHashingVectorizer(16)
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	m, err := e.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cols != 16 {
		t.Fatalf("cols = %d", m.Cols)
	}
	sum0, sum1, sum2 := 0.0, 0.0, 0.0
	for j := 0; j < 16; j++ {
		sum0 += m.At(0, j)
		sum1 += m.At(1, j)
		sum2 += m.At(2, j)
	}
	if sum0 != 3 || sum1 != 2 || sum2 != 0 {
		t.Errorf("token counts = %v %v %v", sum0, sum1, sum2)
	}
	intCol := frame.NewIntSeries("i", []int64{1}, nil)
	if err := NewHashingVectorizer(8).Fit(intCol); err == nil {
		t.Error("expected error for non-string column")
	}
}

func TestTfidfVectorizer(t *testing.T) {
	s := frame.NewStringSeries("txt", []string{
		"excellent work excellent", "poor work", "excellent hire",
	}, nil)
	e := NewTfidfVectorizer(0)
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	vocab := e.Vocabulary()
	if len(vocab) != 4 { // excellent, hire, poor, work
		t.Fatalf("vocab = %v", vocab)
	}
	m, err := e.Transform(s)
	if err != nil {
		t.Fatal(err)
	}
	// rows are L2 normalized
	for i := 0; i < 3; i++ {
		n := 0.0
		for j := 0; j < m.Cols; j++ {
			n += m.At(i, j) * m.At(i, j)
		}
		if math.Abs(n-1) > 1e-9 {
			t.Errorf("row %d norm² = %v", i, n)
		}
	}
	// unknown tokens ignored
	test := frame.NewStringSeries("txt", []string{"zebra quantum"}, nil)
	mt, _ := e.Transform(test)
	for j := 0; j < mt.Cols; j++ {
		if mt.At(0, j) != 0 {
			t.Error("unknown tokens should produce zero row")
		}
	}
}

func TestTfidfMaxFeatures(t *testing.T) {
	s := frame.NewStringSeries("txt", []string{"a b c", "a b", "a"}, nil)
	e := NewTfidfVectorizer(2)
	if err := e.Fit(s); err != nil {
		t.Fatal(err)
	}
	v := e.Vocabulary()
	if len(v) != 2 || v[0] != "a" || v[1] != "b" {
		t.Errorf("capped vocab = %v", v)
	}
}

func TestImputerStrategies(t *testing.T) {
	num := frame.NewFloatSeries("x", []float64{1, 3, 0, 100}, []bool{true, true, false, true})
	mean, err := NewImputer(ImputeMean).FitTransform(num)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean.Float(2)-104.0/3) > 1e-9 {
		t.Errorf("mean imputed = %v", mean.Float(2))
	}
	med, err := NewImputer(ImputeMedian).FitTransform(num)
	if err != nil {
		t.Fatal(err)
	}
	if med.Float(2) != 3 {
		t.Errorf("median imputed = %v", med.Float(2))
	}
	cat := frame.NewStringSeries("c", []string{"a", "b", "a", ""}, []bool{true, true, true, false})
	mode, err := NewImputer(ImputeMode).FitTransform(cat)
	if err != nil {
		t.Fatal(err)
	}
	if mode.Str(3) != "a" {
		t.Errorf("mode imputed = %q", mode.Str(3))
	}
	ci := NewImputer(ImputeConstant)
	ci.Constant = frame.Str("missing")
	constant, err := ci.FitTransform(cat)
	if err != nil {
		t.Fatal(err)
	}
	if constant.Str(3) != "missing" {
		t.Errorf("constant imputed = %q", constant.Str(3))
	}
}

func TestImputerErrors(t *testing.T) {
	cat := frame.NewStringSeries("c", []string{"a"}, nil)
	if err := NewImputer(ImputeMean).Fit(cat); err == nil {
		t.Error("expected error imputing mean of string column")
	}
	if err := NewImputer(ImputeConstant).Fit(cat); err == nil {
		t.Error("expected error for null constant")
	}
	if _, err := NewImputer(ImputeMean).Transform(cat); err == nil {
		t.Error("expected error on transform before fit")
	}
	if ImputeMean.String() != "mean" || ImputeConstant.String() != "constant" {
		t.Error("strategy names wrong")
	}
}

func TestImputerDoesNotMutateInput(t *testing.T) {
	num := frame.NewFloatSeries("x", []float64{1, 0}, []bool{true, false})
	if _, err := NewImputer(ImputeMean).FitTransform(num); err != nil {
		t.Fatal(err)
	}
	if !num.IsNull(1) {
		t.Error("imputer mutated its input")
	}
}

func TestColumnTransformer(t *testing.T) {
	f := frame.MustNew(
		frame.NewFloatSeries("age", []float64{20, 40, 0}, []bool{true, true, false}),
		frame.NewStringSeries("deg", []string{"bsc", "", "msc"}, []bool{true, false, true}),
		frame.NewStringSeries("txt", []string{"great work", "poor", "great"}, nil),
	)
	ct := NewColumnTransformer(
		ColumnSpec{Column: "age", Imputer: NewImputer(ImputeMean), Encoder: NewStandardScaler()},
		ColumnSpec{Column: "deg", Imputer: NewImputer(ImputeMode), Encoder: NewOneHotEncoder()},
		ColumnSpec{Column: "txt", Encoder: NewHashingVectorizer(8)},
	)
	x, err := ct.FitTransform(f)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 3 || x.Cols != 1+2+8 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	names := ct.FeatureNames()
	if len(names) != 11 || names[0] != "age_scaled" {
		t.Errorf("names = %v", names)
	}
	// deg row 1 was null -> imputed to mode ("bsc" or "msc" tie -> deterministic)
	sum := x.At(1, 1) + x.At(1, 2)
	if sum != 1 {
		t.Errorf("imputed one-hot row should have exactly one indicator, got %v", sum)
	}
}

func TestColumnTransformerErrors(t *testing.T) {
	f := frame.MustNew(frame.NewFloatSeries("a", []float64{1}, nil))
	if err := NewColumnTransformer().Fit(f); err == nil {
		t.Error("expected error for no specs")
	}
	ct := NewColumnTransformer(ColumnSpec{Column: "missing", Encoder: NewStandardScaler()})
	if err := ct.Fit(f); err == nil {
		t.Error("expected error for unknown column")
	}
	ct2 := NewColumnTransformer(ColumnSpec{Column: "a", Encoder: NewStandardScaler()})
	if _, err := ct2.Transform(f); err == nil {
		t.Error("expected error transforming before fit")
	}
}

// Property: one-hot rows sum to 1 for values seen at fit time and 0 for
// unseen/null values.
func TestQuickOneHotRowSums(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size%30) + 1
		vals := make([]string, n)
		valid := make([]bool, n)
		for i := range vals {
			vals[i] = string(rune('a' + r.Intn(4)))
			valid[i] = r.Float64() > 0.2
		}
		s := frame.NewStringSeries("c", vals, valid)
		e := NewOneHotEncoder()
		if err := e.Fit(s); err != nil {
			// all-null columns are rejected; that's fine
			return s.NullCount() == n
		}
		m, err := e.Transform(s)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < m.Cols; j++ {
				sum += m.At(i, j)
			}
			if valid[i] && sum != 1 {
				return false
			}
			if !valid[i] && sum != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: standard scaling produces (approximately) zero mean over the
// originally non-null entries.
func TestQuickStandardScalerZeroMean(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size%40) + 2
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 10
		}
		s := frame.NewFloatSeries("x", vals, nil)
		e := NewStandardScaler()
		if err := e.Fit(s); err != nil {
			return false
		}
		m, err := e.Transform(s)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += m.At(i, 0)
		}
		return math.Abs(sum/float64(n)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
