package encode

import (
	"fmt"
	"sort"

	"nde/internal/frame"
	"nde/internal/nderr"
)

// ImputeStrategy selects how an Imputer fills nulls.
type ImputeStrategy int

const (
	// ImputeMean fills numeric nulls with the fitted column mean.
	ImputeMean ImputeStrategy = iota
	// ImputeMedian fills numeric nulls with the fitted column median.
	ImputeMedian
	// ImputeMode fills nulls with the fitted most frequent value (any kind).
	ImputeMode
	// ImputeConstant fills nulls with a user-supplied value.
	ImputeConstant
)

// String returns the strategy name.
func (s ImputeStrategy) String() string {
	switch s {
	case ImputeMean:
		return "mean"
	case ImputeMedian:
		return "median"
	case ImputeMode:
		return "mode"
	case ImputeConstant:
		return "constant"
	}
	return "unknown"
}

// Imputer is a column-to-column transform that replaces nulls with a fitted
// statistic. Unlike the Encoders in this package, it outputs a Series so it
// can be chained in front of another encoder (the Pipeline([Imputer(),
// OneHotEncoder()]) construction of the tutorial's Figure 3).
type Imputer struct {
	Strategy ImputeStrategy
	Constant frame.Value // used by ImputeConstant

	fill   frame.Value
	fitted bool
}

// NewImputer returns an imputer with the given strategy.
func NewImputer(strategy ImputeStrategy) *Imputer { return &Imputer{Strategy: strategy} }

// Fit learns the fill value from the non-null entries of s.
func (e *Imputer) Fit(s *frame.Series) error {
	switch e.Strategy {
	case ImputeMean:
		m, ok := s.Mean()
		if !ok {
			return fmt.Errorf("encode: cannot impute mean of column %q with no numeric values: %w", s.Name(), nderr.ErrEmptyInput)
		}
		e.fill = frame.Float(m)
	case ImputeMedian:
		med, ok := seriesMedian(s)
		if !ok {
			return fmt.Errorf("encode: cannot impute median of column %q with no numeric values: %w", s.Name(), nderr.ErrEmptyInput)
		}
		e.fill = frame.Float(med)
	case ImputeMode:
		m, ok := s.Mode()
		if !ok {
			return fmt.Errorf("encode: cannot impute mode of column %q with no values: %w", s.Name(), nderr.ErrEmptyInput)
		}
		e.fill = m
	case ImputeConstant:
		if e.Constant.IsNull() {
			return fmt.Errorf("encode: constant imputer needs a non-null Constant")
		}
		e.fill = e.Constant
	default:
		return fmt.Errorf("encode: unknown impute strategy %d", e.Strategy)
	}
	e.fitted = true
	return nil
}

// FillValue returns the fitted fill value.
func (e *Imputer) FillValue() frame.Value { return e.fill }

// Transform returns a copy of s with nulls replaced by the fitted value.
func (e *Imputer) Transform(s *frame.Series) (*frame.Series, error) {
	if !e.fitted {
		return nil, fmt.Errorf("encode: Imputer used before Fit")
	}
	out := s.Clone()
	for i := 0; i < out.Len(); i++ {
		if out.IsNull(i) {
			if err := out.Set(i, e.fill); err != nil {
				return nil, fmt.Errorf("encode: imputing column %q: %w", s.Name(), err)
			}
		}
	}
	return out, nil
}

// FitTransform fits on s and transforms it in one call.
func (e *Imputer) FitTransform(s *frame.Series) (*frame.Series, error) {
	if err := e.Fit(s); err != nil {
		return nil, err
	}
	return e.Transform(s)
}

func seriesMedian(s *frame.Series) (float64, bool) {
	var vals []float64
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue
		}
		switch s.Kind() {
		case frame.KindInt, frame.KindFloat:
			vals = append(vals, s.Float(i))
		default:
			return 0, false
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], true
	}
	return (vals[mid-1] + vals[mid]) / 2, true
}
