package encode

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"unicode"

	"nde/internal/frame"
	"nde/internal/linalg"
)

// Tokenize lowercases and splits text on non-letter/digit runes.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// HashingVectorizer maps text to a fixed-dimensional vector of token counts
// via feature hashing. It needs no fitted vocabulary, making it robust to
// out-of-vocabulary tokens; this is the library's deterministic stand-in for
// the dense sentence embeddings used in the tutorial's pipelines.
type HashingVectorizer struct {
	Dim  int // number of hash buckets (default 64)
	name string
}

// NewHashingVectorizer returns a vectorizer with the given dimensionality.
func NewHashingVectorizer(dim int) *HashingVectorizer { return &HashingVectorizer{Dim: dim} }

// Fit records the column name; hashing needs no vocabulary.
func (e *HashingVectorizer) Fit(s *frame.Series) error {
	if e.Dim <= 0 {
		e.Dim = 64
	}
	if s.Kind() != frame.KindString {
		return fmt.Errorf("encode: hashing vectorizer needs a string column, got %s", s.Kind())
	}
	e.name = s.Name()
	return nil
}

// Transform emits token counts per hash bucket; nulls become zero vectors.
func (e *HashingVectorizer) Transform(s *frame.Series) (*linalg.Matrix, error) {
	if e.name == "" {
		return nil, fmt.Errorf("encode: HashingVectorizer used before Fit")
	}
	out := linalg.NewMatrix(s.Len(), e.Dim)
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue
		}
		for _, tok := range Tokenize(s.Str(i)) {
			h := fnv.New32a()
			h.Write([]byte(tok))
			b := int(h.Sum32()) % e.Dim
			if b < 0 {
				b += e.Dim
			}
			out.Set(i, b, out.At(i, b)+1)
		}
	}
	return out, nil
}

// Names returns "<col>_h<i>" per bucket.
func (e *HashingVectorizer) Names() []string {
	names := make([]string, e.Dim)
	for i := range names {
		names[i] = fmt.Sprintf("%s_h%d", e.name, i)
	}
	return names
}

// TfidfVectorizer builds a vocabulary at fit time (optionally capped to the
// most frequent MaxFeatures tokens) and emits TF-IDF weights. Unknown tokens
// are ignored at transform time; nulls become zero vectors.
type TfidfVectorizer struct {
	MaxFeatures int // 0 = unlimited
	MinDF       int // minimum document frequency (default 1)

	name  string
	vocab map[string]int
	terms []string
	idf   []float64
}

// NewTfidfVectorizer returns a vectorizer capped at maxFeatures terms
// (0 = unlimited).
func NewTfidfVectorizer(maxFeatures int) *TfidfVectorizer {
	return &TfidfVectorizer{MaxFeatures: maxFeatures, MinDF: 1}
}

// Fit builds the vocabulary and inverse document frequencies.
func (e *TfidfVectorizer) Fit(s *frame.Series) error {
	if s.Kind() != frame.KindString {
		return fmt.Errorf("encode: tf-idf vectorizer needs a string column, got %s", s.Kind())
	}
	minDF := e.MinDF
	if minDF < 1 {
		minDF = 1
	}
	df := make(map[string]int)
	nDocs := 0
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue
		}
		nDocs++
		seen := make(map[string]bool)
		for _, tok := range Tokenize(s.Str(i)) {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	if nDocs == 0 {
		return fmt.Errorf("encode: tf-idf column %q has no documents", s.Name())
	}
	type tc struct {
		term string
		df   int
	}
	var cand []tc
	for term, d := range df {
		if d >= minDF {
			cand = append(cand, tc{term, d})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].df != cand[b].df {
			return cand[a].df > cand[b].df
		}
		return cand[a].term < cand[b].term
	})
	if e.MaxFeatures > 0 && len(cand) > e.MaxFeatures {
		cand = cand[:e.MaxFeatures]
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].term < cand[b].term })
	e.name = s.Name()
	e.vocab = make(map[string]int, len(cand))
	e.terms = make([]string, len(cand))
	e.idf = make([]float64, len(cand))
	for i, c := range cand {
		e.vocab[c.term] = i
		e.terms[i] = c.term
		e.idf[i] = math.Log(float64(1+nDocs)/float64(1+c.df)) + 1
	}
	return nil
}

// Transform emits L2-normalized TF-IDF rows.
func (e *TfidfVectorizer) Transform(s *frame.Series) (*linalg.Matrix, error) {
	if e.vocab == nil {
		return nil, fmt.Errorf("encode: TfidfVectorizer used before Fit")
	}
	out := linalg.NewMatrix(s.Len(), len(e.terms))
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue
		}
		row := out.Row(i)
		for _, tok := range Tokenize(s.Str(i)) {
			if j, ok := e.vocab[tok]; ok {
				row[j] += e.idf[j]
			}
		}
		if n := linalg.Norm2(row); n > 0 {
			linalg.Scale(1/n, row)
		}
	}
	return out, nil
}

// Names returns "<col>:<term>" per vocabulary term.
func (e *TfidfVectorizer) Names() []string {
	names := make([]string, len(e.terms))
	for i, t := range e.terms {
		names[i] = e.name + ":" + t
	}
	return names
}

// Vocabulary returns the fitted terms in encoding order.
func (e *TfidfVectorizer) Vocabulary() []string { return e.terms }
