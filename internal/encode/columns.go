package encode

import (
	"fmt"

	"nde/internal/frame"
	"nde/internal/linalg"
)

// ColumnSpec binds one source column to an encoder, optionally preceded by
// an imputer (mirroring scikit-learn's Pipeline([Imputer(), Encoder()])
// construction inside a ColumnTransformer).
type ColumnSpec struct {
	Column  string
	Imputer *Imputer // optional
	Encoder Encoder
}

// ColumnTransformer fits a set of per-column encoders and horizontally
// concatenates their outputs into one feature matrix. Output row i
// corresponds to input row i for every encoder, so the transformer never
// reshapes rows and provenance passes through unchanged.
type ColumnTransformer struct {
	Specs []ColumnSpec

	fitted bool
}

// NewColumnTransformer builds a transformer over the given specs.
func NewColumnTransformer(specs ...ColumnSpec) *ColumnTransformer {
	return &ColumnTransformer{Specs: specs}
}

// Fit fits every imputer and encoder on the corresponding column of f.
func (t *ColumnTransformer) Fit(f *frame.Frame) error {
	if len(t.Specs) == 0 {
		return fmt.Errorf("encode: ColumnTransformer has no specs")
	}
	for _, spec := range t.Specs {
		col, err := f.Column(spec.Column)
		if err != nil {
			return err
		}
		if spec.Imputer != nil {
			if col, err = spec.Imputer.FitTransform(col); err != nil {
				return err
			}
		}
		if err := spec.Encoder.Fit(col); err != nil {
			return err
		}
	}
	t.fitted = true
	return nil
}

// Transform encodes every column and stacks the blocks left to right in
// spec order.
func (t *ColumnTransformer) Transform(f *frame.Frame) (*linalg.Matrix, error) {
	if !t.fitted {
		return nil, fmt.Errorf("encode: ColumnTransformer used before Fit")
	}
	var blocks []*linalg.Matrix
	total := 0
	for _, spec := range t.Specs {
		col, err := f.Column(spec.Column)
		if err != nil {
			return nil, err
		}
		if spec.Imputer != nil {
			if col, err = spec.Imputer.Transform(col); err != nil {
				return nil, err
			}
		}
		block, err := spec.Encoder.Transform(col)
		if err != nil {
			return nil, err
		}
		if block.Rows != f.NumRows() {
			return nil, fmt.Errorf("encode: encoder for %q produced %d rows, want %d", spec.Column, block.Rows, f.NumRows())
		}
		blocks = append(blocks, block)
		total += block.Cols
	}
	out := linalg.NewMatrix(f.NumRows(), total)
	off := 0
	for _, b := range blocks {
		for r := 0; r < b.Rows; r++ {
			copy(out.Row(r)[off:off+b.Cols], b.Row(r))
		}
		off += b.Cols
	}
	return out, nil
}

// FitTransform fits on f and transforms it in one call.
func (t *ColumnTransformer) FitTransform(f *frame.Frame) (*linalg.Matrix, error) {
	if err := t.Fit(f); err != nil {
		return nil, err
	}
	return t.Transform(f)
}

// FeatureNames returns the concatenated output feature names; valid after Fit.
func (t *ColumnTransformer) FeatureNames() []string {
	var names []string
	for _, spec := range t.Specs {
		names = append(names, spec.Encoder.Names()...)
	}
	return names
}
