package serve

// Wire types for the nde-serve JSON API. Every error response uses the
// same envelope:
//
//	{"error": "<human message>", "class": "<machine class>"}
//
// where class is either an HTTP-layer class (bad_request, not_found,
// method_not_allowed, body_too_large, busy, draining) or the nderr
// sentinel class of a failed computation (nde.ErrorClass), so clients
// switch on class without parsing message text.

// MatrixSpec is one split of a dataset: either an inline CSV document
// (numeric feature columns plus an integer label column) or an inline
// matrix. Exactly one of CSV and X must be set.
type MatrixSpec struct {
	// CSV is a full CSV document with a header row. All columns except
	// the label column must be numeric.
	CSV string `json:"csv,omitempty"`
	// Label names the CSV label column; default "label". Ignored for
	// inline matrices.
	Label string `json:"label,omitempty"`
	// X is the inline feature matrix, row-major.
	X [][]float64 `json:"x,omitempty"`
	// Y is the inline label vector, parallel to X.
	Y []int `json:"y,omitempty"`
}

// RegisterRequest registers a dataset. Train and Valid are required; Test
// and Truth unlock /v1/cleaning (Truth is the ground-truth label vector
// for the train split, standing in for the cleaning oracle).
type RegisterRequest struct {
	Name  string      `json:"name,omitempty"`
	Train *MatrixSpec `json:"train"`
	Valid *MatrixSpec `json:"valid"`
	Test  *MatrixSpec `json:"test,omitempty"`
	Truth []int       `json:"truth,omitempty"`
}

// RegisterResponse reports the content-addressed dataset id. Registering
// the same content twice returns the same id.
type RegisterResponse struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	TrainRows int    `json:"train_rows"`
	ValidRows int    `json:"valid_rows"`
	TestRows  int    `json:"test_rows,omitempty"`
	Dim       int    `json:"dim"`
}

// ImportanceRequest scores every training row with kNN-Shapley.
type ImportanceRequest struct {
	Dataset string `json:"dataset"`
	// K is the Shapley neighborhood size; default 5.
	K int `json:"k,omitempty"`
	// Workers bounds the worker pool for this call (<= 0 = auto).
	Workers int `json:"workers,omitempty"`
	// Async queues the computation and returns a run id for /v1/runs.
	Async bool `json:"async,omitempty"`
}

// ImportanceResponse carries one Shapley value per training row.
type ImportanceResponse struct {
	Dataset string    `json:"dataset"`
	K       int       `json:"k"`
	Scores  []float64 `json:"scores"`
}

// WhatIfVariant is one counterfactual: drop the given train rows.
type WhatIfVariant struct {
	Name   string `json:"name"`
	Remove []int  `json:"remove"`
}

// WhatIfRequest evaluates removal variants against the registered
// dataset (identity provenance: source tuple i is train row i).
type WhatIfRequest struct {
	Dataset  string          `json:"dataset"`
	Variants []WhatIfVariant `json:"variants"`
	Workers  int             `json:"workers,omitempty"`
	Async    bool            `json:"async,omitempty"`
}

// WhatIfResultJSON is one variant outcome. Metric is the validation
// accuracy after retraining without the removed rows; a variant that
// removes every row reports surviving 0 and a null metric.
type WhatIfResultJSON struct {
	Name      string   `json:"name"`
	Metric    *float64 `json:"metric"` // null when no rows survive
	Surviving int      `json:"surviving"`
}

// WhatIfResponse carries the variant outcomes in request order.
type WhatIfResponse struct {
	Dataset  string             `json:"dataset"`
	Baseline float64            `json:"baseline"`
	Results  []WhatIfResultJSON `json:"results"`
}

// CleaningRequest compares cleaning strategies on a dataset registered
// with test data and ground-truth labels.
type CleaningRequest struct {
	Dataset string `json:"dataset"`
	// Strategies to compare; default ["random", "knn-shapley"]. Known:
	// random, knn-shapley, loo, noise-score, influence.
	Strategies []string `json:"strategies,omitempty"`
	// Batch is the rows cleaned per round; default 10.
	Batch int `json:"batch,omitempty"`
	// Budget is the total oracle calls; default 50.
	Budget  int  `json:"budget,omitempty"`
	Workers int  `json:"workers,omitempty"`
	Async   bool `json:"async,omitempty"`
}

// CurvePointJSON is one cleaning-curve point.
type CurvePointJSON struct {
	Cleaned  int     `json:"cleaned"`
	Accuracy float64 `json:"accuracy"`
}

// CleaningStrategyResult is one strategy's cleaning curve and its
// area-under-curve summary (higher is better).
type CleaningStrategyResult struct {
	Strategy string           `json:"strategy"`
	AUC      float64          `json:"auc"`
	Curve    []CurvePointJSON `json:"curve"`
}

// CleaningResponse carries per-strategy results in request order.
type CleaningResponse struct {
	Dataset string                   `json:"dataset"`
	Results []CleaningStrategyResult `json:"results"`
}

// RunResponse is the /v1/runs/{id} poll result. Result is present only
// in state "done"; Error and Class only in state "error".
type RunResponse struct {
	ID     string `json:"id"`
	Op     string `json:"op"`
	State  string `json:"state"` // running | done | error
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	Class  string `json:"class,omitempty"`
}

// AsyncAccepted is the 202 response to a request with async=true.
type AsyncAccepted struct {
	Run string `json:"run"`
}

// ErrorResponse is the uniform error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
	Class string `json:"class"`
}
