package serve

import (
	"fmt"
	"sync"
)

// A run is one async computation tracked for /v1/runs/{id} polling. Its
// fields past done are written once by the worker goroutine before done
// is closed and read-only afterwards.
type run struct {
	id   string
	op   string
	done chan struct{}

	result any
	err    error
}

func (r *run) finished() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// runRegistry tracks async runs and, through its WaitGroup, every
// in-flight computation (sync ones too) so drain can wait for all of
// them. Finished runs are retained for polling up to keep entries;
// beyond that the oldest finished run is dropped (a poll for it then
// 404s, which a client treats as "expired").
type runRegistry struct {
	mu    sync.Mutex
	runs  map[string]*run
	order []string // insertion order for bounded retention
	seq   int
	keep  int

	wg sync.WaitGroup // in-flight computations, sync and async
}

func newRunRegistry(keep int) *runRegistry {
	if keep < 1 {
		keep = 1
	}
	return &runRegistry{runs: map[string]*run{}, keep: keep}
}

// begin registers a new async run and returns it. The caller must call
// finish exactly once.
func (g *runRegistry) begin(op string) *run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	r := &run{id: fmt.Sprintf("r-%06d", g.seq), op: op, done: make(chan struct{})}
	g.runs[r.id] = r
	g.order = append(g.order, r.id)
	g.trimLocked()
	g.wg.Add(1)
	return r
}

// finish publishes the run's outcome and releases its drain slot.
func (g *runRegistry) finish(r *run, result any, err error) {
	r.result, r.err = result, err
	close(r.done)
	g.wg.Done()
}

// get returns the run by id.
func (g *runRegistry) get(id string) (*run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	return r, ok
}

// track/untrack wrap a synchronous computation in the drain WaitGroup.
func (g *runRegistry) track()   { g.wg.Add(1) }
func (g *runRegistry) untrack() { g.wg.Done() }

// wait blocks until every tracked computation has finished.
func (g *runRegistry) wait() { g.wg.Wait() }

// trimLocked drops the oldest FINISHED runs beyond the retention bound.
// Running entries are never dropped: their ids must stay pollable and
// drain still owns them.
func (g *runRegistry) trimLocked() {
	for len(g.runs) > g.keep {
		dropped := false
		for i, id := range g.order {
			if g.runs[id].finished() {
				delete(g.runs, id)
				copy(g.order[i:], g.order[i+1:])
				g.order = g.order[:len(g.order)-1]
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything still running; retention resumes later
		}
	}
}
