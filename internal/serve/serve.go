// Package serve is the nde-serve daemon core: the data-debugging facade
// (kNN-Shapley importance, removal what-ifs, cleaning-strategy
// comparison) exposed as a JSON HTTP API over the stdlib mux, mounted
// alongside the ops telemetry plane (/metrics, /healthz, /readyz,
// /trace).
//
// Serving discipline:
//
//   - Datasets are registered once (POST /v1/datasets) and referenced by
//     a content-addressed id, so repeated scoring of the same data keys
//     into the same cached artifacts.
//   - Derived artifacts — the shared neighbor index (internal/
//     importance), the identity-provenance featurized table, and score
//     vectors — live in singleflight internal/store caches: concurrent
//     identical requests share one build instead of duplicating work.
//   - Admission is budgeted (internal/par.Budget): at most Slots
//     computations run concurrently, at most Queue callers wait, and
//     anything beyond that is shed with 429 instead of queueing without
//     bound.
//   - Drain (SIGTERM in cmd/nde-serve) flips /readyz to 503, stops
//     admitting new computations (503 class "draining"), waits for
//     in-flight ones — including async runs — then lets the caller shut
//     the listener down and flush the ledger.
package serve

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"

	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/obs/ops"
	"nde/internal/par"
	"nde/internal/pipeline"
	"nde/internal/prov"
	"nde/internal/store"
)

// Config tunes a Server. The zero value serves with defaults.
type Config struct {
	// Slots is the concurrent-computation budget (default 4).
	Slots int
	// Queue is how many computations may wait for a slot before new ones
	// are shed with 429 (default 8).
	Queue int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxDatasets bounds the dataset registry; registering past it
	// evicts the oldest dataset (default 32).
	MaxDatasets int
	// KeepRuns bounds retained finished async runs (default 256).
	KeepRuns int
	// Ops configures the mounted telemetry plane. Its Ready func is
	// overridden to reflect drain state.
	Ops ops.Config
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.Queue < 0 {
		c.Queue = 0
	} else if c.Queue == 0 {
		c.Queue = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 32
	}
	if c.KeepRuns <= 0 {
		c.KeepRuns = 256
	}
	return c
}

// dataset is one registered dataset. Immutable after registration.
type dataset struct {
	id    string
	name  string
	train *ml.Dataset
	valid *ml.Dataset
	test  *ml.Dataset // nil unless registered
	truth []int       // nil unless registered
}

// Server is the serving core. Create with NewServer, mount Handler.
type Server struct {
	cfg    Config
	budget *par.Budget
	runs   *runRegistry

	mu       sync.Mutex
	datasets map[string]*dataset
	dsOrder  []string // registration order for bounded eviction

	draining atomic.Bool

	// Derived-artifact caches, all singleflight (internal/store):
	// featurized tables keyed by dataset id, score vectors keyed by
	// (dataset id, k), what-if responses keyed by (dataset id, variant
	// fingerprint). The neighbor-index store inside internal/importance is
	// shared process-wide and needs no wiring here.
	featurized *store.Store[string, *pipeline.Featurized]
	scores     *store.Store[scoreKey, []float64]
	whatifs    *store.Store[whatifKey, WhatIfResponse]
}

type scoreKey struct {
	dataset string
	k       int
}

// whatifKey addresses one what-if batch: the dataset id plus an FNV-1a
// fingerprint of the ordered variant names and removal rows. The worker
// count is deliberately NOT part of the key — results are bit-for-bit
// worker-invariant (the pipeline concurrency contract), so requests
// differing only in workers share one cached response.
type whatifKey struct {
	dataset  string
	variants uint64
}

// NewServer creates a serving core with the given configuration.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:        cfg,
		budget:     par.NewBudget("serve_budget", cfg.Slots, cfg.Queue),
		runs:       newRunRegistry(cfg.KeepRuns),
		datasets:   map[string]*dataset{},
		featurized: store.New[string, *pipeline.Featurized]("serve_featurized", 8),
		scores:     store.New[scoreKey, []float64]("serve_scores", 32),
		whatifs:    store.New[whatifKey, WhatIfResponse]("serve_whatif", 32),
	}
}

// Handler returns the full daemon handler: the /v1 API plus the ops
// plane, whose /readyz reports false while draining.
func (s *Server) Handler() http.Handler {
	opsCfg := s.cfg.Ops
	userReady := opsCfg.Ready
	opsCfg.Ready = func() bool {
		if s.draining.Load() {
			return false
		}
		return userReady == nil || userReady()
	}

	mux := http.NewServeMux()
	mux.Handle("/", ops.Handler(opsCfg))
	mux.HandleFunc("/v1/datasets", s.handleDatasets)
	mux.HandleFunc("/v1/importance", s.handleImportance)
	mux.HandleFunc("/v1/whatif", s.handleWhatIf)
	mux.HandleFunc("/v1/cleaning", s.handleCleaning)
	mux.HandleFunc("/v1/runs/", s.handleRuns)
	return mux
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting new computations (readiness flips false, compute
// endpoints answer 503 class "draining") and blocks until every
// in-flight computation — sync handlers and async runs — has finished.
// The HTTP listener keeps serving so clients can poll /v1/runs for final
// results; shutting the listener down afterwards is the caller's job.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.runs.wait()
}

// registerDataset validates a registration request, builds the splits,
// and stores the dataset under its content-addressed id. Registering
// identical content returns the existing id.
func (s *Server) registerDataset(req *RegisterRequest) (*dataset, error) {
	if req.Train == nil || req.Valid == nil {
		return nil, fmt.Errorf("%w: register needs train and valid splits", nderr.ErrEmptyInput)
	}
	train, err := buildDataset("train", req.Train)
	if err != nil {
		return nil, err
	}
	valid, err := buildDataset("valid", req.Valid)
	if err != nil {
		return nil, err
	}
	var test *ml.Dataset
	if req.Test != nil {
		if test, err = buildDataset("test", req.Test); err != nil {
			return nil, err
		}
	}
	if valid.Dim() != train.Dim() || (test != nil && test.Dim() != train.Dim()) {
		return nil, fmt.Errorf("%w: split dimensions differ", nderr.ErrShapeMismatch)
	}
	if req.Truth != nil && len(req.Truth) != train.Len() {
		return nil, fmt.Errorf("%w: truth has %d labels for %d train rows",
			nderr.ErrShapeMismatch, len(req.Truth), train.Len())
	}

	d := &dataset{
		name:  req.Name,
		train: train,
		valid: valid,
		test:  test,
		truth: req.Truth,
	}
	d.id = datasetID(d)

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.datasets[d.id]; ok {
		return existing, nil
	}
	s.datasets[d.id] = d
	s.dsOrder = append(s.dsOrder, d.id)
	for len(s.datasets) > s.cfg.MaxDatasets {
		oldest := s.dsOrder[0]
		s.dsOrder = s.dsOrder[1:]
		delete(s.datasets, oldest)
	}
	return d, nil
}

// lookup returns a registered dataset by id.
func (s *Server) lookup(id string) (*dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[id]
	return d, ok
}

// datasetID derives the content-addressed id: an FNV-1a combination of
// the split fingerprints and label/truth vectors. Same content, same id.
func datasetID(d *dataset) string {
	h := fnv.New64a()
	write := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	write(d.train.X.Fingerprint())
	write(d.valid.X.Fingerprint())
	for _, y := range d.train.Y {
		write(uint64(int64(y)))
	}
	for _, y := range d.valid.Y {
		write(uint64(int64(y)))
	}
	if d.test != nil {
		write(d.test.X.Fingerprint())
		for _, y := range d.test.Y {
			write(uint64(int64(y)))
		}
	}
	for _, y := range d.truth {
		write(uint64(int64(y)))
	}
	return fmt.Sprintf("d-%016x", h.Sum64())
}

// buildDataset materializes one split from its wire spec.
func buildDataset(split string, spec *MatrixSpec) (*ml.Dataset, error) {
	switch {
	case spec.CSV != "" && spec.X != nil:
		return nil, fmt.Errorf("%w: %s split sets both csv and x", nderr.ErrShapeMismatch, split)
	case spec.CSV != "":
		return datasetFromCSV(split, spec.CSV, spec.Label)
	case spec.X != nil:
		return datasetFromMatrix(split, spec.X, spec.Y)
	default:
		return nil, fmt.Errorf("%w: %s split has neither csv nor x", nderr.ErrEmptyInput, split)
	}
}

// datasetFromCSV parses a headered CSV: the label column (default
// "label") becomes integer classes, every other column must be numeric
// and becomes a feature.
func datasetFromCSV(split, csv, labelCol string) (*ml.Dataset, error) {
	if labelCol == "" {
		labelCol = "label"
	}
	f, err := frame.ReadCSVString(csv)
	if err != nil {
		return nil, fmt.Errorf("%s split: %w", split, err)
	}
	labels, err := f.Column(labelCol)
	if err != nil {
		return nil, fmt.Errorf("%w: %s split has no label column %q", nderr.ErrShapeMismatch, split, labelCol)
	}
	rows := f.NumRows()
	y := make([]int, rows)
	for i := 0; i < rows; i++ {
		if labels.IsNull(i) {
			return nil, fmt.Errorf("%w: %s split: null label at row %d", nderr.ErrNonFinite, split, i)
		}
		y[i] = int(labels.Int(i))
	}
	var cols [][]float64
	var names []string
	for c := 0; c < f.NumCols(); c++ {
		s := f.ColumnAt(c)
		if s.Name() == labelCol {
			continue
		}
		vals, err := s.Floats()
		if err != nil {
			return nil, fmt.Errorf("%s split: %w", split, err)
		}
		cols = append(cols, vals)
		names = append(names, s.Name())
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: %s split has no feature columns", nderr.ErrEmptyInput, split)
	}
	x := linalg.NewMatrix(rows, len(cols))
	for c, vals := range cols {
		for r, v := range vals {
			x.Set(r, c, v)
		}
	}
	d, err := ml.NewDataset(x, y)
	if err != nil {
		return nil, fmt.Errorf("%s split: %w", split, err)
	}
	if err := d.CheckFinite(); err != nil {
		return nil, fmt.Errorf("%s split: %w", split, err)
	}
	return d, nil
}

// datasetFromMatrix materializes an inline row-major matrix + labels.
func datasetFromMatrix(split string, rows [][]float64, y []int) (*ml.Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: %s split matrix is empty", nderr.ErrEmptyInput, split)
	}
	if len(y) != len(rows) {
		return nil, fmt.Errorf("%w: %s split has %d rows and %d labels",
			nderr.ErrShapeMismatch, split, len(rows), len(y))
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, fmt.Errorf("%w: %s split rows have no features", nderr.ErrEmptyInput, split)
	}
	x := linalg.NewMatrix(len(rows), dim)
	for r, row := range rows {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: %s split row %d has %d features, row 0 has %d",
				nderr.ErrShapeMismatch, split, r, len(row), dim)
		}
		for c, v := range row {
			x.Set(r, c, v)
		}
	}
	d, err := ml.NewDataset(x, y)
	if err != nil {
		return nil, fmt.Errorf("%s split: %w", split, err)
	}
	if err := d.CheckFinite(); err != nil {
		return nil, fmt.Errorf("%s split: %w", split, err)
	}
	return d, nil
}

// featurizedFor returns the identity-provenance featurized view of the
// dataset's train split (source tuple i = train row i), built at most
// once per dataset through the singleflight store. What-if removals
// filter it by provenance instead of replaying any pipeline.
func (s *Server) featurizedFor(d *dataset) (*pipeline.Featurized, error) {
	return s.featurized.GetOrBuild(d.id, func() (*pipeline.Featurized, error) {
		p := make([]prov.Polynomial, d.train.Len())
		for i := range p {
			p[i] = prov.Var(prov.TupleID{Table: "train", Row: i})
		}
		return &pipeline.Featurized{Data: d.train, Prov: p}, nil
	})
}
