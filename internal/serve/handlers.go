package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"nde"
	"nde/internal/cleaning"
	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/obs"
	"nde/internal/par"
	"nde/internal/pipeline"
	"nde/internal/prov"
)

// newModel is the classifier factory every serving computation retrains
// with — the facade default (5-NN), fresh per call so concurrent
// retrains never share state.
func newModel() ml.Classifier { return ml.NewKNN(5) }

// errTrailingData rejects request bodies with bytes after the JSON
// value. A package-level sentinel (not an ad-hoc fmt.Errorf, per the
// nde-lint errwrap contract) so decode stays classifiable.
var errTrailingData = errors.New("trailing data after JSON body")

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes the uniform error envelope and counts the failure.
func writeErr(w http.ResponseWriter, status int, msg, class string) {
	obs.Inc("serve_errors_total")
	writeJSON(w, status, ErrorResponse{Error: msg, Class: class})
}

// writeComputeErr maps a computation error to the envelope: degenerate-
// input family members are the client's fault (400), anything else is a
// server-side failure (500). The class comes from nde.ErrorClass, the
// same vocabulary the run ledger records.
func writeComputeErr(w http.ResponseWriter, err error) {
	class := nde.ErrorClass(err)
	status := http.StatusInternalServerError
	if errors.Is(err, nderr.ErrDegenerateInput) {
		status = http.StatusBadRequest
	}
	writeErr(w, status, err.Error(), class)
}

// post guards a mutating endpoint: only POST passes.
func post(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed", "method_not_allowed")
		return false
	}
	return true
}

// decode reads the capped JSON request body into v. Unknown fields and
// trailing garbage are rejected so typos fail loudly instead of being
// silently ignored.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil {
		var trailing any
		if dec.Decode(&trailing) != io.EOF {
			err = errTrailingData
		}
	}
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes), "body_too_large")
			return false
		}
		writeErr(w, http.StatusBadRequest, "malformed request: "+err.Error(), "bad_request")
		return false
	}
	return true
}

// compute runs one budgeted computation, sync or async. Admission order:
// drain check (503), then the concurrency budget (429 when both the
// slots and the wait queue are full). The budget slot is held for the
// whole computation — async runs hold theirs until the worker finishes —
// and every computation is tracked so Drain can wait for it.
func (s *Server) compute(w http.ResponseWriter, r *http.Request, op string, async bool, rows, workers int, fn func() (any, error)) {
	obs.Inc("serve_requests_total")
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining", "draining")
		return
	}
	if err := s.budget.Acquire(r.Context()); err != nil {
		if errors.Is(err, par.ErrBudgetExhausted) {
			writeErr(w, http.StatusTooManyRequests, "concurrency budget exhausted, retry later", "busy")
		} else {
			// request context ended while queued: the client is gone
			writeErr(w, http.StatusServiceUnavailable, "request canceled while queued", "canceled")
		}
		return
	}

	if async {
		run := s.runs.begin(op)
		go func() {
			defer s.budget.Release()
			start := time.Now()
			res, err := fn()
			obs.RecordOp(op, time.Since(start), rows, workers, "", nde.ErrorClass(err))
			s.runs.finish(run, res, err)
		}()
		writeJSON(w, http.StatusAccepted, AsyncAccepted{Run: run.id})
		return
	}

	s.runs.track()
	defer s.runs.untrack()
	defer s.budget.Release()
	start := time.Now()
	res, err := fn()
	obs.RecordOp(op, time.Since(start), rows, workers, "", nde.ErrorClass(err))
	if err != nil {
		writeComputeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleDatasets implements POST /v1/datasets.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obs.Inc("serve_requests_total")
	var req RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	start := time.Now()
	d, err := s.registerDataset(&req)
	obs.RecordOp("ServeRegister", time.Since(start), 0, 0, "", nde.ErrorClass(err))
	if err != nil {
		writeComputeErr(w, err)
		return
	}
	resp := RegisterResponse{
		ID:        d.id,
		Name:      d.name,
		TrainRows: d.train.Len(),
		ValidRows: d.valid.Len(),
		Dim:       d.train.Dim(),
	}
	if d.test != nil {
		resp.TestRows = d.test.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleImportance implements POST /v1/importance: kNN-Shapley over the
// train split. Score vectors are content-addressed by (dataset, k) in a
// singleflight store, so concurrent identical requests share one
// computation and repeated ones are cache hits; distinct k values over
// the same dataset still share the one neighbor index underneath.
func (s *Server) handleImportance(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	var req ImportanceRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K == 0 {
		req.K = 5
	}
	d, ok := s.lookup(req.Dataset)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown dataset "+req.Dataset, "not_found")
		return
	}
	if req.K < 1 || req.K > d.train.Len() {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("k %d outside [1, %d]", req.K, d.train.Len()), "bad_k")
		return
	}
	s.compute(w, r, "ServeImportance", req.Async, d.train.Len(), req.Workers, func() (any, error) {
		scores, err := s.scores.GetOrBuild(scoreKey{dataset: d.id, k: req.K}, func() ([]float64, error) {
			sc, err := importance.KNNShapleyParallel(req.K, d.train, d.valid, req.Workers)
			if err != nil {
				return nil, err
			}
			return []float64(sc), nil
		})
		if err != nil {
			return nil, err
		}
		return ImportanceResponse{Dataset: d.id, K: req.K, Scores: scores}, nil
	})
}

// handleWhatIf implements POST /v1/whatif: batch removal counterfactuals
// over the identity-provenance featurized train split. A hidden baseline
// variant (remove nothing) is prepended so the response always reports
// the un-intervened metric alongside the variants.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	var req WhatIfRequest
	if !s.decode(w, r, &req) {
		return
	}
	d, ok := s.lookup(req.Dataset)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown dataset "+req.Dataset, "not_found")
		return
	}
	variants := make([]pipeline.RemovalVariant, 0, len(req.Variants)+1)
	variants = append(variants, pipeline.RemovalVariant{Name: "baseline"})
	for _, v := range req.Variants {
		ids := make([]prov.TupleID, len(v.Remove))
		for j, row := range v.Remove {
			if row < 0 || row >= d.train.Len() {
				writeErr(w, http.StatusBadRequest,
					fmt.Sprintf("variant %q removes row %d outside [0, %d)", v.Name, row, d.train.Len()),
					"bad_request")
				return
			}
			ids[j] = prov.TupleID{Table: "train", Row: row}
		}
		variants = append(variants, pipeline.RemovalVariant{Name: v.Name, Remove: ids})
	}
	key := whatifKey{dataset: d.id, variants: variantsFingerprint(variants)}
	s.compute(w, r, "ServeWhatIf", req.Async, d.train.Len(), req.Workers, func() (any, error) {
		// Cached like scores: identical batches (any worker count — results
		// are worker-invariant) share one evaluation; concurrent identical
		// requests share one build (singleflight).
		return s.whatifs.GetOrBuild(key, func() (WhatIfResponse, error) {
			ft, err := s.featurizedFor(d)
			if err != nil {
				return WhatIfResponse{}, err
			}
			results, err := pipeline.WhatIfRemovalsParallel(ft, variants, newModel, d.valid, req.Workers)
			if err != nil {
				return WhatIfResponse{}, err
			}
			resp := WhatIfResponse{Dataset: d.id, Baseline: results[0].Metric}
			for _, res := range results[1:] {
				out := WhatIfResultJSON{Name: res.Name, Surviving: res.Surviving}
				if !math.IsNaN(res.Metric) {
					m := res.Metric
					out.Metric = &m
				}
				resp.Results = append(resp.Results, out)
			}
			return resp, nil
		})
	})
}

// variantsFingerprint hashes the ordered variant list (names and removal
// rows) for the what-if response cache key.
func variantsFingerprint(variants []pipeline.RemovalVariant) uint64 {
	h := fnv.New64a()
	var b [8]byte
	write := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	write(uint64(len(variants)))
	for _, v := range variants {
		io.WriteString(h, v.Name)
		write(uint64(len(v.Remove)))
		for _, id := range v.Remove {
			io.WriteString(h, id.Table)
			write(uint64(int64(id.Row)))
		}
	}
	return h.Sum64()
}

// strategyByName maps wire names to cleaning strategies. Seeded
// strategies use a fixed seed so responses are reproducible.
func strategyByName(name string) (cleaning.Strategy, bool) {
	switch name {
	case "random":
		return &cleaning.RandomStrategy{Seed: 1}, true
	case "knn-shapley":
		return &cleaning.KNNShapleyStrategy{}, true
	case "loo":
		return &cleaning.LOOStrategy{}, true
	case "noise-score":
		return &cleaning.NoiseStrategy{Seed: 1}, true
	case "influence":
		return &cleaning.InfluenceStrategy{}, true
	default:
		return nil, false
	}
}

// handleCleaning implements POST /v1/cleaning: compare cleaning
// strategies on a dataset registered with a test split and ground-truth
// labels (the label oracle).
func (s *Server) handleCleaning(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	var req CleaningRequest
	if !s.decode(w, r, &req) {
		return
	}
	d, ok := s.lookup(req.Dataset)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown dataset "+req.Dataset, "not_found")
		return
	}
	if d.test == nil || d.truth == nil {
		writeErr(w, http.StatusBadRequest,
			"dataset was registered without test split and truth labels; cleaning needs both", "bad_request")
		return
	}
	if len(req.Strategies) == 0 {
		req.Strategies = []string{"random", "knn-shapley"}
	}
	strategies := make([]cleaning.Strategy, len(req.Strategies))
	for i, name := range req.Strategies {
		st, ok := strategyByName(name)
		if !ok {
			writeErr(w, http.StatusBadRequest, "unknown cleaning strategy "+name, "bad_request")
			return
		}
		strategies[i] = st
	}
	if req.Batch <= 0 {
		req.Batch = 10
	}
	if req.Budget <= 0 {
		req.Budget = 50
	}
	s.compute(w, r, "ServeCleaning", req.Async, d.train.Len(), req.Workers, func() (any, error) {
		oracle := &cleaning.LabelOracle{Truth: d.truth}
		results, err := cleaning.CompareStrategiesParallel(
			d.train, d.valid, d.test, oracle, strategies, newModel, req.Batch, req.Budget, req.Workers)
		if err != nil {
			return nil, err
		}
		resp := CleaningResponse{Dataset: d.id}
		for _, res := range results {
			out := CleaningStrategyResult{
				Strategy: res.Strategy,
				AUC:      cleaning.AreaUnderCurve(res.Curve),
			}
			for _, p := range res.Curve {
				out.Curve = append(out.Curve, CurvePointJSON{Cleaned: p.Cleaned, Accuracy: p.Accuracy})
			}
			resp.Results = append(resp.Results, out)
		}
		return resp, nil
	})
}

// handleRuns implements GET /v1/runs/{id}: poll an async run.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed", "method_not_allowed")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/runs/")
	if id == "" || strings.Contains(id, "/") {
		writeErr(w, http.StatusNotFound, "missing run id", "not_found")
		return
	}
	run, ok := s.runs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown run "+id, "not_found")
		return
	}
	resp := RunResponse{ID: run.id, Op: run.op, State: "running"}
	if run.finished() {
		if run.err != nil {
			resp.State = "error"
			resp.Error = run.err.Error()
			resp.Class = nde.ErrorClass(run.err)
		} else {
			resp.State = "done"
			resp.Result = run.result
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
