package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"nde/internal/importance"
	"nde/internal/obs"
)

// blobs builds a deterministic two-cluster dataset: even rows are class
// 0 near the origin, odd rows are class 1 near (4, 4).
func blobs(n int) (x [][]float64, y []int) {
	for i := 0; i < n; i++ {
		c := i % 2
		base := float64(c) * 4
		jit := float64(i%5) * 0.1
		x = append(x, []float64{base + jit, base - jit})
		y = append(y, c)
	}
	return x, y
}

// registerBody is a full registration request over the blobs geometry,
// with ~1/7 of the train labels flipped and the clean labels as truth.
func registerBody(trainRows int) map[string]any {
	tx, ty := blobs(trainRows)
	vx, vy := blobs(10)
	sx, sy := blobs(12)
	truth := append([]int(nil), ty...)
	dirty := append([]int(nil), ty...)
	for i := range dirty {
		if i%7 == 0 {
			dirty[i] = 1 - dirty[i]
		}
	}
	return map[string]any{
		"train": map[string]any{"x": tx, "y": dirty},
		"valid": map[string]any{"x": vx, "y": vy},
		"test":  map[string]any{"x": sx, "y": sy},
		"truth": truth,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v (marshaled) and returns status, parsed body.
func postJSON(t *testing.T, url string, v any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("non-JSON response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

func register(t *testing.T, ts *httptest.Server, trainRows int) string {
	t.Helper()
	code, body := postJSON(t, ts.URL+"/v1/datasets", registerBody(trainRows))
	if code != http.StatusOK {
		t.Fatalf("register = %d: %v", code, body)
	}
	id, _ := body["id"].(string)
	if !strings.HasPrefix(id, "d-") {
		t.Fatalf("dataset id = %q", id)
	}
	return id
}

// Registration is content-addressed (same content, same id) and the full
// score → what-if → cleaning path works over real HTTP.
func TestEndpointsHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts, 42)
	if again := register(t, ts, 42); again != id {
		t.Errorf("re-registering identical content: id %q != %q", again, id)
	}

	code, body := postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": id, "k": 3})
	if code != http.StatusOK {
		t.Fatalf("importance = %d: %v", code, body)
	}
	scores, _ := body["scores"].([]any)
	if len(scores) != 42 {
		t.Errorf("got %d scores, want 42", len(scores))
	}

	code, body = postJSON(t, ts.URL+"/v1/whatif", map[string]any{
		"dataset": id,
		"variants": []map[string]any{
			{"name": "drop-two", "remove": []int{0, 1}},
			{"name": "drop-none", "remove": []int{}},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("whatif = %d: %v", code, body)
	}
	results, _ := body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("whatif results = %v", body)
	}
	first := results[0].(map[string]any)
	if n, _ := first["surviving"].(float64); n != 40 {
		t.Errorf("drop-two surviving = %v, want 40", first["surviving"])
	}
	if _, ok := body["baseline"].(float64); !ok {
		t.Errorf("no baseline metric in %v", body)
	}

	code, body = postJSON(t, ts.URL+"/v1/cleaning", map[string]any{
		"dataset": id, "strategies": []string{"random", "knn-shapley"}, "batch": 6, "budget": 12,
	})
	if code != http.StatusOK {
		t.Fatalf("cleaning = %d: %v", code, body)
	}
	results, _ = body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("cleaning results = %v", body)
	}
	for _, r := range results {
		m := r.(map[string]any)
		if curve, _ := m["curve"].([]any); len(curve) < 2 {
			t.Errorf("strategy %v curve too short: %v", m["strategy"], m["curve"])
		}
	}
}

// CSV registration parses features and the named label column.
func TestRegisterCSV(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var sb strings.Builder
	sb.WriteString("f1,f2,label\n")
	for i := 0; i < 20; i++ {
		c := i % 2
		fmt.Fprintf(&sb, "%g,%g,%d\n", float64(c)*4+float64(i%5)*0.1, float64(c)*4, c)
	}
	csv := sb.String()
	code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"train": map[string]any{"csv": csv},
		"valid": map[string]any{"csv": csv},
	})
	if code != http.StatusOK {
		t.Fatalf("csv register = %d: %v", code, body)
	}
	if rows, _ := body["train_rows"].(float64); rows != 20 {
		t.Errorf("train_rows = %v, want 20", body["train_rows"])
	}
	if dim, _ := body["dim"].(float64); dim != 2 {
		t.Errorf("dim = %v, want 2", body["dim"])
	}

	// a missing label column is the client's fault, with a machine class
	code, body = postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"train": map[string]any{"csv": "a,b\n1,2\n"},
		"valid": map[string]any{"csv": csv},
	})
	if code != http.StatusBadRequest || body["class"] != "shape_mismatch" {
		t.Errorf("missing label column = %d %v, want 400 shape_mismatch", code, body)
	}
}

// Malformed bodies, unknown fields, oversized bodies, unknown datasets
// and wrong methods all map to distinct classes.
func TestRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})

	resp, err := http.Post(ts.URL+"/v1/importance", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&e); resp.StatusCode != http.StatusBadRequest || e.Class != "bad_request" {
		t.Errorf("malformed JSON = %d class %q, want 400 bad_request", resp.StatusCode, e.Class)
	}
	resp.Body.Close()

	code, body := postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": "d-x", "bogus": 1})
	if code != http.StatusBadRequest || body["class"] != "bad_request" {
		t.Errorf("unknown field = %d %v, want 400 bad_request", code, body)
	}

	big := map[string]any{"dataset": strings.Repeat("x", 4096)}
	code, body = postJSON(t, ts.URL+"/v1/importance", big)
	if code != http.StatusRequestEntityTooLarge || body["class"] != "body_too_large" {
		t.Errorf("oversized body = %d %v, want 413 body_too_large", code, body)
	}

	code, body = postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": "d-missing"})
	if code != http.StatusNotFound || body["class"] != "not_found" {
		t.Errorf("unknown dataset = %d %v, want 404 not_found", code, body)
	}

	for _, path := range []string{"/v1/datasets", "/v1/importance", "/v1/whatif", "/v1/cleaning"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST" {
			t.Errorf("GET %s Allow = %q, want POST", path, allow)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs/r-000001", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed || resp2.Header.Get("Allow") != "GET, HEAD" {
		t.Errorf("POST /v1/runs = %d Allow %q, want 405 GET, HEAD", resp2.StatusCode, resp2.Header.Get("Allow"))
	}
}

// Degenerate data is rejected with the nderr class, not a 500: here a
// bad k (larger than the training set) surfaces as bad_k.
func TestComputeErrorClass(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts, 20)
	code, body := postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": id, "k": 1000})
	if code != http.StatusBadRequest || body["class"] != "bad_k" {
		t.Errorf("bad k = %d %v, want 400 bad_k", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/whatif", map[string]any{
		"dataset":  id,
		"variants": []map[string]any{{"name": "oob", "remove": []int{99}}},
	})
	if code != http.StatusBadRequest || body["class"] != "bad_request" {
		t.Errorf("out-of-range removal = %d %v, want 400 bad_request", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/cleaning", map[string]any{"dataset": id, "strategies": []string{"nope"}})
	if code != http.StatusBadRequest || body["class"] != "bad_request" {
		t.Errorf("unknown strategy = %d %v, want 400 bad_request", code, body)
	}
}

// An async request returns 202 with a run id that polls through
// running/done and delivers the same result shape as the sync path.
func TestAsyncRunLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts, 30)
	code, body := postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": id, "k": 3, "async": true})
	if code != http.StatusAccepted {
		t.Fatalf("async importance = %d: %v", code, body)
	}
	runID, _ := body["run"].(string)
	if !strings.HasPrefix(runID, "r-") {
		t.Fatalf("run id = %q", runID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + runID)
		if err != nil {
			t.Fatal(err)
		}
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rr.State == "done" {
			res, _ := rr.Result.(map[string]any)
			if scores, _ := res["scores"].([]any); len(scores) != 30 {
				t.Fatalf("async result scores = %d, want 30", len(scores))
			}
			break
		}
		if rr.State == "error" {
			t.Fatalf("async run failed: %s (%s)", rr.Error, rr.Class)
		}
		if time.Now().After(deadline) {
			t.Fatal("async run never finished")
		}
		runtime.Gosched()
	}

	resp, err := http.Get(ts.URL + "/v1/runs/r-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run = %d, want 404", resp.StatusCode)
	}
}

// With the budget's slots and queue exhausted, new computations shed
// with 429 and class "busy" instead of queueing without bound.
func TestBudgetExhausted429(t *testing.T) {
	s, ts := newTestServer(t, Config{Slots: 1, Queue: -1})
	id := register(t, ts, 20)
	// Occupy the only slot directly so the test is deterministic.
	if err := s.budget.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.budget.Release()
	code, body := postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": id})
	if code != http.StatusTooManyRequests || body["class"] != "busy" {
		t.Errorf("exhausted budget = %d %v, want 429 busy", code, body)
	}
}

// Concurrent identical requests share one artifact build: one miss on
// the score store, every other caller a hit, and one neighbor-index
// build underneath.
func TestConcurrentRequestsShareBuild(t *testing.T) {
	obs.Reset()
	obs.Enable()
	importance.ResetNeighborIndexCache()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
		importance.ResetNeighborIndexCache()
	})
	_, ts := newTestServer(t, Config{Slots: 8})
	id := register(t, ts, 60)

	const callers = 6
	var wg sync.WaitGroup
	codes := make([]int, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			codes[c], _ = postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": id, "k": 3})
		}(c)
	}
	wg.Wait()
	for c, code := range codes {
		if code != http.StatusOK {
			t.Errorf("caller %d = %d", c, code)
		}
	}
	r := obs.Default()
	if misses := r.Counter("serve_scores_misses_total").Value(); misses != 1 {
		t.Errorf("score store misses = %d, want 1 (duplicate builds)", misses)
	}
	if hits := r.Counter("serve_scores_hits_total").Value(); hits != callers-1 {
		t.Errorf("score store hits = %d, want %d", hits, callers-1)
	}
	if misses := r.Counter("importance_neighbor_index_misses_total").Value(); misses != 1 {
		t.Errorf("neighbor index misses = %d, want 1", misses)
	}
}

// A request arriving while an identical request's build is in flight
// blocks on that build (counted as a wait) and is served its artifact —
// deterministic via a white-box flight that blocks until released.
func TestSharedBuildWaits(t *testing.T) {
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
	s, ts := newTestServer(t, Config{})
	id := register(t, ts, 30)

	built := make(chan struct{})
	release := make(chan struct{})
	var flight sync.WaitGroup
	flight.Add(1)
	go func() {
		defer flight.Done()
		_, _ = s.scores.GetOrBuild(scoreKey{dataset: id, k: 3}, func() ([]float64, error) {
			close(built)
			<-release
			return []float64{0.5}, nil
		})
	}()
	<-built

	done := make(chan struct{})
	var code int
	var body map[string]any
	go func() {
		defer close(done)
		code, body = postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": id, "k": 3})
	}()
	r := obs.Default()
	deadline := time.Now().Add(5 * time.Second)
	for r.Counter("serve_scores_waits_total").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never blocked on the in-flight build")
		}
		runtime.Gosched()
	}
	close(release)
	<-done
	flight.Wait()
	if code != http.StatusOK {
		t.Fatalf("waiting request = %d %v, want 200", code, body)
	}
	scores, ok := body["scores"].([]any)
	if !ok || len(scores) != 1 || scores[0].(float64) != 0.5 {
		t.Errorf("waiting request scores = %v, want the shared flight's artifact [0.5]", body["scores"])
	}
	if misses := r.Counter("serve_scores_misses_total").Value(); misses != 1 {
		t.Errorf("score store misses = %d, want 1 (the waiter must not rebuild)", misses)
	}
}

// Drain flips readiness, sheds new computations with class "draining",
// and blocks until in-flight computations finish.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := register(t, ts, 20)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", resp.StatusCode)
	}

	// simulate an in-flight computation so Drain has something to wait on
	s.runs.track()
	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		runtime.Gosched()
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	code, body := postJSON(t, ts.URL+"/v1/importance", map[string]any{"dataset": id})
	if code != http.StatusServiceUnavailable || body["class"] != "draining" {
		t.Errorf("compute during drain = %d %v, want 503 draining", code, body)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned with a computation still in flight")
	default:
	}
	s.runs.untrack()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the last computation finished")
	}
}

// The ops plane is mounted on the same handler as the API.
func TestOpsPlaneMounted(t *testing.T) {
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
	_, ts := newTestServer(t, Config{})
	register(t, ts, 20)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "serve_requests_total") {
		t.Errorf("/metrics = %d, missing serve counters:\n%s", resp.StatusCode, raw)
	}
}
