package datagen

import (
	"fmt"
	"os"
	"path/filepath"

	"nde/internal/frame"
)

// LoadHiringCSV reads a scenario previously written as CSV files (the
// format emitted by cmd/nde-datagen): letters.csv, jobs.csv, social.csv and
// demographics.csv in one directory.
func LoadHiringCSV(dir string) (*HiringData, error) {
	read := func(name string) (*frame.Frame, error) {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("datagen: %w", err)
		}
		defer f.Close()
		fr, err := frame.ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("datagen: %s: %w", name, err)
		}
		return fr, nil
	}
	letters, err := read("letters.csv")
	if err != nil {
		return nil, err
	}
	jobs, err := read("jobs.csv")
	if err != nil {
		return nil, err
	}
	social, err := read("social.csv")
	if err != nil {
		return nil, err
	}
	demographics, err := read("demographics.csv")
	if err != nil {
		return nil, err
	}
	for _, check := range []struct {
		name string
		f    *frame.Frame
		cols []string
	}{
		{"letters.csv", letters, []string{"person_id", "job_id", "letter_text", "sentiment"}},
		{"jobs.csv", jobs, []string{"job_id", "sector"}},
		{"social.csv", social, []string{"person_id"}},
		{"demographics.csv", demographics, []string{"person_id", "sex"}},
	} {
		for _, col := range check.cols {
			if !check.f.HasColumn(col) {
				return nil, fmt.Errorf("datagen: %s is missing column %q", check.name, col)
			}
		}
	}
	return &HiringData{Letters: letters, Jobs: jobs, Social: social, Demographics: demographics}, nil
}

// SaveHiringCSV writes the scenario tables to dir in the LoadHiringCSV
// format, creating the directory when needed.
func SaveHiringCSV(h *HiringData, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("datagen: %w", err)
	}
	tables := map[string]*frame.Frame{
		"letters.csv":      h.Letters,
		"jobs.csv":         h.Jobs,
		"social.csv":       h.Social,
		"demographics.csv": h.Demographics,
	}
	for name, f := range tables {
		w, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("datagen: %w", err)
		}
		if err := f.WriteCSV(w); err != nil {
			w.Close()
			return fmt.Errorf("datagen: writing %s: %w", name, err)
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("datagen: %w", err)
		}
	}
	return nil
}
