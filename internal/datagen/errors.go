package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
)

// InjectLabelErrors returns a copy of the frame with the string label column
// flipped between its two distinct values on a random fraction of rows,
// plus the set of corrupted row indices. This mirrors the tutorial's
// nde.inject_labelerrors(train_df, fraction=0.1).
func InjectLabelErrors(f *frame.Frame, labelCol string, fraction float64, seed int64) (*frame.Frame, map[int]bool, error) {
	col, err := f.Column(labelCol)
	if err != nil {
		return nil, nil, err
	}
	if fraction < 0 || fraction > 1 {
		return nil, nil, fmt.Errorf("datagen: fraction %v outside [0,1]", fraction)
	}
	distinct := col.Unique()
	if len(distinct) != 2 {
		return nil, nil, fmt.Errorf("datagen: label flipping needs a binary column, %q has %d values", labelCol, len(distinct))
	}
	out := f.Clone()
	ocol := out.MustColumn(labelCol)
	r := rand.New(rand.NewSource(seed))
	k := int(float64(f.NumRows()) * fraction)
	corrupted := make(map[int]bool, k)
	for _, i := range r.Perm(f.NumRows())[:k] {
		cur := ocol.Value(i)
		var flipped frame.Value
		if cur.Equal(distinct[0]) {
			flipped = distinct[1]
		} else {
			flipped = distinct[0]
		}
		if err := ocol.Set(i, flipped); err != nil {
			return nil, nil, err
		}
		corrupted[i] = true
	}
	return out, corrupted, nil
}

// FlipDatasetLabels flips a fraction of binary 0/1 labels of a dataset and
// reports the corrupted indices.
func FlipDatasetLabels(d *ml.Dataset, fraction float64, seed int64) (*ml.Dataset, map[int]bool, error) {
	if fraction < 0 || fraction > 1 {
		return nil, nil, fmt.Errorf("datagen: fraction %v outside [0,1]", fraction)
	}
	out := d.Clone()
	r := rand.New(rand.NewSource(seed))
	k := int(float64(d.Len()) * fraction)
	corrupted := make(map[int]bool, k)
	for _, i := range r.Perm(d.Len())[:k] {
		out.Y[i] = 1 - out.Y[i]
		corrupted[i] = true
	}
	return out, corrupted, nil
}

// MissingMechanism mirrors uncertain.Missingness for frame-level injection.
type MissingMechanism int

const (
	// MissingMCAR selects rows uniformly at random.
	MissingMCAR MissingMechanism = iota
	// MissingMAR selects rows by the value of another column (high values
	// of the first numeric column lose the target).
	MissingMAR
	// MissingMNAR selects the rows with the largest target values.
	MissingMNAR
)

// InjectMissing nulls out a fraction of one numeric column under the chosen
// mechanism and reports the affected row indices.
func InjectMissing(f *frame.Frame, col string, fraction float64, mech MissingMechanism, seed int64) (*frame.Frame, []int, error) {
	target, err := f.Column(col)
	if err != nil {
		return nil, nil, err
	}
	if target.Kind() != frame.KindFloat && target.Kind() != frame.KindInt {
		return nil, nil, fmt.Errorf("datagen: missing-value injection needs a numeric column, %q is %s", col, target.Kind())
	}
	if fraction < 0 || fraction > 1 {
		return nil, nil, fmt.Errorf("datagen: fraction %v outside [0,1]", fraction)
	}
	n := f.NumRows()
	k := int(float64(n) * fraction)
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(n)
	switch mech {
	case MissingMAR:
		other := firstNumericColumn(f, col)
		if other != "" {
			oc := f.MustColumn(other)
			sortIdxByDesc(idx, func(i int) float64 {
				if oc.IsNull(i) {
					return -1e18
				}
				return oc.Float(i)
			})
		}
	case MissingMNAR:
		sortIdxByDesc(idx, func(i int) float64 {
			if target.IsNull(i) {
				return -1e18
			}
			return target.Float(i)
		})
	}
	affected := append([]int(nil), idx[:k]...)
	out := f.Clone()
	ocol := out.MustColumn(col)
	for _, i := range affected {
		ocol.SetNull(i)
	}
	return out, affected, nil
}

func firstNumericColumn(f *frame.Frame, except string) string {
	for _, name := range f.ColumnNames() {
		if name == except {
			continue
		}
		k := f.MustColumn(name).Kind()
		if k == frame.KindFloat || k == frame.KindInt {
			return name
		}
	}
	return ""
}

func sortIdxByDesc(idx []int, key func(int) float64) {
	keys := make([]float64, len(idx))
	for o, i := range idx {
		keys[o] = key(i)
	}
	order := make([]int, len(idx))
	for o := range order {
		order[o] = o
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
	sorted := make([]int, len(idx))
	for o, p := range order {
		sorted[o] = idx[p]
	}
	copy(idx, sorted)
}

// InjectOutliers multiplies a fraction of one numeric column by a large
// factor (alternating sign), simulating unit mistakes and sensor spikes.
func InjectOutliers(f *frame.Frame, col string, fraction, factor float64, seed int64) (*frame.Frame, []int, error) {
	target, err := f.Column(col)
	if err != nil {
		return nil, nil, err
	}
	if target.Kind() != frame.KindFloat {
		return nil, nil, fmt.Errorf("datagen: outlier injection needs a float column, %q is %s", col, target.Kind())
	}
	if fraction < 0 || fraction > 1 {
		return nil, nil, fmt.Errorf("datagen: fraction %v outside [0,1]", fraction)
	}
	n := f.NumRows()
	k := int(float64(n) * fraction)
	r := rand.New(rand.NewSource(seed))
	affected := append([]int(nil), r.Perm(n)[:k]...)
	out := f.Clone()
	ocol := out.MustColumn(col)
	for o, i := range affected {
		if ocol.IsNull(i) {
			continue
		}
		sign := 1.0
		if o%2 == 1 {
			sign = -1
		}
		if err := ocol.Set(i, frame.Float(ocol.Float(i)*factor*sign)); err != nil {
			return nil, nil, err
		}
	}
	return out, affected, nil
}

// InjectDuplicates appends near-duplicates of a random fraction of rows:
// each duplicate copies a source row with numeric columns jittered by a
// relative noise factor (string/bool/int columns copied verbatim). It
// returns the extended frame and, for each appended row, the index of the
// original it duplicates. Duplicates inflate the apparent support of their
// source rows — a classic integration error that leaks across train/test
// splits and skews importance scores.
func InjectDuplicates(f *frame.Frame, fraction, jitter float64, seed int64) (*frame.Frame, []int, error) {
	if fraction < 0 || fraction > 1 {
		return nil, nil, fmt.Errorf("datagen: fraction %v outside [0,1]", fraction)
	}
	n := f.NumRows()
	k := int(float64(n) * fraction)
	r := rand.New(rand.NewSource(seed))
	originals := append([]int(nil), r.Perm(n)[:k]...)
	dup := f.Take(originals)
	// jitter float columns of the duplicates
	for _, name := range dup.ColumnNames() {
		col := dup.MustColumn(name)
		if col.Kind() != frame.KindFloat {
			continue
		}
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				continue
			}
			v := col.Float(i) * (1 + jitter*(2*r.Float64()-1))
			if err := col.Set(i, frame.Float(v)); err != nil {
				return nil, nil, err
			}
		}
	}
	out, _, _, err := frame.Concat(f, dup)
	if err != nil {
		return nil, nil, err
	}
	return out, originals, nil
}

// BiasedSample returns a subsample of the frame where rows whose column
// equals value are kept with probability keepProb and all other rows are
// kept unconditionally — a programmable selection bias.
func BiasedSample(f *frame.Frame, col string, value frame.Value, keepProb float64, seed int64) (*frame.Frame, []int, error) {
	target, err := f.Column(col)
	if err != nil {
		return nil, nil, err
	}
	if keepProb < 0 || keepProb > 1 {
		return nil, nil, fmt.Errorf("datagen: keepProb %v outside [0,1]", keepProb)
	}
	r := rand.New(rand.NewSource(seed))
	kept, idx := f.Filter(func(row frame.Row) bool {
		if target.Value(row.Index()).Equal(value) {
			return r.Float64() < keepProb
		}
		return true
	})
	return kept, idx, nil
}

// AppendOOD appends k out-of-distribution rows to a dataset by sampling
// features far outside the observed range (scale times the per-feature
// spread) with random labels. It returns the extended dataset and the
// indices of the appended rows.
func AppendOOD(d *ml.Dataset, k int, scale float64, seed int64) (*ml.Dataset, []int) {
	r := rand.New(rand.NewSource(seed))
	n, dim := d.Len(), d.Dim()
	if n == 0 || k <= 0 {
		return d.Clone(), nil
	}
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := 0; j < dim; j++ {
		lo[j], hi[j] = d.X.At(0, j), d.X.At(0, j)
		for i := 1; i < n; i++ {
			v := d.X.At(i, j)
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	grown := linalg.NewMatrix(n+k, dim)
	copy(grown.Data[:n*dim], d.X.Data)
	y := append([]int(nil), d.Y...)
	for o := 0; o < k; o++ {
		row := grown.Row(n + o)
		for j := 0; j < dim; j++ {
			spread := hi[j] - lo[j]
			if spread == 0 {
				spread = 1
			}
			sign := 1.0
			if r.Intn(2) == 0 {
				sign = -1
			}
			row[j] = hi[j] + sign*scale*spread*(0.5+r.Float64())
		}
		y = append(y, r.Intn(max(2, d.NumClasses())))
	}
	res, _ := ml.NewDataset(grown, y)
	appended := make([]int, k)
	for o := range appended {
		appended[o] = n + o
	}
	return res, appended
}
