// Package datagen generates the synthetic data used throughout the library:
// the tutorial's hands-on hiring scenario — recommendation letters with a
// lexical sentiment signal, plus demographic and social-media side tables
// keyed to the applicants — and a family of data-error injectors (label
// flips, missing values under MCAR/MAR/MNAR, outliers, sampling bias,
// out-of-distribution rows).
//
// The tutorial itself uses synthetically generated data (its ethics section
// says so explicitly), so this package regenerates an equivalent
// distribution from seeded RNGs: every dataset and every injected error is
// bit-for-bit reproducible.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"nde/internal/frame"
)

// positive/negative phrase inventories for the letter generator. Sentiment
// is carried by which inventory dominates a letter.
var (
	positivePhrases = []string{
		"exceptional analytical skills", "a pleasure to supervise",
		"consistently exceeded expectations", "remarkable attention to detail",
		"an outstanding team player", "strong leadership qualities",
		"delivered excellent results", "highly creative problem solver",
		"impressive work ethic", "earned the respect of colleagues",
		"truly dependable under pressure", "great communication skills",
	}
	negativePhrases = []string{
		"struggled to meet deadlines", "raised serious concerns",
		"undermined team morale", "required constant supervision",
		"failed to follow instructions", "often arrived unprepared",
		"showed little initiative", "poor communication with peers",
		"inconsistent quality of work", "resisted constructive feedback",
		"missed several key milestones", "lacked professional maturity",
	}
	neutralPhrases = []string{
		"worked in our department", "was assigned to several projects",
		"participated in weekly meetings", "completed the standard training",
		"reported to the project lead", "collaborated with other teams",
	}
	sectors = []string{"healthcare", "finance", "retail", "education", "tech"}
	degrees = []string{"bsc", "msc", "phd", "mba"}
)

// HiringData bundles the scenario tables. Letters is the main table with
// columns (person_id, job_id, letter_text, employer_rating, sentiment);
// Jobs has (job_id, sector, seniority); Social has (person_id, twitter,
// followers); Demographics has (person_id, sex, age, degree).
type HiringData struct {
	Letters      *frame.Frame
	Jobs         *frame.Frame
	Social       *frame.Frame
	Demographics *frame.Frame
}

// Config controls scenario generation.
type Config struct {
	// N is the number of applicants/letters (default 300).
	N int
	// Seed drives all randomness.
	Seed int64
	// PositiveFraction of letters with positive sentiment (default 0.5).
	PositiveFraction float64
	// PhrasesPerLetter controls letter length (default 4).
	PhrasesPerLetter int
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 300
	}
	if c.PositiveFraction <= 0 || c.PositiveFraction >= 1 {
		c.PositiveFraction = 0.5
	}
	if c.PhrasesPerLetter <= 0 {
		c.PhrasesPerLetter = 4
	}
	return c
}

// Hiring generates the full scenario.
func Hiring(cfg Config) *HiringData {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N

	nJobs := max(3, n/10)
	jobIDs := make([]int64, nJobs)
	jobSectors := make([]string, nJobs)
	jobSeniority := make([]int64, nJobs)
	for j := 0; j < nJobs; j++ {
		jobIDs[j] = int64(100 + j)
		jobSectors[j] = sectors[r.Intn(len(sectors))]
		jobSeniority[j] = int64(1 + r.Intn(5))
	}
	jobs := frame.MustNew(
		frame.NewIntSeries("job_id", jobIDs, nil),
		frame.NewStringSeries("sector", jobSectors, nil),
		frame.NewIntSeries("seniority", jobSeniority, nil),
	)

	personIDs := make([]int64, n)
	letterJob := make([]int64, n)
	letterText := make([]string, n)
	employerRating := make([]float64, n)
	sentiment := make([]string, n)
	for i := 0; i < n; i++ {
		personIDs[i] = int64(1000 + i)
		letterJob[i] = jobIDs[r.Intn(nJobs)]
		positive := r.Float64() < cfg.PositiveFraction
		letterText[i] = makeLetter(r, positive, cfg.PhrasesPerLetter)
		if positive {
			sentiment[i] = "positive"
			employerRating[i] = 3.5 + 1.5*r.Float64()
		} else {
			sentiment[i] = "negative"
			employerRating[i] = 1 + 2*r.Float64()
		}
	}
	letters := frame.MustNew(
		frame.NewIntSeries("person_id", personIDs, nil),
		frame.NewIntSeries("job_id", letterJob, nil),
		frame.NewStringSeries("letter_text", letterText, nil),
		frame.NewFloatSeries("employer_rating", employerRating, nil),
		frame.NewStringSeries("sentiment", sentiment, nil),
	)

	// social side table covers ~70% of applicants
	var socialIDs []int64
	var twitter []string
	var twitterValid []bool
	var followers []int64
	for i := 0; i < n; i++ {
		if r.Float64() < 0.7 {
			socialIDs = append(socialIDs, personIDs[i])
			if r.Float64() < 0.8 {
				twitter = append(twitter, fmt.Sprintf("@applicant%d", personIDs[i]))
				twitterValid = append(twitterValid, true)
			} else {
				twitter = append(twitter, "")
				twitterValid = append(twitterValid, false)
			}
			followers = append(followers, int64(r.Intn(5000)))
		}
	}
	social := frame.MustNew(
		frame.NewIntSeries("person_id", socialIDs, nil),
		frame.NewStringSeries("twitter", twitter, twitterValid),
		frame.NewIntSeries("followers", followers, nil),
	)

	sexes := make([]string, n)
	ages := make([]int64, n)
	degs := make([]string, n)
	for i := 0; i < n; i++ {
		sexes[i] = []string{"f", "m"}[r.Intn(2)]
		ages[i] = int64(22 + r.Intn(40))
		degs[i] = degrees[r.Intn(len(degrees))]
	}
	demographics := frame.MustNew(
		frame.NewIntSeries("person_id", personIDs, nil),
		frame.NewStringSeries("sex", sexes, nil),
		frame.NewIntSeries("age", ages, nil),
		frame.NewStringSeries("degree", degs, nil),
	)

	return &HiringData{Letters: letters, Jobs: jobs, Social: social, Demographics: demographics}
}

func makeLetter(r *rand.Rand, positive bool, phrases int) string {
	var pool, opposite []string
	if positive {
		pool, opposite = positivePhrases, negativePhrases
	} else {
		pool, opposite = negativePhrases, positivePhrases
	}
	parts := make([]string, 0, phrases)
	for p := 0; p < phrases; p++ {
		roll := r.Float64()
		switch {
		case roll < 0.65:
			parts = append(parts, pool[r.Intn(len(pool))])
		case roll < 0.8:
			parts = append(parts, opposite[r.Intn(len(opposite))])
		default:
			parts = append(parts, neutralPhrases[r.Intn(len(neutralPhrases))])
		}
	}
	return "The candidate " + strings.Join(parts, ", and ") + "."
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
