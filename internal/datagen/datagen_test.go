package datagen

import (
	"math"
	"strings"
	"testing"

	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
)

func TestHiringShapesAndDeterminism(t *testing.T) {
	h := Hiring(Config{N: 100, Seed: 1})
	if h.Letters.NumRows() != 100 {
		t.Fatalf("letters rows = %d", h.Letters.NumRows())
	}
	for _, want := range []string{"person_id", "job_id", "letter_text", "employer_rating", "sentiment"} {
		if !h.Letters.HasColumn(want) {
			t.Errorf("letters missing column %q", want)
		}
	}
	if h.Jobs.NumRows() < 3 || !h.Jobs.HasColumn("sector") {
		t.Error("jobs table wrong")
	}
	if h.Demographics.NumRows() != 100 {
		t.Error("demographics rows wrong")
	}
	if h.Social.NumRows() == 0 || h.Social.NumRows() >= 100 {
		t.Errorf("social rows = %d, want partial coverage", h.Social.NumRows())
	}
	// determinism
	h2 := Hiring(Config{N: 100, Seed: 1})
	if !h.Letters.Equal(h2.Letters) || !h.Social.Equal(h2.Social) {
		t.Error("generation not deterministic")
	}
	h3 := Hiring(Config{N: 100, Seed: 2})
	if h.Letters.Equal(h3.Letters) {
		t.Error("different seeds should differ")
	}
}

func TestHiringSentimentSignal(t *testing.T) {
	h := Hiring(Config{N: 200, Seed: 3})
	letters := h.Letters
	// positive letters should contain more positive phrases than negative
	posHits, negHits := 0, 0
	for i := 0; i < letters.NumRows(); i++ {
		text := letters.MustColumn("letter_text").Str(i)
		sentiment := letters.MustColumn("sentiment").Str(i)
		pos := 0
		for _, p := range positivePhrases {
			if strings.Contains(text, p) {
				pos++
			}
		}
		neg := 0
		for _, p := range negativePhrases {
			if strings.Contains(text, p) {
				neg++
			}
		}
		if sentiment == "positive" && pos > neg {
			posHits++
		}
		if sentiment == "negative" && neg > pos {
			negHits++
		}
	}
	if posHits < 60 || negHits < 60 {
		t.Errorf("weak lexical signal: pos %d, neg %d", posHits, negHits)
	}
}

func TestHiringRatingsSeparateByClass(t *testing.T) {
	h := Hiring(Config{N: 300, Seed: 4})
	var posSum, negSum float64
	var posN, negN int
	ratings := h.Letters.MustColumn("employer_rating")
	sent := h.Letters.MustColumn("sentiment")
	for i := 0; i < h.Letters.NumRows(); i++ {
		if sent.Str(i) == "positive" {
			posSum += ratings.Float(i)
			posN++
		} else {
			negSum += ratings.Float(i)
			negN++
		}
	}
	if posSum/float64(posN) <= negSum/float64(negN) {
		t.Error("positive letters should have higher employer ratings")
	}
}

func TestInjectLabelErrors(t *testing.T) {
	h := Hiring(Config{N: 100, Seed: 5})
	dirty, corrupted, err := InjectLabelErrors(h.Letters, "sentiment", 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupted) != 10 {
		t.Fatalf("corrupted = %d", len(corrupted))
	}
	flips := 0
	for i := 0; i < 100; i++ {
		orig := h.Letters.MustColumn("sentiment").Str(i)
		now := dirty.MustColumn("sentiment").Str(i)
		if orig != now {
			flips++
			if !corrupted[i] {
				t.Errorf("row %d flipped but not reported", i)
			}
		} else if corrupted[i] {
			t.Errorf("row %d reported but not flipped", i)
		}
	}
	if flips != 10 {
		t.Errorf("flips = %d", flips)
	}
	// original untouched
	if h.Letters.MustColumn("sentiment").Str(0) == "" {
		t.Error("unexpected")
	}
	if _, _, err := InjectLabelErrors(h.Letters, "letter_text", 0.1, 1); err == nil {
		t.Error("expected error for non-binary column")
	}
	if _, _, err := InjectLabelErrors(h.Letters, "sentiment", 2, 1); err == nil {
		t.Error("expected error for bad fraction")
	}
}

func TestFlipDatasetLabels(t *testing.T) {
	x := linalg.NewMatrix(10, 1)
	y := make([]int, 10)
	for i := range y {
		y[i] = i % 2
	}
	d, _ := ml.NewDataset(x, y)
	dirty, corrupted, err := FlipDatasetLabels(d, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupted) != 3 {
		t.Fatalf("corrupted = %d", len(corrupted))
	}
	for i := range y {
		if (dirty.Y[i] != d.Y[i]) != corrupted[i] {
			t.Errorf("row %d flip/report mismatch", i)
		}
	}
}

func TestInjectMissingMechanisms(t *testing.T) {
	h := Hiring(Config{N: 100, Seed: 8})
	for _, mech := range []MissingMechanism{MissingMCAR, MissingMAR, MissingMNAR} {
		out, affected, err := InjectMissing(h.Letters, "employer_rating", 0.2, mech, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(affected) != 20 {
			t.Errorf("mech %d: affected = %d", mech, len(affected))
		}
		if out.MustColumn("employer_rating").NullCount() != 20 {
			t.Errorf("mech %d: nulls = %d", mech, out.MustColumn("employer_rating").NullCount())
		}
	}
	// MNAR removes the largest ratings
	out, affected, err := InjectMissing(h.Letters, "employer_rating", 0.1, MissingMNAR, 10)
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	minAffected := math.Inf(1)
	orig := h.Letters.MustColumn("employer_rating")
	for _, i := range affected {
		minAffected = math.Min(minAffected, orig.Float(i))
	}
	below := 0
	for i := 0; i < 100; i++ {
		if orig.Float(i) < minAffected {
			below++
		}
	}
	if below < 80 {
		t.Errorf("MNAR did not target the top values (%d below cutoff)", below)
	}
	if _, _, err := InjectMissing(h.Letters, "sentiment", 0.1, MissingMCAR, 1); err == nil {
		t.Error("expected error for non-numeric column")
	}
}

func TestInjectOutliers(t *testing.T) {
	h := Hiring(Config{N: 50, Seed: 11})
	out, affected, err := InjectOutliers(h.Letters, "employer_rating", 0.1, 100, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 5 {
		t.Fatalf("affected = %d", len(affected))
	}
	orig := h.Letters.MustColumn("employer_rating")
	now := out.MustColumn("employer_rating")
	for _, i := range affected {
		if math.Abs(now.Float(i)) < math.Abs(orig.Float(i))*50 {
			t.Errorf("row %d not an outlier: %v -> %v", i, orig.Float(i), now.Float(i))
		}
	}
	if _, _, err := InjectOutliers(h.Letters, "person_id", 0.1, 10, 1); err == nil {
		t.Error("expected error for int column")
	}
}

func TestBiasedSample(t *testing.T) {
	h := Hiring(Config{N: 200, Seed: 13})
	before := h.Demographics.MustColumn("sex")
	f := 0
	for i := 0; i < before.Len(); i++ {
		if before.Str(i) == "f" {
			f++
		}
	}
	sampled, idx, err := BiasedSample(h.Demographics, "sex", frame.Str("f"), 0.3, 14)
	if err != nil {
		t.Fatal(err)
	}
	after := sampled.MustColumn("sex")
	fAfter := 0
	for i := 0; i < after.Len(); i++ {
		if after.Str(i) == "f" {
			fAfter++
		}
	}
	if fAfter >= f {
		t.Errorf("bias did not reduce group: %d -> %d", f, fAfter)
	}
	if sampled.NumRows() != len(idx) {
		t.Error("lineage length mismatch")
	}
	// males all kept
	if sampled.NumRows()-fAfter != before.Len()-f {
		t.Error("non-target rows should be kept unconditionally")
	}
}

func TestAppendOOD(t *testing.T) {
	x := linalg.NewMatrix(20, 2)
	y := make([]int, 20)
	for i := 0; i < 20; i++ {
		x.Set(i, 0, float64(i%5))
		x.Set(i, 1, float64(i%3))
		y[i] = i % 2
	}
	d, _ := ml.NewDataset(x, y)
	out, appended := AppendOOD(d, 4, 3, 15)
	if out.Len() != 24 || len(appended) != 4 {
		t.Fatalf("out len = %d, appended = %d", out.Len(), len(appended))
	}
	// appended rows are far outside [0,4] x [0,2]
	for _, i := range appended {
		v := out.X.At(i, 0)
		if v >= -4 && v <= 8 {
			t.Errorf("OOD value %v suspiciously in-range", v)
		}
	}
	// original rows intact
	if out.X.At(0, 0) != d.X.At(0, 0) || out.Y[5] != d.Y[5] {
		t.Error("original rows modified")
	}
}

func TestInjectDuplicates(t *testing.T) {
	h := Hiring(Config{N: 60, Seed: 21})
	out, originals, err := InjectDuplicates(h.Letters, 0.1, 0.05, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(originals) != 6 {
		t.Fatalf("originals = %d", len(originals))
	}
	if out.NumRows() != 66 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	// duplicates share non-float columns with their originals and jitter
	// the float ones slightly
	for o, src := range originals {
		dupRow := 60 + o
		if out.MustColumn("person_id").Int(dupRow) != h.Letters.MustColumn("person_id").Int(src) {
			t.Errorf("dup %d person_id mismatch", o)
		}
		orig := h.Letters.MustColumn("employer_rating").Float(src)
		dup := out.MustColumn("employer_rating").Float(dupRow)
		if dup == orig {
			t.Errorf("dup %d rating not jittered", o)
		}
		if math.Abs(dup-orig)/orig > 0.06 {
			t.Errorf("dup %d jitter too large: %v vs %v", o, dup, orig)
		}
	}
	if _, _, err := InjectDuplicates(h.Letters, 2, 0.1, 1); err == nil {
		t.Error("expected error for bad fraction")
	}
}

func TestSaveLoadHiringCSVRoundTrip(t *testing.T) {
	h := Hiring(Config{N: 40, Seed: 31})
	dir := t.TempDir()
	if err := SaveHiringCSV(h, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHiringCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Letters.NumRows() != 40 || back.Jobs.NumRows() != h.Jobs.NumRows() {
		t.Errorf("round-trip shapes wrong")
	}
	// key columns survive with values intact
	if back.Letters.MustColumn("person_id").Int(0) != h.Letters.MustColumn("person_id").Int(0) {
		t.Error("person_id mismatch after round trip")
	}
	if back.Letters.MustColumn("sentiment").Str(5) != h.Letters.MustColumn("sentiment").Str(5) {
		t.Error("sentiment mismatch after round trip")
	}
	// nulls in the social twitter column survive
	origNulls := h.Social.MustColumn("twitter").NullCount()
	backNulls := back.Social.MustColumn("twitter").NullCount()
	if origNulls != backNulls {
		t.Errorf("twitter nulls %d -> %d after round trip", origNulls, backNulls)
	}
	if _, err := LoadHiringCSV(t.TempDir()); err == nil {
		t.Error("expected error for empty directory")
	}
}

func TestAppendOODDegenerate(t *testing.T) {
	empty, _ := ml.NewDataset(linalg.NewMatrix(0, 2), nil)
	out, appended := AppendOOD(empty, 3, 2, 1)
	if out.Len() != 0 || appended != nil {
		t.Error("empty dataset should pass through unchanged")
	}
	d := Hiring(Config{N: 5, Seed: 1})
	_ = d
	small, _ := ml.NewDataset(linalg.FromRows([][]float64{{1, 2}}), []int{0})
	out, appended = AppendOOD(small, 0, 2, 1)
	if out.Len() != 1 || appended != nil {
		t.Error("k=0 should pass through unchanged")
	}
}
