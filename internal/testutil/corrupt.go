// Package testutil builds deliberately corrupted inputs for the
// fault-injection suite: NaN-poisoned feature columns, single-class label
// sets, empty tables, and shape-mismatched datasets. Every helper returns a
// fresh value and never mutates its argument, so a clean baseline and its
// corrupted twin can be compared side by side.
package testutil

import (
	"math"

	"nde/internal/frame"
	"nde/internal/ml"
)

// PoisonColumn returns a copy of f with every value of the named float
// column replaced by v (typically math.NaN() or math.Inf(1)).
func PoisonColumn(f *frame.Frame, col string, v float64) (*frame.Frame, error) {
	vals := make([]float64, f.NumRows())
	for i := range vals {
		vals[i] = v
	}
	return f.WithColumn(frame.NewFloatSeries(col, vals, nil))
}

// SingleClass returns a copy of f with every value of the named string
// column set to label, collapsing the label set to one class.
func SingleClass(f *frame.Frame, col, label string) (*frame.Frame, error) {
	vals := make([]string, f.NumRows())
	for i := range vals {
		vals[i] = label
	}
	return f.WithColumn(frame.NewStringSeries(col, vals, nil))
}

// EmptyLike returns a zero-row frame with the same columns as f.
func EmptyLike(f *frame.Frame) *frame.Frame { return f.Take(nil) }

// PoisonDataset returns a deep copy of d with cell (row, col) of the
// feature matrix set to v. It bypasses ml.NewDataset validation on purpose:
// the point is to smuggle a non-finite value past construction and check
// that downstream entry points still catch it.
func PoisonDataset(d *ml.Dataset, row, col int, v float64) *ml.Dataset {
	out := d.Clone()
	out.X.Set(row, col, v)
	return out
}

// SingleClassDataset returns a deep copy of d with every label set to the
// first label, again bypassing construction-time validation.
func SingleClassDataset(d *ml.Dataset) *ml.Dataset {
	out := d.Clone()
	for i := range out.Y {
		out.Y[i] = out.Y[0]
	}
	return out
}

// NaN is a shorthand so corruption tables read as data.
func NaN() float64 { return math.NaN() }

// Inf returns +Inf.
func Inf() float64 { return math.Inf(1) }
