//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Timing-sensitive assertions can consult it: instrumentation
// multiplies memory-access cost unevenly across code paths, so wall-clock
// orderings measured under -race do not reflect production builds.
const RaceEnabled = true
