package store

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nde/internal/obs"
)

// counters samples the store's obs counters.
func counters(t *testing.T, name string) (hits, misses, waits, evictions int64) {
	t.Helper()
	r := obs.Default()
	return r.Counter(name + "_hits_total").Value(),
		r.Counter(name + "_misses_total").Value(),
		r.Counter(name + "_waits_total").Value(),
		r.Counter(name + "_evictions_total").Value()
}

// waitInflight spins (yielding) until at least n builds are in flight.
func waitInflight[K comparable, V any](t *testing.T, s *Store[K, V], n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d in-flight builds", n)
		}
		runtime.Gosched()
	}
}

func withObs(t *testing.T) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
}

// Concurrent callers for the same key must coalesce into one build; later
// arrivals block and are counted as waits, and everyone gets the same value.
func TestSingleflightSameKey(t *testing.T) {
	withObs(t)
	s := New[string, int]("st_sf", 4)

	var builds atomic.Int64
	release := make(chan struct{})
	const callers = 8
	got := make([]int, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			v, err := s.GetOrBuild("k", func() (int, error) {
				builds.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			got[c] = v
		}(c)
	}
	// let every caller reach the store before the build can finish
	waitInflight(t, s, 1)
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	for c, v := range got {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", c, v)
		}
	}
	hits, misses, waits, _ := counters(t, "st_sf")
	if misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if hits != callers-1 {
		t.Errorf("hits = %d, want %d", hits, callers-1)
	}
	if waits == 0 {
		t.Error("waits = 0, want > 0 (callers should have blocked on the flight)")
	}
}

// REGRESSION (the PR 4 FIFO bug): an in-flight entry must never be evicted.
// With capacity 1, churn from other keys while key A's build is blocked
// must not detach A; a late same-key caller joins the original flight
// instead of starting a duplicate build.
func TestInFlightEntrySurvivesChurn(t *testing.T) {
	withObs(t)
	s := New[string, int]("st_churn", 1)

	var buildsA atomic.Int64
	releaseA := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		v, err := s.GetOrBuild("A", func() (int, error) {
			buildsA.Add(1)
			<-releaseA
			return 1, nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	waitInflight(t, s, 1)

	// churn: ready builds for other keys, far past the capacity
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("other-%d", i)
		if _, err := s.GetOrBuild(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}

	// a same-key caller during churn must join A's flight, not rebuild
	joined := make(chan int, 1)
	go func() {
		v, err := s.GetOrBuild("A", func() (int, error) {
			buildsA.Add(1)
			return -1, nil
		})
		if err != nil {
			t.Error(err)
		}
		joined <- v
	}()
	_, _, _, evictionsBefore := counters(t, "st_churn")
	close(releaseA)
	if v := <-done; v != 1 {
		t.Errorf("first caller got %d, want 1", v)
	}
	if v := <-joined; v != 1 {
		t.Errorf("joining caller got %d, want 1 from the shared flight", v)
	}
	if n := buildsA.Load(); n != 1 {
		t.Errorf("key A built %d times, want 1 (in-flight entry was evicted)", n)
	}
	if evictionsBefore == 0 {
		t.Error("churn produced no evictions; the test did not stress the bound")
	}
	// once A's build completed the store must trim back to its capacity
	if n := s.Len(); n != 1 {
		t.Errorf("len = %d after trim, want capacity 1", n)
	}
}

// While every entry is in flight the store may exceed its capacity, but
// only by the number of in-flight builds, and it trims as they complete.
func TestOverflowBoundedByInflight(t *testing.T) {
	s := New[int, int]("st_over", 2)
	const flights = 5
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < flights; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = s.GetOrBuild(i, func() (int, error) {
				<-release
				return i, nil
			})
		}(i)
	}
	waitInflight(t, s, flights)
	if n := s.Len(); n != flights {
		t.Errorf("len = %d with %d in-flight builds, want %d", n, flights, flights)
	}
	close(release)
	wg.Wait()
	if n := s.Len(); n != 2 {
		t.Errorf("len = %d after builds completed, want capacity 2", n)
	}
	if n := s.InFlight(); n != 0 {
		t.Errorf("inflight = %d, want 0", n)
	}
}

// Eviction is least-recently-USED, not insertion order: touching an old
// entry keeps it alive past younger untouched ones.
func TestLRURecency(t *testing.T) {
	s := New[string, int]("st_lru", 2)
	build := func(v int) func() (int, error) {
		return func() (int, error) { return v, nil }
	}
	if _, err := s.GetOrBuild("a", build(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrBuild("b", build(2)); err != nil {
		t.Fatal(err)
	}
	// touch a so b becomes the LRU victim
	if _, err := s.GetOrBuild("a", build(-1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrBuild("c", build(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := s.Get("b"); ok {
		t.Error("least recently used entry b survived eviction")
	}
}

// A failed build is delivered to every waiter and never cached; the next
// caller retries and can succeed.
func TestFailedBuildNotCached(t *testing.T) {
	s := New[string, int]("st_fail", 4)
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = s.GetOrBuild("k", func() (int, error) {
			<-release
			return 0, boom
		})
	}()
	waitInflight(t, s, 1)
	for c := 1; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = s.GetOrBuild("k", func() (int, error) { return 0, boom })
		}(c)
	}
	close(release)
	wg.Wait()
	for c, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d: err = %v, want boom", c, err)
		}
	}
	if n := s.Len(); n != 0 {
		t.Errorf("len = %d after failed build, want 0 (errors are not cached)", n)
	}
	v, err := s.GetOrBuild("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("retry after failure: v=%d err=%v, want 7, nil", v, err)
	}
}

// Shrinking the capacity evicts ready entries immediately and clamps at 1.
func TestSetCapacity(t *testing.T) {
	withObs(t)
	s := New[int, int]("st_cap", 4)
	for i := 0; i < 4; i++ {
		if _, err := s.GetOrBuild(i, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if prev := s.SetCapacity(2); prev != 4 {
		t.Errorf("previous capacity = %d, want 4", prev)
	}
	if n := s.Len(); n != 2 {
		t.Errorf("len = %d after shrink, want 2", n)
	}
	_, _, _, evictions := counters(t, "st_cap")
	if evictions != 2 {
		t.Errorf("evictions = %d after shrink, want 2", evictions)
	}
	if s.SetCapacity(0); s.Capacity() != 1 {
		t.Errorf("capacity = %d, want clamp to 1", s.Capacity())
	}
}

// Reset drops everything but in-flight waiters still get their artifact.
func TestResetDuringFlight(t *testing.T) {
	s := New[string, int]("st_reset", 4)
	release := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		v, err := s.GetOrBuild("k", func() (int, error) {
			<-release
			return 9, nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	waitInflight(t, s, 1)
	s.Reset()
	close(release)
	if v := <-done; v != 9 {
		t.Errorf("waiter got %d across Reset, want 9", v)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("entry survived Reset")
	}
}

// The recency list's backing array must not retain evicted keys (the
// copy-down discipline): after heavy churn its capacity stays near the
// bound instead of growing with every insertion.
func TestOrderNoLeak(t *testing.T) {
	s := New[int, int]("st_leak", 4)
	for i := 0; i < 64; i++ {
		if _, err := s.GetOrBuild(i, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) != 4 {
		t.Fatalf("order len = %d, want 4", len(s.order))
	}
	if cap(s.order) > 8 {
		t.Errorf("order cap = %d after churn: evicted keys are being retained", cap(s.order))
	}
}

// Get never blocks on an in-flight entry.
func TestGetNonBlocking(t *testing.T) {
	s := New[string, int]("st_get", 4)
	release := make(chan struct{})
	go s.GetOrBuild("k", func() (int, error) {
		<-release
		return 1, nil
	})
	waitInflight(t, s, 1)
	if _, ok := s.Get("k"); ok {
		t.Error("Get returned an in-flight entry as ready")
	}
	close(release)
}
