// Package store is a content-addressed artifact cache with singleflight
// builds: fingerprint key -> built artifact (a neighbor index, a featurized
// table, a score vector), built at most once no matter how many concurrent
// callers ask for it. It generalizes the singleflight neighbor-index cache
// that importance grew in PR 4 into a reusable component the serving layer
// can instantiate per artifact kind.
//
// Concurrency contract (the PR 4 contract, kept): the store mutex guards
// only the entry map and the recency list; builds run outside it, gated per
// key by a ready channel. Concurrent callers for the SAME key share one
// build — later arrivals block on the channel and are counted as waits —
// while callers for DIFFERENT keys build in parallel. Failed builds are
// never cached: the error is delivered to every waiter of that flight and
// the key is removed so a later call can retry.
//
// Eviction is LRU over READY entries only. An in-flight entry is never
// evicted: evicting it would detach the key from the running build, so a
// concurrent same-key caller would silently start a duplicate build of the
// same artifact — the exact singleflight violation the old FIFO cache had.
// When every entry is in flight the store temporarily exceeds its capacity
// (bounded by capacity + in-flight builds) and trims back to the bound as
// builds complete.
//
// Metrics (all under the store's name prefix, no-op while obs is off):
//
//	<name>_hits_total       ready entry served (possibly after a wait)
//	<name>_misses_total     build started
//	<name>_waits_total      caller blocked on another caller's build
//	<name>_evictions_total  LRU eviction (bound or capacity shrink)
//	<name>_puts_total       pre-built artifact inserted via Put
//	<name>_entries          gauge: current entry count
//	<name>_inflight         gauge: builds currently running
package store

import (
	"sync"

	"nde/internal/obs"
)

// entry is one singleflight slot: ready is closed when the build finishes,
// after which val/err are immutable.
type entry[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

func (e *entry[V]) isReady() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Store is a bounded content-addressed artifact cache. The zero value is
// not usable; use New. Safe for concurrent use.
type Store[K comparable, V any] struct {
	name string

	mu       sync.Mutex
	capacity int
	entries  map[K]*entry[V]
	order    []K // recency order: order[0] is least recently used
	inflight int
}

// New creates a store that keeps at most capacity ready artifacts
// (minimum 1) and exports its metrics under the given name prefix, e.g.
// name "importance_neighbor_index" yields
// importance_neighbor_index_hits_total.
func New[K comparable, V any](name string, capacity int) *Store[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Store[K, V]{
		name:     name,
		capacity: capacity,
		entries:  map[K]*entry[V]{},
	}
}

// GetOrBuild returns the artifact for key, building it with build on a
// miss. Concurrent callers for the same key share one build; the builder's
// error (if any) is delivered to every caller of that flight and nothing is
// cached. build runs without the store lock held and must not call back
// into the same store with the same key.
func (s *Store[K, V]) GetOrBuild(key K, build func() (V, error)) (V, error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.touchLocked(key)
		s.mu.Unlock()
		if !e.isReady() {
			obs.Inc(s.name + "_waits_total")
			<-e.ready
		}
		if e.err != nil {
			var zero V
			return zero, e.err
		}
		obs.Inc(s.name + "_hits_total")
		return e.val, nil
	}
	obs.Inc(s.name + "_misses_total")
	e := &entry[V]{ready: make(chan struct{})}
	// Reserve the slot before building so same-key callers arriving during
	// the build join this flight instead of starting their own.
	s.entries[key] = e
	s.order = append(s.order, key)
	s.inflight++
	s.trimLocked()
	s.gaugesLocked()
	s.mu.Unlock()

	val, err := build()
	e.val, e.err = val, err
	close(e.ready)

	s.mu.Lock()
	s.inflight--
	if err != nil {
		// Drop the failed flight (unless Reset already replaced the map or a
		// same-key rebuild superseded it) so the next caller retries instead
		// of being served a cached error.
		if s.entries[key] == e {
			s.removeLocked(key)
		}
	} else {
		// The entry just became ready; if builds overflowed the bound while
		// nothing was evictable, trim back down now.
		s.trimLocked()
	}
	s.gaugesLocked()
	s.mu.Unlock()
	if err != nil {
		var zero V
		return zero, err
	}
	return val, nil
}

// Put inserts an already-built artifact at the most-recently-used end,
// reporting whether it was stored. A key that is already present — ready
// OR in flight — is left untouched (first build wins, preserving the
// singleflight invariant that a key's value never changes once published);
// the existing entry is only refreshed in recency. Used by the delta
// derivation path, where a child artifact is produced as a by-product of
// its parent rather than by a flight of its own.
//
// Metric: <name>_puts_total counts successful inserts.
func (s *Store[K, V]) Put(key K, val V) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		s.touchLocked(key)
		return false
	}
	e := &entry[V]{ready: make(chan struct{}), val: val}
	close(e.ready)
	s.entries[key] = e
	s.order = append(s.order, key)
	obs.Inc(s.name + "_puts_total")
	s.trimLocked()
	s.gaugesLocked()
	return true
}

// Get returns the ready artifact for key without building. In-flight
// entries report !ok rather than blocking.
func (s *Store[K, V]) Get(key K) (V, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && e.isReady() && e.err == nil {
		s.touchLocked(key)
		s.mu.Unlock()
		obs.Inc(s.name + "_hits_total")
		return e.val, true
	}
	s.mu.Unlock()
	var zero V
	return zero, false
}

// trimLocked evicts least-recently-used READY entries until the store is
// within capacity or only in-flight entries remain.
func (s *Store[K, V]) trimLocked() {
	for len(s.entries) > s.capacity {
		evicted := false
		for _, k := range s.order {
			if s.entries[k].isReady() {
				s.removeLocked(k)
				obs.Inc(s.name + "_evictions_total")
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything in flight; completion trims back down
		}
	}
}

// removeLocked deletes key from the map and the recency list.
func (s *Store[K, V]) removeLocked(key K) {
	delete(s.entries, key)
	for i, k := range s.order {
		if k == key {
			// copy-down instead of re-slicing so the backing array never
			// retains evicted keys
			copy(s.order[i:], s.order[i+1:])
			s.order = s.order[:len(s.order)-1]
			return
		}
	}
}

// touchLocked moves key to the most-recently-used end.
func (s *Store[K, V]) touchLocked(key K) {
	for i, k := range s.order {
		if k == key {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = key
			return
		}
	}
}

// gaugesLocked refreshes the entries/inflight gauges.
func (s *Store[K, V]) gaugesLocked() {
	obs.SetGauge(s.name+"_entries", float64(len(s.entries)))
	obs.SetGauge(s.name+"_inflight", float64(s.inflight))
}

// SetCapacity resizes the store (minimum 1) and returns the previous
// capacity. Shrinking evicts least-recently-used ready entries immediately;
// in-flight overflow trims as builds complete.
func (s *Store[K, V]) SetCapacity(n int) int {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.capacity
	s.capacity = n
	s.trimLocked()
	s.gaugesLocked()
	return prev
}

// Capacity returns the current bound on ready artifacts.
func (s *Store[K, V]) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity
}

// Len returns the current entry count (ready + in flight).
func (s *Store[K, V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// InFlight returns the number of builds currently running.
func (s *Store[K, V]) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Reset drops every entry. In-flight builds are unaffected: their waiters
// still receive the built artifact, it just is no longer cached afterwards.
func (s *Store[K, V]) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = map[K]*entry[V]{}
	s.order = nil
	s.gaugesLocked()
}
