package store

import (
	"sync"
	"testing"

	"nde/internal/obs"
)

func TestPutInsertsAndFirstBuildWins(t *testing.T) {
	withObs(t)
	s := New[string, int]("st_put", 4)
	if !s.Put("a", 1) {
		t.Fatal("Put of a new key must report insertion")
	}
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = (%d, %v), want (1, true)", v, ok)
	}
	// first build wins: a second Put of the same key is a no-op
	if s.Put("a", 99) {
		t.Fatal("Put over an existing key must report no insertion")
	}
	if v, _ := s.Get("a"); v != 1 {
		t.Fatalf("Put overwrote an existing artifact: got %d, want 1", v)
	}
	if got := obs.Default().Counter("st_put_puts_total").Value(); got != 1 {
		t.Fatalf("puts_total = %d, want 1 (only the insertion counts)", got)
	}
}

func TestPutDoesNotPreemptInFlightBuild(t *testing.T) {
	s := New[string, int]("st_put_flight", 4)
	release := make(chan struct{})
	var wg sync.WaitGroup
	var built int
	wg.Add(1)
	go func() {
		defer wg.Done()
		built, _ = s.GetOrBuild("k", func() (int, error) {
			<-release
			return 7, nil
		})
	}()
	waitInflight(t, s, 1)
	if s.Put("k", 42) {
		t.Error("Put must not preempt an in-flight build for the same key")
	}
	close(release)
	wg.Wait()
	if built != 7 {
		t.Fatalf("in-flight builder returned %d, want its own 7", built)
	}
	if v, _ := s.Get("k"); v != 7 {
		t.Fatalf("cached value = %d, want the in-flight build's 7", v)
	}
}

func TestPutRespectsLRUAndCapacity(t *testing.T) {
	s := New[string, int]("st_put_lru", 2)
	s.Put("a", 1)
	s.Put("b", 2)
	s.Put("a", -1) // touch a: b becomes the victim
	s.Put("c", 3)
	if _, ok := s.Get("a"); !ok {
		t.Error("recently touched entry a was evicted")
	}
	if _, ok := s.Get("b"); ok {
		t.Error("LRU entry b survived eviction after Put overflow")
	}
	if _, ok := s.Get("c"); !ok {
		t.Error("fresh Put entry c missing")
	}
	if n := s.Len(); n != 2 {
		t.Errorf("len = %d, want capacity 2", n)
	}
}

// Shrinking to zero clamps to capacity 1 and the forced evictions are
// accounted — the counter matches the entries actually dropped.
func TestShrinkToZeroEvictionAccounting(t *testing.T) {
	withObs(t)
	s := New[int, int]("st_put_shrink", 4)
	for i := 0; i < 4; i++ {
		s.Put(i, i)
	}
	s.SetCapacity(0)
	if s.Capacity() != 1 {
		t.Fatalf("capacity = %d, want clamp to 1", s.Capacity())
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("len = %d after shrink to zero, want 1", n)
	}
	_, _, _, evictions := counters(t, "st_put_shrink")
	if evictions != 3 {
		t.Fatalf("evictions = %d, want 3 (4 entries -> 1 survivor)", evictions)
	}
}
