package frame

import (
	"math"
	"testing"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hi"), KindString, "hi"},
		{Bool(true), KindBool, "true"},
	}
	for _, c := range cases {
		if c.v.IsNull() {
			t.Errorf("%v unexpectedly null", c.v)
		}
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String of %v = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if Null().String() != "null" {
		t.Errorf("Null().String() = %q", Null().String())
	}
}

func TestValueFloatWidensInt(t *testing.T) {
	if got := Int(7).Float(); got != 7.0 {
		t.Errorf("Int(7).Float() = %v", got)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false},
		{Null(), Null(), true},
		{NullOf(KindFloat), NullOf(KindString), true},
		{Null(), Int(0), false},
		{Str("a"), Str("a"), true},
		{Bool(true), Bool(false), false},
		{Float(math.Inf(1)), Float(math.Inf(1)), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValuePanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Str() on int value")
		}
	}()
	_ = Int(1).Str()
}

func TestSeriesBasics(t *testing.T) {
	s := NewFloatSeries("x", []float64{1, 2, 3}, []bool{true, false, true})
	if s.Name() != "x" || s.Kind() != KindFloat || s.Len() != 3 {
		t.Fatalf("bad series header: %s %s %d", s.Name(), s.Kind(), s.Len())
	}
	if !s.IsNull(1) || s.IsNull(0) {
		t.Error("null mask wrong")
	}
	if s.NullCount() != 1 {
		t.Errorf("NullCount = %d", s.NullCount())
	}
	if s.Float(2) != 3 {
		t.Errorf("Float(2) = %v", s.Float(2))
	}
}

func TestSeriesCloneIsDeep(t *testing.T) {
	s := NewIntSeries("a", []int64{1, 2}, nil)
	c := s.Clone()
	if err := c.Set(0, Int(99)); err != nil {
		t.Fatal(err)
	}
	if s.Int(0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSeriesTake(t *testing.T) {
	s := NewStringSeries("s", []string{"a", "b", "c"}, []bool{true, true, false})
	got := s.Take([]int{2, 0, 0})
	if got.Len() != 3 || !got.IsNull(0) || got.Str(1) != "a" || got.Str(2) != "a" {
		t.Errorf("Take wrong: %v %v %v", got.IsNull(0), got.Value(1), got.Value(2))
	}
}

func TestSeriesSetKindMismatch(t *testing.T) {
	s := NewIntSeries("a", []int64{1}, nil)
	if err := s.Set(0, Str("x")); err == nil {
		t.Error("expected error storing string in int column")
	}
	f := NewFloatSeries("f", []float64{0}, nil)
	if err := f.Set(0, Int(3)); err != nil {
		t.Errorf("int should widen into float column: %v", err)
	}
	if f.Float(0) != 3 {
		t.Errorf("widened value = %v", f.Float(0))
	}
}

func TestSeriesAppend(t *testing.T) {
	s := NewBoolSeries("b", []bool{true}, nil)
	if err := s.AppendValue(Null()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendValue(Bool(false)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || !s.IsNull(1) || s.Bool(2) != false {
		t.Errorf("append results wrong: len=%d", s.Len())
	}
	o := NewBoolSeries("b2", []bool{true, true}, nil)
	if err := s.AppendSeries(o); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 || !s.Bool(4) {
		t.Errorf("AppendSeries wrong: len=%d", s.Len())
	}
	i := NewIntSeries("i", []int64{1}, nil)
	if err := s.AppendSeries(i); err == nil {
		t.Error("expected kind mismatch error")
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewFloatSeries("x", []float64{2, 4, 100}, []bool{true, true, false})
	if m, ok := s.Mean(); !ok || m != 3 {
		t.Errorf("Mean = %v,%v", m, ok)
	}
	if sd, ok := s.Std(); !ok || sd != 1 {
		t.Errorf("Std = %v,%v", sd, ok)
	}
	lo, hi, ok := s.MinMax()
	if !ok || lo != 2 || hi != 4 {
		t.Errorf("MinMax = %v,%v,%v", lo, hi, ok)
	}
	empty := NewFloatSeries("e", []float64{1}, []bool{false})
	if _, ok := empty.Mean(); ok {
		t.Error("Mean of all-null column should report !ok")
	}
	str := NewStringSeries("s", []string{"a"}, nil)
	if _, ok := str.Mean(); ok {
		t.Error("Mean of string column should report !ok")
	}
}

func TestSeriesFloats(t *testing.T) {
	s := NewIntSeries("i", []int64{5, 6}, []bool{true, false})
	fs, err := s.Floats()
	if err != nil {
		t.Fatal(err)
	}
	if fs[0] != 5 || !math.IsNaN(fs[1]) {
		t.Errorf("Floats = %v", fs)
	}
	if _, err := NewStringSeries("s", []string{"x"}, nil).Floats(); err == nil {
		t.Error("expected error for string Floats()")
	}
}

func TestSeriesMode(t *testing.T) {
	s := NewStringSeries("s", []string{"b", "a", "b", "c"}, nil)
	m, ok := s.Mode()
	if !ok || m.Str() != "b" {
		t.Errorf("Mode = %v,%v", m, ok)
	}
	if _, ok := NewStringSeries("e", nil, nil).Mode(); ok {
		t.Error("Mode of empty should be !ok")
	}
}

func TestSeriesUniqueAndValueCounts(t *testing.T) {
	s := NewIntSeries("i", []int64{3, 1, 3, 2, 1, 3}, []bool{true, true, true, true, true, false})
	u := s.Unique()
	if len(u) != 3 || u[0].Int() != 3 || u[1].Int() != 1 || u[2].Int() != 2 {
		t.Errorf("Unique = %v", u)
	}
	vals, counts := s.ValueCounts()
	if vals[0].Int() != 3 && counts[0] != 2 {
		t.Errorf("ValueCounts = %v %v", vals, counts)
	}
}

func TestNewSeriesOfErrors(t *testing.T) {
	if _, err := NewSeriesOf("x", KindInt, []Value{Int(1), Str("no")}); err == nil {
		t.Error("expected kind mismatch error")
	}
	s, err := NewSeriesOf("x", KindFloat, []Value{Int(1), Null(), Float(2.5)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Float(0) != 1 || !s.IsNull(1) || s.Float(2) != 2.5 {
		t.Error("NewSeriesOf values wrong")
	}
}
