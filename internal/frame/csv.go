package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nde/internal/nderr"
)

// ReadCSV parses CSV data with a header row into a frame. Column kinds are
// inferred from the data: a column is int if every non-empty cell parses as
// an integer, else float if every non-empty cell parses as a number, else
// bool if every non-empty cell is true/false, else string. Empty cells
// become nulls. Blank header names are rejected: a nameless column cannot
// be addressed and would not survive a WriteCSV round trip.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("frame: csv has no header row")
	}
	header := records[0]
	for ci, name := range header {
		if strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("frame: csv header column %d is blank: %w", ci, nderr.ErrDegenerateInput)
		}
	}
	rows := records[1:]
	cols := make([]*Series, len(header))
	for ci, name := range header {
		raw := make([]string, len(rows))
		for ri, rec := range rows {
			if ci < len(rec) {
				raw[ri] = rec[ci]
			}
		}
		cols[ci] = inferSeries(name, raw)
	}
	return New(cols...)
}

// ReadCSVString is ReadCSV over an in-memory string.
func ReadCSVString(s string) (*Frame, error) { return ReadCSV(strings.NewReader(s)) }

func inferSeries(name string, raw []string) *Series {
	isInt, isFloat, isBool := true, true, true
	any := false
	for _, cell := range raw {
		if cell == "" {
			continue
		}
		any = true
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			isFloat = false
		}
		if cell != "true" && cell != "false" {
			isBool = false
		}
	}
	n := len(raw)
	valid := make([]bool, n)
	for i, cell := range raw {
		valid[i] = cell != ""
	}
	switch {
	case any && isInt:
		vals := make([]int64, n)
		for i, cell := range raw {
			if valid[i] {
				vals[i], _ = strconv.ParseInt(cell, 10, 64)
			}
		}
		return NewIntSeries(name, vals, valid)
	case any && isFloat:
		vals := make([]float64, n)
		for i, cell := range raw {
			if valid[i] {
				vals[i], _ = strconv.ParseFloat(cell, 64)
			}
		}
		return NewFloatSeries(name, vals, valid)
	case any && isBool:
		vals := make([]bool, n)
		for i, cell := range raw {
			if valid[i] {
				vals[i] = cell == "true"
			}
		}
		return NewBoolSeries(name, vals, valid)
	default:
		return NewStringSeries(name, raw, valid)
	}
}

// WriteCSV serializes the frame with a header row. Nulls become empty cells.
// Caveat: a null row of a single-column frame serializes as a blank line,
// which encoding/csv readers (including ReadCSV) skip; frames with at least
// one fully non-null column round-trip exactly.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, f.NumCols())
	for r := 0; r < f.NumRows(); r++ {
		for c, col := range f.cols {
			v := col.Value(r)
			if v.IsNull() {
				rec[c] = ""
			} else {
				rec[c] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
