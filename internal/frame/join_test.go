package frame

import "testing"

func joinFixtures(t *testing.T) (*Frame, *Frame) {
	t.Helper()
	people := MustNew(
		NewIntSeries("person_id", []int64{1, 2, 3, 4}, nil),
		NewStringSeries("name", []string{"ana", "bob", "cyd", "dee"}, nil),
		NewIntSeries("job_id", []int64{10, 20, 10, 30}, []bool{true, true, true, false}),
	)
	jobs := MustNew(
		NewIntSeries("job_id", []int64{10, 20, 40}, nil),
		NewStringSeries("sector", []string{"healthcare", "finance", "retail"}, nil),
	)
	return people, jobs
}

func TestInnerJoin(t *testing.T) {
	people, jobs := joinFixtures(t)
	res, err := JoinOn(people, jobs, "job_id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Frame.NumRows())
	}
	// left order preserved: ana, bob, cyd
	names, _ := res.Frame.MustColumn("name").Strings()
	if names[0] != "ana" || names[1] != "bob" || names[2] != "cyd" {
		t.Errorf("names = %v", names)
	}
	sectors, _ := res.Frame.MustColumn("sector").Strings()
	if sectors[0] != "healthcare" || sectors[1] != "finance" || sectors[2] != "healthcare" {
		t.Errorf("sectors = %v", sectors)
	}
	if res.LeftIdx[2] != 2 || res.RightIdx[2] != 0 {
		t.Errorf("lineage = %v %v", res.LeftIdx, res.RightIdx)
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	people, jobs := joinFixtures(t)
	res, err := JoinOn(people, jobs, "job_id", LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 4 {
		t.Fatalf("rows = %d", res.Frame.NumRows())
	}
	// dee has a null job_id -> no match, sector null, rightIdx -1
	sector := res.Frame.MustColumn("sector")
	if !sector.IsNull(3) {
		t.Error("unmatched left row should have null right columns")
	}
	if res.RightIdx[3] != -1 {
		t.Errorf("RightIdx[3] = %d", res.RightIdx[3])
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	left := MustNew(NewIntSeries("k", []int64{0}, []bool{false}), NewStringSeries("l", []string{"x"}, nil))
	right := MustNew(NewIntSeries("k", []int64{0}, []bool{false}), NewStringSeries("r", []string{"y"}, nil))
	res, err := JoinOn(left, right, "k", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 0 {
		t.Error("null keys must not match")
	}
}

func TestJoinOneToMany(t *testing.T) {
	letters := MustNew(
		NewIntSeries("person_id", []int64{7}, nil),
		NewStringSeries("txt", []string{"strong hire"}, nil),
	)
	tweets := MustNew(
		NewIntSeries("person_id", []int64{7, 7, 8}, nil),
		NewStringSeries("tweet", []string{"a", "b", "c"}, nil),
	)
	res, err := JoinOn(letters, tweets, "person_id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 2 {
		t.Fatalf("rows = %d", res.Frame.NumRows())
	}
	if res.LeftIdx[0] != 0 || res.LeftIdx[1] != 0 || res.RightIdx[0] != 0 || res.RightIdx[1] != 1 {
		t.Errorf("lineage = %v %v", res.LeftIdx, res.RightIdx)
	}
}

func TestJoinNameCollisionSuffix(t *testing.T) {
	left := MustNew(NewIntSeries("k", []int64{1}, nil), NewStringSeries("v", []string{"l"}, nil))
	right := MustNew(NewIntSeries("k", []int64{1}, nil), NewStringSeries("v", []string{"r"}, nil))
	res, err := JoinOn(left, right, "k", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Frame.HasColumn("v_r") {
		t.Errorf("columns = %v", res.Frame.ColumnNames())
	}
	if res.Frame.MustColumn("v").Str(0) != "l" || res.Frame.MustColumn("v_r").Str(0) != "r" {
		t.Error("collision values wrong")
	}
}

func TestJoinMultiKey(t *testing.T) {
	left := MustNew(
		NewIntSeries("a", []int64{1, 1, 2}, nil),
		NewStringSeries("b", []string{"x", "y", "x"}, nil),
	)
	right := MustNew(
		NewIntSeries("a", []int64{1, 2}, nil),
		NewStringSeries("b", []string{"y", "x"}, nil),
		NewFloatSeries("w", []float64{0.5, 0.7}, nil),
	)
	res, err := Join(left, right, []string{"a", "b"}, []string{"a", "b"}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 2 {
		t.Fatalf("rows = %d", res.Frame.NumRows())
	}
	if res.Frame.MustColumn("w").Float(0) != 0.5 {
		t.Error("multi-key match wrong")
	}
}

func TestJoinErrors(t *testing.T) {
	people, jobs := joinFixtures(t)
	if _, err := Join(people, jobs, nil, nil, InnerJoin); err == nil {
		t.Error("expected error for empty keys")
	}
	if _, err := JoinOn(people, jobs, "nope", InnerJoin); err == nil {
		t.Error("expected error for unknown key")
	}
	typed := MustNew(NewStringSeries("job_id", []string{"10"}, nil))
	if _, err := JoinOn(people, typed, "job_id", InnerJoin); err == nil {
		t.Error("expected kind mismatch error")
	}
}
