// Package frame implements a typed, null-aware, columnar dataframe.
//
// It is the relational substrate for the nde library: every dataset that
// flows through an ML pipeline — source tables, joined side data, encoded
// training matrices — is represented as a Frame of named, homogeneously
// typed Series. Operations that reshape rows (filter, join, sort, take)
// report the input-row indices that produced each output row so that
// higher layers can maintain fine-grained provenance.
package frame

import (
	"fmt"
	"strconv"
)

// Kind enumerates the element types a Series can hold.
type Kind int

const (
	// KindInt is a 64-bit signed integer column.
	KindInt Kind = iota
	// KindFloat is a 64-bit floating point column.
	KindFloat
	// KindString is a string column.
	KindString
	// KindBool is a boolean column.
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed cell value. The zero Value is null.
type Value struct {
	kind  Kind
	valid bool
	i     int64
	f     float64
	s     string
	b     bool
}

// Null returns an untyped null value.
func Null() Value { return Value{} }

// NullOf returns a null value carrying type information.
func NullOf(k Kind) Value { return Value{kind: k} }

// Int wraps an int64 into a Value.
func Int(v int64) Value { return Value{kind: KindInt, valid: true, i: v} }

// Float wraps a float64 into a Value.
func Float(v float64) Value { return Value{kind: KindFloat, valid: true, f: v} }

// Str wraps a string into a Value.
func Str(v string) Value { return Value{kind: KindString, valid: true, s: v} }

// Bool wraps a bool into a Value.
func Bool(v bool) Value { return Value{kind: KindBool, valid: true, b: v} }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return !v.valid }

// Kind returns the type of the value. Null values report the kind of the
// column they came from, or KindInt for the untyped Null().
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload. It panics if the value is not a non-null int.
func (v Value) Int() int64 {
	if !v.valid || v.kind != KindInt {
		panic(fmt.Sprintf("frame: Int() on %s value", v.describe()))
	}
	return v.i
}

// Float returns the float payload, widening ints. It panics on other kinds or null.
func (v Value) Float() float64 {
	if !v.valid {
		panic("frame: Float() on null value")
	}
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("frame: Float() on %s value", v.describe()))
	}
}

// Str returns the string payload. It panics if the value is not a non-null string.
func (v Value) Str() string {
	if !v.valid || v.kind != KindString {
		panic(fmt.Sprintf("frame: Str() on %s value", v.describe()))
	}
	return v.s
}

// Bool returns the bool payload. It panics if the value is not a non-null bool.
func (v Value) Bool() bool {
	if !v.valid || v.kind != KindBool {
		panic(fmt.Sprintf("frame: Bool() on %s value", v.describe()))
	}
	return v.b
}

// Equal reports whether two values have the same kind, nullness and payload.
// Two nulls of any kind compare equal.
func (v Value) Equal(o Value) bool {
	if !v.valid && !o.valid {
		return true
	}
	if v.valid != o.valid || v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	}
	return false
}

// String formats the value for display. Nulls render as "null".
func (v Value) String() string {
	if !v.valid {
		return "null"
	}
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

func (v Value) describe() string {
	if !v.valid {
		return "null"
	}
	return v.kind.String()
}

// key returns a comparable representation used for hashing in joins and
// group-bys. Nulls of every kind map to the same key.
func (v Value) key() valueKey {
	if !v.valid {
		return valueKey{null: true}
	}
	switch v.kind {
	case KindInt:
		return valueKey{kind: KindInt, i: v.i}
	case KindFloat:
		return valueKey{kind: KindFloat, f: v.f}
	case KindString:
		return valueKey{kind: KindString, s: v.s}
	case KindBool:
		b := int64(0)
		if v.b {
			b = 1
		}
		return valueKey{kind: KindBool, i: b}
	}
	return valueKey{null: true}
}

type valueKey struct {
	null bool
	kind Kind
	i    int64
	f    float64
	s    string
}
