package frame

import (
	"fmt"
	"math"
)

// AggFunc enumerates the supported group aggregations.
type AggFunc int

const (
	// AggCount counts all rows in the group (including nulls in the target).
	AggCount AggFunc = iota
	// AggSum sums the non-null numeric values.
	AggSum
	// AggMean averages the non-null numeric values.
	AggMean
	// AggMin takes the minimum non-null numeric value.
	AggMin
	// AggMax takes the maximum non-null numeric value.
	AggMax
)

// Agg names a column and the aggregation to apply to it. As output name,
// "<func>_<column>" is used (e.g. "mean_age"); AggCount with an empty Col
// yields "count".
type Agg struct {
	Col  string
	Func AggFunc
}

func (a Agg) outName() string {
	switch a.Func {
	case AggCount:
		if a.Col == "" {
			return "count"
		}
		return "count_" + a.Col
	case AggSum:
		return "sum_" + a.Col
	case AggMean:
		return "mean_" + a.Col
	case AggMin:
		return "min_" + a.Col
	case AggMax:
		return "max_" + a.Col
	}
	return "agg_" + a.Col
}

// GroupBy groups rows by the distinct combinations of the key columns and
// computes the requested aggregates. The result has one row per group, in
// first-appearance order of the group keys, and reports the member input
// rows of each group (the lineage of each output row).
func (f *Frame) GroupBy(keys []string, aggs []Agg) (*Frame, [][]int, error) {
	keyCols := make([]*Series, len(keys))
	for i, k := range keys {
		c, err := f.Column(k)
		if err != nil {
			return nil, nil, err
		}
		keyCols[i] = c
	}
	if len(keys) > 4 {
		return nil, nil, fmt.Errorf("frame: at most 4 group keys supported, got %d", len(keys))
	}

	type gkey [4]valueKey
	groupOf := make(map[gkey]int)
	var order []gkey
	var members [][]int
	for r := 0; r < f.NumRows(); r++ {
		var k gkey
		for i, c := range keyCols {
			k[i] = c.Value(r).key()
		}
		gi, ok := groupOf[k]
		if !ok {
			gi = len(order)
			groupOf[k] = gi
			order = append(order, k)
			members = append(members, nil)
		}
		members[gi] = append(members[gi], r)
	}

	cols := make([]*Series, 0, len(keys)+len(aggs))
	for i, k := range keys {
		col := emptySeries(k, keyCols[i].Kind(), len(order))
		for gi, m := range members {
			if err := col.set(gi, keyCols[i].Value(m[0])); err != nil {
				return nil, nil, err
			}
		}
		cols = append(cols, col)
	}
	for _, a := range aggs {
		var src *Series
		if a.Func != AggCount || a.Col != "" {
			c, err := f.Column(a.Col)
			if err != nil {
				return nil, nil, err
			}
			src = c
		}
		col := emptySeries(a.outName(), aggKind(a.Func), len(order))
		for gi, m := range members {
			v, ok := aggregate(src, m, a.Func)
			if ok {
				if err := col.set(gi, v); err != nil {
					return nil, nil, err
				}
			}
		}
		cols = append(cols, col)
	}
	out, err := New(cols...)
	if err != nil {
		return nil, nil, err
	}
	return out, members, nil
}

func aggKind(fn AggFunc) Kind {
	if fn == AggCount {
		return KindInt
	}
	return KindFloat
}

func aggregate(src *Series, rows []int, fn AggFunc) (Value, bool) {
	if fn == AggCount {
		if src == nil {
			return Int(int64(len(rows))), true
		}
		n := 0
		for _, r := range rows {
			if !src.IsNull(r) {
				n++
			}
		}
		return Int(int64(n)), true
	}
	if src.Kind() != KindInt && src.Kind() != KindFloat {
		return Null(), false
	}
	sum, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
	n := 0
	for _, r := range rows {
		if src.IsNull(r) {
			continue
		}
		v := src.Float(r)
		sum += v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		n++
	}
	if n == 0 {
		return Null(), false
	}
	switch fn {
	case AggSum:
		return Float(sum), true
	case AggMean:
		return Float(sum / float64(n)), true
	case AggMin:
		return Float(lo), true
	case AggMax:
		return Float(hi), true
	}
	return Null(), false
}
