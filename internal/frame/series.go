package frame

import (
	"fmt"
	"math"
	"sort"
)

// Series is a named, homogeneously typed column with a null mask.
// The zero Series is not usable; construct one with the New*Series helpers.
type Series struct {
	name  string
	kind  Kind
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
	valid []bool
}

// NewIntSeries builds an int column. A nil valid mask means all values are set.
func NewIntSeries(name string, vals []int64, valid []bool) *Series {
	return &Series{name: name, kind: KindInt, ints: append([]int64(nil), vals...), valid: normMask(valid, len(vals))}
}

// NewFloatSeries builds a float column. A nil valid mask means all values are set.
func NewFloatSeries(name string, vals []float64, valid []bool) *Series {
	return &Series{name: name, kind: KindFloat, flts: append([]float64(nil), vals...), valid: normMask(valid, len(vals))}
}

// NewStringSeries builds a string column. A nil valid mask means all values are set.
func NewStringSeries(name string, vals []string, valid []bool) *Series {
	return &Series{name: name, kind: KindString, strs: append([]string(nil), vals...), valid: normMask(valid, len(vals))}
}

// NewBoolSeries builds a bool column. A nil valid mask means all values are set.
func NewBoolSeries(name string, vals []bool, valid []bool) *Series {
	return &Series{name: name, kind: KindBool, bools: append([]bool(nil), vals...), valid: normMask(valid, len(vals))}
}

// NewSeriesOf builds a series of the given kind from dynamically typed values.
// Every non-null value must match the kind (ints widen to float columns).
func NewSeriesOf(name string, kind Kind, vals []Value) (*Series, error) {
	s := emptySeries(name, kind, len(vals))
	for i, v := range vals {
		if err := s.set(i, v); err != nil {
			return nil, fmt.Errorf("frame: column %q row %d: %w", name, i, err)
		}
	}
	return s, nil
}

func emptySeries(name string, kind Kind, n int) *Series {
	s := &Series{name: name, kind: kind, valid: make([]bool, n)}
	switch kind {
	case KindInt:
		s.ints = make([]int64, n)
	case KindFloat:
		s.flts = make([]float64, n)
	case KindString:
		s.strs = make([]string, n)
	case KindBool:
		s.bools = make([]bool, n)
	}
	return s
}

func normMask(valid []bool, n int) []bool {
	if valid == nil {
		m := make([]bool, n)
		for i := range m {
			m[i] = true
		}
		return m
	}
	if len(valid) != n {
		panic(fmt.Sprintf("frame: valid mask length %d != data length %d", len(valid), n))
	}
	return append([]bool(nil), valid...)
}

// Name returns the column name.
func (s *Series) Name() string { return s.name }

// Kind returns the element type of the column.
func (s *Series) Kind() Kind { return s.kind }

// Len returns the number of rows.
func (s *Series) Len() int { return len(s.valid) }

// IsNull reports whether row i holds a null.
func (s *Series) IsNull(i int) bool { return !s.valid[i] }

// NullCount returns the number of null rows.
func (s *Series) NullCount() int {
	n := 0
	for _, v := range s.valid {
		if !v {
			n++
		}
	}
	return n
}

// Value returns the dynamically typed value at row i.
func (s *Series) Value(i int) Value {
	if !s.valid[i] {
		return NullOf(s.kind)
	}
	switch s.kind {
	case KindInt:
		return Int(s.ints[i])
	case KindFloat:
		return Float(s.flts[i])
	case KindString:
		return Str(s.strs[i])
	case KindBool:
		return Bool(s.bools[i])
	}
	return Null()
}

// Int returns the int at row i; it panics on nulls or non-int columns.
func (s *Series) Int(i int) int64 { return s.Value(i).Int() }

// Float returns the float at row i, widening ints; it panics on nulls.
func (s *Series) Float(i int) float64 { return s.Value(i).Float() }

// Str returns the string at row i; it panics on nulls or non-string columns.
func (s *Series) Str(i int) string { return s.Value(i).Str() }

// Bool returns the bool at row i; it panics on nulls or non-bool columns.
func (s *Series) Bool(i int) bool { return s.Value(i).Bool() }

func (s *Series) set(i int, v Value) error {
	if v.IsNull() {
		s.valid[i] = false
		return nil
	}
	switch {
	case s.kind == KindInt && v.kind == KindInt:
		s.ints[i] = v.i
	case s.kind == KindFloat && v.kind == KindFloat:
		s.flts[i] = v.f
	case s.kind == KindFloat && v.kind == KindInt:
		s.flts[i] = float64(v.i)
	case s.kind == KindString && v.kind == KindString:
		s.strs[i] = v.s
	case s.kind == KindBool && v.kind == KindBool:
		s.bools[i] = v.b
	default:
		return fmt.Errorf("cannot store %s value in %s column", v.kind, s.kind)
	}
	s.valid[i] = true
	return nil
}

// Set stores v at row i, converting ints into float columns. It returns an
// error on a kind mismatch.
func (s *Series) Set(i int, v Value) error { return s.set(i, v) }

// SetNull marks row i as null.
func (s *Series) SetNull(i int) { s.valid[i] = false }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	c := &Series{name: s.name, kind: s.kind, valid: append([]bool(nil), s.valid...)}
	c.ints = append([]int64(nil), s.ints...)
	c.flts = append([]float64(nil), s.flts...)
	c.strs = append([]string(nil), s.strs...)
	c.bools = append([]bool(nil), s.bools...)
	return c
}

// Rename returns a copy of the series under a new name sharing no state.
func (s *Series) Rename(name string) *Series {
	c := s.Clone()
	c.name = name
	return c
}

// Take returns a new series with the rows at the given indices, in order.
// Indices may repeat.
func (s *Series) Take(idx []int) *Series {
	out := emptySeries(s.name, s.kind, len(idx))
	for o, i := range idx {
		out.valid[o] = s.valid[i]
		switch s.kind {
		case KindInt:
			out.ints[o] = s.ints[i]
		case KindFloat:
			out.flts[o] = s.flts[i]
		case KindString:
			out.strs[o] = s.strs[i]
		case KindBool:
			out.bools[o] = s.bools[i]
		}
	}
	return out
}

// AppendValue grows the series by one row holding v.
func (s *Series) AppendValue(v Value) error {
	s.valid = append(s.valid, false)
	switch s.kind {
	case KindInt:
		s.ints = append(s.ints, 0)
	case KindFloat:
		s.flts = append(s.flts, 0)
	case KindString:
		s.strs = append(s.strs, "")
	case KindBool:
		s.bools = append(s.bools, false)
	}
	return s.set(s.Len()-1, v)
}

// AppendSeries concatenates another series of the same kind onto s.
func (s *Series) AppendSeries(o *Series) error {
	if s.kind != o.kind {
		return fmt.Errorf("frame: cannot append %s series to %s series", o.kind, s.kind)
	}
	s.ints = append(s.ints, o.ints...)
	s.flts = append(s.flts, o.flts...)
	s.strs = append(s.strs, o.strs...)
	s.bools = append(s.bools, o.bools...)
	s.valid = append(s.valid, o.valid...)
	return nil
}

// Equal reports deep equality of name, kind, null masks and payloads.
func (s *Series) Equal(o *Series) bool {
	if s.name != o.name || s.kind != o.kind || s.Len() != o.Len() {
		return false
	}
	for i := 0; i < s.Len(); i++ {
		if !s.Value(i).Equal(o.Value(i)) {
			return false
		}
	}
	return true
}

// Floats returns the column as float64s (ints widen), with nulls mapped to
// NaN. It returns an error for string or bool columns.
func (s *Series) Floats() ([]float64, error) {
	if s.kind != KindInt && s.kind != KindFloat {
		return nil, fmt.Errorf("frame: column %q of kind %s is not numeric", s.name, s.kind)
	}
	out := make([]float64, s.Len())
	for i := range out {
		if !s.valid[i] {
			out[i] = math.NaN()
			continue
		}
		if s.kind == KindInt {
			out[i] = float64(s.ints[i])
		} else {
			out[i] = s.flts[i]
		}
	}
	return out, nil
}

// Strings returns the column as strings with nulls mapped to "". It returns
// an error for non-string columns.
func (s *Series) Strings() ([]string, error) {
	if s.kind != KindString {
		return nil, fmt.Errorf("frame: column %q of kind %s is not string", s.name, s.kind)
	}
	out := make([]string, s.Len())
	for i := range out {
		if s.valid[i] {
			out[i] = s.strs[i]
		}
	}
	return out, nil
}

// Mean returns the mean of the non-null values of a numeric column. The
// second return is false when there are no non-null values.
func (s *Series) Mean() (float64, bool) {
	sum, n := 0.0, 0
	for i := 0; i < s.Len(); i++ {
		if !s.valid[i] {
			continue
		}
		switch s.kind {
		case KindInt:
			sum += float64(s.ints[i])
		case KindFloat:
			sum += s.flts[i]
		default:
			return 0, false
		}
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Std returns the population standard deviation of the non-null values of a
// numeric column. The second return is false when there are no non-null values.
func (s *Series) Std() (float64, bool) {
	mean, ok := s.Mean()
	if !ok {
		return 0, false
	}
	sum, n := 0.0, 0
	for i := 0; i < s.Len(); i++ {
		if !s.valid[i] {
			continue
		}
		d := s.Float(i) - mean
		sum += d * d
		n++
	}
	return math.Sqrt(sum / float64(n)), true
}

// MinMax returns the minimum and maximum of the non-null values of a numeric
// column. The third return is false when there are no non-null values.
func (s *Series) MinMax() (float64, float64, bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	any := false
	for i := 0; i < s.Len(); i++ {
		if !s.valid[i] || (s.kind != KindInt && s.kind != KindFloat) {
			continue
		}
		v := s.Float(i)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		any = true
	}
	return lo, hi, any
}

// Mode returns the most frequent non-null value; ties break toward the
// smaller key ordering for determinism. The second return is false when the
// column has no non-null values.
func (s *Series) Mode() (Value, bool) {
	counts := make(map[valueKey]int)
	first := make(map[valueKey]Value)
	for i := 0; i < s.Len(); i++ {
		v := s.Value(i)
		if v.IsNull() {
			continue
		}
		k := v.key()
		counts[k]++
		if _, seen := first[k]; !seen {
			first[k] = v
		}
	}
	if len(counts) == 0 {
		return Null(), false
	}
	keys := make([]valueKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if counts[ka] != counts[kb] {
			return counts[ka] > counts[kb]
		}
		return fmt.Sprint(first[ka]) < fmt.Sprint(first[kb])
	})
	return first[keys[0]], true
}

// Unique returns the distinct non-null values in first-appearance order.
func (s *Series) Unique() []Value {
	seen := make(map[valueKey]bool)
	var out []Value
	for i := 0; i < s.Len(); i++ {
		v := s.Value(i)
		if v.IsNull() {
			continue
		}
		k := v.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// ValueCounts returns distinct non-null values with their frequencies, most
// frequent first (ties by first appearance).
func (s *Series) ValueCounts() ([]Value, []int) {
	order := s.Unique()
	counts := make(map[valueKey]int)
	for i := 0; i < s.Len(); i++ {
		v := s.Value(i)
		if !v.IsNull() {
			counts[v.key()]++
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return counts[order[a].key()] > counts[order[b].key()]
	})
	cs := make([]int, len(order))
	for i, v := range order {
		cs[i] = counts[v.key()]
	}
	return order, cs
}
