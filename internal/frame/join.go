package frame

import "fmt"

// JoinKind selects the join variant.
type JoinKind int

const (
	// InnerJoin keeps only matching row pairs.
	InnerJoin JoinKind = iota
	// LeftJoin keeps every left row, padding right columns with nulls when
	// there is no match.
	LeftJoin
)

// JoinResult describes the output of a join together with its row-level
// lineage: output row o was produced from left row LeftIdx[o] and right row
// RightIdx[o]. For left joins without a match, RightIdx[o] is -1.
type JoinResult struct {
	Frame    *Frame
	LeftIdx  []int
	RightIdx []int
}

// Join hash-joins two frames on equality of the named key columns
// (leftOn[i] = rightOn[i]). Rows with a null key never match (SQL
// semantics). Right-side non-key columns that collide with left names are
// suffixed with "_r". Matches preserve left-row order, then right-row order,
// so results are deterministic.
func Join(left, right *Frame, leftOn, rightOn []string, kind JoinKind) (*JoinResult, error) {
	if len(leftOn) == 0 || len(leftOn) != len(rightOn) {
		return nil, fmt.Errorf("frame: join requires equal, non-empty key lists (got %d and %d)", len(leftOn), len(rightOn))
	}
	leftKeys := make([]*Series, len(leftOn))
	rightKeys := make([]*Series, len(rightOn))
	for i := range leftOn {
		var err error
		if leftKeys[i], err = left.Column(leftOn[i]); err != nil {
			return nil, err
		}
		if rightKeys[i], err = right.Column(rightOn[i]); err != nil {
			return nil, err
		}
		if leftKeys[i].Kind() != rightKeys[i].Kind() {
			return nil, fmt.Errorf("frame: join key kind mismatch: %s(%s) vs %s(%s)",
				leftOn[i], leftKeys[i].Kind(), rightOn[i], rightKeys[i].Kind())
		}
	}

	type key [4]valueKey // up to 4 join columns, padded with zero keys
	if len(leftOn) > 4 {
		return nil, fmt.Errorf("frame: at most 4 join keys supported, got %d", len(leftOn))
	}
	makeKey := func(cols []*Series, row int) (key, bool) {
		var k key
		for i, c := range cols {
			if c.IsNull(row) {
				return k, false
			}
			k[i] = c.Value(row).key()
		}
		return k, true
	}

	index := make(map[key][]int, right.NumRows())
	for r := 0; r < right.NumRows(); r++ {
		if k, ok := makeKey(rightKeys, r); ok {
			index[k] = append(index[k], r)
		}
	}

	var leftIdx, rightIdx []int
	for l := 0; l < left.NumRows(); l++ {
		k, ok := makeKey(leftKeys, l)
		var matches []int
		if ok {
			matches = index[k]
		}
		if len(matches) == 0 {
			if kind == LeftJoin {
				leftIdx = append(leftIdx, l)
				rightIdx = append(rightIdx, -1)
			}
			continue
		}
		for _, r := range matches {
			leftIdx = append(leftIdx, l)
			rightIdx = append(rightIdx, r)
		}
	}

	out := left.Take(leftIdx)
	rightKeySet := make(map[string]bool, len(rightOn))
	for _, n := range rightOn {
		rightKeySet[n] = true
	}
	for _, c := range right.cols {
		if rightKeySet[c.Name()] {
			continue // key columns appear once, from the left side
		}
		name := c.Name()
		if out.HasColumn(name) {
			name += "_r"
		}
		col := emptySeries(name, c.Kind(), len(rightIdx))
		for o, r := range rightIdx {
			if r < 0 {
				continue // stays null
			}
			if err := col.set(o, c.Value(r)); err != nil {
				return nil, err
			}
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return &JoinResult{Frame: out, LeftIdx: leftIdx, RightIdx: rightIdx}, nil
}

// JoinOn is a convenience for joining on a single identically named key.
func JoinOn(left, right *Frame, on string, kind JoinKind) (*JoinResult, error) {
	return Join(left, right, []string{on}, []string{on}, kind)
}
