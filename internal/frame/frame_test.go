package frame

import (
	"strings"
	"testing"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	f, err := New(
		NewIntSeries("id", []int64{1, 2, 3, 4}, nil),
		NewStringSeries("sex", []string{"f", "m", "m", "f"}, nil),
		NewFloatSeries("age", []float64{18, 26, 38, 65}, []bool{true, true, true, false}),
		NewBoolSeries("survived", []bool{false, true, false, false}, nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsBadSchemas(t *testing.T) {
	if _, err := New(
		NewIntSeries("a", []int64{1}, nil),
		NewIntSeries("a", []int64{2}, nil),
	); err == nil {
		t.Error("expected duplicate column error")
	}
	if _, err := New(
		NewIntSeries("a", []int64{1}, nil),
		NewIntSeries("b", []int64{1, 2}, nil),
	); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestFrameAccessors(t *testing.T) {
	f := sampleFrame(t)
	if f.NumRows() != 4 || f.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", f.NumRows(), f.NumCols())
	}
	if !f.HasColumn("age") || f.HasColumn("nope") {
		t.Error("HasColumn wrong")
	}
	v, err := f.Value(3, "age")
	if err != nil || !v.IsNull() {
		t.Errorf("Value(3,age) = %v, %v", v, err)
	}
	if _, err := f.Value(9, "age"); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := f.Column("nope"); err == nil {
		t.Error("expected missing column error")
	}
}

func TestSelectDropRename(t *testing.T) {
	f := sampleFrame(t)
	sel, err := f.Select("sex", "id")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.ColumnNames(); got[0] != "sex" || got[1] != "id" || len(got) != 2 {
		t.Errorf("Select names = %v", got)
	}
	dropped, err := f.Drop("age")
	if err != nil {
		t.Fatal(err)
	}
	if dropped.HasColumn("age") || dropped.NumCols() != 3 {
		t.Error("Drop failed")
	}
	if _, err := f.Drop("nope"); err == nil {
		t.Error("expected error dropping unknown column")
	}
	ren, err := f.RenameColumn("sex", "gender")
	if err != nil {
		t.Fatal(err)
	}
	if !ren.HasColumn("gender") || ren.HasColumn("sex") {
		t.Error("rename failed")
	}
	if _, err := f.RenameColumn("sex", "id"); err == nil {
		t.Error("expected rename collision error")
	}
}

func TestFilterReturnsLineage(t *testing.T) {
	f := sampleFrame(t)
	got, idx := f.Filter(func(r Row) bool { return r.Str("sex") == "m" })
	if got.NumRows() != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Errorf("Filter rows=%d idx=%v", got.NumRows(), idx)
	}
	if got.MustColumn("id").Int(0) != 2 {
		t.Error("filtered data wrong")
	}
}

func TestFilterMask(t *testing.T) {
	f := sampleFrame(t)
	got, idx, err := f.FilterMask([]bool{true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || idx[1] != 3 {
		t.Errorf("FilterMask rows=%d idx=%v", got.NumRows(), idx)
	}
	if _, _, err := f.FilterMask([]bool{true}); err == nil {
		t.Error("expected mask length error")
	}
}

func TestSortByNullsLast(t *testing.T) {
	f := sampleFrame(t)
	sorted, perm, err := f.SortBy("age", false)
	if err != nil {
		t.Fatal(err)
	}
	ages := sorted.MustColumn("age")
	if ages.Float(0) != 38 || ages.Float(1) != 26 || ages.Float(2) != 18 || !ages.IsNull(3) {
		t.Errorf("desc sort wrong: %v", sorted)
	}
	if perm[0] != 2 {
		t.Errorf("perm = %v", perm)
	}
	asc, _, err := f.SortBy("age", true)
	if err != nil {
		t.Fatal(err)
	}
	if asc.MustColumn("age").Float(0) != 18 || !asc.MustColumn("age").IsNull(3) {
		t.Errorf("asc sort wrong: %v", asc)
	}
}

func TestSortByString(t *testing.T) {
	f := sampleFrame(t)
	sorted, _, err := f.SortBy("sex", true)
	if err != nil {
		t.Fatal(err)
	}
	s := sorted.MustColumn("sex")
	if s.Str(0) != "f" || s.Str(3) != "m" {
		t.Errorf("string sort wrong")
	}
}

func TestConcatLineage(t *testing.T) {
	f := sampleFrame(t)
	g := sampleFrame(t)
	all, sf, sr, err := Concat(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 8 {
		t.Fatalf("rows = %d", all.NumRows())
	}
	if sf[5] != 1 || sr[5] != 1 {
		t.Errorf("lineage = %v %v", sf, sr)
	}
	bad := MustNew(NewIntSeries("id", []int64{1}, nil))
	if _, _, _, err := Concat(f, bad); err == nil {
		t.Error("expected schema mismatch")
	}
}

func TestHStack(t *testing.T) {
	a := MustNew(NewIntSeries("x", []int64{1, 2}, nil))
	b := MustNew(NewIntSeries("y", []int64{3, 4}, nil))
	h, err := HStack(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumCols() != 2 || h.MustColumn("y").Int(1) != 4 {
		t.Error("HStack wrong")
	}
	c := MustNew(NewIntSeries("x", []int64{9, 9}, nil))
	if _, err := HStack(a, c); err == nil {
		t.Error("expected duplicate column error")
	}
}

func TestWithColumnReplaceAndAdd(t *testing.T) {
	f := sampleFrame(t)
	repl, err := f.WithColumn(NewIntSeries("id", []int64{9, 9, 9, 9}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if repl.MustColumn("id").Int(0) != 9 || repl.NumCols() != 4 {
		t.Error("replace failed")
	}
	added, err := f.WithColumn(NewIntSeries("extra", []int64{1, 1, 1, 1}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if added.NumCols() != 5 {
		t.Error("add failed")
	}
	if f.MustColumn("id").Int(0) != 1 {
		t.Error("WithColumn mutated receiver")
	}
}

func TestMap(t *testing.T) {
	f := sampleFrame(t)
	g, err := f.Map("is_adult", KindBool, func(r Row) (Value, error) {
		if r.IsNull("age") {
			return Null(), nil
		}
		return Bool(r.Float("age") >= 18), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := g.MustColumn("is_adult")
	if !c.Bool(0) || !c.IsNull(3) {
		t.Error("Map values wrong")
	}
}

func TestTakeRepeats(t *testing.T) {
	f := sampleFrame(t)
	g := f.Take([]int{0, 0, 3})
	if g.NumRows() != 3 || g.MustColumn("id").Int(1) != 1 || g.MustColumn("id").Int(2) != 4 {
		t.Error("Take wrong")
	}
}

func TestEqualAndClone(t *testing.T) {
	f := sampleFrame(t)
	g := f.Clone()
	if !f.Equal(g) {
		t.Error("clone should be equal")
	}
	if err := g.MustColumn("id").Set(0, Int(42)); err != nil {
		t.Fatal(err)
	}
	if f.Equal(g) {
		t.Error("mutated clone should differ")
	}
	if f.MustColumn("id").Int(0) != 1 {
		t.Error("clone shares storage")
	}
}

func TestHeadAndRender(t *testing.T) {
	f := sampleFrame(t)
	h := f.Head(2)
	if h.NumRows() != 2 {
		t.Errorf("Head rows = %d", h.NumRows())
	}
	if f.Head(10).NumRows() != 4 {
		t.Error("Head beyond length should clamp")
	}
	out := f.Render(2)
	if !strings.Contains(out, "sex") || !strings.Contains(out, "(2 more rows)") || !strings.Contains(out, "[4 rows x 4 columns]") {
		t.Errorf("Render output unexpected:\n%s", out)
	}
}

func TestGroupBy(t *testing.T) {
	f := sampleFrame(t)
	g, members, err := f.GroupBy([]string{"sex"}, []Agg{
		{Func: AggCount},
		{Col: "age", Func: AggMean},
		{Col: "age", Func: AggMax},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	// first-appearance order: f then m
	if g.MustColumn("sex").Str(0) != "f" {
		t.Errorf("group order wrong: %v", g)
	}
	if got := g.MustColumn("count").Int(0); got != 2 {
		t.Errorf("count f = %d", got)
	}
	// f group has ages {18, null} -> mean 18
	if got := g.MustColumn("mean_age").Float(0); got != 18 {
		t.Errorf("mean_age f = %v", got)
	}
	if got := g.MustColumn("max_age").Float(1); got != 38 {
		t.Errorf("max_age m = %v", got)
	}
	if len(members[0]) != 2 || members[0][0] != 0 || members[0][1] != 3 {
		t.Errorf("members = %v", members)
	}
}

func TestGroupByAggVariants(t *testing.T) {
	f := MustNew(
		NewStringSeries("k", []string{"a", "a", "b"}, nil),
		NewFloatSeries("v", []float64{1, 3, 10}, nil),
	)
	g, _, err := f.GroupBy([]string{"k"}, []Agg{
		{Col: "v", Func: AggSum},
		{Col: "v", Func: AggMin},
		{Col: "v", Func: AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.MustColumn("sum_v").Float(0) != 4 || g.MustColumn("min_v").Float(0) != 1 || g.MustColumn("count_v").Int(1) != 1 {
		t.Errorf("agg wrong: %v", g)
	}
}

func TestGroupByAllNullGroupYieldsNullAgg(t *testing.T) {
	f := MustNew(
		NewStringSeries("k", []string{"a"}, nil),
		NewFloatSeries("v", []float64{0}, []bool{false}),
	)
	g, _, err := f.GroupBy([]string{"k"}, []Agg{{Col: "v", Func: AggMean}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.MustColumn("mean_v").IsNull(0) {
		t.Error("mean over all-null group should be null")
	}
}

func TestEmptyFrame(t *testing.T) {
	f := MustNew()
	if f.NumRows() != 0 || f.NumCols() != 0 {
		t.Error("empty frame shape wrong")
	}
	out, _, _, err := Concat()
	if err != nil || out.NumRows() != 0 {
		t.Error("empty concat wrong")
	}
}
