package frame_test

import (
	"fmt"

	"nde/internal/frame"
)

// Joining, filtering and rendering a small table.
func ExampleJoin() {
	people := frame.MustNew(
		frame.NewStringSeries("name", []string{"ana", "bob"}, nil),
		frame.NewIntSeries("job_id", []int64{10, 20}, nil),
	)
	jobs := frame.MustNew(
		frame.NewIntSeries("job_id", []int64{10, 20}, nil),
		frame.NewStringSeries("sector", []string{"healthcare", "finance"}, nil),
	)
	res, _ := frame.JoinOn(people, jobs, "job_id", frame.InnerJoin)
	kept, _ := res.Frame.Filter(func(r frame.Row) bool { return r.Str("sector") == "healthcare" })
	fmt.Println(kept.Render(0))
	// Output:
	// name  job_id  sector
	// ----  ------  ----------
	// ana   10      healthcare
	// [1 rows x 3 columns]
}

// Fuzzy joins tolerate typos in keys.
func ExampleFuzzyJoin() {
	typos := frame.MustNew(frame.NewStringSeries("sector", []string{"helthcare"}, nil))
	clean := frame.MustNew(
		frame.NewStringSeries("sector", []string{"healthcare", "finance"}, nil),
		frame.NewFloatSeries("growth", []float64{0.125, 0.25}, nil),
	)
	res, _ := frame.FuzzyJoin(typos, clean, "sector", "sector", 2, frame.FuzzyBestMatch)
	fmt.Println(res.Frame.MustColumn("growth").Float(0))
	// Output:
	// 0.125
}
