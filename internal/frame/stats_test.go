package frame

import (
	"strings"
	"testing"
)

func TestDropNulls(t *testing.T) {
	f := MustNew(
		NewIntSeries("id", []int64{1, 2, 3, 4}, nil),
		NewFloatSeries("v", []float64{1, 0, 3, 0}, []bool{true, false, true, false}),
		NewStringSeries("s", []string{"a", "b", "", "d"}, []bool{true, true, false, true}),
	)
	all, idx, err := f.DropNulls()
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 1 || idx[0] != 0 {
		t.Errorf("DropNulls() kept %v", idx)
	}
	some, idx, err := f.DropNulls("v")
	if err != nil {
		t.Fatal(err)
	}
	if some.NumRows() != 2 || idx[1] != 2 {
		t.Errorf("DropNulls(v) kept %v", idx)
	}
	if _, _, err := f.DropNulls("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestSample(t *testing.T) {
	f := MustNew(NewIntSeries("id", []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, nil))
	s, idx := f.Sample(4, 7)
	if s.NumRows() != 4 || len(idx) != 4 {
		t.Fatalf("sample = %d rows", s.NumRows())
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		if seen[i] {
			t.Fatal("sample with replacement")
		}
		seen[i] = true
	}
	s2, idx2 := f.Sample(4, 7)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatal("sample not deterministic")
		}
	}
	_ = s2
	big, _ := f.Sample(100, 1)
	if big.NumRows() != 10 {
		t.Errorf("oversample rows = %d", big.NumRows())
	}
}

func TestDescribe(t *testing.T) {
	f := MustNew(
		NewFloatSeries("age", []float64{20, 30, 0}, []bool{true, true, false}),
		NewStringSeries("sex", []string{"f", "m", "f"}, nil),
	)
	out := f.Describe()
	for _, want := range []string{"age", "float", "mean=25", "sex", "distinct=2", "mode=f", "[3 rows x 2 columns]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	empty := MustNew(NewFloatSeries("x", []float64{0}, []bool{false}))
	if !strings.Contains(empty.Describe(), "no numeric values") {
		t.Errorf("all-null describe:\n%s", empty.Describe())
	}
}
