package frame

import (
	"fmt"
	"math/rand"
	"strings"
)

// DropNulls returns the rows with no nulls in any of the named columns (all
// columns when none are named), with the kept input-row indices.
func (f *Frame) DropNulls(cols ...string) (*Frame, []int, error) {
	if len(cols) == 0 {
		cols = f.ColumnNames()
	}
	series := make([]*Series, len(cols))
	for i, name := range cols {
		c, err := f.Column(name)
		if err != nil {
			return nil, nil, err
		}
		series[i] = c
	}
	out, idx := f.Filter(func(r Row) bool {
		for _, c := range series {
			if c.IsNull(r.Index()) {
				return false
			}
		}
		return true
	})
	return out, idx, nil
}

// Sample returns n rows drawn without replacement under the given seed (all
// rows, shuffled, when n exceeds the frame), with the sampled input-row
// indices.
func (f *Frame) Sample(n int, seed int64) (*Frame, []int) {
	perm := rand.New(rand.NewSource(seed)).Perm(f.NumRows())
	if n > len(perm) {
		n = len(perm)
	}
	idx := perm[:n]
	return f.Take(idx), idx
}

// Describe renders a per-column summary: kind, null count, and basic
// statistics (mean/std/min/max for numeric columns, distinct count and mode
// for the rest) — the quick data-quality overview a practitioner starts
// debugging with.
func (f *Frame) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-7s %6s  %s\n", "column", "kind", "nulls", "summary")
	for _, name := range f.ColumnNames() {
		c := f.MustColumn(name)
		var summary string
		switch c.Kind() {
		case KindInt, KindFloat:
			mean, okM := c.Mean()
			std, _ := c.Std()
			lo, hi, okR := c.MinMax()
			if okM && okR {
				summary = fmt.Sprintf("mean=%.3g std=%.3g min=%.3g max=%.3g", mean, std, lo, hi)
			} else {
				summary = "no numeric values"
			}
		default:
			u := c.Unique()
			mode, ok := c.Mode()
			if ok {
				summary = fmt.Sprintf("distinct=%d mode=%s", len(u), mode)
			} else {
				summary = "no values"
			}
		}
		fmt.Fprintf(&b, "%-20s %-7s %6d  %s\n", name, c.Kind(), c.NullCount(), summary)
	}
	fmt.Fprintf(&b, "[%d rows x %d columns]", f.NumRows(), f.NumCols())
	return b.String()
}
