package frame

import (
	"fmt"
	"strings"
)

// Levenshtein returns the edit distance between two strings (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// FuzzyMode selects the match semantics of FuzzyJoin.
type FuzzyMode int

const (
	// FuzzyBestMatch keeps only the right rows at the minimum distance per
	// left row (standard entity-resolution semantics; exact matches beat
	// fuzzy ones). Non-monotone: removing the best match can surface a new
	// one, so provenance polynomials do not predict replays.
	FuzzyBestMatch FuzzyMode = iota
	// FuzzyAllMatches keeps every right row within the threshold.
	// Monotone in the inputs, so the provenance contract holds — the mode
	// provenance-tracked pipelines must use.
	FuzzyAllMatches
)

// FuzzyJoin joins two frames on string keys allowing up to maxDist edit
// operations between matching keys (case-insensitive). Null keys never
// match. Lineage is reported like Join's.
//
// The nested-loop implementation is O(|L|·|R|·keylen²); appropriate for the
// side tables of ML pipelines (thousands of rows), not for large-scale
// record linkage.
func FuzzyJoin(left, right *Frame, leftOn, rightOn string, maxDist int, mode FuzzyMode) (*JoinResult, error) {
	if maxDist < 0 {
		return nil, fmt.Errorf("frame: negative fuzzy distance %d", maxDist)
	}
	lk, err := left.Column(leftOn)
	if err != nil {
		return nil, err
	}
	rk, err := right.Column(rightOn)
	if err != nil {
		return nil, err
	}
	if lk.Kind() != KindString || rk.Kind() != KindString {
		return nil, fmt.Errorf("frame: fuzzy join requires string keys, got %s and %s", lk.Kind(), rk.Kind())
	}

	var leftIdx, rightIdx []int
	for l := 0; l < left.NumRows(); l++ {
		if lk.IsNull(l) {
			continue
		}
		key := strings.ToLower(lk.Str(l))
		best := maxDist + 1
		var matches []int
		for r := 0; r < right.NumRows(); r++ {
			if rk.IsNull(r) {
				continue
			}
			d := Levenshtein(key, strings.ToLower(rk.Str(r)))
			if d > maxDist {
				continue
			}
			if mode == FuzzyAllMatches {
				matches = append(matches, r)
				continue
			}
			switch {
			case d < best:
				best = d
				matches = matches[:0]
				matches = append(matches, r)
			case d == best:
				matches = append(matches, r)
			}
		}
		for _, r := range matches {
			leftIdx = append(leftIdx, l)
			rightIdx = append(rightIdx, r)
		}
	}

	out := left.Take(leftIdx)
	for _, c := range rightCols(right, rightOn) {
		name := c.Name()
		if out.HasColumn(name) {
			name += "_r"
		}
		col := emptySeries(name, c.Kind(), len(rightIdx))
		for o, r := range rightIdx {
			if err := col.set(o, c.Value(r)); err != nil {
				return nil, err
			}
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return &JoinResult{Frame: out, LeftIdx: leftIdx, RightIdx: rightIdx}, nil
}

func rightCols(right *Frame, except string) []*Series {
	var out []*Series
	for _, name := range right.ColumnNames() {
		if name == except {
			continue
		}
		out = append(out, right.MustColumn(name))
	}
	return out
}
