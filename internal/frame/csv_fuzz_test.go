package frame

import (
	"bytes"
	"testing"
)

// FuzzReadCSV drives the CSV reader with arbitrary input. ReadCSV may
// reject data with an error but must never panic, and any frame it does
// accept must be internally consistent and serializable.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("person_id,employer_rating,sentiment\n1,NaN,positive\n2,,negative\n")
	f.Add("x,y\n1.5,true\n-2e308,false\n")
	f.Add("x\n\"unterminated quote\n")
	f.Add("a,a\n1,2\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, data string) {
		fr, err := ReadCSVString(data)
		if err != nil {
			return
		}
		n := fr.NumRows()
		for _, name := range fr.ColumnNames() {
			c, cerr := fr.Column(name)
			if cerr != nil {
				t.Fatalf("column %q listed but not retrievable: %v", name, cerr)
			}
			if c.Len() != n {
				t.Fatalf("column %q has %d rows, frame has %d", name, c.Len(), n)
			}
		}
		var buf bytes.Buffer
		if err := fr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of a frame ReadCSV accepted: %v", err)
		}
		if _, err := ReadCSV(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-reading WriteCSV output: %v\noutput:\n%s", err, buf.String())
		}
	})
}
