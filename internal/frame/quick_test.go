package frame

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomFrame builds a deterministic pseudo-random frame used by the
// property tests below.
func randomFrame(r *rand.Rand, n int) *Frame {
	ids := make([]int64, n)
	vals := make([]float64, n)
	cats := make([]string, n)
	valid := make([]bool, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(r.Intn(10))
		vals[i] = r.NormFloat64()
		cats[i] = string(rune('a' + r.Intn(3)))
		valid[i] = r.Float64() > 0.2
	}
	return MustNew(
		NewIntSeries("id", ids, nil),
		NewFloatSeries("v", vals, valid),
		NewStringSeries("c", cats, nil),
	)
}

// Property: filtering preserves exactly the rows whose indices are returned,
// in order, for arbitrary predicates over arbitrary frames.
func TestQuickFilterLineage(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFrame(r, int(size%50)+1)
		thresh := r.Float64()*2 - 1
		got, idx := f.Filter(func(row Row) bool {
			return !row.IsNull("v") && row.Float("v") > thresh
		})
		if got.NumRows() != len(idx) {
			return false
		}
		for o, i := range idx {
			if got.MustColumn("id").Int(o) != f.MustColumn("id").Int(i) {
				return false
			}
			if f.MustColumn("v").IsNull(i) || f.MustColumn("v").Float(i) <= thresh {
				return false
			}
		}
		// complement check: every non-kept row fails the predicate
		kept := make(map[int]bool)
		for _, i := range idx {
			kept[i] = true
		}
		for i := 0; i < f.NumRows(); i++ {
			if !kept[i] && !f.MustColumn("v").IsNull(i) && f.MustColumn("v").Float(i) > thresh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: an inner join emits exactly the cross product of matching key
// groups — verified against a nested-loop reference implementation.
func TestQuickJoinMatchesNestedLoop(t *testing.T) {
	prop := func(seed int64, ln, rn uint8) bool {
		r := rand.New(rand.NewSource(seed))
		left := randomFrame(r, int(ln%20)+1)
		right := randomFrame(r, int(rn%20)+1)
		rightRenamed, err := right.RenameColumn("v", "w")
		if err != nil {
			return false
		}
		rightRenamed, err = rightRenamed.RenameColumn("c", "d")
		if err != nil {
			return false
		}
		res, err := JoinOn(left, rightRenamed, "id", InnerJoin)
		if err != nil {
			return false
		}
		var wantPairs [][2]int
		for l := 0; l < left.NumRows(); l++ {
			for rr := 0; rr < right.NumRows(); rr++ {
				if left.MustColumn("id").Int(l) == right.MustColumn("id").Int(rr) {
					wantPairs = append(wantPairs, [2]int{l, rr})
				}
			}
		}
		if len(wantPairs) != res.Frame.NumRows() {
			return false
		}
		for o := range wantPairs {
			if res.LeftIdx[o] != wantPairs[o][0] || res.RightIdx[o] != wantPairs[o][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Take(SortBy perm) equals the sorted frame, and sorting is a
// permutation (multiset of values preserved).
func TestQuickSortIsPermutation(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFrame(r, int(size%40)+1)
		sorted, perm, err := f.SortBy("v", true)
		if err != nil {
			return false
		}
		if !f.Take(perm).Equal(sorted) {
			return false
		}
		seen := make(map[int]bool)
		for _, p := range perm {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		// non-null prefix must be non-decreasing, nulls at the end
		v := sorted.MustColumn("v")
		lastNull := false
		for i := 0; i < v.Len(); i++ {
			if v.IsNull(i) {
				lastNull = true
				continue
			}
			if lastNull {
				return false // non-null after null
			}
			if i > 0 && !v.IsNull(i-1) && v.Float(i) < v.Float(i-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: group-by members partition the row set, and counts match.
func TestQuickGroupByPartition(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFrame(r, int(size%40)+1)
		g, members, err := f.GroupBy([]string{"c"}, []Agg{{Func: AggCount}})
		if err != nil {
			return false
		}
		total := 0
		seen := make(map[int]bool)
		for gi, m := range members {
			if int(g.MustColumn("count").Int(gi)) != len(m) {
				return false
			}
			for _, row := range m {
				if seen[row] {
					return false
				}
				seen[row] = true
			}
			total += len(m)
		}
		return total == f.NumRows()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CSV round-trips preserve numeric frames exactly (modulo the
// int/float inference boundary, which we avoid by using non-integral floats).
func TestQuickCSVRoundTrip(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size%30) + 1
		vals := make([]float64, n)
		valid := make([]bool, n)
		for i := range vals {
			vals[i] = r.NormFloat64() + 0.1234567 // avoid integral values
			valid[i] = r.Float64() > 0.3
		}
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i)
		}
		f := MustNew(NewIntSeries("id", ids, nil), NewFloatSeries("v", vals, valid))
		var sb strings.Builder
		if err := f.WriteCSV(&sb); err != nil {
			return false
		}
		back, err := ReadCSVString(sb.String())
		if err != nil {
			return false
		}
		if back.NumRows() != n {
			return false
		}
		for i := 0; i < n; i++ {
			a, b := f.MustColumn("v").Value(i), back.MustColumn("v").Value(i)
			if a.IsNull() != b.IsNull() {
				return false
			}
			if !a.IsNull() && a.Float() != b.Float() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
