package frame

import (
	"fmt"
	"sort"
)

// Frame is an ordered collection of equally long Series, i.e. a table.
// Frames are value-like: operations return new frames and never mutate
// their receiver unless the method name says so (AddColumn, Set...).
type Frame struct {
	cols  []*Series
	index map[string]int
}

// New builds a frame from the given columns. All columns must have the same
// length and distinct names.
func New(cols ...*Series) (*Frame, error) {
	f := &Frame{index: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := f.addColumn(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// MustNew is New panicking on error; for statically correct constructions.
func MustNew(cols ...*Series) *Frame {
	f, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *Frame) addColumn(c *Series) error {
	if _, dup := f.index[c.Name()]; dup {
		return fmt.Errorf("frame: duplicate column %q", c.Name())
	}
	if len(f.cols) > 0 && c.Len() != f.NumRows() {
		return fmt.Errorf("frame: column %q has %d rows, frame has %d", c.Name(), c.Len(), f.NumRows())
	}
	f.index[c.Name()] = len(f.cols)
	f.cols = append(f.cols, c)
	return nil
}

// NumRows returns the number of rows (0 for a frame with no columns).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// ColumnNames returns the column names in order.
func (f *Frame) ColumnNames() []string {
	names := make([]string, len(f.cols))
	for i, c := range f.cols {
		names[i] = c.Name()
	}
	return names
}

// HasColumn reports whether a column with the given name exists.
func (f *Frame) HasColumn(name string) bool {
	_, ok := f.index[name]
	return ok
}

// Column returns the column with the given name, or an error if absent.
func (f *Frame) Column(name string) (*Series, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("frame: no column %q (have %v)", name, f.ColumnNames())
	}
	return f.cols[i], nil
}

// MustColumn is Column panicking on a missing name.
func (f *Frame) MustColumn(name string) *Series {
	c, err := f.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ColumnAt returns the i-th column.
func (f *Frame) ColumnAt(i int) *Series { return f.cols[i] }

// Value returns the cell at (row, column name).
func (f *Frame) Value(row int, col string) (Value, error) {
	c, err := f.Column(col)
	if err != nil {
		return Null(), err
	}
	if row < 0 || row >= c.Len() {
		return Null(), fmt.Errorf("frame: row %d out of range [0,%d)", row, c.Len())
	}
	return c.Value(row), nil
}

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	cols := make([]*Series, len(f.cols))
	for i, c := range f.cols {
		cols[i] = c.Clone()
	}
	return MustNew(cols...)
}

// Select returns a frame with only the named columns, in the given order.
func (f *Frame) Select(names ...string) (*Frame, error) {
	cols := make([]*Series, 0, len(names))
	for _, n := range names {
		c, err := f.Column(n)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c.Clone())
	}
	return New(cols...)
}

// Drop returns a frame without the named columns. Unknown names are errors.
func (f *Frame) Drop(names ...string) (*Frame, error) {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		if !f.HasColumn(n) {
			return nil, fmt.Errorf("frame: cannot drop missing column %q", n)
		}
		drop[n] = true
	}
	var keep []string
	for _, n := range f.ColumnNames() {
		if !drop[n] {
			keep = append(keep, n)
		}
	}
	return f.Select(keep...)
}

// RenameColumn returns a frame with column old renamed to new.
func (f *Frame) RenameColumn(old, new string) (*Frame, error) {
	if _, err := f.Column(old); err != nil {
		return nil, err
	}
	if old != new && f.HasColumn(new) {
		return nil, fmt.Errorf("frame: rename target %q already exists", new)
	}
	cols := make([]*Series, len(f.cols))
	for i, c := range f.cols {
		if c.Name() == old {
			cols[i] = c.Rename(new)
		} else {
			cols[i] = c.Clone()
		}
	}
	return New(cols...)
}

// AddColumn appends a column to the frame in place.
func (f *Frame) AddColumn(c *Series) error { return f.addColumn(c) }

// WithColumn returns a copy of the frame with the column appended, or with
// an existing same-named column replaced.
func (f *Frame) WithColumn(c *Series) (*Frame, error) {
	cols := make([]*Series, 0, len(f.cols)+1)
	replaced := false
	for _, old := range f.cols {
		if old.Name() == c.Name() {
			cols = append(cols, c.Clone())
			replaced = true
		} else {
			cols = append(cols, old.Clone())
		}
	}
	if !replaced {
		cols = append(cols, c.Clone())
	}
	return New(cols...)
}

// Take returns a frame with the rows at the given indices, in order.
// Indices may repeat; all must be in range.
func (f *Frame) Take(idx []int) *Frame {
	cols := make([]*Series, len(f.cols))
	for i, c := range f.cols {
		cols[i] = c.Take(idx)
	}
	return MustNew(cols...)
}

// Head returns the first n rows (fewer if the frame is shorter).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return f.Take(idx)
}

// Row is a lightweight view of one frame row.
type Row struct {
	f *Frame
	i int
}

// Row returns a view of row i.
func (f *Frame) Row(i int) Row { return Row{f: f, i: i} }

// Index returns the row's position in its frame.
func (r Row) Index() int { return r.i }

// Value returns the named cell; it panics on unknown columns.
func (r Row) Value(col string) Value {
	v, err := r.f.Value(r.i, col)
	if err != nil {
		panic(err)
	}
	return v
}

// IsNull reports whether the named cell is null.
func (r Row) IsNull(col string) bool { return r.Value(col).IsNull() }

// Int returns the named cell as int64.
func (r Row) Int(col string) int64 { return r.Value(col).Int() }

// Float returns the named cell as float64 (ints widen).
func (r Row) Float(col string) float64 { return r.Value(col).Float() }

// Str returns the named cell as string.
func (r Row) Str(col string) string { return r.Value(col).Str() }

// Bool returns the named cell as bool.
func (r Row) Bool(col string) bool { return r.Value(col).Bool() }

// Filter returns the rows for which pred is true, along with the indices of
// the kept input rows (the row-level lineage of the output).
func (f *Frame) Filter(pred func(Row) bool) (*Frame, []int) {
	var idx []int
	for i := 0; i < f.NumRows(); i++ {
		if pred(f.Row(i)) {
			idx = append(idx, i)
		}
	}
	return f.Take(idx), idx
}

// FilterMask keeps the rows where mask is true. The mask must have one entry
// per row.
func (f *Frame) FilterMask(mask []bool) (*Frame, []int, error) {
	if len(mask) != f.NumRows() {
		return nil, nil, fmt.Errorf("frame: mask length %d != rows %d", len(mask), f.NumRows())
	}
	var idx []int
	for i, keep := range mask {
		if keep {
			idx = append(idx, i)
		}
	}
	return f.Take(idx), idx, nil
}

// SortBy returns the frame stably sorted by the given column (ascending when
// asc is true). Nulls sort last regardless of direction. It also returns the
// permutation applied (output row o came from input row perm[o]).
func (f *Frame) SortBy(col string, asc bool) (*Frame, []int, error) {
	c, err := f.Column(col)
	if err != nil {
		return nil, nil, err
	}
	perm := make([]int, f.NumRows())
	for i := range perm {
		perm[i] = i
	}
	less := func(a, b int) bool {
		va, vb := c.Value(a), c.Value(b)
		if va.IsNull() || vb.IsNull() {
			return !va.IsNull() && vb.IsNull()
		}
		var cmp int
		switch c.Kind() {
		case KindInt:
			switch {
			case va.Int() < vb.Int():
				cmp = -1
			case va.Int() > vb.Int():
				cmp = 1
			}
		case KindFloat:
			switch {
			case va.Float() < vb.Float():
				cmp = -1
			case va.Float() > vb.Float():
				cmp = 1
			}
		case KindString:
			switch {
			case va.Str() < vb.Str():
				cmp = -1
			case va.Str() > vb.Str():
				cmp = 1
			}
		case KindBool:
			ba, bb := va.Bool(), vb.Bool()
			switch {
			case !ba && bb:
				cmp = -1
			case ba && !bb:
				cmp = 1
			}
		}
		if asc {
			return cmp < 0
		}
		return cmp > 0
	}
	sort.SliceStable(perm, func(x, y int) bool { return less(perm[x], perm[y]) })
	return f.Take(perm), perm, nil
}

// Concat vertically stacks frames with identical schemas (same column names,
// order and kinds). It returns, for each output row, the frame index and the
// row index it came from.
func Concat(frames ...*Frame) (*Frame, []int, []int, error) {
	if len(frames) == 0 {
		return MustNew(), nil, nil, nil
	}
	first := frames[0]
	cols := make([]*Series, first.NumCols())
	for i, c := range first.cols {
		cols[i] = c.Clone()
	}
	var srcFrame, srcRow []int
	for r := 0; r < first.NumRows(); r++ {
		srcFrame = append(srcFrame, 0)
		srcRow = append(srcRow, r)
	}
	for fi := 1; fi < len(frames); fi++ {
		g := frames[fi]
		if g.NumCols() != first.NumCols() {
			return nil, nil, nil, fmt.Errorf("frame: concat schema mismatch: %d vs %d columns", first.NumCols(), g.NumCols())
		}
		for ci, c := range g.cols {
			if c.Name() != cols[ci].Name() || c.Kind() != cols[ci].Kind() {
				return nil, nil, nil, fmt.Errorf("frame: concat schema mismatch at column %d: %s %s vs %s %s",
					ci, cols[ci].Name(), cols[ci].Kind(), c.Name(), c.Kind())
			}
			if err := cols[ci].AppendSeries(c); err != nil {
				return nil, nil, nil, err
			}
		}
		for r := 0; r < g.NumRows(); r++ {
			srcFrame = append(srcFrame, fi)
			srcRow = append(srcRow, r)
		}
	}
	out, err := New(cols...)
	if err != nil {
		return nil, nil, nil, err
	}
	return out, srcFrame, srcRow, nil
}

// HStack horizontally concatenates frames with equal row counts and disjoint
// column names.
func HStack(frames ...*Frame) (*Frame, error) {
	var cols []*Series
	for _, g := range frames {
		for _, c := range g.cols {
			cols = append(cols, c.Clone())
		}
	}
	return New(cols...)
}

// Equal reports deep equality of schemas and data.
func (f *Frame) Equal(o *Frame) bool {
	if f.NumCols() != o.NumCols() {
		return false
	}
	for i, c := range f.cols {
		if !c.Equal(o.cols[i]) {
			return false
		}
	}
	return true
}

// Map appends a new column computed from each row by fn; errors from fn
// abort the operation. The result kind must be consistent across rows.
func (f *Frame) Map(newCol string, kind Kind, fn func(Row) (Value, error)) (*Frame, error) {
	vals := make([]Value, f.NumRows())
	for i := 0; i < f.NumRows(); i++ {
		v, err := fn(f.Row(i))
		if err != nil {
			return nil, fmt.Errorf("frame: map %q row %d: %w", newCol, i, err)
		}
		vals[i] = v
	}
	s, err := NewSeriesOf(newCol, kind, vals)
	if err != nil {
		return nil, err
	}
	return f.WithColumn(s)
}
