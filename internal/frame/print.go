package frame

import (
	"fmt"
	"strings"
)

// String renders the frame as an aligned text table, truncated to at most 20
// rows, with a trailing shape line. Useful for debugging and the pretty
// printing shown in the tutorial's hands-on snippets.
func (f *Frame) String() string { return f.Render(20) }

// Render renders the frame as an aligned text table showing at most maxRows
// rows (all rows if maxRows <= 0).
func (f *Frame) Render(maxRows int) string {
	n := f.NumRows()
	shown := n
	if maxRows > 0 && shown > maxRows {
		shown = maxRows
	}
	names := f.ColumnNames()
	widths := make([]int, len(names))
	cells := make([][]string, shown)
	for c, name := range names {
		widths[c] = len(name)
	}
	for r := 0; r < shown; r++ {
		cells[r] = make([]string, len(names))
		for c, col := range f.cols {
			s := renderValue(col.Value(r))
			if len(s) > 40 {
				s = s[:37] + "..."
			}
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for c, v := range vals {
			if c > 0 {
				b.WriteString("  ")
			}
			if c == len(vals)-1 {
				b.WriteString(v) // no padding on the last column
			} else {
				fmt.Fprintf(&b, "%-*s", widths[c], v)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	rule := make([]string, len(names))
	for c := range rule {
		rule[c] = strings.Repeat("-", widths[c])
	}
	writeRow(rule)
	for r := 0; r < shown; r++ {
		writeRow(cells[r])
	}
	if shown < n {
		fmt.Fprintf(&b, "... (%d more rows)\n", n-shown)
	}
	fmt.Fprintf(&b, "[%d rows x %d columns]", n, f.NumCols())
	return b.String()
}

// renderValue formats a cell for display: floats are shortened to 4
// significant digits (full precision is preserved by Value.String and the
// CSV writer; this is presentation only).
func renderValue(v Value) string {
	if !v.IsNull() && v.Kind() == KindFloat {
		return fmt.Sprintf("%.4g", v.Float())
	}
	return v.String()
}
