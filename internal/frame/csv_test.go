package frame

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVTypeInference(t *testing.T) {
	f, err := ReadCSVString("id,score,name,ok\n1,0.5,ana,true\n2,,bob,false\n,1.5,,true\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.MustColumn("id").Kind() != KindInt {
		t.Errorf("id kind = %v", f.MustColumn("id").Kind())
	}
	if f.MustColumn("score").Kind() != KindFloat {
		t.Errorf("score kind = %v", f.MustColumn("score").Kind())
	}
	if f.MustColumn("name").Kind() != KindString {
		t.Errorf("name kind = %v", f.MustColumn("name").Kind())
	}
	if f.MustColumn("ok").Kind() != KindBool {
		t.Errorf("ok kind = %v", f.MustColumn("ok").Kind())
	}
	if !f.MustColumn("id").IsNull(2) || !f.MustColumn("score").IsNull(1) || !f.MustColumn("name").IsNull(2) {
		t.Error("empty cells should be nulls")
	}
	if f.MustColumn("score").Float(2) != 1.5 {
		t.Error("float value wrong")
	}
}

func TestReadCSVMixedNumericFallsToString(t *testing.T) {
	f, err := ReadCSVString("x\n1\nfoo\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.MustColumn("x").Kind() != KindString {
		t.Errorf("kind = %v", f.MustColumn("x").Kind())
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSVString(""); err == nil {
		t.Error("expected error for empty csv")
	}
	f, err := ReadCSVString("a,b\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 0 || f.NumCols() != 2 {
		t.Error("header-only csv wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := MustNew(
		NewIntSeries("id", []int64{1, 2}, []bool{true, false}),
		NewFloatSeries("v", []float64{1.25, 2}, nil),
		NewStringSeries("s", []string{"hello", "wor,ld"}, nil),
		NewBoolSeries("b", []bool{true, false}, nil),
	)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || !back.MustColumn("id").IsNull(1) {
		t.Errorf("round trip wrong:\n%v", back)
	}
	if back.MustColumn("s").Str(1) != "wor,ld" {
		t.Error("quoted comma lost")
	}
	if back.MustColumn("v").Float(0) != 1.25 {
		t.Error("float lost precision")
	}
}
