package frame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"health", "health", 0},
		{"healthcare", "helthcare", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Levenshtein is a metric — symmetric, zero iff equal, triangle
// inequality.
func TestQuickLevenshteinMetric(t *testing.T) {
	randStr := func(r *rand.Rand) string {
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(3))
		}
		return string(b)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randStr(r), randStr(r), randStr(r)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return Levenshtein(a, c) <= dab+Levenshtein(b, c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func fuzzyFixtures() (*Frame, *Frame) {
	people := MustNew(
		NewStringSeries("sector", []string{"healthcare", "helthcare", "finanse", "retail", ""}, []bool{true, true, true, true, false}),
		NewIntSeries("id", []int64{1, 2, 3, 4, 5}, nil),
	)
	sectors := MustNew(
		NewStringSeries("sector", []string{"healthcare", "finance", "tech"}, nil),
		NewFloatSeries("growth", []float64{0.1, 0.2, 0.3}, nil),
	)
	return people, sectors
}

func TestFuzzyJoinBestMatch(t *testing.T) {
	people, sectors := fuzzyFixtures()
	res, err := FuzzyJoin(people, sectors, "sector", "sector", 2, FuzzyBestMatch)
	if err != nil {
		t.Fatal(err)
	}
	// healthcare (exact), helthcare (dist 1), finanse->finance (dist 2)
	if res.Frame.NumRows() != 3 {
		t.Fatalf("rows = %d\n%v", res.Frame.NumRows(), res.Frame)
	}
	ids := res.Frame.MustColumn("id")
	if ids.Int(0) != 1 || ids.Int(1) != 2 || ids.Int(2) != 3 {
		t.Errorf("matched ids wrong: %v", res.Frame)
	}
	if res.Frame.MustColumn("growth").Float(1) != 0.1 {
		t.Error("helthcare should match healthcare")
	}
	if res.RightIdx[2] != 1 {
		t.Errorf("finanse matched right row %d", res.RightIdx[2])
	}
}

func TestFuzzyJoinBestMatchPrefersExact(t *testing.T) {
	left := MustNew(NewStringSeries("k", []string{"abc"}, nil))
	right := MustNew(
		NewStringSeries("k", []string{"abd", "abc"}, nil),
		NewIntSeries("v", []int64{1, 2}, nil),
	)
	res, err := FuzzyJoin(left, right, "k", "k", 1, FuzzyBestMatch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 1 || res.Frame.MustColumn("v").Int(0) != 2 {
		t.Errorf("exact match should win: %v", res.Frame)
	}
}

func TestFuzzyJoinAllMatches(t *testing.T) {
	left := MustNew(NewStringSeries("k", []string{"abc"}, nil))
	right := MustNew(
		NewStringSeries("k", []string{"abd", "abc", "zzz"}, nil),
		NewIntSeries("v", []int64{1, 2, 3}, nil),
	)
	res, err := FuzzyJoin(left, right, "k", "k", 1, FuzzyAllMatches)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 2 {
		t.Fatalf("all-matches rows = %d", res.Frame.NumRows())
	}
}

func TestFuzzyJoinErrorsAndNulls(t *testing.T) {
	people, sectors := fuzzyFixtures()
	if _, err := FuzzyJoin(people, sectors, "sector", "sector", -1, FuzzyBestMatch); err == nil {
		t.Error("expected error for negative distance")
	}
	if _, err := FuzzyJoin(people, sectors, "id", "sector", 1, FuzzyBestMatch); err == nil {
		t.Error("expected error for non-string key")
	}
	if _, err := FuzzyJoin(people, sectors, "nope", "sector", 1, FuzzyBestMatch); err == nil {
		t.Error("expected error for unknown column")
	}
	// the null-keyed row (id 5) never matches
	res, err := FuzzyJoin(people, sectors, "sector", "sector", 10, FuzzyAllMatches)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.LeftIdx {
		if l == 4 {
			t.Error("null key matched")
		}
	}
}

func TestFuzzyJoinCaseInsensitive(t *testing.T) {
	left := MustNew(NewStringSeries("k", []string{"HealthCare"}, nil))
	right := MustNew(NewStringSeries("k", []string{"healthcare"}, nil), NewIntSeries("v", []int64{7}, nil))
	res, err := FuzzyJoin(left, right, "k", "k", 0, FuzzyBestMatch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 1 {
		t.Error("case-insensitive exact match failed")
	}
}
