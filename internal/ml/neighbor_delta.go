package ml

import (
	"fmt"
	"sort"

	"nde/internal/linalg"
	"nde/internal/nderr"
	"nde/internal/obs"
	"nde/internal/par"
)

// This file implements incremental maintenance of a NeighborIndex:
// RemoveRows and AppendRows return a NEW index over the mutated training
// set that reuses the parent's cached distance geometry instead of
// recomputing it. The receiver is never mutated, so concurrent readers
// (what-if variant workers, serving requests) can derive children from a
// shared base freely.
//
// Representation: a derived index carries a deltaGeom mapping its logical
// training rows onto the ROOT index's physical space — the root's column
// ids plus "extra" slots for appended rows. Removals are tombstones in
// that map; appends pay one query×block distance kernel (the only fresh
// distance work a delta ever does). Chains of derivations stay flattened
// against the same root; when tombstones or extras pile past
// 1/compactDeadFrac of the physical space, derivation folds the child into
// a fresh self-contained root by gathering (never recomputing) distances.
//
// Determinism contract (DESIGN §11): every observable of a derived index —
// D2, Order, TopK, PredictBatch — is Float64bits-identical to a freshly
// built index over the same training rows. This holds because the Gram
// kernel computes each (query, row) distance independently of the rest of
// the matrix, removal preserves the relative order of survivors, and
// appended rows take logical ids larger than every existing row, so merge
// tie-breaks coincide with the rebuild's (distance, index) comparator.
const (
	// compactDeadFrac: compact when dead slots exceed phys/compactDeadFrac.
	compactDeadFrac = 4
	// compactExtraFrac: compact when extras exceed nBase/compactExtraFrac.
	compactExtraFrac = 4
)

// deltaGeom maps a derived index's logical training rows onto its root's
// physical space. Physical ids < nBase are root columns; id nBase+s is
// appended extra slot s. physOf/logOf are private to one index; extraD2
// and extraOrder are immutable once built and shared down chains.
type deltaGeom struct {
	base   *NeighborIndex // the root: never itself derived (delta == nil)
	physOf []int          // logical -> physical, ascending
	logOf  []int          // physical -> logical, -1 = tombstone
	nExtra int            // appended slots (alive + dead)
	dead   int            // tombstoned physical slots

	extraD2    *linalg.Matrix // queries × nExtra block distances (nil when nExtra == 0)
	extraOrder []int          // flat queries × nExtra argsort of slots by (d, slot)
}

func (g *deltaGeom) nBase() int { return g.base.Train.Len() }

// childGeom snapshots the receiver's geometry as a fresh deltaGeom a
// derivation can mutate, treating a root as the identity mapping.
func (ix *NeighborIndex) childGeom() *deltaGeom {
	if g := ix.delta; g != nil {
		return &deltaGeom{
			base:       g.base,
			physOf:     append([]int(nil), g.physOf...),
			logOf:      append([]int(nil), g.logOf...),
			nExtra:     g.nExtra,
			dead:       g.dead,
			extraD2:    g.extraD2,
			extraOrder: g.extraOrder,
		}
	}
	n := ix.Train.Len()
	physOf := make([]int, n)
	logOf := make([]int, n)
	for i := range physOf {
		physOf[i] = i
		logOf[i] = i
	}
	return &deltaGeom{base: ix, physOf: physOf, logOf: logOf}
}

// renumber rebuilds physOf and the logical numbering after tombstoning:
// surviving physical slots keep their relative order, so logical ids stay
// ascending in physical id — exactly the row order of the derived Train.
func (g *deltaGeom) renumber() {
	g.physOf = g.physOf[:0]
	for p, l := range g.logOf {
		if l >= 0 {
			g.logOf[p] = len(g.physOf)
			g.physOf = append(g.physOf, p)
		}
	}
}

// RemoveRows returns a new index over the training set with the given rows
// (indices into the receiver's Train, duplicates tolerated) removed. The
// receiver is unchanged and remains usable. The child reuses the cached
// distance geometry: no distances are recomputed and no full argsort runs;
// per-query top-k structures are repaired in O(queries·k) plus O(n) for
// each query whose top-k actually intersects the removed rows. An empty
// removal returns the receiver itself. Removing every row is an error.
func (ix *NeighborIndex) RemoveRows(rows []int) (*NeighborIndex, error) {
	n := ix.Train.Len()
	if len(rows) == 0 {
		return ix, nil
	}
	for _, r := range rows {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("ml: RemoveRows row %d outside [0,%d): %w", r, n, nderr.ErrDegenerateInput)
		}
	}
	uniq := append([]int(nil), rows...)
	sort.Ints(uniq)
	uniq = dedupSorted(uniq)
	if len(uniq) == n {
		return nil, fmt.Errorf("ml: RemoveRows would empty the training set: %w", nderr.ErrEmptyInput)
	}
	g := ix.childGeom()
	removedPhys := make(map[int]bool, len(uniq))
	for _, r := range uniq {
		p := g.physOf[r]
		removedPhys[p] = true
		g.logOf[p] = -1
	}
	g.dead += len(uniq)
	g.renumber()

	keep := make([]int, 0, n-len(uniq))
	next := 0
	for i := 0; i < n; i++ {
		if next < len(uniq) && uniq[next] == i {
			next++
			continue
		}
		keep = append(keep, i)
	}
	return ix.deriveChild(ix.Train.Subset(keep), g, removedPhys, 0, 0), nil
}

// AppendRows returns a new index over the training set extended by the
// given feature rows and labels. The receiver is unchanged. The only fresh
// distance work is the queries×block kernel for the appended rows; the
// existing geometry is reused, and per-query top-k structures are repaired
// in O(queries·k) plus O(n) for each query where an appended row actually
// enters the top k. Appended rows take training indices after all existing
// rows, matching a rebuild over the concatenated dataset bit for bit.
func (ix *NeighborIndex) AppendRows(x *linalg.Matrix, y []int) (*NeighborIndex, error) {
	if x == nil || x.Rows == 0 {
		return nil, nderr.Empty("ml: AppendRows block")
	}
	if x.Cols != ix.Train.Dim() {
		return nil, nderr.Mismatch("ml: AppendRows dims", ix.Train.Dim(), x.Cols)
	}
	if len(y) != x.Rows {
		return nil, fmt.Errorf("ml: %d appended rows vs %d labels: %w", x.Rows, len(y), nderr.ErrShapeMismatch)
	}
	for i, v := range y {
		if v < 0 {
			return nil, fmt.Errorf("ml: negative label %d at appended row %d: %w", v, i, nderr.ErrDegenerateInput)
		}
	}
	if err := x.CheckFinite("AppendRows features"); err != nil {
		return nil, fmt.Errorf("ml: %w", err)
	}

	m := x.Rows
	nq := ix.Queries.Len()
	g := ix.childGeom()
	nBase := g.nBase()

	blockD2 := linalg.PairwiseSquaredDistances(ix.Queries.X, x, ix.Workers)
	blockOrder := make([]int, nq*m)
	par.For("ml.neighbor_append_argsort", ix.Workers, nq, func(_, q int) {
		row := blockOrder[q*m : (q+1)*m]
		for i := range row {
			row[i] = i
		}
		sort.Sort(&distOrder{d2: blockD2.Row(q), idx: row})
	})

	newLo := nBase + g.nExtra
	if g.nExtra == 0 {
		g.extraD2, g.extraOrder = blockD2, blockOrder
	} else {
		prev := g.nExtra
		g.extraD2 = linalg.HConcat(g.extraD2, blockD2)
		merged := make([]int, nq*(prev+m))
		par.For("ml.neighbor_append_merge", ix.Workers, nq, func(_, q int) {
			mergeOrderRows(
				merged[q*(prev+m):(q+1)*(prev+m)],
				g.extraOrder[q*prev:(q+1)*prev],
				blockOrder[q*m:(q+1)*m],
				g.extraD2.Row(q), prev)
		})
		g.extraOrder = merged
	}
	for s := 0; s < m; s++ {
		g.logOf = append(g.logOf, len(g.physOf))
		g.physOf = append(g.physOf, nBase+g.nExtra+s)
	}
	g.nExtra += m

	return ix.deriveChild(appendDataset(ix.Train, x, y), g, nil, newLo, newLo+m), nil
}

// deriveChild assembles the derived index: attaches the geometry, repairs
// the top-k cache from the receiver's (when it has one), and compacts into
// a self-contained root when tombstones or extras have piled up.
func (ix *NeighborIndex) deriveChild(train *Dataset, g *deltaGeom, removedPhys map[int]bool, newLo, newHi int) *NeighborIndex {
	child := &NeighborIndex{Train: train, Queries: ix.Queries, Workers: ix.Workers, Search: ix.Search, delta: g}
	deriveTopK(child, ix, g, removedPhys, newLo, newHi)
	nBase := g.nBase()
	if g.dead*compactDeadFrac > nBase+g.nExtra || g.nExtra*compactExtraFrac > nBase {
		g.compactInto(child)
	}
	if obs.Enabled() {
		obs.Inc("neighbor_delta_derived_total")
		if child.delta == nil {
			obs.Inc("neighbor_delta_compactions_total")
		}
	}
	return child
}

// compactInto folds the delta into child as a self-contained root: the
// distance matrix is gathered (element copies, never recomputed) and, when
// the base's full argsort was already materialized, neighbor orders are
// rebuilt by the merge walk with no sorting. child.delta is cleared, so
// future derivations chain against this new root.
func (g *deltaGeom) compactInto(child *NeighborIndex) {
	q := child.Queries.Len()
	n := len(g.physOf)
	d2 := g.materializeD2(q, child.Workers)
	child.d2Once.Do(func() { child.d2 = d2 })
	if g.base.ordersReady.Load() {
		orders := make([]int, q*n)
		par.For("ml.neighbor_compact_orders", child.Workers, q, func(_, qi int) {
			g.walkInto(qi, orders[qi*n:(qi+1)*n])
		})
		child.ordersOnce.Do(func() { child.orders = orders })
		child.ordersReady.Store(true)
	}
	child.delta = nil
}

// materializeD2 gathers the derived index's queries×rows distance matrix
// from the root's matrix and the extra blocks. Pure element copies: the
// result is bit-identical to running the kernel over the derived Train.
func (g *deltaGeom) materializeD2(q, workers int) *linalg.Matrix {
	baseD2 := g.base.D2()
	if g.nExtra == 0 {
		return baseD2.SelectColumns(g.physOf)
	}
	nBase := g.nBase()
	out := linalg.NewMatrix(q, len(g.physOf))
	par.For("ml.neighbor_delta_d2", workers, q, func(_, r int) {
		src, ex, dst := baseD2.Row(r), g.extraD2.Row(r), out.Row(r)
		for o, p := range g.physOf {
			if p < nBase {
				dst[o] = src[p]
			} else {
				dst[o] = ex[p-nBase]
			}
		}
	})
	return out
}

// walkInto writes query qi's full neighbor order (logical ids, ascending
// (distance, id)) into out by merging the root's cached argsort with the
// extra slots' argsort, skipping tombstones — O(n) per query, no sorting.
// Ties between a base row and an extra go to the base row: its logical id
// is always smaller, matching the rebuild comparator.
func (g *deltaGeom) walkInto(qi int, out []int) {
	baseOrd := g.base.Order(qi)
	o := 0
	if g.nExtra == 0 {
		for _, p := range baseOrd {
			if l := g.logOf[p]; l >= 0 {
				out[o] = l
				o++
			}
		}
		return
	}
	nBase := g.nBase()
	baseD2 := g.base.D2().Row(qi)
	exOrd := g.extraOrder[qi*g.nExtra : (qi+1)*g.nExtra]
	exD2 := g.extraD2.Row(qi)
	bi, ei := 0, 0
	for {
		for bi < len(baseOrd) && g.logOf[baseOrd[bi]] < 0 {
			bi++
		}
		for ei < len(exOrd) && g.logOf[nBase+exOrd[ei]] < 0 {
			ei++
		}
		switch {
		case bi >= len(baseOrd) && ei >= len(exOrd):
			return
		case ei >= len(exOrd), bi < len(baseOrd) && baseD2[baseOrd[bi]] <= exD2[exOrd[ei]]:
			out[o] = g.logOf[baseOrd[bi]]
			o++
			bi++
		default:
			out[o] = g.logOf[nBase+exOrd[ei]]
			o++
			ei++
		}
	}
}

// reselectInto recomputes query qi's exact top-k from scratch against the
// cached geometry: O(n) gather + quickselect, no distance recomputation.
// pairs must have length ≥ the derived training size, ids length kk.
// Returns the k-th (largest kept) distance. Building candidates in
// physical order yields pairs in ascending logical id with the same
// distance bits as a rebuilt matrix row, so the selection is bit-identical
// to the rebuild's exactTopKInto.
func (g *deltaGeom) reselectInto(qi, kk int, pairs []distIdx, ids []int) float64 {
	nBase := g.nBase()
	bd := g.base.D2().Row(qi)
	m := 0
	for p := 0; p < nBase; p++ {
		if l := g.logOf[p]; l >= 0 {
			pairs[m] = distIdx{d: bd[p], i: l}
			m++
		}
	}
	if g.nExtra > 0 {
		ed := g.extraD2.Row(qi)
		for s := 0; s < g.nExtra; s++ {
			if l := g.logOf[nBase+s]; l >= 0 {
				pairs[m] = distIdx{d: ed[s], i: l}
				m++
			}
		}
	}
	sel := pairs[:m]
	selectK(sel, kk)
	top := sel[:kk]
	sort.Sort(byDistIdx(top))
	for i, p := range top {
		ids[i] = p.i
	}
	return top[kk-1].d
}

// deriveTopK repairs the parent's cached top-k lists for the child: a
// query inherits its list (remapped to child ids) when none of its entries
// were removed and no appended row beats its k-th distance; only the
// remaining queries re-select. With no cache on the parent the child's
// builds lazily on first use instead.
func deriveTopK(child, parent *NeighborIndex, g *deltaGeom, removedPhys map[int]bool, newLo, newHi int) {
	parent.topk.mu.Lock()
	kk, pids, pkth := parent.topk.k, parent.topk.ids, parent.topk.kth
	parent.topk.mu.Unlock()
	n := child.Train.Len()
	if kk <= 0 || pids == nil || kk > n {
		return
	}
	nq := child.Queries.Len()
	var pPhys []int
	if parent.delta != nil {
		pPhys = parent.delta.physOf
	}
	nBase := g.nBase()
	ids := make([]int, nq*kk)
	kth := make([]float64, nq)
	var pairs []distIdx
	reselected := 0
	for q := 0; q < nq; q++ {
		src := pids[q*kk : (q+1)*kk]
		dst := ids[q*kk : (q+1)*kk]
		ok := true
		for i, l := range src {
			p := l
			if pPhys != nil {
				p = pPhys[l]
			}
			if removedPhys[p] {
				ok = false
				break
			}
			dst[i] = g.logOf[p]
		}
		if ok && newHi > newLo {
			ed := g.extraD2.Row(q)
			for s := newLo; s < newHi; s++ {
				// strict: an appended row tying the k-th distance loses to
				// the incumbent's smaller id, exactly as in a rebuild
				if ed[s-nBase] < pkth[q] {
					ok = false
					break
				}
			}
		}
		if ok {
			kth[q] = pkth[q]
			continue
		}
		if pairs == nil {
			pairs = make([]distIdx, n)
		}
		kth[q] = g.reselectInto(q, kk, pairs, dst)
		reselected++
	}
	child.topk.k, child.topk.ids, child.topk.kth = kk, ids, kth
	if obs.Enabled() {
		obs.Count("neighbor_delta_topk_inherited_total", int64(nq-reselected))
		obs.Count("neighbor_delta_topk_reselected_total", int64(reselected))
	}
}

// mergeOrderRows merges one query's old extra-slot order with a new
// block's order (block-local slots offset by bOff) under the (distance,
// slot) total order. Old slots always have smaller ids than new ones, so
// distance ties keep the old slot first — the rebuild tie-break.
func mergeOrderRows(dst, aOrd, bOrd []int, d []float64, bOff int) {
	i, j, o := 0, 0, 0
	for i < len(aOrd) && j < len(bOrd) {
		as, bs := aOrd[i], bOrd[j]+bOff
		if d[as] < d[bs] || (d[as] == d[bs] && as < bs) {
			dst[o] = as
			i++
		} else {
			dst[o] = bs
			j++
		}
		o++
	}
	for ; i < len(aOrd); i++ {
		dst[o] = aOrd[i]
		o++
	}
	for ; j < len(bOrd); j++ {
		dst[o] = bOrd[j] + bOff
		o++
	}
}

// appendDataset concatenates a dataset with a block of rows. Appended rows
// get empty group attributes when the base carries groups.
func appendDataset(d *Dataset, x *linalg.Matrix, y []int) *Dataset {
	n, m, dim := d.Len(), x.Rows, d.Dim()
	nx := linalg.NewMatrix(n+m, dim)
	copy(nx.Data[:n*dim], d.X.Data)
	copy(nx.Data[n*dim:], x.Data)
	ny := make([]int, 0, n+m)
	ny = append(append(ny, d.Y...), y...)
	var groups []string
	if len(d.Groups) > 0 {
		groups = make([]string, n+m)
		copy(groups, d.Groups)
	}
	return &Dataset{X: nx, Y: ny, Groups: groups}
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(a []int) []int {
	out := a[:0]
	for i, v := range a {
		if i == 0 || a[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// Derived reports whether the index is a delta child still carrying its
// root's geometry (false after compaction folds it into a new root).
func (ix *NeighborIndex) Derived() bool { return ix.delta != nil }
