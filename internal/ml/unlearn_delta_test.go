package ml

import (
	"errors"
	"math/rand"
	"testing"

	"nde/internal/nderr"
)

// Regression tests for the unlearn stale-state sweep: atomic validation,
// dedup without double-decrement, and the delta-maintained eval index.

func TestUnlearnAtomicOnBadRow(t *testing.T) {
	d := blobs(24, 2.0, 1)
	m := NewUnlearnableKNN(3)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlearn([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	before := m.Alive()
	// a bad id in the MIDDLE of the list: nothing before it may take effect
	err := m.Unlearn([]int{2, 99, 3})
	if !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("Unlearn with out-of-range id err = %v, want ErrDegenerateInput", err)
	}
	if m.Alive() != before {
		t.Fatalf("failed Unlearn mutated state: alive %d -> %d", before, m.Alive())
	}
	// rows 2 and 3 must still be alive and forgettable
	if err := m.Unlearn([]int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if m.Alive() != before-2 {
		t.Fatalf("alive = %d, want %d", m.Alive(), before-2)
	}
}

func TestUnlearnDedupNoDoubleDecrement(t *testing.T) {
	d := blobs(20, 2.0, 2)
	m := NewUnlearnableKNN(3)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlearn([]int{4, 4, 4, 7, 7}); err != nil {
		t.Fatal(err)
	}
	if m.Alive() != 18 {
		t.Fatalf("after dup unlearn alive = %d, want 18", m.Alive())
	}
	// already-dead rows are a no-op, not a second decrement
	if err := m.Unlearn([]int{4, 7}); err != nil {
		t.Fatal(err)
	}
	if m.Alive() != 18 {
		t.Fatalf("re-unlearning dead rows changed alive to %d, want 18", m.Alive())
	}
}

func TestUnlearnEmptyGuardBeforeMutation(t *testing.T) {
	d := blobs(6, 2.0, 3)
	m := NewUnlearnableKNN(1)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3, 4, 5, 5, 0}
	err := m.Unlearn(all)
	if !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("unlearn-everything err = %v, want ErrEmptyInput", err)
	}
	if m.Alive() != 6 {
		t.Fatalf("failed unlearn-everything mutated alive to %d, want 6", m.Alive())
	}
	// the model must still predict
	if err := m.Unlearn([]int{0}); err != nil {
		t.Fatal(err)
	}
	if m.Alive() != 5 {
		t.Fatalf("alive = %d, want 5", m.Alive())
	}
}

func TestUnlearnLogRegAtomicValidation(t *testing.T) {
	d := blobs(30, 2.5, 4)
	m := NewUnlearnableLogReg()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	theta := m.Theta()
	err := m.Unlearn([]int{1, -5})
	if !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("bad-row err = %v, want ErrDegenerateInput", err)
	}
	if m.Alive() != 30 {
		t.Fatalf("failed unlearn mutated alive to %d, want 30", m.Alive())
	}
	for i, v := range m.Theta() {
		if v != theta[i] {
			t.Fatalf("failed unlearn moved theta[%d]: %v -> %v", i, theta[i], v)
		}
	}
	all := make([]int, 30)
	for i := range all {
		all[i] = i
	}
	if err := m.Unlearn(all); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("unlearn-everything err = %v, want ErrEmptyInput", err)
	}
	if m.Alive() != 30 {
		t.Fatalf("failed unlearn-everything mutated alive to %d", m.Alive())
	}
}

// The AttachEval delta path must track multiple unlearn rounds and stay
// bit-identical to a fresh index over the surviving rows.
func TestUnlearnEvalIndexMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	train := randomNeighborDataset(r, 60, 4, 3)
	queries := randomNeighborDataset(r, 15, 4, 3)
	m := NewUnlearnableKNN(3)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvalPredictions(); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatal("EvalPredictions before AttachEval must error")
	}
	if err := m.AttachEval(queries, 2); err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, train.Len())
	for i := range alive {
		alive[i] = true
	}
	rounds := [][]int{{3, 17, 17, 41}, {0, 1, 2}, {59, 58}, {20, 21, 22, 23, 24, 25, 26}}
	for _, rm := range rounds {
		if err := m.Unlearn(rm); err != nil {
			t.Fatal(err)
		}
		for _, r := range rm {
			alive[r] = false
		}
		var keep []int
		for i, a := range alive {
			if a {
				keep = append(keep, i)
			}
		}
		fresh, err := NewNeighborIndex(train.Subset(keep), queries, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := fresh.PredictBatch(m.K)
		got, err := m.EvalPredictions()
		if err != nil {
			t.Fatal(err)
		}
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("after unlearning %v: eval pred[%d] = %d, rebuild %d", rm, q, got[q], want[q])
			}
		}
		acc, err := m.EvalAccuracy()
		if err != nil {
			t.Fatal(err)
		}
		if want := Accuracy(queries.Y, want); acc != want {
			t.Fatalf("EvalAccuracy = %v, rebuild %v", acc, want)
		}
	}
	// a failed unlearn must leave the eval index usable and unchanged
	before, err := m.EvalPredictions()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Unlearn([]int{5, 1000}); !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("bad unlearn err = %v", err)
	}
	after, err := m.EvalPredictions()
	if err != nil {
		t.Fatal(err)
	}
	for q := range before {
		if after[q] != before[q] {
			t.Fatalf("failed unlearn changed eval pred[%d]", q)
		}
	}
}
