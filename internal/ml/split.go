package ml

import (
	"fmt"
	"math/rand"
)

// TrainTestSplit shuffles the dataset with the given seed and splits it into
// a training set of (1-testFrac) and a test set of testFrac of the rows.
func TrainTestSplit(d *Dataset, testFrac float64, seed int64) (*Dataset, *Dataset, error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: testFrac must be in (0,1), got %v", testFrac)
	}
	n := d.Len()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	if nTest >= n {
		return nil, nil, fmt.Errorf("ml: split leaves no training rows (n=%d, testFrac=%v)", n, testFrac)
	}
	return d.Subset(perm[nTest:]), d.Subset(perm[:nTest]), nil
}

// KFold yields k deterministic cross-validation folds as (train, valid)
// index pairs over a dataset of n rows.
func KFold(n, k int, seed int64) ([][]int, [][]int, error) {
	if k < 2 || k > n {
		return nil, nil, fmt.Errorf("ml: k must be in [2,%d], got %d", n, k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	trains := make([][]int, k)
	valids := make([][]int, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		valids[f] = append([]int(nil), perm[lo:hi]...)
		trains[f] = append(append([]int(nil), perm[:lo]...), perm[hi:]...)
	}
	return trains, valids, nil
}

// CrossValAccuracy runs k-fold cross validation of a classifier factory and
// returns the mean validation accuracy.
func CrossValAccuracy(newModel func() Classifier, d *Dataset, k int, seed int64) (float64, error) {
	trains, valids, err := KFold(d.Len(), k, seed)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for f := range trains {
		m := newModel()
		acc, err := EvaluateAccuracy(m, d.Subset(trains[f]), d.Subset(valids[f]))
		if err != nil {
			return 0, err
		}
		sum += acc
	}
	return sum / float64(len(trains)), nil
}
