package ml

import (
	"fmt"
	"math"
	"sort"

	"nde/internal/linalg"
)

// KNN is a k-nearest-neighbors classifier under Euclidean distance. Ties in
// the vote break toward the smaller label; ties in distance break toward the
// smaller training index, so predictions are fully deterministic.
//
// Internally all ranking happens on squared distances (sqrt is monotone, so
// the order is identical and the per-pair sqrt is skipped), neighbor order
// comes from an explicit (distance, index) comparator rather than a stable
// sort, and votes are tallied in a label-indexed slice. Batch workloads
// should go through PredictBatch or a NeighborIndex, which compute all
// query×train distances through the batched linalg kernel.
type KNN struct {
	K     int
	train *Dataset
	nc    int // cached NumClasses of train
}

// NewKNN returns a kNN classifier with the given k (k >= 1).
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorizes the training set.
func (m *KNN) Fit(d *Dataset) error {
	if m.K < 1 {
		return fmt.Errorf("ml: kNN requires K >= 1, got %d", m.K)
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: kNN cannot fit an empty dataset")
	}
	m.train = d
	m.nc = d.NumClasses()
	return nil
}

// Neighbors returns the indices of all training points sorted by ascending
// distance to x (distance ties break by index). The slice is freshly
// allocated.
func (m *KNN) Neighbors(x []float64) []int {
	n := m.train.Len()
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = SquaredDistance(m.train.Row(i), x)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Sort(&distOrder{d2: d2, idx: idx})
	return idx
}

// topK returns the k nearest training indices to x without sorting the
// full training set: quickselect over (squared distance, index) pairs.
func (m *KNN) topK(x []float64, k int) []distIdx {
	n := m.train.Len()
	if k > n {
		k = n
	}
	pairs := make([]distIdx, n)
	for i := 0; i < n; i++ {
		pairs[i] = distIdx{d: SquaredDistance(m.train.Row(i), x), i: i}
	}
	selectK(pairs, k)
	return pairs[:k]
}

// Predict returns the majority label among the k nearest training points.
func (m *KNN) Predict(x []float64) int {
	if m.train == nil {
		panic("ml: Predict before Fit")
	}
	votes := make([]int, m.nc)
	for _, p := range m.topK(x, m.K) {
		y := m.train.Y[p.i]
		if y >= len(votes) { // labels mutated after Fit; grow defensively
			votes = append(votes, make([]int, y+1-len(votes))...)
		}
		votes[y]++
	}
	best, bestVotes := 0, -1
	for y, v := range votes {
		if v > bestVotes {
			best, bestVotes = y, v
		}
	}
	return best
}

// PredictBatch classifies every row of queries, computing all distances at
// once through the batched kernel on the shared pool (workers <= 0 =
// auto). Predictions are identical to calling Predict row by row.
func (m *KNN) PredictBatch(queries *Dataset, workers int) ([]int, error) {
	if m.train == nil {
		return nil, fmt.Errorf("ml: PredictBatch before Fit")
	}
	ix, err := NewNeighborIndex(m.train, queries, workers)
	if err != nil {
		return nil, err
	}
	return ix.PredictBatch(m.K), nil
}

// Proba returns the vote fractions over classes among the k nearest points.
func (m *KNN) Proba(x []float64) []float64 {
	if m.train == nil {
		panic("ml: Proba before Fit")
	}
	nc := m.train.NumClasses()
	out := make([]float64, nc)
	k := m.K
	if k > m.train.Len() {
		k = m.train.Len()
	}
	for _, p := range m.topK(x, k) {
		out[m.train.Y[p.i]]++
	}
	linalg.Scale(1/float64(k), out)
	return out
}

// EuclideanDistance returns the L2 distance between two equal-length vectors.
func EuclideanDistance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}
