package ml

import (
	"fmt"
	"math"
	"sort"

	"nde/internal/linalg"
)

// KNN is a k-nearest-neighbors classifier under Euclidean distance. Ties in
// the vote break toward the smaller label; ties in distance break toward the
// smaller training index, so predictions are fully deterministic.
type KNN struct {
	K     int
	train *Dataset
}

// NewKNN returns a kNN classifier with the given k (k >= 1).
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorizes the training set.
func (m *KNN) Fit(d *Dataset) error {
	if m.K < 1 {
		return fmt.Errorf("ml: kNN requires K >= 1, got %d", m.K)
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: kNN cannot fit an empty dataset")
	}
	m.train = d
	return nil
}

// Neighbors returns the indices of all training points sorted by ascending
// distance to x (distance ties break by index). The slice is freshly
// allocated.
func (m *KNN) Neighbors(x []float64) []int {
	n := m.train.Len()
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		dists[i] = EuclideanDistance(m.train.Row(i), x)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return dists[idx[a]] < dists[idx[b]] })
	return idx
}

// Predict returns the majority label among the k nearest training points.
func (m *KNN) Predict(x []float64) int {
	if m.train == nil {
		panic("ml: Predict before Fit")
	}
	order := m.Neighbors(x)
	k := m.K
	if k > len(order) {
		k = len(order)
	}
	votes := make(map[int]int)
	for _, i := range order[:k] {
		votes[m.train.Y[i]]++
	}
	best, bestVotes := 0, -1
	labels := make([]int, 0, len(votes))
	for y := range votes {
		labels = append(labels, y)
	}
	sort.Ints(labels)
	for _, y := range labels {
		if votes[y] > bestVotes {
			best, bestVotes = y, votes[y]
		}
	}
	return best
}

// Proba returns the vote fractions over classes among the k nearest points.
func (m *KNN) Proba(x []float64) []float64 {
	if m.train == nil {
		panic("ml: Proba before Fit")
	}
	nc := m.train.NumClasses()
	out := make([]float64, nc)
	order := m.Neighbors(x)
	k := m.K
	if k > len(order) {
		k = len(order)
	}
	for _, i := range order[:k] {
		out[m.train.Y[i]]++
	}
	linalg.Scale(1/float64(k), out)
	return out
}

// EuclideanDistance returns the L2 distance between two equal-length vectors.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: distance dims %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
