package ml

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of positions where pred matches truth.
func Accuracy(truth, pred []int) float64 {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("ml: Accuracy lengths %d vs %d", len(truth), len(pred)))
	}
	if len(truth) == 0 {
		return 0
	}
	correct := 0
	for i := range truth {
		if truth[i] == pred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

// ConfusionCounts holds binary confusion-matrix entries for a positive class.
type ConfusionCounts struct {
	TP, FP, TN, FN int
}

// Confusion tallies binary confusion counts treating pos as the positive class.
func Confusion(truth, pred []int, pos int) ConfusionCounts {
	var c ConfusionCounts
	for i := range truth {
		switch {
		case truth[i] == pos && pred[i] == pos:
			c.TP++
		case truth[i] == pos && pred[i] != pos:
			c.FN++
		case truth[i] != pos && pred[i] == pos:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c ConfusionCounts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN) (the true-positive rate), or 0 when undefined.
func (c ConfusionCounts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns FP/(FP+TN) (the false-positive rate), or 0 when undefined.
func (c ConfusionCounts) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// F1 returns the binary F1 score for the positive class pos.
func F1(truth, pred []int, pos int) float64 {
	c := Confusion(truth, pred, pos)
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages the per-class F1 over all classes present in truth.
func MacroF1(truth, pred []int) float64 {
	present := make(map[int]bool)
	for _, y := range truth {
		present[y] = true
	}
	classes := make([]int, 0, len(present))
	for c := range present {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	if len(classes) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range classes {
		sum += F1(truth, pred, c)
	}
	return sum / float64(len(classes))
}

// LogLoss returns the mean negative log likelihood given per-example
// probability vectors.
func LogLoss(truth []int, probs [][]float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	const eps = 1e-15
	sum := 0.0
	for i, y := range truth {
		p := probs[i][y]
		if p < eps {
			p = eps
		}
		sum -= math.Log(p)
	}
	return sum / float64(len(truth))
}

// groupIndices partitions example indices by group value.
func groupIndices(groups []string) map[string][]int {
	out := make(map[string][]int)
	for i, g := range groups {
		out[g] = append(out[g], i)
	}
	return out
}

func take(xs []int, idx []int) []int {
	out := make([]int, len(idx))
	for o, i := range idx {
		out[o] = xs[i]
	}
	return out
}

// EqualizedOddsDifference returns the fairness violation under equalized
// odds: the maximum over {TPR, FPR} of the largest pairwise gap between
// groups, treating pos as the positive class. Zero means perfectly fair.
func EqualizedOddsDifference(truth, pred []int, groups []string, pos int) float64 {
	byGroup := groupIndices(groups)
	var tprs, fprs []float64
	keys := sortedKeys(byGroup)
	for _, g := range keys {
		idx := byGroup[g]
		c := Confusion(take(truth, idx), take(pred, idx), pos)
		tprs = append(tprs, c.Recall())
		fprs = append(fprs, c.FPR())
	}
	return math.Max(maxGap(tprs), maxGap(fprs))
}

// PredictiveParityDifference returns the largest pairwise gap in precision
// (positive predictive value) between groups. Zero means parity.
func PredictiveParityDifference(truth, pred []int, groups []string, pos int) float64 {
	byGroup := groupIndices(groups)
	var precs []float64
	for _, g := range sortedKeys(byGroup) {
		idx := byGroup[g]
		c := Confusion(take(truth, idx), take(pred, idx), pos)
		precs = append(precs, c.Precision())
	}
	return maxGap(precs)
}

// DemographicParityDifference returns the largest pairwise gap in positive-
// prediction rate between groups.
func DemographicParityDifference(pred []int, groups []string, pos int) float64 {
	byGroup := groupIndices(groups)
	var rates []float64
	for _, g := range sortedKeys(byGroup) {
		idx := byGroup[g]
		n := 0
		for _, i := range idx {
			if pred[i] == pos {
				n++
			}
		}
		rates = append(rates, float64(n)/float64(len(idx)))
	}
	return maxGap(rates)
}

// PredictionEntropy is the Shannon entropy (nats) of the empirical label
// distribution of pred — the stability metric shown in the tutorial's
// Figure 1 quality panel.
func PredictionEntropy(pred []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, y := range pred {
		counts[y]++
	}
	// Sum in sorted label order: float rounding is order-sensitive, and
	// map iteration order would make the entropy vary run to run.
	labels := make([]int, 0, len(counts))
	for y := range counts {
		labels = append(labels, y)
	}
	sort.Ints(labels)
	h := 0.0
	for _, y := range labels {
		p := float64(counts[y]) / float64(len(pred))
		h -= p * math.Log(p)
	}
	return h
}

func sortedKeys(m map[string][]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func maxGap(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// QualityReport bundles the Figure-1 quality panel: correctness, fairness
// and stability metrics of one model evaluation.
type QualityReport struct {
	Accuracy         float64
	F1               float64
	EqualizedOdds    float64
	PredictiveParity float64
	Entropy          float64
}

// Report computes the full quality panel for predictions on a dataset.
// Fairness entries are zero when the dataset carries no groups.
func Report(d *Dataset, pred []int, pos int) QualityReport {
	r := QualityReport{
		Accuracy: Accuracy(d.Y, pred),
		F1:       F1(d.Y, pred, pos),
		Entropy:  PredictionEntropy(pred),
	}
	if len(d.Groups) == len(d.Y) && len(d.Groups) > 0 {
		r.EqualizedOdds = EqualizedOddsDifference(d.Y, pred, d.Groups, pos)
		r.PredictiveParity = PredictiveParityDifference(d.Y, pred, d.Groups, pos)
	}
	return r
}
