package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCAUCPerfectAndRandom(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	perfect, err := ROCAUC(truth, []float64{0.1, 0.2, 0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if perfect != 1 {
		t.Errorf("perfect AUC = %v", perfect)
	}
	inverted, err := ROCAUC(truth, []float64{0.9, 0.8, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if inverted != 0 {
		t.Errorf("inverted AUC = %v", inverted)
	}
	constant, err := ROCAUC(truth, []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if constant != 0.5 {
		t.Errorf("constant-score AUC = %v", constant)
	}
}

func TestROCAUCErrors(t *testing.T) {
	if _, err := ROCAUC([]int{1, 1}, []float64{0.5, 0.6}); err == nil {
		t.Error("expected error with a single class")
	}
	if _, err := ROCAUC([]int{0, 2}, []float64{0.5, 0.6}); err == nil {
		t.Error("expected error for non-binary labels")
	}
	if _, err := ROCAUC([]int{0}, []float64{0.5, 0.6}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

// Property: AUC equals the exhaustive pairwise statistic
// P(score_pos > score_neg) + 0.5 P(tie).
func TestQuickROCAUCEqualsPairwise(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(30)
		truth := make([]int, n)
		scores := make([]float64, n)
		hasPos, hasNeg := false, false
		for i := range truth {
			truth[i] = r.Intn(2)
			scores[i] = float64(r.Intn(6)) / 5 // coarse grid forces ties
			if truth[i] == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		auc, err := ROCAUC(truth, scores)
		if err != nil {
			return false
		}
		wins, ties, pairs := 0.0, 0.0, 0.0
		for i := range truth {
			if truth[i] != 1 {
				continue
			}
			for j := range truth {
				if truth[j] != 0 {
					continue
				}
				pairs++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					ties++
				}
			}
		}
		want := (wins + ties/2) / pairs
		return math.Abs(auc-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBrierScore(t *testing.T) {
	got, err := BrierScore([]int{1, 0}, []float64{0.8, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.04 + 0.09) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Brier = %v, want %v", got, want)
	}
	if _, err := BrierScore(nil, nil); err == nil {
		t.Error("expected error for empty inputs")
	}
	if _, err := BrierScore([]int{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestProbaScoresWithModel(t *testing.T) {
	train := blobs(150, 2.5, 601)
	test := blobs(60, 2.5, 602)
	m := NewLogisticRegression()
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := ProbaScores(m, test)
	auc, err := ROCAUC(test.Y, scores)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.95 {
		t.Errorf("separable-data AUC = %v", auc)
	}
	brier, err := BrierScore(test.Y, scores)
	if err != nil {
		t.Fatal(err)
	}
	if brier > 0.1 {
		t.Errorf("separable-data Brier = %v", brier)
	}
}
