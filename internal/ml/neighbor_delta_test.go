package ml

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"nde/internal/linalg"
	"nde/internal/nderr"
)

// rebuildIndex is the determinism oracle: a fresh index over the derived
// index's own training data, computed from scratch.
func rebuildIndex(t *testing.T, derived *NeighborIndex, workers int) *NeighborIndex {
	t.Helper()
	fresh, err := NewNeighborIndex(derived.Train, derived.Queries, workers)
	if err != nil {
		t.Fatal(err)
	}
	return fresh
}

// assertIndexBitIdentical checks every observable of the derived index —
// D2, Order, TopK, PredictBatch — against the rebuild oracle, bit for bit.
func assertIndexBitIdentical(t *testing.T, derived, fresh *NeighborIndex, k int) {
	t.Helper()
	dd, fd := derived.D2(), fresh.D2()
	if dd.Rows != fd.Rows || dd.Cols != fd.Cols {
		t.Fatalf("D2 shape %dx%d vs rebuild %dx%d", dd.Rows, dd.Cols, fd.Rows, fd.Cols)
	}
	for i, v := range dd.Data {
		if math.Float64bits(v) != math.Float64bits(fd.Data[i]) {
			t.Fatalf("D2[%d] = %x, rebuild %x", i, math.Float64bits(v), math.Float64bits(fd.Data[i]))
		}
	}
	nq := derived.Queries.Len()
	for q := 0; q < nq; q++ {
		do, fo := derived.Order(q), fresh.Order(q)
		for j := range fo {
			if do[j] != fo[j] {
				t.Fatalf("Order(%d)[%d] = %d, rebuild %d", q, j, do[j], fo[j])
			}
		}
		dt, ft := derived.TopK(q, k), fresh.TopK(q, k)
		for j := range ft {
			if dt[j] != ft[j] {
				t.Fatalf("TopK(%d,%d)[%d] = %d, rebuild %d", q, k, j, dt[j], ft[j])
			}
		}
	}
	dp, fp := derived.PredictBatch(k), fresh.PredictBatch(k)
	for q := range fp {
		if dp[q] != fp[q] {
			t.Fatalf("PredictBatch[%d] = %d, rebuild %d", q, dp[q], fp[q])
		}
	}
}

func TestRemoveRowsBitIdenticalToRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	train := randomNeighborDataset(r, 60, 5, 3)
	queries := randomNeighborDataset(r, 17, 5, 3)
	ix, err := NewNeighborIndex(train, queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix.PredictBatch(3) // warm the top-k cache so derivation inherits from it

	for _, rm := range [][]int{
		{0},
		{59},
		{5, 5, 12, 3, 5}, // duplicates tolerated
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, // triggers compaction
	} {
		child, err := ix.RemoveRows(rm)
		if err != nil {
			t.Fatal(err)
		}
		assertIndexBitIdentical(t, child, rebuildIndex(t, child, 1), 3)
	}
}

func TestAppendRowsBitIdenticalToRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	train := randomNeighborDataset(r, 40, 4, 3)
	queries := randomNeighborDataset(r, 11, 4, 3)
	ix, err := NewNeighborIndex(train, queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix.PredictBatch(4)

	block := randomNeighborDataset(r, 7, 4, 3)
	child, err := ix.AppendRows(block.X, block.Y)
	if err != nil {
		t.Fatal(err)
	}
	if child.Train.Len() != 47 {
		t.Fatalf("appended train size = %d, want 47", child.Train.Len())
	}
	assertIndexBitIdentical(t, child, rebuildIndex(t, child, 1), 4)

	// a second append chains on the first (extraD2 HConcat + order merge)
	block2 := randomNeighborDataset(r, 5, 4, 3)
	grand, err := child.AppendRows(block2.X, block2.Y)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexBitIdentical(t, grand, rebuildIndex(t, grand, 1), 4)
}

// Property: arbitrary remove/append chains stay bit-identical to the
// rebuild oracle at every step, across worker counts, through compactions.
func TestDeltaChainPropertyBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r := rand.New(rand.NewSource(100 + int64(workers)))
		for trial := 0; trial < 3; trial++ {
			dim := 3 + r.Intn(3)
			train := randomNeighborDataset(r, 50+r.Intn(30), dim, 3)
			queries := randomNeighborDataset(r, 8+r.Intn(8), dim, 3)
			cur, err := NewNeighborIndex(train, queries, workers)
			if err != nil {
				t.Fatal(err)
			}
			if trial%2 == 0 {
				cur.Order(0) // exercise the walk-collected compaction arm too
			}
			cur.PredictBatch(3)
			sawCompact := false
			for step := 0; step < 8; step++ {
				n := cur.Train.Len()
				if r.Intn(3) > 0 && n > 10 {
					rm := make([]int, 1+r.Intn(n/4))
					for i := range rm {
						rm[i] = r.Intn(n)
					}
					next, err := cur.RemoveRows(rm)
					if err != nil {
						t.Fatal(err)
					}
					cur = next
				} else {
					block := randomNeighborDataset(r, 1+r.Intn(6), dim, 3)
					next, err := cur.AppendRows(block.X, block.Y)
					if err != nil {
						t.Fatal(err)
					}
					cur = next
				}
				if !cur.Derived() {
					sawCompact = true
				}
				assertIndexBitIdentical(t, cur, rebuildIndex(t, cur, workers), 3)
			}
			if !sawCompact && testing.Verbose() {
				t.Logf("workers=%d trial=%d: chain never compacted", workers, trial)
			}
		}
	}
}

func TestRemoveRowsEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	train := randomNeighborDataset(r, 12, 3, 2)
	queries := randomNeighborDataset(r, 4, 3, 2)
	ix, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same, err := ix.RemoveRows(nil); err != nil || same != ix {
		t.Fatalf("empty removal: got (%p, %v), want the receiver", same, err)
	}
	if _, err := ix.RemoveRows([]int{12}); !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("out-of-range removal err = %v, want ErrDegenerateInput", err)
	}
	if _, err := ix.RemoveRows([]int{-1}); !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("negative removal err = %v, want ErrDegenerateInput", err)
	}
	all := make([]int, 12)
	for i := range all {
		all[i] = i
	}
	if _, err := ix.RemoveRows(all); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("remove-everything err = %v, want ErrEmptyInput", err)
	}
	// duplicates must not double-remove: 12 - 2 distinct = 10
	child, err := ix.RemoveRows([]int{3, 3, 3, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if child.Train.Len() != 10 {
		t.Fatalf("after dup removal train = %d rows, want 10", child.Train.Len())
	}
}

func TestAppendRowsErrors(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	train := randomNeighborDataset(r, 10, 3, 2)
	queries := randomNeighborDataset(r, 4, 3, 2)
	ix, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AppendRows(nil, nil); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("nil block err = %v, want ErrEmptyInput", err)
	}
	bad := linalg.NewMatrix(2, 4) // wrong dim
	if _, err := ix.AppendRows(bad, []int{0, 1}); !errors.Is(err, nderr.ErrShapeMismatch) {
		t.Fatalf("dim mismatch err = %v, want ErrShapeMismatch", err)
	}
	x := linalg.NewMatrix(2, 3)
	if _, err := ix.AppendRows(x, []int{0}); !errors.Is(err, nderr.ErrShapeMismatch) {
		t.Fatalf("label-count mismatch err = %v, want ErrShapeMismatch", err)
	}
	if _, err := ix.AppendRows(x, []int{0, -2}); !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("negative label err = %v, want ErrDegenerateInput", err)
	}
	x.Set(1, 1, math.NaN())
	if _, err := ix.AppendRows(x, []int{0, 1}); !errors.Is(err, nderr.ErrNonFinite) {
		t.Fatalf("NaN block err = %v, want ErrNonFinite", err)
	}
}

// Satellite: k <= 0 and k > n behave identically across the exact, IVF,
// and auto search paths — clamping in TopK, ErrBadK in TopKChecked.
func TestTopKClampAndErrorsAcrossModes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	train := randomNeighborDataset(r, 64, 4, 2)
	queries := randomNeighborDataset(r, 6, 4, 2)
	n := train.Len()
	for _, mode := range []SearchMode{SearchExact, SearchIVF, SearchAuto} {
		ix, err := NewNeighborIndexSearch(train, queries, 1, SearchConfig{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if got := ix.TopK(0, 0); got != nil {
			t.Errorf("mode %v: TopK(0,0) = %v, want nil", mode, got)
		}
		if got := ix.TopK(0, -4); got != nil {
			t.Errorf("mode %v: TopK(0,-4) = %v, want nil", mode, got)
		}
		if got := ix.TopK(0, n+5); len(got) != n {
			t.Errorf("mode %v: TopK(0,n+5) returned %d ids, want clamped %d", mode, len(got), n)
		}
		for _, k := range []int{0, -1, n + 1} {
			if _, err := ix.TopKChecked(0, k); !errors.Is(err, nderr.ErrBadK) {
				t.Errorf("mode %v: TopKChecked(0,%d) err = %v, want ErrBadK", mode, k, err)
			}
		}
		if _, err := ix.TopKChecked(-1, 3); !errors.Is(err, nderr.ErrDegenerateInput) {
			t.Errorf("mode %v: TopKChecked(-1,3) err = %v, want ErrDegenerateInput", mode, err)
		}
		if _, err := ix.TopKChecked(queries.Len(), 3); !errors.Is(err, nderr.ErrDegenerateInput) {
			t.Errorf("mode %v: TopKChecked(out-of-range) err = %v, want ErrDegenerateInput", mode, err)
		}
		got, err := ix.TopKChecked(1, 3)
		if err != nil || len(got) != 3 {
			t.Errorf("mode %v: TopKChecked(1,3) = (%v, %v), want 3 ids", mode, got, err)
		}
	}
}

// PredictBatchLabels must vote with the caller's labels, not the index's
// snapshot — the stale-label cache contract.
func TestPredictBatchLabelsOverridesSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	train := randomNeighborDataset(r, 30, 3, 2)
	queries := randomNeighborDataset(r, 9, 3, 2)
	ix, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	flipped := make([]int, train.Len())
	for i, y := range train.Y {
		flipped[i] = 1 - y
	}
	base, err := ix.PredictBatchLabels(3, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	flip, err := ix.PredictBatchLabels(3, flipped)
	if err != nil {
		t.Fatal(err)
	}
	for q := range base {
		if flip[q] != 1-base[q] {
			t.Fatalf("query %d: flipped labels predicted %d, want %d", q, flip[q], 1-base[q])
		}
	}
	if _, err := ix.PredictBatchLabels(3, flipped[:10]); !errors.Is(err, nderr.ErrShapeMismatch) {
		t.Fatalf("short labels err = %v, want ErrShapeMismatch", err)
	}
	if _, err := ix.PredictBatchLabels(3, append([]int{-1}, flipped[1:]...)); !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("negative label err = %v, want ErrDegenerateInput", err)
	}
}

// Concurrent derivations from one shared base must not race and must each
// match their own rebuild (the receiver is never mutated).
func TestConcurrentDerivationsShareBase(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	train := randomNeighborDataset(r, 80, 4, 3)
	queries := randomNeighborDataset(r, 12, 4, 3)
	base, err := NewNeighborIndex(train, queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	base.PredictBatch(3)
	const callers = 8
	errs := make(chan error, callers)
	children := make([]*NeighborIndex, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			child, err := base.RemoveRows([]int{c, c + 10, c + 20})
			children[c] = child
			errs <- err
		}(c)
	}
	for c := 0; c < callers; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for c, child := range children {
		if child.Train.Len() != 77 {
			t.Fatalf("caller %d: train = %d rows, want 77", c, child.Train.Len())
		}
		assertIndexBitIdentical(t, child, rebuildIndex(t, child, 1), 3)
	}
}
