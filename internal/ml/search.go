package ml

import (
	"sync"

	"nde/internal/ann"
	"nde/internal/linalg"
	"nde/internal/obs"
)

// SearchMode selects how a NeighborIndex answers top-k queries.
type SearchMode int

const (
	// SearchExact is the pre-existing exact path: float64 Gram-trick
	// distance matrix + quickselect. It is the determinism oracle — results
	// are bit-for-bit identical across worker counts and releases.
	SearchExact SearchMode = iota
	// SearchIVF answers TopK from the approximate IVF index
	// (internal/ann): float32 kernels, k-means partitions, nprobe lists
	// scanned per query. Sub-linear in the training size; recall < 1.
	SearchIVF
	// SearchAuto picks per index: exact below ExactThreshold training
	// rows, otherwise IVF — but only after certifying the configured
	// recall floor on a sample; if the floor cannot be certified the index
	// silently serves the exact path instead.
	SearchAuto
)

// String names the mode for logs and flags.
func (m SearchMode) String() string {
	switch m {
	case SearchIVF:
		return "ivf"
	case SearchAuto:
		return "auto"
	default:
		return "exact"
	}
}

// ParseSearchMode maps a flag string to a SearchMode ("exact", "ivf",
// "auto"); unknown strings report false.
func ParseSearchMode(s string) (SearchMode, bool) {
	switch s {
	case "exact", "":
		return SearchExact, true
	case "ivf":
		return SearchIVF, true
	case "auto":
		return SearchAuto, true
	}
	return SearchExact, false
}

// Defaults of the Auto-mode contract; SearchConfig zero values resolve to
// these.
const (
	// DefaultRecallFloor is the recall@k Auto mode certifies before it
	// serves approximate answers.
	DefaultRecallFloor = 0.95
	// DefaultExactThreshold is the training size below which Auto always
	// stays exact: small scans are faster than any index build.
	DefaultExactThreshold = 4096
	// DefaultCertifySample is how many sampled queries the certification
	// recall estimate uses.
	DefaultCertifySample = 16
	// DefaultCertifyK is the k the certification measures recall at.
	DefaultCertifyK = 10
)

// SearchConfig selects and tunes the neighbor-search backend of a
// NeighborIndex. The zero value is the exact path, so existing callers are
// untouched.
type SearchConfig struct {
	// Mode picks the backend (default SearchExact).
	Mode SearchMode
	// NLists is the IVF partition count (<= 0 = ~√n).
	NLists int
	// NProbe is the partitions scanned per query (<= 0 = NLists/8). Auto
	// mode may raise it while certifying the recall floor.
	NProbe int
	// Seed drives the deterministic k-means init and projection draw.
	Seed int64
	// ProjectDim > 0 routes probes through a random projection of this
	// dimensionality (high-d fallback); candidate ranking stays in the
	// original space.
	ProjectDim int
	// RecallFloor is the recall@CertifyK Auto must certify before serving
	// approximate answers (<= 0 = DefaultRecallFloor).
	RecallFloor float64
	// ExactThreshold is the training size below which Auto stays exact
	// (<= 0 = DefaultExactThreshold).
	ExactThreshold int
}

// annConfig maps the search knobs onto the ann build configuration.
func (c SearchConfig) annConfig(workers int) ann.Config {
	return ann.Config{
		NLists:     c.NLists,
		NProbe:     c.NProbe,
		Seed:       c.Seed,
		ProjectDim: c.ProjectDim,
		Workers:    workers,
	}
}

// recallFloor resolves the certification floor.
func (c SearchConfig) recallFloor() float64 {
	if c.RecallFloor <= 0 {
		return DefaultRecallFloor
	}
	return c.RecallFloor
}

// exactThreshold resolves the Auto exact/IVF size boundary.
func (c SearchConfig) exactThreshold() int {
	if c.ExactThreshold <= 0 {
		return DefaultExactThreshold
	}
	return c.ExactThreshold
}

// Fingerprint hashes every result-relevant knob, for cache keys: two
// indexes over the same data but different search configs must never
// alias.
func (c SearchConfig) Fingerprint() uint64 {
	h := c.annConfig(0).Fingerprint()
	const prime64 = 1099511628211
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(int64(c.Mode)))
	mix(uint64(int64(c.exactThreshold())))
	mix(uint64(int64(c.recallFloor() * 1e6)))
	return h
}

// searchState is the lazily built ANN side of a NeighborIndex.
type searchState struct {
	once    sync.Once
	eff     SearchMode // resolved mode actually serving TopK
	ivf     *ann.Index
	recall  float64 // certification estimate (Auto mode; 1 when exact)
	q32Once sync.Once
	q32     *linalg.Matrix32 // float32 queries for probing
	scratch sync.Pool        // *ann.Scratch per concurrent caller
}

// ensureSearch resolves the effective mode once: builds the IVF index when
// the config asks for it, and in Auto mode certifies the recall floor —
// raising nprobe geometrically up to the full list count — before
// switching away from the exact oracle. Exact remains the fallback
// whenever the index cannot be built or certified.
func (ix *NeighborIndex) ensureSearch() {
	ix.search.once.Do(func() {
		st := &ix.search
		st.eff, st.recall = SearchExact, 1
		cfg := ix.Search
		if ix.delta != nil {
			// Derived indexes always serve exact: their value is reusing the
			// root's cached exact geometry, and an IVF build over the mutated
			// train would cost more than the delta saves (DESIGN §11).
			return
		}
		if cfg.Mode == SearchExact {
			return
		}
		if cfg.Mode == SearchAuto && ix.Train.Len() < cfg.exactThreshold() {
			obs.Inc("neighbor_ann_exact_fallback_total")
			return
		}
		sp := obs.StartSpan("neighbor.ann_build")
		sp.SetInt("train", int64(ix.Train.Len())).SetStr("mode", cfg.Mode.String())
		defer sp.End()
		ivf, err := ann.Build(ix.Train.X, cfg.annConfig(ix.Workers))
		if err != nil {
			// Train.X was validated at NewNeighborIndex time, but a caller
			// constructing the index literally can still get here; the
			// exact path handles whatever the build could not.
			obs.Inc("neighbor_ann_exact_fallback_total")
			return
		}
		if cfg.Mode == SearchAuto {
			floor := cfg.recallFloor()
			rec := ivf.EstimateRecall(DefaultCertifyK, DefaultCertifySample)
			for rec < floor && ivf.NProbe() < ivf.NLists() {
				ivf.SetNProbe(ivf.NProbe() * 2)
				rec = ivf.EstimateRecall(DefaultCertifyK, DefaultCertifySample)
			}
			st.recall = rec
			obs.SetGauge("neighbor_ann_certified_recall", rec)
			if rec < floor {
				obs.Inc("neighbor_ann_exact_fallback_total")
				return
			}
		}
		st.ivf = ivf
		st.eff = SearchIVF
		if obs.Enabled() {
			obs.SetGauge("neighbor_ann_nprobe", float64(ivf.NProbe()))
		}
	})
}

// EffectiveMode reports which backend actually serves TopK after the
// Auto-mode resolution: SearchExact or SearchIVF. Resolving may build and
// certify the ANN index on first call.
func (ix *NeighborIndex) EffectiveMode() SearchMode {
	ix.ensureSearch()
	return ix.search.eff
}

// RecallEstimate returns the certified recall estimate of the serving
// backend: 1 for the exact path, the sampled recall@10 for IVF under Auto,
// and 0 for explicit IVF mode (which skips certification — the caller
// asked for speed unconditionally). Like EffectiveMode, it resolves the
// index on first call.
func (ix *NeighborIndex) RecallEstimate() float64 {
	ix.ensureSearch()
	if ix.search.eff == SearchIVF && ix.Search.Mode == SearchIVF {
		return 0
	}
	return ix.search.recall
}

// queries32 lazily converts the query matrix to float32 for probing.
func (ix *NeighborIndex) queries32() *linalg.Matrix32 {
	ix.search.q32Once.Do(func() {
		ix.search.q32 = ix.Queries.X.ToMatrix32()
	})
	return ix.search.q32
}

// annScratch checks a probe scratch out of the pool.
func (ix *NeighborIndex) annScratch() *ann.Scratch {
	if s, ok := ix.search.scratch.Get().(*ann.Scratch); ok {
		return s
	}
	return &ann.Scratch{}
}

// annTopK answers one top-k query from the IVF index, or reports ok=false
// when the probed partitions held fewer than k rows — the per-query
// exactness-fallback contract (the caller reruns the query exactly).
// k must already be clamped to the training size.
func (ix *NeighborIndex) annTopK(qi, k int, scratch *ann.Scratch) ([]int, bool) {
	out := ix.search.ivf.TopK(ix.queries32().Row(qi), k, scratch)
	if len(out) < k {
		obs.Inc("neighbor_ann_partial_fallback_total")
		return nil, false
	}
	return out, true
}
