// Package ml implements the machine-learning substrate of nde: feature-
// matrix datasets, a family of classifiers and regressors trained from
// scratch (k-nearest neighbors, logistic and linear regression, linear SVM,
// naive Bayes, decision trees), model-quality metrics — including the
// fairness and stability metrics of the tutorial's Figure 1 — and
// deterministic data splits. Everything is seeded and reproducible.
package ml

import (
	"fmt"

	"nde/internal/linalg"
	"nde/internal/nderr"
)

// Dataset pairs a dense feature matrix with integer class labels and an
// optional protected-group attribute per row (used by fairness metrics).
type Dataset struct {
	X      *linalg.Matrix
	Y      []int
	Groups []string // optional; empty or len == rows
}

// NewDataset validates shapes and feature finiteness and builds a dataset.
// NaN or ±Inf features are rejected with an error wrapping
// nderr.ErrNonFinite: every distance, dot product, and ranking downstream
// silently corrupts on non-finite values, so they stop at this boundary.
func NewDataset(x *linalg.Matrix, y []int) (*Dataset, error) {
	if x == nil {
		return nil, nderr.Empty("ml: nil feature matrix")
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("ml: %d feature rows vs %d labels: %w", x.Rows, len(y), nderr.ErrShapeMismatch)
	}
	for i, v := range y {
		if v < 0 {
			return nil, fmt.Errorf("ml: negative label %d at row %d: %w", v, i, nderr.ErrDegenerateInput)
		}
	}
	if err := x.CheckFinite("features"); err != nil {
		return nil, fmt.Errorf("ml: %w", err)
	}
	return &Dataset{X: x, Y: y}, nil
}

// CheckFinite re-validates the feature matrix of a dataset that may have
// been mutated (or literal-constructed) after NewDataset.
func (d *Dataset) CheckFinite() error {
	if d == nil || d.X == nil {
		return nderr.Empty("ml: nil dataset")
	}
	return d.X.CheckFinite("features")
}

// CheckTrainable reports whether d can serve as a training set for the
// importance and learning methods: non-nil, non-empty, finite features, and
// at least two label classes. Violations return wrapped nderr sentinels.
func (d *Dataset) CheckTrainable(what string) error {
	if d == nil || d.X == nil {
		return nderr.Empty("ml: " + what + " is nil")
	}
	if d.Len() == 0 {
		return nderr.Empty("ml: " + what + " has no rows")
	}
	if err := d.X.CheckFinite(what + " features"); err != nil {
		return fmt.Errorf("ml: %w", err)
	}
	first := d.Y[0]
	single := true
	for _, y := range d.Y[1:] {
		if y != first {
			single = false
			break
		}
	}
	if single {
		return nderr.SingleClass("ml: "+what, d.Len())
	}
	return nil
}

// WithGroups attaches a protected-group attribute; its length must match.
func (d *Dataset) WithGroups(groups []string) (*Dataset, error) {
	if len(groups) != d.Len() {
		return nil, fmt.Errorf("ml: %d groups vs %d rows", len(groups), d.Len())
	}
	return &Dataset{X: d.X, Y: d.Y, Groups: groups}, nil
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols }

// Row returns the feature vector of example i (shared backing).
func (d *Dataset) Row(i int) []float64 { return d.X.Row(i) }

// NumClasses returns 1 + the maximum label (labels are 0..k-1).
func (d *Dataset) NumClasses() int {
	k := 0
	for _, y := range d.Y {
		if y+1 > k {
			k = y + 1
		}
	}
	return k
}

// Subset returns a dataset with the rows at the given indices, in order.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := linalg.NewMatrix(len(idx), d.Dim())
	y := make([]int, len(idx))
	var groups []string
	if len(d.Groups) > 0 {
		groups = make([]string, len(idx))
	}
	for o, i := range idx {
		copy(x.Row(o), d.Row(i))
		y[o] = d.Y[i]
		if groups != nil {
			groups[o] = d.Groups[i]
		}
	}
	return &Dataset{X: x, Y: y, Groups: groups}
}

// Without returns the dataset with the given rows removed, plus the mapping
// from new row index to original row index.
func (d *Dataset) Without(remove map[int]bool) (*Dataset, []int) {
	var idx []int
	for i := 0; i < d.Len(); i++ {
		if !remove[i] {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx), idx
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		X:      d.X.Clone(),
		Y:      append([]int(nil), d.Y...),
		Groups: append([]string(nil), d.Groups...),
	}
}

// Classifier is a model that learns to map feature vectors to class labels.
type Classifier interface {
	// Fit trains the model on d, replacing any previous state.
	Fit(d *Dataset) error
	// Predict returns the predicted label for one feature vector.
	Predict(x []float64) int
}

// ProbabilisticClassifier additionally exposes class-probability estimates.
type ProbabilisticClassifier interface {
	Classifier
	// Proba returns one probability per class, summing to 1.
	Proba(x []float64) []float64
}

// PredictAll applies the classifier to every row of d.
func PredictAll(c Classifier, d *Dataset) []int {
	out := make([]int, d.Len())
	for i := range out {
		out[i] = c.Predict(d.Row(i))
	}
	return out
}

// EvaluateAccuracy trains a fresh fit of c on train and returns its accuracy
// on test. This is the utility function U(S) at the heart of all data-
// importance methods.
func EvaluateAccuracy(c Classifier, train, test *Dataset) (float64, error) {
	if train.Len() == 0 {
		// an untrained model predicts the empty-prior class 0
		correct := 0
		for _, y := range test.Y {
			if y == 0 {
				correct++
			}
		}
		return float64(correct) / float64(max(1, test.Len())), nil
	}
	if err := c.Fit(train); err != nil {
		return 0, err
	}
	return Accuracy(test.Y, PredictAll(c, test)), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
