package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1, 1}, []int{1, 1, 1, 0}); got != 0.5 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestConfusionAndDerived(t *testing.T) {
	truth := []int{1, 1, 0, 0, 1}
	pred := []int{1, 0, 1, 0, 1}
	c := Confusion(truth, pred, 1)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Errorf("Precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Errorf("Recall = %v", c.Recall())
	}
	if math.Abs(c.FPR()-0.5) > 1e-12 {
		t.Errorf("FPR = %v", c.FPR())
	}
	if math.Abs(F1(truth, pred, 1)-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", F1(truth, pred, 1))
	}
}

func TestPrecisionRecallUndefined(t *testing.T) {
	c := ConfusionCounts{}
	if c.Precision() != 0 || c.Recall() != 0 || c.FPR() != 0 {
		t.Error("undefined rates should be 0")
	}
	if F1([]int{0}, []int{0}, 1) != 0 {
		t.Error("F1 with no positives should be 0")
	}
}

func TestMacroF1(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 1, 1}
	if MacroF1(truth, pred) != 1 {
		t.Errorf("perfect MacroF1 = %v", MacroF1(truth, pred))
	}
	if MacroF1(nil, nil) != 0 {
		t.Error("empty MacroF1 should be 0")
	}
}

func TestLogLoss(t *testing.T) {
	probs := [][]float64{{0.2, 0.8}, {0.9, 0.1}}
	got := LogLoss([]int{1, 0}, probs)
	want := -(math.Log(0.8) + math.Log(0.9)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogLoss = %v, want %v", got, want)
	}
	if LogLoss(nil, nil) != 0 {
		t.Error("empty LogLoss should be 0")
	}
	// clamps zero probabilities instead of returning +Inf
	if math.IsInf(LogLoss([]int{1}, [][]float64{{1, 0}}), 1) {
		t.Error("LogLoss should clamp")
	}
}

func TestEqualizedOddsDifference(t *testing.T) {
	// group a: TPR 1, FPR 0. group b: TPR 0, FPR 1. violation = 1
	truth := []int{1, 0, 1, 0}
	pred := []int{1, 0, 0, 1}
	groups := []string{"a", "a", "b", "b"}
	if got := EqualizedOddsDifference(truth, pred, groups, 1); got != 1 {
		t.Errorf("EO diff = %v", got)
	}
	fair := []int{1, 0, 1, 0}
	if got := EqualizedOddsDifference(truth, fair, groups, 1); got != 0 {
		t.Errorf("fair EO diff = %v", got)
	}
	// single group: no gap by definition
	if got := EqualizedOddsDifference(truth, pred, []string{"x", "x", "x", "x"}, 1); got != 0 {
		t.Errorf("single-group EO = %v", got)
	}
}

func TestPredictiveParityDifference(t *testing.T) {
	// group a precision 1 (1 TP / 1 pos pred), group b precision 0
	truth := []int{1, 0, 0, 0}
	pred := []int{1, 0, 1, 0}
	groups := []string{"a", "a", "b", "b"}
	if got := PredictiveParityDifference(truth, pred, groups, 1); got != 1 {
		t.Errorf("PP diff = %v", got)
	}
}

func TestDemographicParityDifference(t *testing.T) {
	pred := []int{1, 1, 0, 0}
	groups := []string{"a", "a", "b", "b"}
	if got := DemographicParityDifference(pred, groups, 1); got != 1 {
		t.Errorf("DP diff = %v", got)
	}
	if got := DemographicParityDifference([]int{1, 0, 1, 0}, groups, 1); got != 0 {
		t.Errorf("balanced DP diff = %v", got)
	}
}

func TestPredictionEntropy(t *testing.T) {
	if PredictionEntropy([]int{1, 1, 1}) != 0 {
		t.Error("constant predictions should have zero entropy")
	}
	got := PredictionEntropy([]int{0, 1, 0, 1})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("uniform binary entropy = %v, want ln2", got)
	}
	if PredictionEntropy(nil) != 0 {
		t.Error("empty entropy should be 0")
	}
}

func TestReportIncludesFairnessOnlyWithGroups(t *testing.T) {
	d := blobs(20, 2, 1)
	pred := append([]int(nil), d.Y...)
	r := Report(d, pred, 1)
	if r.Accuracy != 1 || r.F1 != 1 || r.EqualizedOdds != 0 {
		t.Errorf("report = %+v", r)
	}
	groups := make([]string, d.Len())
	for i := range groups {
		groups[i] = []string{"a", "b"}[i%2]
	}
	dg, _ := d.WithGroups(groups)
	r2 := Report(dg, pred, 1)
	if r2.Accuracy != 1 {
		t.Errorf("report = %+v", r2)
	}
}

func TestTrainTestSplit(t *testing.T) {
	d := blobs(100, 1, 3)
	train, test, err := TrainTestSplit(d, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 75 || test.Len() != 25 {
		t.Errorf("split sizes = %d/%d", train.Len(), test.Len())
	}
	// determinism
	train2, test2, _ := TrainTestSplit(d, 0.25, 7)
	if linalg.MaxAbsDiff(train.X.Data, train2.X.Data) != 0 || linalg.MaxAbsDiff(test.X.Data, test2.X.Data) != 0 {
		t.Error("split not deterministic")
	}
	if _, _, err := TrainTestSplit(d, 1.5, 1); err == nil {
		t.Error("expected error for bad frac")
	}
}

func TestKFoldPartition(t *testing.T) {
	trains, valids, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trains) != 3 {
		t.Fatalf("folds = %d", len(trains))
	}
	seen := make(map[int]int)
	for f := range valids {
		if len(trains[f])+len(valids[f]) != 10 {
			t.Error("fold sizes wrong")
		}
		for _, i := range valids[f] {
			seen[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("row %d appears %d times in validation folds", i, seen[i])
		}
	}
	if _, _, err := KFold(3, 5, 1); err == nil {
		t.Error("expected error for k > n")
	}
}

func TestCrossValAccuracy(t *testing.T) {
	d := blobs(60, 3, 5)
	acc, err := CrossValAccuracy(func() Classifier { return NewKNN(3) }, d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("cv accuracy = %v", acc)
	}
}

// Property: accuracy is invariant under consistent permutation of truth and
// predictions, and bounded in [0,1].
func TestQuickAccuracyPermutationInvariant(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size%30) + 1
		truth := make([]int, n)
		pred := make([]int, n)
		for i := range truth {
			truth[i] = r.Intn(3)
			pred[i] = r.Intn(3)
		}
		a := Accuracy(truth, pred)
		perm := r.Perm(n)
		pt := make([]int, n)
		pp := make([]int, n)
		for i, p := range perm {
			pt[i], pp[i] = truth[p], pred[p]
		}
		return a >= 0 && a <= 1 && math.Abs(a-Accuracy(pt, pp)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: fairness differences are bounded in [0,1] and zero when all
// examples share a group.
func TestQuickFairnessBounds(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size%30) + 2
		truth := make([]int, n)
		pred := make([]int, n)
		groups := make([]string, n)
		for i := range truth {
			truth[i] = r.Intn(2)
			pred[i] = r.Intn(2)
			groups[i] = []string{"a", "b", "c"}[r.Intn(3)]
		}
		eo := EqualizedOddsDifference(truth, pred, groups, 1)
		pp := PredictiveParityDifference(truth, pred, groups, 1)
		dp := DemographicParityDifference(pred, groups, 1)
		if eo < 0 || eo > 1 || pp < 0 || pp > 1 || dp < 0 || dp > 1 {
			return false
		}
		same := make([]string, n)
		for i := range same {
			same[i] = "only"
		}
		return EqualizedOddsDifference(truth, pred, same, 1) == 0 &&
			PredictiveParityDifference(truth, pred, same, 1) == 0 &&
			DemographicParityDifference(pred, same, 1) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
