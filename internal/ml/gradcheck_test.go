package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
)

// regLogLoss computes the L2-regularized mean log loss at parameters
// (w, b) — the objective LogisticRegression.Fit descends.
func regLogLoss(d *Dataset, w []float64, b, l2 float64) float64 {
	sum := 0.0
	for i := 0; i < d.Len(); i++ {
		z := linalg.Dot(w, d.Row(i)) + b
		// log(1 + exp(-y*z)) with y in {-1,+1}, numerically stable
		yz := (2*float64(d.Y[i]) - 1) * z
		if yz > 0 {
			sum += math.Log1p(math.Exp(-yz))
		} else {
			sum += -yz + math.Log1p(math.Exp(yz))
		}
	}
	loss := sum / float64(d.Len())
	for _, v := range w {
		loss += l2 * v * v / 2
	}
	return loss
}

// Property: the analytic gradient used by Fit matches central finite
// differences of the objective at random parameter points.
func TestQuickLogisticGradientCheck(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := blobs(10+r.Intn(20), 1.5, seed)
		l2 := 0.01
		w := []float64{r.NormFloat64(), r.NormFloat64()}
		b := r.NormFloat64()

		// analytic gradient of the same objective
		gw := make([]float64, 2)
		gb := 0.0
		for i := 0; i < d.Len(); i++ {
			p := Sigmoid(linalg.Dot(w, d.Row(i)) + b)
			err := p - float64(d.Y[i])
			linalg.AXPY(err, d.Row(i), gw)
			gb += err
		}
		linalg.Scale(1/float64(d.Len()), gw)
		gb /= float64(d.Len())
		for j := range gw {
			gw[j] += l2 * w[j]
		}

		const h = 1e-6
		for j := 0; j < 2; j++ {
			wp := linalg.Clone(w)
			wm := linalg.Clone(w)
			wp[j] += h
			wm[j] -= h
			numeric := (regLogLoss(d, wp, b, l2) - regLogLoss(d, wm, b, l2)) / (2 * h)
			if math.Abs(numeric-gw[j]) > 1e-4 {
				return false
			}
		}
		numericB := (regLogLoss(d, w, b+h, l2) - regLogLoss(d, w, b-h, l2)) / (2 * h)
		return math.Abs(numericB-gb) < 1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: training strictly decreases the regularized objective relative
// to the zero initialization for any dataset with both classes present.
func TestQuickLogisticTrainingDecreasesLoss(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := blobs(10+r.Intn(30), 0.5+r.Float64()*2, seed)
		m := &LogisticRegression{LR: 0.5, Epochs: 100, L2: 1e-3}
		if err := m.Fit(d); err != nil {
			return false
		}
		initial := regLogLoss(d, []float64{0, 0}, 0, 1e-3)
		final := regLogLoss(d, m.Weights(), m.Intercept(), 1e-3)
		return final < initial
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
