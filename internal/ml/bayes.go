package ml

import (
	"fmt"
	"math"
)

// GaussianNB is a Gaussian naive Bayes classifier: each feature is modeled
// per class as an independent normal with variance smoothing.
type GaussianNB struct {
	VarSmoothing float64 // added to every variance (default 1e-9 of max var)

	classes  int
	priors   []float64   // log priors per class
	means    [][]float64 // [class][feature]
	variance [][]float64 // [class][feature]
}

// NewGaussianNB returns a Gaussian naive Bayes classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Fit estimates class priors and per-class feature means/variances.
func (m *GaussianNB) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: naive Bayes cannot fit an empty dataset")
	}
	nc, dim, n := d.NumClasses(), d.Dim(), d.Len()
	counts := make([]int, nc)
	means := make([][]float64, nc)
	vars := make([][]float64, nc)
	for c := 0; c < nc; c++ {
		means[c] = make([]float64, dim)
		vars[c] = make([]float64, dim)
	}
	for i := 0; i < n; i++ {
		c := d.Y[i]
		counts[c]++
		for j, v := range d.Row(i) {
			means[c][j] += v
		}
	}
	for c := 0; c < nc; c++ {
		if counts[c] > 0 {
			for j := range means[c] {
				means[c][j] /= float64(counts[c])
			}
		}
	}
	maxVar := 0.0
	for i := 0; i < n; i++ {
		c := d.Y[i]
		for j, v := range d.Row(i) {
			dv := v - means[c][j]
			vars[c][j] += dv * dv
		}
	}
	for c := 0; c < nc; c++ {
		if counts[c] > 0 {
			for j := range vars[c] {
				vars[c][j] /= float64(counts[c])
				maxVar = math.Max(maxVar, vars[c][j])
			}
		}
	}
	smooth := m.VarSmoothing
	if smooth <= 0 {
		smooth = 1e-9*maxVar + 1e-12
	}
	priors := make([]float64, nc)
	for c := 0; c < nc; c++ {
		if counts[c] == 0 {
			priors[c] = math.Inf(-1)
			continue
		}
		priors[c] = math.Log(float64(counts[c]) / float64(n))
		for j := range vars[c] {
			vars[c][j] += smooth
		}
	}
	m.classes, m.priors, m.means, m.variance = nc, priors, means, vars
	return nil
}

func (m *GaussianNB) logJoint(x []float64) []float64 {
	out := make([]float64, m.classes)
	for c := 0; c < m.classes; c++ {
		if math.IsInf(m.priors[c], -1) {
			out[c] = math.Inf(-1)
			continue
		}
		ll := m.priors[c]
		for j, v := range x {
			va := m.variance[c][j]
			dv := v - m.means[c][j]
			ll += -0.5*math.Log(2*math.Pi*va) - dv*dv/(2*va)
		}
		out[c] = ll
	}
	return out
}

// Predict returns the class with the highest posterior.
func (m *GaussianNB) Predict(x []float64) int {
	if m.means == nil {
		panic("ml: Predict before Fit")
	}
	lj := m.logJoint(x)
	best, bestV := 0, math.Inf(-1)
	for c, v := range lj {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Proba returns normalized posteriors via the log-sum-exp trick.
func (m *GaussianNB) Proba(x []float64) []float64 {
	if m.means == nil {
		panic("ml: Proba before Fit")
	}
	lj := m.logJoint(x)
	maxLL := math.Inf(-1)
	for _, v := range lj {
		maxLL = math.Max(maxLL, v)
	}
	sum := 0.0
	out := make([]float64, len(lj))
	for c, v := range lj {
		out[c] = math.Exp(v - maxLL)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// MultinomialNB is a multinomial naive Bayes classifier for count features
// (e.g. bag-of-words), with Laplace smoothing. Negative features are
// rejected at Fit time.
type MultinomialNB struct {
	Alpha float64 // Laplace smoothing (default 1)

	classes int
	priors  []float64
	logProb [][]float64 // [class][feature] log P(feature | class)
}

// NewMultinomialNB returns a multinomial NB with Laplace smoothing 1.
func NewMultinomialNB() *MultinomialNB { return &MultinomialNB{Alpha: 1} }

// Fit estimates per-class token distributions.
func (m *MultinomialNB) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: naive Bayes cannot fit an empty dataset")
	}
	alpha := m.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	nc, dim, n := d.NumClasses(), d.Dim(), d.Len()
	counts := make([]int, nc)
	tokens := make([][]float64, nc)
	for c := range tokens {
		tokens[c] = make([]float64, dim)
	}
	for i := 0; i < n; i++ {
		c := d.Y[i]
		counts[c]++
		for j, v := range d.Row(i) {
			if v < 0 {
				return fmt.Errorf("ml: multinomial NB requires non-negative features, got %v at (%d,%d)", v, i, j)
			}
			tokens[c][j] += v
		}
	}
	priors := make([]float64, nc)
	logProb := make([][]float64, nc)
	for c := 0; c < nc; c++ {
		logProb[c] = make([]float64, dim)
		if counts[c] == 0 {
			priors[c] = math.Inf(-1)
			continue
		}
		priors[c] = math.Log(float64(counts[c]) / float64(n))
		total := 0.0
		for _, v := range tokens[c] {
			total += v
		}
		denom := math.Log(total + alpha*float64(dim))
		for j, v := range tokens[c] {
			logProb[c][j] = math.Log(v+alpha) - denom
		}
	}
	m.classes, m.priors, m.logProb = nc, priors, logProb
	return nil
}

// Predict returns the class with the highest posterior.
func (m *MultinomialNB) Predict(x []float64) int {
	if m.logProb == nil {
		panic("ml: Predict before Fit")
	}
	best, bestV := 0, math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		if math.IsInf(m.priors[c], -1) {
			continue
		}
		ll := m.priors[c]
		for j, v := range x {
			ll += v * m.logProb[c][j]
		}
		if ll > bestV {
			best, bestV = c, ll
		}
	}
	return best
}
