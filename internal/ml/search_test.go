package ml

import (
	"math"
	"math/rand"
	"testing"

	"nde/internal/linalg"
)

// clusteredDataset draws n rows around c Gaussian blob centers — data with
// enough structure for IVF partitioning to be meaningful.
func clusteredDataset(r *rand.Rand, n, dim, c, classes int) *Dataset {
	centers := linalg.NewMatrix(c, dim)
	for i := range centers.Data {
		centers.Data[i] = r.NormFloat64() * 10
	}
	x := linalg.NewMatrix(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		ctr := centers.Row(r.Intn(c))
		row := x.Row(i)
		for j := range row {
			row[j] = ctr[j] + r.NormFloat64()
		}
		y[i] = r.Intn(classes)
	}
	d, _ := NewDataset(x, y)
	return d
}

// Bit-identity: Exact mode under the new Mode plumbing must match the
// default NeighborIndex (the pre-change behavior) exactly — same D2 bits,
// same orders, same top-k, same batch predictions — across worker counts.
func TestExactModeBitIdenticalToDefaultIndex(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	train := clusteredDataset(r, 120, 6, 5, 3)
	queries := clusteredDataset(r, 30, 6, 5, 3)
	base, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		ix, err := NewNeighborIndexSearch(train, queries, w, SearchConfig{Mode: SearchExact})
		if err != nil {
			t.Fatal(err)
		}
		if got := ix.EffectiveMode(); got != SearchExact {
			t.Fatalf("workers=%d: effective mode %v, want exact", w, got)
		}
		bd2, gd2 := base.D2(), ix.D2()
		for i := range bd2.Data {
			if math.Float64bits(bd2.Data[i]) != math.Float64bits(gd2.Data[i]) {
				t.Fatalf("workers=%d: D2 element %d differs bitwise", w, i)
			}
		}
		for q := 0; q < queries.Len(); q++ {
			bo, gg := base.Order(q), ix.Order(q)
			for i := range bo {
				if bo[i] != gg[i] {
					t.Fatalf("workers=%d query %d: order rank %d differs", w, q, i)
				}
			}
			bt, gt := base.TopK(q, 7), ix.TopK(q, 7)
			for i := range bt {
				if bt[i] != gt[i] {
					t.Fatalf("workers=%d query %d: top-k rank %d differs", w, q, i)
				}
			}
		}
		bp, gp := base.PredictBatch(5), ix.PredictBatch(5)
		for q := range bp {
			if bp[q] != gp[q] {
				t.Fatalf("workers=%d: prediction %d differs", w, q)
			}
		}
	}
}

// IVF mode must serve approximate answers that agree with the exact path
// on clustered data at a high rate, return full-length results, and be
// deterministic across worker counts.
func TestIVFModeTopK(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	train := clusteredDataset(r, 1500, 8, 12, 3)
	queries := clusteredDataset(r, 40, 8, 12, 3)
	cfg := SearchConfig{Mode: SearchIVF, Seed: 3, NProbe: 10}
	ix, err := NewNeighborIndexSearch(train, queries, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.EffectiveMode(); got != SearchIVF {
		t.Fatalf("effective mode %v, want ivf", got)
	}
	exact, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	hits, total := 0, 0
	for q := 0; q < queries.Len(); q++ {
		got := ix.TopK(q, k)
		if len(got) != k {
			t.Fatalf("query %d: %d results, want %d", q, len(got), k)
		}
		truth := map[int]bool{}
		for _, i := range exact.TopK(q, k) {
			truth[i] = true
		}
		for _, i := range got {
			if truth[i] {
				hits++
			}
		}
		total += k
	}
	if rec := float64(hits) / float64(total); rec < 0.9 {
		t.Errorf("IVF agreement with exact = %.3f, want >= 0.9", rec)
	}
	// same config, different workers: identical answers
	ix2, err := NewNeighborIndexSearch(train, queries, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < queries.Len(); q++ {
		a, b := ix.TopK(q, k), ix2.TopK(q, k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("worker counts disagree at query %d rank %d", q, i)
			}
		}
	}
}

// Auto mode stays exact below the size threshold and certifies recall
// above it; RecallEstimate reports the certification.
func TestAutoModeThresholdAndCertification(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	small := clusteredDataset(r, 200, 6, 4, 2)
	queries := clusteredDataset(r, 20, 6, 4, 2)
	ix, err := NewNeighborIndexSearch(small, queries, 1, SearchConfig{Mode: SearchAuto, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.EffectiveMode(); got != SearchExact {
		t.Fatalf("small auto index mode %v, want exact (below threshold)", got)
	}
	if rec := ix.RecallEstimate(); rec != 1 {
		t.Fatalf("exact fallback recall %v, want 1", rec)
	}

	big := clusteredDataset(r, 5000, 8, 16, 2)
	bigQueries := clusteredDataset(r, 20, 8, 16, 2)
	ax, err := NewNeighborIndexSearch(big, bigQueries, 0, SearchConfig{Mode: SearchAuto, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.EffectiveMode(); got != SearchIVF {
		t.Fatalf("large auto index mode %v, want ivf", got)
	}
	if rec := ax.RecallEstimate(); rec < DefaultRecallFloor {
		t.Fatalf("certified recall %.3f below floor %.2f yet IVF is serving", rec, DefaultRecallFloor)
	}

	// an explicit low threshold flips a small index to IVF
	ex, err := NewNeighborIndexSearch(small, queries, 1, SearchConfig{Mode: SearchAuto, Seed: 1, ExactThreshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.EffectiveMode(); got != SearchIVF {
		t.Fatalf("low-threshold auto mode %v, want ivf", got)
	}
}

// An unreachable recall floor must certify-fail and fall back to exact —
// and then answer bit-identically to the exact index.
func TestAutoModeUncertifiableFallsBackExact(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	// pure high-d noise: every partition borders every other, so recall at
	// tiny nprobe is poor, and the floor of 1.0 is unreachable in any case
	train := randomNeighborDataset(r, 1200, 24, 2)
	queries := randomNeighborDataset(r, 10, 24, 2)
	ix, err := NewNeighborIndexSearch(train, queries, 1, SearchConfig{
		Mode: SearchAuto, Seed: 5, ExactThreshold: 100, RecallFloor: 1.0, NLists: 64, NProbe: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// the floor can only be met by probing everything; if even that fails
	// (float32 near-ties), the index must serve exact
	mode := ix.EffectiveMode()
	if mode == SearchIVF {
		if rec := ix.RecallEstimate(); rec < 1.0 {
			t.Fatalf("IVF serving with recall %.3f under floor 1.0", rec)
		}
		return
	}
	exact, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < queries.Len(); q++ {
		a, b := ix.TopK(q, 5), exact.TopK(q, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("fallback index diverges from exact at query %d rank %d", q, i)
			}
		}
	}
}

// PredictBatch under IVF mode must equal per-row prediction over the same
// approximate index (scratch reuse must not change answers).
func TestPredictBatchIVFMatchesPredictRow(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	train := clusteredDataset(r, 1000, 6, 8, 3)
	queries := clusteredDataset(r, 50, 6, 8, 3)
	ix, err := NewNeighborIndexSearch(train, queries, 3, SearchConfig{Mode: SearchIVF, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	batch := ix.PredictBatch(5)
	for q := range batch {
		if want := ix.PredictRow(q, 5); batch[q] != want {
			t.Fatalf("query %d: batch %d vs row %d", q, batch[q], want)
		}
	}
}

func TestParseSearchMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SearchMode
		ok   bool
	}{
		{"exact", SearchExact, true}, {"", SearchExact, true},
		{"ivf", SearchIVF, true}, {"auto", SearchAuto, true},
		{"fancy", SearchExact, false},
	} {
		got, ok := ParseSearchMode(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseSearchMode(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	for _, m := range []SearchMode{SearchExact, SearchIVF, SearchAuto} {
		back, ok := ParseSearchMode(m.String())
		if !ok || back != m {
			t.Errorf("round trip of %v failed", m)
		}
	}
}
