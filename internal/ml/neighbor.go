package ml

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nde/internal/ann"
	"nde/internal/linalg"
	"nde/internal/nderr"
	"nde/internal/par"
)

// SquaredDistance returns the squared L2 distance between two equal-length
// vectors. Ranking by squared distance is equivalent to ranking by
// Euclidean distance and skips the per-pair sqrt.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: distance dims %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NeighborIndex precomputes the query×train squared-distance matrix for a
// fixed (train, queries) pair through the batched linalg kernel, and
// answers neighbor-ordering questions from it: full argsort per query
// (for closed-form Shapley), top-k selection by quickselect (for
// prediction), and batch prediction for classifiers.
//
// The distance matrix and the per-query sort orders are computed lazily,
// at most once, and are safe for concurrent use after construction. All
// orderings use the deterministic total order (squared distance, then
// training index), matching KNN's tie-breaking.
type NeighborIndex struct {
	Train   *Dataset
	Queries *Dataset
	// Workers bounds the pool used for the kernel and the batch argsort
	// (<= 0 = auto).
	Workers int
	// Search selects the top-k backend (see SearchConfig). The zero value
	// is the exact path; SearchIVF/SearchAuto route TopK through the
	// approximate internal/ann index, built lazily on first query. Order
	// and D2 are always exact regardless of mode — full-ranking consumers
	// (the kNN-Shapley closed form) stay on the determinism oracle.
	Search SearchConfig

	d2Once sync.Once
	d2     *linalg.Matrix // Queries.Len() × Train.Len()

	ordersOnce  sync.Once
	orders      []int // flat q×n argsort rows; Order(qi) returns a view
	ordersReady atomic.Bool

	topk topkCache // per-query top-k lists shared by prediction + derivation

	// delta, when non-nil, marks a derived index: answers come from the
	// root's cached geometry instead of fresh kernels (neighbor_delta.go).
	// Derived indexes always serve the exact path.
	delta *deltaGeom

	search searchState // lazily resolved ANN backend (search.go)
}

// topkCache holds the per-query top-k lists for one k: flat q×k training
// ids (each row ascending by (distance, id)) plus the k-th distance per
// query. Guarded by mu so concurrent callers with different k serialize;
// derivation snapshots it to repair children in O(q·k).
type topkCache struct {
	mu  sync.Mutex
	k   int
	ids []int
	kth []float64
}

// NewNeighborIndex builds an index over the given train and query sets.
// Distances are not computed until the first use, but both feature
// matrices are validated here: a single NaN feature would make the
// (distance, index) comparator a non-strict weak order, so quickselect and
// argsort would return silently wrong neighbors. Rejecting NaN/Inf at
// build time (wrapping nderr.ErrNonFinite) turns that silent corruption
// into a diagnosable error.
func NewNeighborIndex(train, queries *Dataset, workers int) (*NeighborIndex, error) {
	return NewNeighborIndexSearch(train, queries, workers, SearchConfig{})
}

// NewNeighborIndexSearch is NewNeighborIndex with an explicit search
// configuration. The zero SearchConfig reproduces NewNeighborIndex
// exactly; SearchIVF/SearchAuto route TopK through the approximate index
// (built lazily on first query) while Order/D2 stay exact.
func NewNeighborIndexSearch(train, queries *Dataset, workers int, search SearchConfig) (*NeighborIndex, error) {
	if train == nil || queries == nil {
		return nil, nderr.Empty("ml: NeighborIndex needs non-nil train and query sets")
	}
	if train.Len() == 0 {
		return nil, nderr.Empty("ml: NeighborIndex training set")
	}
	if train.Dim() != queries.Dim() {
		return nil, nderr.Mismatch("ml: NeighborIndex dims", train.Dim(), queries.Dim())
	}
	if err := train.X.CheckFinite("NeighborIndex train features"); err != nil {
		return nil, fmt.Errorf("ml: %w", err)
	}
	if err := queries.X.CheckFinite("NeighborIndex query features"); err != nil {
		return nil, fmt.Errorf("ml: %w", err)
	}
	return &NeighborIndex{Train: train, Queries: queries, Workers: workers, Search: search}, nil
}

// D2 returns the query×train squared-distance matrix, computing it on
// first use via linalg.PairwiseSquaredDistances. For a derived index the
// matrix is gathered from the root's cached geometry instead — element
// copies only, bit-identical to rerunning the kernel.
func (ix *NeighborIndex) D2() *linalg.Matrix {
	ix.d2Once.Do(func() {
		if g := ix.delta; g != nil {
			ix.d2 = g.materializeD2(ix.Queries.Len(), ix.Workers)
		} else {
			ix.d2 = linalg.PairwiseSquaredDistances(ix.Queries.X, ix.Train.X, ix.Workers)
		}
	})
	return ix.d2
}

// ensureOrders materializes the full per-query argsort table once. A root
// sorts its distance rows; a derived index merges the root's cached order
// with the extra-slot order in O(n) per query — no sorting — which is
// where the kNN-Shapley delta path gets its speedup.
func (ix *NeighborIndex) ensureOrders() {
	ix.ordersOnce.Do(func() {
		n := ix.Train.Len()
		nq := ix.Queries.Len()
		orders := make([]int, nq*n)
		if g := ix.delta; g != nil {
			g.base.ensureOrders()
			par.For("ml.neighbor_delta_walk", ix.Workers, nq, func(_, q int) {
				g.walkInto(q, orders[q*n:(q+1)*n])
			})
		} else {
			d2 := ix.D2()
			par.For("ml.neighbor_argsort", ix.Workers, nq, func(_, q int) {
				row := orders[q*n : (q+1)*n]
				for i := range row {
					row[i] = i
				}
				sort.Sort(&distOrder{d2: d2.Row(q), idx: row})
			})
		}
		ix.orders = orders
		ix.ordersReady.Store(true)
	})
}

// Order returns the training indices sorted by ascending squared distance
// to query qi (ties by index). The slice is a view into the index's cached
// order table and MUST NOT be mutated by the caller.
func (ix *NeighborIndex) Order(qi int) []int {
	ix.ensureOrders()
	n := ix.Train.Len()
	return ix.orders[qi*n : (qi+1)*n]
}

// TopK returns the k training indices nearest to query qi, sorted by
// ascending squared distance (ties by index). k is clamped to the
// training size. The slice is freshly allocated.
//
// In the exact mode an O(n) quickselect over the cached distance row pulls
// the k smallest, then only those are sorted. Under SearchIVF/SearchAuto
// the answer comes from the approximate index (float32 distances, nprobe
// partitions scanned) — sub-linear, but rows outside the probed partitions
// can be missed; if the probed partitions hold fewer than k rows, the
// query transparently falls back to the exact path.
func (ix *NeighborIndex) TopK(qi, k int) []int {
	n := ix.Train.Len()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if g := ix.delta; g != nil {
		// Derived: select against the cached geometry without materializing
		// the full distance matrix for this child.
		pairs := make([]distIdx, n)
		out := make([]int, k)
		g.reselectInto(qi, k, pairs, out)
		return out
	}
	ix.ensureSearch()
	if ix.search.eff != SearchExact {
		scratch := ix.annScratch()
		out, ok := ix.annTopK(qi, k, scratch)
		ix.search.scratch.Put(scratch)
		if ok {
			return out
		}
	}
	row := ix.D2().Row(qi)
	pairs := make([]distIdx, n)
	out := make([]int, k)
	return ix.exactTopKInto(row, k, pairs, out)
}

// TopKChecked is TopK with strict validation instead of clamping: qi must
// be a valid query index and k must satisfy 1 <= k <= Train.Len(). The
// clamping rules of TopK itself (k > n clamps to n, k <= 0 returns nil)
// and the error rules here are identical across the exact, IVF, and auto
// search modes — the backend never changes argument semantics.
func (ix *NeighborIndex) TopKChecked(qi, k int) ([]int, error) {
	if nq := ix.Queries.Len(); qi < 0 || qi >= nq {
		return nil, fmt.Errorf("ml: TopK query %d outside [0,%d): %w", qi, nq, nderr.ErrDegenerateInput)
	}
	if n := ix.Train.Len(); k < 1 || k > n {
		return nil, nderr.BadK("ml: TopK", k, n)
	}
	return ix.TopK(qi, k), nil
}

// exactTopKInto is the exact top-k path writing into caller-provided
// buffers: pairs must have length Train.Len(), out length k. It returns
// out. Extracted so the batch prediction path can reuse per-worker
// scratch instead of allocating per query.
func (ix *NeighborIndex) exactTopKInto(row []float64, k int, pairs []distIdx, out []int) []int {
	for i := range pairs {
		pairs[i] = distIdx{d: row[i], i: i}
	}
	selectK(pairs, k)
	top := pairs[:k]
	sort.Sort(byDistIdx(top))
	for i, p := range top {
		out[i] = p.i
	}
	return out
}

// PredictRow returns the majority label among the k nearest training
// points to query qi; vote ties break toward the smaller label.
func (ix *NeighborIndex) PredictRow(qi, k int) int {
	votes := make([]int, ix.Train.NumClasses())
	return ix.predictRow(qi, k, votes)
}

// predictRow is PredictRow with a caller-provided (zeroed) vote buffer.
func (ix *NeighborIndex) predictRow(qi, k int, votes []int) int {
	return tallyVotes(votes, ix.Train.Y, ix.TopK(qi, k))
}

// tallyVotes counts the labels of the given training indices into votes
// (reset to zero on return) and returns the majority label, vote ties
// breaking toward the smaller label. The winner depends only on the SET of
// indices, so callers may pass top-k candidates in any order.
func tallyVotes(votes []int, trainY []int, top []int) int {
	for _, i := range top {
		votes[trainY[i]]++
	}
	best, bestVotes := 0, -1
	for y, v := range votes {
		if v > bestVotes {
			best, bestVotes = y, v
		}
		votes[y] = 0 // reset for reuse
	}
	return best
}

// predictScratch is the per-worker buffer set of PredictBatch: one
// allocation per worker instead of two per query.
type predictScratch struct {
	votes []int
	pairs []distIdx // exact path: quickselect arena
	top   []int     // exact path: top-k indices
	ann   *ann.Scratch
}

// PredictBatch classifies every query with the k-nearest-neighbor vote.
// The result is identical to calling PredictRow per query.
func (ix *NeighborIndex) PredictBatch(k int) []int {
	out, _ := ix.PredictBatchLabels(k, ix.Train.Y) // error impossible: lengths match
	return out
}

// PredictBatchLabels is PredictBatch voting with caller-provided training
// labels instead of the index's own. Required when the caller holds
// fresher labels than the index's Train snapshot — cached/derived indexes
// are keyed by feature-matrix fingerprints only, so their geometry may
// legitimately be shared across label revisions. trainY needs one
// non-negative label per training row.
//
// On the exact path the per-query top-k lists are built once into the
// index's top-k cache (parallel, per-worker scratch) and the vote tally is
// a cheap O(queries·k) pass, so repeated predictions and delta-derived
// children reuse the selection work.
func (ix *NeighborIndex) PredictBatchLabels(k int, trainY []int) ([]int, error) {
	n := ix.Train.Len()
	if len(trainY) != n {
		return nil, nderr.Mismatch("ml: PredictBatchLabels labels", n, len(trainY))
	}
	nc := 0
	for i, y := range trainY {
		if y < 0 {
			return nil, fmt.Errorf("ml: negative label %d at training row %d: %w", y, i, nderr.ErrDegenerateInput)
		}
		if y >= nc {
			nc = y + 1
		}
	}
	nq := ix.Queries.Len()
	out := make([]int, nq)
	kk := k
	if kk > n {
		kk = n
	}
	if kk <= 0 {
		return out, nil
	}
	ix.ensureSearch()
	if ix.search.eff != SearchExact {
		ix.queries32()
		scratch := make([]predictScratch, par.Workers(ix.Workers, nq))
		par.For("ml.knn_predict_batch", ix.Workers, nq, func(w, q int) {
			s := &scratch[w]
			if s.votes == nil {
				s.votes = make([]int, nc)
			}
			if s.ann == nil {
				s.ann = &ann.Scratch{}
			}
			if top, ok := ix.annTopK(q, kk, s.ann); ok {
				out[q] = tallyVotes(s.votes, trainY, top)
				return
			}
			// partial answer: exact fallback for this query
			if s.pairs == nil {
				s.pairs = make([]distIdx, n)
				s.top = make([]int, kk)
			}
			top := ix.exactTopKInto(ix.D2().Row(q), kk, s.pairs, s.top[:kk])
			out[q] = tallyVotes(s.votes, trainY, top)
		})
		return out, nil
	}
	ids, _ := ix.ensureTopK(kk)
	votes := make([]int, nc)
	for q := 0; q < nq; q++ {
		out[q] = tallyVotes(votes, trainY, ids[q*kk:(q+1)*kk])
	}
	return out, nil
}

// ensureTopK returns the cached flat q×kk top-k id table and per-query
// k-th distances, building both if absent or cached for a different k.
// The returned slices are owned by the cache and must not be mutated.
// Requires 1 <= kk <= Train.Len().
func (ix *NeighborIndex) ensureTopK(kk int) ([]int, []float64) {
	ix.topk.mu.Lock()
	defer ix.topk.mu.Unlock()
	if ix.topk.k == kk && ix.topk.ids != nil {
		return ix.topk.ids, ix.topk.kth
	}
	n := ix.Train.Len()
	nq := ix.Queries.Len()
	ids := make([]int, nq*kk)
	kth := make([]float64, nq)
	g := ix.delta
	var d2 *linalg.Matrix
	if g == nil {
		d2 = ix.D2()
	}
	scratch := make([][]distIdx, par.Workers(ix.Workers, nq))
	par.For("ml.neighbor_topk_build", ix.Workers, nq, func(w, q int) {
		if scratch[w] == nil {
			scratch[w] = make([]distIdx, n)
		}
		row := ids[q*kk : (q+1)*kk]
		if g != nil {
			kth[q] = g.reselectInto(q, kk, scratch[w], row)
			return
		}
		ix.exactTopKInto(d2.Row(q), kk, scratch[w], row)
		kth[q] = d2.Row(q)[row[kk-1]]
	})
	ix.topk.k, ix.topk.ids, ix.topk.kth = kk, ids, kth
	return ids, kth
}

// distOrder argsorts idx by (d2[idx], idx) — the deterministic neighbor
// total order used everywhere in the package.
type distOrder struct {
	d2  []float64
	idx []int
}

func (s *distOrder) Len() int { return len(s.idx) }
func (s *distOrder) Less(a, b int) bool {
	da, db := s.d2[s.idx[a]], s.d2[s.idx[b]]
	if da != db {
		return da < db
	}
	return s.idx[a] < s.idx[b]
}
func (s *distOrder) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// distIdx is a (squared distance, training index) pair.
type distIdx struct {
	d float64
	i int
}

// less orders by (distance, index). This is a strict weak order only for
// finite distances — with NaN, both a<b and b<a are false while a and b
// are not equivalent, so quickselect partitions incoherently — which is
// why NewNeighborIndex rejects non-finite features at build time.

func (a distIdx) less(b distIdx) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.i < b.i
}

type byDistIdx []distIdx

func (s byDistIdx) Len() int           { return len(s) }
func (s byDistIdx) Less(a, b int) bool { return s[a].less(s[b]) }
func (s byDistIdx) Swap(a, b int)      { s[a], s[b] = s[b], s[a] }

// selectK partially rearranges a so that its k smallest elements under the
// (distance, index) total order occupy a[:k], in unspecified order.
// Iterative quickselect with median-of-three pivoting; expected O(len(a)).
func selectK(a []distIdx, k int) {
	lo, hi := 0, len(a)
	if k <= 0 || k >= len(a) {
		return
	}
	for hi-lo > 1 {
		p := partition(a, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p
		}
	}
}

// partition picks a median-of-three pivot in a[lo:hi], partitions around
// it, and returns its final position.
func partition(a []distIdx, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	// median of three → a[mid]
	if a[lo].less(a[mid]) {
		a[lo], a[mid] = a[mid], a[lo]
	}
	if a[lo].less(a[last]) {
		a[lo], a[last] = a[last], a[lo]
	}
	if a[mid].less(a[last]) {
		a[mid], a[last] = a[last], a[mid]
	}
	pivot := a[mid]
	a[mid], a[last] = a[last], a[mid]
	store := lo
	for i := lo; i < last; i++ {
		if a[i].less(pivot) {
			a[i], a[store] = a[store], a[i]
			store++
		}
	}
	a[store], a[last] = a[last], a[store]
	return store
}
