package ml

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
	"nde/internal/nderr"
)

func randomNeighborDataset(r *rand.Rand, n, dim, classes int) *Dataset {
	x := linalg.NewMatrix(n, dim)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(classes)
	}
	d, _ := NewDataset(x, y)
	return d
}

// Property: quickselect top-k matches the prefix of the full sort under
// the same (distance, index) total order.
func TestQuickTopKMatchesFullSortPrefix(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		train := randomNeighborDataset(r, n, 1+r.Intn(4), 2)
		queries := randomNeighborDataset(r, 1+r.Intn(6), train.Dim(), 2)
		ix, err := NewNeighborIndex(train, queries, 1+r.Intn(4))
		if err != nil {
			return false
		}
		k := 1 + r.Intn(n)
		for q := 0; q < queries.Len(); q++ {
			full := ix.Order(q)
			top := ix.TopK(q, k)
			if len(top) != k {
				return false
			}
			for i := range top {
				if top[i] != full[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The index order must agree with KNN.Neighbors (the per-query path).
func TestNeighborIndexOrderMatchesKNNNeighbors(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	train := randomNeighborDataset(r, 60, 5, 3)
	queries := randomNeighborDataset(r, 15, 5, 3)
	knn := NewKNN(5)
	if err := knn.Fit(train); err != nil {
		t.Fatal(err)
	}
	ix, err := NewNeighborIndex(train, queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < queries.Len(); q++ {
		want := knn.Neighbors(queries.Row(q))
		got := ix.Order(q)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: index %d vs Neighbors %d", q, i, got[i], want[i])
			}
		}
	}
}

// TopK must handle duplicate points (distance ties) deterministically:
// ties break toward the smaller training index.
func TestTopKDistanceTiesBreakByIndex(t *testing.T) {
	x := linalg.NewMatrix(6, 1)
	// three pairs of duplicates at distances 0, 1, 4 from the query 0
	vals := []float64{1, 0, 1, 2, 0, 2}
	copy(x.Data, vals)
	train, _ := NewDataset(x, []int{0, 1, 0, 1, 0, 1})
	qx := linalg.NewMatrix(1, 1)
	queries, _ := NewDataset(qx, []int{0})
	ix, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 0, 2, 3, 5} // d2 0,0,1,1,4,4 with index tie-breaks
	got := ix.Order(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	for k := 1; k <= 6; k++ {
		top := ix.TopK(0, k)
		for i := 0; i < k; i++ {
			if top[i] != want[i] {
				t.Fatalf("k=%d: top = %v, want prefix of %v", k, top, want)
			}
		}
	}
}

// PredictBatch must equal per-row Predict for the wrapped KNN.
func TestPredictBatchMatchesPredict(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	train := randomNeighborDataset(r, 80, 4, 3)
	queries := randomNeighborDataset(r, 30, 4, 3)
	for _, k := range []int{1, 3, 7} {
		knn := NewKNN(k)
		if err := knn.Fit(train); err != nil {
			t.Fatal(err)
		}
		batch, err := knn.PredictBatch(queries, 0)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < queries.Len(); q++ {
			if want := knn.Predict(queries.Row(q)); batch[q] != want {
				t.Fatalf("k=%d query %d: batch %d vs predict %d", k, q, batch[q], want)
			}
		}
	}
}

func TestNeighborIndexTopKClamping(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	train := randomNeighborDataset(r, 5, 2, 2)
	queries := randomNeighborDataset(r, 2, 2, 2)
	ix, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.TopK(0, 100); len(got) != 5 {
		t.Errorf("k>n returned %d indices, want 5", len(got))
	}
	if got := ix.TopK(0, 0); got != nil {
		t.Errorf("k=0 returned %v, want nil", got)
	}
}

func TestNeighborIndexErrors(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	train := randomNeighborDataset(r, 5, 2, 2)
	empty := &Dataset{X: linalg.NewMatrix(0, 2)}
	if _, err := NewNeighborIndex(empty, train, 0); err == nil {
		t.Error("expected error for empty train")
	}
	mismatch := randomNeighborDataset(r, 4, 3, 2)
	if _, err := NewNeighborIndex(train, mismatch, 0); err == nil {
		t.Error("expected error for dim mismatch")
	}
}

// selectK against a reference sort, across random shapes and k.
func TestQuickSelectKProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		pairs := make([]distIdx, n)
		for i := range pairs {
			// coarse values force plenty of distance ties
			pairs[i] = distIdx{d: float64(r.Intn(5)), i: i}
		}
		ref := append([]distIdx(nil), pairs...)
		sort.Sort(byDistIdx(ref))
		k := 1 + r.Intn(n)
		selectK(pairs, k)
		got := append([]distIdx(nil), pairs[:k]...)
		sort.Sort(byDistIdx(got))
		for i := 0; i < k; i++ {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Regression: a NaN feature makes the (distance, index) comparator a
// non-strict weak order, so quickselect used to return silently wrong
// top-k neighbors. The index build must reject poisoned features with a
// wrapped nderr.ErrNonFinite instead.
func TestNeighborIndexRejectsPoisonedFeatures(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	train := randomNeighborDataset(r, 30, 3, 2)
	queries := randomNeighborDataset(r, 5, 3, 2)

	poisoned := train.Clone()
	poisoned.X.Set(12, 1, math.NaN())
	if _, err := NewNeighborIndex(poisoned, queries, 1); err == nil {
		t.Fatal("expected error for NaN train feature")
	} else if !errors.Is(err, nderr.ErrNonFinite) {
		t.Fatalf("error %v does not wrap nderr.ErrNonFinite", err)
	} else if !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("error %v does not wrap nderr.ErrDegenerateInput", err)
	}

	infQueries := queries.Clone()
	infQueries.X.Set(2, 0, math.Inf(-1))
	if _, err := NewNeighborIndex(train, infQueries, 1); err == nil {
		t.Fatal("expected error for Inf query feature")
	} else if !errors.Is(err, nderr.ErrNonFinite) {
		t.Fatalf("error %v does not wrap nderr.ErrNonFinite", err)
	}

	// the clean pair still builds and answers
	ix, err := NewNeighborIndex(train, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.TopK(0, 5)); got != 5 {
		t.Fatalf("TopK returned %d neighbors, want 5", got)
	}
}

// NewDataset is the other boundary: literal NaN/Inf features must be
// rejected at construction with the same error family.
func TestNewDatasetRejectsNonFinite(t *testing.T) {
	x := linalg.NewMatrix(4, 2)
	x.Set(3, 1, math.NaN())
	if _, err := NewDataset(x, []int{0, 1, 0, 1}); !errors.Is(err, nderr.ErrNonFinite) {
		t.Fatalf("NewDataset with NaN: err = %v, want ErrNonFinite", err)
	}
	x2 := linalg.NewMatrix(2, 1)
	x2.Set(0, 0, math.Inf(1))
	if _, err := NewDataset(x2, []int{0, 1}); !errors.Is(err, nderr.ErrNonFinite) {
		t.Fatalf("NewDataset with +Inf: err = %v, want ErrNonFinite", err)
	}
	if _, err := NewDataset(linalg.NewMatrix(2, 1), []int{0}); !errors.Is(err, nderr.ErrShapeMismatch) {
		t.Fatalf("NewDataset with mismatched labels: err = %v, want ErrShapeMismatch", err)
	}
}

// CheckTrainable classifies the degenerate training sets the importance
// methods must refuse.
func TestCheckTrainable(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	good := randomNeighborDataset(r, 10, 2, 2)
	if err := good.CheckTrainable("train"); err != nil {
		t.Fatalf("clean dataset flagged: %v", err)
	}
	single := randomNeighborDataset(r, 10, 2, 1)
	if err := single.CheckTrainable("train"); !errors.Is(err, nderr.ErrSingleClass) {
		t.Fatalf("single-class: err = %v, want ErrSingleClass", err)
	}
	var nilDS *Dataset
	if err := nilDS.CheckTrainable("train"); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("nil: err = %v, want ErrEmptyInput", err)
	}
	empty := &Dataset{X: linalg.NewMatrix(0, 2)}
	if err := empty.CheckTrainable("train"); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("empty: err = %v, want ErrEmptyInput", err)
	}
}
