package ml

import (
	"math"
	"math/rand"
	"testing"

	"nde/internal/linalg"
)

// blobs builds a two-cluster binary dataset: class 0 around (-sep, -sep),
// class 1 around (+sep, +sep).
func blobs(n int, sep float64, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		sign := float64(2*c - 1)
		x.Set(i, 0, sign*sep+r.NormFloat64())
		x.Set(i, 1, sign*sep+r.NormFloat64())
	}
	d, _ := NewDataset(x, y)
	return d
}

func fitAccuracy(t *testing.T, m Classifier, train, test *Dataset) float64 {
	t.Helper()
	acc, err := EvaluateAccuracy(m, train, test)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestDatasetBasics(t *testing.T) {
	d := blobs(10, 2, 1)
	if d.Len() != 10 || d.Dim() != 2 || d.NumClasses() != 2 {
		t.Fatalf("dataset header wrong: %d %d %d", d.Len(), d.Dim(), d.NumClasses())
	}
	sub := d.Subset([]int{0, 3, 5})
	if sub.Len() != 3 || sub.Y[1] != d.Y[3] {
		t.Error("Subset wrong")
	}
	rest, kept := d.Without(map[int]bool{0: true, 9: true})
	if rest.Len() != 8 || kept[0] != 1 {
		t.Error("Without wrong")
	}
	if _, err := NewDataset(linalg.NewMatrix(2, 1), []int{0}); err == nil {
		t.Error("expected shape error")
	}
	if _, err := d.WithGroups([]string{"a"}); err == nil {
		t.Error("expected groups length error")
	}
	g, err := d.WithGroups(make([]string, 10))
	if err != nil || len(g.Groups) != 10 {
		t.Error("WithGroups failed")
	}
	c := d.Clone()
	c.Y[0] = 99
	if d.Y[0] == 99 {
		t.Error("Clone shares labels")
	}
}

func TestModelsSeparateBlobs(t *testing.T) {
	train := blobs(200, 2.5, 42)
	test := blobs(80, 2.5, 43)
	models := map[string]Classifier{
		"knn":    NewKNN(5),
		"logreg": NewLogisticRegression(),
		"linreg": NewLinearRegression(),
		"svm":    NewLinearSVM(),
		"gnb":    NewGaussianNB(),
		"tree":   NewDecisionTree(),
	}
	for name, m := range models {
		if acc := fitAccuracy(t, m, train, test); acc < 0.9 {
			t.Errorf("%s accuracy = %v, want >= 0.9", name, acc)
		}
	}
}

func TestModelsRejectEmptyFit(t *testing.T) {
	empty := &Dataset{X: linalg.NewMatrix(0, 2), Y: nil}
	for name, m := range map[string]Classifier{
		"knn": NewKNN(3), "logreg": NewLogisticRegression(), "svm": NewLinearSVM(),
		"gnb": NewGaussianNB(), "tree": NewDecisionTree(), "mnb": NewMultinomialNB(),
	} {
		if err := m.Fit(empty); err == nil {
			t.Errorf("%s: expected error fitting empty dataset", name)
		}
	}
}

func TestKNNDeterministicTies(t *testing.T) {
	// two equidistant neighbors with different labels; k=2 vote ties -> label 0
	x := linalg.FromRows([][]float64{{-1, 0}, {1, 0}})
	d, _ := NewDataset(x, []int{1, 0})
	m := NewKNN(2)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0, 0}); got != 0 {
		t.Errorf("tie should break toward smaller label, got %d", got)
	}
	order := m.Neighbors([]float64{0, 0})
	if order[0] != 0 || order[1] != 1 {
		t.Errorf("distance ties should break by index, got %v", order)
	}
}

func TestKNNProba(t *testing.T) {
	train := blobs(50, 3, 7)
	m := NewKNN(5)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	p := m.Proba(train.Row(0))
	if len(p) != 2 || math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Errorf("Proba = %v", p)
	}
}

func TestKNNInvalidK(t *testing.T) {
	m := NewKNN(0)
	if err := m.Fit(blobs(5, 1, 1)); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestLogisticRegressionProbaAndLabels(t *testing.T) {
	train := blobs(100, 3, 11)
	m := NewLogisticRegression()
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	p := m.Proba([]float64{3, 3})
	if p[1] < 0.9 {
		t.Errorf("P(y=1 | deep in class-1 region) = %v", p[1])
	}
	if len(m.Weights()) != 2 {
		t.Error("weights dim wrong")
	}
	bad := &Dataset{X: linalg.NewMatrix(1, 1), Y: []int{2}}
	if err := m.Fit(bad); err == nil {
		t.Error("expected error for non-binary labels")
	}
}

func TestLinearRegressionFitXY(t *testing.T) {
	// y = 2x + 1 exactly
	x := linalg.FromRows([][]float64{{0}, {1}, {2}, {3}})
	m := NewLinearRegression()
	if err := m.FitXY(x, []float64{1, 3, 5, 7}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights()[0]-2) > 1e-6 || math.Abs(m.Intercept()-1) > 1e-6 {
		t.Errorf("w=%v b=%v", m.Weights(), m.Intercept())
	}
	if math.Abs(m.PredictValue([]float64{10})-21) > 1e-5 {
		t.Errorf("PredictValue(10) = %v", m.PredictValue([]float64{10}))
	}
	if err := m.FitXY(x, []float64{1}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestSVMMarginSign(t *testing.T) {
	train := blobs(150, 3, 5)
	m := NewLinearSVM()
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if m.Margin([]float64{3, 3}) <= 0 {
		t.Error("margin should be positive deep in class-1 region")
	}
	if m.Margin([]float64{-3, -3}) >= 0 {
		t.Error("margin should be negative deep in class-0 region")
	}
	bad := &Dataset{X: linalg.NewMatrix(1, 1), Y: []int{3}}
	if err := m.Fit(bad); err == nil {
		t.Error("expected error for non-binary labels")
	}
}

func TestGaussianNBProbaSumsToOne(t *testing.T) {
	train := blobs(100, 2, 3)
	m := NewGaussianNB()
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	p := m.Proba([]float64{0.5, 0.5})
	if math.Abs(p[0]+p[1]-1) > 1e-9 {
		t.Errorf("Proba sums to %v", p[0]+p[1])
	}
}

func TestMultinomialNBOnCounts(t *testing.T) {
	// class 0 uses token 0, class 1 uses token 1
	x := linalg.FromRows([][]float64{{5, 0}, {4, 1}, {0, 5}, {1, 4}})
	d, _ := NewDataset(x, []int{0, 0, 1, 1})
	m := NewMultinomialNB()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{3, 0}) != 0 || m.Predict([]float64{0, 3}) != 1 {
		t.Error("MultinomialNB predictions wrong")
	}
	neg := linalg.FromRows([][]float64{{-1}})
	nd, _ := NewDataset(neg, []int{0})
	if err := m.Fit(nd); err == nil {
		t.Error("expected error for negative features")
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	// XOR is not linearly separable; a depth-2 tree nails it
	x := linalg.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.1, 0.1}, {0.9, 0.9}, {0.1, 0.9}, {0.9, 0.1}})
	d, _ := NewDataset(x, []int{0, 1, 1, 0, 0, 0, 1, 1})
	m := NewDecisionTree()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		if m.Predict(d.Row(i)) != d.Y[i] {
			t.Errorf("tree wrong on row %d", i)
		}
	}
	if m.Depth() < 1 {
		t.Error("tree should have split")
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	d := blobs(100, 0.1, 9) // noisy: deep trees would overfit
	m := &DecisionTree{MaxDepth: 1, MinSamplesSplit: 2}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if m.Depth() > 1 {
		t.Errorf("Depth = %d, want <= 1", m.Depth())
	}
}

func TestEvaluateAccuracyEmptyTrain(t *testing.T) {
	test := blobs(10, 1, 2)
	empty := &Dataset{X: linalg.NewMatrix(0, 2), Y: nil}
	acc, err := EvaluateAccuracy(NewKNN(3), empty, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.5 {
		t.Errorf("empty-train accuracy = %v, want 0.5 (predicts class 0)", acc)
	}
}
