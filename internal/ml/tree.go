package ml

import (
	"fmt"
	"math"
	"sort"
)

// DecisionTree is a CART-style classification tree with Gini impurity,
// axis-aligned thresholds, and deterministic tie-breaking (lowest feature,
// lowest threshold). It is the model used by the programmable-bias and
// fairness demos where an interpretable classifier is needed.
type DecisionTree struct {
	MaxDepth        int // default 5
	MinSamplesSplit int // default 2

	root    *treeNode
	classes int
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	label     int
	leaf      bool
}

// NewDecisionTree returns a tree with default depth 5.
func NewDecisionTree() *DecisionTree { return &DecisionTree{MaxDepth: 5, MinSamplesSplit: 2} }

// Fit grows the tree greedily.
func (m *DecisionTree) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: decision tree cannot fit an empty dataset")
	}
	maxDepth := m.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 5
	}
	minSplit := m.MinSamplesSplit
	if minSplit < 2 {
		minSplit = 2
	}
	m.classes = d.NumClasses()
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	m.root = m.grow(d, idx, maxDepth, minSplit)
	return nil
}

func majorityLabel(d *Dataset, idx []int, classes int) int {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	best, bestC := 0, -1
	for c, n := range counts {
		if n > bestC {
			best, bestC = c, n
		}
	}
	return best
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func (m *DecisionTree) grow(d *Dataset, idx []int, depth, minSplit int) *treeNode {
	label := majorityLabel(d, idx, m.classes)
	pure := true
	for _, i := range idx {
		if d.Y[i] != d.Y[idx[0]] {
			pure = false
			break
		}
	}
	if pure || depth == 0 || len(idx) < minSplit {
		return &treeNode{leaf: true, label: label}
	}

	bestFeature, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	sorted := make([]int, len(idx))
	for f := 0; f < d.Dim(); f++ {
		copy(sorted, idx)
		sort.SliceStable(sorted, func(a, b int) bool { return d.X.At(sorted[a], f) < d.X.At(sorted[b], f) })
		leftCounts := make([]int, m.classes)
		rightCounts := make([]int, m.classes)
		for _, i := range sorted {
			rightCounts[d.Y[i]]++
		}
		for cut := 1; cut < len(sorted); cut++ {
			moved := sorted[cut-1]
			leftCounts[d.Y[moved]]++
			rightCounts[d.Y[moved]]--
			lv, rv := d.X.At(sorted[cut-1], f), d.X.At(sorted[cut], f)
			if lv == rv {
				continue // cannot split between equal values
			}
			nl, nr := cut, len(sorted)-cut
			score := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(len(sorted))
			if score < bestScore-1e-12 {
				bestScore = score
				bestFeature = f
				bestThresh = (lv + rv) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, label: label}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.X.At(i, bestFeature) <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{leaf: true, label: label}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThresh,
		left:      m.grow(d, leftIdx, depth-1, minSplit),
		right:     m.grow(d, rightIdx, depth-1, minSplit),
	}
}

// Predict descends the tree to a leaf.
func (m *DecisionTree) Predict(x []float64) int {
	if m.root == nil {
		panic("ml: Predict before Fit")
	}
	n := m.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the height of the fitted tree (0 for a single leaf).
func (m *DecisionTree) Depth() int {
	var h func(n *treeNode) int
	h = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(m.root)
}
