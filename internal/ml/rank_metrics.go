package ml

import (
	"fmt"
	"sort"
)

// ROCAUC computes the area under the ROC curve for binary labels given
// P(y=1) scores, via the rank statistic (equivalent to the Mann-Whitney U).
// Tied scores contribute half. It returns an error when either class is
// absent.
func ROCAUC(truth []int, scores []float64) (float64, error) {
	if len(truth) != len(scores) {
		return 0, fmt.Errorf("ml: ROCAUC lengths %d vs %d", len(truth), len(scores))
	}
	nPos, nNeg := 0, 0
	for _, y := range truth {
		switch y {
		case 1:
			nPos++
		case 0:
			nNeg++
		default:
			return 0, fmt.Errorf("ml: ROCAUC requires binary 0/1 labels, got %d", y)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("ml: ROCAUC undefined with %d positives and %d negatives", nPos, nNeg)
	}
	// average rank of ties
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // 1-based average rank of the tie block
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	sumPos := 0.0
	for i, y := range truth {
		if y == 1 {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// BrierScore returns the mean squared error between P(y=1) scores and the
// binary labels — a calibration-sensitive quality metric.
func BrierScore(truth []int, scores []float64) (float64, error) {
	if len(truth) != len(scores) {
		return 0, fmt.Errorf("ml: BrierScore lengths %d vs %d", len(truth), len(scores))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("ml: BrierScore of empty inputs")
	}
	sum := 0.0
	for i, y := range truth {
		d := scores[i] - float64(y)
		sum += d * d
	}
	return sum / float64(len(truth)), nil
}

// ProbaScores extracts P(y=1) from a fitted probabilistic classifier over a
// dataset — the score vector ROCAUC and BrierScore consume.
func ProbaScores(m ProbabilisticClassifier, d *Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Proba(d.Row(i))[1]
	}
	return out
}
