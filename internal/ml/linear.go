package ml

import (
	"fmt"
	"math"

	"nde/internal/linalg"
)

// LogisticRegression is a binary logistic-regression classifier trained with
// full-batch gradient descent and L2 regularization. Labels must be 0 or 1.
// Training is deterministic: fixed initialization at zero, fixed step
// schedule.
type LogisticRegression struct {
	LR     float64 // learning rate (default 0.5)
	Epochs int     // gradient steps (default 200)
	L2     float64 // ridge penalty on weights, not intercept (default 1e-4)

	weights   []float64
	intercept float64
}

// NewLogisticRegression returns a classifier with sensible defaults.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{LR: 0.5, Epochs: 200, L2: 1e-4}
}

// Weights returns the learned weight vector (shared backing).
func (m *LogisticRegression) Weights() []float64 { return m.weights }

// Intercept returns the learned bias term.
func (m *LogisticRegression) Intercept() float64 { return m.intercept }

// Fit trains by full-batch gradient descent on the regularized log loss.
func (m *LogisticRegression) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: logistic regression cannot fit an empty dataset")
	}
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("ml: logistic regression requires binary 0/1 labels, got %d", y)
		}
	}
	lr, epochs, l2 := m.LR, m.Epochs, m.L2
	if lr <= 0 {
		lr = 0.5
	}
	if epochs <= 0 {
		epochs = 200
	}
	n, dim := d.Len(), d.Dim()
	w := make([]float64, dim)
	b := 0.0
	gw := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		for i := range gw {
			gw[i] = 0
		}
		gb := 0.0
		for i := 0; i < n; i++ {
			p := Sigmoid(linalg.Dot(w, d.Row(i)) + b)
			err := p - float64(d.Y[i])
			linalg.AXPY(err, d.Row(i), gw)
			gb += err
		}
		inv := 1 / float64(n)
		step := lr / (1 + 0.01*float64(e)) // mild decay for stability
		for j := range w {
			w[j] -= step * (gw[j]*inv + l2*w[j])
		}
		b -= step * gb * inv
	}
	m.weights, m.intercept = w, b
	return nil
}

// Proba returns [P(y=0), P(y=1)].
func (m *LogisticRegression) Proba(x []float64) []float64 {
	if m.weights == nil {
		panic("ml: Proba before Fit")
	}
	p := Sigmoid(linalg.Dot(m.weights, x) + m.intercept)
	return []float64{1 - p, p}
}

// Predict thresholds P(y=1) at 0.5.
func (m *LogisticRegression) Predict(x []float64) int {
	if m.Proba(x)[1] >= 0.5 {
		return 1
	}
	return 0
}

// Sigmoid is the numerically stable logistic function.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// LinearRegression is ridge regression solved in closed form, with an
// intercept handled by mean-centering.
type LinearRegression struct {
	L2 float64 // ridge penalty (default 1e-6)

	weights   []float64
	intercept float64
}

// NewLinearRegression returns a ridge regressor with a tiny default penalty.
func NewLinearRegression() *LinearRegression { return &LinearRegression{L2: 1e-6} }

// Weights returns the learned weight vector (shared backing).
func (m *LinearRegression) Weights() []float64 { return m.weights }

// Intercept returns the learned bias term.
func (m *LinearRegression) Intercept() float64 { return m.intercept }

// FitXY trains on an explicit matrix and continuous targets.
func (m *LinearRegression) FitXY(x *linalg.Matrix, y []float64) error {
	if x.Rows == 0 {
		return fmt.Errorf("ml: linear regression cannot fit an empty dataset")
	}
	if x.Rows != len(y) {
		return fmt.Errorf("ml: %d rows vs %d targets", x.Rows, len(y))
	}
	l2 := m.L2
	if l2 <= 0 {
		l2 = 1e-6
	}
	// center targets and features so the intercept absorbs the means
	n, dim := x.Rows, x.Cols
	colMean := make([]float64, dim)
	for i := 0; i < n; i++ {
		linalg.AXPY(1, x.Row(i), colMean)
	}
	linalg.Scale(1/float64(n), colMean)
	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)
	xc := x.Clone()
	yc := make([]float64, n)
	for i := 0; i < n; i++ {
		linalg.AXPY(-1, colMean, xc.Row(i))
		yc[i] = y[i] - yMean
	}
	w, err := linalg.RidgeSolve(xc, yc, l2)
	if err != nil {
		return err
	}
	m.weights = w
	m.intercept = yMean - linalg.Dot(w, colMean)
	return nil
}

// Fit trains on a classification dataset by regressing the 0/1 labels
// (least-squares classification); Predict thresholds at 0.5.
func (m *LinearRegression) Fit(d *Dataset) error {
	y := make([]float64, d.Len())
	for i, v := range d.Y {
		y[i] = float64(v)
	}
	return m.FitXY(d.X, y)
}

// PredictValue returns the regression output for x.
func (m *LinearRegression) PredictValue(x []float64) float64 {
	if m.weights == nil {
		panic("ml: PredictValue before Fit")
	}
	return linalg.Dot(m.weights, x) + m.intercept
}

// Predict thresholds the regression output at 0.5 for 0/1 labels.
func (m *LinearRegression) Predict(x []float64) int {
	if m.PredictValue(x) >= 0.5 {
		return 1
	}
	return 0
}

// LinearSVM is a binary linear support vector machine trained by
// deterministic subgradient descent on the L2-regularized hinge loss
// (Pegasos-style with a fixed epoch schedule). Labels must be 0 or 1;
// internally they map to ±1.
type LinearSVM struct {
	Lambda float64 // regularization strength (default 1e-3)
	Epochs int     // full passes (default 200)

	weights   []float64
	intercept float64
}

// NewLinearSVM returns an SVM with sensible defaults.
func NewLinearSVM() *LinearSVM { return &LinearSVM{Lambda: 1e-3, Epochs: 200} }

// Weights returns the learned weight vector (shared backing).
func (m *LinearSVM) Weights() []float64 { return m.weights }

// Intercept returns the learned bias term.
func (m *LinearSVM) Intercept() float64 { return m.intercept }

// Fit trains by full-batch subgradient descent on the hinge loss.
func (m *LinearSVM) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: SVM cannot fit an empty dataset")
	}
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("ml: SVM requires binary 0/1 labels, got %d", y)
		}
	}
	lambda, epochs := m.Lambda, m.Epochs
	if lambda <= 0 {
		lambda = 1e-3
	}
	if epochs <= 0 {
		epochs = 200
	}
	n, dim := d.Len(), d.Dim()
	w := make([]float64, dim)
	b := 0.0
	g := make([]float64, dim)
	for e := 1; e <= epochs; e++ {
		step := 1 / (lambda * float64(e+10))
		for i := range g {
			g[i] = lambda * w[i]
		}
		gb := 0.0
		inv := 1 / float64(n)
		for i := 0; i < n; i++ {
			yi := 2*float64(d.Y[i]) - 1
			margin := yi * (linalg.Dot(w, d.Row(i)) + b)
			if margin < 1 {
				linalg.AXPY(-yi*inv, d.Row(i), g)
				gb -= yi * inv
			}
		}
		linalg.AXPY(-step, g, w)
		b -= step * gb
	}
	m.weights, m.intercept = w, b
	return nil
}

// Margin returns the signed distance proxy w·x + b.
func (m *LinearSVM) Margin(x []float64) float64 {
	if m.weights == nil {
		panic("ml: Margin before Fit")
	}
	return linalg.Dot(m.weights, x) + m.intercept
}

// Predict returns 1 when the margin is non-negative, else 0.
func (m *LinearSVM) Predict(x []float64) int {
	if m.Margin(x) >= 0 {
		return 1
	}
	return 0
}
