package ml

import (
	"fmt"
	"math"
	"sort"

	"nde/internal/linalg"
	"nde/internal/nderr"
)

// This file implements low-latency machine unlearning — the §2.4 connection
// the tutorial draws between data debugging and the right-to-be-forgotten:
// debugging techniques repeatedly ask "what if these points were removed?",
// and unlearning answers it without full retraining (cf. HedgeCut, Schelter
// et al., SIGMOD 2021).

// Unlearner is a model that can efficiently forget training examples.
type Unlearner interface {
	Classifier
	// Unlearn removes the given training rows (indices into the dataset
	// passed to Fit) from the model without retraining from scratch.
	Unlearn(rows []int) error
}

// UnlearnableKNN is a kNN classifier with O(deleted) exact unlearning:
// forgetting a point simply removes it from the vote set, and the result is
// *identical* to retraining on the reduced data.
type UnlearnableKNN struct {
	K int

	inner   *KNN
	alive   []bool
	nAlive  int
	dataset *Dataset

	// Eval plumbing (AttachEval): a delta-maintained NeighborIndex over the
	// alive rows, so accuracy after each unlearn call is an O(queries·k)
	// repair instead of a rebuild. evalLog maps original row -> logical row
	// in evalIx.Train (-1 = dead).
	evalIx  *NeighborIndex
	evalLog []int
}

// normalizeUnlearnRows validates and canonicalizes an unlearn request
// against the alive mask. Every id is range-checked BEFORE any state
// changes, so a bad id mid-list can never leave a partially mutated model;
// repeated ids and already-dead rows are dropped, so nAlive is never
// double-decremented (the same bug class as the Challenge.Submit
// double-budget charge). Returns the sorted set of rows that will actually
// flip from alive to dead; an error means nothing changed.
func normalizeUnlearnRows(alive []bool, rows []int) ([]int, error) {
	for _, r := range rows {
		if r < 0 || r >= len(alive) {
			return nil, fmt.Errorf("ml: unlearn row %d outside [0,%d): %w", r, len(alive), nderr.ErrDegenerateInput)
		}
	}
	uniq := append([]int(nil), rows...)
	sort.Ints(uniq)
	uniq = dedupSorted(uniq)
	dead := uniq[:0]
	for _, r := range uniq {
		if alive[r] {
			dead = append(dead, r)
		}
	}
	return dead, nil
}

// NewUnlearnableKNN returns an unlearnable kNN with the given k.
func NewUnlearnableKNN(k int) *UnlearnableKNN { return &UnlearnableKNN{K: k} }

// Fit memorizes the training data and marks every row alive.
func (m *UnlearnableKNN) Fit(d *Dataset) error {
	inner := NewKNN(m.K)
	if err := inner.Fit(d); err != nil {
		return err
	}
	m.inner = inner
	m.dataset = d
	m.alive = make([]bool, d.Len())
	for i := range m.alive {
		m.alive[i] = true
	}
	m.nAlive = d.Len()
	return nil
}

// Unlearn marks rows as forgotten; subsequent predictions are exactly those
// of a model retrained without them. The call is atomic: any error (row out
// of range, removal would empty the training set) leaves the model — and
// any attached eval index — exactly as it was. Repeated and already-dead
// ids are tolerated and do not double-decrement the alive count.
func (m *UnlearnableKNN) Unlearn(rows []int) error {
	if m.dataset == nil {
		return fmt.Errorf("ml: Unlearn before Fit")
	}
	dead, err := normalizeUnlearnRows(m.alive, rows)
	if err != nil {
		return err
	}
	if len(dead) == 0 {
		return nil
	}
	if len(dead) == m.nAlive {
		return fmt.Errorf("ml: unlearning would empty the training set: %w", nderr.ErrEmptyInput)
	}
	if m.evalIx != nil {
		logical := make([]int, len(dead))
		for i, r := range dead {
			logical[i] = m.evalLog[r]
		}
		child, err := m.evalIx.RemoveRows(logical)
		if err != nil {
			return err
		}
		m.evalIx = child
	}
	for _, r := range dead {
		m.alive[r] = false
	}
	m.nAlive -= len(dead)
	if m.evalIx != nil {
		m.renumberEvalLog()
	}
	return nil
}

// renumberEvalLog rebuilds the original-row -> eval-index-logical-row map
// from the alive mask: alive rows keep their relative order, matching the
// Subset order RemoveRows produces.
func (m *UnlearnableKNN) renumberEvalLog() {
	next := 0
	for i, a := range m.alive {
		if a {
			m.evalLog[i] = next
			next++
		} else {
			m.evalLog[i] = -1
		}
	}
}

// AttachEval attaches a fixed evaluation query set. After each Unlearn the
// model derives the next index from the current one via RemoveRows, so
// "flag → unlearn → re-measure accuracy" costs O(queries·k) per step
// instead of an index rebuild. Returns an error before Fit or when the
// query set is incompatible with the training features.
func (m *UnlearnableKNN) AttachEval(queries *Dataset, workers int) error {
	if m.dataset == nil {
		return fmt.Errorf("ml: AttachEval before Fit")
	}
	idx := make([]int, 0, m.nAlive)
	for i, a := range m.alive {
		if a {
			idx = append(idx, i)
		}
	}
	ix, err := NewNeighborIndex(m.dataset.Subset(idx), queries, workers)
	if err != nil {
		return err
	}
	m.evalIx = ix
	m.evalLog = make([]int, len(m.alive))
	m.renumberEvalLog()
	return nil
}

// EvalPredictions classifies the attached evaluation queries against the
// current alive set via the incrementally maintained index. Bit-identical
// to rebuilding a NeighborIndex over the surviving rows and calling
// PredictBatch(K).
func (m *UnlearnableKNN) EvalPredictions() ([]int, error) {
	if m.evalIx == nil {
		return nil, fmt.Errorf("ml: EvalPredictions without AttachEval: %w", nderr.ErrEmptyInput)
	}
	return m.evalIx.PredictBatchLabels(m.K, m.evalIx.Train.Y)
}

// EvalAccuracy scores EvalPredictions against the attached query labels.
func (m *UnlearnableKNN) EvalAccuracy() (float64, error) {
	preds, err := m.EvalPredictions()
	if err != nil {
		return 0, err
	}
	return Accuracy(m.evalIx.Queries.Y, preds), nil
}

// Alive returns the number of remaining training examples.
func (m *UnlearnableKNN) Alive() int { return m.nAlive }

// Predict votes among the k nearest *alive* training points.
func (m *UnlearnableKNN) Predict(x []float64) int {
	if m.dataset == nil {
		panic("ml: Predict before Fit")
	}
	order := m.inner.Neighbors(x)
	votes := make(map[int]int)
	counted := 0
	for _, i := range order {
		if !m.alive[i] {
			continue
		}
		votes[m.dataset.Y[i]]++
		counted++
		if counted == m.K {
			break
		}
	}
	best, bestV := 0, -1
	for y := 0; y < m.dataset.NumClasses(); y++ {
		if votes[y] > bestV {
			best, bestV = y, votes[y]
		}
	}
	return best
}

// UnlearnableLogReg is a logistic-regression classifier supporting
// *approximate* unlearning via a single Newton step: forgetting rows R
// updates θ ← θ + H⁻¹ Σ_{i∈R} ∇ℓ_i(θ), the influence-function update. The
// residual gradient norm after the update bounds the approximation error;
// when it exceeds Tolerance the model falls back to exact retraining, a
// certified-removal-style guardrail.
type UnlearnableLogReg struct {
	L2        float64 // ridge penalty (default 1e-3)
	Epochs    int     // epochs for (re)fitting (default 300)
	Tolerance float64 // max residual gradient norm before retraining (default 0.05)

	data     *Dataset
	alive    []bool
	nAlive   int
	theta    []float64 // weights ++ intercept
	retrains int
}

// NewUnlearnableLogReg returns an unlearnable logistic model with defaults.
func NewUnlearnableLogReg() *UnlearnableLogReg {
	return &UnlearnableLogReg{L2: 1e-3, Epochs: 300, Tolerance: 0.05}
}

// Retrains reports how many times unlearning fell back to full retraining.
func (m *UnlearnableLogReg) Retrains() int { return m.retrains }

// Alive returns the number of remaining training examples.
func (m *UnlearnableLogReg) Alive() int { return m.nAlive }

// Theta returns the current parameter vector (weights ++ intercept).
func (m *UnlearnableLogReg) Theta() []float64 { return linalg.Clone(m.theta) }

func (m *UnlearnableLogReg) fitAlive() error {
	var idx []int
	for i, a := range m.alive {
		if a {
			idx = append(idx, i)
		}
	}
	inner := &LogisticRegression{LR: 0.5, Epochs: m.Epochs, L2: m.L2}
	if err := inner.Fit(m.data.Subset(idx)); err != nil {
		return err
	}
	m.theta = append(append([]float64(nil), inner.Weights()...), inner.Intercept())
	return nil
}

// Fit trains on the full dataset.
func (m *UnlearnableLogReg) Fit(d *Dataset) error {
	if m.L2 <= 0 {
		m.L2 = 1e-3
	}
	if m.Epochs <= 0 {
		m.Epochs = 300
	}
	if m.Tolerance <= 0 {
		m.Tolerance = 0.05
	}
	m.data = d
	m.alive = make([]bool, d.Len())
	for i := range m.alive {
		m.alive[i] = true
	}
	m.nAlive = d.Len()
	m.retrains = 0
	return m.fitAlive()
}

func (m *UnlearnableLogReg) margin(x []float64) float64 {
	d := len(m.theta) - 1
	z := m.theta[d]
	for j := 0; j < d; j++ {
		z += m.theta[j] * x[j]
	}
	return z
}

// gradAt returns the mean regularized-loss gradient over the alive rows at
// the current parameters.
func (m *UnlearnableLogReg) gradAt() []float64 {
	dim := len(m.theta)
	d := dim - 1
	g := make([]float64, dim)
	for i := 0; i < m.data.Len(); i++ {
		if !m.alive[i] {
			continue
		}
		p := Sigmoid(m.margin(m.data.Row(i)))
		errv := p - float64(m.data.Y[i])
		for j := 0; j < d; j++ {
			g[j] += errv * m.data.X.At(i, j)
		}
		g[d] += errv
	}
	inv := 1 / float64(m.nAlive)
	linalg.Scale(inv, g)
	for j := 0; j < d; j++ {
		g[j] += m.L2 * m.theta[j]
	}
	return g
}

// Unlearn forgets the given rows via an influence-style Newton update and
// verifies the residual optimality gap, retraining when it is too large.
func (m *UnlearnableLogReg) Unlearn(rows []int) error {
	if m.data == nil {
		return fmt.Errorf("ml: Unlearn before Fit")
	}
	dead, err := normalizeUnlearnRows(m.alive, rows)
	if err != nil {
		return err
	}
	if len(dead) == 0 {
		return nil
	}
	if len(dead) == m.nAlive {
		return fmt.Errorf("ml: unlearning would empty the training set: %w", nderr.ErrEmptyInput)
	}
	for _, r := range dead {
		m.alive[r] = false
	}
	m.nAlive -= len(dead)
	// Newton step on the reduced objective from the current parameters
	dim := len(m.theta)
	d := dim - 1
	h := linalg.NewMatrix(dim, dim)
	xa := make([]float64, dim)
	for i := 0; i < m.data.Len(); i++ {
		if !m.alive[i] {
			continue
		}
		copy(xa, m.data.Row(i))
		xa[d] = 1
		p := Sigmoid(m.margin(m.data.Row(i)))
		w := p * (1 - p) / float64(m.nAlive)
		for a := 0; a < dim; a++ {
			if xa[a] == 0 {
				continue
			}
			linalg.AXPY(w*xa[a], xa, h.Row(a))
		}
	}
	h.AddScaledIdentity(m.L2)
	g := m.gradAt()
	step, err := linalg.SolveSPD(h, g)
	if err != nil {
		step = linalg.ConjugateGradient(h, g, 1e-10, 500)
	}
	linalg.AXPY(-1, step, m.theta)

	// guardrail: if the post-update gradient is still large, the quadratic
	// approximation was poor — retrain exactly
	if linalg.Norm2(m.gradAt()) > m.Tolerance {
		m.retrains++
		return m.fitAlive()
	}
	return nil
}

// Predict thresholds the logistic output at 0.5.
func (m *UnlearnableLogReg) Predict(x []float64) int {
	if m.theta == nil {
		panic("ml: Predict before Fit")
	}
	if m.margin(x) >= 0 {
		return 1
	}
	return 0
}

// Proba returns [P(y=0), P(y=1)].
func (m *UnlearnableLogReg) Proba(x []float64) []float64 {
	p := Sigmoid(m.margin(x))
	return []float64{1 - p, p}
}

// ParameterDistance returns ‖θ_a − θ_b‖₂ between two unlearnable models —
// used to measure how close unlearning lands to exact retraining.
func ParameterDistance(a, b *UnlearnableLogReg) float64 {
	if len(a.theta) != len(b.theta) {
		return math.Inf(1)
	}
	return linalg.Norm2(linalg.Sub(a.theta, b.theta))
}
