package ml

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
)

func TestUnlearnableKNNMatchesRetrain(t *testing.T) {
	d := blobs(80, 1.5, 301)
	test := blobs(40, 1.5, 302)
	m := NewUnlearnableKNN(5)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	remove := []int{0, 7, 13, 21, 40}
	if err := m.Unlearn(remove); err != nil {
		t.Fatal(err)
	}
	if m.Alive() != 75 {
		t.Errorf("alive = %d", m.Alive())
	}
	rm := make(map[int]bool)
	for _, r := range remove {
		rm[r] = true
	}
	rest, _ := d.Without(rm)
	retrained := NewKNN(5)
	if err := retrained.Fit(rest); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < test.Len(); i++ {
		if m.Predict(test.Row(i)) != retrained.Predict(test.Row(i)) {
			t.Fatalf("unlearned kNN diverges from retrained at test %d", i)
		}
	}
}

// Property: unlearnable kNN is EXACT — for random removals its predictions
// equal a freshly retrained kNN.
func TestQuickUnlearnableKNNExact(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := blobs(20+r.Intn(30), 1.2, seed)
		m := NewUnlearnableKNN(1 + r.Intn(4))
		if err := m.Fit(d); err != nil {
			return false
		}
		rm := make(map[int]bool)
		var rows []int
		for i := 0; i < d.Len()/3; i++ {
			row := r.Intn(d.Len())
			rows = append(rows, row)
			rm[row] = true
		}
		if len(rm) == d.Len() {
			return true
		}
		if err := m.Unlearn(rows); err != nil {
			return false
		}
		rest, _ := d.Without(rm)
		fresh := NewKNN(m.K)
		if err := fresh.Fit(rest); err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			x := []float64{r.NormFloat64() * 2, r.NormFloat64() * 2}
			if m.Predict(x) != fresh.Predict(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnlearnableKNNErrors(t *testing.T) {
	m := NewUnlearnableKNN(3)
	if err := m.Unlearn([]int{0}); err == nil {
		t.Error("expected error before Fit")
	}
	d := blobs(5, 2, 303)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlearn([]int{99}); err == nil {
		t.Error("expected range error")
	}
	if err := m.Unlearn([]int{0, 1, 2, 3, 4}); err == nil {
		t.Error("expected error emptying the set")
	}
}

func TestUnlearnableLogRegApproximatesRetrain(t *testing.T) {
	d := blobs(150, 2, 311)
	m := NewUnlearnableLogReg()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	remove := []int{3, 50, 77}
	if err := m.Unlearn(remove); err != nil {
		t.Fatal(err)
	}
	// exact retrain on the reduced data
	rm := map[int]bool{3: true, 50: true, 77: true}
	rest, _ := d.Without(rm)
	fresh := NewUnlearnableLogReg()
	if err := fresh.Fit(rest); err != nil {
		t.Fatal(err)
	}
	// the unlearning contract: either the residual gradient of the reduced
	// objective at the updated parameters is below tolerance, or the model
	// fell back to retraining
	if m.Retrains() == 0 {
		if g := linalg.Norm2(m.gradAt()); g > m.Tolerance {
			t.Errorf("residual gradient %v exceeds tolerance %v", g, m.Tolerance)
		}
	}
	if dist := ParameterDistance(m, fresh); dist > 2 {
		t.Errorf("unlearned parameters implausibly far (%v) from retrained", dist)
	}
	// predictions should agree on held-out data
	test := blobs(60, 2, 312)
	agree := 0
	for i := 0; i < test.Len(); i++ {
		if m.Predict(test.Row(i)) == fresh.Predict(test.Row(i)) {
			agree++
		}
	}
	if float64(agree)/float64(test.Len()) < 0.95 {
		t.Errorf("only %d/%d predictions agree after unlearning", agree, test.Len())
	}
}

func TestUnlearnableLogRegGuardrailRetrains(t *testing.T) {
	d := blobs(60, 2, 321)
	m := NewUnlearnableLogReg()
	m.Tolerance = 1e-12 // impossibly strict: every unlearn falls back
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlearn([]int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	if m.Retrains() != 1 {
		t.Errorf("retrains = %d, want 1", m.Retrains())
	}
	if m.Alive() != 52 {
		t.Errorf("alive = %d", m.Alive())
	}
}

func TestUnlearnableLogRegNoOpOnDeadRows(t *testing.T) {
	d := blobs(40, 2, 331)
	m := NewUnlearnableLogReg()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlearn([]int{5}); err != nil {
		t.Fatal(err)
	}
	theta := m.Theta()
	// unlearning the same row again must not move the parameters
	if err := m.Unlearn([]int{5}); err != nil {
		t.Fatal(err)
	}
	theta2 := m.Theta()
	for i := range theta {
		if theta[i] != theta2[i] {
			t.Fatal("re-unlearning a dead row moved parameters")
		}
	}
}

func TestRandomForestAccuracyAndCertifiedRadius(t *testing.T) {
	train := blobs(200, 2.5, 341)
	test := blobs(80, 2.5, 342)
	m := NewRandomForest(15, 7)
	acc := fitAccuracy(t, m, train, test)
	if acc < 0.9 {
		t.Errorf("forest accuracy = %v", acc)
	}
	// deep in a cluster the certified radius should be large
	deep := m.CertifiedRadius([]float64{3, 3})
	if deep < 5 {
		t.Errorf("certified radius deep in cluster = %d", deep)
	}
	p := m.Proba([]float64{3, 3})
	if p[1] < 0.8 {
		t.Errorf("proba deep in class 1 = %v", p)
	}
	if err := m.Fit(&Dataset{X: train.X.Clone(), Y: nil}); err == nil {
		t.Error("expected error on empty fit")
	}
}

func TestRandomForestDeterministicBySeed(t *testing.T) {
	train := blobs(100, 1.5, 351)
	test := blobs(50, 1.5, 352)
	a := NewRandomForest(9, 3)
	b := NewRandomForest(9, 3)
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < test.Len(); i++ {
		if a.Predict(test.Row(i)) != b.Predict(test.Row(i)) {
			t.Fatal("same-seed forests disagree")
		}
	}
}
