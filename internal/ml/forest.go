package ml

import (
	"fmt"
	"math/rand"
)

// RandomForest is a bagging ensemble of decision trees with per-tree
// bootstrap samples. Besides being a stronger baseline model, bagging is
// the construction behind certified robustness to data poisoning (Jia et
// al., AAAI 2021), which the survey cites: a prediction backed by a large
// vote margin is provably stable under small training-set edits — see
// CertifiedRadius.
type RandomForest struct {
	Trees    int   // number of trees (default 15)
	MaxDepth int   // per-tree depth (default 5)
	Seed     int64 // bootstrap seed

	trees   []*DecisionTree
	classes int
}

// NewRandomForest returns a forest with the given number of trees.
func NewRandomForest(trees int, seed int64) *RandomForest {
	return &RandomForest{Trees: trees, Seed: seed}
}

// Fit trains each tree on an independent bootstrap sample.
func (m *RandomForest) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: random forest cannot fit an empty dataset")
	}
	nTrees := m.Trees
	if nTrees <= 0 {
		nTrees = 15
	}
	depth := m.MaxDepth
	if depth <= 0 {
		depth = 5
	}
	r := rand.New(rand.NewSource(m.Seed))
	m.classes = d.NumClasses()
	m.trees = make([]*DecisionTree, nTrees)
	n := d.Len()
	for t := 0; t < nTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		tree := &DecisionTree{MaxDepth: depth, MinSamplesSplit: 2}
		if err := tree.Fit(d.Subset(idx)); err != nil {
			return err
		}
		m.trees[t] = tree
	}
	return nil
}

// votes tallies the per-class tree votes for x.
func (m *RandomForest) votes(x []float64) []int {
	counts := make([]int, m.classes)
	for _, t := range m.trees {
		counts[t.Predict(x)]++
	}
	return counts
}

// Predict returns the majority tree vote (ties toward the smaller label).
func (m *RandomForest) Predict(x []float64) int {
	if m.trees == nil {
		panic("ml: Predict before Fit")
	}
	counts := m.votes(x)
	best, bestV := 0, -1
	for c, v := range counts {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Proba returns the tree-vote fractions per class.
func (m *RandomForest) Proba(x []float64) []float64 {
	if m.trees == nil {
		panic("ml: Proba before Fit")
	}
	counts := m.votes(x)
	out := make([]float64, m.classes)
	for c, v := range counts {
		out[c] = float64(v) / float64(len(m.trees))
	}
	return out
}

// CertifiedRadius returns the bagging vote margin ⌊(v1−v2)/2⌋ for x, where
// v1 and v2 are the top-two per-class vote counts: the prediction provably
// cannot change unless more than that many trees flip, the intuition behind
// certified defenses to data poisoning via bagging.
func (m *RandomForest) CertifiedRadius(x []float64) int {
	counts := m.votes(x)
	best, second := -1, -1
	for _, v := range counts {
		if v > best {
			best, second = v, best
		} else if v > second {
			second = v
		}
	}
	if second < 0 {
		second = 0
	}
	return (best - second) / 2
}
