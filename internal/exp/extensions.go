package exp

import (
	"fmt"
	"time"

	"nde/internal/datagen"
	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/par"
)

// E13Result carries the unlearning-vs-retraining measurements.
type E13Result struct {
	Table *Table
	// SpeedupAt[i] is retrain-time / unlearn-time at DeleteSizes[i].
	DeleteSizes []int
	Speedup     []float64
	// Agreements[i] is the prediction agreement between the unlearned and
	// the retrained model.
	Agreements []float64
}

// E13Unlearning measures the §2.4 connection between data debugging and
// low-latency machine unlearning: influence-style unlearning of a logistic
// model must track exact retraining in predictions while being much
// faster, across deletion-batch sizes.
func E13Unlearning(n int, seed int64) (*E13Result, error) {
	dirty, valid, _, _, err := dirtyLetters(n, 0.1, seed)
	if err != nil {
		return nil, err
	}
	_ = valid
	test := dirty // prediction agreement is measured on the training points themselves
	sizes := []int{1, 5, 20}
	t := &Table{
		ID:      "E13",
		Title:   "§2.4 — low-latency unlearning vs. exact retraining (logistic regression)",
		Columns: []string{"deleted rows", "unlearn time", "retrain time", "speedup", "prediction agreement"},
		Notes:   "the influence-style Newton update forgets data orders of magnitude faster while matching retraining",
	}
	res := &E13Result{Table: t, DeleteSizes: sizes}
	for _, k := range sizes {
		m := ml.NewUnlearnableLogReg()
		if err := m.Fit(dirty); err != nil {
			return nil, err
		}
		rows := make([]int, k)
		for i := range rows {
			rows[i] = i * 3 // deterministic spread
		}
		start := time.Now()
		if err := m.Unlearn(rows); err != nil {
			return nil, err
		}
		unlearnTime := time.Since(start)

		rm := make(map[int]bool, k)
		for _, r := range rows {
			rm[r] = true
		}
		rest, _ := dirty.Without(rm)
		fresh := ml.NewUnlearnableLogReg()
		start = time.Now()
		if err := fresh.Fit(rest); err != nil {
			return nil, err
		}
		retrainTime := time.Since(start)

		agree := 0
		for i := 0; i < test.Len(); i++ {
			if m.Predict(test.Row(i)) == fresh.Predict(test.Row(i)) {
				agree++
			}
		}
		agreement := float64(agree) / float64(test.Len())
		denom := unlearnTime.Seconds()
		if denom <= 0 {
			denom = 1e-9
		}
		speedup := retrainTime.Seconds() / denom
		res.Speedup = append(res.Speedup, speedup)
		res.Agreements = append(res.Agreements, agreement)
		t.AddRow(fmt.Sprintf("%d", k),
			unlearnTime.Round(time.Microsecond).String(),
			retrainTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0fx", speedup),
			f3(agreement))
	}
	return res, nil
}

// E14Result carries the amortization quality/cost trade-off.
type E14Result struct {
	Table *Table
	// Budgets[i] oracle rows produced PrecisionAt[i] detection precision.
	Budgets     []int
	PrecisionAt []float64
	// FullPrecision is the detection precision of the full exact scores.
	FullPrecision float64
}

// E14Amortization measures model-based importance estimation (§2.1's
// "model-based estimation" / stochastic amortization): exact kNN-Shapley
// scores are computed for only a budget of rows, a cheap regression
// amortizes them to all rows, and detection precision is compared with the
// full computation across budgets.
func E14Amortization(n int, seed int64) (*E14Result, error) {
	dirty, valid, _, corrupted, err := dirtyLetters(n, 0.15, seed)
	if err != nil {
		return nil, err
	}
	k := len(corrupted)
	// pooled, index-backed path; bit-identical to sequential KNNShapley
	full, err := importance.KNNShapleyParallel(5, dirty, valid, 0)
	if err != nil {
		return nil, err
	}
	fullPrec := full.PrecisionAtK(corrupted, k)

	budgets := []int{dirty.Len() / 8, dirty.Len() / 4, dirty.Len() / 2}
	t := &Table{
		ID:      "E14",
		Title:   fmt.Sprintf("§2.1 — amortized importance estimation (full exact precision@%d = %.3f)", k, fullPrec),
		Columns: []string{"oracle budget", "amortized precision@k", "fraction of full cost"},
		Notes:   "a cheap regression over noisy per-row oracle scores approaches full-computation quality",
	}
	res := &E14Result{Table: t, Budgets: budgets, FullPrecision: fullPrec}
	for _, budget := range budgets {
		targets := make([]float64, budget)
		rows := make([]int, budget)
		// deterministic stratified budget: every (n/budget)-th row
		stride := dirty.Len() / budget
		for o := range rows {
			rows[o] = (o * stride) % dirty.Len()
			targets[o] = full[rows[o]]
		}
		est := importance.NewAmortizedEstimator()
		if err := est.Fit(dirty, rows, targets); err != nil {
			return nil, err
		}
		scores, err := est.Predict()
		if err != nil {
			return nil, err
		}
		prec := scores.PrecisionAtK(corrupted, k)
		res.PrecisionAt = append(res.PrecisionAt, prec)
		t.AddRow(fmt.Sprintf("%d/%d", budget, dirty.Len()), f3(prec),
			fmt.Sprintf("%.0f%%", 100*float64(budget)/float64(dirty.Len())))
	}
	return res, nil
}

// E15Result carries the RAG corpus-debugging measurements.
type E15Result struct {
	Table     *Table
	AccBefore float64
	AccAfter  float64
}

// E15RAGImportance demonstrates §2.1's retrieval-augmented-generation data
// importance: corpus documents get kNN-Shapley values against a benchmark
// of (query, answer) pairs, and pruning negative-importance (polluted)
// documents improves benchmark accuracy. Pruning effects on a single small
// corpus are noisy, so the experiment reports the mean over five generated
// corpora — the protocol of the cited study.
func E15RAGImportance(seed int64) (*E15Result, error) {
	const trials = 5
	// the corpora are independent: generate and score them concurrently on
	// the shared pool, then reduce serially in trial order so the sums are
	// bit-identical to the old serial loop for any worker count
	befores := make([]float64, trials)
	afters := make([]float64, trials)
	droppeds := make([]int, trials)
	if _, err := par.ForErr("exp.e15_trials", 0, trials, func(_, trial int) error {
		var err error
		befores[trial], afters[trial], droppeds[trial], err = ragTrial(seed + int64(trial))
		return err
	}); err != nil {
		return nil, err
	}
	var sumBefore, sumAfter float64
	var totalDropped int
	for trial := 0; trial < trials; trial++ {
		sumBefore += befores[trial] / trials
		sumAfter += afters[trial] / trials
		totalDropped += droppeds[trial]
	}
	t := &Table{
		ID:      "E15",
		Title:   "§2.1 — data importance for retrieval-augmented inference (mean of 5 corpora)",
		Columns: []string{"corpus state", "benchmark accuracy"},
		Notes:   "pruning negative-importance (polluted) corpus documents improves answers on average",
	}
	t.AddRow("original corpora (with polluted docs)", f3(sumBefore))
	t.AddRow(fmt.Sprintf("after pruning negative-importance docs (%d total)", totalDropped), f3(sumAfter))
	return &E15Result{Table: t, AccBefore: sumBefore, AccAfter: sumAfter}, nil
}

func ragTrial(seed int64) (before, after float64, dropped int, err error) {
	h := datagen.Hiring(datagen.Config{N: 120, Seed: seed})
	letters, err := h.Letters.MustColumn("letter_text").Strings()
	if err != nil {
		return 0, 0, 0, err
	}
	sentiments, err := h.Letters.MustColumn("sentiment").Strings()
	if err != nil {
		return 0, 0, 0, err
	}
	labels := make([]int, len(sentiments))
	for i, s := range sentiments {
		if s == "positive" {
			labels[i] = 1
		}
	}
	// pollute 10% of the corpus portion with flipped labels; the benchmark
	// keeps clean ground-truth answers
	corpusLabels := append([]int(nil), labels[:80]...)
	for i := 0; i < len(corpusLabels); i += 10 {
		corpusLabels[i] = 1 - corpusLabels[i]
	}
	corpus, err := importance.NewRAGCorpus(letters[:80], corpusLabels)
	if err != nil {
		return 0, 0, 0, err
	}
	queries := letters[80:]
	answers := labels[80:]

	if before, err = corpus.BenchmarkAccuracy(queries, answers, 5); err != nil {
		return 0, 0, 0, err
	}
	scores, err := corpus.DocumentImportance(queries, answers, 5)
	if err != nil {
		return 0, 0, 0, err
	}
	pruned, removed, err := corpus.PruneNegative(scores)
	if err != nil {
		return 0, 0, 0, err
	}
	if after, err = pruned.BenchmarkAccuracy(queries, answers, 5); err != nil {
		return 0, 0, 0, err
	}
	return before, after, len(removed), nil
}
