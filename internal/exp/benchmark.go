package exp

import (
	"fmt"

	"nde"
	"nde/internal/datagen"
	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/obs"
)

// E18Result carries the error-type × method detection matrix.
type E18Result struct {
	Table *Table
	// Precision[errorType][method] is detection precision@k.
	Precision map[string]map[string]float64
}

// E18DetectionBenchmark runs an OpenDataVal-style unified benchmark
// (Jiang et al., NeurIPS 2023 — cited in §2.4): the same importance methods
// are scored on *different error types* — label flips, feature outliers and
// out-of-distribution rows — because a method that excels at one error
// class can be blind to another. Detection precision@k is reported per
// cell, with k = the number of injected errors.
func E18DetectionBenchmark(n int, seed int64) (*E18Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dTrain, dValid, _, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		return nil, err
	}

	type corruption struct {
		name    string
		corrupt func() (*ml.Dataset, map[int]bool, error)
	}
	corruptions := []corruption{
		{"label-flips", func() (*ml.Dataset, map[int]bool, error) {
			return datagen.FlipDatasetLabels(dTrain, 0.12, seed+1)
		}},
		{"feature-outliers", func() (*ml.Dataset, map[int]bool, error) {
			out := dTrain.Clone()
			corrupted := make(map[int]bool)
			// blow up the rating feature of every 8th row
			f := out.Dim() - 1
			for i := 0; i < out.Len(); i += 8 {
				out.X.Set(i, f, out.X.At(i, f)*50+25)
				corrupted[i] = true
			}
			return out, corrupted, nil
		}},
		{"ood-rows", func() (*ml.Dataset, map[int]bool, error) {
			k := dTrain.Len() / 8
			out, appended := datagen.AppendOOD(dTrain, k, 4, seed+2)
			corrupted := make(map[int]bool, len(appended))
			for _, i := range appended {
				corrupted[i] = true
			}
			return out, corrupted, nil
		}},
	}

	type method struct {
		name string
		run  func(train *ml.Dataset) (importance.Scores, error)
	}
	methods := []method{
		{"knn-shapley", func(train *ml.Dataset) (importance.Scores, error) {
			return importance.KNNShapley(5, train, dValid)
		}},
		{"influence", func(train *ml.Dataset) (importance.Scores, error) {
			return importance.Influence(train, dValid, importance.InfluenceConfig{})
		}},
		{"self-confidence", func(train *ml.Dataset) (importance.Scores, error) {
			return importance.SelfConfidence(train, importance.NoiseConfig{Seed: seed})
		}},
	}

	cols := []string{"error type", "k"}
	for _, m := range methods {
		cols = append(cols, m.name)
	}
	t := &Table{
		ID:      "E18",
		Title:   "§2.4 — unified detection benchmark: error types × importance methods (precision@k)",
		Columns: cols,
		Notes: "no single method dominates every error class: isolated errors (outliers, OOD) are " +
			"dead weight for kNN-Shapley (value ~0, never retrieved) while uncertainty scores flag them",
	}
	res := &E18Result{Table: t, Precision: make(map[string]map[string]float64)}
	bsp := obs.StartSpan("exp.e18_detection_benchmark")
	bsp.SetInt("n", int64(n)).SetInt("cells", int64(len(corruptions)*len(methods)))
	defer bsp.End()
	prog := obs.NewProgress("e18_cells", len(corruptions)*len(methods))
	defer prog.Done()
	for _, c := range corruptions {
		train, corrupted, err := c.corrupt()
		if err != nil {
			return nil, err
		}
		k := len(corrupted)
		row := []string{c.name, fmt.Sprintf("%d", k)}
		res.Precision[c.name] = make(map[string]float64)
		for _, m := range methods {
			msp := obs.StartSpan("exp.e18_method")
			msp.SetStr("error_type", c.name).SetStr("method", m.name).SetInt("rows", int64(train.Len()))
			scores, err := m.run(train)
			if err != nil {
				msp.End()
				return nil, fmt.Errorf("exp: %s on %s: %w", m.name, c.name, err)
			}
			prec := scores.PrecisionAtK(corrupted, k)
			res.Precision[c.name][m.name] = prec
			row = append(row, f3(prec))
			obs.Inc("exp_benchmark_method_runs_total")
			obs.ObserveWith("exp_benchmark_precision_at_k", prec, obs.LinearBuckets(0.1, 0.1, 10))
			prog.Tick(1)
			msp.SetStr("precision_at_k", f3(prec)).End()
		}
		t.AddRow(row...)
	}
	return res, nil
}
