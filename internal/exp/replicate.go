package exp

import (
	"fmt"

	"nde/internal/obs"
	"nde/internal/par"
)

// Replicate is one seed's run of a replicated experiment.
type Replicate struct {
	Seed  int64
	Table *Table
	// Extra is the experiment's free-form companion output (query plan,
	// sparkline, leaderboard), when it has one.
	Extra string
}

// Replicates fans one experiment out across several seeds on the shared
// worker pool — the tutorial's "repeat the figure with R seeds" protocol
// that used to run strictly serially. Every replicate is independent (run
// must touch only per-call state; every E* generator qualifies), results
// are collected in seed order and the first error is selected in seed
// order, so the output is bit-for-bit identical for any worker count,
// including 1.
//
// Observability: an exp.replicates span with one exp.replicate child per
// seed, and the exp_replicates_total counter.
func Replicates(id string, seeds []int64, workers int, run func(seed int64) (*Table, string, error)) ([]Replicate, error) {
	sp := obs.StartSpan("exp.replicates")
	sp.SetStr("id", id).
		SetInt("replicates", int64(len(seeds))).
		SetInt("workers", int64(par.Workers(workers, len(seeds))))
	defer sp.End()

	out := make([]Replicate, len(seeds))
	_, err := par.ForErr("exp.replicates", workers, len(seeds), func(_, i int) error {
		rsp := sp.StartChild("exp.replicate")
		rsp.SetInt("seed", seeds[i])
		defer rsp.End()
		table, extra, err := run(seeds[i])
		if err != nil {
			return fmt.Errorf("exp: %s replicate seed %d: %w", id, seeds[i], err)
		}
		out[i] = Replicate{Seed: seeds[i], Table: table, Extra: extra}
		return nil
	})
	obs.Count("exp_replicates_total", int64(len(seeds)))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SeedSequence returns the canonical replicate seeds base..base+n-1.
func SeedSequence(base int64, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}
