package exp

import (
	"fmt"
	"math/rand"

	"nde"
	"nde/internal/challenge"
	"nde/internal/datagen"
	"nde/internal/frame"
	"nde/internal/importance"
	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/pipeline"
)

// E9Result carries the challenge leaderboard.
type E9Result struct {
	Table       *Table
	Leaderboard *challenge.Leaderboard
	Scores      map[string]float64
}

// E9Challenge plays the §3.2 data-debugging challenge with three scripted
// contestants — random cleaning, noise-score cleaning and kNN-Shapley
// cleaning — under the same oracle budget, and renders the leaderboard.
func E9Challenge(n int, seed int64) (*E9Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dTrain, dValid, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		return nil, err
	}
	truth := append([]int(nil), dTrain.Y...)
	dirty, corrupted, err := datagen.FlipDatasetLabels(dTrain, 0.2, seed+2)
	if err != nil {
		return nil, err
	}
	budget := len(corrupted)

	var lb challenge.Leaderboard
	scores := make(map[string]float64)
	play := func(name string, pick func(c *challenge.Challenge) ([]int, error)) error {
		c, err := challenge.New(dirty, truth, dValid, dTest, nil, budget)
		if err != nil {
			return err
		}
		base, err := c.BaselineScore()
		if err != nil {
			return err
		}
		rows, err := pick(c)
		if err != nil {
			return err
		}
		score, err := c.Submit(rows)
		if err != nil {
			return err
		}
		lb.Submit(challenge.Entry{Name: name, Score: score, Repairs: len(rows), Baseline: base})
		scores[name] = score
		return nil
	}

	if err := play("random", func(c *challenge.Challenge) ([]int, error) {
		return rand.New(rand.NewSource(seed)).Perm(dirty.Len())[:budget], nil
	}); err != nil {
		return nil, err
	}
	if err := play("noise-score", func(c *challenge.Challenge) ([]int, error) {
		sc, err := importance.SelfConfidence(c.Train(), importance.NoiseConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
		return sc.BottomK(budget), nil
	}); err != nil {
		return nil, err
	}
	if err := play("knn-shapley", func(c *challenge.Challenge) ([]int, error) {
		sc, err := importance.KNNShapley(5, c.Train(), c.Valid())
		if err != nil {
			return nil, err
		}
		return sc.BottomK(budget), nil
	}); err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("§3.2 — data-debugging challenge leaderboard (budget %d repairs)", budget),
		Columns: []string{"rank", "contestant", "hidden-test score", "gain"},
		Notes:   "informed strategies should out-rank random cleaning",
	}
	for i, e := range lb.Top(3) {
		t.AddRow(fmt.Sprintf("%d", i+1), e.Name, f3(e.Score), fmt.Sprintf("%+0.3f", e.Gain()))
	}
	return &E9Result{Table: t, Leaderboard: &lb, Scores: scores}, nil
}

// E10Result carries the screening findings.
type E10Result struct {
	Table *Table
	// Detected maps check name -> whether the injected issue was caught.
	Detected map[string]bool
}

// E10PipelineScreening injects three classic pipeline issues — train/test
// leakage, a label-distribution shift caused by a filter, and a protected
// group with vanishing support — and verifies that the ArgusEyes-style
// screening checks detect each of them while passing the clean pipeline.
func E10PipelineScreening(n int, seed int64) (*E10Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	detected := make(map[string]bool)

	// 1. leakage: copy 10 training rows into the test split
	leakRows := make([]int, 10)
	for i := range leakRows {
		leakRows[i] = i
	}
	leaked, _, _, err := frame.Concat(s.Test, s.Train.Take(leakRows))
	if err != nil {
		return nil, err
	}
	issues, err := pipeline.ScreenLeakage(s.Train, leaked, []string{"person_id"})
	if err != nil {
		return nil, err
	}
	detected["data-leakage"] = len(issues) > 0
	clean, err := pipeline.ScreenLeakage(s.Train, s.Test, []string{"person_id"})
	if err != nil {
		return nil, err
	}
	detected["data-leakage-clean-pass"] = len(clean) == 0

	// 2. label shift: drop most positive letters
	r := rand.New(rand.NewSource(seed))
	biased, _ := s.Train.Filter(func(row frame.Row) bool {
		return row.Str("sentiment") != "positive" || r.Float64() < 0.25
	})
	issues, err = pipeline.ScreenLabelShift(s.Train, biased, "sentiment", 0.1)
	if err != nil {
		return nil, err
	}
	detected["label-shift"] = len(issues) > 0
	clean, err = pipeline.ScreenLabelShift(s.Train, s.Train, "sentiment", 0.1)
	if err != nil {
		return nil, err
	}
	detected["label-shift-clean-pass"] = len(clean) == 0

	// 3. group coverage: bias the demographics sample against one sex
	biasedDemo, _, err := datagen.BiasedSample(s.Data.Demographics, "sex", frame.Str("f"), 0.02, seed+1)
	if err != nil {
		return nil, err
	}
	issues, err = pipeline.ScreenGroupCoverage(biasedDemo, "sex", 20)
	if err != nil {
		return nil, err
	}
	detected["group-coverage"] = len(issues) > 0

	t := &Table{
		ID:      "E10",
		Title:   "§2.2 — ArgusEyes-style pipeline screening on injected issues",
		Columns: []string{"check", "injected issue detected"},
		Notes:   "clean-pass rows verify the checks stay silent on healthy pipelines",
	}
	for _, name := range []string{"data-leakage", "data-leakage-clean-pass", "label-shift", "label-shift-clean-pass", "group-coverage"} {
		t.AddRow(name, fmt.Sprintf("%v", detected[name]))
	}
	return &E10Result{Table: t, Detected: detected}, nil
}

// E12Result carries the fairness-debugging output.
type E12Result struct {
	Table         *Table
	BaseViolation float64
	TopDelta      float64
	TopSubgroup   string
}

// E12GopherFairness reproduces the Gopher-style fairness debugging demo: a
// poisoned data source flips labels for one protected group's positives,
// creating an equalized-odds violation; the subgroup search should surface
// the poisoned slice as the top explanation.
func E12GopherFairness(n int, seed int64) (*E12Result, error) {
	train, attrs, valid := poisonedHiring(n, seed)
	base, subs, err := importance.GopherExplanations(train, attrs, valid, importance.GopherConfig{TopK: 3, MinSupport: 5})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E12",
		Title:   "§2.1 — Gopher-style fairness debugging: top subgroup explanations",
		Columns: []string{"subgroup", "support", "Δ equalized-odds violation"},
		Notes:   fmt.Sprintf("baseline equalized-odds violation: %.3f; the poisoned slice is src=bad", base),
	}
	res := &E12Result{Table: t, BaseViolation: base}
	for i, sg := range subs {
		preds := ""
		for j, p := range sg.Predicates {
			if j > 0 {
				preds += " ∧ "
			}
			preds += p.String()
		}
		t.AddRow(preds, fmt.Sprintf("%d", sg.Support), f4(sg.Delta))
		if i == 0 {
			res.TopDelta = sg.Delta
			res.TopSubgroup = preds
		}
	}
	return res, nil
}

// poisonedHiring builds the E12 fixture: group membership is a model-
// visible feature and a "bad" source flips most group-b positive labels.
func poisonedHiring(n int, seed int64) (*ml.Dataset, *frame.Frame, *ml.Dataset) {
	r := rand.New(rand.NewSource(seed))
	gen := func(m int, poison bool) (*linalg.Matrix, []int, []string, []string) {
		x := linalg.NewMatrix(m, 3)
		y := make([]int, m)
		grp := make([]string, m)
		src := make([]string, m)
		for i := 0; i < m; i++ {
			c := i % 2
			sign := float64(2*c - 1)
			x.Set(i, 0, sign*2+r.NormFloat64())
			x.Set(i, 1, sign*2+r.NormFloat64())
			y[i] = c
			grp[i] = "a"
			src[i] = "good"
			if r.Float64() < 0.5 {
				grp[i] = "b"
				x.Set(i, 2, 1)
			}
			if poison && grp[i] == "b" && y[i] == 1 && r.Float64() < 0.8 {
				y[i] = 0
				src[i] = "bad"
			}
		}
		return x, y, grp, src
	}
	x, y, grp, src := gen(n, true)
	train, _ := ml.NewDataset(x, y)
	attrs := frame.MustNew(
		frame.NewStringSeries("grp", grp, nil),
		frame.NewStringSeries("src", src, nil),
	)
	vx, vy, vg, _ := gen(n/2, false)
	valid, _ := ml.NewDataset(vx, vy)
	valid, _ = valid.WithGroups(vg)
	return train, attrs, valid
}
