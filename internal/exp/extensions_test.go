package exp

import "testing"

func TestE13UnlearningShape(t *testing.T) {
	r, err := E13Unlearning(200, 61)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Speedup) != 3 {
		t.Fatalf("speedups = %v", r.Speedup)
	}
	for i, agree := range r.Agreements {
		if agree < 0.9 {
			t.Errorf("delete %d: prediction agreement %v below 0.9", r.DeleteSizes[i], agree)
		}
	}
	// unlearning a single point should be clearly faster than retraining
	if r.Speedup[0] < 2 {
		t.Errorf("single-delete speedup = %vx", r.Speedup[0])
	}
}

func TestE14AmortizationShape(t *testing.T) {
	r, err := E14Amortization(250, 62)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PrecisionAt) != 3 {
		t.Fatalf("precisions = %v", r.PrecisionAt)
	}
	// the largest budget's precision should approach the full computation
	last := r.PrecisionAt[len(r.PrecisionAt)-1]
	if last < r.FullPrecision-0.3 {
		t.Errorf("amortized precision %v too far below full %v", last, r.FullPrecision)
	}
	// every budget should beat the 0.15 random baseline
	for i, p := range r.PrecisionAt {
		if p <= 0.15 {
			t.Errorf("budget %d: precision %v at random-baseline level", r.Budgets[i], p)
		}
	}
}

func TestE15RAGImportanceShape(t *testing.T) {
	r, err := E15RAGImportance(63)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccAfter < r.AccBefore {
		t.Errorf("pruning polluted docs decreased accuracy: %v -> %v", r.AccBefore, r.AccAfter)
	}
}

func TestE16WhatIfOptimizationShape(t *testing.T) {
	r, err := E16WhatIfOptimization(300, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agree {
		t.Error("provenance what-if diverged from replay ground truth")
	}
	if r.Speedup <= 1 {
		t.Errorf("speedup = %vx, expected > 1", r.Speedup)
	}
}

func TestE17DatascopeAblationShape(t *testing.T) {
	r, err := E17DatascopeAblation(300, 65)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Deltas) != 3 {
		t.Fatalf("variants = %d", len(r.Deltas))
	}
	for name, delta := range r.Deltas {
		if delta < -0.05 {
			t.Errorf("%s: removing its bottom-25 hurt by %v", name, delta)
		}
	}
	// the group-Shapley ranking should share a majority of the additive
	// baseline's bottom-25
	if r.Overlap["group-shapley"] < 13 {
		t.Errorf("group-shapley overlap = %d/25", r.Overlap["group-shapley"])
	}
}
