package exp

import (
	"fmt"

	"nde"
	"nde/internal/datagen"
	"nde/internal/frame"
	"nde/internal/ml"
)

// E1Result carries the Figure-2 headline numbers alongside the table.
type E1Result struct {
	Table               *Table
	AccClean            float64
	AccDirty            float64
	AccCleaned          float64
	DetectionPrecision  float64
	CorruptedInBottom25 int
}

// E1Figure2 reproduces the Figure-2 demo: inject 10% label errors into the
// recommendation letters, identify the most strongly affected tuples via
// kNN-Shapley, clean the bottom 25, and report the accuracy recovery
// (the paper's snippet reports 0.76 → 0.79).
func E1Figure2(n int, seed int64) (*E1Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	accClean, err := nde.EvaluateModel(s.Train, s.Test)
	if err != nil {
		return nil, err
	}
	dirty, corrupted, err := nde.InjectLabelErrors(s.Train, 0.1, seed+1)
	if err != nil {
		return nil, err
	}
	accDirty, err := nde.EvaluateModel(dirty, s.Test)
	if err != nil {
		return nil, err
	}
	scores, err := nde.KNNShapleyValues(dirty, s.Valid, 5)
	if err != nil {
		return nil, err
	}
	const k = 25
	lowest := scores.BottomK(k)
	repaired := dirty.Clone()
	hits := 0
	for _, i := range lowest {
		if corrupted[i] {
			hits++
		}
		orig, err := s.Train.Value(i, "sentiment")
		if err != nil {
			return nil, err
		}
		if err := repaired.MustColumn("sentiment").Set(i, orig); err != nil {
			return nil, err
		}
	}
	accCleaned, err := nde.EvaluateModel(repaired, s.Test)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   "Figure 2 — importance-guided label-error cleaning (kNN-Shapley, bottom-25)",
		Columns: []string{"stage", "test accuracy"},
		Notes: fmt.Sprintf("paper snippet: 0.76 -> 0.79 after cleaning; detection precision@%d = %.2f",
			k, float64(hits)/float64(k)),
	}
	t.AddRow("clean data", f3(accClean))
	t.AddRow("with 10% label errors", f3(accDirty))
	t.AddRow("after cleaning bottom-25", f3(accCleaned))
	return &E1Result{
		Table:               t,
		AccClean:            accClean,
		AccDirty:            accDirty,
		AccCleaned:          accCleaned,
		DetectionPrecision:  float64(hits) / float64(k),
		CorruptedInBottom25: hits,
	}, nil
}

// E2Result carries the Figure-3 numbers alongside the table and plan.
type E2Result struct {
	Table       *Table
	Plan        string
	AccBefore   float64
	AccAfter    float64
	AccDelta    float64
	OutputRows  int
	RemovedRows int
}

// E2Figure3 reproduces the Figure-3 demo: build the join/filter/encode
// pipeline, compute source-tuple importance through provenance (Datascope),
// remove the 25 lowest-importance source tuples' outputs, and measure the
// accuracy change (the paper's snippet reports ≈0.027).
func E2Figure3(n int, seed int64) (*E2Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dirty, _, err := nde.InjectLabelErrors(s.Train, 0.1, seed+1)
	if err != nil {
		return nil, err
	}
	hp, err := nde.BuildHiringPipeline(dirty, s.Data.Jobs, s.Data.Social)
	if err != nil {
		return nil, err
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		return nil, err
	}
	valid, err := hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder)
	if err != nil {
		return nil, err
	}
	scores, err := hp.DatascopeScores(ft, valid, 3)
	if err != nil {
		return nil, err
	}
	lowest := make(map[int]bool)
	for _, i := range scores.BottomK(25) {
		lowest[i] = true
	}
	var remove []int
	for o, rows := range ft.SourceRows("train") {
		for _, r := range rows {
			if lowest[r] {
				remove = append(remove, o)
				break
			}
		}
	}
	before, after, err := nde.RemoveAndEvaluate(ft, remove, valid)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "Figure 3 — Datascope importance over a provenance-tracked pipeline",
		Columns: []string{"quantity", "value"},
		Notes:   "paper snippet: 'Removal changed accuracy by 0.027'",
	}
	t.AddRow("pipeline output rows", fmt.Sprintf("%d", ft.Data.Len()))
	t.AddRow("accuracy before removal", f3(before))
	t.AddRow("accuracy after removing bottom-25 source tuples", f3(after))
	t.AddRow("accuracy delta", f4(after-before))
	return &E2Result{
		Table:       t,
		Plan:        hp.ShowQueryPlan(),
		AccBefore:   before,
		AccAfter:    after,
		AccDelta:    after - before,
		OutputRows:  ft.Data.Len(),
		RemovedRows: len(remove),
	}, nil
}

// E3Result carries the Figure-4 curve alongside the table.
type E3Result struct {
	Table       *Table
	Percentages []float64
	Losses      []float64
}

// E3Figure4 reproduces the Figure-4 demo: sweep the percentage of MNAR
// missing values in the employer_rating feature and plot the maximum
// worst-case loss estimated by Zorro. The series must rise with
// missingness.
func E3Figure4(n int, seed int64) (*E3Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dTrain, _, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		return nil, err
	}
	feature := dTrain.Dim() - 1 // standardized employer_rating
	pcts := []float64{0.05, 0.10, 0.15, 0.20, 0.25}
	t := &Table{
		ID:      "E3",
		Title:   "Figure 4 — maximum worst-case loss vs. % missing values (MNAR, employer_rating)",
		Columns: []string{"% missing", "max worst-case loss"},
		Notes:   "the paper's figure shows a rising curve over 5%..25%",
	}
	losses := make([]float64, len(pcts))
	for i, pct := range pcts {
		sym, _, err := nde.EncodeSymbolic(dTrain, feature, pct, nde.MNAR, seed+2)
		if err != nil {
			return nil, err
		}
		loss, err := nde.EstimateWithZorro(sym, dTest, 16, seed+3)
		if err != nil {
			return nil, err
		}
		losses[i] = loss
		t.AddRow(fmt.Sprintf("%.0f%%", pct*100), f4(loss))
	}
	return &E3Result{Table: t, Percentages: pcts, Losses: losses}, nil
}

// E4Result carries the Figure-1 quality panel alongside the table.
type E4Result struct {
	Table *Table
	Clean ml.QualityReport
	Dirty ml.QualityReport
}

// E4Figure1 reproduces the Figure-1 quality panel: correctness (accuracy,
// F1), fairness (equalized odds, predictive parity) and stability (entropy)
// metrics of the sentiment model on clean vs. corrupted training data,
// with the applicant's sex as the protected attribute.
func E4Figure1(n int, seed int64) (*E4Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)

	withGroups := func(train *frame.Frame) (ml.QualityReport, error) {
		ct := nde.LetterFeaturizer()
		if err := ct.Fit(train); err != nil {
			return ml.QualityReport{}, err
		}
		featurize := func(f *frame.Frame) (*ml.Dataset, error) {
			x, err := ct.Transform(f)
			if err != nil {
				return nil, err
			}
			labels := f.MustColumn("sentiment")
			y := make([]int, labels.Len())
			for i := range y {
				if labels.Str(i) == "positive" {
					y[i] = 1
				}
			}
			return ml.NewDataset(x, y)
		}
		dTrain, err := featurize(train)
		if err != nil {
			return ml.QualityReport{}, err
		}
		// attach sex groups to the test split via the demographics table
		joined, err := frame.JoinOn(s.Test, s.Data.Demographics, "person_id", frame.InnerJoin)
		if err != nil {
			return ml.QualityReport{}, err
		}
		dTest, err := featurize(joined.Frame)
		if err != nil {
			return ml.QualityReport{}, err
		}
		groups, err := joined.Frame.MustColumn("sex").Strings()
		if err != nil {
			return ml.QualityReport{}, err
		}
		if dTest, err = dTest.WithGroups(groups); err != nil {
			return ml.QualityReport{}, err
		}
		m := nde.DefaultModel()
		if err := m.Fit(dTrain); err != nil {
			return ml.QualityReport{}, err
		}
		pred := ml.PredictAll(m, dTest)
		return ml.Report(dTest, pred, 1), nil
	}

	clean, err := withGroups(s.Train)
	if err != nil {
		return nil, err
	}
	dirtyTrain, _, err := nde.InjectLabelErrors(s.Train, 0.15, seed+1)
	if err != nil {
		return nil, err
	}
	dirty, err := withGroups(dirtyTrain)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E4",
		Title:   "Figure 1 — quality-metric panel (clean vs. dirty training data)",
		Columns: []string{"metric", "clean", "dirty"},
		Notes:   "correctness degrades under label errors; fairness/stability metrics shift",
	}
	t.AddRow("accuracy", f3(clean.Accuracy), f3(dirty.Accuracy))
	t.AddRow("f1 score", f3(clean.F1), f3(dirty.F1))
	t.AddRow("equalized odds", f3(clean.EqualizedOdds), f3(dirty.EqualizedOdds))
	t.AddRow("predictive parity", f3(clean.PredictiveParity), f3(dirty.PredictiveParity))
	t.AddRow("entropy", f3(clean.Entropy), f3(dirty.Entropy))
	return &E4Result{Table: t, Clean: clean, Dirty: dirty}, nil
}

// helper shared by the method-comparison experiments: featurized letters
// with injected label errors.
func dirtyLetters(n int, flip float64, seed int64) (dirty, valid *ml.Dataset, truth []int, corrupted map[int]bool, err error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dTrain, dValid, _, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	truth = append([]int(nil), dTrain.Y...)
	dirty, corrupted, err = datagen.FlipDatasetLabels(dTrain, flip, seed+10)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return dirty, dValid, truth, corrupted, nil
}
