package exp

import (
	"fmt"
	"math/rand"
	"time"

	"nde"
	"nde/internal/ml"
	"nde/internal/pipeline"
	"nde/internal/prov"
)

// E16Result carries the what-if optimization measurements.
type E16Result struct {
	Table *Table
	// Agree reports whether every variant's fast metric equals its replay.
	Agree bool
	// Speedup is total replay time / total fast time over all variants.
	Speedup float64
}

// E16WhatIfOptimization reproduces the data-centric what-if claim
// (Grafberger et al., SIGMOD 2023): evaluating many source-tuple-removal
// variants through provenance filtering gives the same answers as replaying
// the pipeline per variant, at a fraction of the cost — and the advantage
// grows with the number of variants.
func E16WhatIfOptimization(n int, seed int64) (*E16Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		return nil, err
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		return nil, err
	}
	valid, err := hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder)
	if err != nil {
		return nil, err
	}
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	featurize := func(res *pipeline.Result) (*ml.Dataset, error) {
		x, err := hp.Encoder.Transform(res.Frame)
		if err != nil {
			return nil, err
		}
		labels := res.Frame.MustColumn("sentiment")
		y := make([]int, labels.Len())
		for i := range y {
			if labels.Str(i) == "positive" {
				y[i] = 1
			}
		}
		return ml.NewDataset(x, y)
	}

	r := rand.New(rand.NewSource(seed + 3))
	const nVariants = 20
	variants := make([]pipeline.RemovalVariant, nVariants)
	for v := range variants {
		var remove []prov.TupleID
		for row := 0; row < s.Train.NumRows(); row++ {
			if r.Float64() < 0.1 {
				remove = append(remove, prov.TupleID{Table: "train", Row: row})
			}
		}
		variants[v] = pipeline.RemovalVariant{Name: fmt.Sprintf("v%d", v), Remove: remove}
	}

	start := time.Now()
	fast, err := pipeline.WhatIfRemovals(ft, variants, newModel, valid)
	if err != nil {
		return nil, err
	}
	fastTime := time.Since(start)

	agree := true
	start = time.Now()
	for v, variant := range variants {
		removed := make(map[prov.TupleID]bool, len(variant.Remove))
		for _, id := range variant.Remove {
			removed[id] = true
		}
		replayed, err := hp.Pipeline.Replay(hp.Output, func(id prov.TupleID) bool { return removed[id] })
		if err != nil {
			return nil, err
		}
		train, err := featurize(replayed)
		if err != nil {
			return nil, err
		}
		slow, err := ml.EvaluateAccuracy(newModel(), train, valid)
		if err != nil {
			return nil, err
		}
		if slow != fast[v].Metric {
			agree = false
		}
	}
	slowTime := time.Since(start)

	speedup := slowTime.Seconds() / fastTime.Seconds()
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("§2.2 — provenance-accelerated what-if analysis (%d removal variants)", nVariants),
		Columns: []string{"approach", "total time", "answers"},
		Notes:   "the provenance shortcut returns identical metrics without replaying joins/filters/encoders",
	}
	t.AddRow("replay pipeline per variant", slowTime.Round(time.Millisecond).String(), "ground truth")
	agreeText := "identical"
	if !agree {
		agreeText = "DIVERGED"
	}
	t.AddRow("provenance filtering", fastTime.Round(time.Millisecond).String(), agreeText)
	t.AddRow("speedup", fmt.Sprintf("%.1fx", speedup), "")
	return &E16Result{Table: t, Agree: agree, Speedup: speedup}, nil
}
