package exp

import (
	"strings"
	"testing"
)

// These are the integration tests of the experiment harness: each
// experiment must run end to end and reproduce the *shape* of the
// corresponding figure/table of the tutorial (who wins, which direction the
// curve bends), not its absolute numbers.

func TestE1Figure2Shape(t *testing.T) {
	r, err := E1Figure2(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccDirty >= r.AccClean {
		t.Errorf("label errors should hurt: clean %v, dirty %v", r.AccClean, r.AccDirty)
	}
	if r.AccCleaned <= r.AccDirty {
		t.Errorf("prioritized cleaning should help: dirty %v, cleaned %v", r.AccDirty, r.AccCleaned)
	}
	if r.DetectionPrecision < 0.5 {
		t.Errorf("detection precision = %v", r.DetectionPrecision)
	}
	out := r.Table.String()
	if !strings.Contains(out, "E1") || !strings.Contains(out, "after cleaning") {
		t.Errorf("table:\n%s", out)
	}
}

func TestE2Figure3Shape(t *testing.T) {
	r, err := E2Figure3(400, 43)
	if err != nil {
		t.Fatal(err)
	}
	if r.OutputRows == 0 {
		t.Fatal("pipeline output empty")
	}
	if !strings.Contains(r.Plan, "Join") || !strings.Contains(r.Plan, "Filter") {
		t.Errorf("plan:\n%s", r.Plan)
	}
	// removing lowest-importance tuples should not substantially hurt
	if r.AccDelta < -0.05 {
		t.Errorf("removal hurt too much: delta %v", r.AccDelta)
	}
	if r.RemovedRows == 0 {
		t.Error("no rows removed")
	}
}

func TestE3Figure4Shape(t *testing.T) {
	r, err := E3Figure4(200, 44)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Losses) != 5 {
		t.Fatalf("losses = %v", r.Losses)
	}
	if r.Losses[4] <= r.Losses[0] {
		t.Errorf("worst-case loss should rise with missingness: %v", r.Losses)
	}
}

func TestE4Figure1Shape(t *testing.T) {
	r, err := E4Figure1(300, 45)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dirty.Accuracy >= r.Clean.Accuracy {
		t.Errorf("dirty accuracy %v >= clean %v", r.Dirty.Accuracy, r.Clean.Accuracy)
	}
	if len(r.Table.Rows) != 5 {
		t.Errorf("panel rows = %d", len(r.Table.Rows))
	}
}

func TestE5MethodComparisonShape(t *testing.T) {
	r, err := E5MethodComparison(120, 46)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Methods) != 8 {
		t.Fatalf("methods = %v", r.Methods)
	}
	// every method except LOO must beat the random baseline (flip rate
	// 0.15); LOO is documented to be noisy for kNN utilities, where single
	// removals rarely change any prediction
	for name, prec := range r.Precisions {
		if name == "loo" {
			continue
		}
		if prec <= 0.15 {
			t.Errorf("%s precision %v does not beat random baseline", name, prec)
		}
	}
	// the exact closed form should be among the strongest detectors
	if r.Precisions["knn-shapley"] < 0.5 {
		t.Errorf("knn-shapley precision = %v", r.Precisions["knn-shapley"])
	}
}

func TestE6ScalabilityShape(t *testing.T) {
	r, err := E6Scalability(47)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Sizes {
		if r.Seconds["knn"][i] >= r.Seconds["tmc"][i] {
			t.Errorf("size %d: kNN-Shapley %vs not faster than TMC %vs",
				r.Sizes[i], r.Seconds["knn"][i], r.Seconds["tmc"][i])
		}
	}
	// at the largest size the speedup should be at least one order of magnitude
	last := len(r.Sizes) - 1
	if r.Seconds["tmc"][last]/r.Seconds["knn"][last] < 10 {
		t.Errorf("speedup only %.1fx", r.Seconds["tmc"][last]/r.Seconds["knn"][last])
	}
}

func TestE7CleaningStrategiesShape(t *testing.T) {
	r, err := E7CleaningStrategies(250, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Fatalf("results = %d", len(r.Results))
	}
	if r.AUC["knn-shapley"] <= r.AUC["random"] {
		t.Errorf("knn-shapley AUC %v <= random %v", r.AUC["knn-shapley"], r.AUC["random"])
	}
}

func TestE8CertainPredictionsShape(t *testing.T) {
	r, err := E8CertainPredictions(150, 49)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fractions[0] != 1 {
		t.Errorf("zero missingness should be fully certain: %v", r.Fractions)
	}
	last := len(r.Fractions) - 1
	if r.Fractions[last] >= r.Fractions[0] {
		t.Errorf("certain fraction should fall with missingness: %v", r.Fractions)
	}
}

func TestE9ChallengeShape(t *testing.T) {
	r, err := E9Challenge(250, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scores["knn-shapley"] < r.Scores["random"] {
		t.Errorf("knn-shapley %v < random %v", r.Scores["knn-shapley"], r.Scores["random"])
	}
	top := r.Leaderboard.Top(1)
	if len(top) != 1 || top[0].Name == "random" {
		t.Errorf("leaderboard top = %v", top)
	}
}

func TestE10PipelineScreeningShape(t *testing.T) {
	r, err := E10PipelineScreening(200, 51)
	if err != nil {
		t.Fatal(err)
	}
	for check, ok := range r.Detected {
		if !ok {
			t.Errorf("check %s failed", check)
		}
	}
}

func TestE11ZorroVsImputationShape(t *testing.T) {
	r, err := E11ZorroVsImputation(150, 52)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Rates) - 1
	if r.MeanRangeWidth[last] <= r.MeanRangeWidth[0] {
		t.Errorf("range width should widen with missingness: %v", r.MeanRangeWidth)
	}
	if r.CertainFrac[last] > r.CertainFrac[0] {
		t.Errorf("certain fraction should not rise with missingness: %v", r.CertainFrac)
	}
}

func TestE12GopherFairnessShape(t *testing.T) {
	r, err := E12GopherFairness(160, 53)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseViolation <= 0.1 {
		t.Errorf("poisoned baseline violation = %v, expected substantial", r.BaseViolation)
	}
	if !strings.Contains(r.TopSubgroup, "src=bad") {
		t.Errorf("top subgroup = %q, want the poisoned slice", r.TopSubgroup)
	}
	if r.TopDelta <= 0 {
		t.Errorf("top delta = %v", r.TopDelta)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}, Notes: "n"}
	tab.AddRow("1", "2")
	out := tab.String()
	if !strings.Contains(out, "=== T: demo ===") || !strings.Contains(out, "note: n") {
		t.Errorf("render:\n%s", out)
	}
}
