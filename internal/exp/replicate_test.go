package exp

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// Replicate fan-out must produce byte-identical rendered tables in seed
// order for workers 1, 4 and GOMAXPROCS.
func TestReplicatesParallelDeterminism(t *testing.T) {
	run := func(seed int64) (*Table, string, error) {
		r, err := E1Figure2(80, seed)
		if err != nil {
			return nil, "", err
		}
		return r.Table, fmt.Sprintf("precision %.3f", r.DetectionPrecision), nil
	}
	seeds := SeedSequence(42, 4)
	serial, err := Replicates("E1", seeds, 1, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(seeds) {
		t.Fatalf("%d replicates, want %d", len(serial), len(seeds))
	}
	for i, rep := range serial {
		if rep.Seed != seeds[i] {
			t.Fatalf("replicate %d has seed %d, want %d (order lost)", i, rep.Seed, seeds[i])
		}
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := Replicates("E1", seeds, workers, run)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Seed != serial[i].Seed {
				t.Errorf("workers=%d replicate %d: seed %d, want %d", workers, i, got[i].Seed, serial[i].Seed)
			}
			if got[i].Table.String() != serial[i].Table.String() {
				t.Errorf("workers=%d replicate %d: rendered table diverges from serial run", workers, i)
			}
			if got[i].Extra != serial[i].Extra {
				t.Errorf("workers=%d replicate %d: extra %q, want %q", workers, i, got[i].Extra, serial[i].Extra)
			}
		}
	}
}

// The reported error is the first failing seed in seed order, independent
// of scheduling, and every replicate still runs.
func TestReplicatesDeterministicError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		ran := make([]bool, 6)
		_, err := Replicates("EX", SeedSequence(10, 6), workers, func(seed int64) (*Table, string, error) {
			ran[seed-10] = true
			if seed == 12 || seed == 14 {
				return nil, "", fmt.Errorf("seed %d: %w", seed, boom)
			}
			return &Table{ID: "EX"}, "", nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if want := "exp: EX replicate seed 12"; err != nil && !strings.Contains(err.Error(), want) {
			t.Errorf("workers=%d: err %q, want it to name seed 12 first", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Errorf("workers=%d: replicate %d did not run", workers, i)
			}
		}
	}
}
