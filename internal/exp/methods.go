package exp

import (
	"fmt"
	"time"

	"nde/internal/cleaning"
	"nde/internal/importance"
	"nde/internal/ml"
)

// E5Result carries the per-method detection quality.
type E5Result struct {
	Table      *Table
	Methods    []string
	Precisions map[string]float64
}

// E5MethodComparison compares the surveyed importance methods on the same
// label-error detection task: featurized letters with 15% flipped labels,
// precision@k where k is the number of injected errors. This substantiates
// the survey's claim that cheap proxies (kNN-Shapley, noise scores) remain
// competitive with expensive estimators, and gives attendees a feel for
// the methods' strengths.
func E5MethodComparison(n int, seed int64) (*E5Result, error) {
	dirty, valid, _, corrupted, err := dirtyLetters(n, 0.15, seed)
	if err != nil {
		return nil, err
	}
	k := len(corrupted)
	newKNN := func() ml.Classifier { return ml.NewKNN(5) }
	u := importance.AccuracyUtility(newKNN, dirty, valid)

	type method struct {
		name string
		run  func() (importance.Scores, error)
	}
	methods := []method{
		{"loo", func() (importance.Scores, error) {
			return importance.LeaveOneOut(dirty.Len(), u)
		}},
		{"tmc-shapley", func() (importance.Scores, error) {
			return importance.MCShapley(dirty.Len(), u, importance.MCShapleyConfig{Permutations: 30, Seed: seed, Truncation: 0.01})
		}},
		{"knn-shapley", func() (importance.Scores, error) {
			// pooled path; bit-identical to the sequential closed form
			return importance.KNNShapleyParallel(5, dirty, valid, 0)
		}},
		{"banzhaf", func() (importance.Scores, error) {
			return importance.MCBanzhaf(dirty.Len(), u, importance.SemivalueConfig{SamplesPerPoint: 20, Seed: seed})
		}},
		{"beta(1,4)-shapley", func() (importance.Scores, error) {
			return importance.MCBetaShapley(dirty.Len(), u, 4, 1, importance.SemivalueConfig{SamplesPerPoint: 20, Seed: seed})
		}},
		{"influence", func() (importance.Scores, error) {
			return importance.Influence(dirty, valid, importance.InfluenceConfig{})
		}},
		{"self-confidence", func() (importance.Scores, error) {
			return importance.SelfConfidence(dirty, importance.NoiseConfig{Seed: seed})
		}},
		{"margin", func() (importance.Scores, error) {
			return importance.MarginScore(dirty, importance.NoiseConfig{Seed: seed})
		}},
	}
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("§2.1 — label-error detection quality of importance methods (precision@%d, %d injected errors)", k, k),
		Columns: []string{"method", "precision@k", "recall@k", "runtime"},
		Notes: "kNN-Shapley is exact and fast; LOO is known to be noisy for kNN utilities " +
			"(removing one point rarely changes any prediction), which the survey cites as " +
			"the motivation for Shapley-style credit assignment",
	}
	res := &E5Result{Table: t, Precisions: make(map[string]float64)}
	for _, m := range methods {
		start := time.Now()
		scores, err := m.run()
		if err != nil {
			return nil, fmt.Errorf("exp: method %s: %w", m.name, err)
		}
		elapsed := time.Since(start)
		prec := scores.PrecisionAtK(corrupted, k)
		rec := scores.RecallAtK(corrupted, k)
		t.AddRow(m.name, f3(prec), f3(rec), elapsed.Round(time.Millisecond).String())
		res.Methods = append(res.Methods, m.name)
		res.Precisions[m.name] = prec
	}
	return res, nil
}

// E6Result carries the scalability measurements.
type E6Result struct {
	Table *Table
	Sizes []int
	// Seconds[method][i] is the runtime at Sizes[i].
	Seconds map[string][]float64
}

// E6Scalability measures the runtime of TMC-Shapley (retraining-based)
// against the closed-form kNN-Shapley as the training set grows — the
// survey's "computational challenges" point: the kNN reduction wins by
// orders of magnitude.
func E6Scalability(seed int64) (*E6Result, error) {
	sizes := []int{50, 100, 200}
	t := &Table{
		ID:      "E6",
		Title:   "§2.1 — Shapley runtime scaling: Monte-Carlo retraining vs. closed-form kNN",
		Columns: []string{"n train", "tmc-shapley", "tmc-parallel", "knn-shapley", "knn-parallel", "speedup"},
		Notes:   "the kNN closed form is O(n log n) per validation point; TMC retrains O(perms · n) times; both parallel columns run on the shared pool and are deterministic for any worker count",
	}
	res := &E6Result{Table: t, Sizes: sizes, Seconds: map[string][]float64{"tmc": nil, "tmc-par": nil, "knn": nil, "knn-par": nil}}
	for _, n := range sizes {
		dirty, valid, _, _, err := dirtyLetters(n*2, 0.1, seed) // *2: split keeps 60%
		if err != nil {
			return nil, err
		}
		u := importance.AccuracyUtility(func() ml.Classifier { return ml.NewKNN(5) }, dirty, valid)

		cfg := importance.MCShapleyConfig{Permutations: 10, Seed: seed, Truncation: 0.01}
		start := time.Now()
		if _, err := importance.MCShapley(dirty.Len(), u, cfg); err != nil {
			return nil, err
		}
		tmc := time.Since(start)

		start = time.Now()
		if _, err := importance.MCShapleyParallel(dirty.Len(), u, cfg, 0); err != nil {
			return nil, err
		}
		tmcPar := time.Since(start)

		start = time.Now()
		if _, err := importance.KNNShapley(5, dirty, valid); err != nil {
			return nil, err
		}
		knn := time.Since(start)

		start = time.Now()
		if _, err := importance.KNNShapleyParallel(5, dirty, valid, 0); err != nil {
			return nil, err
		}
		knnPar := time.Since(start)

		speedup := float64(tmc) / float64(knn)
		t.AddRow(fmt.Sprintf("%d", dirty.Len()),
			tmc.Round(time.Millisecond).String(),
			tmcPar.Round(time.Millisecond).String(),
			knn.Round(time.Microsecond).String(),
			knnPar.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0fx", speedup))
		res.Seconds["tmc"] = append(res.Seconds["tmc"], tmc.Seconds())
		res.Seconds["tmc-par"] = append(res.Seconds["tmc-par"], tmcPar.Seconds())
		res.Seconds["knn"] = append(res.Seconds["knn"], knn.Seconds())
		res.Seconds["knn-par"] = append(res.Seconds["knn-par"], knnPar.Seconds())
	}
	return res, nil
}

// E7Result carries the per-strategy cleaning curves.
type E7Result struct {
	Table   *Table
	Results []*cleaning.Result
	AUC     map[string]float64
}

// E7CleaningStrategies runs the §3.1 attendee task: iterative prioritized
// cleaning under a fixed oracle budget, comparing random, noise-score and
// kNN-Shapley prioritization. Importance-guided cleaning should dominate
// random in area under the cleaning curve.
func E7CleaningStrategies(n int, seed int64) (*E7Result, error) {
	dirty, valid, truth, corrupted, err := dirtyLetters(n, 0.2, seed)
	if err != nil {
		return nil, err
	}
	oracle := &cleaning.LabelOracle{Truth: truth}
	newModel := func() ml.Classifier { return ml.NewKNN(5) }
	budget := len(corrupted)
	strategies := []cleaning.Strategy{
		&cleaning.RandomStrategy{Seed: seed},
		&cleaning.NoiseStrategy{Seed: seed},
		&cleaning.KNNShapleyStrategy{K: 5},
	}
	results, err := cleaning.CompareStrategies(dirty, valid, valid, oracle, strategies, newModel, budget/5, budget)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("§3.1 — iterative cleaning strategies (budget %d oracle repairs)", budget),
		Columns: []string{"strategy", "acc before", "acc after", "curve AUC"},
		Notes:   "importance-guided prioritization should dominate random cleaning",
	}
	res := &E7Result{Table: t, Results: results, AUC: make(map[string]float64)}
	for _, r := range results {
		auc := cleaning.AreaUnderCurve(r.Curve)
		res.AUC[r.Strategy] = auc
		t.AddRow(r.Strategy,
			f3(r.Curve[0].Accuracy),
			f3(r.Curve[len(r.Curve)-1].Accuracy),
			f3(auc))
	}
	return res, nil
}
