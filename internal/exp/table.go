// Package exp implements the experiment harness: one generator per artifact
// of the tutorial (the Figure 1 quality panel, the Figure 2/3/4 hands-on
// demos, and the survey's comparative claims), each emitting a printable
// table with the same rows/series the tutorial reports. The cmd/nde-figures
// binary drives every experiment; bench_test.go at the repository root
// exposes one benchmark per experiment. DESIGN.md §3 maps experiment ids to
// modules.
package exp

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: an id, a caption, column headers and
// formatted rows, plus free-form notes on how to read the result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for c, name := range t.Columns {
		widths[c] = len(name)
	}
	for _, row := range t.Rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				b.WriteString("  ")
			}
			if c == len(cells)-1 {
				b.WriteString(cell) // no padding on the last column
			} else {
				fmt.Fprintf(&b, "%-*s", widths[c], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for c := range rule {
		rule[c] = strings.Repeat("-", widths[c])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
