package exp

import (
	"fmt"

	"nde"
	"nde/internal/ml"
	"nde/internal/uncertain"
)

// E8Result carries the certain-prediction sweep.
type E8Result struct {
	Table     *Table
	Rates     []float64
	Fractions []float64
	Repairs   []int
}

// E8CertainPredictions sweeps the missing rate and reports the fraction of
// test points whose kNN prediction is certain (identical in every possible
// world), plus how many greedy CPClean repairs restore full certainty.
// The certain fraction must fall as missingness grows.
func E8CertainPredictions(n int, seed int64) (*E8Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dTrain, _, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		return nil, err
	}
	feature := dTrain.Dim() - 1
	testX := make([][]float64, dTest.Len())
	for i := range testX {
		testX[i] = dTest.Row(i)
	}
	cp := uncertain.NewCPClean(3)
	rates := []float64{0, 0.1, 0.2, 0.3}
	t := &Table{
		ID:      "E8",
		Title:   "§2.3 — CPClean certain predictions vs. missing rate (kNN, k=3)",
		Columns: []string{"missing rate", "certain fraction", "greedy repairs (cap 10)"},
		Notes:   "the certain fraction falls as uncertainty grows; a few targeted repairs restore most of it",
	}
	res := &E8Result{Table: t, Rates: rates}
	for _, rate := range rates {
		sym, _, err := nde.EncodeSymbolic(dTrain, feature, rate, nde.MCAR, seed+5)
		if err != nil {
			return nil, err
		}
		frac, _, err := cp.CertainFraction(sym, testX)
		if err != nil {
			return nil, err
		}
		repaired, _, err := cp.GreedyClean(sym, testX, 10)
		if err != nil {
			return nil, err
		}
		res.Fractions = append(res.Fractions, frac)
		res.Repairs = append(res.Repairs, len(repaired))
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100), f3(frac), fmt.Sprintf("%d", len(repaired)))
	}
	return res, nil
}

// E11Result carries the Zorro-vs-imputation comparison.
type E11Result struct {
	Table *Table
	Rates []float64
	// MeanRangeWidth[i] is the mean width of the sampled prediction ranges.
	MeanRangeWidth []float64
	// CertainFrac[i] is the fraction of prediction-stable test points.
	CertainFrac []float64
	// ImputedAcc[i] is the mean-imputation baseline accuracy.
	ImputedAcc []float64
}

// E11ZorroVsImputation contrasts uncertainty-aware analysis with the
// imputation baseline across missing rates: the baseline reports a single
// accuracy number and hides its uncertainty, while Zorro's prediction
// ranges widen and its certain fraction falls — making the unreliability
// visible, the tutorial's closing point of §3.1.
func E11ZorroVsImputation(n int, seed int64) (*E11Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dTrain, _, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		return nil, err
	}
	feature := dTrain.Dim() - 1
	rates := []float64{0.05, 0.15, 0.25}
	t := &Table{
		ID:      "E11",
		Title:   "§3.1 — uncertainty-aware analysis (Zorro) vs. mean-imputation baseline",
		Columns: []string{"missing rate", "imputed acc", "mean range width", "certain fraction"},
		Notes:   "imputation hides uncertainty; Zorro exposes it as widening prediction ranges",
	}
	res := &E11Result{Table: t, Rates: rates}
	for _, rate := range rates {
		sym, _, err := nde.EncodeSymbolic(dTrain, feature, rate, nde.MNAR, seed+7)
		if err != nil {
			return nil, err
		}
		zr, err := nde.ZorroAnalysis(sym, dTest, 16, seed+8)
		if err != nil {
			return nil, err
		}
		imputedAcc := ml.Accuracy(dTest.Y, ml.PredictAll(zr.Center, dTest))
		width := 0.0
		certain := 0
		for i, rg := range zr.ProbaRanges {
			width += rg.Width() / float64(len(zr.ProbaRanges))
			if zr.Certain[i] {
				certain++
			}
		}
		frac := float64(certain) / float64(len(zr.Certain))
		res.ImputedAcc = append(res.ImputedAcc, imputedAcc)
		res.MeanRangeWidth = append(res.MeanRangeWidth, width)
		res.CertainFrac = append(res.CertainFrac, frac)
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100), f3(imputedAcc), f4(width), f3(frac))
	}
	return res, nil
}
