package exp

import "testing"

func TestE18DetectionBenchmarkShape(t *testing.T) {
	r, err := E18DetectionBenchmark(250, 66)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Precision) != 3 {
		t.Fatalf("error types = %d", len(r.Precision))
	}
	// every method beats random on label flips (the classic setting)
	for method, prec := range r.Precision["label-flips"] {
		if prec <= 0.12 {
			t.Errorf("label-flips: %s precision %v at baseline", method, prec)
		}
	}
	// the benchmark's takeaway: methods that dominate on label flips can be
	// blind to out-of-distribution rows — isolated points are never
	// retrieved by a kNN, so their Shapley value is ~0 (dead weight, not
	// negative) and they escape bottom-k ranking, while uncertainty scores
	// still flag them
	if r.Precision["ood-rows"]["self-confidence"] <= r.Precision["ood-rows"]["knn-shapley"] {
		t.Errorf("ood: self-confidence %v should beat knn-shapley %v",
			r.Precision["ood-rows"]["self-confidence"], r.Precision["ood-rows"]["knn-shapley"])
	}
	if r.Precision["label-flips"]["knn-shapley"] <= r.Precision["ood-rows"]["knn-shapley"] {
		t.Error("knn-shapley should be far stronger on flips than on OOD")
	}
}
