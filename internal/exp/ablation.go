package exp

import (
	"fmt"

	"nde"
	"nde/internal/importance"
)

// E17Result carries the Datascope-aggregation ablation.
type E17Result struct {
	Table *Table
	// Deltas maps variant name -> accuracy change after removing its
	// bottom-25 source tuples.
	Deltas map[string]float64
	// Overlap maps variant name -> bottom-25 overlap with the additive-sum
	// baseline.
	Overlap map[string]int
}

// E17DatascopeAblation runs the aggregation ablation DESIGN.md calls out:
// the additive sum (Datascope's default), the mean (fan-out-normalized)
// and the exact provenance-group Shapley must broadly agree on which source
// tuples are least valuable, and removing any variant's bottom-25 must not
// hurt the downstream model.
func E17DatascopeAblation(n int, seed int64) (*E17Result, error) {
	s := nde.LoadRecommendationLetters(n, seed)
	dirty, _, err := nde.InjectLabelErrors(s.Train, 0.1, seed+1)
	if err != nil {
		return nil, err
	}
	hp, err := nde.BuildHiringPipeline(dirty, s.Data.Jobs, s.Data.Social)
	if err != nil {
		return nil, err
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		return nil, err
	}
	valid, err := hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		run  func() (importance.Scores, error)
	}{
		{"additive-sum", func() (importance.Scores, error) {
			return hp.DatascopeScores(ft, valid, 3)
		}},
		{"additive-mean", func() (importance.Scores, error) {
			return importance.Datascope(ft, valid, "train", hp.TrainRows,
				importance.DatascopeConfig{K: 3, Aggregate: importance.AggMean})
		}},
		{"group-shapley", func() (importance.Scores, error) {
			return hp.GroupShapleyScores(ft, valid, 3)
		}},
	}

	t := &Table{
		ID:      "E17",
		Title:   "ablation — Datascope provenance aggregation variants",
		Columns: []string{"variant", "Δacc after removing bottom-25", "bottom-25 overlap w/ sum"},
		Notes:   "variants agree on the least-valuable tuples; removal never hurts materially",
	}
	res := &E17Result{Table: t, Deltas: make(map[string]float64), Overlap: make(map[string]int)}
	var baseline map[int]bool
	for _, v := range variants {
		scores, err := v.run()
		if err != nil {
			return nil, fmt.Errorf("exp: variant %s: %w", v.name, err)
		}
		bottom := scores.BottomK(25)
		bottomSet := make(map[int]bool, len(bottom))
		for _, i := range bottom {
			bottomSet[i] = true
		}
		if baseline == nil {
			baseline = bottomSet
		}
		overlap := 0
		for i := range bottomSet {
			if baseline[i] {
				overlap++
			}
		}
		// remove the variant's bottom tuples' outputs and measure the change
		var remove []int
		for o, rows := range ft.SourceRows("train") {
			for _, r := range rows {
				if bottomSet[r] {
					remove = append(remove, o)
					break
				}
			}
		}
		before, after, err := nde.RemoveAndEvaluate(ft, remove, valid)
		if err != nil {
			return nil, err
		}
		res.Deltas[v.name] = after - before
		res.Overlap[v.name] = overlap
		t.AddRow(v.name, fmt.Sprintf("%+.4f", after-before), fmt.Sprintf("%d/25", overlap))
	}
	return res, nil
}
