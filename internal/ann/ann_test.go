package ann

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
)

// clusteredData draws n rows of dimension d around c Gaussian blob centers
// with the given spread — the workload IVF partitioning is built for.
func clusteredData(r *rand.Rand, n, d, c int, spread float64) *linalg.Matrix {
	centers := linalg.NewMatrix(c, d)
	for i := range centers.Data {
		centers.Data[i] = r.NormFloat64() * 10
	}
	m := linalg.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		ctr := centers.Row(r.Intn(c))
		row := m.Row(i)
		for j := range row {
			row[j] = ctr[j] + r.NormFloat64()*spread
		}
	}
	return m
}

// exactTopK is the float32 brute-force reference under the same
// (distance, index) total order.
func exactTopK(data *linalg.Matrix32, q []float32, k int) []int {
	pairs := make([]distIdx32, data.Rows)
	for i := range pairs {
		pairs[i] = distIdx32{d: linalg.SquaredDistance32(data.Row(i), q), i: int32(i)}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].less(pairs[b]) })
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = int(pairs[i].i)
	}
	return out
}

// Property: on seeded clustered datasets, IVF recall@10 stays at or above
// the floor the Auto mode certifies against. Probing a quarter of the
// lists on well-separated blobs must clear 0.95 comfortably.
func TestIVFRecallAboveFloorProperty(t *testing.T) {
	const floor = 0.95
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 600 + r.Intn(400)
		d := 4 + r.Intn(12)
		data := clusteredData(r, n, d, 8+r.Intn(8), 1.0)
		ix, err := Build(data, Config{Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ix.SetNProbe(ix.NLists() / 4)
		rec := ix.EstimateRecall(10, 24)
		if rec < floor {
			t.Logf("seed %d: recall %.3f < %.2f (n=%d d=%d nlists=%d nprobe=%d)",
				seed, rec, floor, n, d, ix.NLists(), ix.NProbe())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// The build must be bit-for-bit deterministic across worker counts: same
// centroids, same lists, same answers.
func TestIVFBuildDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	data := clusteredData(r, 500, 8, 10, 1.0)
	base, err := Build(data, Config{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		ix, err := Build(data, Config{Seed: 9, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if ix.centroids.Fingerprint() != base.centroids.Fingerprint() {
			t.Fatalf("workers=%d: centroid fingerprints differ", w)
		}
		for c := range base.lists {
			if len(ix.lists[c]) != len(base.lists[c]) {
				t.Fatalf("workers=%d: list %d sizes differ", w, c)
			}
			for j := range base.lists[c] {
				if ix.lists[c][j] != base.lists[c][j] {
					t.Fatalf("workers=%d: list %d member %d differs", w, c, j)
				}
			}
		}
		q := data.Row(3)
		q32 := make([]float32, len(q))
		for i, v := range q {
			q32[i] = float32(v)
		}
		a, b := base.TopK(q32, 10, nil), ix.TopK(q32, 10, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: TopK differs at %d", w, i)
			}
		}
	}
}

// Probing every list is an exact float32 scan: answers must equal the
// brute-force reference exactly, including index tie-breaks.
func TestIVFFullProbeIsExact(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	data := clusteredData(r, 300, 6, 6, 1.5)
	ix, err := Build(data, Config{Seed: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix.SetNProbe(ix.NLists())
	d32 := data.ToMatrix32()
	scratch := &Scratch{}
	for _, qi := range []int{0, 17, 299} {
		q := d32.Row(qi)
		want := exactTopK(d32, q, 15)
		got := ix.TopK(q, 15, scratch)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: %d vs %d", qi, i, got[i], want[i])
			}
		}
	}
}

// Random-projection routing: high-d data routed through a projected space
// still ranks candidates in the original space, and recall stays high.
func TestIVFRandomProjectionRouting(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	data := clusteredData(r, 800, 96, 12, 1.0)
	ix, err := Build(data, Config{Seed: 5, ProjectDim: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.proj == nil {
		t.Fatal("projection not built for ProjectDim=16 on d=96 data")
	}
	if ix.routed.Cols != 16 {
		t.Fatalf("routing space dim %d, want 16", ix.routed.Cols)
	}
	ix.SetNProbe(ix.NLists() / 2)
	if rec := ix.EstimateRecall(10, 20); rec < 0.9 {
		t.Errorf("projected-routing recall %.3f < 0.9", rec)
	}
	// ProjectDim >= d is ignored
	flat, err := Build(clusteredData(r, 100, 8, 4, 1.0), Config{Seed: 6, ProjectDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if flat.proj != nil {
		t.Error("projection built although ProjectDim >= data dim")
	}
}

// A query probing lists that hold fewer than k rows returns what it found
// — the caller's fallback signal — and degenerate inputs error cleanly.
func TestIVFShortListsAndErrors(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	data := clusteredData(r, 40, 3, 4, 0.5)
	ix, err := Build(data, Config{NLists: 8, NProbe: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := data.ToMatrix32().Row(0)
	got := ix.TopK(q, 40, nil)
	if len(got) >= 40 {
		t.Fatalf("single-probe TopK returned %d of 40 rows; expected a partial answer", len(got))
	}
	if out := ix.TopK(q, 0, nil); out != nil {
		t.Errorf("k=0 returned %v", out)
	}
	if _, err := Build(linalg.NewMatrix(0, 3), Config{}); err == nil {
		t.Error("empty build did not error")
	}
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("nil build did not error")
	}
}

// Config fingerprints must separate every search-relevant knob.
func TestConfigFingerprint(t *testing.T) {
	base := Config{NLists: 16, NProbe: 4, KMeansIters: 6, Seed: 1, ProjectDim: 0}
	variants := []Config{
		{NLists: 17, NProbe: 4, KMeansIters: 6, Seed: 1},
		{NLists: 16, NProbe: 5, KMeansIters: 6, Seed: 1},
		{NLists: 16, NProbe: 4, KMeansIters: 7, Seed: 1},
		{NLists: 16, NProbe: 4, KMeansIters: 6, Seed: 2},
		{NLists: 16, NProbe: 4, KMeansIters: 6, Seed: 1, ProjectDim: 8},
	}
	for i, v := range variants {
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %d collides with base", i)
		}
	}
	if base.Fingerprint() != (Config{NLists: 16, NProbe: 4, KMeansIters: 6, Seed: 1}).Fingerprint() {
		t.Error("identical configs fingerprint differently")
	}
}

func BenchmarkIVFTopK(b *testing.B) {
	r := rand.New(rand.NewSource(40))
	data := clusteredData(r, 5000, 16, 32, 1.0)
	ix, err := Build(data, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := data.ToMatrix32().Row(7)
	scratch := &Scratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(q, 10, scratch)
	}
}
