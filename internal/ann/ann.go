// Package ann implements approximate nearest-neighbor search for the nde
// hot paths: an IVF (inverted-file) index that partitions the training
// rows with seeded k-means and probes only the nprobe closest partitions
// per query, plus an optional random-projection routing stage for high-
// dimensional data. All distance work runs on the float32 mirror kernels
// in internal/linalg (half the memory bandwidth of the float64 oracle).
//
// Determinism contract: building twice with the same (data, Config) yields
// the identical index for any worker count — k-means assignment fans out
// on internal/par with per-point slots and the centroid update reduces
// serially in row order — and every query answer is a function of the
// index and the query alone (candidates are ranked under the strict
// (distance, index) total order, the same tie-break as the exact path).
//
// Approximation contract: answers are exact *within the probed
// partitions*. Rows whose true rank would qualify but whose partition is
// not probed are missed; EstimateRecall measures that miss rate so callers
// (ml.NeighborIndex in Auto mode) can certify a recall floor and fall back
// to the exact path when the floor cannot be met.
package ann

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nde/internal/linalg"
	"nde/internal/nderr"
	"nde/internal/obs"
	"nde/internal/par"
)

// Config controls IVF index construction and probing.
type Config struct {
	// NLists is the number of k-means partitions (<= 0 = auto: ~√n,
	// clamped to [1, n/2]).
	NLists int
	// NProbe is the number of partitions scanned per query (<= 0 = auto:
	// max(1, NLists/8)). Raising it trades speed for recall; NProbe ==
	// NLists degenerates to an exact float32 scan.
	NProbe int
	// KMeansIters is the number of Lloyd iterations (<= 0 = 6).
	KMeansIters int
	// Seed drives the deterministic k-means initialization and any
	// random-projection draw.
	Seed int64
	// ProjectDim > 0 routes through a seeded Gaussian random projection to
	// this dimensionality: partitioning and probe selection happen in the
	// projected space while candidate ranking stays in the original space.
	// Use for high-d data where full-width centroid scans dominate.
	// Ignored when >= the data dimensionality.
	ProjectDim int
	// Workers bounds the build pool (<= 0 = auto). Queries are
	// single-threaded per call and safe for concurrent use.
	Workers int
}

// withDefaults resolves the auto knobs against n data rows.
func (c Config) withDefaults(n int) Config {
	if c.NLists <= 0 {
		c.NLists = int(math.Sqrt(float64(n)))
	}
	if c.NLists > n/2 {
		c.NLists = n / 2
	}
	if c.NLists < 1 {
		c.NLists = 1
	}
	if c.NProbe <= 0 {
		c.NProbe = c.NLists / 8
	}
	if c.NProbe < 1 {
		c.NProbe = 1
	}
	if c.NProbe > c.NLists {
		c.NProbe = c.NLists
	}
	if c.KMeansIters <= 0 {
		c.KMeansIters = 6
	}
	return c
}

// Fingerprint hashes the search-relevant knobs; the neighbor-index cache
// mixes it into its key so indexes built under different ANN configs never
// alias.
func (c Config) Fingerprint() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range []uint64{
		uint64(int64(c.NLists)), uint64(int64(c.NProbe)),
		uint64(int64(c.KMeansIters)), uint64(c.Seed), uint64(int64(c.ProjectDim)),
	} {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// Index is a built IVF index over one training matrix. Safe for concurrent
// queries after Build; SetNProbe is not synchronized and belongs to the
// owner's setup phase.
type Index struct {
	cfg  Config
	data *linalg.Matrix32 // n×d original-space rows (candidate ranking)
	// routing space: projected copies when cfg.ProjectDim is in effect,
	// otherwise aliases of data / nil.
	routed    *linalg.Matrix32 // n×p rows used for assignment
	proj      *linalg.Matrix32 // d×p Gaussian projection, nil when off
	centroids *linalg.Matrix32 // NLists×p routing-space centroids
	lists     [][]int32        // row ids per partition, ascending
	// packed layout: data rows regrouped so every partition is one
	// contiguous block — the candidate scan streams sequentially instead of
	// gathering scattered rows (one extra copy of the data, bought for
	// memory-bandwidth-bound probing).
	packed    *linalg.Matrix32 // n×d rows in partition order
	packedIDs []int32          // original row id of each packed row
	listOff   []int32          // partition c spans packed rows [listOff[c], listOff[c+1])
}

// distIdx32 is a (float32 squared distance, row index) pair under the
// strict (distance, index) total order — the same tie-break as the exact
// float64 path, so equal-distance candidates resolve identically.
type distIdx32 struct {
	d float32
	i int32
}

func (a distIdx32) less(b distIdx32) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.i < b.i
}

// Build constructs an IVF index over the rows of data. The build is
// deterministic for a fixed (data, cfg) across worker counts.
func Build(data *linalg.Matrix, cfg Config) (*Index, error) {
	if data == nil || data.Rows == 0 {
		return nil, nderr.Empty("ann: no rows to index")
	}
	if err := data.CheckFinite("ann index rows"); err != nil {
		return nil, fmt.Errorf("ann: %w", err)
	}
	return build(data.ToMatrix32(), cfg)
}

// Build32 is Build over an already-converted float32 matrix (shared, not
// copied; the caller must not mutate it afterwards).
func Build32(data *linalg.Matrix32, cfg Config) (*Index, error) {
	if data == nil || data.Rows == 0 {
		return nil, nderr.Empty("ann: no rows to index")
	}
	return build(data, cfg)
}

func build(d32 *linalg.Matrix32, cfg Config) (*Index, error) {
	n := d32.Rows
	cfg = cfg.withDefaults(n)
	sp := obs.StartSpan("ann.build")
	sp.SetInt("rows", int64(n)).SetInt("dim", int64(d32.Cols)).
		SetInt("nlists", int64(cfg.NLists)).SetInt("iters", int64(cfg.KMeansIters))
	defer sp.End()

	ix := &Index{cfg: cfg, data: d32, routed: d32}
	if cfg.ProjectDim > 0 && cfg.ProjectDim < d32.Cols {
		ix.proj = gaussianProjection(d32.Cols, cfg.ProjectDim, cfg.Seed)
		ix.routed = project(d32, ix.proj, cfg.Workers)
		sp.SetInt("project_dim", int64(cfg.ProjectDim))
	}
	ix.kmeans()
	ix.pack()
	if obs.Enabled() {
		obs.SetGauge("ann_index_nlists", float64(cfg.NLists))
		obs.SetGauge("ann_index_rows", float64(n))
	}
	return ix, nil
}

// gaussianProjection draws a seeded d×p matrix with N(0, 1/p) entries, the
// standard Johnson–Lindenstrauss scaling so projected squared distances
// estimate original ones.
func gaussianProjection(d, p int, seed int64) *linalg.Matrix32 {
	r := rand.New(rand.NewSource(seed ^ 0x7f4a7c15))
	m := linalg.NewMatrix32(d, p)
	inv := float32(1 / math.Sqrt(float64(p)))
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64()) * inv
	}
	return m
}

// project maps every row of m through proj (m.Cols×p), in parallel over
// rows with a fixed per-row summation order.
func project(m, proj *linalg.Matrix32, workers int) *linalg.Matrix32 {
	out := linalg.NewMatrix32(m.Rows, proj.Cols)
	par.For("ann.project", workers, m.Rows, func(_, r int) {
		row, orow := m.Row(r), out.Row(r)
		for k, v := range row {
			if v == 0 {
				continue
			}
			prow := proj.Row(k)
			for c := range orow {
				orow[c] += v * prow[c]
			}
		}
	})
	return out
}

// kmeans runs seeded Lloyd iterations in the routing space and fills
// centroids + lists. Initialization picks NLists distinct rows via a
// seeded permutation; the assignment step fans out over rows (per-row
// slots), and the update step accumulates serially in row order into
// float64 sums, so the whole build is bit-for-bit reproducible for any
// worker count.
func (ix *Index) kmeans() {
	data, cfg := ix.routed, ix.cfg
	n, p, k := data.Rows, data.Cols, cfg.NLists
	perm := rand.New(rand.NewSource(cfg.Seed)).Perm(n)
	cents := linalg.NewMatrix32(k, p)
	for c := 0; c < k; c++ {
		copy(cents.Row(c), data.Row(perm[c]))
	}
	assign := make([]int32, n)
	sums := make([]float64, k*p)
	counts := make([]int, k)
	for it := 0; it < cfg.KMeansIters; it++ {
		par.For("ann.kmeans_assign", cfg.Workers, n, func(_, i int) {
			assign[i] = nearestCentroid(cents, data.Row(i))
		})
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ { // fixed reduction order
			c := int(assign[i])
			counts[c]++
			row, s := data.Row(i), sums[c*p:(c+1)*p]
			for j, v := range row {
				s[j] += float64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // empty partition keeps its centroid
			}
			inv := 1 / float64(counts[c])
			crow, s := cents.Row(c), sums[c*p:(c+1)*p]
			for j := range crow {
				crow[j] = float32(s[j] * inv)
			}
		}
	}
	// final assignment against the final centroids, then ascending lists
	par.For("ann.kmeans_assign", cfg.Workers, n, func(_, i int) {
		assign[i] = nearestCentroid(cents, data.Row(i))
	})
	lists := make([][]int32, k)
	for i := 0; i < n; i++ {
		c := assign[i]
		lists[c] = append(lists[c], int32(i))
	}
	ix.centroids, ix.lists = cents, lists
}

// pack copies the data rows into partition order (lists ascending, rows
// ascending within each list) so TopK's candidate scan reads memory
// sequentially. Derived purely from lists, so it inherits the build
// determinism.
func (ix *Index) pack() {
	n, d := ix.data.Rows, ix.data.Cols
	packed := linalg.NewMatrix32(n, d)
	ids := make([]int32, 0, n)
	off := make([]int32, len(ix.lists)+1)
	for c, l := range ix.lists {
		off[c] = int32(len(ids))
		for _, id := range l {
			copy(packed.Row(len(ids)), ix.data.Row(int(id)))
			ids = append(ids, id)
		}
	}
	off[len(ix.lists)] = int32(len(ids))
	ix.packed, ix.packedIDs, ix.listOff = packed, ids, off
}

// nearestCentroid returns the centroid index closest to x under the
// (distance, index) total order.
func nearestCentroid(cents *linalg.Matrix32, x []float32) int32 {
	best, bestD := int32(0), float32(math.MaxFloat32)
	for c := 0; c < cents.Rows; c++ {
		if d := linalg.SquaredDistance32(cents.Row(c), x); d < bestD {
			best, bestD = int32(c), d
		}
	}
	return best
}

// NLists returns the resolved partition count.
func (ix *Index) NLists() int { return ix.cfg.NLists }

// NProbe returns the current probe width.
func (ix *Index) NProbe() int { return ix.cfg.NProbe }

// SetNProbe overrides the probe width (clamped to [1, NLists]). Not
// synchronized with concurrent queries — call during setup only.
func (ix *Index) SetNProbe(p int) {
	if p < 1 {
		p = 1
	}
	if p > ix.cfg.NLists {
		p = ix.cfg.NLists
	}
	ix.cfg.NProbe = p
}

// Config returns the resolved build configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Scratch holds the per-caller buffers a TopK query needs, so steady-state
// probing allocates nothing. The zero value is ready to use; one Scratch
// must not be shared by concurrent queries.
type Scratch struct {
	cd    []distIdx32 // centroid distances
	cand  []distIdx32 // k-best insertion buffer of the candidate scan
	query []float32   // float64→float32 staging for TopK64
	route []float32   // projected-query staging (distinct from query:
	// TopK64 stages into query, and projecting must not overwrite it)
}

// TopK returns up to k row indices nearest to q (a float32 vector in the
// ORIGINAL data space), sorted ascending under the (distance, index)
// order. Fewer than k indices come back only when the probed partitions
// hold fewer than k rows — the caller's signal to fall back to an exact
// scan. scratch may be nil (allocates per call).
func (ix *Index) TopK(q []float32, k int, scratch *Scratch) []int {
	if len(q) != ix.data.Cols {
		panic(fmt.Sprintf("ann: query dim %d vs index dim %d", len(q), ix.data.Cols))
	}
	if k <= 0 {
		return nil
	}
	if scratch == nil {
		scratch = &Scratch{}
	}
	// route: rank centroids in the routing space
	rq := q
	if ix.proj != nil {
		rq = projectVec(q, ix.proj, scratch)
	}
	nl := ix.cfg.NLists
	if cap(scratch.cd) < nl {
		scratch.cd = make([]distIdx32, nl)
	}
	cd := scratch.cd[:nl]
	for c := 0; c < nl; c++ {
		cd[c] = distIdx32{d: linalg.SquaredDistance32(ix.centroids.Row(c), rq), i: int32(c)}
	}
	selectK32(cd, ix.cfg.NProbe)
	probe := cd[:ix.cfg.NProbe]
	sort.Slice(probe, func(a, b int) bool { return probe[a].less(probe[b]) })

	// scan the probed partitions' contiguous blocks, ranking in the
	// original space and keeping the k best in a sorted insertion buffer —
	// most candidates are rejected with a single compare against the
	// current k-th. The result is the k smallest under the strict
	// (distance, index) order, independent of scan order.
	if cap(scratch.cand) < k {
		scratch.cand = make([]distIdx32, 0, k)
	}
	best := scratch.cand[:0]
	d := ix.packed.Cols
	qd := q[:d]
	thr := float32(math.Inf(1)) // current k-th best distance once best is full
	for _, pc := range probe {
		lo, hi := int(ix.listOff[pc.i]), int(ix.listOff[pc.i+1])
	scan:
		for r := lo; r < hi; r++ {
			// squared distance inlined (same order as SquaredDistance32 —
			// four accumulators — so survivors match it bit-for-bit); the
			// call itself is measurable at ~3k candidates per query.
			// Early abandonment: partial sums of non-negative f32 terms are
			// monotone non-decreasing, so a candidate whose running sum
			// strictly exceeds thr can never displace the k-th best (at a
			// tie the full distance could still win on index, hence strict).
			// The check reads a temporary — the accumulators themselves are
			// untouched, so a survivor's final sum has the canonical order.
			row := ix.packed.Row(r)[:d]
			var s0, s1, s2, s3 float32
			kk := 0
			for ; kk+3 < d; kk += 4 {
				d0 := row[kk] - qd[kk]
				d1 := row[kk+1] - qd[kk+1]
				d2 := row[kk+2] - qd[kk+2]
				d3 := row[kk+3] - qd[kk+3]
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
				if s0+s1+s2+s3 > thr {
					continue scan
				}
			}
			s := s0 + s1 + s2 + s3
			for ; kk < d; kk++ {
				dd := row[kk] - qd[kk]
				s += dd * dd
			}
			c := distIdx32{d: s, i: ix.packedIDs[r]}
			if len(best) == k {
				if !c.less(best[k-1]) {
					continue
				}
				best = best[:k-1]
			}
			pos := len(best)
			best = append(best, c)
			for ; pos > 0 && c.less(best[pos-1]); pos-- {
				best[pos] = best[pos-1]
			}
			best[pos] = c
			if len(best) == k {
				thr = best[k-1].d
			}
		}
	}
	scratch.cand = best[:0]
	if len(best) == 0 {
		return nil
	}
	out := make([]int, len(best))
	for i, p := range best {
		out[i] = int(p.i)
	}
	return out
}

// TopK64 is TopK for a float64 query vector, truncating it to float32.
func (ix *Index) TopK64(q []float64, k int, scratch *Scratch) []int {
	if scratch == nil {
		scratch = &Scratch{}
	}
	if cap(scratch.query) < len(q) {
		scratch.query = make([]float32, len(q))
	}
	q32 := scratch.query[:len(q)]
	for i, v := range q {
		q32[i] = float32(v)
	}
	return ix.TopK(q32, k, scratch)
}

// projectVec maps one original-space vector through the routing
// projection into the scratch's route buffer.
func projectVec(q []float32, proj *linalg.Matrix32, scratch *Scratch) []float32 {
	p := proj.Cols
	if cap(scratch.route) < p {
		scratch.route = make([]float32, p)
	}
	out := scratch.route[:p]
	for i := range out {
		out[i] = 0
	}
	for k, v := range q {
		if v == 0 {
			continue
		}
		prow := proj.Row(k)
		for c := range out {
			out[c] += v * prow[c]
		}
	}
	return out
}

// EstimateRecall measures recall@k of the current probe width against an
// exact float32 scan, over up to sample index rows re-used as queries
// (deterministically spread across the dataset). It is the certification
// primitive behind Auto mode: O(sample · n · d) once, instead of trusting
// the configuration blindly.
func (ix *Index) EstimateRecall(k, sample int) float64 {
	n := ix.data.Rows
	if sample <= 0 {
		sample = 16
	}
	if sample > n {
		sample = n
	}
	if k > n {
		k = n
	}
	if k <= 0 || sample == 0 {
		return 1
	}
	stride := n / sample
	if stride < 1 {
		stride = 1
	}
	scratch := &Scratch{}
	exact := make([]distIdx32, n)
	hit, total := 0, 0
	for s := 0; s < sample; s++ {
		q := ix.data.Row((s * stride) % n)
		for i := 0; i < n; i++ {
			exact[i] = distIdx32{d: linalg.SquaredDistance32(ix.data.Row(i), q), i: int32(i)}
		}
		selectK32(exact, k)
		truth := make(map[int32]bool, k)
		for _, p := range exact[:k] {
			truth[p.i] = true
		}
		got := ix.TopK(q, k, scratch)
		for _, id := range got {
			if truth[int32(id)] {
				hit++
			}
		}
		total += k
	}
	rec := float64(hit) / float64(total)
	obs.SetGauge("ann_recall_estimate", rec)
	return rec
}

// selectK32 partially rearranges a so its k smallest elements under the
// (distance, index) order occupy a[:k] — iterative median-of-three
// quickselect, mirroring the exact path's selector.
func selectK32(a []distIdx32, k int) {
	lo, hi := 0, len(a)
	if k <= 0 || k >= len(a) {
		return
	}
	for hi-lo > 1 {
		p := partition32(a, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p
		}
	}
}

func partition32(a []distIdx32, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	if a[lo].less(a[mid]) {
		a[lo], a[mid] = a[mid], a[lo]
	}
	if a[lo].less(a[last]) {
		a[lo], a[last] = a[last], a[lo]
	}
	if a[mid].less(a[last]) {
		a[mid], a[last] = a[last], a[mid]
	}
	pivot := a[mid]
	a[mid], a[last] = a[last], a[mid]
	store := lo
	for i := lo; i < last; i++ {
		if a[i].less(pivot) {
			a[i], a[store] = a[store], a[i]
			store++
		}
	}
	a[store], a[last] = a[last], a[store]
	return store
}
