package challenge

import (
	"math/rand"
	"strings"
	"testing"

	"nde/internal/datagen"
	"nde/internal/importance"
	"nde/internal/linalg"
	"nde/internal/ml"
)

func blobs(n int, sep float64, seed int64) *ml.Dataset {
	r := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		sign := float64(2*c - 1)
		x.Set(i, 0, sign*sep+r.NormFloat64())
		x.Set(i, 1, sign*sep+r.NormFloat64())
	}
	d, _ := ml.NewDataset(x, y)
	return d
}

func newChallenge(t *testing.T, budget int) (*Challenge, map[int]bool) {
	t.Helper()
	clean := blobs(150, 2.2, 201)
	valid := blobs(70, 2.2, 202)
	hidden := blobs(70, 2.2, 203)
	dirty, corrupted, err := datagen.FlipDatasetLabels(clean, 0.15, 204)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(dirty, clean.Y, valid, hidden, nil, budget)
	if err != nil {
		t.Fatal(err)
	}
	return c, corrupted
}

func TestChallengeLifecycle(t *testing.T) {
	c, corrupted := newChallenge(t, 25)
	if c.BudgetLeft() != 25 {
		t.Fatalf("budget = %d", c.BudgetLeft())
	}
	base, err := c.BaselineScore()
	if err != nil {
		t.Fatal(err)
	}
	// informed submission: clean actual corrupted rows
	var rows []int
	for i := range corrupted {
		if len(rows) == 20 {
			break
		}
		rows = append(rows, i)
	}
	score, err := c.Submit(rows)
	if err != nil {
		t.Fatal(err)
	}
	if score < base {
		t.Errorf("cleaning corrupted rows decreased score: %v -> %v", base, score)
	}
	if c.BudgetLeft() != 25-len(rows) {
		t.Errorf("budget left = %d", c.BudgetLeft())
	}
	// resubmitting the same rows is free
	if _, err := c.Submit(rows); err != nil {
		t.Fatal(err)
	}
	if c.BudgetLeft() != 25-len(rows) {
		t.Error("resubmission consumed budget")
	}
}

func TestChallengeBudgetEnforced(t *testing.T) {
	c, _ := newChallenge(t, 5)
	if _, err := c.Submit([]int{0, 1, 2, 3, 4, 5}); err == nil {
		t.Error("expected budget error")
	}
	if _, err := c.Submit([]int{999}); err == nil {
		t.Error("expected range error")
	}
	if _, err := New(blobs(10, 1, 1), []int{0}, nil, nil, nil, 5); err == nil {
		t.Error("expected truth length error")
	}
	if _, err := New(blobs(10, 1, 1), make([]int, 10), nil, nil, nil, 0); err == nil {
		t.Error("expected budget error")
	}
}

func TestChallengeTrainDoesNotLeakInternals(t *testing.T) {
	c, _ := newChallenge(t, 10)
	v := c.Train()
	v.Y[0] = 99
	v2 := c.Train()
	if v2.Y[0] == 99 {
		t.Error("Train() exposed internal state")
	}
}

func TestInformedStrategyBeatsRandomOnLeaderboard(t *testing.T) {
	var lb Leaderboard
	budget := 22

	play := func(name string, pick func(c *Challenge) []int) Entry {
		c, _ := newChallenge(t, budget)
		base, err := c.BaselineScore()
		if err != nil {
			t.Fatal(err)
		}
		rows := pick(c)
		score, err := c.Submit(rows)
		if err != nil {
			t.Fatal(err)
		}
		e := Entry{Name: name, Score: score, Repairs: len(rows), Baseline: base}
		lb.Submit(e)
		return e
	}

	random := play("random", func(c *Challenge) []int {
		return rand.New(rand.NewSource(1)).Perm(c.Train().Len())[:budget]
	})
	shapley := play("knn-shapley", func(c *Challenge) []int {
		scores, err := importance.KNNShapley(5, c.Train(), c.Valid())
		if err != nil {
			t.Fatal(err)
		}
		return scores.BottomK(budget)
	})
	if shapley.Score < random.Score {
		t.Errorf("shapley %v < random %v", shapley.Score, random.Score)
	}
	top := lb.Top(1)
	if len(top) != 1 || top[0].Name != "knn-shapley" {
		t.Errorf("leaderboard top = %v", top)
	}
	out := lb.String()
	if !strings.Contains(out, "knn-shapley") || !strings.Contains(out, "random") {
		t.Errorf("leaderboard render:\n%s", out)
	}
}

func TestLeaderboardTieBreaks(t *testing.T) {
	var lb Leaderboard
	lb.Submit(Entry{Name: "b", Score: 0.9, Repairs: 10})
	lb.Submit(Entry{Name: "a", Score: 0.9, Repairs: 10})
	lb.Submit(Entry{Name: "c", Score: 0.9, Repairs: 5})
	top := lb.Top(3)
	if top[0].Name != "c" || top[1].Name != "a" || top[2].Name != "b" {
		t.Errorf("tie-break order wrong: %v", top)
	}
	if got := lb.Top(99); len(got) != 3 {
		t.Error("Top should clamp")
	}
}

// Regression: a row id repeated within one submission must be charged only
// once — the pre-fix code appended it to the fresh list twice and
// double-charged the budget.
func TestSubmitDedupesRepeatedRowsWithinOneCall(t *testing.T) {
	c, _ := newChallenge(t, 10)
	if _, err := c.Submit([]int{5, 5}); err != nil {
		t.Fatal(err)
	}
	if got := c.BudgetLeft(); got != 9 {
		t.Fatalf("budget left after Submit([5,5]) = %d, want 9 (repeat must cost one unit)", got)
	}
	// resubmitting an already-cleaned row stays free
	if _, err := c.Submit([]int{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if got := c.BudgetLeft(); got != 9 {
		t.Fatalf("budget left after resubmitting cleaned row = %d, want 9", got)
	}
	// a mixed submission charges only the distinct fresh ids
	if _, err := c.Submit([]int{5, 7, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if got := c.BudgetLeft(); got != 7 {
		t.Fatalf("budget left after Submit([5,7,7,8]) = %d, want 7", got)
	}
}

// Degenerate construction inputs must error, not panic.
func TestNewRejectsDegenerateSets(t *testing.T) {
	clean := blobs(20, 2.2, 301)
	valid := blobs(10, 2.2, 302)
	hidden := blobs(10, 2.2, 303)
	empty := &ml.Dataset{X: linalg.NewMatrix(0, 2)}
	cases := []struct {
		name                 string
		dirty, valid, hidden *ml.Dataset
	}{
		{"nil dirty", nil, valid, hidden},
		{"empty dirty", empty, valid, hidden},
		{"nil valid", clean, nil, hidden},
		{"empty hidden", clean, valid, empty},
	}
	for _, tc := range cases {
		if _, err := New(tc.dirty, nil, tc.valid, tc.hidden, nil, 5); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
