// Package challenge implements the tutorial's §3.2 data-debugging
// challenge: contestants see a dirty training set and a validation set,
// and may submit limited batches of row ids to a cleaning oracle. The
// oracle repairs those rows, retrains the hidden classifier, and reports
// the score on a hidden test set. A leaderboard ranks submissions — the
// DataPerf-style protocol for benchmarking data-centric debugging skill.
package challenge

import (
	"fmt"
	"sort"
	"strings"

	"nde/internal/ml"
	"nde/internal/nderr"
)

// Challenge is one instance of the debugging game. Construct it with New;
// the contestant-facing accessors never reveal the hidden state.
type Challenge struct {
	dirty      *ml.Dataset
	truth      []int
	valid      *ml.Dataset
	hiddenTest *ml.Dataset
	newModel   func() ml.Classifier
	budget     int

	cleaned map[int]bool
	used    int
}

// New builds a challenge. dirty is the visible corrupted training set,
// truth its hidden correct labels, valid the visible validation set,
// hiddenTest the hidden scoring set, and budget the total number of rows
// the oracle will repair across all submissions.
func New(dirty *ml.Dataset, truth []int, valid, hiddenTest *ml.Dataset, newModel func() ml.Classifier, budget int) (*Challenge, error) {
	if dirty == nil || dirty.Len() == 0 {
		return nil, nderr.Empty("challenge: training set")
	}
	if valid == nil || valid.Len() == 0 {
		return nil, nderr.Empty("challenge: validation set")
	}
	if hiddenTest == nil || hiddenTest.Len() == 0 {
		return nil, nderr.Empty("challenge: hidden test set")
	}
	if len(truth) != dirty.Len() {
		return nil, fmt.Errorf("challenge: %d truths for %d rows: %w", len(truth), dirty.Len(), nderr.ErrShapeMismatch)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("challenge: budget must be positive, got %d", budget)
	}
	if newModel == nil {
		newModel = func() ml.Classifier { return ml.NewKNN(5) }
	}
	return &Challenge{
		dirty:      dirty.Clone(),
		truth:      append([]int(nil), truth...),
		valid:      valid,
		hiddenTest: hiddenTest,
		newModel:   newModel,
		budget:     budget,
		cleaned:    make(map[int]bool),
	}, nil
}

// Train returns the contestant-visible training data in its current
// (partially cleaned) state.
func (c *Challenge) Train() *ml.Dataset { return c.dirty.Clone() }

// Valid returns the contestant-visible validation set.
func (c *Challenge) Valid() *ml.Dataset { return c.valid }

// BudgetLeft returns the remaining oracle repairs.
func (c *Challenge) BudgetLeft() int { return c.budget - c.used }

// BaselineScore retrains on the current training state and returns the
// hidden-test accuracy without spending any budget.
func (c *Challenge) BaselineScore() (float64, error) {
	return ml.EvaluateAccuracy(c.newModel(), c.dirty, c.hiddenTest)
}

// Submit hands row ids to the cleaning oracle. Already-cleaned ids are
// free, and a row repeated within one submission is charged only once; new
// ids consume budget. The oracle repairs the labels, retrains, and returns
// the hidden-test accuracy.
func (c *Challenge) Submit(rows []int) (float64, error) {
	var fresh []int
	seen := make(map[int]bool, len(rows))
	for _, r := range rows {
		if r < 0 || r >= c.dirty.Len() {
			return 0, fmt.Errorf("challenge: row %d out of range [0,%d)", r, c.dirty.Len())
		}
		if !c.cleaned[r] && !seen[r] {
			seen[r] = true
			fresh = append(fresh, r)
		}
	}
	if len(fresh) > c.BudgetLeft() {
		return 0, fmt.Errorf("challenge: %d new repairs exceed remaining budget %d", len(fresh), c.BudgetLeft())
	}
	for _, r := range fresh {
		c.dirty.Y[r] = c.truth[r]
		c.cleaned[r] = true
	}
	c.used += len(fresh)
	return ml.EvaluateAccuracy(c.newModel(), c.dirty, c.hiddenTest)
}

// Entry is one leaderboard record.
type Entry struct {
	Name     string
	Score    float64
	Repairs  int
	Baseline float64
}

// Gain returns the improvement over the entry's baseline.
func (e Entry) Gain() float64 { return e.Score - e.Baseline }

// Leaderboard ranks submissions by score (ties by fewer repairs, then name).
type Leaderboard struct {
	entries []Entry
}

// Submit records an entry.
func (l *Leaderboard) Submit(e Entry) { l.entries = append(l.entries, e) }

// Top returns the best k entries.
func (l *Leaderboard) Top(k int) []Entry {
	sorted := append([]Entry(nil), l.entries...)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Score != sorted[b].Score {
			return sorted[a].Score > sorted[b].Score
		}
		if sorted[a].Repairs != sorted[b].Repairs {
			return sorted[a].Repairs < sorted[b].Repairs
		}
		return sorted[a].Name < sorted[b].Name
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// String renders the leaderboard as an aligned table.
func (l *Leaderboard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-20s %8s %8s %8s\n", "#", "name", "score", "gain", "repairs")
	for i, e := range l.Top(len(l.entries)) {
		fmt.Fprintf(&b, "%-4d %-20s %8.4f %+8.4f %8d\n", i+1, e.Name, e.Score, e.Gain(), e.Repairs)
	}
	return strings.TrimRight(b.String(), "\n")
}
