package importance

import (
	"sync"

	"nde/internal/ml"
	"nde/internal/obs"
)

// The kNN-Shapley hot paths all need the same valid×train distance
// geometry, and callers (iterative cleaning, repeated experiments,
// benchmarks) invoke them many times over datasets whose *features* never
// change — only labels do. This cache shares one ml.NeighborIndex per
// distinct (train.X, valid.X, search config) triple, so the distance matrix and the
// per-query neighbor orders are computed exactly once and reused across
// calls. Keys are content fingerprints (linalg.Matrix.Fingerprint), not
// pointer identities, so in-place feature mutations are detected and get a
// fresh index.
//
// Concurrency: lookups are singleflight. The global mutex guards only the
// map and the eviction queue; the expensive NewNeighborIndex build runs
// outside it, gated per key by a ready channel. Concurrent first callers
// for the SAME geometry share one build (later arrivals block on the
// channel), while concurrent first callers for DIFFERENT geometries build
// in parallel instead of serializing behind one another's builds. Failed
// builds are not cached: the error is delivered to every waiter of that
// flight and the key is removed so a later call can retry.
//
// IMPORTANT: a cached index may hold *stale labels* (its Datasets are the
// ones from the first call). Callers must therefore use only the
// geometry methods of the returned index (D2, Order, TopK) and read labels
// from their own arguments — never Predict* on a cached index.
//
// Metrics: importance_neighbor_index_{hits,misses,evictions,waits}_total.
// A "wait" is a caller that blocked on another goroutine's in-flight build
// instead of building or reading a completed entry.

type indexKey struct {
	trainFP, validFP uint64
	searchFP         uint64 // ml.SearchConfig fingerprint: mode/nprobe/seed knobs
}

// maxCachedIndexes is the FIFO capacity; SetIndexCacheCapacity changes it.
var maxCachedIndexes = 4

// indexEntry is one singleflight slot: ready is closed when the build
// finishes, after which ix/err are immutable.
type indexEntry struct {
	ready chan struct{}
	ix    *ml.NeighborIndex
	err   error
}

var (
	indexMu     sync.Mutex
	indexCache  = map[indexKey]*indexEntry{}
	indexFIFO   []indexKey // insertion order for eviction
	indexSearch ml.SearchConfig
)

// SetNeighborSearch sets the search configuration every subsequently built
// shared index uses. The config fingerprint is part of the cache key, so
// indexes built under a previous config are not aliased — they simply age
// out of the FIFO. The kNN-Shapley paths consume the full exact ranking
// (Order) regardless of mode; the mode matters for TopK consumers sharing
// the cache, such as the facade's neighbor search.
func SetNeighborSearch(cfg ml.SearchConfig) {
	indexMu.Lock()
	indexSearch = cfg
	indexMu.Unlock()
}

// NeighborSearch returns the search configuration shared indexes are built
// with.
func NeighborSearch() ml.SearchConfig {
	indexMu.Lock()
	defer indexMu.Unlock()
	return indexSearch
}

// SetIndexCacheCapacity resizes the neighbor-index FIFO (minimum 1) and
// returns the previous capacity. Shrinking evicts oldest entries
// immediately; each eviction is counted in
// importance_neighbor_index_evictions_total like any other.
func SetIndexCacheCapacity(n int) int {
	if n < 1 {
		n = 1
	}
	indexMu.Lock()
	defer indexMu.Unlock()
	prev := maxCachedIndexes
	maxCachedIndexes = n
	for len(indexFIFO) > maxCachedIndexes {
		delete(indexCache, indexFIFO[0])
		copy(indexFIFO, indexFIFO[1:])
		indexFIFO = indexFIFO[:len(indexFIFO)-1]
		obs.Inc("importance_neighbor_index_evictions_total")
	}
	return prev
}

// IndexCacheCapacity returns the current FIFO capacity.
func IndexCacheCapacity() int {
	indexMu.Lock()
	defer indexMu.Unlock()
	return maxCachedIndexes
}

// sharedNeighborIndex returns the cached NeighborIndex for (train, valid)
// — valid rows are the queries — building and caching it on a miss. Safe
// for concurrent use.
func sharedNeighborIndex(train, valid *ml.Dataset, workers int) (*ml.NeighborIndex, error) {
	indexMu.Lock()
	search := indexSearch
	indexMu.Unlock()
	key := indexKey{
		trainFP:  train.X.Fingerprint(),
		validFP:  valid.X.Fingerprint(),
		searchFP: search.Fingerprint(),
	}
	indexMu.Lock()
	if e, ok := indexCache[key]; ok {
		indexMu.Unlock()
		select {
		case <-e.ready:
		default:
			obs.Inc("importance_neighbor_index_waits_total")
			<-e.ready
		}
		if e.err != nil {
			return nil, e.err
		}
		obs.Inc("importance_neighbor_index_hits_total")
		return e.ix, nil
	}
	obs.Inc("importance_neighbor_index_misses_total")
	e := &indexEntry{ready: make(chan struct{})}
	// Reserve the slot before building so the map never exceeds
	// maxCachedIndexes entries, even while builds are in flight.
	if len(indexFIFO) >= maxCachedIndexes {
		delete(indexCache, indexFIFO[0])
		// copy-down instead of re-slicing: indexFIFO = indexFIFO[1:] would
		// keep the evicted head slot reachable through the backing array
		copy(indexFIFO, indexFIFO[1:])
		indexFIFO = indexFIFO[:len(indexFIFO)-1]
		obs.Inc("importance_neighbor_index_evictions_total")
	}
	indexCache[key] = e
	indexFIFO = append(indexFIFO, key)
	indexMu.Unlock()

	ix, err := ml.NewNeighborIndexSearch(train, valid, workers, search)
	e.ix, e.err = ix, err
	close(e.ready)
	if err != nil {
		// Drop the failed flight (unless Reset or eviction already replaced
		// it) so the next caller retries instead of caching the error.
		indexMu.Lock()
		if indexCache[key] == e {
			delete(indexCache, key)
			for i, k := range indexFIFO {
				if k == key {
					copy(indexFIFO[i:], indexFIFO[i+1:])
					indexFIFO = indexFIFO[:len(indexFIFO)-1]
					break
				}
			}
		}
		indexMu.Unlock()
		return nil, err
	}
	return ix, nil
}

// ResetNeighborIndexCache drops every cached index. Intended for tests and
// for long-lived processes that want to bound memory between workloads.
// In-flight builds are unaffected: their waiters still receive the built
// index, it just is no longer cached afterwards.
func ResetNeighborIndexCache() {
	indexMu.Lock()
	defer indexMu.Unlock()
	indexCache = map[indexKey]*indexEntry{}
	indexFIFO = nil
}
