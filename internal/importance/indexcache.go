package importance

import (
	"fmt"
	"sync"

	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/obs"
	"nde/internal/store"
)

// The kNN-Shapley hot paths all need the same valid×train distance
// geometry, and callers (iterative cleaning, repeated experiments,
// benchmarks, concurrent serving requests) invoke them many times over
// datasets whose *features* never change — only labels do. This cache
// shares one ml.NeighborIndex per distinct (train.X, valid.X, search
// config) triple through a content-addressed artifact store
// (internal/store), so the distance matrix and the per-query neighbor
// orders are computed exactly once and reused across calls. Keys are
// content fingerprints (linalg.Matrix.Fingerprint), not pointer
// identities, so in-place feature mutations are detected and get a fresh
// index.
//
// Concurrency: lookups are singleflight and eviction is LRU over ready
// entries only — an in-flight build is never evicted, so concurrent
// same-key callers always share one build even while other geometries
// churn the cache past its bound. See the internal/store package
// documentation for the full contract.
//
// IMPORTANT: a cached index may hold *stale labels* (its Datasets are the
// ones from the first call). Callers must therefore use only the
// geometry methods of the returned index (D2, Order, TopK) and read labels
// from their own arguments — never Predict* on a cached index.
//
// Metrics: importance_neighbor_index_{hits,misses,evictions,waits}_total
// plus the importance_neighbor_index_{entries,inflight} gauges. A "wait"
// is a caller that blocked on another goroutine's in-flight build instead
// of building or reading a completed entry.

type indexKey struct {
	trainFP, validFP uint64
	searchFP         uint64 // ml.SearchConfig fingerprint: mode/nprobe/seed knobs
}

// defaultIndexCacheCapacity is the initial LRU bound;
// SetIndexCacheCapacity changes it.
const defaultIndexCacheCapacity = 4

// indexStore is the shared neighbor-index artifact store. The metric
// prefix preserves the counter names the cache has exported since PR 2.
var indexStore = store.New[indexKey, *ml.NeighborIndex]("importance_neighbor_index", defaultIndexCacheCapacity)

var (
	searchMu    sync.Mutex
	indexSearch ml.SearchConfig
)

// SetNeighborSearch sets the search configuration every subsequently built
// shared index uses. The config fingerprint is part of the cache key, so
// indexes built under a previous config are not aliased — they simply age
// out of the LRU. The kNN-Shapley paths consume the full exact ranking
// (Order) regardless of mode; the mode matters for TopK consumers sharing
// the cache, such as the facade's neighbor search.
func SetNeighborSearch(cfg ml.SearchConfig) {
	searchMu.Lock()
	indexSearch = cfg
	searchMu.Unlock()
}

// NeighborSearch returns the search configuration shared indexes are built
// with.
func NeighborSearch() ml.SearchConfig {
	searchMu.Lock()
	defer searchMu.Unlock()
	return indexSearch
}

// SetIndexCacheCapacity resizes the neighbor-index LRU and returns the
// previous capacity. Shrinking evicts the least recently used ready
// entries immediately; each eviction is counted in
// importance_neighbor_index_evictions_total like any other. In-flight
// builds are never evicted by a shrink — the store trims back to the new
// bound as they complete.
//
// n must be >= 1: a zero or negative capacity would silently clamp and
// leave the caller believing the cache was disabled, so it is rejected
// with a wrapped nderr.ErrDegenerateInput and the capacity is unchanged
// (the current value is returned alongside the error).
func SetIndexCacheCapacity(n int) (int, error) {
	if n < 1 {
		return indexStore.Capacity(), fmt.Errorf("importance: index cache capacity %d, need >= 1: %w", n, nderr.ErrDegenerateInput)
	}
	return indexStore.SetCapacity(n), nil
}

// IndexCacheCapacity returns the current LRU capacity.
func IndexCacheCapacity() int { return indexStore.Capacity() }

// sharedNeighborIndex returns the cached NeighborIndex for (train, valid)
// — valid rows are the queries — building and caching it on a miss. Safe
// for concurrent use; concurrent callers for the same geometry share one
// build.
func sharedNeighborIndex(train, valid *ml.Dataset, workers int) (*ml.NeighborIndex, error) {
	search := NeighborSearch()
	key := indexKey{
		trainFP:  train.X.Fingerprint(),
		validFP:  valid.X.Fingerprint(),
		searchFP: search.Fingerprint(),
	}
	return indexStore.GetOrBuild(key, func() (*ml.NeighborIndex, error) {
		return ml.NewNeighborIndexSearch(train, valid, workers, search)
	})
}

// registerDerivedIndex publishes a delta-derived index under its own
// geometry key, so the next sharedNeighborIndex call for the mutated
// train set hits the cache instead of rebuilding from scratch — the cache
// derives child entries from parents. First build wins on collision
// (store.Put semantics); the counter tracks successful registrations.
func registerDerivedIndex(ix *ml.NeighborIndex, validFP uint64) {
	key := indexKey{
		trainFP:  ix.Train.X.Fingerprint(),
		validFP:  validFP,
		searchFP: NeighborSearch().Fingerprint(),
	}
	if indexStore.Put(key, ix) && obs.Enabled() {
		obs.Inc("importance_neighbor_index_derived_total")
	}
}

// ResetNeighborIndexCache drops every cached index. Intended for tests and
// for long-lived processes that want to bound memory between workloads.
// In-flight builds are unaffected: their waiters still receive the built
// index, it just is no longer cached afterwards.
func ResetNeighborIndexCache() { indexStore.Reset() }
