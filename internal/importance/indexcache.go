package importance

import (
	"sync"

	"nde/internal/ml"
	"nde/internal/obs"
)

// The kNN-Shapley hot paths all need the same valid×train distance
// geometry, and callers (iterative cleaning, repeated experiments,
// benchmarks) invoke them many times over datasets whose *features* never
// change — only labels do. This cache shares one ml.NeighborIndex per
// distinct (train.X, valid.X) content pair, so the distance matrix and the
// per-query neighbor orders are computed exactly once and reused across
// calls. Keys are content fingerprints (linalg.Matrix.Fingerprint), not
// pointer identities, so in-place feature mutations are detected and get a
// fresh index.
//
// IMPORTANT: a cached index may hold *stale labels* (its Datasets are the
// ones from the first call). Callers must therefore use only the
// geometry methods of the returned index (D2, Order, TopK) and read labels
// from their own arguments — never Predict* on a cached index.
//
// Hits and misses are exported as the importance_neighbor_index_hits_total
// and importance_neighbor_index_misses_total counters.

type indexKey struct {
	trainFP, validFP uint64
}

const maxCachedIndexes = 4

var (
	indexMu    sync.Mutex
	indexCache = map[indexKey]*ml.NeighborIndex{}
	indexFIFO  []indexKey // insertion order for eviction
)

// sharedNeighborIndex returns the cached NeighborIndex for (train, valid)
// — valid rows are the queries — building and caching it on a miss.
func sharedNeighborIndex(train, valid *ml.Dataset, workers int) (*ml.NeighborIndex, error) {
	key := indexKey{trainFP: train.X.Fingerprint(), validFP: valid.X.Fingerprint()}
	indexMu.Lock()
	defer indexMu.Unlock()
	if ix, ok := indexCache[key]; ok {
		obs.Inc("importance_neighbor_index_hits_total")
		return ix, nil
	}
	obs.Inc("importance_neighbor_index_misses_total")
	ix, err := ml.NewNeighborIndex(train, valid, workers)
	if err != nil {
		return nil, err
	}
	if len(indexFIFO) >= maxCachedIndexes {
		delete(indexCache, indexFIFO[0])
		indexFIFO = indexFIFO[1:]
	}
	indexCache[key] = ix
	indexFIFO = append(indexFIFO, key)
	return ix, nil
}

// ResetNeighborIndexCache drops every cached index. Intended for tests and
// for long-lived processes that want to bound memory between workloads.
func ResetNeighborIndexCache() {
	indexMu.Lock()
	defer indexMu.Unlock()
	indexCache = map[indexKey]*ml.NeighborIndex{}
	indexFIFO = nil
}
