package importance

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"nde/internal/obs"
	"nde/internal/par"
)

// MCShapleyParallel estimates Monte-Carlo permutation Shapley values with
// permutations fanned out over the shared worker pool. Each permutation p
// draws from its own rand stream seeded by a splitmix64 hash of
// (cfg.Seed, p), so the sampled permutations — and therefore the scores —
// are bit-for-bit identical for every worker count, including 1. Per-
// permutation contribution vectors are reduced in permutation order, so
// float summation order never depends on scheduling. TMC truncation
// (cfg.Truncation) applies within each permutation exactly as in
// MCShapley.
//
// The estimate differs from serial MCShapley at the same seed (that one
// threads a single rand stream through all permutations); both are
// unbiased estimators of the same values.
//
// The utility u must be safe for concurrent calls; the Utility functions
// built by this package (AccuracyUtility, KNNUtility) are, since they only
// read the datasets they close over.
func MCShapleyParallel(n int, u Utility, cfg MCShapleyConfig, workers int) (Scores, error) {
	if n <= 0 {
		return nil, fmt.Errorf("importance: need at least one example, got %d", n)
	}
	perms := cfg.Permutations
	if perms <= 0 {
		perms = 100
	}
	resolved := par.Workers(workers, perms)
	sp := obs.StartSpan("importance.mcshapley_parallel")
	sp.SetInt("n", int64(n)).SetInt("permutations", int64(perms)).SetInt("workers", int64(resolved))
	defer sp.End()
	prog := obs.NewProgress("mcshapley_parallel_permutations", perms)
	defer prog.Done()

	uEmpty, err := u(nil)
	if err != nil {
		return nil, err
	}
	full := make([]int, n)
	for i := range full {
		full[i] = i
	}
	uFull, err := u(full)
	if err != nil {
		return nil, err
	}

	// per-permutation contribution vectors, reduced in permutation order
	contribs := make([][]float64, perms)
	subsets := make([][]int, resolved) // per-worker subset scratch
	evals := make([]int64, resolved)   // per-worker counters
	truncs := make([]int64, resolved)
	var failed atomic.Bool
	var errOnce sync.Once
	var firstErr error
	par.For("importance.mcshapley", workers, perms, func(w, p int) {
		if failed.Load() {
			return // a sibling already failed; drain remaining work cheaply
		}
		r := rand.New(rand.NewSource(permSeed(cfg.Seed, p)))
		perm := r.Perm(n)
		subset := subsets[w]
		if subset == nil {
			subset = make([]int, 0, n)
		}
		subset = subset[:0]
		c := make([]float64, n)
		prev := uEmpty
		for _, i := range perm {
			subset = append(subset, i)
			cur, err := u(subset)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
				return
			}
			evals[w]++
			c[i] = cur - prev
			prev = cur
			if cfg.Truncation > 0 && abs(uFull-cur) < cfg.Truncation {
				truncs[w]++
				break // remaining examples get zero marginal contribution
			}
		}
		subsets[w] = subset[:0]
		contribs[p] = c
		prog.Tick(1)
	})
	if failed.Load() {
		return nil, firstErr
	}

	scores := make(Scores, n)
	for p := 0; p < perms; p++ { // fixed reduction order
		for i, c := range contribs[p] {
			scores[i] += c
		}
	}
	inv := 1 / float64(perms)
	for i := range scores {
		scores[i] *= inv
	}
	totalEvals, totalTruncs := int64(2), int64(0)
	for w := 0; w < resolved; w++ {
		totalEvals += evals[w]
		totalTruncs += truncs[w]
	}
	obs.Count("importance_mc_utility_evals_total", totalEvals)
	obs.Count("importance_mc_truncations_total", totalTruncs)
	sp.SetInt("utility_evals", totalEvals).SetInt("truncations", totalTruncs)
	return scores, nil
}

// permSeed derives an independent, deterministic seed for permutation p
// from the config seed via splitmix64 — the per-permutation streams do not
// depend on which worker runs them.
func permSeed(seed int64, p int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(p+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
