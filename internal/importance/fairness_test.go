package importance

import (
	"math/rand"
	"strings"
	"testing"

	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
)

// biasedHiring builds a dataset where a poisoned data source flips the
// labels of most positive examples of protected group "b". The group is
// visible to the model as a feature, so the poison teaches the model to
// reject group-b positives — an equalized-odds violation that disappears
// when the poisoned slice (src="bad") is removed.
func biasedHiring(n int, seed int64) (*ml.Dataset, *frame.Frame, *ml.Dataset) {
	r := rand.New(rand.NewSource(seed))
	gen := func(m int, poison bool) (*linalg.Matrix, []int, []string, []string) {
		x := linalg.NewMatrix(m, 3)
		y := make([]int, m)
		grp := make([]string, m)
		src := make([]string, m)
		for i := 0; i < m; i++ {
			c := i % 2
			sign := float64(2*c - 1)
			x.Set(i, 0, sign*2+r.NormFloat64())
			x.Set(i, 1, sign*2+r.NormFloat64())
			y[i] = c
			grp[i] = "a"
			src[i] = "good"
			if r.Float64() < 0.5 {
				grp[i] = "b"
				x.Set(i, 2, 1) // group membership is a model-visible feature
			}
			if poison && grp[i] == "b" && y[i] == 1 && r.Float64() < 0.8 {
				y[i] = 0
				src[i] = "bad"
			}
		}
		return x, y, grp, src
	}
	x, y, grp, src := gen(n, true)
	train, _ := ml.NewDataset(x, y)
	attrs := frame.MustNew(
		frame.NewStringSeries("grp", grp, nil),
		frame.NewStringSeries("src", src, nil),
	)
	vx, vy, vg, _ := gen(n/2, false)
	valid, _ := ml.NewDataset(vx, vy)
	valid, _ = valid.WithGroups(vg)
	return train, attrs, valid
}

func TestGopherFindsPoisonedSubgroup(t *testing.T) {
	train, attrs, valid := biasedHiring(160, 81)
	base, subs, err := GopherExplanations(train, attrs, valid, GopherConfig{TopK: 3, MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no explanations returned")
	}
	_ = base
	// the top explanation should involve the poisoned src=bad slice
	top := subs[0].String()
	if !strings.Contains(top, "src=bad") {
		t.Errorf("top explanation = %s, want to mention src=bad (all: %v)", top, subs)
	}
	if subs[0].Delta < 0 {
		t.Errorf("top explanation has negative delta %v", subs[0].Delta)
	}
	// results sorted by delta descending
	for i := 1; i < len(subs); i++ {
		if subs[i].Delta > subs[i-1].Delta {
			t.Error("explanations not sorted by delta")
		}
	}
}

func TestGopherErrors(t *testing.T) {
	train, attrs, valid := biasedHiring(40, 82)
	short := frame.MustNew(frame.NewStringSeries("g", []string{"x"}, nil))
	if _, _, err := GopherExplanations(train, short, valid, GopherConfig{}); err == nil {
		t.Error("expected error for attrs length mismatch")
	}
	noGroups, _ := ml.NewDataset(valid.X, valid.Y)
	if _, _, err := GopherExplanations(train, attrs, noGroups, GopherConfig{}); err == nil {
		t.Error("expected error for validation without groups")
	}
}

func TestGopherMinSupportFilters(t *testing.T) {
	train, attrs, valid := biasedHiring(80, 83)
	_, subs, err := GopherExplanations(train, attrs, valid, GopherConfig{TopK: 100, MinSupport: 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if s.Support < 15 {
			t.Errorf("subgroup %v below min support", s)
		}
	}
}

func TestPredicateAndSubgroupStrings(t *testing.T) {
	p := Predicate{Column: "sex", Value: frame.Str("f")}
	if p.String() != "sex=f" {
		t.Errorf("predicate = %q", p.String())
	}
	s := Subgroup{Predicates: []Predicate{p}, Support: 3, Delta: 0.125}
	if !strings.Contains(s.String(), "sex=f") || !strings.Contains(s.String(), "support=3") {
		t.Errorf("subgroup = %q", s.String())
	}
}
