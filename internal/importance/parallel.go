package importance

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nde/internal/ml"
	"nde/internal/obs"
)

// ParallelStats reports how a parallel importance computation actually
// ran. It surfaces the resolved worker count — previously invisible when
// the requested count was 0 (auto) or clamped to the number of validation
// points — so callers and tests can assert on it.
type ParallelStats struct {
	// RequestedWorkers is the caller-supplied worker count (<= 0 = auto).
	RequestedWorkers int
	// Workers is the resolved count actually used: GOMAXPROCS when auto,
	// then clamped to the number of validation points.
	Workers int
	// Points is the number of validation points processed.
	Points int
	// PerWorker[w] is the number of validation points worker w processed;
	// its spread shows pool utilization balance.
	PerWorker []int
	// Wall is the end-to-end time of the parallel section.
	Wall time.Duration
}

// KNNShapleyParallel computes the same exact kNN-Shapley values as
// KNNShapley using a worker pool over validation points. Results are
// bit-for-bit deterministic: each validation point's contribution vector is
// computed independently and the final reduction sums them in validation-
// point order, so float summation order never depends on scheduling.
func KNNShapleyParallel(k int, train, valid *ml.Dataset, workers int) (Scores, error) {
	scores, _, err := KNNShapleyParallelStats(k, train, valid, workers)
	return scores, err
}

// KNNShapleyParallelStats is KNNShapleyParallel returning ParallelStats
// alongside the scores. The resolved worker count is also exported as the
// importance_knnshapley_workers gauge, and per-worker utilization is
// recorded into the importance_knnshapley_points_per_worker histogram.
func KNNShapleyParallelStats(k int, train, valid *ml.Dataset, workers int) (Scores, *ParallelStats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("importance: kNN-Shapley requires K >= 1, got %d", k)
	}
	if train.Len() == 0 || valid.Len() == 0 {
		return nil, nil, fmt.Errorf("importance: kNN-Shapley needs non-empty train (%d) and valid (%d)", train.Len(), valid.Len())
	}
	if train.Dim() != valid.Dim() {
		return nil, nil, fmt.Errorf("importance: dimension mismatch %d vs %d", train.Dim(), valid.Dim())
	}
	stats := &ParallelStats{RequestedWorkers: workers, Points: valid.Len()}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > valid.Len() {
		workers = valid.Len()
	}
	stats.Workers = workers
	stats.PerWorker = make([]int, workers)
	obs.SetGauge("importance_knnshapley_workers", float64(workers))

	sp := obs.StartSpan("importance.knnshapley_parallel")
	sp.SetInt("k", int64(k)).SetInt("train", int64(train.Len())).
		SetInt("valid", int64(valid.Len())).SetInt("workers", int64(workers))
	prog := obs.NewProgress("knnshapley_parallel", valid.Len())
	start := time.Now()

	n := train.Len()
	// per-validation-point contribution vectors, indexed by validation point
	contribs := make([][]float64, valid.Len())
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			order := make([]int, n)
			dists := make([]float64, n)
			s := make([]float64, n)
			for v := range jobs {
				x, y := valid.Row(v), valid.Y[v]
				for i := 0; i < n; i++ {
					dists[i] = ml.EuclideanDistance(train.Row(i), x)
					order[i] = i
				}
				sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
				match := func(pos int) float64 {
					if train.Y[order[pos]] == y {
						return 1
					}
					return 0
				}
				s[n-1] = match(n-1) / float64(n)
				for j := n - 2; j >= 0; j-- {
					rank := j + 1
					s[j] = s[j+1] + (match(j)-match(j+1))/float64(k)*minF(float64(k), float64(rank))/float64(rank)
				}
				c := make([]float64, n)
				for j := 0; j < n; j++ {
					c[order[j]] = s[j]
				}
				contribs[v] = c
				stats.PerWorker[w]++ // w-private slot; published by wg.Wait
				prog.Tick(1)
			}
		}(w)
	}
	for v := 0; v < valid.Len(); v++ {
		jobs <- v
	}
	close(jobs)
	wg.Wait()
	stats.Wall = time.Since(start)
	prog.Done()
	if obs.Enabled() {
		for _, cnt := range stats.PerWorker {
			obs.ObserveWith("importance_knnshapley_points_per_worker", float64(cnt), obs.ExpBuckets(1, 2, 13))
		}
	}
	sp.End()

	scores := make(Scores, n)
	for v := 0; v < valid.Len(); v++ { // fixed reduction order
		for i, c := range contribs[v] {
			scores[i] += c
		}
	}
	inv := 1 / float64(valid.Len())
	for i := range scores {
		scores[i] *= inv
	}
	return scores, stats, nil
}
