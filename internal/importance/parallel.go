package importance

import (
	"time"

	"nde/internal/ml"
	"nde/internal/obs"
	"nde/internal/par"
)

// ParallelStats reports how a parallel importance computation actually
// ran. It surfaces the resolved worker count — previously invisible when
// the requested count was 0 (auto) or clamped to the number of validation
// points — so callers and tests can assert on it.
type ParallelStats struct {
	// RequestedWorkers is the caller-supplied worker count (<= 0 = auto).
	RequestedWorkers int
	// Workers is the resolved count actually used: GOMAXPROCS when auto,
	// then clamped to the number of validation points.
	Workers int
	// Points is the number of validation points processed.
	Points int
	// PerWorker[w] is the number of validation points worker w processed;
	// its spread shows pool utilization balance.
	PerWorker []int
	// Wall is the end-to-end time of the parallel section.
	Wall time.Duration
}

// KNNShapleyParallel computes the same exact kNN-Shapley values as
// KNNShapley using the shared worker pool over validation points. Results
// are bit-for-bit deterministic and identical to the sequential function:
// both read neighbor orders from the same shared NeighborIndex, each
// validation point's contribution vector is computed independently, and
// the final reduction sums them in validation-point order, so float
// summation order never depends on scheduling.
func KNNShapleyParallel(k int, train, valid *ml.Dataset, workers int) (Scores, error) {
	scores, _, err := KNNShapleyParallelStats(k, train, valid, workers)
	return scores, err
}

// KNNShapleyParallelStats is KNNShapleyParallel returning ParallelStats
// alongside the scores. The resolved worker count is also exported as the
// importance_knnshapley_workers gauge, and per-worker utilization is
// recorded into the importance_knnshapley_points_per_worker histogram.
func KNNShapleyParallelStats(k int, train, valid *ml.Dataset, workers int) (Scores, *ParallelStats, error) {
	if err := validateKNNShapley(k, train, valid); err != nil {
		return nil, nil, err
	}
	resolved := par.Workers(workers, valid.Len())
	obs.SetGauge("importance_knnshapley_workers", float64(resolved))

	sp := obs.StartSpan("importance.knnshapley_parallel")
	sp.SetInt("k", int64(k)).SetInt("train", int64(train.Len())).
		SetInt("valid", int64(valid.Len())).SetInt("workers", int64(resolved))
	prog := obs.NewProgress("knnshapley_parallel", valid.Len())

	ix, err := sharedNeighborIndex(train, valid, workers)
	if err != nil {
		sp.End()
		prog.Done()
		return nil, nil, err
	}

	n := train.Len()
	// per-validation-point contribution vectors, indexed by validation point
	contribs := make([][]float64, valid.Len())
	scratch := make([][]float64, resolved) // per-worker recurrence buffer
	st := par.For("importance.knnshapley", workers, valid.Len(), func(w, v int) {
		s := scratch[w]
		if s == nil {
			s = make([]float64, n)
			scratch[w] = s
		}
		order := ix.Order(v)
		knnShapleyContrib(k, train.Y, valid.Y[v], order, s)
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			c[order[j]] = s[j]
		}
		contribs[v] = c
		prog.Tick(1)
	})
	prog.Done()
	if obs.Enabled() {
		for _, cnt := range st.PerWorker {
			obs.ObserveWith("importance_knnshapley_points_per_worker", float64(cnt), obs.ExpBuckets(1, 2, 13))
		}
	}
	sp.End()

	scores := make(Scores, n)
	for v := 0; v < valid.Len(); v++ { // fixed reduction order
		for i, c := range contribs[v] {
			scores[i] += c
		}
	}
	inv := 1 / float64(valid.Len())
	for i := range scores {
		scores[i] *= inv
	}
	stats := &ParallelStats{
		RequestedWorkers: workers,
		Workers:          st.Workers,
		Points:           st.Items,
		PerWorker:        st.PerWorker,
		Wall:             st.Wall,
	}
	return scores, stats, nil
}
