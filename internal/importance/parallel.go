package importance

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"nde/internal/ml"
)

// KNNShapleyParallel computes the same exact kNN-Shapley values as
// KNNShapley using a worker pool over validation points. Results are
// bit-for-bit deterministic: each validation point's contribution vector is
// computed independently and the final reduction sums them in validation-
// point order, so float summation order never depends on scheduling.
func KNNShapleyParallel(k int, train, valid *ml.Dataset, workers int) (Scores, error) {
	if k < 1 {
		return nil, fmt.Errorf("importance: kNN-Shapley requires K >= 1, got %d", k)
	}
	if train.Len() == 0 || valid.Len() == 0 {
		return nil, fmt.Errorf("importance: kNN-Shapley needs non-empty train (%d) and valid (%d)", train.Len(), valid.Len())
	}
	if train.Dim() != valid.Dim() {
		return nil, fmt.Errorf("importance: dimension mismatch %d vs %d", train.Dim(), valid.Dim())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > valid.Len() {
		workers = valid.Len()
	}
	n := train.Len()
	// per-validation-point contribution vectors, indexed by validation point
	contribs := make([][]float64, valid.Len())
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			order := make([]int, n)
			dists := make([]float64, n)
			s := make([]float64, n)
			for v := range jobs {
				x, y := valid.Row(v), valid.Y[v]
				for i := 0; i < n; i++ {
					dists[i] = ml.EuclideanDistance(train.Row(i), x)
					order[i] = i
				}
				sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
				match := func(pos int) float64 {
					if train.Y[order[pos]] == y {
						return 1
					}
					return 0
				}
				s[n-1] = match(n-1) / float64(n)
				for j := n - 2; j >= 0; j-- {
					rank := j + 1
					s[j] = s[j+1] + (match(j)-match(j+1))/float64(k)*minF(float64(k), float64(rank))/float64(rank)
				}
				c := make([]float64, n)
				for j := 0; j < n; j++ {
					c[order[j]] = s[j]
				}
				contribs[v] = c
			}
		}()
	}
	for v := 0; v < valid.Len(); v++ {
		jobs <- v
	}
	close(jobs)
	wg.Wait()

	scores := make(Scores, n)
	for v := 0; v < valid.Len(); v++ { // fixed reduction order
		for i, c := range contribs[v] {
			scores[i] += c
		}
	}
	inv := 1 / float64(valid.Len())
	for i := range scores {
		scores[i] *= inv
	}
	return scores, nil
}
