package importance

import (
	"fmt"
	"sort"

	"nde/internal/ml"
	"nde/internal/obs"
)

// KNNShapley computes exact Shapley values for the k-nearest-neighbor
// utility in O(n log n) per validation point (Jia et al., VLDB 2019).
//
// For one validation point (x, y) the utility of a training subset S is
// U(S) = (1/K) Σ_{j=1..min(K,|S|)} 1[label of j-th nearest point in S = y],
// i.e. the fraction of the K nearest neighbors that vote correctly. The
// Shapley values of this utility have the closed-form recurrence
//
//	s_(N)  = 1[y_(N) = y] / N
//	s_(j)  = s_(j+1) + (1[y_(j)=y] − 1[y_(j+1)=y]) / K · min(K, j) / j
//
// where (j) indexes training points sorted by ascending distance to x.
// The total score of a training point is its sum over validation points,
// normalized by the number of validation points.
//
// Distances and neighbor orders come from the shared NeighborIndex cache:
// the valid×train squared-distance matrix is computed once through the
// batched linalg kernel and reused across calls (and with
// KNNShapleyParallel, which is bit-for-bit identical to this function).
func KNNShapley(k int, train, valid *ml.Dataset) (Scores, error) {
	if err := validateKNNShapley(k, train, valid); err != nil {
		return nil, err
	}
	sp := obs.StartSpan("importance.knnshapley")
	sp.SetInt("k", int64(k)).SetInt("train", int64(train.Len())).SetInt("valid", int64(valid.Len()))
	defer sp.End()
	prog := obs.NewProgress("knnshapley", valid.Len())
	defer prog.Done()

	ix, err := sharedNeighborIndex(train, valid, 1)
	if err != nil {
		return nil, err
	}
	n := train.Len()
	scores := make(Scores, n)
	s := make([]float64, n)
	for v := 0; v < valid.Len(); v++ {
		prog.Tick(1)
		order := ix.Order(v)
		knnShapleyContrib(k, train.Y, valid.Y[v], order, s)
		for j := 0; j < n; j++ {
			scores[order[j]] += s[j]
		}
	}
	inv := 1 / float64(valid.Len())
	for i := range scores {
		scores[i] *= inv
	}
	return scores, nil
}

// KNNShapleyWithIndex computes the same closed form from a caller-provided
// NeighborIndex whose Train/Queries pair is the (train, valid) of
// interest, reusing its cached distance matrix and neighbor orders. The
// result is bit-for-bit identical to KNNShapley on the same data.
func KNNShapleyWithIndex(k int, ix *ml.NeighborIndex) (Scores, error) {
	train, valid := ix.Train, ix.Queries
	if err := validateKNNShapley(k, train, valid); err != nil {
		return nil, err
	}
	n := train.Len()
	scores := make(Scores, n)
	s := make([]float64, n)
	for v := 0; v < valid.Len(); v++ {
		order := ix.Order(v)
		knnShapleyContrib(k, train.Y, valid.Y[v], order, s)
		for j := 0; j < n; j++ {
			scores[order[j]] += s[j]
		}
	}
	inv := 1 / float64(valid.Len())
	for i := range scores {
		scores[i] *= inv
	}
	return scores, nil
}

// knnShapleyContrib fills s with the per-rank Shapley recurrence for one
// validation point with label y, given the neighbor order of the training
// points. s[j] is the contribution of the training point at rank j.
func knnShapleyContrib(k int, trainY []int, y int, order []int, s []float64) {
	n := len(order)
	match := func(pos int) float64 {
		if trainY[order[pos]] == y {
			return 1
		}
		return 0
	}
	s[n-1] = match(n-1) / float64(n)
	for j := n - 2; j >= 0; j-- {
		rank := j + 1 // 1-based rank of position j
		s[j] = s[j+1] + (match(j)-match(j+1))/float64(k)*minF(float64(k), float64(rank))/float64(rank)
	}
}

func validateKNNShapley(k int, train, valid *ml.Dataset) error {
	if k < 1 {
		return fmt.Errorf("importance: kNN-Shapley requires K >= 1, got %d", k)
	}
	if train.Len() == 0 || valid.Len() == 0 {
		return fmt.Errorf("importance: kNN-Shapley needs non-empty train (%d) and valid (%d)", train.Len(), valid.Len())
	}
	if train.Dim() != valid.Dim() {
		return fmt.Errorf("importance: dimension mismatch %d vs %d", train.Dim(), valid.Dim())
	}
	return nil
}

// KNNUtility returns the utility function that KNNShapley's closed form
// scores: mean over validation points of the fraction of correct votes
// among the K nearest neighbors within the subset. Exposed so tests and
// benchmarks can cross-check the closed form against generic estimators.
// Ranking uses squared distances with index tie-breaks — the same total
// order as the closed form and the NeighborIndex.
func KNNUtility(k int, train, valid *ml.Dataset) Utility {
	return func(subset []int) (float64, error) {
		if len(subset) == 0 {
			return 0, nil
		}
		total := 0.0
		type distIdx struct {
			d float64
			i int
		}
		for v := 0; v < valid.Len(); v++ {
			x, y := valid.Row(v), valid.Y[v]
			di := make([]distIdx, len(subset))
			for o, i := range subset {
				di[o] = distIdx{ml.SquaredDistance(train.Row(i), x), i}
			}
			sort.SliceStable(di, func(a, b int) bool {
				if di[a].d != di[b].d {
					return di[a].d < di[b].d
				}
				return di[a].i < di[b].i
			})
			m := k
			if m > len(di) {
				m = len(di)
			}
			correct := 0
			for j := 0; j < m; j++ {
				if train.Y[di[j].i] == y {
					correct++
				}
			}
			total += float64(correct) / float64(k)
		}
		return total / float64(valid.Len()), nil
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
