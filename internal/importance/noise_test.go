package importance

import (
	"testing"

	"nde/internal/ml"
)

func TestSelfConfidenceDetectsFlips(t *testing.T) {
	clean := blobs(200, 2.5, 61)
	dirty, flipped := flipLabels(clean, 0.1, 62)
	scores, err := SelfConfidence(dirty, NoiseConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prec := scores.PrecisionAtK(flipped, len(flipped))
	if prec < 0.7 {
		t.Errorf("self-confidence precision@k = %v, want >= 0.7", prec)
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("self-confidence %v outside [0,1]", s)
		}
	}
}

func TestMarginScoreDetectsFlips(t *testing.T) {
	clean := blobs(200, 2.5, 63)
	dirty, flipped := flipLabels(clean, 0.1, 64)
	scores, err := MarginScore(dirty, NoiseConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	prec := scores.PrecisionAtK(flipped, len(flipped))
	if prec < 0.7 {
		t.Errorf("margin precision@k = %v, want >= 0.7", prec)
	}
	for _, s := range scores {
		if s < -1-1e-9 || s > 1+1e-9 {
			t.Errorf("margin %v outside [-1,1]", s)
		}
	}
}

func TestConfidentLearningFlags(t *testing.T) {
	clean := blobs(200, 3, 65)
	dirty, flipped := flipLabels(clean, 0.1, 66)
	flags, err := ConfidentLearningFlags(dirty, NoiseConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(flags) == 0 {
		t.Fatal("no examples flagged despite 10% label noise")
	}
	hits := 0
	for _, i := range flags {
		if flipped[i] {
			hits++
		}
	}
	prec := float64(hits) / float64(len(flags))
	rec := float64(hits) / float64(len(flipped))
	if prec < 0.7 {
		t.Errorf("confident-learning precision = %v, want >= 0.7", prec)
	}
	if rec < 0.5 {
		t.Errorf("confident-learning recall = %v, want >= 0.5", rec)
	}
}

func TestConfidentLearningCleanDataFewFlags(t *testing.T) {
	clean := blobs(200, 3, 67)
	flags, err := ConfidentLearningFlags(clean, NoiseConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(flags) > clean.Len()/10 {
		t.Errorf("flagged %d of %d clean examples", len(flags), clean.Len())
	}
}

func TestNoiseConfigCustomModel(t *testing.T) {
	clean := blobs(100, 2.5, 68)
	dirty, flipped := flipLabels(clean, 0.1, 69)
	scores, err := SelfConfidence(dirty, NoiseConfig{
		Seed:     5,
		Folds:    4,
		NewModel: func() ml.ProbabilisticClassifier { return ml.NewKNN(7) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if prec := scores.PrecisionAtK(flipped, len(flipped)); prec < 0.6 {
		t.Errorf("kNN-based self-confidence precision = %v", prec)
	}
}
