package importance

import (
	"fmt"

	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/obs"
)

// InfluenceConfig controls the influence-function computation.
type InfluenceConfig struct {
	// L2 is the ridge penalty used both for training the logistic model
	// and for damping the Hessian (default 1e-3). Damping keeps the
	// Hessian positive definite for separable data.
	L2 float64
	// Epochs for the underlying logistic fit (default 300).
	Epochs int
}

// Influence computes influence-function importance scores for a logistic
// regression model (Koh & Liang, ICML 2017). The score of training point i
// approximates the change in total validation loss caused by REMOVING i:
//
//	score_i ≈ L_val(θ_{-i}) − L_val(θ̂) ≈ (1/n) · g_val · H⁻¹ g_i
//
// where g_i is the gradient of the regularized loss at point i, g_val is
// the validation-loss gradient and H the training Hessian at the optimum.
// Positive scores mean removal hurts (the point is valuable); harmful
// points — e.g. mislabeled examples — receive negative scores, so the
// standard bottom-k cleaning convention applies.
func Influence(train, valid *ml.Dataset, cfg InfluenceConfig) (Scores, error) {
	if train.Len() == 0 || valid.Len() == 0 {
		return nil, fmt.Errorf("importance: influence needs non-empty train (%d) and valid (%d)", train.Len(), valid.Len())
	}
	l2 := cfg.L2
	if l2 <= 0 {
		l2 = 1e-3
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 300
	}
	sp := obs.StartSpan("importance.influence")
	sp.SetInt("train", int64(train.Len())).SetInt("valid", int64(valid.Len())).SetInt("dim", int64(train.Dim()))
	defer sp.End()
	model := &ml.LogisticRegression{LR: 0.5, Epochs: epochs, L2: l2}
	if err := model.Fit(train); err != nil {
		return nil, err
	}
	// augmented parameter vector [w; b]; dim d+1
	d := train.Dim()
	dim := d + 1
	theta := append(append([]float64(nil), model.Weights()...), model.Intercept())

	aug := func(x []float64) []float64 { return append(append([]float64(nil), x...), 1) }
	sig := func(x []float64) float64 {
		z := 0.0
		for j := 0; j < d; j++ {
			z += theta[j] * x[j]
		}
		return ml.Sigmoid(z + theta[d])
	}

	// Hessian H = (1/n) Σ p(1-p) x̃ x̃ᵀ + λ I (damped)
	n := train.Len()
	h := linalg.NewMatrix(dim, dim)
	for i := 0; i < n; i++ {
		x := aug(train.Row(i))
		p := sig(train.Row(i))
		w := p * (1 - p) / float64(n)
		for a := 0; a < dim; a++ {
			if x[a] == 0 {
				continue
			}
			linalg.AXPY(w*x[a], x, h.Row(a))
		}
	}
	h.AddScaledIdentity(l2)

	// validation gradient g_val = Σ_v (p_v − y_v) x̃_v (total, not mean —
	// scores then approximate the change in total validation loss)
	gval := make([]float64, dim)
	for v := 0; v < valid.Len(); v++ {
		p := sig(valid.Row(v))
		linalg.AXPY(p-float64(valid.Y[v]), aug(valid.Row(v)), gval)
	}
	// s = H⁻¹ g_val (one solve, then scores are dot products)
	s, err := linalg.SolveSPD(h, gval)
	if err != nil {
		s = linalg.ConjugateGradient(h, gval, 1e-10, 500)
	}
	scores := make(Scores, n)
	for i := 0; i < n; i++ {
		x := aug(train.Row(i))
		p := sig(train.Row(i))
		gi := make([]float64, dim)
		linalg.AXPY(p-float64(train.Y[i]), x, gi)
		// per-point ridge contribution: λ θ (weights only) / n
		for j := 0; j < d; j++ {
			gi[j] += l2 * theta[j] / float64(n)
		}
		scores[i] = linalg.Dot(s, gi) / float64(n)
	}
	return scores, nil
}
