package importance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
	"nde/internal/ml"
)

// blobs builds a two-cluster binary dataset.
func blobs(n int, sep float64, seed int64) *ml.Dataset {
	r := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		sign := float64(2*c - 1)
		x.Set(i, 0, sign*sep+r.NormFloat64())
		x.Set(i, 1, sign*sep+r.NormFloat64())
	}
	d, _ := ml.NewDataset(x, y)
	return d
}

// flipLabels flips the labels of a deterministic random fraction and
// returns the corrupted copy and the flipped index set.
func flipLabels(d *ml.Dataset, frac float64, seed int64) (*ml.Dataset, map[int]bool) {
	r := rand.New(rand.NewSource(seed))
	out := d.Clone()
	flipped := make(map[int]bool)
	k := int(float64(d.Len()) * frac)
	for _, i := range r.Perm(d.Len())[:k] {
		out.Y[i] = 1 - out.Y[i]
		flipped[i] = true
	}
	return out, flipped
}

// additiveUtility is a cheap synthetic utility U(S) = Σ_{i∈S} w_i used for
// validating estimators: its exact Shapley and Banzhaf values are w_i.
func additiveUtility(w []float64) Utility {
	return func(subset []int) (float64, error) {
		s := 0.0
		for _, i := range subset {
			s += w[i]
		}
		return s, nil
	}
}

func TestScoresRanking(t *testing.T) {
	s := Scores{3, -1, 2, 0}
	rank := s.RankAscending()
	if rank[0] != 1 || rank[3] != 0 {
		t.Errorf("rank = %v", rank)
	}
	if got := s.BottomK(2); got[0] != 1 || got[1] != 3 {
		t.Errorf("BottomK = %v", got)
	}
	if got := s.TopK(2); got[0] != 0 || got[1] != 2 {
		t.Errorf("TopK = %v", got)
	}
	if got := s.BottomK(99); len(got) != 4 {
		t.Error("BottomK should clamp")
	}
	if s.Sum() != 4 {
		t.Errorf("Sum = %v", s.Sum())
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	s := Scores{-5, 10, -3, 8}
	corrupted := map[int]bool{0: true, 2: true}
	if got := s.PrecisionAtK(corrupted, 2); got != 1 {
		t.Errorf("P@2 = %v", got)
	}
	if got := s.RecallAtK(corrupted, 2); got != 1 {
		t.Errorf("R@2 = %v", got)
	}
	if got := s.PrecisionAtK(corrupted, 4); got != 0.5 {
		t.Errorf("P@4 = %v", got)
	}
	if s.PrecisionAtK(corrupted, 0) != 0 || s.RecallAtK(nil, 2) != 0 {
		t.Error("degenerate cases should be 0")
	}
}

func TestLeaveOneOutAdditive(t *testing.T) {
	w := []float64{1, -2, 3}
	scores, err := LeaveOneOut(3, additiveUtility(w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(scores[i]-w[i]) > 1e-12 {
			t.Errorf("LOO[%d] = %v, want %v", i, scores[i], w[i])
		}
	}
	if _, err := LeaveOneOut(0, additiveUtility(nil)); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestExactShapleyAdditive(t *testing.T) {
	w := []float64{0.5, -1, 2, 0}
	scores, err := ExactShapley(4, additiveUtility(w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(scores[i]-w[i]) > 1e-12 {
			t.Errorf("φ[%d] = %v, want %v", i, scores[i], w[i])
		}
	}
}

func TestExactShapleyMajorityGame(t *testing.T) {
	// 3-player majority game: U = 1 iff |S| >= 2. By symmetry φ_i = 1/3.
	u := func(subset []int) (float64, error) {
		if len(subset) >= 2 {
			return 1, nil
		}
		return 0, nil
	}
	scores, err := ExactShapley(3, u)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.Abs(s-1.0/3) > 1e-12 {
			t.Errorf("φ[%d] = %v, want 1/3", i, s)
		}
	}
	// Banzhaf of the majority game: each player is pivotal in 2 of 4 subsets.
	bz, err := ExactBanzhaf(3, u)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range bz {
		if math.Abs(s-0.5) > 1e-12 {
			t.Errorf("banzhaf[%d] = %v, want 0.5", i, s)
		}
	}
}

func TestExactShapleyBounds(t *testing.T) {
	if _, err := ExactShapley(0, additiveUtility(nil)); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := ExactShapley(25, additiveUtility(make([]float64, 25))); err == nil {
		t.Error("expected error for n>24")
	}
}

// Property: Shapley axioms hold for exact enumeration over random utilities
// on small n — efficiency (Σφ = U(D)−U(∅)), symmetry (equal-treatment of
// interchangeable players is approximated by checking duplicated weights in
// additive games), and the null-player axiom.
func TestQuickShapleyAxioms(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		// random subset-utility table defining an arbitrary game with U(∅)=u0
		utils := make([]float64, 1<<n)
		for i := range utils {
			utils[i] = r.NormFloat64()
		}
		u := func(subset []int) (float64, error) {
			mask := 0
			for _, i := range subset {
				mask |= 1 << i
			}
			return utils[mask], nil
		}
		scores, err := ExactShapley(n, u)
		if err != nil {
			return false
		}
		// efficiency
		if math.Abs(scores.Sum()-(utils[1<<n-1]-utils[0])) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickShapleyNullPlayer(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		nullPlayer := r.Intn(n)
		// additive game where the null player's weight is zero
		w := make([]float64, n)
		for i := range w {
			if i != nullPlayer {
				w[i] = r.NormFloat64()
			}
		}
		scores, err := ExactShapley(n, additiveUtility(w))
		if err != nil {
			return false
		}
		return math.Abs(scores[nullPlayer]) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMCShapleyConvergesToExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 6
	utils := make([]float64, 1<<n)
	for i := range utils {
		utils[i] = r.Float64()
	}
	u := func(subset []int) (float64, error) {
		mask := 0
		for _, i := range subset {
			mask |= 1 << i
		}
		return utils[mask], nil
	}
	exact, err := ExactShapley(n, u)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MCShapley(n, u, MCShapleyConfig{Permutations: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-mc[i]) > 0.05 {
			t.Errorf("MC φ[%d] = %v, exact %v", i, mc[i], exact[i])
		}
	}
}

func TestMCShapleyEfficiencyInExpectation(t *testing.T) {
	// every permutation telescopes, so the estimator is exactly efficient
	w := []float64{1, 2, -0.5, 0.25}
	scores, err := MCShapley(4, additiveUtility(w), MCShapleyConfig{Permutations: 17, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scores.Sum()-2.75) > 1e-9 {
		t.Errorf("Σφ = %v, want 2.75", scores.Sum())
	}
}

func TestTMCShapleyTruncationStillAccurateForAdditive(t *testing.T) {
	// with additive utility truncation only fires at the exact full value
	w := []float64{1, 1, 1, 1}
	scores, err := MCShapley(4, additiveUtility(w), MCShapleyConfig{Permutations: 50, Seed: 2, Truncation: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("TMC φ[%d] = %v", i, s)
		}
	}
}

func TestTMCTruncationReducesEvaluations(t *testing.T) {
	evals := 0
	// utility saturates after 2 of 10 points: truncation should kick in
	u := func(subset []int) (float64, error) {
		evals++
		if len(subset) >= 2 {
			return 1, nil
		}
		return float64(len(subset)) / 2, nil
	}
	if _, err := MCShapley(10, u, MCShapleyConfig{Permutations: 20, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	full := evals
	evals = 0
	if _, err := MCShapley(10, u, MCShapleyConfig{Permutations: 20, Seed: 1, Truncation: 0.01}); err != nil {
		t.Fatal(err)
	}
	if evals >= full {
		t.Errorf("truncated evals %d >= full evals %d", evals, full)
	}
}

func TestMCBanzhafConvergesToExact(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 5
	utils := make([]float64, 1<<n)
	for i := range utils {
		utils[i] = r.Float64()
	}
	u := func(subset []int) (float64, error) {
		mask := 0
		for _, i := range subset {
			mask |= 1 << i
		}
		return utils[mask], nil
	}
	exact, err := ExactBanzhaf(n, u)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MCBanzhaf(n, u, SemivalueConfig{SamplesPerPoint: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-mc[i]) > 0.05 {
			t.Errorf("banzhaf[%d] = %v, exact %v", i, mc[i], exact[i])
		}
	}
}

func TestBetaShapleyUniformMatchesShapley(t *testing.T) {
	// Beta(1,1)-Shapley IS the Shapley value
	r := rand.New(rand.NewSource(21))
	n := 5
	utils := make([]float64, 1<<n)
	for i := range utils {
		utils[i] = r.Float64()
	}
	u := func(subset []int) (float64, error) {
		mask := 0
		for _, i := range subset {
			mask |= 1 << i
		}
		return utils[mask], nil
	}
	exact, err := ExactShapley(n, u)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := MCBetaShapley(n, u, 1, 1, SemivalueConfig{SamplesPerPoint: 4000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-beta[i]) > 0.06 {
			t.Errorf("beta(1,1)[%d] = %v, shapley %v", i, beta[i], exact[i])
		}
	}
}

func TestBetaShapleyRejectsBadParams(t *testing.T) {
	if _, err := MCBetaShapley(3, additiveUtility([]float64{1, 1, 1}), 0, 1, SemivalueConfig{}); err == nil {
		t.Error("expected error for alpha=0")
	}
}

func TestAdditiveSemivaluesEqualWeights(t *testing.T) {
	// for additive utilities every semivalue equals the weight vector
	w := []float64{2, -1, 0.5}
	for name, run := range map[string]func() (Scores, error){
		"banzhaf": func() (Scores, error) {
			return MCBanzhaf(3, additiveUtility(w), SemivalueConfig{SamplesPerPoint: 200, Seed: 1})
		},
		"beta(4,1)": func() (Scores, error) {
			return MCBetaShapley(3, additiveUtility(w), 1, 4, SemivalueConfig{SamplesPerPoint: 200, Seed: 1})
		},
	} {
		scores, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range w {
			if math.Abs(scores[i]-w[i]) > 1e-9 {
				t.Errorf("%s[%d] = %v, want %v", name, i, scores[i], w[i])
			}
		}
	}
}
