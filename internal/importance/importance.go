// Package importance implements the data-importance methods surveyed in the
// tutorial's §2.1 — the tools for *identifying* data errors by quantifying
// how much each training example contributes to downstream model quality:
//
//   - leave-one-out (LOO) scores;
//   - Monte-Carlo permutation Shapley values, with TMC truncation
//     (Ghorbani & Zou, "Data Shapley");
//   - exact Shapley/Banzhaf values by subset enumeration (for small n and
//     for validating the estimators);
//   - the efficient closed-form kNN-Shapley (Jia et al.);
//   - Banzhaf values and Beta(α,β)-Shapley semivalues (Wang & Jia;
//     Kwon & Zou);
//   - influence functions for convex models (Koh & Liang);
//   - uncertainty-based label-noise scores (confident-learning and
//     margin-style statistics);
//   - Datascope-style Shapley over provenance-tracked pipelines; and
//   - Gopher-style subgroup explanations for fairness violations.
//
// All scores follow one convention: larger = more valuable; data errors
// surface at the *bottom* of the ranking.
package importance

import (
	"fmt"
	"sort"

	"nde/internal/ml"
)

// Utility evaluates the downstream value U(S) of training on the subset S
// of training-example indices (e.g. validation accuracy after retraining).
// Implementations must be deterministic for reproducible scores.
type Utility func(subset []int) (float64, error)

// AccuracyUtility returns the canonical utility: retrain a fresh model from
// newModel on the given subset of train and measure accuracy on valid. The
// empty subset falls back to predicting class 0 (see ml.EvaluateAccuracy).
func AccuracyUtility(newModel func() ml.Classifier, train, valid *ml.Dataset) Utility {
	return func(subset []int) (float64, error) {
		return ml.EvaluateAccuracy(newModel(), train.Subset(subset), valid)
	}
}

// Scores holds one importance value per training example.
type Scores []float64

// RankAscending returns example indices from least to most valuable —
// the cleaning priority order (most suspicious first).
func (s Scores) RankAscending() []int {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s[idx[a]] < s[idx[b]] })
	return idx
}

// BottomK returns the k indices with the lowest scores (k clamped to len).
func (s Scores) BottomK(k int) []int {
	r := s.RankAscending()
	if k > len(r) {
		k = len(r)
	}
	return r[:k]
}

// TopK returns the k indices with the highest scores (k clamped to len).
func (s Scores) TopK(k int) []int {
	r := s.RankAscending()
	if k > len(r) {
		k = len(r)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = r[len(r)-1-i]
	}
	return out
}

// Sum returns the total of all scores (used to verify the Shapley
// efficiency axiom Σφ = U(D) − U(∅)).
func (s Scores) Sum() float64 {
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t
}

// PrecisionAtK measures detection quality: the fraction of the bottom-k
// ranked examples that are truly corrupted.
func (s Scores) PrecisionAtK(corrupted map[int]bool, k int) float64 {
	if k == 0 {
		return 0
	}
	hits := 0
	bottom := s.BottomK(k)
	for _, i := range bottom {
		if corrupted[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(bottom))
}

// RecallAtK measures the fraction of all corrupted examples found within
// the bottom-k ranked examples.
func (s Scores) RecallAtK(corrupted map[int]bool, k int) float64 {
	if len(corrupted) == 0 {
		return 0
	}
	hits := 0
	for _, i := range s.BottomK(k) {
		if corrupted[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(corrupted))
}

// LeaveOneOut computes the LOO importance of every example:
// φ_i = U(D) − U(D \ {i}). It needs n+1 utility evaluations.
func LeaveOneOut(n int, u Utility) (Scores, error) {
	if n <= 0 {
		return nil, fmt.Errorf("importance: need at least one example, got %d", n)
	}
	full := make([]int, n)
	for i := range full {
		full[i] = i
	}
	uFull, err := u(full)
	if err != nil {
		return nil, err
	}
	scores := make(Scores, n)
	rest := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		rest = rest[:0]
		for j := 0; j < n; j++ {
			if j != i {
				rest = append(rest, j)
			}
		}
		uRest, err := u(rest)
		if err != nil {
			return nil, err
		}
		scores[i] = uFull - uRest
	}
	return scores, nil
}
