package importance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
	"nde/internal/ml"
)

func randomDataset(r *rand.Rand, n, dim, classes int) *ml.Dataset {
	x := linalg.NewMatrix(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		y[i] = r.Intn(classes)
	}
	d, _ := ml.NewDataset(x, y)
	return d
}

// The decisive correctness check: the closed-form kNN-Shapley must equal the
// exact Shapley value of the kNN utility, computed by full enumeration.
func TestKNNShapleyMatchesExactEnumeration(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		r := rand.New(rand.NewSource(int64(100 + k)))
		train := randomDataset(r, 8, 2, 2)
		valid := randomDataset(r, 4, 2, 2)
		closed, err := KNNShapley(k, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactShapley(train.Len(), KNNUtility(k, train, valid))
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			if math.Abs(closed[i]-exact[i]) > 1e-9 {
				t.Errorf("k=%d: closed[%d]=%v exact=%v", k, i, closed[i], exact[i])
			}
		}
	}
}

// Property: the same equivalence holds for random shapes, k values and
// class counts.
func TestQuickKNNShapleyEqualsExact(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		k := 1 + r.Intn(3)
		train := randomDataset(r, n, 1+r.Intn(2), 2+r.Intn(2))
		valid := randomDataset(r, 1+r.Intn(3), train.Dim(), train.NumClasses())
		closed, err := KNNShapley(k, train, valid)
		if err != nil {
			return false
		}
		exact, err := ExactShapley(n, KNNUtility(k, train, valid))
		if err != nil {
			return false
		}
		for i := range exact {
			if math.Abs(closed[i]-exact[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: kNN-Shapley efficiency — scores sum to U(D) − U(∅) = U(D).
func TestQuickKNNShapleyEfficiency(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(20)
		k := 1 + r.Intn(4)
		train := randomDataset(r, n, 2, 2)
		valid := randomDataset(r, 1+r.Intn(5), 2, 2)
		scores, err := KNNShapley(k, train, valid)
		if err != nil {
			return false
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		uFull, err := KNNUtility(k, train, valid)(all)
		if err != nil {
			return false
		}
		return math.Abs(scores.Sum()-uFull) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKNNShapleyErrors(t *testing.T) {
	d := blobs(10, 1, 1)
	if _, err := KNNShapley(0, d, d); err == nil {
		t.Error("expected error for k=0")
	}
	empty := &ml.Dataset{X: linalg.NewMatrix(0, 2), Y: nil}
	if _, err := KNNShapley(1, empty, d); err == nil {
		t.Error("expected error for empty train")
	}
	if _, err := KNNShapley(1, d, empty); err == nil {
		t.Error("expected error for empty valid")
	}
	other := blobs(10, 1, 1)
	mismatch := &ml.Dataset{X: linalg.NewMatrix(10, 3), Y: other.Y}
	if _, err := KNNShapley(1, d, mismatch); err == nil {
		t.Error("expected error for dim mismatch")
	}
}

func TestKNNShapleyDetectsLabelErrors(t *testing.T) {
	clean := blobs(120, 2.5, 7)
	valid := blobs(60, 2.5, 8)
	dirty, flipped := flipLabels(clean, 0.1, 9)
	scores, err := KNNShapley(5, dirty, valid)
	if err != nil {
		t.Fatal(err)
	}
	k := len(flipped)
	prec := scores.PrecisionAtK(flipped, k)
	if prec < 0.7 {
		t.Errorf("precision@%d = %v, want >= 0.7", k, prec)
	}
	// flipped points should score much lower on average than clean points
	var mFlip, mClean float64
	for i, s := range scores {
		if flipped[i] {
			mFlip += s / float64(len(flipped))
		} else {
			mClean += s / float64(len(scores)-len(flipped))
		}
	}
	if mFlip >= mClean {
		t.Errorf("mean score flipped %v >= clean %v", mFlip, mClean)
	}
}
