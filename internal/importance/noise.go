package importance

import (
	"fmt"

	"nde/internal/ml"
)

// NoiseConfig controls the uncertainty-based label-noise scores.
type NoiseConfig struct {
	// Folds for out-of-sample probability estimation (default 5).
	Folds int
	// Seed for the fold assignment.
	Seed int64
	// NewModel builds the probabilistic model used to estimate label
	// probabilities (default: logistic regression).
	NewModel func() ml.ProbabilisticClassifier
}

func (cfg NoiseConfig) withDefaults(n int) NoiseConfig {
	if cfg.Folds < 2 {
		cfg.Folds = 5
	}
	if cfg.Folds > n {
		cfg.Folds = n
	}
	if cfg.NewModel == nil {
		cfg.NewModel = func() ml.ProbabilisticClassifier { return ml.NewLogisticRegression() }
	}
	return cfg
}

// outOfFoldProbs estimates P(class | x_i) for every training point using a
// model that never saw that point (cross-fitting), the core construction of
// confident learning (Northcutt et al., JAIR 2021).
func outOfFoldProbs(train *ml.Dataset, cfg NoiseConfig) ([][]float64, error) {
	n := train.Len()
	cfg = cfg.withDefaults(n)
	trains, valids, err := ml.KFold(n, cfg.Folds, cfg.Seed)
	if err != nil {
		return nil, err
	}
	probs := make([][]float64, n)
	for f := range trains {
		m := cfg.NewModel()
		if err := m.Fit(train.Subset(trains[f])); err != nil {
			return nil, fmt.Errorf("importance: noise-score fold %d: %w", f, err)
		}
		for _, i := range valids[f] {
			probs[i] = m.Proba(train.Row(i))
		}
	}
	return probs, nil
}

// SelfConfidence scores each training example by the out-of-fold predicted
// probability of its *given* label. Mislabeled examples receive low
// self-confidence, so the bottom-k convention applies directly.
func SelfConfidence(train *ml.Dataset, cfg NoiseConfig) (Scores, error) {
	probs, err := outOfFoldProbs(train, cfg)
	if err != nil {
		return nil, err
	}
	scores := make(Scores, train.Len())
	for i, p := range probs {
		scores[i] = p[train.Y[i]]
	}
	return scores, nil
}

// MarginScore scores each example by P(given label) − max P(other label)
// from out-of-fold probabilities — an AUM-style margin statistic (Pleiss et
// al., NeurIPS 2020). Strongly negative margins indicate likely label
// errors.
func MarginScore(train *ml.Dataset, cfg NoiseConfig) (Scores, error) {
	probs, err := outOfFoldProbs(train, cfg)
	if err != nil {
		return nil, err
	}
	scores := make(Scores, train.Len())
	for i, p := range probs {
		given := p[train.Y[i]]
		other := 0.0
		for c, v := range p {
			if c != train.Y[i] && v > other {
				other = v
			}
		}
		scores[i] = given - other
	}
	return scores, nil
}

// ConfidentLearningFlags returns the indices the confident-joint rule flags
// as label errors: example i is flagged when the out-of-fold probability of
// some other class c exceeds that class's confidence threshold (the mean
// self-confidence of examples labeled c) while P(c|x_i) > P(y_i|x_i).
func ConfidentLearningFlags(train *ml.Dataset, cfg NoiseConfig) ([]int, error) {
	probs, err := outOfFoldProbs(train, cfg)
	if err != nil {
		return nil, err
	}
	nc := train.NumClasses()
	thresh := make([]float64, nc)
	counts := make([]int, nc)
	for i, p := range probs {
		thresh[train.Y[i]] += p[train.Y[i]]
		counts[train.Y[i]]++
	}
	for c := range thresh {
		if counts[c] > 0 {
			thresh[c] /= float64(counts[c])
		} else {
			thresh[c] = 1.01 // unreachable: class absent from data
		}
	}
	var flagged []int
	for i, p := range probs {
		y := train.Y[i]
		for c := 0; c < nc; c++ {
			if c == y {
				continue
			}
			if p[c] >= thresh[c] && p[c] > p[y] {
				flagged = append(flagged, i)
				break
			}
		}
	}
	return flagged, nil
}
