package importance

import (
	"fmt"
	"sort"

	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/obs"
	"nde/internal/par"
)

// KNNShapleyDelta recomputes kNN-Shapley after removing training rows,
// reusing the shared neighbor index for the ORIGINAL training set instead
// of rebuilding from scratch: the removed-set index is derived via
// ml.NeighborIndex.RemoveRows (tombstone + O(n) merge walk over cached
// distances — no fresh kernel, no argsort) and registered in the cache
// under the reduced train's own fingerprint so follow-up calls, and
// further removals chained on top, hit it directly.
//
// It returns the reduced scores (one per surviving row, in surviving
// order), the surviving original row ids, and the derived index.
//
// Determinism: the result is Float64bits-identical to
// KNNShapley(k, train.Subset(keep), valid) — the full-rebuild oracle —
// for every worker count. That identity constrains the implementation:
// the closed-form recurrence is re-evaluated in full per validation point
// rather than patched from the highest changed neighbor rank downward,
// because the algebraic prefix-offset shortcut (ranks below the first
// removed neighbor change by a constant) reassociates float additions and
// drifts from the oracle by ulps. The recurrence is O(n) with tiny
// constants; the delta win is skipping the O(n·d) distance kernel and the
// O(n log n) per-query argsort, which dominate the rebuild (DESIGN §11).
//
// Labels are read from the caller's train argument, never from a cached
// index: cached geometry may be shared across label revisions.
func KNNShapleyDelta(k int, train, valid *ml.Dataset, remove []int, workers int) (Scores, []int, *ml.NeighborIndex, error) {
	if err := validateKNNShapley(k, train, valid); err != nil {
		return nil, nil, nil, err
	}
	n := train.Len()
	for _, r := range remove {
		if r < 0 || r >= n {
			return nil, nil, nil, fmt.Errorf("importance: delta removal row %d outside [0,%d): %w", r, n, nderr.ErrDegenerateInput)
		}
	}
	uniq := append([]int(nil), remove...)
	sort.Ints(uniq)
	uniq = dedupSortedInts(uniq)
	if len(uniq) == n {
		return nil, nil, nil, fmt.Errorf("importance: delta removal would empty the training set: %w", nderr.ErrEmptyInput)
	}

	sp := obs.StartSpan("importance.knnshapley_delta")
	sp.SetInt("k", int64(k)).SetInt("train", int64(n)).
		SetInt("valid", int64(valid.Len())).SetInt("removed", int64(len(uniq)))
	defer sp.End()

	parent, err := sharedNeighborIndex(train, valid, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	keep := make([]int, 0, n-len(uniq))
	next := 0
	for i := 0; i < n; i++ {
		if next < len(uniq) && uniq[next] == i {
			next++
			continue
		}
		keep = append(keep, i)
	}
	child := parent
	if len(uniq) > 0 {
		child, err = parent.RemoveRows(uniq)
		if err != nil {
			return nil, nil, nil, err
		}
		registerDerivedIndex(child, valid.X.Fingerprint())
	}
	// survivor labels from the CALLER's dataset (stale-label cache contract)
	reducedY := make([]int, len(keep))
	for o, i := range keep {
		reducedY[o] = train.Y[i]
	}

	scores, err := knnShapleyOverIndex(k, child, reducedY, valid, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	return scores, keep, child, nil
}

// knnShapleyOverIndex runs the closed form over an index with explicit
// survivor labels, using the per-validation-point contribution layout and
// fixed reduction order of KNNShapleyParallelStats — so the result is
// bit-identical across worker counts and to the serial oracle.
func knnShapleyOverIndex(k int, ix *ml.NeighborIndex, trainY []int, valid *ml.Dataset, workers int) (Scores, error) {
	n := ix.Train.Len()
	if len(trainY) != n {
		return nil, nderr.Mismatch("importance: delta labels", n, len(trainY))
	}
	resolved := par.Workers(workers, valid.Len())
	contribs := make([][]float64, valid.Len())
	scratch := make([][]float64, resolved)
	par.For("importance.knnshapley_delta", workers, valid.Len(), func(w, v int) {
		s := scratch[w]
		if s == nil {
			s = make([]float64, n)
			scratch[w] = s
		}
		order := ix.Order(v)
		knnShapleyContrib(k, trainY, valid.Y[v], order, s)
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			c[order[j]] = s[j]
		}
		contribs[v] = c
	})
	scores := make(Scores, n)
	for v := 0; v < valid.Len(); v++ { // fixed reduction order
		for i, c := range contribs[v] {
			scores[i] += c
		}
	}
	inv := 1 / float64(valid.Len())
	for i := range scores {
		scores[i] *= inv
	}
	return scores, nil
}

// dedupSortedInts removes adjacent duplicates in place.
func dedupSortedInts(a []int) []int {
	out := a[:0]
	for i, v := range a {
		if i == 0 || a[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
