package importance

import (
	"math"
	"math/rand"
	"testing"

	"nde/internal/encode"
	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/pipeline"
)

// mapPipelineFixture builds a pure map pipeline (no joins): each source
// tuple produces exactly one output row, so Datascope's provenance
// aggregation is *exact* and must equal the exact Shapley value over source
// tuples of the kNN utility.
func mapPipelineFixture(t *testing.T, n int, seed int64) (*pipeline.Pipeline, *pipeline.Node, *pipeline.Featurized, *ml.Dataset) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]string, n)
	for i := range xs {
		c := i % 2
		xs[i] = float64(2*c-1)*2 + r.NormFloat64()
		ys[i] = []string{"neg", "pos"}[c]
	}
	src := frame.MustNew(
		frame.NewFloatSeries("x", xs, nil),
		frame.NewStringSeries("y", ys, nil),
	)
	p := pipeline.New()
	node := p.Source("train", src)
	res, err := p.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	ft, err := pipeline.Featurize(res, ct, "y", "")
	if err != nil {
		t.Fatal(err)
	}
	// validation set in the same 1-D feature space
	vx := linalg.NewMatrix(6, 1)
	vy := make([]int, 6)
	for i := 0; i < 6; i++ {
		c := i % 2
		vy[i] = c
		scaled := (float64(2*c-1)*2 - 0) / 2 // roughly in scaled units
		vx.Set(i, 0, scaled+0.1*r.NormFloat64())
	}
	valid, _ := ml.NewDataset(vx, vy)
	return p, node, ft, valid
}

func TestDatascopeExactOnMapPipeline(t *testing.T) {
	_, _, ft, valid := mapPipelineFixture(t, 8, 71)
	scores, err := Datascope(ft, valid, "train", 8, DatascopeConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// map pipeline: provenance groups are singletons; Datascope must equal
	// the exact Shapley values of the kNN utility over the featurized rows
	exact, err := ExactShapley(8, KNNUtility(1, ft.Data, valid))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(scores[i]-exact[i]) > 1e-9 {
			t.Errorf("datascope[%d] = %v, exact %v", i, scores[i], exact[i])
		}
	}
}

func TestDatascopeAggModes(t *testing.T) {
	// join pipeline: one jobs tuple supports two outputs; sum vs mean differ
	train := frame.MustNew(
		frame.NewIntSeries("job_id", []int64{10, 10, 20}, nil),
		frame.NewFloatSeries("x", []float64{-2, -1.8, 2}, nil),
		frame.NewStringSeries("y", []string{"neg", "neg", "pos"}, nil),
	)
	jobs := frame.MustNew(
		frame.NewIntSeries("job_id", []int64{10, 20}, nil),
		frame.NewStringSeries("sector", []string{"a", "b"}, nil),
	)
	p := pipeline.New()
	j := p.Join(p.Source("train", train), p.Source("jobs", jobs), "job_id", frame.InnerJoin)
	res, err := p.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	ft, err := pipeline.Featurize(res, ct, "y", "")
	if err != nil {
		t.Fatal(err)
	}
	vx := linalg.FromRows([][]float64{{-1}, {1}})
	valid, _ := ml.NewDataset(vx, []int{0, 1})
	sum, err := Datascope(ft, valid, "jobs", 2, DatascopeConfig{K: 1, Aggregate: AggSum})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := Datascope(ft, valid, "jobs", 2, DatascopeConfig{K: 1, Aggregate: AggMean})
	if err != nil {
		t.Fatal(err)
	}
	// jobs[0] supports 2 outputs: sum = 2 * mean
	if math.Abs(sum[0]-2*mean[0]) > 1e-9 {
		t.Errorf("sum[0]=%v mean[0]=%v", sum[0], mean[0])
	}
	// jobs[1] supports 1 output: sum = mean
	if math.Abs(sum[1]-mean[1]) > 1e-9 {
		t.Errorf("sum[1]=%v mean[1]=%v", sum[1], mean[1])
	}
}

func TestDatascopeErrors(t *testing.T) {
	_, _, ft, valid := mapPipelineFixture(t, 6, 72)
	if _, err := Datascope(ft, valid, "train", 0, DatascopeConfig{}); err == nil {
		t.Error("expected error for tableRows=0")
	}
}

func TestPipelineUtilityReplays(t *testing.T) {
	p, node, ft, valid := mapPipelineFixture(t, 10, 73)
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	feat := func(res *pipeline.Result) (*ml.Dataset, error) {
		f, err := pipeline.Featurize(res, ct, "y", "")
		if err != nil {
			return nil, err
		}
		return f.Data, nil
	}
	u := PipelineUtility(p, node, feat, func() ml.Classifier { return ml.NewKNN(1) }, valid, "train")
	full := make([]int, 10)
	for i := range full {
		full[i] = i
	}
	accFull, err := u(full)
	if err != nil {
		t.Fatal(err)
	}
	if accFull < 0.8 {
		t.Errorf("full accuracy = %v", accFull)
	}
	accEmpty, err := u(nil)
	if err != nil {
		t.Fatal(err)
	}
	if accEmpty >= accFull {
		t.Errorf("empty accuracy %v >= full %v", accEmpty, accFull)
	}
	_ = ft
}

// Datascope vs. exact pipeline Shapley on a map pipeline with label noise:
// the rankings should agree on who is most harmful.
func TestDatascopeFindsInjectedErrorOnPipeline(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	n := 20
	xs := make([]float64, n)
	ys := make([]string, n)
	for i := range xs {
		c := i % 2
		xs[i] = float64(2*c-1)*2.5 + 0.5*r.NormFloat64()
		ys[i] = []string{"neg", "pos"}[c]
	}
	ys[4] = "pos" // inject one label error (true class is neg)
	src := frame.MustNew(
		frame.NewFloatSeries("x", xs, nil),
		frame.NewStringSeries("y", ys, nil),
	)
	p := pipeline.New()
	node := p.Source("train", src)
	res, err := p.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	ft, err := pipeline.Featurize(res, ct, "y", "")
	if err != nil {
		t.Fatal(err)
	}
	vx := linalg.NewMatrix(10, 1)
	vy := make([]int, 10)
	for i := 0; i < 10; i++ {
		c := i % 2
		vy[i] = c
		vx.Set(i, 0, float64(2*c-1)+0.2*r.NormFloat64())
	}
	valid, _ := ml.NewDataset(vx, vy)
	scores, err := Datascope(ft, valid, "train", n, DatascopeConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if worst := scores.BottomK(1)[0]; worst != 4 {
		t.Errorf("most harmful tuple = %d, want 4 (scores=%v)", worst, scores)
	}
}

func TestGroupShapleyExactOnMapPipeline(t *testing.T) {
	// map pipeline: every group is a singleton, so group Shapley must equal
	// the exact per-row Shapley of the kNN utility
	_, _, ft, valid := mapPipelineFixture(t, 8, 801)
	grouped, err := GroupShapley(ft, valid, "train", 8, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactShapley(8, KNNUtility(1, ft.Data, valid))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(grouped[i]-exact[i]) > 1e-9 {
			t.Errorf("grouped[%d] = %v, exact %v", i, grouped[i], exact[i])
		}
	}
}

func TestGroupShapleyForkPipeline(t *testing.T) {
	// fork pipeline: concat duplicates every source row into two outputs,
	// so each group has two outputs per tuple; efficiency must hold over
	// the grouped game
	r := rand.New(rand.NewSource(802))
	n := 6
	xs := make([]float64, n)
	ys := make([]string, n)
	for i := range xs {
		c := i % 2
		xs[i] = float64(2*c-1)*2 + r.NormFloat64()
		ys[i] = []string{"neg", "pos"}[c]
	}
	src := frame.MustNew(
		frame.NewFloatSeries("x", xs, nil),
		frame.NewStringSeries("y", ys, nil),
	)
	p := pipeline.New()
	s := p.Source("train", src)
	forked := p.Concat(s, s)
	res, err := p.Run(forked)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	ft, err := pipeline.Featurize(res, ct, "y", "")
	if err != nil {
		t.Fatal(err)
	}
	if ft.Data.Len() != 2*n {
		t.Fatalf("forked outputs = %d", ft.Data.Len())
	}
	vx := linalg.FromRows([][]float64{{-1}, {1}})
	valid, _ := ml.NewDataset(vx, []int{0, 1})
	grouped, err := GroupShapley(ft, valid, "train", n, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// efficiency over the grouped game: Σφ = U(all outputs) − U(∅)
	all := make([]int, ft.Data.Len())
	for i := range all {
		all[i] = i
	}
	uFull, err := KNNUtility(1, ft.Data, valid)(all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grouped.Sum()-uFull) > 1e-9 {
		t.Errorf("grouped efficiency: Σφ = %v, U(D) = %v", grouped.Sum(), uFull)
	}
}

func TestGroupShapleyMCFallback(t *testing.T) {
	_, _, ft, valid := mapPipelineFixture(t, 24, 803) // 24 groups > exact cap
	scores, err := GroupShapley(ft, valid, "train", 24, 1, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 24 {
		t.Fatalf("scores = %d", len(scores))
	}
	if _, err := GroupShapley(ft, valid, "train", 0, 1, 0, 1); err == nil {
		t.Error("expected error for tableRows=0")
	}
}

func TestMCBanzhafMSRMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(804))
	n := 5
	utils := make([]float64, 1<<n)
	for i := range utils {
		utils[i] = r.Float64()
	}
	u := func(subset []int) (float64, error) {
		mask := 0
		for _, i := range subset {
			mask |= 1 << i
		}
		return utils[mask], nil
	}
	exact, err := ExactBanzhaf(n, u)
	if err != nil {
		t.Fatal(err)
	}
	msr, err := MCBanzhafMSR(n, u, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-msr[i]) > 0.05 {
			t.Errorf("msr[%d] = %v, exact %v", i, msr[i], exact[i])
		}
	}
	if _, err := MCBanzhafMSR(0, u, 10, 1); err == nil {
		t.Error("expected error for n=0")
	}
}
