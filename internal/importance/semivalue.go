package importance

import (
	"fmt"
	"math"
	"math/rand"
)

// SemivalueConfig controls the Monte-Carlo semivalue estimators (Banzhaf
// and Beta Shapley). Semivalues generalize the Shapley value by changing
// the distribution over coalition sizes that marginal contributions are
// averaged under.
type SemivalueConfig struct {
	// SamplesPerPoint is the number of sampled coalitions per training
	// example (default 50).
	SamplesPerPoint int
	// Seed makes the estimate reproducible.
	Seed int64
}

// MCBanzhaf estimates the Banzhaf value (Wang & Jia, AISTATS 2023): the
// expected marginal contribution of example i to a uniformly random subset
// of the other examples (each included with probability 1/2). The uniform-
// subset weighting makes the estimator notably robust to utility noise.
func MCBanzhaf(n int, u Utility, cfg SemivalueConfig) (Scores, error) {
	return mcSemivalue(n, u, cfg, func(r *rand.Rand) float64 { return 0.5 })
}

// MCBetaShapley estimates the Beta(α,β)-Shapley semivalue (Kwon & Zou,
// AISTATS 2022). The coalition size for example i is drawn from a
// Beta-Binomial(n-1, β, α): k | t ~ Binomial(n-1, t) with t ~ Beta(β, α).
// Beta(1,1) recovers the Shapley value; larger β concentrates weight on
// small coalitions, which de-noises scores for stable utilities.
func MCBetaShapley(n int, u Utility, alpha, beta float64, cfg SemivalueConfig) (Scores, error) {
	if alpha <= 0 || beta <= 0 {
		return nil, fmt.Errorf("importance: Beta Shapley needs positive parameters, got α=%v β=%v", alpha, beta)
	}
	return mcSemivalue(n, u, cfg, func(r *rand.Rand) float64 { return betaSample(r, beta, alpha) })
}

// MCBanzhafMSR estimates Banzhaf values for ALL examples from one shared
// pool of sampled subsets — the maximum-sample-reuse estimator of Wang &
// Jia: φ_i = mean(U(S) | i ∈ S) − mean(U(S) | i ∉ S). With `samples`
// utility evaluations total (instead of 2·n·samples), it is the estimator
// of choice when utility calls dominate the cost.
func MCBanzhafMSR(n int, u Utility, samples int, seed int64) (Scores, error) {
	if n <= 0 {
		return nil, fmt.Errorf("importance: need at least one example, got %d", n)
	}
	if samples <= 0 {
		samples = 200
	}
	r := rand.New(rand.NewSource(seed))
	sumIn := make([]float64, n)
	cntIn := make([]int, n)
	sumOut := make([]float64, n)
	cntOut := make([]int, n)
	subset := make([]int, 0, n)
	member := make([]bool, n)
	for s := 0; s < samples; s++ {
		subset = subset[:0]
		for j := 0; j < n; j++ {
			member[j] = r.Intn(2) == 0
			if member[j] {
				subset = append(subset, j)
			}
		}
		v, err := u(subset)
		if err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			if member[j] {
				sumIn[j] += v
				cntIn[j]++
			} else {
				sumOut[j] += v
				cntOut[j]++
			}
		}
	}
	scores := make(Scores, n)
	for j := 0; j < n; j++ {
		if cntIn[j] == 0 || cntOut[j] == 0 {
			continue // no information for this point at this sample count
		}
		scores[j] = sumIn[j]/float64(cntIn[j]) - sumOut[j]/float64(cntOut[j])
	}
	return scores, nil
}

// MCBanzhafRows estimates Banzhaf values for a subset of the examples only,
// at proportionally reduced cost — the per-row oracle used by amortized
// estimation. The returned slice is aligned with rows.
func MCBanzhafRows(n int, u Utility, rows []int, cfg SemivalueConfig) ([]float64, error) {
	full, err := mcSemivalueRows(n, u, cfg, func(*rand.Rand) float64 { return 0.5 }, rows)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for o, i := range rows {
		out[o] = full[i]
	}
	return out, nil
}

// mcSemivalue runs the shared estimator: for each example i and each
// sample, draw an inclusion probability t from tDist, build a subset of the
// other examples by independent coin flips with probability t, and average
// the marginal contribution U(S ∪ i) − U(S).
func mcSemivalue(n int, u Utility, cfg SemivalueConfig, tDist func(*rand.Rand) float64) (Scores, error) {
	if n <= 0 {
		return nil, fmt.Errorf("importance: need at least one example, got %d", n)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return mcSemivalueRows(n, u, cfg, tDist, all)
}

func mcSemivalueRows(n int, u Utility, cfg SemivalueConfig, tDist func(*rand.Rand) float64, rows []int) (Scores, error) {
	if n <= 0 {
		return nil, fmt.Errorf("importance: need at least one example, got %d", n)
	}
	samples := cfg.SamplesPerPoint
	if samples <= 0 {
		samples = 50
	}
	for _, i := range rows {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("importance: row %d out of range [0,%d)", i, n)
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	scores := make(Scores, n)
	subset := make([]int, 0, n)
	for _, i := range rows {
		total := 0.0
		for s := 0; s < samples; s++ {
			t := tDist(r)
			subset = subset[:0]
			for j := 0; j < n; j++ {
				if j != i && r.Float64() < t {
					subset = append(subset, j)
				}
			}
			without, err := u(subset)
			if err != nil {
				return nil, err
			}
			with, err := u(append(subset, i))
			if err != nil {
				return nil, err
			}
			total += with - without
		}
		scores[i] = total / float64(samples)
	}
	return scores, nil
}

// betaSample draws from Beta(a, b) via two gamma variates.
func betaSample(r *rand.Rand, a, b float64) float64 {
	x := gammaSample(r, a)
	y := gammaSample(r, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia–Tsang, with the
// boosting trick for shape < 1.
func gammaSample(r *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gammaSample(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
