package importance

import (
	"errors"
	"sync"
	"testing"

	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/obs"
)

// The three kNN-Shapley entry points — sequential, pooled, and explicit
// index — must agree bit-for-bit.
func TestKNNShapleyAllPathsBitIdentical(t *testing.T) {
	train := blobs(90, 1.5, 901)
	valid := blobs(45, 1.5, 902)
	seq, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	par, err := KNNShapleyParallel(5, train, valid, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ml.NewNeighborIndex(train, valid, 2)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := KNNShapleyWithIndex(5, ix)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] || seq[i] != indexed[i] {
			t.Fatalf("score %d diverges: seq %v par %v indexed %v", i, seq[i], par[i], indexed[i])
		}
	}
}

// Repeated calls over the same features must hit the shared index cache —
// the distance matrix is computed exactly once — and hits/misses are
// exported as counters.
func TestSharedNeighborIndexCacheHits(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()

	train := blobs(50, 1.5, 903)
	valid := blobs(25, 1.5, 904)
	if _, err := KNNShapley(5, train, valid); err != nil {
		t.Fatal(err)
	}
	misses := obs.Default().Counter("importance_neighbor_index_misses_total").Value()
	if misses != 1 {
		t.Fatalf("misses after first call = %d, want 1", misses)
	}
	if _, err := KNNShapley(3, train, valid); err != nil { // different k, same geometry
		t.Fatal(err)
	}
	if _, err := KNNShapleyParallel(5, train, valid, 2); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("importance_neighbor_index_hits_total").Value(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := obs.Default().Counter("importance_neighbor_index_misses_total").Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// Label-only mutations (the iterative-cleaning pattern) may reuse the
// cached geometry, but the scores must still reflect the new labels; a
// feature mutation must produce a cache miss.
func TestSharedNeighborIndexLabelAndFeatureMutations(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()

	train := blobs(40, 1.5, 905)
	valid := blobs(20, 1.5, 906)
	before, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}

	// flip a label in place: same features → cache hit, different scores
	train.Y[3] = 1 - train.Y[3]
	after, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range before {
		if before[i] != after[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("label flip did not change any score (stale labels served from cache?)")
	}
	// the flipped point's own score must move: its match indicator changed
	// at every validation point
	if after[3] == before[3] {
		t.Errorf("flipped point score unchanged at %v", after[3])
	}

	// mutate a feature in place: the fingerprint must detect it
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	train.X.Set(0, 0, train.X.At(0, 0)+10)
	if _, err := KNNShapley(5, train, valid); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("importance_neighbor_index_misses_total").Value(); got != 1 {
		t.Errorf("feature mutation produced %d misses, want 1", got)
	}
}

// The cache is bounded: once more geometries than the capacity have been
// built, the store holds exactly the capacity.
func TestSharedNeighborIndexCacheEviction(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	for i := 0; i < IndexCacheCapacity()+2; i++ {
		train := blobs(20, 1.5, int64(910+i))
		valid := blobs(10, 1.5, int64(930+i))
		if _, err := KNNShapley(3, train, valid); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := indexStore.Len(), IndexCacheCapacity(); got != want {
		t.Errorf("cache holds %d entries, want %d", got, want)
	}
}

// Concurrent first callers for the SAME geometry must coalesce into one
// singleflight build: exactly one miss, everyone else hits (possibly after
// blocking on the in-flight build), and all callers get the same index.
func TestSharedNeighborIndexSingleflight(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()

	train := blobs(80, 1.5, 940)
	valid := blobs(40, 1.5, 941)
	const callers = 8
	indexes := make([]*ml.NeighborIndex, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			ix, err := sharedNeighborIndex(train, valid, 1)
			if err != nil {
				t.Error(err)
				return
			}
			indexes[c] = ix
		}(c)
	}
	close(start)
	wg.Wait()
	for c := 1; c < callers; c++ {
		if indexes[c] != indexes[0] {
			t.Fatalf("caller %d got a different index instance", c)
		}
	}
	misses := obs.Default().Counter("importance_neighbor_index_misses_total").Value()
	hits := obs.Default().Counter("importance_neighbor_index_hits_total").Value()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (build ran more than once)", misses)
	}
	if hits != callers-1 {
		t.Errorf("hits = %d, want %d", hits, callers-1)
	}
}

// Concurrent builds for DIFFERENT geometries must not serialize behind one
// global lock held across the build: under churn from many goroutines the
// cache stays within capacity + in-flight builds at every observation
// point (in-flight entries are never evicted, so concurrent distinct
// builds may transiently overflow the bound), trims back to the capacity
// once the churn settles, and every evicted slot is accounted for in the
// eviction counter.
func TestSharedNeighborIndexChurnBounded(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()

	const datasets = 10
	trains := make([]*ml.Dataset, datasets)
	valids := make([]*ml.Dataset, datasets)
	for i := range trains {
		trains[i] = blobs(30, 1.5, int64(950+i))
		valids[i] = blobs(15, 1.5, int64(970+i))
	}
	const goroutines = 6
	const iters = 8
	bound := IndexCacheCapacity() + goroutines
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				d := (g*iters + it) % datasets
				if _, err := sharedNeighborIndex(trains[d], valids[d], 1); err != nil {
					t.Error(err)
					return
				}
				if nc := indexStore.Len(); nc > bound {
					t.Errorf("cache grew past bound: %d entries, max %d + %d in flight", nc, IndexCacheCapacity(), goroutines)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if nc, want := indexStore.Len(), IndexCacheCapacity(); nc != want {
		t.Errorf("final cache size %d, want %d", nc, want)
	}
	misses := obs.Default().Counter("importance_neighbor_index_misses_total").Value()
	evictions := obs.Default().Counter("importance_neighbor_index_evictions_total").Value()
	if misses < datasets {
		t.Errorf("misses = %d, want >= %d distinct geometries", misses, datasets)
	}
	if evictions != misses-int64(IndexCacheCapacity()) {
		t.Errorf("evictions = %d, want misses-cap = %d", evictions, misses-int64(IndexCacheCapacity()))
	}
}

// REGRESSION for the in-flight eviction bug: under the old FIFO cache,
// inserting a second geometry at capacity 1 evicted the *in-flight* head
// entry, detaching the key from its running build — so any same-key caller
// arriving afterwards silently started a duplicate build of the same
// geometry. The store must never evict an in-flight entry: concurrent
// same-key callers during churn coalesce into exactly one build (one miss
// for the churned geometry plus one per distinct churn geometry, no more).
func TestSharedNeighborIndexInFlightSurvivesChurn(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	prev, err := SetIndexCacheCapacity(1)
	if err != nil {
		t.Fatal(err)
	}
	defer SetIndexCacheCapacity(prev)

	// A is deliberately large so its index build is still in flight while
	// the tiny churn geometry B is built and evicted around it.
	trainA := blobs(1500, 1.5, 2001)
	validA := blobs(700, 1.5, 2002)
	trainB := blobs(10, 1.5, 2003)
	validB := blobs(5, 1.5, 2004)

	const wave = 6
	indexes := make([]*ml.NeighborIndex, wave)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < wave; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			ix, err := sharedNeighborIndex(trainA, validA, 1)
			if err != nil {
				t.Error(err)
				return
			}
			indexes[c] = ix
		}(c)
	}
	close(start)
	// churn while A's build is (very likely) in flight: build B at
	// capacity 1, which under the old FIFO evicted in-flight A, and
	// exercise the SetIndexCacheCapacity shrink path too
	if _, err := sharedNeighborIndex(trainB, validB, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := SetIndexCacheCapacity(1); err != nil {
		t.Fatal(err)
	}
	// stragglers arrive strictly after the churn: they must join A's
	// flight or hit its cached entry, never rebuild
	stragglers := make([]*ml.NeighborIndex, 2)
	for c := range stragglers {
		ix, err := sharedNeighborIndex(trainA, validA, 1)
		if err != nil {
			t.Fatal(err)
		}
		stragglers[c] = ix
	}
	wg.Wait()
	for c := 1; c < wave; c++ {
		if indexes[c] != indexes[0] {
			t.Fatalf("caller %d got a different index instance", c)
		}
	}
	for c, ix := range stragglers {
		if ix != indexes[0] {
			t.Fatalf("straggler %d got a different index instance: geometry A was rebuilt", c)
		}
	}
	misses := obs.Default().Counter("importance_neighbor_index_misses_total").Value()
	if misses != 2 { // one for A, one for B — a third means A rebuilt
		t.Errorf("misses = %d, want 2 (A built once, B built once)", misses)
	}
}

// The FIFO capacity is configurable; the obs eviction counter must track
// exactly the configured cap, and shrinking evicts immediately.
func TestIndexCacheCapacityConfigurable(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	prev, err := SetIndexCacheCapacity(2)
	if err != nil {
		t.Fatal(err)
	}
	defer SetIndexCacheCapacity(prev)
	if got := IndexCacheCapacity(); got != 2 {
		t.Fatalf("capacity = %d, want 2", got)
	}

	const builds = 5
	for i := 0; i < builds; i++ {
		train := blobs(15, 1.5, int64(1400+i))
		valid := blobs(8, 1.5, int64(1500+i))
		if _, err := sharedNeighborIndex(train, valid, 1); err != nil {
			t.Fatal(err)
		}
	}
	evictions := obs.Default().Counter("importance_neighbor_index_evictions_total").Value()
	if want := int64(builds - 2); evictions != want {
		t.Errorf("evictions = %d, want builds-cap = %d", evictions, want)
	}
	if nc := indexStore.Len(); nc != 2 {
		t.Errorf("cache holds %d entries, want the configured cap 2", nc)
	}

	// shrinking below the current population evicts immediately
	if _, err := SetIndexCacheCapacity(1); err != nil {
		t.Fatal(err)
	}
	if nc := indexStore.Len(); nc != 1 {
		t.Errorf("after shrink: %d entries, want 1", nc)
	}
	if got := obs.Default().Counter("importance_neighbor_index_evictions_total").Value(); got != evictions+1 {
		t.Errorf("shrink evictions = %d, want %d", got, evictions+1)
	}
	for _, bad := range []int{0, -3} {
		got, err := SetIndexCacheCapacity(bad)
		if !errors.Is(err, nderr.ErrDegenerateInput) {
			t.Errorf("SetIndexCacheCapacity(%d) err = %v, want ErrDegenerateInput", bad, err)
		}
		if got != 1 {
			t.Errorf("SetIndexCacheCapacity(%d) reports capacity %d, want unchanged 1", bad, got)
		}
	}
	if got := IndexCacheCapacity(); got != 1 {
		t.Errorf("capacity = %d, want unchanged 1", got)
	}
}

// The cache key includes the search-config fingerprint: the same geometry
// under a different search mode must be a distinct entry, never an alias.
func TestIndexCacheKeyedBySearchConfig(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	defer SetNeighborSearch(ml.SearchConfig{})

	train := blobs(40, 1.5, 1600)
	valid := blobs(20, 1.5, 1601)
	exact, err := sharedNeighborIndex(train, valid, 1)
	if err != nil {
		t.Fatal(err)
	}
	SetNeighborSearch(ml.SearchConfig{Mode: ml.SearchAuto, ExactThreshold: 10, NProbe: 2})
	if got := NeighborSearch().Mode; got != ml.SearchAuto {
		t.Fatalf("NeighborSearch mode = %v, want auto", got)
	}
	approx, err := sharedNeighborIndex(train, valid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exact == approx {
		t.Fatal("same index instance served for different search configs")
	}
	if got := obs.Default().Counter("importance_neighbor_index_misses_total").Value(); got != 2 {
		t.Errorf("misses = %d, want 2 (one per config)", got)
	}
	// back to the default config: the exact entry is still cached
	SetNeighborSearch(ml.SearchConfig{})
	again, err := sharedNeighborIndex(train, valid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again != exact {
		t.Error("default-config lookup missed the cached exact index")
	}
}
