package importance

import (
	"testing"

	"nde/internal/ml"
	"nde/internal/obs"
)

// The three kNN-Shapley entry points — sequential, pooled, and explicit
// index — must agree bit-for-bit.
func TestKNNShapleyAllPathsBitIdentical(t *testing.T) {
	train := blobs(90, 1.5, 901)
	valid := blobs(45, 1.5, 902)
	seq, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	par, err := KNNShapleyParallel(5, train, valid, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ml.NewNeighborIndex(train, valid, 2)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := KNNShapleyWithIndex(5, ix)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] || seq[i] != indexed[i] {
			t.Fatalf("score %d diverges: seq %v par %v indexed %v", i, seq[i], par[i], indexed[i])
		}
	}
}

// Repeated calls over the same features must hit the shared index cache —
// the distance matrix is computed exactly once — and hits/misses are
// exported as counters.
func TestSharedNeighborIndexCacheHits(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()

	train := blobs(50, 1.5, 903)
	valid := blobs(25, 1.5, 904)
	if _, err := KNNShapley(5, train, valid); err != nil {
		t.Fatal(err)
	}
	misses := obs.Default().Counter("importance_neighbor_index_misses_total").Value()
	if misses != 1 {
		t.Fatalf("misses after first call = %d, want 1", misses)
	}
	if _, err := KNNShapley(3, train, valid); err != nil { // different k, same geometry
		t.Fatal(err)
	}
	if _, err := KNNShapleyParallel(5, train, valid, 2); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("importance_neighbor_index_hits_total").Value(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := obs.Default().Counter("importance_neighbor_index_misses_total").Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// Label-only mutations (the iterative-cleaning pattern) may reuse the
// cached geometry, but the scores must still reflect the new labels; a
// feature mutation must produce a cache miss.
func TestSharedNeighborIndexLabelAndFeatureMutations(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()

	train := blobs(40, 1.5, 905)
	valid := blobs(20, 1.5, 906)
	before, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}

	// flip a label in place: same features → cache hit, different scores
	train.Y[3] = 1 - train.Y[3]
	after, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range before {
		if before[i] != after[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("label flip did not change any score (stale labels served from cache?)")
	}
	// the flipped point's own score must move: its match indicator changed
	// at every validation point
	if after[3] == before[3] {
		t.Errorf("flipped point score unchanged at %v", after[3])
	}

	// mutate a feature in place: the fingerprint must detect it
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	train.X.Set(0, 0, train.X.At(0, 0)+10)
	if _, err := KNNShapley(5, train, valid); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("importance_neighbor_index_misses_total").Value(); got != 1 {
		t.Errorf("feature mutation produced %d misses, want 1", got)
	}
}

// The cache is bounded: old entries are evicted FIFO.
func TestSharedNeighborIndexCacheEviction(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	for i := 0; i < maxCachedIndexes+2; i++ {
		train := blobs(20, 1.5, int64(910+i))
		valid := blobs(10, 1.5, int64(930+i))
		if _, err := KNNShapley(3, train, valid); err != nil {
			t.Fatal(err)
		}
	}
	indexMu.Lock()
	defer indexMu.Unlock()
	if len(indexCache) != maxCachedIndexes {
		t.Errorf("cache holds %d entries, want %d", len(indexCache), maxCachedIndexes)
	}
	if len(indexFIFO) != maxCachedIndexes {
		t.Errorf("FIFO holds %d entries, want %d", len(indexFIFO), maxCachedIndexes)
	}
}
