package importance

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nde/internal/frame"
	"nde/internal/ml"
)

// Predicate is an equality condition on one attribute column.
type Predicate struct {
	Column string
	Value  frame.Value
}

func (p Predicate) String() string { return p.Column + "=" + p.Value.String() }

// Subgroup is a conjunction of predicates identifying a set of training
// rows, together with the effect of removing it.
type Subgroup struct {
	Predicates []Predicate
	Support    int     // training rows matched
	Delta      float64 // reduction in fairness violation when removed (positive = helps)
	Violation  float64 // violation after removal
}

func (s Subgroup) String() string {
	parts := make([]string, len(s.Predicates))
	for i, p := range s.Predicates {
		parts[i] = p.String()
	}
	return fmt.Sprintf("{%s} support=%d Δviolation=%.4f", strings.Join(parts, " ∧ "), s.Support, s.Delta)
}

// GopherConfig controls the fairness-explanation search.
type GopherConfig struct {
	// NewModel builds the classifier under debugging (default logistic
	// regression).
	NewModel func() ml.Classifier
	// Pos is the positive class for the fairness metric (default 1).
	Pos int
	// MinSupport discards subgroups matching fewer training rows
	// (default 5).
	MinSupport int
	// MaxPredicates caps the conjunction length at 1 or 2 (default 2).
	MaxPredicates int
	// TopK is the number of explanations returned (default 5).
	TopK int
	// Metric selects the violation to explain; it receives truth, pred,
	// groups and the positive class (default equalized odds).
	Metric func(truth, pred []int, groups []string, pos int) float64
}

func (cfg GopherConfig) withDefaults() GopherConfig {
	if cfg.NewModel == nil {
		cfg.NewModel = func() ml.Classifier { return ml.NewLogisticRegression() }
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 5
	}
	if cfg.MaxPredicates <= 0 || cfg.MaxPredicates > 2 {
		cfg.MaxPredicates = 2
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 5
	}
	if cfg.Metric == nil {
		cfg.Metric = ml.EqualizedOddsDifference
	}
	return cfg
}

// GopherExplanations searches for the training subgroups whose removal most
// reduces a fairness violation (Pradhan et al., SIGMOD 2022). attrs is a
// frame of interpretable attributes aligned row-for-row with train;
// candidate subgroups are conjunctions of up to MaxPredicates equality
// predicates over its columns. valid must carry protected groups.
func GopherExplanations(train *ml.Dataset, attrs *frame.Frame, valid *ml.Dataset, cfg GopherConfig) (float64, []Subgroup, error) {
	if attrs.NumRows() != train.Len() {
		return 0, nil, fmt.Errorf("importance: attrs has %d rows, train has %d", attrs.NumRows(), train.Len())
	}
	if len(valid.Groups) != valid.Len() || valid.Len() == 0 {
		return 0, nil, fmt.Errorf("importance: validation set must carry protected groups")
	}
	cfg = cfg.withDefaults()

	violation := func(d *ml.Dataset) (float64, error) {
		if d.Len() == 0 {
			return 0, fmt.Errorf("importance: subgroup removal emptied the training set")
		}
		m := cfg.NewModel()
		if err := m.Fit(d); err != nil {
			return 0, err
		}
		pred := ml.PredictAll(m, valid)
		return cfg.Metric(valid.Y, pred, valid.Groups, cfg.Pos), nil
	}
	base, err := violation(train)
	if err != nil {
		return 0, nil, err
	}

	// enumerate candidate subgroups with sufficient support
	var candidates [][]Predicate
	cols := attrs.ColumnNames()
	for _, c := range cols {
		for _, v := range attrs.MustColumn(c).Unique() {
			candidates = append(candidates, []Predicate{{Column: c, Value: v}})
		}
	}
	if cfg.MaxPredicates >= 2 {
		var singles [][]Predicate
		singles = append(singles, candidates...)
		for a := 0; a < len(singles); a++ {
			for b := a + 1; b < len(singles); b++ {
				if singles[a][0].Column == singles[b][0].Column {
					continue
				}
				candidates = append(candidates, []Predicate{singles[a][0], singles[b][0]})
			}
		}
	}

	matchRows := func(preds []Predicate) []int {
		var rows []int
		for r := 0; r < attrs.NumRows(); r++ {
			ok := true
			for _, p := range preds {
				v, err := attrs.Value(r, p.Column)
				if err != nil || !v.Equal(p.Value) {
					ok = false
					break
				}
			}
			if ok {
				rows = append(rows, r)
			}
		}
		return rows
	}

	var results []Subgroup
	for _, preds := range candidates {
		rows := matchRows(preds)
		if len(rows) < cfg.MinSupport || len(rows) == train.Len() {
			continue
		}
		remove := make(map[int]bool, len(rows))
		for _, r := range rows {
			remove[r] = true
		}
		rest, _ := train.Without(remove)
		after, err := violation(rest)
		if err != nil {
			return 0, nil, err
		}
		results = append(results, Subgroup{
			Predicates: preds,
			Support:    len(rows),
			Delta:      base - after,
			Violation:  after,
		})
	}
	// rank by fairness improvement; among (near-)ties prefer the smaller,
	// more precise subgroup — the minimal intervention explaining the
	// violation
	sort.SliceStable(results, func(a, b int) bool {
		if math.Abs(results[a].Delta-results[b].Delta) > 1e-9 {
			return results[a].Delta > results[b].Delta
		}
		return results[a].Support < results[b].Support
	})
	if len(results) > cfg.TopK {
		results = results[:cfg.TopK]
	}
	return base, results, nil
}
