package importance

import (
	"testing"

	"nde/internal/ml"
)

func TestAmortizedEstimatorRecoversSignal(t *testing.T) {
	// flipped points have low exact scores; the amortized model trained on
	// half the exact scores should detect most flips on the other half
	clean := blobs(160, 2.5, 401)
	valid := blobs(80, 2.5, 402)
	dirty, flipped := flipLabels(clean, 0.15, 403)
	exact, err := KNNShapley(5, dirty, valid)
	if err != nil {
		t.Fatal(err)
	}
	rows := deterministicSample(dirty.Len(), 80, 5)
	targets := make([]float64, len(rows))
	for o, i := range rows {
		targets[o] = exact[i]
	}
	est := NewAmortizedEstimator()
	if err := est.Fit(dirty, rows, targets); err != nil {
		t.Fatal(err)
	}
	scores, err := est.Predict()
	if err != nil {
		t.Fatal(err)
	}
	k := len(flipped)
	prec := scores.PrecisionAtK(flipped, k)
	if prec < 0.5 {
		t.Errorf("amortized precision@%d = %v, want >= 0.5", k, prec)
	}
}

func TestAmortizedEstimatorErrors(t *testing.T) {
	d := blobs(20, 2, 404)
	est := NewAmortizedEstimator()
	if err := est.Fit(d, []int{0, 1}, []float64{1}); err == nil {
		t.Error("expected length mismatch error")
	}
	if err := est.Fit(d, []int{0}, []float64{1}); err == nil {
		t.Error("expected too-few-rows error")
	}
	if _, err := NewAmortizedEstimator().Predict(); err == nil {
		t.Error("expected error predicting before fit")
	}
}

func TestAmortizedBanzhafEndToEnd(t *testing.T) {
	clean := blobs(80, 2.5, 411)
	valid := blobs(40, 2.5, 412)
	dirty, flipped := flipLabels(clean, 0.15, 413)
	scores, rows, err := AmortizedBanzhaf(dirty, valid,
		func() ml.Classifier { return ml.NewKNN(5) }, 30, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Errorf("oracle rows = %d", len(rows))
	}
	if len(scores) != dirty.Len() {
		t.Fatalf("scores len = %d", len(scores))
	}
	k := len(flipped)
	if prec := scores.PrecisionAtK(flipped, k); prec < 0.4 {
		t.Errorf("amortized banzhaf precision@%d = %v, want >= 0.4", k, prec)
	}
	if _, _, err := AmortizedBanzhaf(dirty, valid, func() ml.Classifier { return ml.NewKNN(5) }, 1, 5, 7); err == nil {
		t.Error("expected budget error")
	}
}

func TestMCBanzhafRowsMatchesFull(t *testing.T) {
	w := []float64{2, -1, 0.5, 3}
	u := additiveUtility(w)
	partial, err := MCBanzhafRows(4, u, []int{1, 3}, SemivalueConfig{SamplesPerPoint: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// additive utility: every semivalue equals the weight exactly
	if partial[0] != -1 || partial[1] != 3 {
		t.Errorf("partial banzhaf = %v", partial)
	}
	if _, err := MCBanzhafRows(4, u, []int{9}, SemivalueConfig{}); err == nil {
		t.Error("expected range error")
	}
}

func TestDeterministicSample(t *testing.T) {
	a := deterministicSample(100, 20, 1)
	b := deterministicSample(100, 20, 1)
	c := deterministicSample(100, 20, 2)
	if len(a) != 20 {
		t.Fatalf("len = %d", len(a))
	}
	seen := make(map[int]bool)
	for i, v := range a {
		if v != b[i] {
			t.Fatal("not deterministic")
		}
		if seen[v] {
			t.Fatal("duplicate index")
		}
		seen[v] = true
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical samples")
	}
}
