package importance

import (
	"fmt"

	"nde/internal/linalg"
	"nde/internal/ml"
)

// AmortizedEstimator implements model-based importance estimation in the
// spirit of stochastic amortization (Covert et al., NeurIPS 2024): instead
// of computing an expensive importance score for every training example, a
// cheap regression model is fitted from example features (plus a label-
// agreement indicator) to *noisy* importance estimates on a labeled subset,
// and then predicts scores for the rest. Because the regression targets
// are unbiased noisy estimates, the amortized model converges to the true
// scores as the subset grows — at a fraction of the cost.
type AmortizedEstimator struct {
	// L2 is the ridge penalty of the underlying regression (default 1e-3).
	L2 float64

	reg      *ml.LinearRegression
	trainRef *ml.Dataset
}

// NewAmortizedEstimator returns an estimator with default regularization.
func NewAmortizedEstimator() *AmortizedEstimator {
	return &AmortizedEstimator{L2: 1e-3}
}

// amortFeatures augments the raw features with signals known to correlate
// with importance: the example's margin-style agreement with its local
// neighborhood (fraction of the 5 nearest training points sharing its
// label).
func (a *AmortizedEstimator) amortFeatures(train *ml.Dataset, i int) []float64 {
	x := train.Row(i)
	out := make([]float64, 0, train.Dim()+1)
	out = append(out, x...)

	// neighborhood label agreement
	type di struct {
		d float64
		j int
	}
	best := [5]di{}
	for k := range best {
		best[k] = di{d: 1e300, j: -1}
	}
	for j := 0; j < train.Len(); j++ {
		if j == i {
			continue
		}
		d := ml.EuclideanDistance(train.Row(j), x)
		for k := range best {
			if d < best[k].d {
				copy(best[k+1:], best[k:len(best)-1])
				best[k] = di{d, j}
				break
			}
		}
	}
	agree := 0.0
	n := 0.0
	for _, b := range best {
		if b.j >= 0 {
			n++
			if train.Y[b.j] == train.Y[i] {
				agree++
			}
		}
	}
	if n > 0 {
		agree /= n
	}
	out = append(out, agree)
	return out
}

// Fit trains the amortized model from noisy importance estimates on the
// labeled subset of rows.
func (a *AmortizedEstimator) Fit(train *ml.Dataset, labeledRows []int, noisyScores []float64) error {
	if len(labeledRows) != len(noisyScores) {
		return fmt.Errorf("importance: %d labeled rows for %d scores", len(labeledRows), len(noisyScores))
	}
	if len(labeledRows) < 2 {
		return fmt.Errorf("importance: amortization needs at least 2 labeled rows, got %d", len(labeledRows))
	}
	a.trainRef = train
	dim := train.Dim() + 1
	x := linalg.NewMatrix(len(labeledRows), dim)
	for o, i := range labeledRows {
		copy(x.Row(o), a.amortFeatures(train, i))
	}
	a.reg = &ml.LinearRegression{L2: a.L2}
	return a.reg.FitXY(x, noisyScores)
}

// Predict returns amortized scores for every row of the training set the
// estimator was fitted against.
func (a *AmortizedEstimator) Predict() (Scores, error) {
	if a.reg == nil {
		return nil, fmt.Errorf("importance: Predict before Fit")
	}
	out := make(Scores, a.trainRef.Len())
	for i := range out {
		out[i] = a.reg.PredictValue(a.amortFeatures(a.trainRef, i))
	}
	return out, nil
}

// AmortizedBanzhaf runs the full amortization loop with a genuinely
// per-row-priced oracle: Monte-Carlo Banzhaf values are computed for only
// `budget` randomly chosen rows (paying budget/n of the full cost), the
// amortized regression is fitted on those noisy targets, and scores are
// predicted for every row. Returned alongside are the oracle rows used.
func AmortizedBanzhaf(train, valid *ml.Dataset, newModel func() ml.Classifier, budget, samplesPerRow int, seed int64) (Scores, []int, error) {
	if budget < 2 || budget > train.Len() {
		return nil, nil, fmt.Errorf("importance: amortization budget %d outside [2,%d]", budget, train.Len())
	}
	rows := deterministicSample(train.Len(), budget, seed)
	u := AccuracyUtility(newModel, train, valid)
	targets, err := MCBanzhafRows(train.Len(), u, rows, SemivalueConfig{SamplesPerPoint: samplesPerRow, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	est := NewAmortizedEstimator()
	if err := est.Fit(train, rows, targets); err != nil {
		return nil, nil, err
	}
	scores, err := est.Predict()
	if err != nil {
		return nil, nil, err
	}
	return scores, rows, nil
}

// deterministicSample returns `budget` distinct indices from [0,n) chosen
// by a seeded linear-congruential walk (avoids importing math/rand here).
func deterministicSample(n, budget int, seed int64) []int {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	seen := make(map[int]bool, budget)
	out := make([]int, 0, budget)
	for len(out) < budget {
		i := int(next() % uint64(n))
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}
