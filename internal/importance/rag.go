package importance

import (
	"fmt"
	"sort"

	"nde/internal/encode"
	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
)

// This file implements data importance for retrieval-augmented generation
// (Lyu et al., 2023 — surveyed in §2.1): when an inference pipeline answers
// queries by retrieving documents from a corpus and aggregating their
// evidence, the "training data" to debug is the corpus itself. Because
// retrieval-augmented prediction is a k-nearest-neighbor computation over
// the corpus, the exact kNN-Shapley machinery applies verbatim — each
// corpus document gets a Shapley value measuring its contribution to answer
// quality, and polluted or off-topic documents surface at the bottom.

// RAGCorpus is a retrieval corpus of labeled documents embedded into a
// shared vector space.
type RAGCorpus struct {
	Docs   []string
	Labels []int // the answer/verdict each document supports

	vec  *encode.TfidfVectorizer
	data *ml.Dataset
}

// NewRAGCorpus embeds the documents with TF-IDF (fitted on the corpus).
func NewRAGCorpus(docs []string, labels []int) (*RAGCorpus, error) {
	if len(docs) == 0 || len(docs) != len(labels) {
		return nil, fmt.Errorf("importance: corpus needs matching docs (%d) and labels (%d)", len(docs), len(labels))
	}
	c := &RAGCorpus{Docs: docs, Labels: append([]int(nil), labels...)}
	c.vec = encode.NewTfidfVectorizer(0)
	series := docsSeries(docs)
	if err := c.vec.Fit(series); err != nil {
		return nil, err
	}
	x, err := c.vec.Transform(series)
	if err != nil {
		return nil, err
	}
	d, err := ml.NewDataset(x, c.Labels)
	if err != nil {
		return nil, err
	}
	c.data = d
	return c, nil
}

// Answer retrieves the k nearest documents to the query and returns their
// majority label — the retrieval-augmented prediction.
func (c *RAGCorpus) Answer(query string, k int) (int, error) {
	q, err := c.embedQueries([]string{query})
	if err != nil {
		return 0, err
	}
	m := ml.NewKNN(k)
	if err := m.Fit(c.data); err != nil {
		return 0, err
	}
	return m.Predict(q.Row(0)), nil
}

// Retrieve returns the indices of the k nearest documents to the query.
func (c *RAGCorpus) Retrieve(query string, k int) ([]int, error) {
	q, err := c.embedQueries([]string{query})
	if err != nil {
		return nil, err
	}
	m := ml.NewKNN(k)
	if err := m.Fit(c.data); err != nil {
		return nil, err
	}
	order := m.Neighbors(q.Row(0))
	if k > len(order) {
		k = len(order)
	}
	return order[:k], nil
}

// DocumentImportance computes the exact kNN-Shapley value of every corpus
// document with respect to a benchmark of (query, expected answer) pairs.
// Low-importance documents are the ones whose retrieval hurts answers —
// polluted, mislabeled or adversarial corpus entries.
func (c *RAGCorpus) DocumentImportance(queries []string, answers []int, k int) (Scores, error) {
	if len(queries) == 0 || len(queries) != len(answers) {
		return nil, fmt.Errorf("importance: benchmark needs matching queries (%d) and answers (%d)", len(queries), len(answers))
	}
	q, err := c.embedQueries(queries)
	if err != nil {
		return nil, err
	}
	bench, err := ml.NewDataset(q, answers)
	if err != nil {
		return nil, err
	}
	return KNNShapley(k, c.data, bench)
}

// PruneBottom removes the lowest-importance documents and returns the
// pruned corpus together with the removed indices, the cleanup action the
// importance analysis recommends.
func (c *RAGCorpus) PruneBottom(scores Scores, k int) (*RAGCorpus, []int, error) {
	if len(scores) != len(c.Docs) {
		return nil, nil, fmt.Errorf("importance: %d scores for %d docs", len(scores), len(c.Docs))
	}
	drop := scores.BottomK(k)
	dropSet := make(map[int]bool, len(drop))
	for _, i := range drop {
		dropSet[i] = true
	}
	var docs []string
	var labels []int
	for i := range c.Docs {
		if !dropSet[i] {
			docs = append(docs, c.Docs[i])
			labels = append(labels, c.Labels[i])
		}
	}
	pruned, err := NewRAGCorpus(docs, labels)
	if err != nil {
		return nil, nil, err
	}
	sort.Ints(drop)
	return pruned, drop, nil
}

// PruneNegative removes every document with a strictly negative importance
// score — the conservative cleanup: under the kNN utility a negative
// Shapley value means the document lowers expected answer accuracy, so
// removal cannot hurt the additive utility decomposition.
func (c *RAGCorpus) PruneNegative(scores Scores) (*RAGCorpus, []int, error) {
	if len(scores) != len(c.Docs) {
		return nil, nil, fmt.Errorf("importance: %d scores for %d docs", len(scores), len(c.Docs))
	}
	var drop []int
	for i, s := range scores {
		if s < 0 {
			drop = append(drop, i)
		}
	}
	if len(drop) == len(c.Docs) {
		return nil, nil, fmt.Errorf("importance: every document scored negative; refusing to empty the corpus")
	}
	dropSet := make(map[int]bool, len(drop))
	for _, i := range drop {
		dropSet[i] = true
	}
	var docs []string
	var labels []int
	for i := range c.Docs {
		if !dropSet[i] {
			docs = append(docs, c.Docs[i])
			labels = append(labels, c.Labels[i])
		}
	}
	pruned, err := NewRAGCorpus(docs, labels)
	if err != nil {
		return nil, nil, err
	}
	return pruned, drop, nil
}

// BenchmarkAccuracy answers every benchmark query and returns the fraction
// matching the expected answers.
func (c *RAGCorpus) BenchmarkAccuracy(queries []string, answers []int, k int) (float64, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("importance: empty benchmark")
	}
	correct := 0
	for i, q := range queries {
		got, err := c.Answer(q, k)
		if err != nil {
			return 0, err
		}
		if got == answers[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(queries)), nil
}

func (c *RAGCorpus) embedQueries(queries []string) (*linalg.Matrix, error) {
	return c.vec.Transform(docsSeries(queries))
}

func docsSeries(docs []string) *frame.Series {
	return frame.NewStringSeries("doc", docs, nil)
}
