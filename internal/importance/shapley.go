package importance

import (
	"fmt"
	"math/rand"

	"nde/internal/obs"
)

// MCShapleyConfig controls the Monte-Carlo permutation estimator of the
// Data Shapley value (Ghorbani & Zou, ICML 2019).
type MCShapleyConfig struct {
	// Permutations is the number of sampled permutations (default 100).
	Permutations int
	// Seed makes the estimate reproducible.
	Seed int64
	// Truncation enables TMC-Shapley: once the running utility is within
	// Truncation of the full-data utility, the rest of the permutation is
	// assigned zero marginal contribution. Zero disables truncation.
	Truncation float64
}

// MCShapley estimates Shapley values by averaging marginal contributions
// over random permutations: for each permutation, examples are added one by
// one and each example is credited with the utility gain it causes.
// The cost is O(Permutations · n) utility evaluations, less with
// truncation.
func MCShapley(n int, u Utility, cfg MCShapleyConfig) (Scores, error) {
	if n <= 0 {
		return nil, fmt.Errorf("importance: need at least one example, got %d", n)
	}
	perms := cfg.Permutations
	if perms <= 0 {
		perms = 100
	}
	sp := obs.StartSpan("importance.mcshapley")
	sp.SetInt("n", int64(n)).SetInt("permutations", int64(perms))
	defer sp.End()
	prog := obs.NewProgress("mcshapley_permutations", perms)
	defer prog.Done()
	r := rand.New(rand.NewSource(cfg.Seed))

	uEmpty, err := u(nil)
	if err != nil {
		return nil, err
	}
	full := make([]int, n)
	for i := range full {
		full[i] = i
	}
	uFull, err := u(full)
	if err != nil {
		return nil, err
	}

	evals, truncations := int64(2), int64(0)
	scores := make(Scores, n)
	subset := make([]int, 0, n)
	for p := 0; p < perms; p++ {
		perm := r.Perm(n)
		subset = subset[:0]
		prev := uEmpty
		truncated := false
		for _, i := range perm {
			if truncated {
				continue // zero marginal contribution
			}
			subset = append(subset, i)
			cur, err := u(subset)
			if err != nil {
				return nil, err
			}
			evals++
			scores[i] += cur - prev
			prev = cur
			if cfg.Truncation > 0 && abs(uFull-cur) < cfg.Truncation {
				truncated = true
				truncations++
			}
		}
		prog.Tick(1)
	}
	for i := range scores {
		scores[i] /= float64(perms)
	}
	obs.Count("importance_mc_utility_evals_total", evals)
	obs.Count("importance_mc_truncations_total", truncations)
	sp.SetInt("utility_evals", evals).SetInt("truncations", truncations)
	return scores, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ExactShapley computes Shapley values by enumerating all 2^n subsets.
// It is exponential and intended for n <= 20: validating estimators,
// property-testing the axioms, and exact answers on small groups.
func ExactShapley(n int, u Utility) (Scores, error) {
	if n <= 0 || n > 24 {
		return nil, fmt.Errorf("importance: ExactShapley supports 1..24 examples, got %d", n)
	}
	// utilities of every subset, indexed by bitmask
	utils := make([]float64, 1<<n)
	subset := make([]int, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		subset = subset[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, i)
			}
		}
		v, err := u(subset)
		if err != nil {
			return nil, err
		}
		utils[mask] = v
	}
	// factorial weights w(s) = s!(n-s-1)!/n!
	fact := make([]float64, n+1)
	fact[0] = 1
	for i := 1; i <= n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	scores := make(Scores, n)
	for i := 0; i < n; i++ {
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<i) != 0 {
				continue
			}
			s := popcount(mask)
			w := fact[s] * fact[n-s-1] / fact[n]
			scores[i] += w * (utils[mask|1<<i] - utils[mask])
		}
	}
	return scores, nil
}

// ExactBanzhaf computes Banzhaf values by full enumeration: the average
// marginal contribution over all 2^(n-1) subsets not containing i.
func ExactBanzhaf(n int, u Utility) (Scores, error) {
	if n <= 0 || n > 24 {
		return nil, fmt.Errorf("importance: ExactBanzhaf supports 1..24 examples, got %d", n)
	}
	utils := make([]float64, 1<<n)
	subset := make([]int, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		subset = subset[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, i)
			}
		}
		v, err := u(subset)
		if err != nil {
			return nil, err
		}
		utils[mask] = v
	}
	scores := make(Scores, n)
	for i := 0; i < n; i++ {
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<i) != 0 {
				continue
			}
			scores[i] += utils[mask|1<<i] - utils[mask]
		}
	}
	inv := 1 / float64(int(1)<<(n-1))
	for i := range scores {
		scores[i] *= inv
	}
	return scores, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
