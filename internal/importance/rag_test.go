package importance

import (
	"fmt"
	"testing"
)

// ragFixture builds a corpus of "support" documents for two verdicts with a
// handful of polluted (mislabeled) entries, plus a benchmark of queries.
func ragFixture() (docs []string, labels []int, queries []string, answers []int, polluted map[int]bool) {
	positives := []string{
		"the treatment improved recovery outcomes substantially",
		"patients responded well to the new therapy",
		"clinical trials showed strong positive results for the treatment",
		"the therapy reduced symptoms in most patients",
		"recovery rates increased after the treatment was introduced",
		"the medication proved effective and safe in trials",
	}
	negatives := []string{
		"the treatment showed no measurable benefit over placebo",
		"patients reported adverse effects from the therapy",
		"the trial failed to demonstrate any improvement",
		"symptoms worsened for many patients on the medication",
		"the therapy was discontinued due to safety concerns",
		"no statistically significant effect was observed",
	}
	polluted = make(map[int]bool)
	for _, d := range positives {
		docs = append(docs, d)
		labels = append(labels, 1)
	}
	for _, d := range negatives {
		docs = append(docs, d)
		labels = append(labels, 0)
	}
	// polluted entries: negative-evidence text labeled positive
	pollutedDocs := []string{
		"the trial failed and safety concerns were raised about the treatment",
		"no benefit was observed and adverse effects worsened symptoms",
	}
	for _, d := range pollutedDocs {
		polluted[len(docs)] = true
		docs = append(docs, d)
		labels = append(labels, 1)
	}
	queries = []string{
		"did the treatment improve outcomes",
		"was the therapy effective for patients",
		"did the trial fail to show benefit",
		"were there adverse effects and safety concerns",
	}
	answers = []int{1, 1, 0, 0}
	return docs, labels, queries, answers, polluted
}

func TestRAGCorpusAnswer(t *testing.T) {
	docs, labels, queries, answers, _ := ragFixture()
	c, err := NewRAGCorpus(docs, labels)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Answer(queries[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != answers[0] {
		t.Errorf("answer = %d, want %d", got, answers[0])
	}
	retrieved, err := c.Retrieve(queries[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(retrieved) != 3 {
		t.Errorf("retrieved = %v", retrieved)
	}
}

func TestRAGDocumentImportanceFindsPollution(t *testing.T) {
	docs, labels, queries, answers, polluted := ragFixture()
	c, err := NewRAGCorpus(docs, labels)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := c.DocumentImportance(queries, answers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(docs) {
		t.Fatalf("scores = %d", len(scores))
	}
	bottom := scores.BottomK(len(polluted))
	hits := 0
	for _, i := range bottom {
		if polluted[i] {
			hits++
		}
	}
	if hits < 1 {
		t.Errorf("bottom-%d %v missed all polluted docs %v (scores %v)", len(polluted), bottom, polluted, scores)
	}
}

func TestRAGPruneImprovesBenchmark(t *testing.T) {
	docs, labels, queries, answers, polluted := ragFixture()
	c, err := NewRAGCorpus(docs, labels)
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.BenchmarkAccuracy(queries, answers, 3)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := c.DocumentImportance(queries, answers, 3)
	if err != nil {
		t.Fatal(err)
	}
	pruned, dropped, err := c.PruneBottom(scores, len(polluted))
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Docs) != len(docs)-len(polluted) {
		t.Errorf("pruned size = %d", len(pruned.Docs))
	}
	if len(dropped) != len(polluted) {
		t.Errorf("dropped = %v", dropped)
	}
	after, err := pruned.BenchmarkAccuracy(queries, answers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if after < before {
		t.Errorf("pruning decreased benchmark accuracy: %v -> %v", before, after)
	}
}

func TestRAGCorpusErrors(t *testing.T) {
	if _, err := NewRAGCorpus(nil, nil); err == nil {
		t.Error("expected error for empty corpus")
	}
	if _, err := NewRAGCorpus([]string{"a"}, []int{0, 1}); err == nil {
		t.Error("expected error for mismatched labels")
	}
	docs, labels, _, _, _ := ragFixture()
	c, err := NewRAGCorpus(docs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DocumentImportance(nil, nil, 3); err == nil {
		t.Error("expected error for empty benchmark")
	}
	if _, _, err := c.PruneBottom(Scores{1}, 1); err == nil {
		t.Error("expected error for score length mismatch")
	}
	if _, err := c.BenchmarkAccuracy(nil, nil, 3); err == nil {
		t.Error("expected error for empty benchmark accuracy")
	}
}

func TestRAGCorpusLargerSweep(t *testing.T) {
	// scale the corpus by repeating templated docs; importance must stay
	// well-defined and pruning must never crash across k values
	docs, labels, queries, answers, _ := ragFixture()
	for i := 0; i < 20; i++ {
		docs = append(docs, fmt.Sprintf("additional supportive evidence case %d shows improvement", i))
		labels = append(labels, 1)
		docs = append(docs, fmt.Sprintf("additional null result case %d shows no effect", i))
		labels = append(labels, 0)
	}
	c, err := NewRAGCorpus(docs, labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 5} {
		scores, err := c.DocumentImportance(queries, answers, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(scores) != len(docs) {
			t.Fatalf("k=%d: scores = %d", k, len(scores))
		}
	}
}
