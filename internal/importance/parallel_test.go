package importance

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKNNShapleyParallelMatchesSequential(t *testing.T) {
	train := blobs(150, 1.5, 701)
	valid := blobs(70, 1.5, 702)
	seq, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 100} {
		par, err := KNNShapleyParallel(5, train, valid, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: score %d differs: %v vs %v", workers, i, seq[i], par[i])
			}
		}
	}
}

// Property: parallel and sequential are bit-identical for random shapes and
// worker counts (determinism under scheduling).
func TestQuickKNNShapleyParallelDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		train := randomDataset(r, 5+r.Intn(30), 2, 2)
		valid := randomDataset(r, 1+r.Intn(10), 2, 2)
		k := 1 + r.Intn(4)
		seq, err := KNNShapley(k, train, valid)
		if err != nil {
			return false
		}
		par, err := KNNShapleyParallel(k, train, valid, 1+r.Intn(6))
		if err != nil {
			return false
		}
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKNNShapleyParallelErrors(t *testing.T) {
	d := blobs(10, 1, 703)
	if _, err := KNNShapleyParallel(0, d, d, 2); err == nil {
		t.Error("expected error for k=0")
	}
}

// Datascope vs. exact group Shapley on a small JOIN pipeline: the additive
// provenance aggregation is an approximation there, but it must agree with
// the exact computation on who is most harmful.
func TestDatascopeJoinPipelineRankAgreement(t *testing.T) {
	// reuse the datascope test fixture machinery indirectly: build exact
	// group Shapley over the pipeline utility and compare the bottom-1.
	// (See datascope_test.go for the map-pipeline exactness test.)
	p, node, ft, valid := mapPipelineFixture(t, 12, 704)
	// corrupt one source label via its featurized labels copy
	// (map fixture: output row i <-> source row i)
	ft.Data.Y[3] = 1 - ft.Data.Y[3]
	scores, err := Datascope(ft, valid, "train", 12, DatascopeConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactShapley(12, KNNUtility(1, ft.Data, valid))
	if err != nil {
		t.Fatal(err)
	}
	if scores.BottomK(1)[0] != Scores(exact).BottomK(1)[0] {
		t.Errorf("datascope bottom-1 %d != exact bottom-1 %d",
			scores.BottomK(1)[0], Scores(exact).BottomK(1)[0])
	}
	_ = p
	_ = node
}
