package importance

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"nde/internal/obs"
)

func TestKNNShapleyParallelMatchesSequential(t *testing.T) {
	train := blobs(150, 1.5, 701)
	valid := blobs(70, 1.5, 702)
	seq, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 100} {
		par, err := KNNShapleyParallel(5, train, valid, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: score %d differs: %v vs %v", workers, i, seq[i], par[i])
			}
		}
	}
}

// Property: parallel and sequential are bit-identical for random shapes and
// worker counts (determinism under scheduling).
func TestQuickKNNShapleyParallelDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		train := randomDataset(r, 5+r.Intn(30), 2, 2)
		valid := randomDataset(r, 1+r.Intn(10), 2, 2)
		k := 1 + r.Intn(4)
		seq, err := KNNShapley(k, train, valid)
		if err != nil {
			return false
		}
		par, err := KNNShapleyParallel(k, train, valid, 1+r.Intn(6))
		if err != nil {
			return false
		}
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The worker-count edge cases: workers <= 0 resolves to GOMAXPROCS,
// oversubscription clamps to the number of validation points, and the
// resolved count — previously silent — is surfaced in ParallelStats.
func TestKNNShapleyParallelStatsWorkerResolution(t *testing.T) {
	train := blobs(60, 1.5, 705)
	valid := blobs(7, 1.5, 706)

	scores, stats, err := KNNShapleyParallelStats(5, train, valid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RequestedWorkers != 0 {
		t.Errorf("requested = %d, want 0", stats.RequestedWorkers)
	}
	wantAuto := runtime.GOMAXPROCS(0)
	if wantAuto > valid.Len() {
		wantAuto = valid.Len()
	}
	if stats.Workers != wantAuto {
		t.Errorf("auto workers = %d, want %d", stats.Workers, wantAuto)
	}

	_, stats, err = KNNShapleyParallelStats(5, train, valid, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != valid.Len() {
		t.Errorf("clamped workers = %d, want %d", stats.Workers, valid.Len())
	}
	if stats.Points != valid.Len() {
		t.Errorf("points = %d, want %d", stats.Points, valid.Len())
	}
	if len(stats.PerWorker) != stats.Workers {
		t.Fatalf("per-worker has %d slots for %d workers", len(stats.PerWorker), stats.Workers)
	}
	total := 0
	for _, c := range stats.PerWorker {
		total += c
	}
	if total != valid.Len() {
		t.Errorf("per-worker sum = %d, want %d", total, valid.Len())
	}
	if stats.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", stats.Wall)
	}

	// stats collection must not perturb the scores
	seq, err := KNNShapley(5, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, seq[i], scores[i])
		}
	}
}

// With obs enabled, the resolved worker count is exported as a gauge.
func TestKNNShapleyParallelWorkerGauge(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	train := blobs(40, 1.5, 707)
	valid := blobs(9, 1.5, 708)
	_, stats, err := KNNShapleyParallelStats(3, train, valid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Fatalf("workers = %d, want 4", stats.Workers)
	}
	if got := obs.Default().Gauge("importance_knnshapley_workers").Value(); got != 4 {
		t.Errorf("worker gauge = %v, want 4", got)
	}
	h := obs.Default().Histogram("importance_knnshapley_points_per_worker", nil)
	if got := h.Count(); got != 4 {
		t.Errorf("per-worker histogram count = %d, want 4", got)
	}
	if got := h.Sum(); got != 9 {
		t.Errorf("per-worker histogram sum = %v, want 9", got)
	}
}

func TestKNNShapleyParallelErrors(t *testing.T) {
	d := blobs(10, 1, 703)
	if _, err := KNNShapleyParallel(0, d, d, 2); err == nil {
		t.Error("expected error for k=0")
	}
}

// Datascope vs. exact group Shapley on a small JOIN pipeline: the additive
// provenance aggregation is an approximation there, but it must agree with
// the exact computation on who is most harmful.
func TestDatascopeJoinPipelineRankAgreement(t *testing.T) {
	// reuse the datascope test fixture machinery indirectly: build exact
	// group Shapley over the pipeline utility and compare the bottom-1.
	// (See datascope_test.go for the map-pipeline exactness test.)
	p, node, ft, valid := mapPipelineFixture(t, 12, 704)
	// corrupt one source label via its featurized labels copy
	// (map fixture: output row i <-> source row i)
	ft.Data.Y[3] = 1 - ft.Data.Y[3]
	scores, err := Datascope(ft, valid, "train", 12, DatascopeConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactShapley(12, KNNUtility(1, ft.Data, valid))
	if err != nil {
		t.Fatal(err)
	}
	if scores.BottomK(1)[0] != Scores(exact).BottomK(1)[0] {
		t.Errorf("datascope bottom-1 %d != exact bottom-1 %d",
			scores.BottomK(1)[0], Scores(exact).BottomK(1)[0])
	}
	_ = p
	_ = node
}
