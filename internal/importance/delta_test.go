package importance

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"nde/internal/nderr"
	"nde/internal/obs"
)

func assertScoresBitIdentical(t *testing.T, got, want Scores, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: score[%d] = %x, rebuild %x", ctx, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// KNNShapleyDelta must be Float64bits-identical to the full-rebuild oracle
// KNNShapley(k, train.Subset(keep), valid), for every worker count and
// random removal sets.
func TestKNNShapleyDeltaMatchesRebuild(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	r := rand.New(rand.NewSource(31))
	train := blobs(70, 1.5, 931)
	valid := blobs(20, 1.5, 932)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for trial := 0; trial < 4; trial++ {
			rm := make([]int, 1+r.Intn(12))
			for i := range rm {
				rm[i] = r.Intn(train.Len())
			}
			scores, keep, ix, err := KNNShapleyDelta(5, train, valid, rm, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(scores) != len(keep) || ix.Train.Len() != len(keep) {
				t.Fatalf("scores/keep/index sizes disagree: %d/%d/%d", len(scores), len(keep), ix.Train.Len())
			}
			oracle, err := KNNShapley(5, train.Subset(keep), valid)
			if err != nil {
				t.Fatal(err)
			}
			assertScoresBitIdentical(t, scores, oracle, "delta vs rebuild")
			// worker invariance: serial delta == this delta
			serial, _, _, err := KNNShapleyDelta(5, train, valid, rm, 1)
			if err != nil {
				t.Fatal(err)
			}
			assertScoresBitIdentical(t, scores, serial, "workers vs serial")
		}
	}
}

func TestKNNShapleyDeltaNilRemovalEqualsFull(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	train := blobs(40, 1.5, 933)
	valid := blobs(15, 1.5, 934)
	scores, keep, ix, err := KNNShapleyDelta(3, train, valid, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != train.Len() || ix.Derived() {
		t.Fatalf("nil removal: keep=%d derived=%v, want full base index", len(keep), ix.Derived())
	}
	full, err := KNNShapley(3, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresBitIdentical(t, scores, full, "nil removal")
}

func TestKNNShapleyDeltaErrors(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	train := blobs(10, 1.5, 935)
	valid := blobs(5, 1.5, 936)
	if _, _, _, err := KNNShapleyDelta(3, train, valid, []int{10}, 1); !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("out-of-range err = %v, want ErrDegenerateInput", err)
	}
	if _, _, _, err := KNNShapleyDelta(3, train, valid, []int{-1}, 1); !errors.Is(err, nderr.ErrDegenerateInput) {
		t.Fatalf("negative err = %v, want ErrDegenerateInput", err)
	}
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if _, _, _, err := KNNShapleyDelta(3, train, valid, all, 1); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("remove-all err = %v, want ErrEmptyInput", err)
	}
	if _, _, _, err := KNNShapleyDelta(0, train, valid, nil, 1); err == nil {
		t.Fatal("k=0 must error")
	}
}

// The derived index is registered under the reduced train's fingerprint:
// a follow-up full KNNShapley over the subset must hit the cache, not
// rebuild.
func TestKNNShapleyDeltaRegistersDerivedIndex(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()

	train := blobs(50, 1.5, 937)
	valid := blobs(20, 1.5, 938)
	_, keep, _, err := KNNShapleyDelta(5, train, valid, []int{3, 11, 29}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("importance_neighbor_index_derived_total").Value(); got != 1 {
		t.Fatalf("derived registrations = %d, want 1", got)
	}
	missesBefore := obs.Default().Counter("importance_neighbor_index_misses_total").Value()
	if _, err := KNNShapley(5, train.Subset(keep), valid); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("importance_neighbor_index_misses_total").Value(); got != missesBefore {
		t.Fatalf("full recompute on reduced data missed the cache (%d -> %d misses)", missesBefore, got)
	}
	if got := obs.Default().Counter("importance_neighbor_index_hits_total").Value(); got < 1 {
		t.Fatalf("expected a cache hit on the derived index, hits = %d", got)
	}
}

// Chained deltas: repeatedly removing rows via the session pattern stays
// identical to the oracle at every step.
func TestKNNShapleyDeltaChained(t *testing.T) {
	ResetNeighborIndexCache()
	defer ResetNeighborIndexCache()
	train := blobs(60, 1.5, 939)
	valid := blobs(18, 1.5, 940)
	cur := train
	r := rand.New(rand.NewSource(32))
	for step := 0; step < 4; step++ {
		rm := []int{r.Intn(cur.Len()), r.Intn(cur.Len())}
		scores, keep, _, err := KNNShapleyDelta(5, cur, valid, rm, 3)
		if err != nil {
			t.Fatal(err)
		}
		cur = cur.Subset(keep)
		oracle, err := KNNShapley(5, cur, valid)
		if err != nil {
			t.Fatal(err)
		}
		assertScoresBitIdentical(t, scores, oracle, "chained step")
	}
}
