package importance

import (
	"fmt"

	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/obs"
	"nde/internal/pipeline"
	"nde/internal/prov"
)

// AggMode selects how per-output-row importance is folded into source-tuple
// importance when one source tuple supports several pipeline outputs.
type AggMode int

const (
	// AggSum credits a source tuple with the total importance of every
	// output row it supports (Datascope's additive-utility decomposition).
	AggSum AggMode = iota
	// AggMean credits the average instead, de-emphasizing tuples that fan
	// out into many outputs (e.g. hot join keys).
	AggMean
)

// DatascopeConfig controls pipeline-aware Shapley computation.
type DatascopeConfig struct {
	// K is the number of neighbors of the kNN proxy model (default 1,
	// as in the Datascope paper's 1-NN reduction).
	K int
	// Aggregate selects the provenance-group aggregation (default AggSum).
	Aggregate AggMode
}

// Datascope computes importance scores for the rows of one *source table*
// of a provenance-tracked pipeline (Karlaš et al., ICLR 2024). It computes
// exact kNN-Shapley values on the pipeline's featurized output and pushes
// them back through the provenance polynomials: each source tuple is
// credited with the scores of the output rows whose derivations mention it.
// For map and fork pipelines this equals the exact Shapley value over
// source tuples under the kNN utility; for join pipelines it is the
// standard additive approximation.
func Datascope(ft *pipeline.Featurized, valid *ml.Dataset, table string, tableRows int, cfg DatascopeConfig) (Scores, error) {
	if tableRows <= 0 {
		return nil, fmt.Errorf("importance: datascope needs tableRows > 0, got %d", tableRows)
	}
	k := cfg.K
	if k <= 0 {
		k = 1
	}
	sp := obs.StartSpan("importance.datascope")
	sp.SetStr("table", table).SetInt("table_rows", int64(tableRows)).SetInt("outputs", int64(ft.Data.Len()))
	defer sp.End()
	rowScores, err := KNNShapley(k, ft.Data, valid)
	if err != nil {
		return nil, err
	}
	scores := make(Scores, tableRows)
	counts := make([]int, tableRows)
	for o, p := range ft.Prov {
		for _, v := range p.Vars() {
			if v.Table != table || v.Row >= tableRows {
				continue
			}
			scores[v.Row] += rowScores[o]
			counts[v.Row]++
		}
	}
	if cfg.Aggregate == AggMean {
		for i := range scores {
			if counts[i] > 0 {
				scores[i] /= float64(counts[i])
			}
		}
	}
	return scores, nil
}

// GroupShapley computes Shapley values over *provenance groups*: pipeline
// output rows are partitioned by the exact set of candidate source tuples
// they depend on, each group acts as one player (removing its tuples
// removes all of the group's outputs and no others), and Shapley values of
// the grouped kNN-utility game are computed — exactly for up to 20 groups,
// by Monte-Carlo permutation otherwise. Each source tuple inherits its
// group's value divided by the group's tuple count. This is Datascope's
// fork-pipeline construction, exact where the additive per-output
// aggregation of Datascope is an approximation.
func GroupShapley(ft *pipeline.Featurized, valid *ml.Dataset, table string, tableRows int, k int, mcPermutations int, seed int64) (Scores, error) {
	if tableRows <= 0 {
		return nil, fmt.Errorf("importance: group shapley needs tableRows > 0, got %d", tableRows)
	}
	if k <= 0 {
		k = 1
	}
	// partition output rows by their candidate-tuple set
	type group struct {
		tuples  []int
		outputs []int
	}
	byKey := make(map[string]*group)
	var order []string
	for o, p := range ft.Prov {
		var tuples []int
		for _, v := range p.Vars() {
			if v.Table == table && v.Row < tableRows {
				tuples = append(tuples, v.Row)
			}
		}
		if len(tuples) == 0 {
			continue // output independent of the candidate table
		}
		key := fmt.Sprint(tuples)
		g, ok := byKey[key]
		if !ok {
			g = &group{tuples: tuples}
			byKey[key] = g
			order = append(order, key)
		}
		g.outputs = append(g.outputs, o)
	}
	groups := make([]*group, len(order))
	for i, key := range order {
		groups[i] = byKey[key]
	}
	if len(groups) == 0 {
		return make(Scores, tableRows), nil
	}

	// the grouped game: a coalition of groups contributes the union of
	// their output rows; utility is the kNN utility on those rows
	base := KNNUtility(k, ft.Data, valid)
	groupUtility := func(subset []int) (float64, error) {
		var rows []int
		for _, gi := range subset {
			rows = append(rows, groups[gi].outputs...)
		}
		return base(rows)
	}

	sp := obs.StartSpan("importance.group_shapley")
	sp.SetStr("table", table).SetInt("groups", int64(len(groups)))
	defer sp.End()

	var groupScores Scores
	var err error
	if len(groups) <= 20 {
		groupScores, err = ExactShapley(len(groups), groupUtility)
	} else {
		perms := mcPermutations
		if perms <= 0 {
			perms = 50
		}
		groupScores, err = MCShapley(len(groups), groupUtility, MCShapleyConfig{Permutations: perms, Seed: seed})
	}
	if err != nil {
		return nil, err
	}
	scores := make(Scores, tableRows)
	for gi, g := range groups {
		share := groupScores[gi] / float64(len(g.tuples))
		for _, row := range g.tuples {
			scores[row] += share
		}
	}
	return scores, nil
}

// PipelineUtility builds a Utility over the rows of one source table of a
// pipeline: U(S) replays the pipeline with only the source tuples in S
// present (all other tables intact), featurizes the result, trains a fresh
// model and reports validation accuracy. It is the exact-but-expensive
// ground truth that Datascope approximates, used by tests and ablations.
func PipelineUtility(
	p *pipeline.Pipeline,
	out *pipeline.Node,
	featurize func(*pipeline.Result) (*ml.Dataset, error),
	newModel func() ml.Classifier,
	valid *ml.Dataset,
	table string,
) Utility {
	return func(subset []int) (float64, error) {
		keep := make(map[int]bool, len(subset))
		for _, i := range subset {
			keep[i] = true
		}
		res, err := p.Replay(out, func(id prov.TupleID) bool {
			return id.Table == table && !keep[id.Row]
		})
		if err != nil {
			return 0, err
		}
		if res.Frame.NumRows() == 0 {
			// the subset eliminated every training row; fall back to the
			// empty-train baseline (predicting class 0)
			empty := &ml.Dataset{X: linalg.NewMatrix(0, valid.Dim()), Y: nil}
			return ml.EvaluateAccuracy(newModel(), empty, valid)
		}
		train, err := featurize(res)
		if err != nil {
			return 0, err
		}
		return ml.EvaluateAccuracy(newModel(), train, valid)
	}
}
