package importance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// The headline determinism contract: MCShapleyParallel is bit-for-bit
// identical for any worker count at the same seed.
func TestMCShapleyParallelDeterministicAcrossWorkers(t *testing.T) {
	train := blobs(40, 1.5, 801)
	valid := blobs(20, 1.5, 802)
	u := KNNUtility(3, train, valid)
	cfg := MCShapleyConfig{Permutations: 12, Seed: 7, Truncation: 0.05}
	ref, err := MCShapleyParallel(train.Len(), u, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 50} {
		got, err := MCShapleyParallel(train.Len(), u, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: score %d differs: %v vs %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// Property: determinism holds for random shapes, seeds, truncation
// settings and worker counts.
func TestQuickMCShapleyParallelDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		train := randomDataset(r, 4+r.Intn(12), 2, 2)
		valid := randomDataset(r, 1+r.Intn(5), 2, 2)
		u := KNNUtility(1+r.Intn(3), train, valid)
		cfg := MCShapleyConfig{
			Permutations: 1 + r.Intn(8),
			Seed:         r.Int63(),
			Truncation:   float64(r.Intn(2)) * 0.05,
		}
		a, err := MCShapleyParallel(train.Len(), u, cfg, 1)
		if err != nil {
			return false
		}
		b, err := MCShapleyParallel(train.Len(), u, cfg, 1+r.Intn(7))
		if err != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// MCShapleyParallel must estimate the same values as the exact
// enumeration, like the serial estimator does — parallelism must not
// change what is being estimated.
func TestMCShapleyParallelApproximatesExact(t *testing.T) {
	train := blobs(10, 2.5, 803)
	valid := blobs(8, 2.5, 804)
	u := KNNUtility(3, train, valid)
	exact, err := ExactShapley(train.Len(), u)
	if err != nil {
		t.Fatal(err)
	}
	est, err := MCShapleyParallel(train.Len(), u, MCShapleyConfig{Permutations: 400, Seed: 11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(est[i]-exact[i]) > 0.1 {
			t.Errorf("score %d: estimate %v vs exact %v", i, est[i], exact[i])
		}
	}
	// efficiency axiom survives the parallel reduction
	all := make([]int, train.Len())
	for i := range all {
		all[i] = i
	}
	uFull, err := u(all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Sum()-uFull) > 0.05 {
		t.Errorf("sum %v vs U(D) %v", est.Sum(), uFull)
	}
}

func TestMCShapleyParallelPropagatesUtilityError(t *testing.T) {
	boom := errors.New("boom")
	u := func(subset []int) (float64, error) {
		if len(subset) > 3 {
			return 0, boom
		}
		return float64(len(subset)), nil
	}
	_, err := MCShapleyParallel(8, u, MCShapleyConfig{Permutations: 6, Seed: 1}, 4)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := MCShapleyParallel(0, u, MCShapleyConfig{}, 1); err == nil {
		t.Error("expected error for n = 0")
	}
}

// Truncation must cut utility evaluations in the parallel path too.
func TestMCShapleyParallelTruncationCutsEvals(t *testing.T) {
	train := blobs(30, 2.5, 805)
	valid := blobs(15, 2.5, 806)
	u := KNNUtility(3, train, valid)
	count := func(trunc float64) int {
		n := 0
		counted := func(subset []int) (float64, error) {
			n++
			return u(subset)
		}
		cfg := MCShapleyConfig{Permutations: 5, Seed: 3, Truncation: trunc}
		if _, err := MCShapleyParallel(train.Len(), counted, cfg, 1); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if with, without := count(0.05), count(0); with >= without {
		t.Errorf("truncation did not cut evals: %d vs %d", with, without)
	}
}

func TestPermSeedIndependentOfWorkerLayout(t *testing.T) {
	seen := map[int64]int{}
	for p := 0; p < 1000; p++ {
		seen[permSeed(42, p)]++
	}
	if len(seen) != 1000 {
		t.Errorf("permSeed collisions: %d distinct seeds for 1000 permutations", len(seen))
	}
	if permSeed(1, 0) == permSeed(2, 0) {
		t.Error("different config seeds produced the same permutation seed")
	}
}

func BenchmarkMCShapleyParallel(b *testing.B) {
	train := blobs(60, 1.5, 807)
	valid := blobs(30, 1.5, 808)
	u := KNNUtility(5, train, valid)
	cfg := MCShapleyConfig{Permutations: 10, Seed: 5, Truncation: 0.01}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MCShapleyParallel(train.Len(), u, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
