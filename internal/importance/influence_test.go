package importance

import (
	"testing"

	"nde/internal/linalg"
	"nde/internal/ml"
)

func TestInfluenceFlaggedPointsScoreLow(t *testing.T) {
	clean := blobs(150, 2.5, 31)
	valid := blobs(80, 2.5, 32)
	dirty, flipped := flipLabels(clean, 0.1, 33)
	scores, err := Influence(dirty, valid, InfluenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != dirty.Len() {
		t.Fatalf("scores len = %d", len(scores))
	}
	prec := scores.PrecisionAtK(flipped, len(flipped))
	if prec < 0.6 {
		t.Errorf("influence precision@k = %v, want >= 0.6", prec)
	}
}

func TestInfluenceHelpfulPointsPositive(t *testing.T) {
	train := blobs(100, 3, 41)
	valid := blobs(50, 3, 42)
	scores, err := Influence(train, valid, InfluenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// on clean, well-separated data the mean influence should be >= 0
	// (points on average help)
	if scores.Sum() < 0 {
		t.Errorf("total influence %v < 0 on clean data", scores.Sum())
	}
}

func TestInfluenceErrors(t *testing.T) {
	empty := &ml.Dataset{X: linalg.NewMatrix(0, 2), Y: nil}
	d := blobs(10, 1, 1)
	if _, err := Influence(empty, d, InfluenceConfig{}); err == nil {
		t.Error("expected error for empty train")
	}
	if _, err := Influence(d, empty, InfluenceConfig{}); err == nil {
		t.Error("expected error for empty valid")
	}
}

// Influence should approximate actual LOO retraining deltas in sign for the
// most extreme points: the lowest-influence point's removal should not hurt
// validation accuracy more than the highest-influence point's removal.
func TestInfluenceOrdersExtremesLikeLOO(t *testing.T) {
	clean := blobs(60, 2, 51)
	valid := blobs(40, 2, 52)
	dirty, _ := flipLabels(clean, 0.15, 53)
	scores, err := Influence(dirty, valid, InfluenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	worst := scores.BottomK(1)[0]
	best := scores.TopK(1)[0]
	u := AccuracyUtility(func() ml.Classifier { return ml.NewLogisticRegression() }, dirty, valid)
	without := func(i int) []int {
		var s []int
		for j := 0; j < dirty.Len(); j++ {
			if j != i {
				s = append(s, j)
			}
		}
		return s
	}
	accNoWorst, err := u(without(worst))
	if err != nil {
		t.Fatal(err)
	}
	accNoBest, err := u(without(best))
	if err != nil {
		t.Fatal(err)
	}
	if accNoWorst < accNoBest {
		t.Errorf("removing worst point gave %v, removing best gave %v", accNoWorst, accNoBest)
	}
}
