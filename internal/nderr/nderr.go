// Package nderr defines the degenerate-input error family shared by every
// layer of nde. The library's contract is that dirty data — the very thing
// it exists to debug — never panics: boundary code (dataset construction,
// kernel index builds, the public facade) classifies bad input with one of
// these sentinels and returns it wrapped with position context, so callers
// can both match the class with errors.Is and read where the problem sits.
//
// Every sub-sentinel wraps ErrDegenerateInput, so
//
//	errors.Is(err, nderr.ErrDegenerateInput)
//
// is true for the whole family, while errors.Is against the specific
// sentinel (say ErrNonFinite) narrows to one corruption class. Panics
// remain only in Must* helpers and in internal kernels whose preconditions
// are validated upstream — programmer bugs, not data errors.
package nderr

import (
	"errors"
	"fmt"
)

// ErrDegenerateInput is the root of the family: some input was structurally
// unusable (NaN/Inf features, empty sets, shape mismatches, single-class
// labels, impossible neighborhood sizes).
var ErrDegenerateInput = errors.New("degenerate input")

var (
	// ErrNonFinite marks NaN or ±Inf feature values.
	ErrNonFinite = fmt.Errorf("%w: non-finite feature value (NaN or Inf)", ErrDegenerateInput)
	// ErrEmptyInput marks empty frames, datasets, or validation sets.
	ErrEmptyInput = fmt.Errorf("%w: empty input", ErrDegenerateInput)
	// ErrShapeMismatch marks length or dimension disagreements between
	// inputs that must align row for row.
	ErrShapeMismatch = fmt.Errorf("%w: shape mismatch", ErrDegenerateInput)
	// ErrSingleClass marks label sets with fewer than two classes, on which
	// importance and learning methods are meaningless.
	ErrSingleClass = fmt.Errorf("%w: single-class labels", ErrDegenerateInput)
	// ErrBadK marks neighborhood sizes outside [1, n].
	ErrBadK = fmt.Errorf("%w: invalid neighborhood size", ErrDegenerateInput)
)

// NonFinite returns an ErrNonFinite wrapped with the offending position.
func NonFinite(what string, row, col int, v float64) error {
	return fmt.Errorf("%s: value %v at row %d, col %d: %w", what, v, row, col, ErrNonFinite)
}

// Empty returns an ErrEmptyInput naming the empty input.
func Empty(what string) error {
	return fmt.Errorf("%s: %w", what, ErrEmptyInput)
}

// Mismatch returns an ErrShapeMismatch naming the two disagreeing sizes.
func Mismatch(what string, a, b int) error {
	return fmt.Errorf("%s: %d vs %d: %w", what, a, b, ErrShapeMismatch)
}

// SingleClass returns an ErrSingleClass naming the offending label set.
func SingleClass(what string, n int) error {
	return fmt.Errorf("%s: %d rows all share one label: %w", what, n, ErrSingleClass)
}

// BadK returns an ErrBadK for a neighborhood size k over n candidates.
func BadK(what string, k, n int) error {
	return fmt.Errorf("%s: k=%d over %d rows: %w", what, k, n, ErrBadK)
}
