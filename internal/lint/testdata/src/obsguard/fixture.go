// Package fixture exercises the obsguard analyzer against the real
// nde/internal/obs package.
package fixture

import (
	"fmt"

	"nde/internal/obs"
)

// Hot concatenates a metric name at the call site: allocates on every
// call even with obs off.
func Hot(name string, n int) {
	obs.Inc(name + "_total") // want "allocates via non-constant string concatenation"
	obs.Inc("const_total")
	obs.SetGauge("depth", float64(n))
}

// ConstConcat is folded by the compiler: no finding.
func ConstConcat() {
	obs.Inc("pre" + "_total")
}

// Guarded sites only pay when telemetry is on: no finding.
func Guarded(name string, v float64) {
	if obs.Enabled() {
		obs.ObserveWith("hist", v, obs.ExpBuckets(1, 2, 8))
		obs.Inc(name + "_total")
	}
}

// EarlyReturn uses the guard-at-the-top shape: no finding.
func EarlyReturn(name string, n int) {
	if !obs.Enabled() {
		return
	}
	obs.SetGauge(name+"_depth", float64(n))
}

// Buckets allocates the bounds slice unguarded.
func Buckets(v float64) {
	obs.ObserveWith("hist", v, obs.ExpBuckets(1, 2, 8)) // want `allocates via obs.ExpBuckets`
}

// Slice passes a composite literal.
func Slice(v float64) {
	obs.ObserveWith("hist", v, []float64{1, 2, 4}) // want "allocates via a composite literal"
}

// Formatted builds the name with fmt.
func Formatted(i int, v float64) {
	obs.SetGauge(fmt.Sprintf("worker_%d", i), v) // want `allocates via fmt.Sprintf`
}

// Itoa converts with strconv-free int-to-string conversion.
func Itoa(i int) {
	obs.Inc("w" + string(rune(i))) // want "allocates via non-constant string concatenation"
}
