// Package fixture exercises the determinism analyzer. Deliberately
// unformatted in places — the gofmt gate excludes testdata.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// SumScores folds float rounding in map order — the classic silent
// nondeterminism.
func SumScores(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "map iteration order escapes in SumScores via floating-point accumulation"
		total += v
	}
	return total
}

// SortedKeys is the sanctioned collect-then-sort pattern: no finding.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectUnsorted lets map order escape through an unsorted slice.
func CollectUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order escapes in CollectUnsorted via append to out"
		out = append(out, v)
	}
	return out
}

// Normalize updates each entry once, keyed by the range variable: order
// cannot matter, no finding.
func Normalize(m map[string]float64, n float64) {
	for k := range m {
			m[k] /= n
	}
}

// LocalAccumulator resets its accumulator every iteration: no finding.
func LocalAccumulator(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// PrintAll writes output in map order.
func PrintAll(m map[int]int) {
	for k, v := range m { // want "map iteration order escapes in PrintAll via fmt.Println output"
		fmt.Println(k, v)
	}
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in Stamp"
}

// Roll uses the process-global generator.
func Roll() int {
	return rand.Intn(6) // want `global math/rand.Intn in Roll`
}

// Seeded uses the sanctioned seeded generator: no finding.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Spawn launches a raw goroutine outside internal/par.
func Spawn(f func()) {
	go f() // want "raw go statement in Spawn"
}
