// Package fixture exercises the panicsite analyzer with the shapes the
// retired awk scanner mis-parsed: multi-line signatures, closures,
// method receivers, and shadowed panic identifiers.
package fixture

// Exported has a multi-line signature.
func Exported(
	a int,
	b int,
) int {
	if a < 0 {
		panic("negative a") // want "panic in exported function Exported"
	}
	return a + b
}

// MustValue is a Must* helper: panics are its contract, no finding.
func MustValue(x int) int {
	if x < 0 {
		panic("MustValue: negative")
	}
	return x
}

// unexported panics are internal kernels: no finding.
func unexported(x int) int {
	if x < 0 {
		panic("unexported: negative")
	}
	return x
}

type T struct{}

// Check is an exported method; the key drops the receiver like the awk
// format did.
func (T) Check(x int) {
	if x < 0 {
		panic("method precondition") // want "panic in exported function Check"
	}
}

// Closure panics inside a function literal; attribution goes to the
// enclosing top-level declaration.
func Closure() func() {
	return func() {
		panic("from closure") // want "panic in exported function Closure"
	}
}

// Shadowed calls a local panic, not the builtin: no finding.
func Shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
