// Package fixture exercises the errwrap analyzer.
package fixture

import (
	"errors"
	"fmt"
)

// ErrRoot is a package-level sentinel — a legitimate error root, no
// finding.
var ErrRoot = errors.New("fixture: root sentinel")

// Bare mints an unclassifiable error at call time.
func Bare() error {
	return errors.New("bare") // want "errors.New inside Bare"
}

// NoWrap formats without %w, so the chain has no sentinel.
func NoWrap(n int) error {
	return fmt.Errorf("bad row %d", n) // want `fmt.Errorf without %w inside NoWrap`
}

// Wrapped carries the sentinel: no finding.
func Wrapped(n int) error {
	return fmt.Errorf("bad row %d: %w", n, ErrRoot)
}

// EscapedPercent has %%w as a literal, not a verb.
func EscapedPercent(err error) error {
	return fmt.Errorf("100%%written: %v", err) // want `fmt.Errorf without %w inside EscapedPercent`
}

// IndexedWrap uses an argument-indexed wrap verb: no finding.
func IndexedWrap(err error) error {
	return fmt.Errorf("wrapped: %[1]w", err)
}

// Assigned catches construction outside return statements too.
func Assigned() error {
	err := errors.New("assigned") // want "errors.New inside Assigned"
	return err
}
