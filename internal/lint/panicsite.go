package lint

import (
	"go/ast"
	"strings"
)

// Panicsite is the AST-accurate replacement for scripts/panic_audit.sh:
// every panic() call that sits inside an exported, non-Must* top-level
// function (or method — the awk scanner dropped receivers, and so does
// the key format) must be allowlisted in scripts/lint/panicsite.txt.
//
// The repo's error-handling contract keeps panics only for programmer
// bugs: Must* helpers, and internal kernels whose preconditions are
// validated upstream (README "Error handling contract"). An allowlist
// entry is the reviewable record of that choice. Unlike the awk scanner,
// the AST walk attributes panics correctly through multi-line
// signatures, closures, and method receivers, and ignores shadowed
// `panic` identifiers.
var Panicsite = &Analyzer{
	Name: "panicsite",
	Doc:  "panic() inside an exported non-Must* function must be an allowlisted programmer-bug precondition",
	Run: func(p *Pass) {
		p.InspectFuncs(func(fn *ast.FuncDecl, n ast.Node) bool {
			name := fn.Name.Name
			if !ast.IsExported(name) || strings.HasPrefix(name, "Must") {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(p.Pkg.Info, call, "panic") {
				return true
			}
			p.Report(call, fn, "panic in exported function %s — return an error (nderr sentinel) or allowlist a deliberate programmer-bug precondition", name)
			return true
		})
	},
}
