package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose results must be bit-for-bit
// reproducible across worker counts and runs — the kNN-Shapley
// determinism contract (DESIGN §7/§8) plus everything feeding it.
var deterministicPkgs = []string{
	"internal/par", "internal/linalg", "internal/ml", "internal/ann",
	"internal/importance", "internal/pipeline", "internal/cleaning",
}

// Determinism flags the three constructs that silently break bit-for-bit
// reproducibility in the deterministic packages:
//
//   - ranging over a map where the (random) iteration order escapes into
//     an append, a floating-point reduction, output, or a channel send —
//     collecting keys and sorting before use is the sanctioned pattern
//     and is recognized as safe;
//   - time.Now and the global math/rand generator — wall-clock and
//     process-global randomness; seeded rand.New(rand.NewSource(seed))
//     is the sanctioned source;
//   - raw `go` statements outside internal/par — ad-hoc goroutines skip
//     the pool's deterministic index-order reduction.
//
// Telemetry wall-clock reads (span timing in par and pipeline.exec) are
// deliberate and allowlisted in scripts/lint/determinism.txt.
var Determinism = &Analyzer{
	Name:    "determinism",
	Doc:     "no order-escaping map iteration, wall-clock/global randomness, or raw goroutines in deterministic packages",
	Applies: pkgSet(deterministicPkgs...),
	Run:     runDeterminism,
}

func runDeterminism(p *Pass) {
	inPar := p.Mod.relPkg(p.Pkg.Path) == "internal/par"
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sorted := sortedObjects(p, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if !inPar {
						p.Report(n, fn, "raw go statement in %s — route parallelism through internal/par so reductions stay index-ordered", fn.Name.Name)
					}
				case *ast.CallExpr:
					checkNondeterministicCall(p, fn, n)
				case *ast.RangeStmt:
					checkMapRange(p, fn, n, sorted)
				}
				return true
			})
		}
	}
}

// checkNondeterministicCall flags time.Now and the global math/rand
// generator. Seeded generators (rand.New, rand.NewSource, rand.NewZipf)
// and *rand.Rand methods are the sanctioned randomness and pass.
func checkNondeterministicCall(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	callee := calleeFunc(p.Pkg.Info, call)
	switch {
	case isPkgFunc(callee, "time") && callee.Name() == "Now":
		p.Report(call, fn, "time.Now in %s — wall-clock reads are nondeterministic; keep timing behind obs and allowlist deliberate telemetry", fn.Name.Name)
	case isPkgFunc(callee, "math/rand") || isPkgFunc(callee, "math/rand/v2"):
		switch callee.Name() {
		case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
			return
		}
		p.Report(call, fn, "global math/rand.%s in %s — use a seeded rand.New(rand.NewSource(seed)) so runs reproduce", callee.Name(), fn.Name.Name)
	}
}

// checkMapRange flags a range over a map whose iteration order escapes.
func checkMapRange(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	tv, ok := p.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := orderEscape(p, rng, sorted); reason != "" {
		p.Report(rng, fn, "map iteration order escapes in %s via %s — iterate sorted keys instead (or sort the collected slice before use)", fn.Name.Name, reason)
	}
}

// orderEscape scans a map-range body for constructs whose result depends
// on iteration order, returning a description of the first one found.
// Two shapes are recognized as order-insensitive and pass: appends into
// slices later handed to sort/slices calls in the same function (the
// sanctioned collect-then-sort pattern), and compound updates indexed by
// the range variables themselves (each entry is touched once, so order
// cannot matter).
func orderEscape(p *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) string {
	rangeVars := rangeVarObjects(p, rng)
	reason := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "a channel send"
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && isFloatAccumulate(p, n, rng, rangeVars) {
				reason = "floating-point accumulation (rounding is order-sensitive)"
			}
		case *ast.CallExpr:
			if r := callEscape(p, n, sorted); r != "" {
				reason = r
			}
		}
		return true
	})
	return reason
}

// rangeVarObjects resolves the key/value loop variables of a range
// statement.
func rangeVarObjects(p *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := p.Pkg.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// isFloatAccumulate reports a compound assignment (+=, -=, *=, /=) onto
// a float-typed lvalue that accumulates across iterations: the target
// lives outside the loop body and is not indexed by a range variable.
func isFloatAccumulate(p *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, rangeVars map[types.Object]bool) bool {
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
	default:
		return false
	}
	lhs := ast.Unparen(as.Lhs[0])
	tv, ok := p.Pkg.Info.Types[lhs]
	if !ok {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		// A loop-local accumulator resets every iteration; only targets
		// declared outside the body carry order-dependent rounding out.
		if obj := p.Pkg.Info.Uses[l]; obj != nil &&
			obj.Pos() >= rng.Body.Pos() && obj.Pos() < rng.Body.End() {
			return false
		}
	case *ast.IndexExpr:
		// m[k] op= v with k a range variable touches each entry once.
		usesRangeVar := false
		ast.Inspect(l.Index, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && rangeVars[p.Pkg.Info.Uses[id]] {
				usesRangeVar = true
			}
			return true
		})
		if usesRangeVar {
			return false
		}
	}
	return true
}

// callEscape classifies a call inside a map-range body as order-escaping.
func callEscape(p *Pass, call *ast.CallExpr, sorted map[types.Object]bool) string {
	if isBuiltin(p.Pkg.Info, call, "append") && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := p.Pkg.Info.Uses[id]; obj != nil && sorted[obj] {
				return "" // collect-then-sort pattern
			}
			return "append to " + id.Name + " (unsorted afterwards)"
		}
		return "append (target not sorted afterwards)"
	}
	callee := calleeFunc(p.Pkg.Info, call)
	if callee == nil {
		return ""
	}
	if isPkgFunc(callee, "fmt") {
		switch callee.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + callee.Name() + " output"
		}
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch callee.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return "a ." + callee.Name() + " call"
		}
	}
	return ""
}

// sortedObjects collects the objects passed to any sort.* or slices.*
// call in the function body — the targets of the sanctioned
// collect-then-sort pattern.
func sortedObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p.Pkg.Info, call)
		if callee == nil || (!isPkgFunc(callee, "sort") && !isPkgFunc(callee, "slices")) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := p.Pkg.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
