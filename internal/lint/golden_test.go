package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// repoModule loads the whole repo once per test process — module loading
// type-checks the stdlib closure from source, so every test shares it.
var repoModule = sync.OnceValues(func() (*Module, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return LoadModule(root)
})

func mustModule(t *testing.T) *Module {
	t.Helper()
	m, err := repoModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return m
}

// TestGolden drives each analyzer over its fixture package under
// testdata/src/<name>/ and checks the findings against the `// want
// "regexp"` comments: every want must be hit on its line, and every
// finding must be wanted.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			mod := mustModule(t)
			dir := filepath.Join("testdata", "src", a.Name)
			pkg, err := mod.CheckDir(dir, "fixture/"+a.Name)
			if err != nil {
				t.Fatalf("CheckDir(%s): %v", dir, err)
			}
			diags := RunAnalyzer(a, mod, pkg)
			wants := parseWants(t, dir)

			matched := make(map[*want]bool)
			for _, d := range diags {
				loc := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
				ok := false
				for _, w := range wants[loc] {
					if w.re.MatchString(d.Message) {
						matched[w] = true
						ok = true
					}
				}
				if !ok {
					t.Errorf("unexpected finding at %s: %s", loc, d.Message)
				}
			}
			for loc, ws := range wants {
				for _, w := range ws {
					if !matched[w] {
						t.Errorf("missing finding at %s: want match for %q", loc, w.re)
					}
				}
			}
		})
	}
}

type want struct{ re *regexp.Regexp }

// wantRx pulls the quoted or backquoted expectation strings out of a
// `// want` comment.
var wantRx = regexp.MustCompile("// want (.+)$")

var quotedRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// parseWants scans the fixture sources for `// want "regexp"` comments,
// keyed by "file.go:line".
func parseWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			loc := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, q := range quotedRx.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if pat == "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", loc, pat, err)
				}
				out[loc] = append(out[loc], &want{re: re})
			}
			if len(out[loc]) == 0 {
				t.Fatalf("%s: want comment with no pattern", loc)
			}
		}
	}
	return out
}
