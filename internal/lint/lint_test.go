package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHasWrapVerb(t *testing.T) {
	cases := []struct {
		format string
		want   bool
	}{
		{"plain", false},
		{"%v", false},
		{"%w", true},
		{"x: %w", true},
		{"%d rows: %w", true},
		{"%%w literal", false},
		{"100%%written: %v", false},
		{"%[1]w", true},
		{"%-8w", true},
		{"%ww %d", true},
		{"", false},
		{"trailing %", false},
	}
	for _, c := range cases {
		if got := hasWrapVerb(c.format); got != c.want {
			t.Errorf("hasWrapVerb(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestAllowlistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	diags := []Diagnostic{
		{Analyzer: "panicsite", File: "a.go", Func: "F"},
		{Analyzer: "panicsite", File: "a.go", Func: "F"}, // duplicate key collapses
		{Analyzer: "panicsite", File: "b.go", Func: "G"},
		{Analyzer: "determinism", File: "c.go", Func: "H"},
	}
	analyzers := Analyzers()
	if err := WriteAllowlists(dir, analyzers, diags); err != nil {
		t.Fatal(err)
	}
	al, err := LoadAllowlists(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if !al["panicsite"]["a.go:F"] || !al["panicsite"]["b.go:G"] || !al["determinism"]["c.go:H"] {
		t.Fatalf("round trip lost entries: %v", al)
	}
	if len(al["panicsite"]) != 2 {
		t.Fatalf("panicsite allowlist = %v, want 2 entries", al["panicsite"])
	}
	// Analyzers with no findings must not leave files behind.
	if _, err := os.Stat(filepath.Join(dir, "errwrap.txt")); !os.IsNotExist(err) {
		t.Fatalf("errwrap.txt should not exist: %v", err)
	}
}

func TestAllowlistUpdatePreservesComments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "panicsite.txt")
	seed := "# rationale line one\n# rationale line two\nstale.go:Old\n"
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{{Analyzer: "panicsite", File: "a.go", Func: "F"}}
	if err := WriteAllowlists(dir, Analyzers(), diags); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.HasPrefix(got, "# rationale line one\n# rationale line two\n") {
		t.Errorf("leading comments not preserved:\n%s", got)
	}
	if strings.Contains(got, "stale.go:Old") {
		t.Errorf("stale entry survived -update:\n%s", got)
	}
	if !strings.Contains(got, "a.go:F") {
		t.Errorf("fresh entry missing:\n%s", got)
	}
}

func TestLoadAllowlistsSkipsCommentsAndBlanks(t *testing.T) {
	dir := t.TempDir()
	body := "# header\n\na.go:F\n  b.go:G  \n# trailer\n"
	if err := os.WriteFile(filepath.Join(dir, "errwrap.txt"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	al, err := LoadAllowlists(dir, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if !al["errwrap"]["a.go:F"] || !al["errwrap"]["b.go:G"] || len(al["errwrap"]) != 2 {
		t.Fatalf("parsed allowlist = %v", al["errwrap"])
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("root %s has no go.mod: %v", root, err)
	}
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("FindModuleRoot in a bare temp dir should fail")
	}
}

// TestModuleCoverage pins the loader against silent scope loss: the
// packages the analyzers exist for must all be loaded.
func TestModuleCoverage(t *testing.T) {
	mod := mustModule(t)
	want := []string{
		"nde", "nde/internal/serve", "nde/internal/par", "nde/internal/linalg",
		"nde/internal/ml", "nde/internal/ann", "nde/internal/importance",
		"nde/internal/pipeline", "nde/internal/cleaning", "nde/internal/obs",
		"nde/cmd/nde-lint",
	}
	have := make(map[string]bool)
	for _, p := range mod.Packages() {
		have[p.Path] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("package %s not loaded", w)
		}
	}
}
