package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfLint is the gate behind `make lint`: the tree must produce
// zero findings beyond the checked-in scripts/lint allowlists.
func TestSelfLint(t *testing.T) {
	mod := mustModule(t)
	allow, err := LoadAllowlists(filepath.Join(mod.Root, "scripts", "lint"), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, Analyzers(), allow)
	for _, d := range Violations(diags) {
		t.Errorf("%s:%d: [%s] %s (key %s)", d.File, d.Line, d.Analyzer, d.Message, d.Key())
	}
	if len(diags) == 0 {
		t.Fatal("self-lint produced zero findings — the allowlisted panic sites alone should appear; the loader is likely skipping packages")
	}
}

// TestPanicsiteSupersetOfRetiredAudit pins the migration contract: the
// AST analyzer must report every panic site the retired awk scanner
// (scripts/panic_audit.sh) had in its allowlist at migration time. The
// snapshot lives in testdata/legacy_panic_allowlist.txt; prune an entry
// only when the panic site itself is removed from the tree.
func TestPanicsiteSupersetOfRetiredAudit(t *testing.T) {
	mod := mustModule(t)
	diags := Run(mod, []*Analyzer{Panicsite}, Allowlists{})
	found := make(map[string]bool, len(diags))
	for _, d := range diags {
		found[d.Key()] = true
	}
	data, err := os.ReadFile(filepath.Join("testdata", "legacy_panic_allowlist.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if !found[key] {
			t.Errorf("legacy awk audit entry %s not reported by panicsite", key)
		}
	}
}

// TestAllowlistsMatchTree keeps the checked-in allowlists honest in the
// other direction: every entry must still correspond to at least one
// finding, so stale exceptions die with the code they excused.
func TestAllowlistsMatchTree(t *testing.T) {
	mod := mustModule(t)
	dir := filepath.Join(mod.Root, "scripts", "lint")
	allow, err := LoadAllowlists(dir, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, Analyzers(), allow)
	used := make(map[string]map[string]bool)
	for _, d := range diags {
		if used[d.Analyzer] == nil {
			used[d.Analyzer] = make(map[string]bool)
		}
		used[d.Analyzer][d.Key()] = true
	}
	for name, keys := range allow {
		for key := range keys {
			if !used[name][key] {
				t.Errorf("stale %s allowlist entry %s: no such finding on the tree (run `go run ./cmd/nde-lint -update`)", name, key)
			}
		}
	}
}
