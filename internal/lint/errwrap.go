package lint

import (
	"go/ast"
	"go/constant"
)

// Errwrap guards the typed error contract on the wire-facing surface:
// the facade (root package) and internal/serve promise that every error
// they produce is classifiable by nde.ErrorClass, which matches nderr
// sentinels with errors.Is. An error minted inside a function body with
// errors.New or a %w-less fmt.Errorf has no sentinel in its chain — it
// classifies as the opaque "error" and the ledger and JSON envelope lose
// the corruption class. Package-level `errors.New` sentinels are fine
// (they are roots, like nderr's own family) — the analyzer only flags
// ad-hoc construction inside functions.
var Errwrap = &Analyzer{
	Name:    "errwrap",
	Doc:     "facade/serve errors must wrap a sentinel via %w so nde.ErrorClass can classify them",
	Applies: pkgSet("", "internal/serve"),
	Run: func(p *Pass) {
		p.InspectFuncs(func(fn *ast.FuncDecl, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p.Pkg.Info, call)
			switch {
			case isPkgFunc(callee, "errors") && callee.Name() == "New":
				p.Report(call, fn, "errors.New inside %s — wrap an nderr sentinel with fmt.Errorf(...%%w...) or hoist a package-level sentinel", fn.Name.Name)
			case isPkgFunc(callee, "fmt") && callee.Name() == "Errorf":
				if format, ok := constFormat(p, call); ok && !hasWrapVerb(format) {
					p.Report(call, fn, "fmt.Errorf without %%w inside %s — wrap an nderr sentinel so nde.ErrorClass keeps classifying it", fn.Name.Name)
				}
			}
			return true
		})
	},
}

// constFormat extracts the constant format string of a fmt.Errorf call.
func constFormat(p *Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// hasWrapVerb reports whether a fmt format string contains a %w verb
// (including forms like %[1]w), ignoring literal %%.
func hasWrapVerb(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision, and argument indexes up to the verb.
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				if c == 'w' {
					return true
				}
				break
			}
			i++
		}
	}
	return false
}
