// Package lint is the repo's contract-enforcing static analysis pass.
// It loads the module with go/parser + go/types (stdlib only — the same
// no-external-deps ethos as the rest of the tree), runs a small set of
// analyzers that encode the contracts the paper's debugging workflow
// depends on (bit-for-bit determinism, a panic-free facade, nderr error
// wrapping, zero-alloc observability), and reports findings keyed by
// file:function so deliberate exceptions can be allowlisted under
// scripts/lint/. `cmd/nde-lint` is the driver; `make lint` the entry
// point. See DESIGN.md §10 "Static analysis contract".
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Module is the loaded, type-checked view of one Go module.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path from go.mod (e.g. "nde")
	Fset *token.FileSet

	pkgs map[string]*Package // by import path, fully checked
	dirs map[string]string   // import path -> absolute dir
	std  types.Importer      // stdlib fallback (source importer)

	checking map[string]bool // cycle detection during type-checking
}

// Package is one type-checked package: syntax plus types.Info, which is
// what the analyzers consume.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// The source importer type-checks stdlib dependencies from GOROOT source.
// Cgo-flavored variants of net/os-user would drag the cgo tool in, so the
// loader pins the pure-Go build configuration once for the process.
var disableCgo sync.Once

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod. It is how the driver locates the repo root regardless of the
// working directory it is invoked from.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata, hidden, and underscore directories). The module's
// own imports resolve recursively from source; stdlib imports resolve
// through the go/importer source importer.
func LoadModule(root string) (*Module, error) {
	disableCgo.Do(func() { build.Default.CgoEnabled = false })
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:     root,
		Path:     modPath,
		Fset:     token.NewFileSet(),
		pkgs:     make(map[string]*Package),
		dirs:     make(map[string]string),
		checking: make(map[string]bool),
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil)

	if err := m.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(m.dirs))
	for p := range m.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := m.check(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Packages returns every loaded package, sorted by import path.
func (m *Module) Packages() []*Package {
	paths := make([]string, 0, len(m.pkgs))
	for p := range m.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, p := range paths {
		out[i] = m.pkgs[p]
	}
	return out
}

// Rel returns the repo-root-relative slash-separated path of an absolute
// filename — the spelling used in diagnostic keys and allowlists.
func (m *Module) Rel(filename string) string {
	rel, err := filepath.Rel(m.Root, filename)
	if err != nil {
		return filename
	}
	return filepath.ToSlash(rel)
}

// discover walks the tree collecting every directory that holds non-test
// Go files and records its import path.
func (m *Module) discover() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(m.Root, path)
		if err != nil {
			return err
		}
		ip := m.Path
		if rel != "." {
			ip = m.Path + "/" + filepath.ToSlash(rel)
		}
		m.dirs[ip] = path
		return nil
	})
}

// goFiles lists the non-test .go files of dir that match the default
// build constraints (so e.g. a //go:build race variant does not collide
// with its !race twin), sorted for deterministic parse and diagnostic
// order.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		files = append(files, filepath.Join(dir, n))
	}
	sort.Strings(files)
	return files, nil
}

// check type-checks one module package (memoized), recursing into module
// dependencies through the importer.
func (m *Module) check(path string) (*Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if m.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	dir, ok := m.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %s", path)
	}
	m.checking[path] = true
	defer delete(m.checking, path)

	pkg, err := m.checkDir(dir, path)
	if err != nil {
		return nil, err
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

// CheckDir parses and type-checks a single directory outside the normal
// module layout (the golden-test fixtures under testdata) as import path
// asPath. Imports of the module's own packages still resolve, so fixtures
// can call into internal/obs and friends.
func (m *Module) CheckDir(dir, asPath string) (*Package, error) {
	return m.checkDir(dir, asPath)
}

func (m *Module) checkDir(dir, path string) (*Package, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, m.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves the module's own import paths from source and
// delegates everything else (the stdlib) to the source importer.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		p, err := m.check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
