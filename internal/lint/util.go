package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method object a call invokes, or
// nil for builtins, conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is a package-level function of pkgPath
// (methods have a receiver and never match).
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fromPkg reports whether fn (function or method) belongs to pkgPath.
func fromPkg(fn *types.Func, pkgPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isBuiltin reports whether the call invokes the named builtin (panic,
// append, ...), resolving through Uses so shadowed names don't match.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isConversion reports whether the call is a type conversion, and if so
// to which type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// pkgSet builds an Applies predicate matching the given module-relative
// package paths ("" is the module root package).
func pkgSet(rels ...string) func(string) bool {
	set := make(map[string]bool, len(rels))
	for _, s := range rels {
		set[s] = true
	}
	return func(relPkg string) bool { return set[relPkg] }
}
