package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotPkgs are the kernels on the measured paths: their obs call sites
// must be zero-alloc while observability is off (the PR-1 contract,
// enforced dynamically by alloc benchmarks and here statically).
var hotPkgs = []string{
	"internal/par", "internal/linalg", "internal/ml", "internal/ann",
	"internal/importance",
}

// Obsguard flags obs calls in hot kernels whose arguments force an
// allocation before the enabled check inside obs can short-circuit:
// fmt.Sprintf/strconv formatting, non-constant string concatenation,
// string<->[]byte conversions, composite literals, bucket constructors,
// and closures. Arguments evaluate at the call site, so `obs.Inc(name +
// "_total")` allocates on every call even when obs is off. Sites
// lexically inside an `if obs.Enabled() { ... }` block — or in a
// function that opens with `if !obs.Enabled() { return }` — only pay
// when telemetry is on, and pass.
var Obsguard = &Analyzer{
	Name:    "obsguard",
	Doc:     "obs call arguments in hot kernels must not allocate outside an obs.Enabled() guard",
	Applies: pkgSet(hotPkgs...),
	Run:     runObsguard,
}

func runObsguard(p *Pass) {
	obsPath := p.Mod.Path + "/internal/obs"
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var stack []ast.Node
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				call, ok := n.(*ast.CallExpr)
				if !ok || !fromPkg(calleeFunc(p.Pkg.Info, call), obsPath) {
					return true
				}
				if guardedByEnabled(p, fn, stack, obsPath) {
					return true
				}
				for _, arg := range call.Args {
					if what := allocatingExpr(p, arg, obsPath); what != "" {
						p.Report(call, fn, "obs call in %s allocates via %s with obs off — precompute, or guard with if obs.Enabled()", fn.Name.Name, what)
						break
					}
				}
				return true
			})
		}
	}
}

// guardedByEnabled reports whether the innermost node of stack only
// executes when obs is enabled: an ancestor `if obs.Enabled()` then-
// branch (or the else-branch of `if !obs.Enabled()`), or an enclosing
// function whose body opens with `if !obs.Enabled() { return }`.
func guardedByEnabled(p *Pass, fn *ast.FuncDecl, stack []ast.Node, obsPath string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if i+1 >= len(stack) {
				continue
			}
			inBody := stack[i+1] == n.Body
			inElse := n.Else != nil && stack[i+1] == n.Else
			if inBody && isEnabledCond(p, n.Cond, obsPath, false) {
				return true
			}
			if inElse && isEnabledCond(p, n.Cond, obsPath, true) {
				return true
			}
		case *ast.FuncLit:
			if opensWithDisabledReturn(p, n.Body, obsPath) && !insideFirstStmt(n.Body, stack, i) {
				return true
			}
		}
	}
	return opensWithDisabledReturn(p, fn.Body, obsPath) && !insideFirstStmt(fn.Body, stack, -1)
}

// isEnabledCond matches obs.Enabled() (negated=false) or !obs.Enabled()
// (negated=true).
func isEnabledCond(p *Pass, cond ast.Expr, obsPath string, negated bool) bool {
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		return negated && isEnabledCond(p, u.X, obsPath, false)
	}
	if negated {
		return false
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := calleeFunc(p.Pkg.Info, call)
	return fromPkg(callee, obsPath) && callee.Name() == "Enabled"
}

// opensWithDisabledReturn matches a body whose first statement is
// `if !obs.Enabled() { return ... }` — everything after it runs with
// obs on.
func opensWithDisabledReturn(p *Pass, body *ast.BlockStmt, obsPath string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	return isEnabledCond(p, ifs.Cond, obsPath, true)
}

// insideFirstStmt reports whether the walk is currently inside
// body.List[0] — the guard statement itself, which runs with obs off.
// from is the stack index of the node owning body (-1 for the walk
// root, whose stack holds body children directly).
func insideFirstStmt(body *ast.BlockStmt, stack []ast.Node, from int) bool {
	for i := from + 1; i < len(stack); i++ {
		if stack[i] == body.List[0] {
			return true
		}
	}
	return false
}

// allocatingExpr scans an argument expression for a construct that
// forces an allocation at the call site, returning a description of the
// first one found ("" if none).
func allocatingExpr(p *Pass, arg ast.Expr, obsPath string) string {
	what := ""
	ast.Inspect(arg, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			what = "a composite literal"
		case *ast.FuncLit:
			what = "a closure"
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(p, n) {
				what = "non-constant string concatenation"
			}
		case *ast.CallExpr:
			what = allocatingCall(p, n, obsPath)
		}
		return true
	})
	return what
}

// allocatingCall classifies a call inside an obs argument.
func allocatingCall(p *Pass, call *ast.CallExpr, obsPath string) string {
	if isBuiltin(p.Pkg.Info, call, "append") {
		return "append"
	}
	if tgt, ok := isConversion(p.Pkg.Info, call); ok && len(call.Args) == 1 {
		srcTV, ok := p.Pkg.Info.Types[call.Args[0]]
		if !ok {
			return ""
		}
		if tv, ok := p.Pkg.Info.Types[call]; ok && tv.Value != nil {
			return "" // constant-folded
		}
		_, tgtStr := tgt.Underlying().(*types.Basic)
		tgtIsString := tgtStr && tgt.Underlying().(*types.Basic).Info()&types.IsString != 0
		srcB, srcIsBasic := srcTV.Type.Underlying().(*types.Basic)
		srcIsString := srcIsBasic && srcB.Info()&types.IsString != 0
		if tgtIsString && !srcIsString {
			return "a string conversion"
		}
		if _, isSlice := tgt.Underlying().(*types.Slice); isSlice && srcIsString {
			return "a string-to-slice conversion"
		}
		return ""
	}
	callee := calleeFunc(p.Pkg.Info, call)
	switch {
	case isPkgFunc(callee, "fmt"):
		return "fmt." + callee.Name()
	case isPkgFunc(callee, "strconv"):
		return "strconv." + callee.Name()
	case fromPkg(callee, obsPath) && (callee.Name() == "ExpBuckets" || callee.Name() == "LinearBuckets"):
		return "obs." + callee.Name() + " (allocates the bounds slice)"
	}
	return ""
}

// isNonConstString reports a string-typed expression the compiler cannot
// constant-fold.
func isNonConstString(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
