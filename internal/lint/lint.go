package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding. Key() — "file:function", the same spelling
// the retired awk panic audit used — is what allowlists match against, so
// a deliberate exception survives line-number churn inside the function.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	File     string         `json:"file"` // repo-root-relative, slash-separated
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Func     string         `json:"func"` // enclosing top-level function, "-" at file scope
	Message  string         `json:"message"`
	Allowed  bool           `json:"allowed"` // present in the analyzer's allowlist
	pos      token.Position `json:"-"`
}

// Key is the allowlist identity of the finding.
func (d Diagnostic) Key() string { return d.File + ":" + d.Func }

// An Analyzer encodes one contract. Applies scopes it to the packages
// where the contract holds — it receives the module-relative package
// path ("" for the root package, "internal/par", ...). Run reports
// findings through the Pass.
type Analyzer struct {
	Name    string
	Doc     string
	Applies func(relPkg string) bool
	Run     func(p *Pass)
}

// Pass is the per-(analyzer, package) reporting context handed to Run.
type Pass struct {
	Mod      *Module
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a finding at node n, attributed to the enclosing
// top-level function fn (nil for file-scope findings).
func (p *Pass) Report(n ast.Node, fn *ast.FuncDecl, format string, args ...any) {
	pos := p.Mod.Fset.Position(n.Pos())
	name := "-"
	if fn != nil {
		name = fn.Name.Name
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     p.Mod.Rel(pos.Filename),
		Line:     pos.Line,
		Col:      pos.Column,
		Func:     name,
		Message:  fmt.Sprintf(format, args...),
		pos:      pos,
	})
}

// InspectFuncs walks every top-level function declaration in the package
// and calls visit for each node inside it, with the declaration supplied
// so findings can be keyed. The walk includes nested function literals
// (attributed to the enclosing declaration, matching the awk scanner's
// attribution).
func (p *Pass) InspectFuncs(visit func(fn *ast.FuncDecl, n ast.Node) bool) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if n == nil {
					return false
				}
				return visit(fn, n)
			})
		}
	}
}

// RunAnalyzer applies one analyzer to one package, ignoring its Applies
// scope — the golden tests use it to drive analyzers over fixture
// packages directly.
func RunAnalyzer(a *Analyzer, m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	a.Run(&Pass{Mod: m, Pkg: pkg, analyzer: a, diags: &diags})
	sortDiags(diags)
	return diags
}

// Run applies every analyzer to every loaded package it covers and
// returns all findings, allowlist-annotated, in deterministic order.
func Run(m *Module, analyzers []*Analyzer, allow Allowlists) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range m.Packages() {
			if a.Applies != nil && !a.Applies(m.relPkg(pkg.Path)) {
				continue
			}
			a.Run(&Pass{Mod: m, Pkg: pkg, analyzer: a, diags: &diags})
		}
	}
	for i := range diags {
		diags[i].Allowed = allow[diags[i].Analyzer][diags[i].Key()]
	}
	sortDiags(diags)
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// Violations filters to the findings not covered by an allowlist.
func Violations(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Allowed {
			out = append(out, d)
		}
	}
	return out
}

// Allowlists maps analyzer name -> set of allowed "file:func" keys.
type Allowlists map[string]map[string]bool

// LoadAllowlists reads dir/<analyzer>.txt for each analyzer. A missing
// file is an empty allowlist. Lines are keys; blank lines and #-comments
// are ignored.
func LoadAllowlists(dir string, analyzers []*Analyzer) (Allowlists, error) {
	al := make(Allowlists, len(analyzers))
	for _, a := range analyzers {
		set := make(map[string]bool)
		data, err := os.ReadFile(filepath.Join(dir, a.Name+".txt"))
		if err != nil {
			if !os.IsNotExist(err) {
				return nil, err
			}
		} else {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				set[line] = true
			}
		}
		al[a.Name] = set
	}
	return al, nil
}

// WriteAllowlists rewrites dir/<analyzer>.txt from the given findings:
// the union of finding keys per analyzer, sorted. A leading #-comment
// block in an existing file (the human rationale) is preserved.
// Analyzers with no findings get their file removed — an empty contract
// needs no exceptions file.
func WriteAllowlists(dir string, analyzers []*Analyzer, diags []Diagnostic) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	byAnalyzer := make(map[string]map[string]bool)
	for _, d := range diags {
		set := byAnalyzer[d.Analyzer]
		if set == nil {
			set = make(map[string]bool)
			byAnalyzer[d.Analyzer] = set
		}
		set[d.Key()] = true
	}
	for _, a := range analyzers {
		path := filepath.Join(dir, a.Name+".txt")
		set := byAnalyzer[a.Name]
		if len(set) == 0 {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		body := leadingComments(path) + strings.Join(keys, "\n") + "\n"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// leadingComments returns the initial #-comment block of an existing
// allowlist file (terminated by the first non-comment line), so -update
// keeps the recorded rationale.
func leadingComments(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	var b strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "#") {
			break
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// relPkg maps an import path of this module to its module-relative form:
// "" for the root package, "internal/par" for nde/internal/par.
func (m *Module) relPkg(pkgPath string) string {
	if pkgPath == m.Path {
		return ""
	}
	return strings.TrimPrefix(pkgPath, m.Path+"/")
}

// Analyzers returns the repo's analyzer set, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Panicsite, Errwrap, Obsguard}
}
