package uncertain

import (
	"fmt"
	"math"

	"nde/internal/linalg"
	"nde/internal/ml"
)

// CertainModelReport is the result of checking whether a linear regression
// model can be learned *certainly* despite missing features (Zhen et al.,
// SIGMOD 2024): does one model minimize the training loss in every possible
// world of the incomplete data?
type CertainModelReport struct {
	// Certain reports whether the complete-rows model is provably optimal
	// for every completion of the missing cells.
	Certain bool
	// Reason explains the verdict.
	Reason string
	// Weights and Intercept describe the candidate model (trained on the
	// complete rows).
	Weights   []float64
	Intercept float64
	// WorstCaseExtraLoss is the maximum additional mean squared error the
	// candidate can incur over any completion, relative to its
	// complete-rows loss. ApproximatelyCertain(eps) compares against it.
	WorstCaseExtraLoss float64
}

// ApproximatelyCertain reports whether the candidate model is within eps of
// optimal in every possible world — the relaxation the paper proposes when
// exact certainty fails.
func (r *CertainModelReport) ApproximatelyCertain(eps float64) bool {
	return r.Certain || r.WorstCaseExtraLoss <= eps
}

// CheckCertainModel decides certain-model existence for least-squares
// regression over a symbolic design matrix with targets y.
//
// The check follows the paper's characterization: fit the minimum-norm
// least-squares model w on the complete rows; the model is certain iff
// (a) every feature that is missing somewhere has weight zero in w — so no
// completion can change the fit through those cells — and (b) every
// incomplete row has zero residual under w using its observed features, so
// the row exerts no gradient pressure regardless of its completion. When
// the check fails, the report carries an exact worst-case extra-loss bound
// for the candidate over the interval completions.
func CheckCertainModel(train *SymbolicDataset, y []float64) (*CertainModelReport, error) {
	if train.Len() == 0 {
		return nil, fmt.Errorf("uncertain: empty training set")
	}
	if len(y) != train.Len() {
		return nil, fmt.Errorf("uncertain: %d targets for %d rows", len(y), train.Len())
	}
	n, d := train.Len(), train.Dim()

	incompleteRow := make([]bool, n)
	missingFeature := make([]bool, d)
	var completeIdx []int
	for i, row := range train.Cells {
		for j, c := range row {
			if !c.IsPoint() {
				incompleteRow[i] = true
				missingFeature[j] = true
			}
		}
		if !incompleteRow[i] {
			completeIdx = append(completeIdx, i)
		}
	}
	if len(completeIdx) == 0 {
		return &CertainModelReport{
			Certain: false,
			Reason:  "no complete rows to anchor a candidate model",
		}, nil
	}

	// candidate: ridge fit (tiny penalty = minimum-norm tendency) on the
	// complete rows
	cx := linalg.NewMatrix(len(completeIdx), d)
	cy := make([]float64, len(completeIdx))
	for o, i := range completeIdx {
		for j := 0; j < d; j++ {
			cx.Set(o, j, train.Cells[i][j].Lo)
		}
		cy[o] = y[i]
	}
	reg := ml.NewLinearRegression()
	if err := reg.FitXY(cx, cy); err != nil {
		return nil, err
	}
	w, b := reg.Weights(), reg.Intercept()

	report := &CertainModelReport{Weights: w, Intercept: b}

	// certainty conditions
	certain := true
	reason := "complete-rows model is optimal in every world"
	// tolerance absorbs the bias of the tiny ridge penalty in the anchor fit
	const tol = 1e-4
	for j := 0; j < d; j++ {
		if missingFeature[j] && math.Abs(w[j]) > tol {
			certain = false
			reason = fmt.Sprintf("feature %d is missing somewhere but has weight %.4g", j, w[j])
			break
		}
	}
	if certain {
		for i := 0; i < n; i++ {
			if !incompleteRow[i] {
				continue
			}
			// residual over observed features; missing features contribute 0
			// because their weights are 0
			pred := b
			for j := 0; j < d; j++ {
				if train.Cells[i][j].IsPoint() {
					pred += w[j] * train.Cells[i][j].Lo
				}
			}
			if math.Abs(pred-y[i]) > tol {
				certain = false
				reason = fmt.Sprintf("incomplete row %d has nonzero residual %.4g", i, pred-y[i])
				break
			}
		}
	}
	report.Certain = certain
	report.Reason = reason

	// exact worst-case extra loss of the fixed candidate over completions:
	// per row, |error| is maximized at a box corner: |e_center| + Σ|w_j|·r_j
	baseLoss, worstLoss := 0.0, 0.0
	for i, row := range train.Cells {
		eCenter := b - y[i]
		spread := 0.0
		for j, c := range row {
			eCenter += w[j] * c.Center()
			spread += math.Abs(w[j]) * c.Radius()
		}
		centerSq := eCenter * eCenter
		worstAbs := math.Abs(eCenter) + spread
		baseLoss += centerSq / float64(n)
		worstLoss += worstAbs * worstAbs / float64(n)
	}
	report.WorstCaseExtraLoss = worstLoss - baseLoss
	return report, nil
}
