package uncertain

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nde/internal/linalg"
	"nde/internal/ml"
)

// SymbolicDataset is a training set whose feature cells are intervals —
// the symbolic representation that Zorro-style analyses propagate through
// training. Labels remain certain (label uncertainty can be modeled by
// enumerating worlds; see worlds.go).
type SymbolicDataset struct {
	Cells  [][]Interval // [row][feature]
	Y      []int
	nUncrt int
}

// NewSymbolic wraps a concrete dataset as all-point intervals.
func NewSymbolic(d *ml.Dataset) *SymbolicDataset {
	cells := make([][]Interval, d.Len())
	for i := range cells {
		row := d.Row(i)
		cells[i] = make([]Interval, len(row))
		for j, v := range row {
			cells[i][j] = Point(v)
		}
	}
	return &SymbolicDataset{Cells: cells, Y: append([]int(nil), d.Y...)}
}

// Len returns the number of rows.
func (s *SymbolicDataset) Len() int { return len(s.Cells) }

// Dim returns the feature dimensionality (0 for an empty dataset).
func (s *SymbolicDataset) Dim() int {
	if len(s.Cells) == 0 {
		return 0
	}
	return len(s.Cells[0])
}

// UncertainCells returns the number of non-point cells.
func (s *SymbolicDataset) UncertainCells() int { return s.nUncrt }

// SetUncertain replaces cell (row, col) with the interval [lo, hi].
func (s *SymbolicDataset) SetUncertain(row, col int, lo, hi float64) {
	if s.Cells[row][col].IsPoint() && lo != hi {
		s.nUncrt++
	}
	s.Cells[row][col] = NewInterval(lo, hi)
}

// MarkMissing replaces the cells at the given rows of one feature with the
// interval [lo, hi] — the symbolic encoding of missing values whose true
// value is only known to lie in the feature's domain.
func (s *SymbolicDataset) MarkMissing(rows []int, col int, lo, hi float64) {
	for _, r := range rows {
		s.SetUncertain(r, col, lo, hi)
	}
}

// Center returns the concrete dataset at the box centers — the "impute with
// the midpoint" baseline world.
func (s *SymbolicDataset) Center() *ml.Dataset {
	x := linalg.NewMatrix(s.Len(), s.Dim())
	for i, row := range s.Cells {
		for j, c := range row {
			x.Set(i, j, c.Center())
		}
	}
	d, _ := ml.NewDataset(x, append([]int(nil), s.Y...))
	return d
}

// SampleWorld returns one concrete completion, drawing every uncertain cell
// uniformly from its interval.
func (s *SymbolicDataset) SampleWorld(r *rand.Rand) *ml.Dataset {
	x := linalg.NewMatrix(s.Len(), s.Dim())
	for i, row := range s.Cells {
		for j, c := range row {
			if c.IsPoint() {
				x.Set(i, j, c.Lo)
			} else {
				x.Set(i, j, c.Lo+r.Float64()*c.Width())
			}
		}
	}
	d, _ := ml.NewDataset(x, append([]int(nil), s.Y...))
	return d
}

// CornerWorld returns the completion that sets every uncertain cell to its
// lower (corner bit 0) or upper (corner bit 1) endpoint according to the
// supplied choice function — used by adversarial searches.
func (s *SymbolicDataset) CornerWorld(hi func(row, col int) bool) *ml.Dataset {
	x := linalg.NewMatrix(s.Len(), s.Dim())
	for i, row := range s.Cells {
		for j, c := range row {
			if hi(i, j) {
				x.Set(i, j, c.Hi)
			} else {
				x.Set(i, j, c.Lo)
			}
		}
	}
	d, _ := ml.NewDataset(x, append([]int(nil), s.Y...))
	return d
}

// MaxRadius returns the largest cell radius — the magnitude of the
// data uncertainty.
func (s *SymbolicDataset) MaxRadius() float64 {
	m := 0.0
	for _, row := range s.Cells {
		for _, c := range row {
			m = math.Max(m, c.Radius())
		}
	}
	return m
}

// Missingness selects the mechanism used by EncodeSymbolic to choose which
// rows lose their value.
type Missingness int

const (
	// MCAR: missing completely at random — uniform over rows.
	MCAR Missingness = iota
	// MAR: missing at random — probability depends on another observed
	// feature (rows with high first-feature values lose the target).
	MAR
	// MNAR: missing not at random — probability depends on the value
	// itself (the largest values go missing), the hardest mechanism.
	MNAR
)

// String names the mechanism.
func (m Missingness) String() string {
	switch m {
	case MCAR:
		return "MCAR"
	case MAR:
		return "MAR"
	case MNAR:
		return "MNAR"
	}
	return "unknown"
}

// EncodeSymbolic converts a concrete dataset into a symbolic one by marking
// a fraction of one feature's cells as missing under the chosen
// missingness mechanism, bounding each missing cell by the feature's
// observed [min, max] range. This mirrors the tutorial's Figure-4 API
// (nde.encode_symbolic(..., missing_percentage, missingness="MNAR")).
func EncodeSymbolic(d *ml.Dataset, feature int, fraction float64, mech Missingness, seed int64) (*SymbolicDataset, []int, error) {
	if feature < 0 || feature >= d.Dim() {
		return nil, nil, fmt.Errorf("uncertain: feature %d out of range [0,%d)", feature, d.Dim())
	}
	if fraction < 0 || fraction > 1 {
		return nil, nil, fmt.Errorf("uncertain: fraction %v outside [0,1]", fraction)
	}
	n := d.Len()
	k := int(math.Round(float64(n) * fraction))
	r := rand.New(rand.NewSource(seed))

	// rank rows by the mechanism's propensity
	idx := r.Perm(n)
	switch mech {
	case MAR:
		other := 0
		if feature == 0 && d.Dim() > 1 {
			other = 1
		}
		sortByDesc(idx, func(i int) float64 { return d.X.At(i, other) })
	case MNAR:
		sortByDesc(idx, func(i int) float64 { return d.X.At(i, feature) })
	}
	missing := idx[:k]

	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		v := d.X.At(i, feature)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > hi { // empty dataset
		lo, hi = 0, 0
	}
	s := NewSymbolic(d)
	s.MarkMissing(missing, feature, lo, hi)
	return s, missing, nil
}

func sortByDesc(idx []int, key func(int) float64) {
	// stable keeps the initial shuffled order among ties, for determinism
	sort.SliceStable(idx, func(a, b int) bool { return key(idx[a]) > key(idx[b]) })
}
