package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	a := NewInterval(1, 3)
	if a.Width() != 2 || a.Center() != 2 || a.Radius() != 1 {
		t.Errorf("interval stats wrong: %v", a)
	}
	if !a.Contains(1) || !a.Contains(3) || a.Contains(3.1) {
		t.Error("Contains wrong")
	}
	p := Point(5)
	if !p.IsPoint() || p.String() != "5" {
		t.Errorf("Point = %v", p)
	}
	if a.String() != "[1, 3]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestNewIntervalPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for inverted interval")
		}
	}()
	NewInterval(2, 1)
}

func TestIntervalArithmetic(t *testing.T) {
	a, b := NewInterval(1, 2), NewInterval(-1, 3)
	if got := a.Add(b); got != (Interval{0, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Interval{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Neg(); got != (Interval{-2, -1}) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Mul(b); got != (Interval{-2, 6}) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(-2); got != (Interval{-4, -2}) {
		t.Errorf("Scale = %v", got)
	}
	if got := NewInterval(-3, 2).Abs(); got != (Interval{0, 3}) {
		t.Errorf("Abs = %v", got)
	}
	if got := NewInterval(-3, 2).Sqr(); got != (Interval{0, 9}) {
		t.Errorf("Sqr = %v", got)
	}
	if got := a.Union(b); got != (Interval{-1, 3}) {
		t.Errorf("Union = %v", got)
	}
	inter, ok := a.Intersect(b)
	if !ok || inter != (Interval{1, 2}) {
		t.Errorf("Intersect = %v,%v", inter, ok)
	}
	if _, ok := NewInterval(0, 1).Intersect(NewInterval(2, 3)); ok {
		t.Error("disjoint intervals should not intersect")
	}
}

// Property: interval arithmetic is sound — for random concrete values inside
// the operand intervals, the concrete result lies inside the result interval.
func TestQuickIntervalSoundness(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randIv := func() Interval {
			a, b := r.NormFloat64()*3, r.NormFloat64()*3
			return Interval{math.Min(a, b), math.Max(a, b)}
		}
		pick := func(iv Interval) float64 { return iv.Lo + r.Float64()*iv.Width() }
		for trial := 0; trial < 20; trial++ {
			a, b := randIv(), randIv()
			x, y := pick(a), pick(b)
			const eps = 1e-9
			if !contains(a.Add(b), x+y, eps) ||
				!contains(a.Sub(b), x-y, eps) ||
				!contains(a.Mul(b), x*y, eps) ||
				!contains(a.Neg(), -x, eps) ||
				!contains(a.Abs(), math.Abs(x), eps) ||
				!contains(a.Sqr(), x*x, eps) ||
				!contains(a.Scale(-1.5), -1.5*x, eps) ||
				!contains(a.Union(b), x, eps) ||
				!contains(a.Union(b), y, eps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func contains(iv Interval, x, eps float64) bool {
	return iv.Lo-eps <= x && x <= iv.Hi+eps
}

// Property: DotRange is the exact range of w·x over the box — sampled
// concrete points stay inside, and both endpoints are attained at corners.
func TestQuickDotRangeExact(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		w := make([]float64, d)
		box := make([]Interval, d)
		for j := 0; j < d; j++ {
			w[j] = r.NormFloat64()
			a, b := r.NormFloat64(), r.NormFloat64()
			box[j] = Interval{math.Min(a, b), math.Max(a, b)}
		}
		rg := DotRange(w, box)
		// sampled containment
		for trial := 0; trial < 10; trial++ {
			dot := 0.0
			for j := 0; j < d; j++ {
				dot += w[j] * (box[j].Lo + r.Float64()*box[j].Width())
			}
			if !contains(rg, dot, 1e-9) {
				return false
			}
		}
		// corner attainment: maximizing corner picks Hi when w>0
		maxDot, minDot := 0.0, 0.0
		for j := 0; j < d; j++ {
			if w[j] >= 0 {
				maxDot += w[j] * box[j].Hi
				minDot += w[j] * box[j].Lo
			} else {
				maxDot += w[j] * box[j].Lo
				minDot += w[j] * box[j].Hi
			}
		}
		return math.Abs(maxDot-rg.Hi) < 1e-9 && math.Abs(minDot-rg.Lo) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
