package uncertain

import (
	"fmt"
	"math"
	"math/rand"

	"nde/internal/ml"
)

// Zorro propagates training-data uncertainty through model training in the
// spirit of Zhu et al. (NeurIPS 2024): a symbolic training set defines a set
// of possible worlds, each world induces a possible model, and the analysis
// reports how much the induced model set disagrees on test predictions.
//
// Two complementary estimates are produced:
//
//   - a Monte-Carlo *under*-approximation obtained by sampling Worlds
//     completions of the uncertain cells and training one logistic model per
//     world (the empirical possible-models set); and
//   - a sound *over*-approximation of each possible model's distance to the
//     center model, derived from the λ-strong convexity of the regularized
//     objective, which yields guaranteed prediction ranges and a worst-case
//     loss bound that hold for EVERY completion, not just the sampled ones.
type Zorro struct {
	// Worlds is the number of sampled completions (default 20).
	Worlds int
	// Seed drives world sampling.
	Seed int64
	// Lambda is the L2 penalty of the logistic models; it is also the
	// strong-convexity constant used by the sound bound (default 0.1 —
	// the bound degrades as 1/λ, so Zorro favors stronger regularization).
	Lambda float64
	// Epochs for each logistic fit (default 200).
	Epochs int
}

// ZorroResult is the output of an Analyze call.
type ZorroResult struct {
	// Center is the model trained on the midpoint (imputed) world.
	Center *ml.LogisticRegression
	// ProbaRanges[i] is the empirical range of P(y=1 | test_i) across the
	// sampled possible models.
	ProbaRanges []Interval
	// SoundProbaRanges[i] is the guaranteed range of P(y=1 | test_i) over
	// ALL completions, from the strong-convexity bound (always contains
	// the empirical range).
	SoundProbaRanges []Interval
	// Certain[i] reports whether every sampled possible model assigns
	// test_i the same label.
	Certain []bool
	// CertainSound[i] reports whether the sound range proves the label of
	// test_i is identical in every world.
	CertainSound []bool
	// WorstCaseLoss is the maximum test log-loss across sampled worlds.
	WorstCaseLoss float64
	// SoundLossBound is the guaranteed upper bound on test log-loss over
	// all completions.
	SoundLossBound float64
	// ParamRadius is the strong-convexity bound on ‖θ_world − θ_center‖.
	ParamRadius float64
}

// Analyze trains the possible models of the symbolic training set and
// evaluates their disagreement on the concrete test set.
func (z *Zorro) Analyze(train *SymbolicDataset, test *ml.Dataset) (*ZorroResult, error) {
	if train.Len() == 0 || test.Len() == 0 {
		return nil, fmt.Errorf("uncertain: zorro needs non-empty train (%d) and test (%d)", train.Len(), test.Len())
	}
	if train.Dim() != test.Dim() {
		return nil, fmt.Errorf("uncertain: dimension mismatch %d vs %d", train.Dim(), test.Dim())
	}
	worlds := z.Worlds
	if worlds <= 0 {
		worlds = 20
	}
	lambda := z.Lambda
	if lambda <= 0 {
		lambda = 0.1
	}
	epochs := z.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	newModel := func() *ml.LogisticRegression {
		return &ml.LogisticRegression{LR: 0.5, Epochs: epochs, L2: lambda}
	}

	center := newModel()
	if err := center.Fit(train.Center()); err != nil {
		return nil, err
	}

	res := &ZorroResult{
		Center:           center,
		ProbaRanges:      make([]Interval, test.Len()),
		SoundProbaRanges: make([]Interval, test.Len()),
		Certain:          make([]bool, test.Len()),
		CertainSound:     make([]bool, test.Len()),
	}

	// --- sampled possible worlds ---
	r := rand.New(rand.NewSource(z.Seed))
	models := []*ml.LogisticRegression{center}
	for w := 1; w < worlds; w++ {
		m := newModel()
		if err := m.Fit(train.SampleWorld(r)); err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	for i := 0; i < test.Len(); i++ {
		lo, hi := 1.0, 0.0
		for _, m := range models {
			p := m.Proba(test.Row(i))[1]
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
		res.ProbaRanges[i] = Interval{lo, hi}
		res.Certain[i] = lo >= 0.5 || hi < 0.5
	}
	for _, m := range models {
		loss := testLogLoss(m, test)
		res.WorstCaseLoss = math.Max(res.WorstCaseLoss, loss)
	}

	// --- sound over-approximation via strong convexity ---
	// The regularized objective F(θ; D) = (1/n)Σ ℓ + (λ/2)‖θ‖² is λ-strongly
	// convex, so for any world D': ‖θ' − θc‖ ≤ ‖∇F(θc; D')‖ / λ. The
	// gradient at θc under D' differs from 0 (= ∇F(θc; Dc)) only through the
	// perturbed cells; each point's logistic gradient (σ−y)x̃ changes by at
	// most Δσ·‖x̃c‖ + 1·‖Δx‖ with Δσ ≤ ‖θc‖·‖Δx‖/4 (σ is 1/4-Lipschitz in
	// its argument). Averaging the per-point bounds gives a computable
	// uniform gradient-perturbation radius.
	thetaNorm := normAug(center)
	n := train.Len()
	gradPerturb := 0.0
	for _, row := range train.Cells {
		dx := 0.0     // ‖Δx_i‖ bound: full box diameter
		xcNorm := 1.0 // augmented with intercept feature 1
		for _, c := range row {
			dx += c.Width() * c.Width()
			xcNorm += c.Center() * c.Center()
		}
		dx = math.Sqrt(dx)
		if dx == 0 {
			continue
		}
		xcNorm = math.Sqrt(xcNorm)
		dSigma := math.Min(1, thetaNorm*dx/4)
		gradPerturb += (dSigma*(xcNorm+dx) + dx) / float64(n)
	}
	res.ParamRadius = gradPerturb / lambda

	for i := 0; i < test.Len(); i++ {
		x := test.Row(i)
		xNorm := 1.0
		z := center.Intercept()
		for j, v := range x {
			xNorm += v * v
			z += center.Weights()[j] * v
		}
		xNorm = math.Sqrt(xNorm)
		dz := res.ParamRadius * xNorm
		lo, hi := ml.Sigmoid(z-dz), ml.Sigmoid(z+dz)
		res.SoundProbaRanges[i] = Interval{lo, hi}
		res.CertainSound[i] = lo >= 0.5 || hi < 0.5
		y := float64(test.Y[i])
		// worst-case per-point log loss at the adversarial end of the range;
		// the mean of per-point worst cases dominates every world's mean loss
		worst := math.Max(pointLogLoss(lo, y), pointLogLoss(hi, y))
		res.SoundLossBound += worst / float64(test.Len())
	}
	return res, nil
}

func normAug(m *ml.LogisticRegression) float64 {
	s := m.Intercept() * m.Intercept()
	for _, w := range m.Weights() {
		s += w * w
	}
	return math.Sqrt(s)
}

func testLogLoss(m *ml.LogisticRegression, test *ml.Dataset) float64 {
	sum := 0.0
	for i := 0; i < test.Len(); i++ {
		p := m.Proba(test.Row(i))[1]
		sum += pointLogLoss(p, float64(test.Y[i]))
	}
	return sum / float64(test.Len())
}

func pointLogLoss(p, y float64) float64 {
	const eps = 1e-12
	p = math.Min(1-eps, math.Max(eps, p))
	if y >= 0.5 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// WorstCaseLossCurve sweeps missing-value percentages over one feature and
// returns the worst-case loss at each percentage — the series plotted in
// the tutorial's Figure 4. The curve is non-decreasing in expectation:
// more missing data can only enlarge the set of possible worlds.
func WorstCaseLossCurve(d *ml.Dataset, test *ml.Dataset, feature int, percentages []float64, mech Missingness, z *Zorro, seed int64) ([]float64, error) {
	out := make([]float64, len(percentages))
	for i, pct := range percentages {
		sym, _, err := EncodeSymbolic(d, feature, pct, mech, seed)
		if err != nil {
			return nil, err
		}
		res, err := z.Analyze(sym, test)
		if err != nil {
			return nil, err
		}
		out[i] = res.WorstCaseLoss
	}
	return out, nil
}
