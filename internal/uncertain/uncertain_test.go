package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
	"nde/internal/ml"
)

func blobs(n int, sep float64, seed int64) *ml.Dataset {
	r := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		sign := float64(2*c - 1)
		x.Set(i, 0, sign*sep+r.NormFloat64())
		x.Set(i, 1, sign*sep+r.NormFloat64())
	}
	d, _ := ml.NewDataset(x, y)
	return d
}

func TestNewSymbolicRoundTrip(t *testing.T) {
	d := blobs(10, 2, 1)
	s := NewSymbolic(d)
	if s.Len() != 10 || s.Dim() != 2 || s.UncertainCells() != 0 {
		t.Fatalf("symbolic header wrong: %d %d %d", s.Len(), s.Dim(), s.UncertainCells())
	}
	c := s.Center()
	if linalg.MaxAbsDiff(c.X.Data, d.X.Data) != 0 {
		t.Error("center of all-point symbolic should equal original")
	}
}

func TestSetUncertainAndSampleWorld(t *testing.T) {
	d := blobs(10, 2, 2)
	s := NewSymbolic(d)
	s.SetUncertain(0, 0, -5, 5)
	s.SetUncertain(3, 1, 0, 1)
	if s.UncertainCells() != 2 {
		t.Errorf("uncertain cells = %d", s.UncertainCells())
	}
	if s.MaxRadius() != 5 {
		t.Errorf("MaxRadius = %v", s.MaxRadius())
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		w := s.SampleWorld(r)
		v := w.X.At(0, 0)
		if v < -5 || v > 5 {
			t.Errorf("sampled value %v outside interval", v)
		}
		// certain cells unchanged
		if w.X.At(1, 0) != d.X.At(1, 0) {
			t.Error("certain cell changed in sampled world")
		}
	}
	lo := s.CornerWorld(func(r, c int) bool { return false })
	hi := s.CornerWorld(func(r, c int) bool { return true })
	if lo.X.At(0, 0) != -5 || hi.X.At(0, 0) != 5 {
		t.Error("corner worlds wrong")
	}
}

func TestEncodeSymbolicMechanisms(t *testing.T) {
	d := blobs(100, 2, 4)
	for _, mech := range []Missingness{MCAR, MAR, MNAR} {
		s, missing, err := EncodeSymbolic(d, 0, 0.2, mech, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) != 20 {
			t.Errorf("%v: %d missing, want 20", mech, len(missing))
		}
		if s.UncertainCells() != 20 {
			t.Errorf("%v: %d uncertain cells", mech, s.UncertainCells())
		}
	}
	// MNAR targets the largest values of the feature itself
	s, missing, err := EncodeSymbolic(d, 0, 0.1, MNAR, 7)
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	minMissing := math.Inf(1)
	for _, i := range missing {
		minMissing = math.Min(minMissing, d.X.At(i, 0))
	}
	// every missing value should be above the feature median
	above := 0
	for i := 0; i < d.Len(); i++ {
		if d.X.At(i, 0) < minMissing {
			above++
		}
	}
	if above < d.Len()/2 {
		t.Errorf("MNAR did not target large values (%d below cutoff)", above)
	}
	if _, _, err := EncodeSymbolic(d, 9, 0.1, MCAR, 1); err == nil {
		t.Error("expected error for bad feature")
	}
	if _, _, err := EncodeSymbolic(d, 0, 1.5, MCAR, 1); err == nil {
		t.Error("expected error for bad fraction")
	}
	if MCAR.String() != "MCAR" || MNAR.String() != "MNAR" || MAR.String() != "MAR" {
		t.Error("mechanism names wrong")
	}
}

func TestZorroAnalyze(t *testing.T) {
	train := blobs(80, 2.5, 11)
	test := blobs(40, 2.5, 12)
	sym, _, err := EncodeSymbolic(train, 0, 0.15, MNAR, 13)
	if err != nil {
		t.Fatal(err)
	}
	z := &Zorro{Worlds: 10, Seed: 1}
	res, err := z.Analyze(sym, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ProbaRanges) != test.Len() {
		t.Fatalf("ranges = %d", len(res.ProbaRanges))
	}
	for i, rg := range res.ProbaRanges {
		if rg.Lo < 0 || rg.Hi > 1 || rg.Lo > rg.Hi {
			t.Errorf("range %d = %v", i, rg)
		}
		// sound range must contain the sampled range
		srg := res.SoundProbaRanges[i]
		if srg.Lo > rg.Lo+1e-9 || srg.Hi < rg.Hi-1e-9 {
			t.Errorf("sound range %v does not contain sampled %v", srg, rg)
		}
		// sound certainty implies sampled certainty
		if res.CertainSound[i] && !res.Certain[i] {
			t.Errorf("point %d: sound-certain but samples disagree", i)
		}
	}
	if res.SoundLossBound < res.WorstCaseLoss-1e-9 {
		t.Errorf("sound bound %v below sampled worst case %v", res.SoundLossBound, res.WorstCaseLoss)
	}
	if res.ParamRadius <= 0 {
		t.Errorf("param radius = %v", res.ParamRadius)
	}
}

func TestZorroNoUncertaintyIsTight(t *testing.T) {
	train := blobs(60, 3, 21)
	test := blobs(30, 3, 22)
	z := &Zorro{Worlds: 5, Seed: 2}
	res, err := z.Analyze(NewSymbolic(train), test)
	if err != nil {
		t.Fatal(err)
	}
	for i, rg := range res.ProbaRanges {
		if rg.Width() > 1e-12 {
			t.Errorf("point %d: nonzero range %v without uncertainty", i, rg)
		}
		if !res.Certain[i] {
			t.Errorf("point %d uncertain without data uncertainty", i)
		}
	}
	if res.ParamRadius != 0 {
		t.Errorf("param radius %v without uncertainty", res.ParamRadius)
	}
}

func TestZorroErrors(t *testing.T) {
	d := blobs(10, 2, 1)
	z := &Zorro{}
	if _, err := z.Analyze(NewSymbolic(d), &ml.Dataset{X: linalg.NewMatrix(0, 2)}); err == nil {
		t.Error("expected error for empty test")
	}
	d3 := &ml.Dataset{X: linalg.NewMatrix(5, 3), Y: []int{0, 1, 0, 1, 0}}
	if _, err := z.Analyze(NewSymbolic(d), d3); err == nil {
		t.Error("expected error for dim mismatch")
	}
}

func TestWorstCaseLossCurveMonotone(t *testing.T) {
	train := blobs(80, 2.5, 31)
	test := blobs(40, 2.5, 32)
	z := &Zorro{Worlds: 12, Seed: 3}
	pcts := []float64{0.05, 0.10, 0.15, 0.20, 0.25}
	curve, err := WorstCaseLossCurve(train, test, 0, pcts, MNAR, z, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 5 {
		t.Fatalf("curve = %v", curve)
	}
	// allow tiny sampling dips but require an overall increasing trend
	if curve[len(curve)-1] <= curve[0] {
		t.Errorf("worst-case loss should grow with missingness: %v", curve)
	}
	for _, v := range curve {
		if v < 0 {
			t.Errorf("negative loss %v", v)
		}
	}
}

// Property: the sound prediction ranges contain the predictions of models
// trained on every corner world (exhaustive over up to 2^4 corners). The
// strong-convexity bound covers every completion, so corner worlds — where
// extremes are attained for linear forms — must fall inside.
func TestQuickZorroSoundRangeContainsCorners(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		train := blobs(30, 2, seed)
		test := blobs(8, 2, seed+1)
		sym := NewSymbolic(train)
		nUnc := 1 + r.Intn(4)
		type cell struct{ row, col int }
		cells := make([]cell, nUnc)
		for u := 0; u < nUnc; u++ {
			c := cell{r.Intn(train.Len()), r.Intn(2)}
			cells[u] = c
			center := train.X.At(c.row, c.col)
			radius := 0.5 + r.Float64()
			sym.SetUncertain(c.row, c.col, center-radius, center+radius)
		}
		z := &Zorro{Worlds: 3, Seed: seed}
		res, err := z.Analyze(sym, test)
		if err != nil {
			return false
		}
		for mask := 0; mask < 1<<nUnc; mask++ {
			world := sym.CornerWorld(func(row, col int) bool {
				for u, c := range cells {
					if c.row == row && c.col == col {
						return mask&(1<<u) != 0
					}
				}
				return false
			})
			m := &ml.LogisticRegression{LR: 0.5, Epochs: 200, L2: 0.1}
			if err := m.Fit(world); err != nil {
				return false
			}
			for i := 0; i < test.Len(); i++ {
				p := m.Proba(test.Row(i))[1]
				rg := res.SoundProbaRanges[i]
				if p < rg.Lo-0.02 || p > rg.Hi+0.02 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
