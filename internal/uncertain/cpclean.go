package uncertain

import (
	"fmt"
	"math"
	"sort"
)

// CPClean implements certain predictions for k-nearest-neighbor classifiers
// over incomplete data (Karlaš et al., VLDB 2021). A test point's prediction
// is *certain* when the kNN vote elects the same label in every possible
// world of the symbolic training set. Because each training point's distance
// to the test point varies independently within [minDist, maxDist], the
// adversarial world for a candidate label can be constructed greedily,
// giving an exact polynomial-time check.
type CPClean struct {
	K int // neighbors (default 3)
}

// NewCPClean returns a checker with the given k.
func NewCPClean(k int) *CPClean { return &CPClean{K: k} }

// distRange returns the range of the Euclidean distance between the
// interval box row and the concrete point x.
func distRange(row []Interval, x []float64) Interval {
	lo, hi := 0.0, 0.0
	for j, c := range row {
		d := c.Sub(Point(x[j])).Abs()
		lo += d.Lo * d.Lo
		hi += d.Hi * d.Hi
	}
	return Interval{math.Sqrt(lo), math.Sqrt(hi)}
}

// voteOutcome simulates the kNN vote when every training point sits at the
// supplied distance; ties in distance break by training index, ties in the
// vote break toward the smaller label (matching ml.KNN).
func (c *CPClean) voteOutcome(dists []float64, labels []int) int {
	type di struct {
		d float64
		i int
	}
	order := make([]di, len(dists))
	for i, d := range dists {
		order[i] = di{d, i}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].d != order[b].d {
			return order[a].d < order[b].d
		}
		return order[a].i < order[b].i
	})
	k := c.K
	if k > len(order) {
		k = len(order)
	}
	votes := make(map[int]int)
	for _, o := range order[:k] {
		votes[labels[o.i]]++
	}
	best, bestV := 0, -1
	var keys []int
	for y := range votes {
		keys = append(keys, y)
	}
	sort.Ints(keys)
	for _, y := range keys {
		if votes[y] > bestV {
			best, bestV = y, votes[y]
		}
	}
	return best
}

// CertainPrediction checks whether the kNN prediction of x is identical in
// every possible world. It returns (label, true) when certain, and the
// center-world prediction with false otherwise.
func (c *CPClean) CertainPrediction(train *SymbolicDataset, x []float64) (int, bool, error) {
	if c.K < 1 {
		return 0, false, fmt.Errorf("uncertain: CPClean requires K >= 1, got %d", c.K)
	}
	if train.Len() == 0 {
		return 0, false, fmt.Errorf("uncertain: CPClean needs a non-empty training set")
	}
	if train.Dim() != len(x) {
		return 0, false, fmt.Errorf("uncertain: dimension mismatch %d vs %d", train.Dim(), len(x))
	}
	n := train.Len()
	ranges := make([]Interval, n)
	for i, row := range train.Cells {
		ranges[i] = distRange(row, x)
	}
	// center-world prediction is the candidate
	center := make([]float64, n)
	for i, rg := range ranges {
		center[i] = rg.Center()
	}
	candidate := c.voteOutcome(center, train.Y)

	// adversarial world against the candidate: points voting for the
	// candidate as far as possible, every other point as near as possible.
	// Distances vary independently per point, so this is the single worst
	// case; if the candidate still wins here, it wins in every world.
	adversarial := make([]float64, n)
	for i, rg := range ranges {
		if train.Y[i] == candidate {
			adversarial[i] = rg.Hi
		} else {
			adversarial[i] = rg.Lo
		}
	}
	if c.voteOutcome(adversarial, train.Y) != candidate {
		return candidate, false, nil
	}
	// the candidate must also win its own *best* case... which it does by
	// winning the worst case; but a different label might win the center
	// world under tie-breaking subtleties, so also verify the friendly
	// extreme for symmetry.
	friendly := make([]float64, n)
	for i, rg := range ranges {
		if train.Y[i] == candidate {
			friendly[i] = rg.Lo
		} else {
			friendly[i] = rg.Hi
		}
	}
	if c.voteOutcome(friendly, train.Y) != candidate {
		return candidate, false, nil
	}
	return candidate, true, nil
}

// CertainFraction returns the fraction of test points with certain
// predictions and the per-point certainty flags.
func (c *CPClean) CertainFraction(train *SymbolicDataset, testX [][]float64) (float64, []bool, error) {
	flags := make([]bool, len(testX))
	certain := 0
	for i, x := range testX {
		_, ok, err := c.CertainPrediction(train, x)
		if err != nil {
			return 0, nil, err
		}
		flags[i] = ok
		if ok {
			certain++
		}
	}
	if len(testX) == 0 {
		return 0, flags, nil
	}
	return float64(certain) / float64(len(testX)), flags, nil
}

// GreedyClean repeatedly repairs the uncertain training row whose cleaning
// (collapsing its cells to their centers — standing in for consulting the
// ground truth) certifies the most additional test points, stopping after
// budget repairs or when every prediction is certain. It returns the chosen
// rows in repair order and the certain fraction after each repair — the
// "how many repairs until my predictions are reliable?" loop of CPClean.
func (c *CPClean) GreedyClean(train *SymbolicDataset, testX [][]float64, budget int) ([]int, []float64, error) {
	var repaired []int
	var fractions []float64
	work := &SymbolicDataset{Cells: make([][]Interval, train.Len()), Y: train.Y}
	for i, row := range train.Cells {
		work.Cells[i] = append([]Interval(nil), row...)
	}
	uncertainRows := func() []int {
		var rows []int
		for i, row := range work.Cells {
			for _, cell := range row {
				if !cell.IsPoint() {
					rows = append(rows, i)
					break
				}
			}
		}
		return rows
	}
	for step := 0; step < budget; step++ {
		frac, _, err := c.CertainFraction(work, testX)
		if err != nil {
			return nil, nil, err
		}
		if frac == 1 {
			break
		}
		rows := uncertainRows()
		if len(rows) == 0 {
			break
		}
		bestRow, bestFrac := -1, -1.0
		for _, row := range rows {
			saved := append([]Interval(nil), work.Cells[row]...)
			for j := range work.Cells[row] {
				work.Cells[row][j] = Point(work.Cells[row][j].Center())
			}
			f, _, err := c.CertainFraction(work, testX)
			if err != nil {
				return nil, nil, err
			}
			if f > bestFrac {
				bestRow, bestFrac = row, f
			}
			work.Cells[row] = saved
		}
		for j := range work.Cells[bestRow] {
			work.Cells[bestRow][j] = Point(work.Cells[bestRow][j].Center())
		}
		repaired = append(repaired, bestRow)
		fractions = append(fractions, bestFrac)
		if bestFrac == 1 {
			break
		}
	}
	return repaired, fractions, nil
}
