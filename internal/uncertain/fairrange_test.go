package uncertain

import (
	"math/rand"
	"testing"

	"nde/internal/linalg"
	"nde/internal/ml"
)

// groupedBlobs builds blobs where group membership is feature 2 and the
// validation set carries the groups.
func groupedBlobs(n int, sep float64, seed int64) *ml.Dataset {
	r := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 3)
	y := make([]int, n)
	groups := make([]string, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		sign := float64(2*c - 1)
		x.Set(i, 0, sign*sep+r.NormFloat64())
		x.Set(i, 1, sign*sep+r.NormFloat64())
		groups[i] = "a"
		if r.Float64() < 0.5 {
			groups[i] = "b"
			x.Set(i, 2, 1)
		}
	}
	d, _ := ml.NewDataset(x, y)
	d, _ = d.WithGroups(groups)
	return d
}

func TestFairnessRangeNoUncertaintyIsPoint(t *testing.T) {
	train := groupedBlobs(100, 2.5, 501)
	valid := groupedBlobs(60, 2.5, 502)
	fr, err := EstimateFairnessRange(NewSymbolic(train), valid, FairnessRangeConfig{Worlds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Range.Width() > 1e-12 {
		t.Errorf("range %v should be a point without uncertainty", fr.Range)
	}
	if fr.Center != fr.Range.Lo {
		t.Errorf("center %v outside range %v", fr.Center, fr.Range)
	}
}

func TestFairnessRangeWidensWithUncertainty(t *testing.T) {
	train := groupedBlobs(100, 1.2, 503)
	valid := groupedBlobs(60, 1.2, 504)
	sym := NewSymbolic(train)
	// the group-indicator feature itself is uncertain for a third of rows:
	// the biased-collection setting the CRA paper targets
	for i := 0; i < train.Len(); i += 3 {
		sym.SetUncertain(i, 2, 0, 1)
	}
	fr, err := EstimateFairnessRange(sym, valid, FairnessRangeConfig{Worlds: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Range.Width() <= 0 {
		t.Errorf("range %v should widen under group uncertainty", fr.Range)
	}
	if !fr.Range.Contains(fr.Center) {
		t.Errorf("center %v outside range %v", fr.Center, fr.Range)
	}
	if fr.Worlds < 17 { // center + 2 corners + 15 samples
		t.Errorf("worlds = %d", fr.Worlds)
	}
	// certification semantics
	if fr.CertifiablyFair(fr.Range.Hi - 1e-12) {
		t.Error("threshold below the max should not certify")
	}
	if !fr.CertifiablyFair(fr.Range.Hi) {
		t.Error("threshold at the max should certify")
	}
}

func TestFairnessRangeErrors(t *testing.T) {
	train := groupedBlobs(20, 2, 505)
	noGroups, _ := ml.NewDataset(train.X, train.Y)
	if _, err := EstimateFairnessRange(NewSymbolic(train), noGroups, FairnessRangeConfig{}); err == nil {
		t.Error("expected error for ungrouped validation")
	}
	if _, err := EstimateFairnessRange(&SymbolicDataset{}, train, FairnessRangeConfig{}); err == nil {
		t.Error("expected error for empty training set")
	}
}

func TestBiasRobustnessSeparableDataIsRobust(t *testing.T) {
	train := blobs(120, 3, 511)
	test := blobs(40, 3, 512)
	br, err := EstimateBiasRobustness(train, test, nil, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if br.RobustFraction < 0.9 {
		t.Errorf("well-separated data should be robust to 2 flips, got %v", br.RobustFraction)
	}
	if br.Variants < 8 {
		t.Errorf("variants = %d", br.Variants)
	}
}

func TestBiasRobustnessLargeBudgetBreaks(t *testing.T) {
	train := blobs(60, 1.0, 513)
	test := blobs(30, 1.0, 514)
	small, err := EstimateBiasRobustness(train, test, nil, 1, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := EstimateBiasRobustness(train, test, nil, 25, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if big.RobustFraction > small.RobustFraction {
		t.Errorf("bigger bias budget should not increase robustness: %v -> %v",
			small.RobustFraction, big.RobustFraction)
	}
}

func TestBiasRobustnessErrors(t *testing.T) {
	train := blobs(20, 2, 515)
	test := blobs(10, 2, 516)
	if _, err := EstimateBiasRobustness(train, test, nil, -1, 5, 1); err == nil {
		t.Error("expected error for negative budget")
	}
	if _, err := EstimateBiasRobustness(train, test, nil, 20, 5, 1); err == nil {
		t.Error("expected error for budget >= n")
	}
}
