package uncertain

import (
	"fmt"
	"sort"

	"nde/internal/ml"
)

// DiscreteUncertainty describes one cell with a finite set of candidate
// values — the dataset-multiplicity setting (Meyer et al., FAccT 2023)
// where, e.g., a label or categorical attribute is known to be one of a few
// conflicting records.
type DiscreteUncertainty struct {
	Row        int
	Col        int       // feature column; -1 targets the label
	Candidates []float64 // candidate feature values, or candidate labels as floats
}

// MultiplicityResult summarizes training across every possible world of a
// discretely uncertain dataset.
type MultiplicityResult struct {
	// Worlds is the number of enumerated completions.
	Worlds int
	// Consistent[i] is true when every world's model predicts the same
	// label for test point i.
	Consistent []bool
	// PredictionSets[i] holds the distinct labels predicted for test point
	// i across worlds.
	PredictionSets [][]int
	// AccuracyRange is the [min, max] test accuracy across worlds.
	AccuracyRange Interval
}

// EnumerateWorlds trains one model per possible world of the discrete
// uncertainties (full cartesian product, capped at maxWorlds to keep the
// enumeration tractable) and reports prediction consistency on the test
// set. newModel builds a fresh classifier per world.
func EnumerateWorlds(base *ml.Dataset, uncertainties []DiscreteUncertainty, test *ml.Dataset, newModel func() ml.Classifier, maxWorlds int) (*MultiplicityResult, error) {
	if maxWorlds <= 0 {
		maxWorlds = 1024
	}
	total := 1
	for _, u := range uncertainties {
		if len(u.Candidates) == 0 {
			return nil, fmt.Errorf("uncertain: uncertainty at (%d,%d) has no candidates", u.Row, u.Col)
		}
		if u.Row < 0 || u.Row >= base.Len() {
			return nil, fmt.Errorf("uncertain: uncertainty row %d out of range", u.Row)
		}
		total *= len(u.Candidates)
		if total > maxWorlds {
			return nil, fmt.Errorf("uncertain: %d worlds exceed cap %d; reduce uncertainties or raise the cap", total, maxWorlds)
		}
	}

	res := &MultiplicityResult{
		Worlds:         total,
		Consistent:     make([]bool, test.Len()),
		PredictionSets: make([][]int, test.Len()),
		AccuracyRange:  Interval{1, 0},
	}
	seen := make([]map[int]bool, test.Len())
	for i := range seen {
		seen[i] = make(map[int]bool)
	}

	choice := make([]int, len(uncertainties))
	for w := 0; w < total; w++ {
		// decode mixed-radix world index
		idx := w
		for u := range uncertainties {
			choice[u] = idx % len(uncertainties[u].Candidates)
			idx /= len(uncertainties[u].Candidates)
		}
		world := base.Clone()
		for u, unc := range uncertainties {
			v := unc.Candidates[choice[u]]
			if unc.Col < 0 {
				world.Y[unc.Row] = int(v)
			} else {
				world.X.Set(unc.Row, unc.Col, v)
			}
		}
		m := newModel()
		if err := m.Fit(world); err != nil {
			return nil, err
		}
		correct := 0
		for i := 0; i < test.Len(); i++ {
			pred := m.Predict(test.Row(i))
			seen[i][pred] = true
			if pred == test.Y[i] {
				correct++
			}
		}
		acc := float64(correct) / float64(test.Len())
		if w == 0 {
			res.AccuracyRange = Point(acc)
		} else {
			res.AccuracyRange = res.AccuracyRange.Union(Point(acc))
		}
	}
	for i := range seen {
		res.Consistent[i] = len(seen[i]) == 1
		for label := range seen[i] {
			res.PredictionSets[i] = append(res.PredictionSets[i], label)
		}
		sort.Ints(res.PredictionSets[i])
	}
	return res, nil
}
