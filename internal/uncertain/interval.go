// Package uncertain implements the tutorial's §2.3 — learning from
// uncertain and incomplete data. Instead of imputing a single "best guess"
// for missing or unreliable values, the package represents each uncertain
// cell as an interval and reasons over the *set of possible worlds* it
// induces:
//
//   - Zorro-style analysis (Zhu et al., NeurIPS 2024): propagate the
//     uncertainty of training cells through model training, producing
//     prediction ranges and worst-case loss estimates, via sampled possible
//     worlds plus a sound interval over-approximation;
//   - CPClean-style certain predictions for k-nearest-neighbor models over
//     incomplete data (Karlaš et al., VLDB 2021), with a greedy
//     minimal-repair cleaning strategy;
//   - certain and approximately certain model checks for regularized linear
//     models (Zhen et al., SIGMOD 2024); and
//   - exhaustive possible-world enumeration for small discrete uncertainty
//     (the dataset-multiplicity view of Meyer et al.).
package uncertain

import (
	"fmt"
	"math"
)

// Interval is a closed real interval [Lo, Hi]. A point value x is the
// degenerate interval [x, x].
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [x, x].
func Point(x float64) Interval { return Interval{Lo: x, Hi: x} }

// NewInterval returns [lo, hi]; it panics when lo > hi.
func NewInterval(lo, hi float64) Interval {
	if lo > hi {
		panic(fmt.Sprintf("uncertain: invalid interval [%v, %v]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// IsPoint reports whether the interval is degenerate.
func (a Interval) IsPoint() bool { return a.Lo == a.Hi }

// Width returns Hi − Lo.
func (a Interval) Width() float64 { return a.Hi - a.Lo }

// Center returns the midpoint.
func (a Interval) Center() float64 { return (a.Lo + a.Hi) / 2 }

// Radius returns half the width.
func (a Interval) Radius() float64 { return (a.Hi - a.Lo) / 2 }

// Contains reports whether x lies in the interval.
func (a Interval) Contains(x float64) bool { return a.Lo <= x && x <= a.Hi }

// Add returns a + b (Minkowski sum).
func (a Interval) Add(b Interval) Interval { return Interval{a.Lo + b.Lo, a.Hi + b.Hi} }

// Sub returns a − b.
func (a Interval) Sub(b Interval) Interval { return Interval{a.Lo - b.Hi, a.Hi - b.Lo} }

// Neg returns −a.
func (a Interval) Neg() Interval { return Interval{-a.Hi, -a.Lo} }

// Mul returns the interval product {x*y : x∈a, y∈b}.
func (a Interval) Mul(b Interval) Interval {
	p1, p2, p3, p4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
	return Interval{
		Lo: math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		Hi: math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

// Scale returns {c*x : x∈a}.
func (a Interval) Scale(c float64) Interval {
	if c >= 0 {
		return Interval{c * a.Lo, c * a.Hi}
	}
	return Interval{c * a.Hi, c * a.Lo}
}

// Union returns the smallest interval containing both a and b.
func (a Interval) Union(b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// Intersect returns the intersection and whether it is non-empty.
func (a Interval) Intersect(b Interval) (Interval, bool) {
	lo, hi := math.Max(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// Abs returns {|x| : x∈a}.
func (a Interval) Abs() Interval {
	if a.Lo >= 0 {
		return a
	}
	if a.Hi <= 0 {
		return a.Neg()
	}
	return Interval{0, math.Max(-a.Lo, a.Hi)}
}

// Sqr returns {x² : x∈a}.
func (a Interval) Sqr() Interval {
	ab := a.Abs()
	return Interval{ab.Lo * ab.Lo, ab.Hi * ab.Hi}
}

// String renders the interval; points render as plain numbers.
func (a Interval) String() string {
	if a.IsPoint() {
		return fmt.Sprintf("%g", a.Lo)
	}
	return fmt.Sprintf("[%g, %g]", a.Lo, a.Hi)
}

// DotRange returns the exact range of w·x over the box of intervals x:
// w·center ± Σ |w_i| · radius_i.
func DotRange(w []float64, x []Interval) Interval {
	if len(w) != len(x) {
		panic(fmt.Sprintf("uncertain: DotRange dims %d vs %d", len(w), len(x)))
	}
	center, spread := 0.0, 0.0
	for i, wi := range w {
		center += wi * x[i].Center()
		spread += math.Abs(wi) * x[i].Radius()
	}
	return Interval{center - spread, center + spread}
}
