package uncertain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nde/internal/linalg"
	"nde/internal/ml"
)

func TestCertainPredictionNoUncertainty(t *testing.T) {
	train := blobs(40, 3, 41)
	c := NewCPClean(3)
	label, certain, err := c.CertainPrediction(NewSymbolic(train), []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !certain || label != 1 {
		t.Errorf("deep class-1 point: label=%d certain=%v", label, certain)
	}
}

func TestCertainPredictionWithWideUncertainty(t *testing.T) {
	train := blobs(20, 2, 42)
	s := NewSymbolic(train)
	// make half the points completely uncertain across the whole space
	for i := 0; i < 10; i++ {
		s.SetUncertain(i, 0, -10, 10)
		s.SetUncertain(i, 1, -10, 10)
	}
	c := NewCPClean(5)
	_, certain, err := c.CertainPrediction(s, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if certain {
		t.Error("a boundary point with huge uncertainty should not be certain")
	}
}

func TestCertainPredictionErrors(t *testing.T) {
	train := blobs(10, 2, 43)
	s := NewSymbolic(train)
	if _, _, err := NewCPClean(0).CertainPrediction(s, []float64{0, 0}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, _, err := NewCPClean(3).CertainPrediction(s, []float64{0}); err == nil {
		t.Error("expected error for dim mismatch")
	}
	empty := &SymbolicDataset{}
	if _, _, err := NewCPClean(3).CertainPrediction(empty, nil); err == nil {
		t.Error("expected error for empty train")
	}
}

// Property: the certainty check is sound — when CPClean declares a
// prediction certain, every sampled possible world's concrete kNN agrees.
func TestQuickCertaintySound(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(10)
		train := blobs(n, 1.5, seed)
		s := NewSymbolic(train)
		for i := 0; i < n; i++ {
			if r.Float64() < 0.3 {
				col := r.Intn(2)
				c := s.Cells[i][col].Lo
				s.SetUncertain(i, col, c-r.Float64()*2, c+r.Float64()*2)
			}
		}
		x := []float64{r.NormFloat64() * 2, r.NormFloat64() * 2}
		c := NewCPClean(1 + r.Intn(3))
		label, certain, err := c.CertainPrediction(s, x)
		if err != nil {
			return false
		}
		if !certain {
			return true // nothing claimed, nothing to verify
		}
		for trial := 0; trial < 30; trial++ {
			world := s.SampleWorld(r)
			m := ml.NewKNN(c.K)
			if err := m.Fit(world); err != nil {
				return false
			}
			if m.Predict(x) != label {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCertainFraction(t *testing.T) {
	train := blobs(30, 3, 44)
	s := NewSymbolic(train)
	testX := [][]float64{{3, 3}, {-3, -3}, {2.5, 3.5}}
	frac, flags, err := NewCPClean(3).CertainFraction(s, testX)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("all-certain fraction = %v (flags %v)", frac, flags)
	}
	frac, _, err = NewCPClean(3).CertainFraction(s, nil)
	if err != nil || frac != 0 {
		t.Error("empty test set should give 0")
	}
}

func TestCertainFractionDropsWithMissingness(t *testing.T) {
	train := blobs(60, 2, 45)
	test := blobs(30, 2, 46)
	testX := make([][]float64, test.Len())
	for i := range testX {
		testX[i] = test.Row(i)
	}
	c := NewCPClean(3)
	var fracs []float64
	for _, pct := range []float64{0, 0.2, 0.5} {
		s, _, err := EncodeSymbolic(train, 0, pct, MCAR, 47)
		if err != nil {
			t.Fatal(err)
		}
		frac, _, err := c.CertainFraction(s, testX)
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, frac)
	}
	if !(fracs[0] >= fracs[1] && fracs[1] >= fracs[2]) {
		t.Errorf("certain fraction should fall with missingness: %v", fracs)
	}
	if fracs[0] != 1 {
		t.Errorf("zero missingness should be fully certain, got %v", fracs[0])
	}
}

func TestGreedyCleanImprovesCertainty(t *testing.T) {
	train := blobs(30, 2.5, 48)
	s, _, err := EncodeSymbolic(train, 0, 0.3, MCAR, 49)
	if err != nil {
		t.Fatal(err)
	}
	test := blobs(15, 2.5, 50)
	testX := make([][]float64, test.Len())
	for i := range testX {
		testX[i] = test.Row(i)
	}
	c := NewCPClean(3)
	before, _, err := c.CertainFraction(s, testX)
	if err != nil {
		t.Fatal(err)
	}
	repaired, fractions, err := c.GreedyClean(s, testX, 5)
	if err != nil {
		t.Fatal(err)
	}
	if before == 1 {
		if len(repaired) != 0 {
			t.Error("nothing to repair when already certain")
		}
		return
	}
	if len(fractions) == 0 {
		t.Fatal("no repairs made despite uncertainty")
	}
	if fractions[len(fractions)-1] < before {
		t.Errorf("cleaning decreased certainty: %v -> %v", before, fractions)
	}
	// fractions should be non-decreasing (greedy picks the best each step)
	for i := 1; i < len(fractions); i++ {
		if fractions[i] < fractions[i-1]-1e-9 {
			t.Errorf("fractions not monotone: %v", fractions)
		}
	}
	// GreedyClean must not mutate its input
	if s.UncertainCells() != 9 {
		t.Errorf("input mutated: %d uncertain cells", s.UncertainCells())
	}
}

func TestVoteOutcomeDeterministicTies(t *testing.T) {
	c := NewCPClean(2)
	labels := []int{1, 0}
	// equal distances: tie in votes -> label 0 wins
	if got := c.voteOutcome([]float64{1, 1}, labels); got != 0 {
		t.Errorf("tie vote = %d, want 0", got)
	}
}

func TestCertainModelCheckCertain(t *testing.T) {
	// y depends only on feature 0; feature 1 has missing values but is
	// irrelevant -> a certain model exists
	x := linalg.FromRows([][]float64{{1, 5}, {2, 1}, {3, 4}, {4, 0}})
	d, _ := ml.NewDataset(x, []int{0, 0, 1, 1})
	s := NewSymbolic(d)
	s.SetUncertain(3, 1, -10, 10)
	y := []float64{2, 4, 6, 8} // y = 2 * x0
	rep, err := CheckCertainModel(s, y)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Certain {
		t.Errorf("expected certain model: %s", rep.Reason)
	}
	if !rep.ApproximatelyCertain(0) {
		t.Error("certain implies approximately certain")
	}
}

func TestCertainModelCheckUncertain(t *testing.T) {
	// y depends on feature 1, which has a missing value -> no certain model
	x := linalg.FromRows([][]float64{{1, 1}, {1, 2}, {1, 3}, {1, 4}})
	d, _ := ml.NewDataset(x, []int{0, 0, 1, 1})
	s := NewSymbolic(d)
	s.SetUncertain(3, 1, 0, 10)
	y := []float64{1, 2, 3, 4} // y = x1
	rep, err := CheckCertainModel(s, y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Certain {
		t.Error("expected no certain model when a relevant feature is missing")
	}
	if rep.WorstCaseExtraLoss <= 0 {
		t.Errorf("worst-case extra loss = %v", rep.WorstCaseExtraLoss)
	}
	// wide tolerance makes it approximately certain
	if !rep.ApproximatelyCertain(1e6) {
		t.Error("huge eps should accept")
	}
}

func TestCertainModelCheckErrors(t *testing.T) {
	if _, err := CheckCertainModel(&SymbolicDataset{}, nil); err == nil {
		t.Error("expected error for empty dataset")
	}
	d := blobs(4, 1, 1)
	if _, err := CheckCertainModel(NewSymbolic(d), []float64{1}); err == nil {
		t.Error("expected error for target length mismatch")
	}
	// all rows incomplete: no anchor
	s := NewSymbolic(d)
	for i := 0; i < 4; i++ {
		s.SetUncertain(i, 0, -1, 1)
	}
	rep, err := CheckCertainModel(s, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Certain {
		t.Error("no complete rows cannot be certain")
	}
}

func TestEnumerateWorlds(t *testing.T) {
	train := blobs(30, 2.5, 51)
	test := blobs(10, 2.5, 52)
	// two uncertain labels -> 4 worlds
	unc := []DiscreteUncertainty{
		{Row: 0, Col: -1, Candidates: []float64{0, 1}},
		{Row: 1, Col: -1, Candidates: []float64{0, 1}},
	}
	res, err := EnumerateWorlds(train, unc, test, func() ml.Classifier { return ml.NewKNN(3) }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Worlds != 4 {
		t.Errorf("worlds = %d", res.Worlds)
	}
	if res.AccuracyRange.Lo > res.AccuracyRange.Hi {
		t.Errorf("accuracy range = %v", res.AccuracyRange)
	}
	for i, set := range res.PredictionSets {
		if len(set) == 0 {
			t.Errorf("empty prediction set at %d", i)
		}
		if res.Consistent[i] != (len(set) == 1) {
			t.Errorf("consistency flag mismatch at %d", i)
		}
	}
}

func TestEnumerateWorldsCaps(t *testing.T) {
	train := blobs(10, 2, 53)
	test := blobs(5, 2, 54)
	var unc []DiscreteUncertainty
	for i := 0; i < 12; i++ {
		unc = append(unc, DiscreteUncertainty{Row: i % 10, Col: -1, Candidates: []float64{0, 1}})
	}
	if _, err := EnumerateWorlds(train, unc, test, func() ml.Classifier { return ml.NewKNN(1) }, 100); err == nil {
		t.Error("expected error for too many worlds")
	}
	bad := []DiscreteUncertainty{{Row: 0, Col: -1}}
	if _, err := EnumerateWorlds(train, bad, test, func() ml.Classifier { return ml.NewKNN(1) }, 10); err == nil {
		t.Error("expected error for empty candidates")
	}
}
