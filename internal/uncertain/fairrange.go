package uncertain

import (
	"fmt"
	"math"
	"math/rand"

	"nde/internal/ml"
)

// FairnessRange bounds a fairness metric over the possible worlds of an
// uncertain training set — the consistent-range-approximation idea (Zhu et
// al., VLDB 2023): instead of reporting one fairness number computed on one
// arbitrary repair of biased data, report the interval the metric can take
// across plausible repairs, and certify fairness only when the WHOLE
// interval is acceptable.
type FairnessRange struct {
	// Metric is the fairness violation in the center (imputed) world.
	Center float64
	// Range is the empirical [min, max] violation across sampled worlds
	// (an under-approximation of the true range).
	Range Interval
	// Worlds is the number of worlds evaluated.
	Worlds int
}

// CertifiablyFair reports whether every evaluated world keeps the violation
// at or below the threshold. Because the range is sampled, this is a
// necessary-condition check: a false result is a definitive counterexample,
// a true result certifies only the evaluated worlds.
func (f *FairnessRange) CertifiablyFair(threshold float64) bool {
	return f.Range.Hi <= threshold
}

// FairnessRangeConfig controls the range estimation.
type FairnessRangeConfig struct {
	// Worlds is the number of sampled completions (default 20). Corner
	// worlds (all-low, all-high) are always added.
	Worlds int
	// Seed drives world sampling.
	Seed int64
	// NewModel builds the classifier (default logistic regression).
	NewModel func() ml.Classifier
	// Pos is the positive class of the fairness metric (default 1).
	Pos int
	// Metric computes the violation (default equalized odds difference).
	Metric func(truth, pred []int, groups []string, pos int) float64
}

// EstimateFairnessRange trains one model per possible world of the
// symbolic training data and evaluates the fairness metric on the grouped
// validation set, returning the induced violation range.
func EstimateFairnessRange(train *SymbolicDataset, valid *ml.Dataset, cfg FairnessRangeConfig) (*FairnessRange, error) {
	if train.Len() == 0 {
		return nil, fmt.Errorf("uncertain: empty training set")
	}
	if len(valid.Groups) != valid.Len() || valid.Len() == 0 {
		return nil, fmt.Errorf("uncertain: validation set must carry protected groups")
	}
	worlds := cfg.Worlds
	if worlds <= 0 {
		worlds = 20
	}
	newModel := cfg.NewModel
	if newModel == nil {
		newModel = func() ml.Classifier { return ml.NewLogisticRegression() }
	}
	metric := cfg.Metric
	if metric == nil {
		metric = ml.EqualizedOddsDifference
	}

	evalWorld := func(d *ml.Dataset) (float64, error) {
		m := newModel()
		if err := m.Fit(d); err != nil {
			return 0, err
		}
		pred := ml.PredictAll(m, valid)
		return metric(valid.Y, pred, valid.Groups, cfg.Pos), nil
	}

	center, err := evalWorld(train.Center())
	if err != nil {
		return nil, err
	}
	res := &FairnessRange{Center: center, Range: Point(center), Worlds: 1}
	observe := func(v float64) {
		res.Range = res.Range.Union(Point(v))
		res.Worlds++
	}
	// corner worlds first: extremes often attain the range endpoints
	for _, hi := range []bool{false, true} {
		h := hi
		v, err := evalWorld(train.CornerWorld(func(int, int) bool { return h }))
		if err != nil {
			return nil, err
		}
		observe(v)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	for w := 0; w < worlds; w++ {
		v, err := evalWorld(train.SampleWorld(r))
		if err != nil {
			return nil, err
		}
		observe(v)
	}
	return res, nil
}

// BiasRobustness quantifies robustness to programmable label bias (Meyer
// et al., NeurIPS 2021): an adversary may flip up to budget labels of the
// training set. The check samples flip sets — uniformly and targeted at the
// points nearest each test point, the adversary's strongest simple strategy
// for local models — retrains per variant, and reports the fraction of test
// predictions that never change. 1.0 means no sampled bias within budget
// moved any prediction.
type BiasRobustness struct {
	// RobustFraction is the fraction of test points with unanimous
	// predictions across all sampled biased datasets.
	RobustFraction float64
	// Flipped[i] is true when some sampled bias changed test point i.
	Flipped []bool
	// Variants is the number of biased datasets evaluated.
	Variants int
}

// EstimateBiasRobustness runs the sampled certification.
func EstimateBiasRobustness(train, test *ml.Dataset, newModel func() ml.Classifier, budget, variants int, seed int64) (*BiasRobustness, error) {
	if budget < 0 || budget >= train.Len() {
		return nil, fmt.Errorf("uncertain: bias budget %d outside [0,%d)", budget, train.Len())
	}
	if variants <= 0 {
		variants = 10
	}
	if newModel == nil {
		newModel = func() ml.Classifier { return ml.NewDecisionTree() }
	}
	base := newModel()
	if err := base.Fit(train); err != nil {
		return nil, err
	}
	basePred := ml.PredictAll(base, test)
	flipped := make([]bool, test.Len())
	r := rand.New(rand.NewSource(seed))

	evalVariant := func(rows []int) error {
		variant := train.Clone()
		for _, i := range rows {
			variant.Y[i] = 1 - variant.Y[i]
		}
		m := newModel()
		if err := m.Fit(variant); err != nil {
			return err
		}
		for i := 0; i < test.Len(); i++ {
			if m.Predict(test.Row(i)) != basePred[i] {
				flipped[i] = true
			}
		}
		return nil
	}

	evaluated := 0
	// uniform random flip sets
	for v := 0; v < variants; v++ {
		if err := evalVariant(r.Perm(train.Len())[:budget]); err != nil {
			return nil, err
		}
		evaluated++
	}
	// targeted flip sets: the budget nearest training points to each of a
	// few random test points
	targets := r.Perm(test.Len())
	if len(targets) > 5 {
		targets = targets[:5]
	}
	for _, ti := range targets {
		rows := nearestRows(train, test.Row(ti), budget)
		if err := evalVariant(rows); err != nil {
			return nil, err
		}
		evaluated++
	}

	robust := 0
	for _, f := range flipped {
		if !f {
			robust++
		}
	}
	return &BiasRobustness{
		RobustFraction: float64(robust) / math.Max(1, float64(test.Len())),
		Flipped:        flipped,
		Variants:       evaluated,
	}, nil
}

func nearestRows(train *ml.Dataset, x []float64, k int) []int {
	type di struct {
		d float64
		i int
	}
	ds := make([]di, train.Len())
	for i := 0; i < train.Len(); i++ {
		ds[i] = di{ml.EuclideanDistance(train.Row(i), x), i}
	}
	// partial selection of the k smallest
	for sel := 0; sel < k && sel < len(ds); sel++ {
		min := sel
		for j := sel + 1; j < len(ds); j++ {
			if ds[j].d < ds[min].d {
				min = j
			}
		}
		ds[sel], ds[min] = ds[min], ds[sel]
	}
	out := make([]int, 0, k)
	for i := 0; i < k && i < len(ds); i++ {
		out = append(out, ds[i].i)
	}
	return out
}
