package prov

import "sort"

// Set is a set of source tuple ids — the "which-provenance" view used when
// the distinction between alternative derivations does not matter (e.g. for
// grouping pipeline outputs by the candidate source tuples they depend on).
type Set map[TupleID]struct{}

// NewSet builds a set from the given ids.
func NewSet(ids ...TupleID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts an id.
func (s Set) Add(id TupleID) { s[id] = struct{}{} }

// Has reports membership.
func (s Set) Has(id TupleID) bool {
	_, ok := s[id]
	return ok
}

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Sorted returns the members in (table, row) order.
func (s Set) Sorted() []TupleID {
	out := make([]TupleID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Intersect returns the members of s also present in o.
func (s Set) Intersect(o Set) Set {
	out := NewSet()
	for id := range s {
		if o.Has(id) {
			out.Add(id)
		}
	}
	return out
}

// Union returns all members of s and o.
func (s Set) Union(o Set) Set {
	out := NewSet()
	for id := range s {
		out.Add(id)
	}
	for id := range o {
		out.Add(id)
	}
	return out
}

// Lineage returns the which-provenance of a polynomial: the set of all
// variables mentioned in any derivation.
func Lineage(p Polynomial) Set {
	s := NewSet()
	for _, v := range p.Vars() {
		s.Add(v)
	}
	return s
}

// GroupKey is a canonical string form of a tuple-id set, usable as a map key
// when partitioning pipeline outputs into provenance groups (as Datascope
// does: outputs that depend on exactly the same candidate source tuples form
// one additive unit).
func (s Set) GroupKey() string {
	ids := s.Sorted()
	key := ""
	for _, id := range ids {
		key += id.String() + "|"
	}
	return key
}
