// Package prov implements provenance semirings (Green, Karvounarakis,
// Tannen; PODS 2007) for fine-grained row-level lineage in ML pipelines.
//
// Every source tuple is a variable; each output row of a pipeline carries a
// provenance polynomial over those variables. For the select-project-join-
// union fragment used by preprocessing pipelines, a polynomial is a sum of
// monomials, where each monomial is the set of source tuples that jointly
// produced the output row. Evaluating the polynomial under a boolean
// assignment ("which source tuples are present?") answers the interventional
// question at the heart of pipeline-aware data debugging: if we removed
// these source tuples, would this training row still exist?
package prov

import (
	"fmt"
	"sort"
	"strings"
)

// TupleID identifies one row of one named source table.
type TupleID struct {
	Table string
	Row   int
}

// String renders the tuple id as "table[row]".
func (t TupleID) String() string { return fmt.Sprintf("%s[%d]", t.Table, t.Row) }

// Less orders tuple ids lexicographically by table then row.
func (t TupleID) Less(o TupleID) bool {
	if t.Table != o.Table {
		return t.Table < o.Table
	}
	return t.Row < o.Row
}

// Monomial is a product of distinct variables — the set of source tuples
// that must all be present for one derivation of an output row. Monomials
// are kept sorted and deduplicated (multiplication is idempotent in the
// positive-boolean semiring used for why-provenance).
type Monomial []TupleID

func normalizeMonomial(vars []TupleID) Monomial {
	if len(vars) == 0 {
		return Monomial{}
	}
	sorted := append([]TupleID(nil), vars...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return Monomial(out)
}

// contains reports whether m includes variable v.
func (m Monomial) contains(v TupleID) bool {
	i := sort.Search(len(m), func(i int) bool { return !m[i].Less(v) })
	return i < len(m) && m[i] == v
}

// subsetOf reports whether every variable of m appears in o.
func (m Monomial) subsetOf(o Monomial) bool {
	for _, v := range m {
		if !o.contains(v) {
			return false
		}
	}
	return true
}

func (m Monomial) equal(o Monomial) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the monomial as "a[0]·b[3]"; the empty monomial is "1".
func (m Monomial) String() string {
	if len(m) == 0 {
		return "1"
	}
	parts := make([]string, len(m))
	for i, v := range m {
		parts[i] = v.String()
	}
	return strings.Join(parts, "·")
}

// Polynomial is a sum of monomials: the alternative derivations of an
// output row. The zero polynomial (no monomials) is the annotation of a row
// that cannot be derived; the polynomial {1} (one empty monomial) annotates
// a row that exists unconditionally.
type Polynomial struct {
	mons []Monomial
}

// Zero returns the additive identity (no derivations).
func Zero() Polynomial { return Polynomial{} }

// One returns the multiplicative identity (an unconditional derivation).
func One() Polynomial { return Polynomial{mons: []Monomial{{}}} }

// Var returns the polynomial consisting of the single variable t.
func Var(t TupleID) Polynomial {
	return Polynomial{mons: []Monomial{{t}}}
}

// FromMonomials builds a polynomial from explicit variable products.
func FromMonomials(monos ...[]TupleID) Polynomial {
	p := Zero()
	for _, m := range monos {
		p.mons = append(p.mons, normalizeMonomial(m))
	}
	return p.dedup()
}

// IsZero reports whether the polynomial has no derivations.
func (p Polynomial) IsZero() bool { return len(p.mons) == 0 }

// Monomials returns the monomials of p (shared backing; treat as read-only).
func (p Polynomial) Monomials() []Monomial { return p.mons }

func (p Polynomial) dedup() Polynomial {
	if len(p.mons) <= 1 {
		return p
	}
	sort.Slice(p.mons, func(i, j int) bool { return lessMonomial(p.mons[i], p.mons[j]) })
	out := p.mons[:1]
	for _, m := range p.mons[1:] {
		if !m.equal(out[len(out)-1]) {
			out = append(out, m)
		}
	}
	return Polynomial{mons: out}
}

func lessMonomial(a, b Monomial) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i].Less(b[i])
		}
	}
	return len(a) < len(b)
}

// Add returns a + b (union of derivations).
func Add(a, b Polynomial) Polynomial {
	sum := Polynomial{mons: append(append([]Monomial(nil), a.mons...), b.mons...)}
	return sum.dedup()
}

// Mul returns a * b (joint derivations: every pairing of a derivation of a
// with a derivation of b, with idempotent variable products).
func Mul(a, b Polynomial) Polynomial {
	if a.IsZero() || b.IsZero() {
		return Zero()
	}
	var mons []Monomial
	for _, ma := range a.mons {
		for _, mb := range b.mons {
			mons = append(mons, normalizeMonomial(append(append([]TupleID(nil), ma...), mb...)))
		}
	}
	return Polynomial{mons: mons}.dedup()
}

// Simplify applies absorption (m + m·m' = m), yielding the canonical
// positive-boolean form. EvalBool is invariant under Simplify.
func (p Polynomial) Simplify() Polynomial {
	q := p.dedup()
	var kept []Monomial
	for i, m := range q.mons {
		absorbed := false
		for j, o := range q.mons {
			if i == j {
				continue
			}
			if o.subsetOf(m) && (len(o) < len(m) || j < i) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, m)
		}
	}
	return Polynomial{mons: kept}
}

// EvalBool evaluates the polynomial in the boolean semiring: it reports
// whether at least one derivation has all of its source tuples present.
func (p Polynomial) EvalBool(present func(TupleID) bool) bool {
	for _, m := range p.mons {
		ok := true
		for _, v := range m {
			if !present(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// EvalCount evaluates the polynomial in the counting semiring N, where
// multiplicity(t) gives the copies of each source tuple. This answers bag-
// semantics questions ("how many derivations survive?").
func (p Polynomial) EvalCount(multiplicity func(TupleID) int) int {
	total := 0
	for _, m := range p.mons {
		prod := 1
		for _, v := range m {
			prod *= multiplicity(v)
			if prod == 0 {
				break
			}
		}
		total += prod
	}
	return total
}

// Vars returns the distinct variables mentioned anywhere in p, sorted.
func (p Polynomial) Vars() []TupleID {
	seen := make(map[TupleID]bool)
	var out []TupleID
	for _, m := range p.mons {
		for _, v := range m {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// DependsOn reports whether p mentions variable t in any derivation.
func (p Polynomial) DependsOn(t TupleID) bool {
	for _, m := range p.mons {
		if m.contains(t) {
			return true
		}
	}
	return false
}

// Equal reports whether two polynomials have identical canonical monomials.
func (p Polynomial) Equal(o Polynomial) bool {
	a, b := p.dedup(), o.dedup()
	if len(a.mons) != len(b.mons) {
		return false
	}
	for i := range a.mons {
		if !a.mons[i].equal(b.mons[i]) {
			return false
		}
	}
	return true
}

// String renders the polynomial as "a[0]·b[1] + a[2]"; the zero polynomial
// renders as "0".
func (p Polynomial) String() string {
	if p.IsZero() {
		return "0"
	}
	parts := make([]string, len(p.mons))
	for i, m := range p.mons {
		parts[i] = m.String()
	}
	return strings.Join(parts, " + ")
}
