package prov

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tid(table string, row int) TupleID { return TupleID{Table: table, Row: row} }

func TestVarAndString(t *testing.T) {
	p := Var(tid("train", 3))
	if p.String() != "train[3]" {
		t.Errorf("String = %q", p.String())
	}
	if Zero().String() != "0" {
		t.Errorf("Zero = %q", Zero().String())
	}
	if One().String() != "1" {
		t.Errorf("One = %q", One().String())
	}
}

func TestAddDedups(t *testing.T) {
	a := Var(tid("t", 1))
	sum := Add(a, a)
	if len(sum.Monomials()) != 1 {
		t.Errorf("a + a should dedup, got %v", sum)
	}
}

func TestMulIdempotentVars(t *testing.T) {
	a := Var(tid("t", 1))
	sq := Mul(a, a)
	if !sq.Equal(a) {
		t.Errorf("a*a = %v, want a", sq)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	a, b, c := Var(tid("t", 1)), Var(tid("t", 2)), Var(tid("s", 0))
	left := Mul(a, Add(b, c))
	right := Add(Mul(a, b), Mul(a, c))
	if !left.Equal(right) {
		t.Errorf("a(b+c)=%v != ab+ac=%v", left, right)
	}
}

func TestZeroOneLaws(t *testing.T) {
	a := Mul(Var(tid("t", 1)), Var(tid("s", 2)))
	if !Add(a, Zero()).Equal(a) {
		t.Error("a + 0 != a")
	}
	if !Mul(a, One()).Equal(a) {
		t.Error("a * 1 != a")
	}
	if !Mul(a, Zero()).IsZero() {
		t.Error("a * 0 != 0")
	}
}

func TestEvalBool(t *testing.T) {
	// p = t1·s0 + t2: output row exists if (t1 and s0) or t2 present.
	p := Add(Mul(Var(tid("t", 1)), Var(tid("s", 0))), Var(tid("t", 2)))
	cases := []struct {
		present map[TupleID]bool
		want    bool
	}{
		{map[TupleID]bool{tid("t", 1): true, tid("s", 0): true}, true},
		{map[TupleID]bool{tid("t", 1): true}, false},
		{map[TupleID]bool{tid("t", 2): true}, true},
		{map[TupleID]bool{}, false},
	}
	for i, c := range cases {
		got := p.EvalBool(func(id TupleID) bool { return c.present[id] })
		if got != c.want {
			t.Errorf("case %d: EvalBool = %v, want %v", i, got, c.want)
		}
	}
	if One().EvalBool(func(TupleID) bool { return false }) != true {
		t.Error("One must evaluate true under any assignment")
	}
	if Zero().EvalBool(func(TupleID) bool { return true }) != false {
		t.Error("Zero must evaluate false under any assignment")
	}
}

func TestEvalCount(t *testing.T) {
	// bag semantics: p = t1·s0 + t2 with mult(t1)=2, mult(s0)=3, mult(t2)=1
	p := Add(Mul(Var(tid("t", 1)), Var(tid("s", 0))), Var(tid("t", 2)))
	mult := map[TupleID]int{tid("t", 1): 2, tid("s", 0): 3, tid("t", 2): 1}
	got := p.EvalCount(func(id TupleID) int { return mult[id] })
	if got != 7 {
		t.Errorf("EvalCount = %d, want 7", got)
	}
}

func TestSimplifyAbsorption(t *testing.T) {
	a, b := tid("t", 1), tid("t", 2)
	// a + a·b simplifies to a
	p := Add(Var(a), Mul(Var(a), Var(b)))
	s := p.Simplify()
	if !s.Equal(Var(a)) {
		t.Errorf("Simplify(a + ab) = %v, want a", s)
	}
	// 1 + anything = 1
	q := Add(One(), Var(a)).Simplify()
	if !q.Equal(One()) {
		t.Errorf("Simplify(1 + a) = %v, want 1", q)
	}
}

func TestVarsAndDependsOn(t *testing.T) {
	p := Add(Mul(Var(tid("t", 2)), Var(tid("s", 0))), Var(tid("t", 1)))
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != tid("s", 0) || vars[1] != tid("t", 1) || vars[2] != tid("t", 2) {
		t.Errorf("Vars = %v", vars)
	}
	if !p.DependsOn(tid("s", 0)) || p.DependsOn(tid("s", 99)) {
		t.Error("DependsOn wrong")
	}
}

func TestFromMonomials(t *testing.T) {
	p := FromMonomials(
		[]TupleID{tid("t", 1), tid("s", 0), tid("t", 1)}, // dup var collapses
		[]TupleID{tid("t", 2)},
	)
	if len(p.Monomials()) != 2 {
		t.Errorf("monomials = %v", p)
	}
	if len(p.Monomials()[1]) != 2 && len(p.Monomials()[0]) != 2 {
		t.Errorf("dup variable not collapsed: %v", p)
	}
}

// randomPoly builds a small random polynomial over nVars variables.
func randomPoly(r *rand.Rand, nVars int) Polynomial {
	p := Zero()
	nm := r.Intn(4)
	for i := 0; i < nm; i++ {
		var vars []TupleID
		for j := 0; j < 1+r.Intn(3); j++ {
			vars = append(vars, tid("v", r.Intn(nVars)))
		}
		p = Add(p, FromMonomials(vars))
	}
	return p
}

// Property: semiring laws hold observationally under EvalBool for random
// polynomials and random boolean assignments.
func TestQuickSemiringLaws(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nVars = 6
		a, b, c := randomPoly(r, nVars), randomPoly(r, nVars), randomPoly(r, nVars)
		assign := make(map[TupleID]bool)
		for i := 0; i < nVars; i++ {
			assign[tid("v", i)] = r.Intn(2) == 0
		}
		ev := func(p Polynomial) bool { return p.EvalBool(func(id TupleID) bool { return assign[id] }) }
		if ev(Add(a, b)) != (ev(a) || ev(b)) {
			return false
		}
		if ev(Mul(a, b)) != (ev(a) && ev(b)) {
			return false
		}
		if ev(Add(a, Add(b, c))) != ev(Add(Add(a, b), c)) {
			return false
		}
		if ev(Mul(a, Mul(b, c))) != ev(Mul(Mul(a, b), c)) {
			return false
		}
		if ev(Mul(a, Add(b, c))) != ev(Add(Mul(a, b), Mul(a, c))) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Simplify preserves EvalBool under every assignment of its
// variables (checked exhaustively for up to 2^10 assignments).
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPoly(r, 5)
		s := p.Simplify()
		vars := p.Vars()
		if len(vars) > 10 {
			return true
		}
		for mask := 0; mask < 1<<len(vars); mask++ {
			present := func(id TupleID) bool {
				for i, v := range vars {
					if v == id {
						return mask&(1<<i) != 0
					}
				}
				return false
			}
			if p.EvalBool(present) != s.EvalBool(present) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(tid("a", 1), tid("b", 2))
	o := NewSet(tid("b", 2), tid("c", 3))
	if !s.Has(tid("a", 1)) || s.Has(tid("c", 3)) {
		t.Error("Has wrong")
	}
	inter := s.Intersect(o)
	if inter.Len() != 1 || !inter.Has(tid("b", 2)) {
		t.Errorf("Intersect = %v", inter.Sorted())
	}
	uni := s.Union(o)
	if uni.Len() != 3 {
		t.Errorf("Union = %v", uni.Sorted())
	}
	sorted := uni.Sorted()
	if sorted[0] != tid("a", 1) || sorted[2] != tid("c", 3) {
		t.Errorf("Sorted = %v", sorted)
	}
}

func TestLineageAndGroupKey(t *testing.T) {
	p := Add(Mul(Var(tid("t", 1)), Var(tid("s", 0))), Var(tid("t", 1)))
	lin := Lineage(p)
	if lin.Len() != 2 {
		t.Errorf("Lineage = %v", lin.Sorted())
	}
	k1 := NewSet(tid("t", 1), tid("s", 0)).GroupKey()
	k2 := NewSet(tid("s", 0), tid("t", 1)).GroupKey()
	if k1 != k2 {
		t.Error("GroupKey must be order-independent")
	}
	if NewSet().GroupKey() != "" {
		t.Error("empty set key should be empty")
	}
}
