package prov_test

import (
	"fmt"

	"nde/internal/prov"
)

// A join output depends on both inputs; a union offers two derivations.
func ExamplePolynomial() {
	train0 := prov.TupleID{Table: "train", Row: 0}
	jobs2 := prov.TupleID{Table: "jobs", Row: 2}
	backup := prov.TupleID{Table: "backup", Row: 5}

	joined := prov.Mul(prov.Var(train0), prov.Var(jobs2))
	either := prov.Add(joined, prov.Var(backup))
	fmt.Println(either)

	// does the row survive if the jobs tuple is deleted?
	alive := either.EvalBool(func(id prov.TupleID) bool { return id != jobs2 })
	fmt.Println("survives without jobs[2]:", alive)
	// Output:
	// backup[5] + jobs[2]·train[0]
	// survives without jobs[2]: true
}

// Absorption: a derivation subsumed by a simpler one disappears.
func ExamplePolynomial_Simplify() {
	a := prov.Var(prov.TupleID{Table: "t", Row: 1})
	b := prov.Var(prov.TupleID{Table: "t", Row: 2})
	p := prov.Add(a, prov.Mul(a, b))
	fmt.Println(p.Simplify())
	// Output:
	// t[1]
}
