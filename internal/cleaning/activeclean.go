package cleaning

import (
	"math"
	"sort"

	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/obs"
)

// GradientStrategy implements ActiveClean-style prioritization (Krishnan et
// al., VLDB 2016): for a convex model trained on the current (partially
// dirty) data, records with the largest loss-gradient magnitude are the
// ones whose cleaning moves the model most, so they are cleaned first.
// The strategy fits a logistic model and ranks by descending per-example
// gradient norm.
type GradientStrategy struct {
	L2     float64 // ridge penalty of the probe model (default 1e-3)
	Epochs int     // probe training epochs (default 200)
}

// Name returns "activeclean-gradient".
func (s *GradientStrategy) Name() string { return "activeclean-gradient" }

// Rank fits the probe model and orders examples by descending gradient
// norm (most model-moving first).
func (s *GradientStrategy) Rank(train, valid *ml.Dataset) ([]int, error) {
	l2 := s.L2
	if l2 <= 0 {
		l2 = 1e-3
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	sp := obs.StartSpan("activeclean.rank")
	sp.SetInt("rows", int64(train.Len())).SetInt("epochs", int64(epochs))
	defer sp.End()
	obs.Inc("activeclean_rank_calls_total")
	m := &ml.LogisticRegression{LR: 0.5, Epochs: epochs, L2: l2}
	if err := m.Fit(train); err != nil {
		return nil, err
	}
	w, b := m.Weights(), m.Intercept()
	norms := make([]float64, train.Len())
	for i := 0; i < train.Len(); i++ {
		x := train.Row(i)
		p := ml.Sigmoid(linalg.Dot(w, x) + b)
		residual := p - float64(train.Y[i])
		// ‖∇ℓ_i‖ = |residual| · ‖[x;1]‖
		xn := 1.0
		for _, v := range x {
			xn += v * v
		}
		norms[i] = math.Abs(residual) * math.Sqrt(xn)
	}
	if obs.Enabled() {
		for _, nv := range norms {
			obs.ObserveWith("activeclean_gradient_norm", nv, obs.ExpBuckets(0.01, 4, 8))
		}
	}
	order := make([]int, train.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return norms[order[a]] > norms[order[b]] })
	return order, nil
}
