package cleaning

import (
	"fmt"
	"sort"

	"nde/internal/linalg"
	"nde/internal/ml"
)

// This file implements iFlipper-style label repair for individual fairness
// (Zhang et al., SIGMOD 2023 — surveyed in §2.3): when similar individuals
// carry different labels, a model trained on the data cannot treat likes
// alike. iFlipper repairs the training labels directly — flipping the
// minimum number of labels so that the count of "similar pair, different
// label" violations drops below a target — instead of constraining the
// model.

// FairPair is a pair of training rows deemed similar (and therefore
// expected to share a label).
type FairPair struct {
	I, J int
}

// SimilarPairs returns all row pairs within epsilon Euclidean distance —
// the similarity graph iFlipper operates on. The n×n squared-distance
// matrix is computed in one shot through the batched linalg kernel and
// compared against epsilon² — no per-pair sqrt.
func SimilarPairs(d *ml.Dataset, epsilon float64) []FairPair {
	var pairs []FairPair
	d2 := linalg.PairwiseSquaredDistances(d.X, d.X, 0)
	eps2 := epsilon * epsilon
	for i := 0; i < d.Len(); i++ {
		row := d2.Row(i)
		for j := i + 1; j < d.Len(); j++ {
			if row[j] <= eps2 {
				pairs = append(pairs, FairPair{I: i, J: j})
			}
		}
	}
	return pairs
}

// CountViolations returns the number of similar pairs with different labels.
func CountViolations(labels []int, pairs []FairPair) int {
	v := 0
	for _, p := range pairs {
		if labels[p.I] != labels[p.J] {
			v++
		}
	}
	return v
}

// IFlipperResult reports a label-repair outcome.
type IFlipperResult struct {
	// Labels is the repaired label vector.
	Labels []int
	// Flipped lists the rows whose labels changed, in flip order.
	Flipped []int
	// ViolationsBefore and ViolationsAfter count similar-pair label
	// disagreements.
	ViolationsBefore, ViolationsAfter int
}

// IFlipper greedily flips training labels to reduce individual-fairness
// violations: at each step the row whose flip removes the most net
// violations is flipped, until the violation count reaches target or no
// flip helps or the flip budget is exhausted. The greedy scheme is the
// paper's practical approximation of its minimal-flip optimization.
func IFlipper(d *ml.Dataset, pairs []FairPair, target, budget int) (*IFlipperResult, error) {
	if target < 0 {
		return nil, fmt.Errorf("cleaning: negative violation target %d", target)
	}
	if budget <= 0 {
		budget = d.Len()
	}
	labels := append([]int(nil), d.Y...)
	// adjacency: rows -> incident pairs
	adj := make([][]int, d.Len())
	for pi, p := range pairs {
		adj[p.I] = append(adj[p.I], pi)
		adj[p.J] = append(adj[p.J], pi)
	}
	res := &IFlipperResult{ViolationsBefore: CountViolations(labels, pairs)}
	violations := res.ViolationsBefore

	// net gain of flipping row i: violated incident pairs become satisfied
	// and vice versa (binary labels)
	gain := func(i int) int {
		g := 0
		for _, pi := range adj[i] {
			p := pairs[pi]
			other := p.J
			if other == i {
				other = p.I
			}
			if labels[i] != labels[other] {
				g++
			} else {
				g--
			}
		}
		return g
	}

	for violations > target && len(res.Flipped) < budget {
		best, bestGain := -1, 0
		for i := 0; i < d.Len(); i++ {
			if g := gain(i); g > bestGain || (g == bestGain && g > 0 && (best == -1 || i < best)) {
				best, bestGain = i, g
			}
		}
		if best < 0 || bestGain <= 0 {
			break // no flip strictly helps
		}
		labels[best] = 1 - labels[best]
		violations -= bestGain
		res.Flipped = append(res.Flipped, best)
	}
	sort.Ints(res.Flipped)
	res.Labels = labels
	res.ViolationsAfter = violations
	return res, nil
}
