// Package cleaning implements prioritized, iterative data cleaning — the
// tutorial's hands-on loop: rank training examples by a data-importance
// method, hand the most suspicious ones to a cleaning oracle, retrain, and
// measure how model quality recovers as the cleaning budget is spent.
// Comparing strategies' cleaning curves (random vs. noise scores vs.
// Shapley variants) quantifies how much prioritization matters.
package cleaning

import (
	"fmt"
	"math/rand"

	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/obs"
	"nde/internal/par"
)

// Oracle supplies ground-truth repairs for chosen training rows. In the
// tutorial this stands in for a human annotator or an expensive external
// lookup; implementations must not mutate their input.
type Oracle interface {
	// Clean returns a copy of d with the given rows repaired.
	Clean(d *ml.Dataset, rows []int) (*ml.Dataset, error)
}

// LabelOracle repairs labels from a hidden ground-truth vector.
type LabelOracle struct {
	Truth []int
}

// Clean replaces the labels of the given rows with the ground truth.
func (o *LabelOracle) Clean(d *ml.Dataset, rows []int) (*ml.Dataset, error) {
	if len(o.Truth) != d.Len() {
		return nil, fmt.Errorf("cleaning: oracle has %d truths for %d rows", len(o.Truth), d.Len())
	}
	out := d.Clone()
	for _, r := range rows {
		if r < 0 || r >= d.Len() {
			return nil, fmt.Errorf("cleaning: row %d out of range [0,%d)", r, d.Len())
		}
		out.Y[r] = o.Truth[r]
	}
	return out, nil
}

// Strategy produces a cleaning priority order (most suspicious first) for
// the current state of the training data.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Rank returns training row indices, most suspicious first.
	Rank(train, valid *ml.Dataset) ([]int, error)
}

// RandomStrategy cleans rows in a seeded random order — the baseline every
// importance method must beat.
type RandomStrategy struct {
	Seed int64
}

// Name returns "random".
func (s *RandomStrategy) Name() string { return "random" }

// Rank returns a random permutation of the rows.
func (s *RandomStrategy) Rank(train, valid *ml.Dataset) ([]int, error) {
	return rand.New(rand.NewSource(s.Seed)).Perm(train.Len()), nil
}

// KNNShapleyStrategy ranks by ascending kNN-Shapley value.
type KNNShapleyStrategy struct {
	K int // neighbors (default 5)
}

// Name returns "knn-shapley".
func (s *KNNShapleyStrategy) Name() string { return "knn-shapley" }

// Rank computes kNN-Shapley scores and ranks ascending.
func (s *KNNShapleyStrategy) Rank(train, valid *ml.Dataset) ([]int, error) {
	k := s.K
	if k <= 0 {
		k = 5
	}
	scores, err := importance.KNNShapley(k, train, valid)
	if err != nil {
		return nil, err
	}
	return scores.RankAscending(), nil
}

// LOOStrategy ranks by ascending leave-one-out importance of a model.
type LOOStrategy struct {
	NewModel func() ml.Classifier // default kNN(5)
}

// Name returns "loo".
func (s *LOOStrategy) Name() string { return "loo" }

// Rank computes LOO scores and ranks ascending.
func (s *LOOStrategy) Rank(train, valid *ml.Dataset) ([]int, error) {
	newModel := s.NewModel
	if newModel == nil {
		newModel = func() ml.Classifier { return ml.NewKNN(5) }
	}
	u := importance.AccuracyUtility(newModel, train, valid)
	scores, err := importance.LeaveOneOut(train.Len(), u)
	if err != nil {
		return nil, err
	}
	return scores.RankAscending(), nil
}

// NoiseStrategy ranks by ascending out-of-fold self-confidence.
type NoiseStrategy struct {
	Seed int64
}

// Name returns "noise-score".
func (s *NoiseStrategy) Name() string { return "noise-score" }

// Rank computes self-confidence scores and ranks ascending.
func (s *NoiseStrategy) Rank(train, valid *ml.Dataset) ([]int, error) {
	scores, err := importance.SelfConfidence(train, importance.NoiseConfig{Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	return scores.RankAscending(), nil
}

// InfluenceStrategy ranks by ascending influence-function score.
type InfluenceStrategy struct{}

// Name returns "influence".
func (s *InfluenceStrategy) Name() string { return "influence" }

// Rank computes influence scores and ranks ascending.
func (s *InfluenceStrategy) Rank(train, valid *ml.Dataset) ([]int, error) {
	scores, err := importance.Influence(train, valid, importance.InfluenceConfig{})
	if err != nil {
		return nil, err
	}
	return scores.RankAscending(), nil
}

// CurvePoint is one measurement of the cleaning curve.
type CurvePoint struct {
	Cleaned  int     // total rows handed to the oracle so far
	Accuracy float64 // test accuracy after retraining
}

// Result is the outcome of an iterative cleaning run.
type Result struct {
	Strategy string
	Curve    []CurvePoint
	Final    *ml.Dataset // the training data after all cleaning rounds
}

// IterativeClean runs the attendee-task loop: repeatedly (1) rank the
// current training data with the strategy, (2) clean the next batch of
// most-suspicious not-yet-cleaned rows via the oracle, (3) retrain and
// record test accuracy — until the budget of oracle calls is exhausted.
// The curve starts with the accuracy before any cleaning.
func IterativeClean(
	train, valid, test *ml.Dataset,
	oracle Oracle,
	strat Strategy,
	newModel func() ml.Classifier,
	batch, budget int,
) (*Result, error) {
	sp := obs.StartSpan("cleaning.run")
	defer sp.End()
	return iterativeClean(sp, train, valid, test, oracle, strat, newModel, batch, budget)
}

// iterativeClean is IterativeClean reporting under an explicit parent span,
// so concurrent strategy runs (CompareStrategies) each get their own
// correctly nested trace instead of racing over the tracer's implicit
// current-span stack.
func iterativeClean(
	sp *obs.Span,
	train, valid, test *ml.Dataset,
	oracle Oracle,
	strat Strategy,
	newModel func() ml.Classifier,
	batch, budget int,
) (*Result, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("cleaning: batch must be positive, got %d", batch)
	}
	if budget < 0 {
		return nil, fmt.Errorf("cleaning: negative budget %d", budget)
	}
	sp.SetStr("strategy", strat.Name()).SetInt("budget", int64(budget)).SetInt("batch", int64(batch))
	prog := obs.NewProgress("cleaning_budget", budget)
	defer prog.Done()

	cur := train.Clone()
	acc, err := ml.EvaluateAccuracy(newModel(), cur, test)
	if err != nil {
		return nil, err
	}
	obs.SetGauge("cleaning_accuracy", acc)
	res := &Result{Strategy: strat.Name(), Curve: []CurvePoint{{Cleaned: 0, Accuracy: acc}}}
	cleaned := make(map[int]bool)
	for len(cleaned) < budget && len(cleaned) < train.Len() {
		rsp := sp.StartChild("cleaning.round")
		order, err := strat.Rank(cur, valid)
		if err != nil {
			rsp.End()
			return nil, err
		}
		var next []int
		for _, i := range order {
			if len(next) == batch || len(cleaned)+len(next) == budget {
				break
			}
			if !cleaned[i] {
				next = append(next, i)
			}
		}
		if len(next) == 0 {
			rsp.End()
			break
		}
		cur, err = oracle.Clean(cur, next)
		if err != nil {
			rsp.End()
			return nil, err
		}
		for _, i := range next {
			cleaned[i] = true
		}
		acc, err = ml.EvaluateAccuracy(newModel(), cur, test)
		if err != nil {
			rsp.End()
			return nil, err
		}
		res.Curve = append(res.Curve, CurvePoint{Cleaned: len(cleaned), Accuracy: acc})
		obs.Inc("cleaning_rounds_total")
		obs.Count("cleaning_rows_cleaned_total", int64(len(next)))
		obs.SetGauge("cleaning_accuracy", acc)
		prog.Tick(len(next))
		rsp.SetInt("cleaned", int64(len(next))).SetInt("total_cleaned", int64(len(cleaned))).
			SetStr("accuracy", fmt.Sprintf("%.4f", acc)).End()
	}
	res.Final = cur
	return res, nil
}

// CompareStrategies runs IterativeClean for every strategy on identical
// inputs and returns the results in strategy order. Strategies run
// concurrently on the shared worker pool; this is
// CompareStrategiesParallel with the automatic worker count.
func CompareStrategies(
	train, valid, test *ml.Dataset,
	oracle Oracle,
	strategies []Strategy,
	newModel func() ml.Classifier,
	batch, budget int,
) ([]*Result, error) {
	return CompareStrategiesParallel(train, valid, test, oracle, strategies, newModel, batch, budget, 0)
}

// CompareStrategiesParallel runs the strategies concurrently with an
// explicit worker count (<= 0 = GOMAXPROCS). Each strategy's cleaning loop
// is independent — IterativeClean clones the training data, oracles must
// not mutate their inputs, and newModel must return a fresh classifier per
// call — so results (curve order, accuracies, final datasets) are
// bit-for-bit identical for any worker count, including 1. Results and the
// first error (if any) are reduced in strategy order. Strategies that rank
// with kNN-Shapley share one neighbor index through the singleflight cache,
// so the distance geometry is still computed only once across the fan-out.
// The cleaning_strategies_inflight gauge tracks concurrency; each strategy
// reports its rounds under its own cleaning.run span.
func CompareStrategiesParallel(
	train, valid, test *ml.Dataset,
	oracle Oracle,
	strategies []Strategy,
	newModel func() ml.Classifier,
	batch, budget, workers int,
) ([]*Result, error) {
	csp := obs.StartSpan("cleaning.compare")
	csp.SetInt("strategies", int64(len(strategies))).
		SetInt("workers", int64(par.Workers(workers, len(strategies))))
	defer csp.End()

	out := make([]*Result, len(strategies))
	_, err := par.ForErr("cleaning.compare", workers, len(strategies), func(_, i int) error {
		obs.AddGauge("cleaning_strategies_inflight", 1)
		defer obs.AddGauge("cleaning_strategies_inflight", -1)
		ssp := csp.StartChild("cleaning.run")
		defer ssp.End()
		r, err := iterativeClean(ssp, train, valid, test, oracle, strategies[i], newModel, batch, budget)
		if err != nil {
			return fmt.Errorf("cleaning: strategy %s: %w", strategies[i].Name(), err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AreaUnderCurve integrates a cleaning curve over the cleaned-count axis
// (trapezoid rule) — a single-number summary for strategy comparison;
// higher is better. A curve whose cleaned-count span is zero (every point
// at the same budget position, e.g. a budget exhausted at 0) has no axis to
// integrate over; the mean accuracy of its points is returned instead of
// the 0/0 NaN.
func AreaUnderCurve(curve []CurvePoint) float64 {
	if len(curve) < 2 {
		if len(curve) == 1 {
			return curve[0].Accuracy
		}
		return 0
	}
	span := float64(curve[len(curve)-1].Cleaned - curve[0].Cleaned)
	if span == 0 {
		mean := 0.0
		for _, p := range curve {
			mean += p.Accuracy
		}
		return mean / float64(len(curve))
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := float64(curve[i].Cleaned - curve[i-1].Cleaned)
		area += dx * (curve[i].Accuracy + curve[i-1].Accuracy) / 2
	}
	return area / span
}
