package cleaning

import (
	"testing"

	"nde/internal/datagen"
	"nde/internal/ml"
)

func TestGradientStrategyRanksCorruptedFirst(t *testing.T) {
	dirty, valid, _, _, corrupted := dirtySetup(t, 120)
	s := &GradientStrategy{}
	if s.Name() != "activeclean-gradient" {
		t.Errorf("name = %q", s.Name())
	}
	order, err := s.Rank(dirty, valid)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != dirty.Len() {
		t.Fatalf("rank length = %d", len(order))
	}
	k := len(corrupted)
	hits := 0
	for _, i := range order[:k] {
		if corrupted[i] {
			hits++
		}
	}
	prec := float64(hits) / float64(k)
	if prec < 0.5 {
		t.Errorf("gradient precision@%d = %v, want >= 0.5", k, prec)
	}
}

func TestGradientStrategyInIterativeLoop(t *testing.T) {
	dirty, valid, test, truth, corrupted := dirtySetup(t, 100)
	oracle := &LabelOracle{Truth: truth}
	res, err := IterativeClean(dirty, valid, test, oracle, &GradientStrategy{},
		func() ml.Classifier { return ml.NewKNN(5) }, 5, len(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve[0].Accuracy
	last := res.Curve[len(res.Curve)-1].Accuracy
	if last < first {
		t.Errorf("activeclean loop decreased accuracy: %v -> %v", first, last)
	}
}

func TestSimilarPairsAndViolations(t *testing.T) {
	d := blobs(30, 2, 901)
	pairs := SimilarPairs(d, 1.0)
	if len(pairs) == 0 {
		t.Fatal("no similar pairs found")
	}
	for _, p := range pairs {
		if ml.EuclideanDistance(d.Row(p.I), d.Row(p.J)) > 1.0 {
			t.Fatal("pair beyond epsilon")
		}
		if p.I >= p.J {
			t.Fatal("pair ordering wrong")
		}
	}
	v := CountViolations(d.Y, pairs)
	if v < 0 || v > len(pairs) {
		t.Fatalf("violations = %d of %d pairs", v, len(pairs))
	}
}

func TestIFlipperReducesViolations(t *testing.T) {
	// inject label noise so similar pairs disagree
	clean := blobs(60, 2, 902)
	dirty, _, err := datagen.FlipDatasetLabels(clean, 0.2, 903)
	if err != nil {
		t.Fatal(err)
	}
	pairs := SimilarPairs(dirty, 1.2)
	before := CountViolations(dirty.Y, pairs)
	if before == 0 {
		t.Skip("fixture produced no violations")
	}
	res, err := IFlipper(dirty, pairs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationsAfter >= res.ViolationsBefore {
		t.Errorf("violations %d -> %d", res.ViolationsBefore, res.ViolationsAfter)
	}
	if CountViolations(res.Labels, pairs) != res.ViolationsAfter {
		t.Error("reported violations inconsistent with labels")
	}
	// input labels untouched
	same := 0
	for i := range dirty.Y {
		if dirty.Y[i] == clean.Y[i] {
			same++
		}
	}
	if same == len(dirty.Y) {
		t.Error("fixture unexpectedly clean")
	}
	// flipping toward consistency should also repair many of the injected
	// errors (noisy labels are exactly the locally inconsistent ones)
	repaired := 0
	for i := range res.Labels {
		if res.Labels[i] == clean.Y[i] {
			repaired++
		}
	}
	if repaired <= same {
		t.Errorf("iFlipper did not move labels toward ground truth: %d -> %d", same, repaired)
	}
}

func TestIFlipperBudgetAndTarget(t *testing.T) {
	clean := blobs(40, 2, 904)
	dirty, _, err := datagen.FlipDatasetLabels(clean, 0.25, 905)
	if err != nil {
		t.Fatal(err)
	}
	pairs := SimilarPairs(dirty, 1.2)
	res, err := IFlipper(dirty, pairs, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flipped) > 2 {
		t.Errorf("budget exceeded: %d flips", len(res.Flipped))
	}
	if _, err := IFlipper(dirty, pairs, -1, 0); err == nil {
		t.Error("expected error for negative target")
	}
	// target equal to current violations: no flips needed
	cur := CountViolations(dirty.Y, pairs)
	res, err = IFlipper(dirty, pairs, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flipped) != 0 {
		t.Errorf("flips despite satisfied target: %v", res.Flipped)
	}
}
