package cleaning

import (
	"math/rand"
	"testing"

	"nde/internal/datagen"
	"nde/internal/linalg"
	"nde/internal/ml"
)

func blobs(n int, sep float64, seed int64) *ml.Dataset {
	r := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		sign := float64(2*c - 1)
		x.Set(i, 0, sign*sep+r.NormFloat64())
		x.Set(i, 1, sign*sep+r.NormFloat64())
	}
	d, _ := ml.NewDataset(x, y)
	return d
}

func dirtySetup(t *testing.T, n int) (dirty, valid, test *ml.Dataset, truth []int, corrupted map[int]bool) {
	t.Helper()
	clean := blobs(n, 2.5, 101)
	valid = blobs(n/2, 2.5, 102)
	test = blobs(n/2, 2.5, 103)
	var err error
	dirty, corrupted, err = datagen.FlipDatasetLabels(clean, 0.15, 104)
	if err != nil {
		t.Fatal(err)
	}
	return dirty, valid, test, clean.Y, corrupted
}

func TestLabelOracle(t *testing.T) {
	dirty, _, _, truth, corrupted := dirtySetup(t, 40)
	oracle := &LabelOracle{Truth: truth}
	var rows []int
	for i := range corrupted {
		rows = append(rows, i)
	}
	cleaned, err := oracle.Clean(dirty, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rows {
		if cleaned.Y[i] != truth[i] {
			t.Errorf("row %d not repaired", i)
		}
		if dirty.Y[i] == truth[i] {
			t.Errorf("fixture row %d was not corrupted", i)
		}
	}
	// input not mutated
	for _, i := range rows {
		if dirty.Y[i] == truth[i] {
			t.Error("oracle mutated its input")
		}
	}
	if _, err := oracle.Clean(dirty, []int{-1}); err == nil {
		t.Error("expected error for out-of-range row")
	}
	short := &LabelOracle{Truth: []int{0}}
	if _, err := short.Clean(dirty, nil); err == nil {
		t.Error("expected error for truth length mismatch")
	}
}

func TestStrategiesRankCorruptedFirst(t *testing.T) {
	dirty, valid, _, _, corrupted := dirtySetup(t, 100)
	k := len(corrupted)
	strategies := []Strategy{
		&KNNShapleyStrategy{K: 5},
		&NoiseStrategy{Seed: 1},
		&InfluenceStrategy{},
	}
	for _, s := range strategies {
		order, err := s.Rank(dirty, valid)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(order) != dirty.Len() {
			t.Fatalf("%s: rank length %d", s.Name(), len(order))
		}
		hits := 0
		for _, i := range order[:k] {
			if corrupted[i] {
				hits++
			}
		}
		prec := float64(hits) / float64(k)
		if prec < 0.6 {
			t.Errorf("%s: precision@%d = %v, want >= 0.6", s.Name(), k, prec)
		}
	}
}

func TestRandomStrategyIsPermutation(t *testing.T) {
	dirty, valid, _, _, _ := dirtySetup(t, 30)
	order, err := (&RandomStrategy{Seed: 7}).Rank(dirty, valid)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if seen[i] {
			t.Fatal("duplicate index in random ranking")
		}
		seen[i] = true
	}
	if len(seen) != 30 {
		t.Error("random ranking incomplete")
	}
}

func TestIterativeCleanRecoversAccuracy(t *testing.T) {
	dirty, valid, test, truth, corrupted := dirtySetup(t, 100)
	oracle := &LabelOracle{Truth: truth}
	newModel := func() ml.Classifier { return ml.NewKNN(5) }
	res, err := IterativeClean(dirty, valid, test, oracle, &KNNShapleyStrategy{K: 5}, newModel, 5, len(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve[0].Accuracy
	last := res.Curve[len(res.Curve)-1].Accuracy
	if last <= first {
		t.Errorf("cleaning did not improve accuracy: %v -> %v", first, last)
	}
	if res.Curve[len(res.Curve)-1].Cleaned != len(corrupted) {
		t.Errorf("budget not exhausted: cleaned %d of %d", res.Curve[len(res.Curve)-1].Cleaned, len(corrupted))
	}
	if res.Strategy != "knn-shapley" {
		t.Errorf("strategy name = %q", res.Strategy)
	}
	// final dataset should have most corrupted labels repaired
	repaired := 0
	for i := range corrupted {
		if res.Final.Y[i] == truth[i] {
			repaired++
		}
	}
	if repaired < len(corrupted)/2 {
		t.Errorf("only %d of %d corrupted rows repaired", repaired, len(corrupted))
	}
}

func TestIterativeCleanBudgetRespected(t *testing.T) {
	dirty, valid, test, truth, _ := dirtySetup(t, 60)
	oracle := &LabelOracle{Truth: truth}
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	res, err := IterativeClean(dirty, valid, test, oracle, &RandomStrategy{Seed: 3}, newModel, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	lastCleaned := res.Curve[len(res.Curve)-1].Cleaned
	if lastCleaned != 10 {
		t.Errorf("cleaned %d, budget 10", lastCleaned)
	}
	if _, err := IterativeClean(dirty, valid, test, oracle, &RandomStrategy{}, newModel, 0, 5); err == nil {
		t.Error("expected error for batch=0")
	}
	if _, err := IterativeClean(dirty, valid, test, oracle, &RandomStrategy{}, newModel, 1, -1); err == nil {
		t.Error("expected error for negative budget")
	}
}

func TestCompareStrategiesImportanceBeatsRandom(t *testing.T) {
	// harder setting than dirtySetup: closer blobs and heavy noise, so the
	// cleaning curves cannot saturate immediately; single runs are noisy,
	// so the dominance claim is checked on the mean AUC over seeds
	newModel := func() ml.Classifier { return ml.NewKNN(5) }
	var aucRandom, aucShapley float64
	for _, seed := range []int64{111, 222, 333} {
		clean := blobs(120, 1.8, seed)
		valid := blobs(60, 1.8, seed+1)
		test := blobs(60, 1.8, seed+2)
		dirty, corrupted, err := datagen.FlipDatasetLabels(clean, 0.25, seed+3)
		if err != nil {
			t.Fatal(err)
		}
		oracle := &LabelOracle{Truth: clean.Y}
		results, err := CompareStrategies(dirty, valid, test, oracle,
			[]Strategy{&RandomStrategy{Seed: seed}, &KNNShapleyStrategy{K: 5}},
			newModel, 6, len(corrupted))
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 {
			t.Fatalf("results = %d", len(results))
		}
		aucRandom += AreaUnderCurve(results[0].Curve)
		aucShapley += AreaUnderCurve(results[1].Curve)
	}
	if aucShapley <= aucRandom {
		t.Errorf("mean shapley AUC %v <= mean random AUC %v", aucShapley/3, aucRandom/3)
	}
}

func TestAreaUnderCurve(t *testing.T) {
	curve := []CurvePoint{{0, 0.5}, {10, 0.7}, {20, 0.9}}
	// trapezoids: 10*(0.6) + 10*(0.8) = 14; /20 = 0.7
	if got := AreaUnderCurve(curve); got != 0.7 {
		t.Errorf("AUC = %v", got)
	}
	if AreaUnderCurve(nil) != 0 {
		t.Error("empty AUC should be 0")
	}
	if AreaUnderCurve([]CurvePoint{{0, 0.4}}) != 0.4 {
		t.Error("single-point AUC should be its accuracy")
	}
}

func TestStrategyNamesAndLOO(t *testing.T) {
	names := map[Strategy]string{
		&RandomStrategy{}:     "random",
		&KNNShapleyStrategy{}: "knn-shapley",
		&LOOStrategy{}:        "loo",
		&NoiseStrategy{}:      "noise-score",
		&InfluenceStrategy{}:  "influence",
	}
	for s, want := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
	// LOO ranking runs end to end on a small set
	dirty, valid, _, _, _ := dirtySetup(t, 24)
	order, err := (&LOOStrategy{}).Rank(dirty, valid)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 24 {
		t.Errorf("LOO rank length = %d", len(order))
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if seen[i] {
			t.Fatal("duplicate in LOO ranking")
		}
		seen[i] = true
	}
}
