package cleaning

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"nde/internal/datagen"
	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/obs"
)

func blobs(n int, sep float64, seed int64) *ml.Dataset {
	r := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		sign := float64(2*c - 1)
		x.Set(i, 0, sign*sep+r.NormFloat64())
		x.Set(i, 1, sign*sep+r.NormFloat64())
	}
	d, _ := ml.NewDataset(x, y)
	return d
}

func dirtySetup(t *testing.T, n int) (dirty, valid, test *ml.Dataset, truth []int, corrupted map[int]bool) {
	t.Helper()
	clean := blobs(n, 2.5, 101)
	valid = blobs(n/2, 2.5, 102)
	test = blobs(n/2, 2.5, 103)
	var err error
	dirty, corrupted, err = datagen.FlipDatasetLabels(clean, 0.15, 104)
	if err != nil {
		t.Fatal(err)
	}
	return dirty, valid, test, clean.Y, corrupted
}

func TestLabelOracle(t *testing.T) {
	dirty, _, _, truth, corrupted := dirtySetup(t, 40)
	oracle := &LabelOracle{Truth: truth}
	var rows []int
	for i := range corrupted {
		rows = append(rows, i)
	}
	cleaned, err := oracle.Clean(dirty, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rows {
		if cleaned.Y[i] != truth[i] {
			t.Errorf("row %d not repaired", i)
		}
		if dirty.Y[i] == truth[i] {
			t.Errorf("fixture row %d was not corrupted", i)
		}
	}
	// input not mutated
	for _, i := range rows {
		if dirty.Y[i] == truth[i] {
			t.Error("oracle mutated its input")
		}
	}
	if _, err := oracle.Clean(dirty, []int{-1}); err == nil {
		t.Error("expected error for out-of-range row")
	}
	short := &LabelOracle{Truth: []int{0}}
	if _, err := short.Clean(dirty, nil); err == nil {
		t.Error("expected error for truth length mismatch")
	}
}

func TestStrategiesRankCorruptedFirst(t *testing.T) {
	dirty, valid, _, _, corrupted := dirtySetup(t, 100)
	k := len(corrupted)
	strategies := []Strategy{
		&KNNShapleyStrategy{K: 5},
		&NoiseStrategy{Seed: 1},
		&InfluenceStrategy{},
	}
	for _, s := range strategies {
		order, err := s.Rank(dirty, valid)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(order) != dirty.Len() {
			t.Fatalf("%s: rank length %d", s.Name(), len(order))
		}
		hits := 0
		for _, i := range order[:k] {
			if corrupted[i] {
				hits++
			}
		}
		prec := float64(hits) / float64(k)
		if prec < 0.6 {
			t.Errorf("%s: precision@%d = %v, want >= 0.6", s.Name(), k, prec)
		}
	}
}

func TestRandomStrategyIsPermutation(t *testing.T) {
	dirty, valid, _, _, _ := dirtySetup(t, 30)
	order, err := (&RandomStrategy{Seed: 7}).Rank(dirty, valid)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if seen[i] {
			t.Fatal("duplicate index in random ranking")
		}
		seen[i] = true
	}
	if len(seen) != 30 {
		t.Error("random ranking incomplete")
	}
}

func TestIterativeCleanRecoversAccuracy(t *testing.T) {
	dirty, valid, test, truth, corrupted := dirtySetup(t, 100)
	oracle := &LabelOracle{Truth: truth}
	newModel := func() ml.Classifier { return ml.NewKNN(5) }
	res, err := IterativeClean(dirty, valid, test, oracle, &KNNShapleyStrategy{K: 5}, newModel, 5, len(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve[0].Accuracy
	last := res.Curve[len(res.Curve)-1].Accuracy
	if last <= first {
		t.Errorf("cleaning did not improve accuracy: %v -> %v", first, last)
	}
	if res.Curve[len(res.Curve)-1].Cleaned != len(corrupted) {
		t.Errorf("budget not exhausted: cleaned %d of %d", res.Curve[len(res.Curve)-1].Cleaned, len(corrupted))
	}
	if res.Strategy != "knn-shapley" {
		t.Errorf("strategy name = %q", res.Strategy)
	}
	// final dataset should have most corrupted labels repaired
	repaired := 0
	for i := range corrupted {
		if res.Final.Y[i] == truth[i] {
			repaired++
		}
	}
	if repaired < len(corrupted)/2 {
		t.Errorf("only %d of %d corrupted rows repaired", repaired, len(corrupted))
	}
}

func TestIterativeCleanBudgetRespected(t *testing.T) {
	dirty, valid, test, truth, _ := dirtySetup(t, 60)
	oracle := &LabelOracle{Truth: truth}
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	res, err := IterativeClean(dirty, valid, test, oracle, &RandomStrategy{Seed: 3}, newModel, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	lastCleaned := res.Curve[len(res.Curve)-1].Cleaned
	if lastCleaned != 10 {
		t.Errorf("cleaned %d, budget 10", lastCleaned)
	}
	if _, err := IterativeClean(dirty, valid, test, oracle, &RandomStrategy{}, newModel, 0, 5); err == nil {
		t.Error("expected error for batch=0")
	}
	if _, err := IterativeClean(dirty, valid, test, oracle, &RandomStrategy{}, newModel, 1, -1); err == nil {
		t.Error("expected error for negative budget")
	}
}

func TestCompareStrategiesImportanceBeatsRandom(t *testing.T) {
	// harder setting than dirtySetup: closer blobs and heavy noise, so the
	// cleaning curves cannot saturate immediately; single runs are noisy,
	// so the dominance claim is checked on the mean AUC over seeds
	newModel := func() ml.Classifier { return ml.NewKNN(5) }
	var aucRandom, aucShapley float64
	for _, seed := range []int64{111, 222, 333} {
		clean := blobs(120, 1.8, seed)
		valid := blobs(60, 1.8, seed+1)
		test := blobs(60, 1.8, seed+2)
		dirty, corrupted, err := datagen.FlipDatasetLabels(clean, 0.25, seed+3)
		if err != nil {
			t.Fatal(err)
		}
		oracle := &LabelOracle{Truth: clean.Y}
		results, err := CompareStrategies(dirty, valid, test, oracle,
			[]Strategy{&RandomStrategy{Seed: seed}, &KNNShapleyStrategy{K: 5}},
			newModel, 6, len(corrupted))
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 {
			t.Fatalf("results = %d", len(results))
		}
		aucRandom += AreaUnderCurve(results[0].Curve)
		aucShapley += AreaUnderCurve(results[1].Curve)
	}
	if aucShapley <= aucRandom {
		t.Errorf("mean shapley AUC %v <= mean random AUC %v", aucShapley/3, aucRandom/3)
	}
}

func TestAreaUnderCurve(t *testing.T) {
	curve := []CurvePoint{{0, 0.5}, {10, 0.7}, {20, 0.9}}
	// trapezoids: 10*(0.6) + 10*(0.8) = 14; /20 = 0.7
	if got := AreaUnderCurve(curve); got != 0.7 {
		t.Errorf("AUC = %v", got)
	}
	if AreaUnderCurve(nil) != 0 {
		t.Error("empty AUC should be 0")
	}
	if AreaUnderCurve([]CurvePoint{{0, 0.4}}) != 0.4 {
		t.Error("single-point AUC should be its accuracy")
	}
}

func TestStrategyNamesAndLOO(t *testing.T) {
	names := map[Strategy]string{
		&RandomStrategy{}:     "random",
		&KNNShapleyStrategy{}: "knn-shapley",
		&LOOStrategy{}:        "loo",
		&NoiseStrategy{}:      "noise-score",
		&InfluenceStrategy{}:  "influence",
	}
	for s, want := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
	// LOO ranking runs end to end on a small set
	dirty, valid, _, _, _ := dirtySetup(t, 24)
	order, err := (&LOOStrategy{}).Rank(dirty, valid)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 24 {
		t.Errorf("LOO rank length = %d", len(order))
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if seen[i] {
			t.Fatal("duplicate in LOO ranking")
		}
		seen[i] = true
	}
}

// Regression: a curve whose cleaned-count span is zero (>= 2 points at the
// same budget position) used to divide 0/0 and return NaN; it must return
// the mean accuracy instead.
func TestAreaUnderCurveZeroSpan(t *testing.T) {
	curve := []CurvePoint{{0, 0.4}, {0, 0.6}}
	got := AreaUnderCurve(curve)
	if math.IsNaN(got) {
		t.Fatal("zero-span AUC is NaN")
	}
	if got != 0.5 {
		t.Errorf("zero-span AUC = %v, want mean accuracy 0.5", got)
	}
	three := []CurvePoint{{5, 0.3}, {5, 0.6}, {5, 0.9}}
	if got := AreaUnderCurve(three); got != 0.6 {
		t.Errorf("zero-span AUC = %v, want 0.6", got)
	}
}

// Parallel strategy comparison must be bit-for-bit identical to serial —
// curve order, every accuracy (compared as float bits), final datasets and
// AUC — for workers 1, 4 and GOMAXPROCS.
func TestCompareStrategiesParallelDeterminism(t *testing.T) {
	dirty, valid, test, truth, corrupted := dirtySetup(t, 80)
	oracle := &LabelOracle{Truth: truth}
	newModel := func() ml.Classifier { return ml.NewKNN(5) }
	strategies := []Strategy{
		&RandomStrategy{Seed: 7},
		&NoiseStrategy{Seed: 7},
		&KNNShapleyStrategy{K: 5},
	}
	budget := len(corrupted)
	serial, err := CompareStrategiesParallel(dirty, valid, test, oracle, strategies, newModel, budget/4, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := CompareStrategiesParallel(dirty, valid, test, oracle, strategies, newModel, budget/4, budget, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(serial))
		}
		for s := range got {
			if got[s].Strategy != serial[s].Strategy {
				t.Fatalf("workers=%d: result %d is %s, want %s (order changed)", workers, s, got[s].Strategy, serial[s].Strategy)
			}
			if len(got[s].Curve) != len(serial[s].Curve) {
				t.Fatalf("workers=%d %s: curve %d points, want %d", workers, got[s].Strategy, len(got[s].Curve), len(serial[s].Curve))
			}
			for p := range got[s].Curve {
				if got[s].Curve[p].Cleaned != serial[s].Curve[p].Cleaned ||
					math.Float64bits(got[s].Curve[p].Accuracy) != math.Float64bits(serial[s].Curve[p].Accuracy) {
					t.Errorf("workers=%d %s point %d: got %+v, want %+v",
						workers, got[s].Strategy, p, got[s].Curve[p], serial[s].Curve[p])
				}
			}
			if math.Float64bits(AreaUnderCurve(got[s].Curve)) != math.Float64bits(AreaUnderCurve(serial[s].Curve)) {
				t.Errorf("workers=%d %s: AUC diverges", workers, got[s].Strategy)
			}
			for i := range got[s].Final.Y {
				if got[s].Final.Y[i] != serial[s].Final.Y[i] {
					t.Errorf("workers=%d %s: final label %d diverges", workers, got[s].Strategy, i)
					break
				}
			}
		}
	}
}

// The inflight gauge returns to zero and per-strategy spans nest under the
// compare span.
func TestCompareStrategiesObsWiring(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	dirty, valid, test, truth, _ := dirtySetup(t, 40)
	oracle := &LabelOracle{Truth: truth}
	newModel := func() ml.Classifier { return ml.NewKNN(5) }
	strategies := []Strategy{&RandomStrategy{Seed: 1}, &NoiseStrategy{Seed: 1}}
	if _, err := CompareStrategiesParallel(dirty, valid, test, oracle, strategies, newModel, 4, 8, 2); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Gauge("cleaning_strategies_inflight").Value(); got != 0 {
		t.Errorf("inflight gauge = %v after completion, want 0", got)
	}
	var compare *obs.Span
	for _, root := range obs.DefaultTracer().Roots() {
		if root.Name() == "cleaning.compare" {
			compare = root
		}
	}
	if compare == nil {
		t.Fatal("no cleaning.compare span")
	}
	runs := 0
	for _, c := range compare.Children() {
		if c.Name() == "cleaning.run" {
			runs++
			rounds := 0
			for _, r := range c.Children() {
				if r.Name() == "cleaning.round" {
					rounds++
				}
			}
			if rounds == 0 {
				t.Error("cleaning.run span has no cleaning.round children")
			}
		}
	}
	if runs != 2 {
		t.Errorf("compare span has %d cleaning.run children, want 2", runs)
	}
}
